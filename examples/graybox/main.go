// Graybox design of stabilization, end to end (Sections 2.2, 5, 6):
//
//  1. Specify the abstract bidirectional token ring BTR; it is not
//     stabilizing by itself.
//  2. Design abstract wrappers W1 (token creation) and W2 (token
//     deletion) against the SPECIFICATION only, and machine-check
//     Theorem 6: BTR [] W1 [] W2 is stabilizing to BTR.
//  3. Refine the wrappers once (W1″, W2′ in the 3-state encoding).
//  4. Reuse the SAME refined wrappers, unmodified, on two independently
//     refined implementations — C2 (Section 5) and C3 (Section 6) —
//     without looking inside either. Both compositions stabilize: the
//     payoff of convergence refinement.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graybox:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 3
	btr := repro.NewBTR(n)
	spec := btr.System()

	fmt.Println("== step 1: the specification alone is not stabilizing ==")
	bare := repro.SelfStabilizing(spec)
	fmt.Println(bare.Verdict)
	if bare.Holds {
		return fmt.Errorf("BTR should not stabilize bare")
	}

	fmt.Println("\n== step 2: abstract wrappers stabilize the specification (Theorem 6) ==")
	wrapped := repro.Stabilizing(btr.Wrapped(), spec, nil)
	fmt.Println(wrapped.Verdict)
	if !wrapped.Holds {
		return fmt.Errorf("Theorem 6 failed: %s", wrapped.Reason)
	}

	fmt.Println("\n== step 3: refine the wrappers once, into the 3-state encoding ==")
	three := repro.NewThreeState(n)
	alpha, err := three.Abstraction(btr)
	if err != nil {
		return err
	}
	fmt.Printf("W1″ (local approximation of W1′): %s\n", three.W1DoublePrime())
	fmt.Printf("W2′ (collision deletion):          %s\n", three.W2Prime())

	fmt.Println("\n== step 4: reuse them on two independently refined systems ==")
	c2 := repro.Stabilizing(three.ComposedC2(), spec, alpha)
	fmt.Println("C2 (Section 5):", c2.Verdict)
	nt := repro.Stabilizing(three.NewThree(), spec, alpha)
	fmt.Println("C3 (Section 6):", nt.Verdict)
	if !c2.Holds || !nt.Holds {
		return fmt.Errorf("graybox reuse failed")
	}

	fmt.Println("\nNeither implementation stabilizes without the wrappers:")
	for _, sys := range []*repro.System{three.C2(), three.C3().StripSelfLoops()} {
		rep := repro.Stabilizing(sys, spec, alpha)
		fmt.Println(rep.Verdict)
		if rep.Holds {
			return fmt.Errorf("%s should not stabilize bare", sys.Name())
		}
	}

	fmt.Println("\nAnd the aggressive-W2′ variant of C3 IS Dijkstra's 3-state system:")
	fmt.Printf("automaton equality: %v\n",
		repro.TransitionsEqual(three.AggressiveThree(), three.Dijkstra3()))
	return nil
}
