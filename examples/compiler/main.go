// The Section 1 compiler example, executable: the source program
//
//	int x = 0;
//	while (x == x) { x = 0; }
//
// tolerates corruption of x (it eventually ensures x is always 0), but
// its naive compilation — which loads x twice to evaluate x == x — does
// not: a fault striking between the loads makes the comparison fail and
// the program returns. A read-once compilation (load once, dup) preserves
// the tolerance. Both facts are shown on a concrete fault trace AND
// decided by the stabilization checker over the machine's full
// configuration space.
package main

import (
	"fmt"
	"os"

	"repro/internal/vm"
)

const source = `
int x = 0;
while (x == x) { x = 0; }
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "compiler:", err)
		os.Exit(1)
	}
}

func run() error {
	src, err := vm.ParseSource(source)
	if err != nil {
		return err
	}

	for _, strategy := range []vm.Strategy{vm.Naive, vm.ReadOnce} {
		prog, slots, err := vm.Compile(src, strategy)
		if err != nil {
			return err
		}
		fmt.Printf("== %s compilation ==\n%s", strategy, prog)

		m := &vm.Machine{Prog: prog, MaxVal: 2, MaxStack: 2}

		// Concrete fault trace: corrupt x right after the first load of
		// the loop test.
		cfg := vm.Config{Locals: []int{0}}
		for i := 0; i < 50; i++ {
			next, st := m.Step(cfg)
			if st != vm.Running {
				return fmt.Errorf("nominal run stopped: %v", st)
			}
			cfg = next
			// Stop mid-test: one comparison operand on the stack, the
			// other not yet produced — the paper's vulnerable window
			// between the two reads of x.
			if len(cfg.Stack) == 1 && (prog[cfg.PC].Op == vm.OpILoad || prog[cfg.PC].Op == vm.OpDup) {
				break
			}
		}
		fmt.Printf("fault: corrupting x at pc=%d (stack %v)\n", cfg.PC, cfg.Stack)
		cfg.Locals[slots["x"]] = 1
		final, status, steps := m.Run(cfg, 200)
		fmt.Printf("after fault: status=%v after %d steps, x=%d\n",
			status, steps, final.Locals[slots["x"]])

		// Checker verdict over all locals-corruptions at all reachable
		// configurations.
		md, err := vm.NewModel(m, 1, []int{0})
		if err != nil {
			return err
		}
		rep, err := vm.CheckLocalFaultStabilization(md, vm.AlwaysZeroSpec(2), 0)
		if err != nil {
			return err
		}
		fmt.Printf("checker: %s\n\n", rep.Verdict)
	}
	return nil
}
