// Quickstart: build Dijkstra's 3-state token ring, prove it stabilizing
// with the convergence-refinement toolkit, then watch it recover from an
// injected transient fault in the simulator.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Model checking: Dijkstra's 3-state system is stabilizing to the
	//    abstract bidirectional token ring BTR through the Section 5
	//    mapping — Theorem 11, decided mechanically.
	const n = 3 // top process index: 4 processes
	btr := repro.NewBTR(n)
	three := repro.NewThreeState(n)
	alpha, err := three.Abstraction(btr)
	if err != nil {
		return err
	}
	d3 := three.Dijkstra3()
	rep := repro.Stabilizing(d3, btr.System(), alpha)
	fmt.Println(rep.Verdict)
	if !rep.Holds {
		return fmt.Errorf("unexpected: %s", rep.Reason)
	}

	// 2. Simulation: corrupt a legitimate ring and watch it converge.
	proto := repro.SimDijkstra3(8)
	legit, err := sim.LegitimateConfig(proto)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))
	start := sim.Corrupt(proto, legit, 4, rng)
	fmt.Printf("\ncorrupted start: %v (%d tokens)\n", start, sim.TokenCount(proto, start))

	cur := start.Clone()
	daemon := repro.NewRandomDaemon(7)
	for step := 0; ; step++ {
		if proto.Legitimate(cur) {
			fmt.Printf("legitimate after %d steps: %v\n", step, cur)
			break
		}
		moves := sim.EnabledMoves(proto, cur)
		m := daemon.Choose(moves)
		cur[m.Proc] = m.NewVal
		fmt.Printf("step %2d: process %d fires %-6s → %v (tokens %d)\n",
			step+1, m.Proc, m.Rule, cur, sim.TokenCount(proto, cur))
		if step > 1000 {
			return fmt.Errorf("no convergence")
		}
	}

	// 3. The same protocol on real goroutines, scheduled by the Go
	//    runtime.
	live := &repro.LiveRing{Proto: proto, MaxSteps: 100000}
	res, err := live.Run(start)
	if err != nil {
		return err
	}
	fmt.Printf("\nlive ring (goroutine per process): converged=%v in %d steps\n",
		res.Converged, res.Steps)
	return nil
}
