// Mutual exclusion — the application the token rings exist for. The ring
// is run as a service: a process entering its critical section is a
// privileged process firing its move. From a legitimate configuration the
// service is safe (never two privileges) and fair (every process is
// served); after transient faults it is unsafe for a bounded recovery
// window and then safe again, which is precisely what "stabilizing to
// BTR" buys.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mutex:", err)
		os.Exit(1)
	}
}

func run() error {
	const procs, steps = 9, 3000
	proto := repro.SimDijkstra3(procs)
	legit, err := sim.LegitimateConfig(proto)
	if err != nil {
		return err
	}

	fmt.Printf("token ring as a mutual-exclusion service: %s, %d moves per run\n\n", proto.Name(), steps)

	// Fault-free service: safe and fair.
	stats, err := sim.MeasureService(proto, repro.NewRoundRobinDaemon(procs), legit, steps)
	if err != nil {
		return err
	}
	fmt.Println("fault-free run:")
	fmt.Printf("  safety violations: %d (steps with >1 privilege)\n", stats.ViolationSteps)
	fmt.Printf("  critical-section entries per process: %v\n", stats.Entries)
	fmt.Printf("  least/most served: %d/%d\n\n", stats.MinEntries(), stats.MaxEntries())

	// Transient faults: a bounded unsafe window, then safety forever.
	rng := rand.New(rand.NewSource(13))
	for _, faults := range []int{2, 5, 9} {
		start := sim.Corrupt(proto, legit, faults, rng)
		stats, err := sim.MeasureService(proto, repro.NewRandomDaemon(int64(faults)), start, steps)
		if err != nil {
			return err
		}
		fmt.Printf("after corrupting %d registers:\n", faults)
		fmt.Printf("  unsafe window: %d steps (violations during it: %d)\n",
			stats.StepsToSafety, stats.ViolationSteps)
		fmt.Printf("  service resumed safely for the remaining %d steps\n\n",
			stats.Steps-stats.StepsToSafety)
	}

	fmt.Println("the stabilization theorem behind the measurement:")
	btr := repro.NewBTR(procs - 1)
	three := repro.NewThreeState(procs - 1)
	alpha, err := three.Abstraction(btr)
	if err != nil {
		return err
	}
	rep := repro.Stabilizing(three.Dijkstra3(), btr.System(), alpha)
	fmt.Println(rep.Verdict)
	return nil
}
