// The Section 1 bidding-server example, executable: the specification
// tolerates the corruption of one stored bid — it still declares (k−1) of
// the best k — while its sorted-list refinement wedges when the list head
// is corrupted to MAX_INTEGER. A refinement that re-scans for the true
// minimum restores the guarantee. The demo replays the exact scenario and
// then measures all three servers over randomized streams.
package main

import (
	"fmt"
	"os"

	"repro/internal/bidding"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bidding:", err)
		os.Exit(1)
	}
}

func run() error {
	const k = 3
	stream := []int{40, 85, 21, 93, 77, 64, 58}
	fault := bidding.Fault{At: 3, Slot: 0, Value: bidding.MaxValue}
	best := bidding.BestK(stream, k)
	fmt.Printf("bids: %v\ntrue best-%d: %v\nfault: slot %d := MAX before bid #%d\n\n",
		stream, k, best, fault.Slot, fault.At+1)

	servers := []bidding.Server{
		bidding.NewSpec(k),
		bidding.NewSortedList(k),
		bidding.NewScanMin(k),
	}
	for _, s := range servers {
		winners, err := bidding.RunStream(s, stream, []bidding.Fault{fault})
		if err != nil {
			return err
		}
		fmt.Printf("%-12s winners %v — delivers %d of best-%d (need ≥ %d): %v\n",
			s.Name(), pretty(winners), bidding.Overlap(winners, best), k, k-1,
			bidding.Satisfies(winners, stream, k, 1))
	}

	fmt.Println("\nrandomized measurement (200 streams, one MAX corruption each):")
	for _, mk := range []func() bidding.Server{
		func() bidding.Server { return bidding.NewSpec(k) },
		func() bidding.Server { return bidding.NewSortedList(k) },
		func() bidding.Server { return bidding.NewScanMin(k) },
	} {
		stats, err := bidding.MeasureTolerance(mk, 200, 60, 100, 11)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s satisfied %3d/%d trials, mean overlap %.2f\n",
			mk().Name(), stats.Satisfied, stats.Trials, stats.MeanOverlap)
	}
	return nil
}

// pretty caps MAX values for readable output.
func pretty(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		if x == bidding.MaxValue {
			out[i] = "MAX"
		} else {
			out[i] = fmt.Sprint(x)
		}
	}
	return out
}
