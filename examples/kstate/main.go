// Dijkstra's K-state protocol: the K-versus-ring-size stabilization
// threshold, decided by the model checker, followed by a live run on
// goroutines.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kstate:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("self-stabilization of Dijkstra's K-state system (N+1 processes):")
	fmt.Print("        ")
	for k := 2; k <= 6; k++ {
		fmt.Printf("K=%d   ", k)
	}
	fmt.Println()
	for n := 2; n <= 4; n++ {
		fmt.Printf("N=%d:    ", n)
		for k := 2; k <= 6; k++ {
			rep := repro.SelfStabilizing(repro.NewKState(n, k).System())
			mark := "✗"
			if rep.Holds {
				mark = "✓"
			}
			fmt.Printf("%s     ", mark)
		}
		fmt.Println()
	}
	fmt.Println("\nthe classical threshold: K ≥ N suffices (and K = N − 1 fails).")

	// Live goroutine ring at a comfortable size.
	const procs = 10
	proto := repro.SimKState(procs, procs)
	legit, err := sim.LegitimateConfig(proto)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(3))
	start := sim.Corrupt(proto, legit, procs, rng)
	fmt.Printf("\nlive ring, %d processes, fully corrupted start %v\n", procs, start)
	live := &repro.LiveRing{Proto: proto, MaxSteps: 1000000}
	res, err := live.Run(start)
	if err != nil {
		return err
	}
	fmt.Printf("converged=%v after %d moves; final %v (tokens=%d)\n",
		res.Converged, res.Steps, res.Final, sim.TokenCount(proto, res.Final))
	return nil
}
