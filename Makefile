GO ?= go

.PHONY: check fmt vet build test bench lint

# check is the full gate: formatting, vet, build, the race-enabled
# test suite, and the GCL linter over the example programs. CI and
# pre-commit both run exactly this.
check: fmt vet build test lint

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

# vet also runs staticcheck when it is installed; offline builds
# without the tool still pass.
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# lint runs `gclc lint` over every example. lint-demo.gcl is the
# deliberately defective program and MUST fail; every other example
# must pass (their expected benign findings are asserted by the tests
# in cmd/gclc).
lint:
	@for f in examples/gcl/*.gcl; do \
		case "$$f" in \
		*/lint-demo.gcl) \
			if $(GO) run ./cmd/gclc lint "$$f" >/dev/null 2>&1; then \
				echo "lint: $$f should have error diagnostics but passed"; exit 1; \
			fi; \
			echo "lint: $$f fails as designed";; \
		*) \
			$(GO) run ./cmd/gclc lint "$$f" || exit 1; \
			echo "lint: $$f ok";; \
		esac; \
	done

bench:
	$(GO) test -bench=. -benchmem .
