GO ?= go

.PHONY: check fmt vet build test bench lint cluster-race cluster-demo chaos crash-demo

# check is the full gate: formatting, vet, build, the race-enabled
# test suite, and the GCL linter over the example programs. CI and
# pre-commit both run exactly this.
check: fmt vet build test lint

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

# vet also runs staticcheck when it is installed; offline builds
# without the tool still pass.
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# lint runs `gclc lint` over every example. lint-demo.gcl is the
# deliberately defective program and MUST fail; every other example
# must pass (their expected benign findings are asserted by the tests
# in cmd/gclc).
lint:
	@for f in examples/gcl/*.gcl; do \
		case "$$f" in \
		*/lint-demo.gcl) \
			if $(GO) run ./cmd/gclc lint "$$f" >/dev/null 2>&1; then \
				echo "lint: $$f should have error diagnostics but passed"; exit 1; \
			fi; \
			echo "lint: $$f fails as designed";; \
		*) \
			$(GO) run ./cmd/gclc lint "$$f" || exit 1; \
			echo "lint: $$f ok";; \
		esac; \
	done

bench:
	$(GO) test -bench=. -benchmem .

# cluster-race gives the message-passing runtime a dedicated
# race-detector pass: it is the most concurrent code in the repository
# (actor goroutines, TCP read loops, the free-running collector).
cluster-race:
	$(GO) test -race -count=2 ./internal/cluster/...

# chaos runs a short seeded campaign under the race detector and fails
# when any episode misses the recovery SLO. The mix includes crash
# faults recovering through the snapshot store, with a storage-fault
# injector corrupting every 5th snapshot write so both recovery paths
# (validated restore and arbitrary resume) are exercised. On the
# stepped chan transport the campaign is deterministic: the measured
# worst recovery for this seed is 23 steps, so the 200-step budget only
# trips if a code change genuinely slows recovery (or breaks
# re-stabilization).
chaos:
	$(GO) run -race ./cmd/ringsim chaos -protocol dijkstra3 -p 5 -seed 7 \
		-episodes 10 -kinds corrupt,restart,partition,crash \
		-persist -persist-every 2 -storage-fault-every 5 -recovery-slo 200

# crash-demo crashes two nodes of a 5-node ring with snapshot
# persistence on a hostile store (every 7th write faulted). For this
# seed, node 1's snapshot is corrupted so it resumes from an arbitrary
# register (recovered from=arbitrary) while node 3 restores its
# validated snapshot (from=snapshot) — both re-stabilize either way.
crash-demo:
	$(GO) run ./cmd/ringsim cluster -protocol dijkstra3 -p 5 -seed 6 \
		-faults 0 -schedule "crash@40:node=1; crash@120:node=3" \
		-persist -persist-every 4 -storage-fault-every 7

# cluster-demo runs a 5-node dijkstra3 ring in-proc, injects one
# register corruption mid-run, and prints the monitor's convergence
# events: fault at step 40, re-stabilization a few dozen steps later.
cluster-demo:
	$(GO) run ./cmd/ringsim cluster -protocol dijkstra3 -p 5 -seed 6 \
		-faults 0 -schedule "corrupt@40:node=1,val=0" -snapshot-every 20
