GO ?= go

.PHONY: check fmt vet gcvet build test bench lint cluster-race cluster-demo chaos crash-demo \
	fleet-race fleet-demo fleet-gray-race bench-fleet journal-race journal-compact-race bench-journal

# check is the full gate: formatting, vet, build, the race-enabled
# test suite, and the GCL linter over the example programs. CI and
# pre-commit both run exactly this.
check: fmt vet build test lint

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

# vet chains the stock vet suite, the repo's own gcvet analyzers
# (determinism, gas metering, leak, map-order, event-kind invariants —
# see internal/analysis/gcvet), and staticcheck when it is installed;
# offline builds without staticcheck still pass.
vet: gcvet
	$(GO) vet ./...
	$(GO) vet -vettool=bin/gcvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# gcvet builds the custom analyzer binary `go vet -vettool` loads. The
# binary embeds a content hash in its buildID handshake, so rebuilding
# it invalidates cmd/go's vet cache automatically.
gcvet:
	@mkdir -p bin
	$(GO) build -o bin/gcvet ./cmd/gcvet

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# lint runs `gclc lint` over every example. lint-demo.gcl is the
# deliberately defective program and MUST fail; every other example
# must pass (their expected benign findings are asserted by the tests
# in cmd/gclc).
lint:
	@for f in examples/gcl/*.gcl; do \
		case "$$f" in \
		*/lint-demo.gcl) \
			if $(GO) run ./cmd/gclc lint "$$f" >/dev/null 2>&1; then \
				echo "lint: $$f should have error diagnostics but passed"; exit 1; \
			fi; \
			echo "lint: $$f fails as designed";; \
		*) \
			$(GO) run ./cmd/gclc lint "$$f" || exit 1; \
			echo "lint: $$f ok";; \
		esac; \
	done

bench:
	$(GO) test -bench=. -benchmem .

# cluster-race gives the message-passing runtime a dedicated
# race-detector pass: it is the most concurrent code in the repository
# (actor goroutines, TCP read loops, the free-running collector).
cluster-race:
	$(GO) test -race -count=2 ./internal/cluster/...

# chaos runs a short seeded campaign under the race detector and fails
# when any episode misses the recovery SLO. The mix includes crash
# faults recovering through the snapshot store, with a storage-fault
# injector corrupting every 5th snapshot write so both recovery paths
# (validated restore and arbitrary resume) are exercised. On the
# stepped chan transport the campaign is deterministic: the measured
# worst recovery for this seed is 23 steps, so the 200-step budget only
# trips if a code change genuinely slows recovery (or breaks
# re-stabilization).
chaos:
	$(GO) run -race ./cmd/ringsim chaos -protocol dijkstra3 -p 5 -seed 7 \
		-episodes 10 -kinds corrupt,restart,partition,crash \
		-persist -persist-every 2 -storage-fault-every 5 -recovery-slo 200

# crash-demo crashes two nodes of a 5-node ring with snapshot
# persistence on a hostile store (every 7th write faulted). For this
# seed, node 1's snapshot is corrupted so it resumes from an arbitrary
# register (recovered from=arbitrary) while node 3 restores its
# validated snapshot (from=snapshot) — both re-stabilize either way.
crash-demo:
	$(GO) run ./cmd/ringsim cluster -protocol dijkstra3 -p 5 -seed 6 \
		-faults 0 -schedule "crash@40:node=1; crash@120:node=3" \
		-persist -persist-every 4 -storage-fault-every 7

# cluster-demo runs a 5-node dijkstra3 ring in-proc, injects one
# register corruption mid-run, and prints the monitor's convergence
# events: fault at step 40, re-stabilization a few dozen steps later.
cluster-demo:
	$(GO) run ./cmd/ringsim cluster -protocol dijkstra3 -p 5 -seed 6 \
		-faults 0 -schedule "corrupt@40:node=1,val=0" -snapshot-every 20

# fleet-race gives the replica fleet its own race-detector pass: real
# TCP listeners, heartbeat loops, anti-entropy rounds, and crash/restart
# cycles all running concurrently.
fleet-race:
	$(GO) test -race -count=2 ./internal/fleet/...

# fleet-demo spins a 3-replica checkd fleet in-proc and drives it with
# seeded mixed traffic while a chaos campaign crashes and partitions
# replicas on schedule (seed 5 lands 2 crashes + 2 partitions). The
# fleet must answer every request without a single 5xx — a downed owner
# costs a forward fallback or a retry on another replica, never an
# error — and must re-converge after the final heal; -fail-on-5xx makes
# any violation a non-zero exit, so this target can gate CI.
fleet-demo:
	$(GO) run ./cmd/loadgen -replicas 3 -n 500 -warmup 150 -seed 5 \
		-chaos -chaos-faults 4 -pace 5ms -fail-on-5xx

# fleet-gray-race exercises the failure-domain hardening layer under
# the race detector: breaker state machines, hedged forwards (two
# goroutines racing to answer one request), deadline-budget refusals,
# reply validation, and quarantine flap sequences — then a seeded
# gray-failure campaign (slow-peer + garbage-reply + asym-partition)
# under live load. The failure detector stays green through every gray
# fault, so only the breakers, hedges, and validation stand between a
# sick peer and the tail; -fail-on-5xx makes any dropped request a
# non-zero exit.
fleet-gray-race:
	$(GO) test -race -count=2 -run \
		'Breaker|Hedge|Budget|Quarantine|ValidateReply|Garbage' \
		./internal/fleet/...
	$(GO) run -race ./cmd/loadgen -replicas 3 -n 400 -warmup 100 -seed 9 \
		-chaos -chaos-faults 3 -chaos-kinds slow-peer,garbage-reply,asym-partition \
		-slow-delay 100ms -breaker-breach 50ms -pace 2ms -fail-on-5xx

# bench-fleet regenerates the recorded E19 scaling baseline. The report
# is deterministic for the fixed seed, so a diff against the committed
# BENCH_fleet.json is a real regression, not noise.
bench-fleet:
	$(GO) run ./cmd/experiments -only E19 -json > BENCH_fleet.json
	@echo "wrote BENCH_fleet.json"

# journal-race gives the event journal and its consumers a dedicated
# race-detector pass: the group-commit writer, concurrent appenders,
# projection drivers, the service integration (replay → converge →
# ready), and the fleet's journal-suffix anti-entropy all interleave
# goroutines; the kill-between-snapshots binary tests ride along in
# cmd/checkd.
journal-race:
	$(GO) test -race -count=2 ./internal/journal/... ./cmd/checkd/...

# journal-compact-race hammers the retention layer specifically: the
# writer-goroutine compactor racing concurrent appenders, the
# degradation ladder's backpressure gate, the service retention loop
# (snapshot → SetCovered → compact), the fleet's cursor-below-horizon
# digest fallback, and the SIGKILL-mid-compaction binary test — the
# code paths where a lost wakeup or a stale horizon read would corrupt
# durable history.
journal-compact-race:
	$(GO) test -race -count=2 -run \
		'Retention|Compact|Budget|Shed|Backpressure|Horizon|TimeTravel|ReplayTo' \
		./internal/journal/... ./internal/service/... ./internal/fleet/... ./cmd/checkd/...

# bench-journal regenerates the recorded journal baselines: E20 (group
# commit, replay, torn tail) and E21 (retention: bounded disk,
# kill-mid-compaction, degradation ladder). The E21 rows and E20 replay
# rows are deterministic; the E20 throughput rows are wall-clock, so
# review a diff for a Pass:false row, not for drift in the measured
# events/s.
bench-journal:
	$(GO) run ./cmd/experiments -only E20,E21 -json > BENCH_journal.json
	@echo "wrote BENCH_journal.json"
