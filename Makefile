GO ?= go

.PHONY: check fmt vet build test bench

# check is the full gate: formatting, vet, build, and the race-enabled
# test suite. CI and pre-commit both run exactly this.
check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .
