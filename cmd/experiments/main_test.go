package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E1") || !strings.Contains(out, "PASS") {
		t.Fatalf("output:\n%s", out)
	}
	if strings.Contains(out, "E4") {
		t.Fatal("-only leaked other experiments")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E99"}, &b); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E13"} {
		if !strings.Contains(b.String(), id) {
			t.Fatalf("listing missing %s:\n%s", id, b.String())
		}
	}
}

func TestRunJSON(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E1", "-json"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"ID": "E1"`, `"Rows"`, `"Pass": true`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Fatal("bad flag accepted")
	}
}
