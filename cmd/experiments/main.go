// Command experiments regenerates every result of the paper (experiments
// E1–E22; see DESIGN.md for the index) and prints one report per
// experiment. It exits non-zero if any mechanized outcome deviates from
// its recorded expectation.
//
// Usage:
//
//	experiments [-only E4] [-only E20,E21] [-list] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	only := fs.String("only", "", "run selected experiments by ID, comma-separated (e.g. E4 or E20,E21)")
	list := fs.Bool("list", false, "list experiment IDs and titles without running")
	asJSON := fs.Bool("json", false, "emit reports as a JSON array")
	if err := fs.Parse(args); err != nil {
		return err
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				wanted[id] = true
			}
		}
	}
	failed := 0
	matched := false
	var collected []*experiments.Report
	for _, fn := range experiments.All() {
		if *list {
			// Reports are cheap to *construct* only by running; for the
			// listing we run and print the header line only.
			rep := fn()
			fmt.Fprintf(out, "%s  %s\n", rep.ID, rep.Title)
			matched = true
			continue
		}
		rep := fn()
		if len(wanted) > 0 && !wanted[rep.ID] {
			continue
		}
		matched = true
		if *asJSON {
			collected = append(collected, rep)
		} else {
			fmt.Fprintln(out, rep)
		}
		if !rep.Pass() {
			failed++
		}
	}
	if *asJSON && !*list {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) deviated from expectations", failed)
	}
	return nil
}
