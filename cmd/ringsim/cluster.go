package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/store"
	"repro/internal/sim"
)

// runCluster implements `ringsim cluster`: one episode of the
// message-passing runtime with a fault schedule and the online
// convergence monitor's event stream as output.
func runCluster(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringsim cluster", flag.ContinueOnError)
	fs.SetOutput(out)
	protoName := fs.String("protocol", "dijkstra3", "dijkstra3 | dijkstra4 | kstate | newthree")
	p := fs.Int("p", 5, "number of processes (≥ 3)")
	k := fs.Int("k", 0, "K for kstate (default: number of processes)")
	transport := fs.String("transport", "chan", "chan (in-proc, deterministic) | tcp (loopback sockets)")
	seed := fs.Int64("seed", 1, "seed for the scheduler, node move choices, and corruption values")
	steps := fs.Int("steps", 10_000, "step budget for the episode")
	faults := fs.Int("faults", 2, "registers corrupted in the initial configuration")
	schedule := fs.String("schedule", "", `fault schedule, e.g. "corrupt@40:node=1,val=0; drop@60:from=2,to=3,count=2"`)
	snapshotEvery := fs.Int("snapshot-every", 0, "emit a tokens-over-time snapshot event every N steps (0 = none)")
	recordMoves := fs.Bool("moves", false, "add one event per executed move to the stream")
	persist := fs.Bool("persist", false, "persist per-node register snapshots; crash faults recover from them")
	persistDir := fs.String("persist-dir", "", "snapshot directory (default: in-memory store)")
	persistEvery := fs.Int("persist-every", 1, "snapshot interval in steps")
	storageFaultEvery := fs.Int("storage-fault-every", 0, "fault every Nth snapshot write (0 = none; needs -persist)")
	storageFaultKinds := fs.String("storage-fault-kinds", "torn,bitflip,stale,missing", "storage-fault mix for -storage-fault-every (also: enospc)")
	timeout := fs.Duration("timeout", 60*time.Second, "wall-clock bound (matters for -transport tcp)")
	jsonOut := fs.Bool("json", false, "print the full result as JSON instead of the event log")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *p < 3 {
		return fmt.Errorf("-p %d: a ring needs at least 3 processes", *p)
	}
	if *k == 0 {
		*k = *p
	}
	if *k < 1 {
		return fmt.Errorf("-k %d: the kstate domain must have at least 1 value", *k)
	}
	if *steps <= 0 {
		return fmt.Errorf("-steps %d: the step budget must be positive", *steps)
	}
	if *faults < 0 {
		return fmt.Errorf("-faults %d: cannot corrupt a negative number of registers", *faults)
	}
	proto, err := buildProtocol(*protoName, *p, *k)
	if err != nil {
		return err
	}
	sched, err := cluster.ParseSchedule(*schedule)
	if err != nil {
		return fmt.Errorf("-schedule: %v", err)
	}
	var st *store.Store
	if *persist {
		var sfs store.FS
		if *persistDir != "" {
			if sfs, err = store.NewDirFS(*persistDir); err != nil {
				return fmt.Errorf("-persist-dir: %v", err)
			}
		} else {
			sfs = store.NewMemFS()
		}
		if *storageFaultEvery > 0 {
			kinds, err := store.ParseFaultKinds(strings.Split(*storageFaultKinds, ","))
			if err != nil {
				return fmt.Errorf("-storage-fault-kinds: %v", err)
			}
			sfs = store.NewInjector(sfs, *seed, store.Plan{Every: *storageFaultEvery, Kinds: kinds})
		}
		st = store.New(sfs)
	} else if *storageFaultEvery > 0 {
		return fmt.Errorf("-storage-fault-every needs -persist")
	}

	legit, err := sim.LegitimateConfig(proto)
	if err != nil {
		return err
	}
	start := sim.Corrupt(proto, legit, *faults, rand.New(rand.NewSource(*seed)))

	opts := cluster.Options{
		Proto:          proto,
		Seed:           *seed,
		MaxSteps:       *steps,
		Schedule:       sched,
		SnapshotEvery:  *snapshotEvery,
		RecordMoves:    *recordMoves,
		StopWhenStable: true,
		Store:          st,
		PersistEvery:   *persistEvery,
	}
	switch *transport {
	case "chan":
		// nil Transport: Run owns a fresh in-proc ChanTransport.
	case "tcp":
		tr, err := cluster.NewTCPTransport(proto.Procs())
		if err != nil {
			return err
		}
		defer tr.Close()
		opts.Transport = tr
	default:
		return fmt.Errorf("-transport %q: want chan or tcp", *transport)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := cluster.Run(ctx, opts, start)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(out, "%s over %s transport, %d nodes, seed %d, start %v\n",
		res.Protocol, res.Transport, res.Procs, res.Seed, start)
	for _, ev := range res.Events {
		fmt.Fprintf(out, "%6d  %s\n", ev.Step, formatEvent(ev))
	}
	fmt.Fprintf(out, "converged=%v steps=%d moves=%d moves/node=%v final=%v\n",
		res.Converged, res.Steps, res.Moves, res.MovesPerNode, res.Final)
	for _, st := range res.Stabilizations {
		fmt.Fprintf(out, "stabilization: broken at step %d, legitimate at step %d (%d steps)\n",
			st.BrokenAt, st.StableAt, st.Steps)
	}
	if res.Storage != nil {
		fmt.Fprintf(out, "storage: saves=%d restored=%d corrupt=%d stale=%d missing=%d\n",
			res.Storage.Saves, res.Storage.Restored, res.Storage.CorruptLoads,
			res.Storage.StaleLoads, res.Storage.MissingLoads)
	}
	return nil
}

// formatEvent renders one monitor event as a log line.
func formatEvent(ev cluster.Event) string {
	var b strings.Builder
	b.WriteString(ev.Kind)
	if ev.Node >= 0 {
		fmt.Fprintf(&b, " node=%d", ev.Node)
	}
	if ev.Rule != "" {
		fmt.Fprintf(&b, " rule=%s", ev.Rule)
	}
	if ev.Fault != "" {
		fmt.Fprintf(&b, " fault=%q", ev.Fault)
	}
	if ev.From != "" {
		fmt.Fprintf(&b, " from=%s", ev.From)
	}
	if ev.Kind == "stabilized" && ev.After > 0 {
		fmt.Fprintf(&b, " after=%d", ev.After)
	}
	fmt.Fprintf(&b, " tokens=%d", ev.Tokens)
	if len(ev.Config) > 0 {
		fmt.Fprintf(&b, " view=%v", ev.Config)
	}
	return b.String()
}
