// Command ringsim simulates a derived token-ring protocol under a chosen
// daemon, with transient-fault injection, and reports convergence.
//
// Usage:
//
//	ringsim -protocol dijkstra3 -p 8 -faults 4 -runs 50
//	ringsim -protocol kstate -p 6 -k 6 -daemon roundrobin -trace
//	ringsim -protocol dijkstra4 -p 7 -live
//	ringsim cluster -protocol dijkstra3 -p 5 -schedule "corrupt@40:node=1"
//	ringsim chaos -protocol dijkstra3 -p 5 -episodes 20 -recovery-slo 400
//	ringsim fleet -replicas 3 -faults 4 -seed 5
//
// The cluster subcommand runs the message-passing runtime
// (internal/cluster) instead of the shared-memory simulator; the chaos
// subcommand runs a seeded campaign of fault episodes judged against a
// recovery SLO, exiting non-zero on violation; the fleet subcommand
// runs one membership chaos episode against a live in-process checkd
// replica fleet with traffic, exiting non-zero on any 5xx or a failed
// re-convergence. See `ringsim cluster -h`, `ringsim chaos -h`, and
// `ringsim fleet -h`.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "cluster" {
		return runCluster(args[1:], out)
	}
	if len(args) > 0 && args[0] == "chaos" {
		return runChaos(args[1:], out)
	}
	if len(args) > 0 && args[0] == "fleet" {
		return runFleet(args[1:], out)
	}
	fs := flag.NewFlagSet("ringsim", flag.ContinueOnError)
	fs.SetOutput(out)
	protoName := fs.String("protocol", "dijkstra3", "dijkstra3 | dijkstra4 | kstate | newthree")
	p := fs.Int("p", 8, "number of processes (≥ 3)")
	k := fs.Int("k", 0, "K for kstate (default: number of processes)")
	daemonName := fs.String("daemon", "random", "random | roundrobin | greedy")
	seed := fs.Int64("seed", 1, "random seed")
	faults := fs.Int("faults", 3, "registers corrupted at start of each run")
	steps := fs.Int("steps", 100000, "step budget per run")
	runs := fs.Int("runs", 1, "number of runs to aggregate")
	traceRun := fs.Bool("trace", false, "print each configuration of a single run")
	live := fs.Bool("live", false, "run with one goroutine per process (Go scheduler as daemon)")
	service := fs.Bool("service", false, "measure the ring as a mutual-exclusion service")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Validate every numeric flag up front, naming the flag, before any
	// protocol construction: a bad value fails loudly here instead of
	// panicking or spinning deep inside the simulator.
	if *p < 3 {
		return fmt.Errorf("-p %d: a ring needs at least 3 processes", *p)
	}
	if *k == 0 {
		*k = *p
	}
	if *k < 1 {
		return fmt.Errorf("-k %d: the kstate domain must have at least 1 value", *k)
	}
	if *steps <= 0 {
		return fmt.Errorf("-steps %d: the step budget must be positive", *steps)
	}
	if *runs <= 0 {
		return fmt.Errorf("-runs %d: need at least one run", *runs)
	}
	if *faults < 0 {
		return fmt.Errorf("-faults %d: cannot corrupt a negative number of registers", *faults)
	}
	proto, err := buildProtocol(*protoName, *p, *k)
	if err != nil {
		return err
	}

	mkDaemon := func(run int) sim.Daemon {
		switch *daemonName {
		case "random":
			return sim.NewRandomDaemon(*seed + int64(run))
		case "roundrobin":
			return sim.NewRoundRobinDaemon(proto.Procs())
		case "greedy":
			return sim.NewGreedyDaemon(proto)
		default:
			return nil
		}
	}
	if mkDaemon(0) == nil {
		return fmt.Errorf("unknown daemon %q", *daemonName)
	}

	rng := rand.New(rand.NewSource(*seed))
	legit, err := sim.LegitimateConfig(proto)
	if err != nil {
		return err
	}

	if *service {
		start := sim.Corrupt(proto, legit, *faults, rng)
		stats, err := sim.MeasureService(proto, mkDaemon(0), start, *steps)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s as a mutual-exclusion service (%d moves, %d initial faults)\n",
			proto.Name(), stats.Steps, *faults)
		fmt.Fprintf(out, "unsafe window: %d steps (%d violations); entries per process: %v (min %d, max %d)\n",
			stats.StepsToSafety, stats.ViolationSteps, stats.Entries, stats.MinEntries(), stats.MaxEntries())
		return nil
	}

	if *live {
		start := sim.Corrupt(proto, legit, *faults, rng)
		fmt.Fprintf(out, "%s live run from %v (%d corrupted registers)\n", proto.Name(), start, *faults)
		lr := &sim.LiveRing{Proto: proto, MaxSteps: *steps, Seed: *seed}
		res, err := lr.Run(start)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "converged=%v steps=%d final=%v moves=%v\n",
			res.Converged, res.Steps, res.Final, res.Moves)
		return nil
	}

	if *traceRun {
		start := sim.Corrupt(proto, legit, *faults, rng)
		fmt.Fprintf(out, "%s under %s daemon from %v\n", proto.Name(), *daemonName, start)
		cur := start.Clone()
		d := mkDaemon(0)
		for step := 0; step < *steps; step++ {
			fmt.Fprintf(out, "%4d  %v  tokens=%d\n", step, cur, sim.TokenCount(proto, cur))
			if proto.Legitimate(cur) {
				fmt.Fprintf(out, "legitimate after %d steps\n", step)
				return nil
			}
			moves := sim.EnabledMoves(proto, cur)
			if len(moves) == 0 {
				return fmt.Errorf("deadlock at %v", cur)
			}
			m := d.Choose(moves)
			cur[m.Proc] = m.NewVal
		}
		return fmt.Errorf("no convergence within %d steps", *steps)
	}

	stats, err := sim.MeasureConvergence(proto, mkDaemon, *runs, *faults, *steps, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s daemon=%s runs=%d faults=%d\n", proto.Name(), *daemonName, *runs, *faults)
	fmt.Fprintf(out, "converged %d/%d  mean steps %.1f  max steps %d\n",
		stats.Converged, stats.Runs, stats.MeanSteps, stats.MaxSteps)
	return nil
}

// buildProtocol constructs a protocol family by CLI name.
func buildProtocol(name string, p, k int) (sim.Protocol, error) {
	switch name {
	case "dijkstra3":
		return sim.NewDijkstra3(p), nil
	case "dijkstra4":
		return sim.NewDijkstra4(p), nil
	case "kstate":
		return sim.NewKState(p, k), nil
	case "newthree":
		return sim.NewNewThree(p), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}
