package main

import (
	"strings"
	"testing"
)

func TestRunAggregate(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "dijkstra3", "-p", "6", "-runs", "5", "-faults", "3", "-steps", "10000"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "converged 5/5") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunAllProtocolsAndDaemons(t *testing.T) {
	for _, proto := range []string{"dijkstra3", "dijkstra4", "kstate", "newthree"} {
		for _, daemon := range []string{"random", "roundrobin", "greedy"} {
			var b strings.Builder
			err := run([]string{"-protocol", proto, "-daemon", daemon,
				"-p", "5", "-runs", "2", "-steps", "20000"}, &b)
			if err != nil {
				t.Fatalf("%s/%s: %v", proto, daemon, err)
			}
		}
	}
}

func TestRunTrace(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "kstate", "-p", "5", "-k", "5", "-trace", "-faults", "2", "-seed", "3"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "legitimate after") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunLive(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "dijkstra4", "-p", "5", "-live", "-faults", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "converged=true") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunService(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "dijkstra3", "-p", "6", "-service",
		"-faults", "3", "-steps", "2000", "-seed", "9"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "mutual-exclusion service") || !strings.Contains(out, "unsafe window") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-protocol", "nope"}, &b); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run([]string{"-daemon", "nope"}, &b); err == nil {
		t.Fatal("unknown daemon accepted")
	}
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Fatal("bad flag accepted")
	}
}
