package main

import (
	"strings"
	"testing"
)

func TestRunAggregate(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "dijkstra3", "-p", "6", "-runs", "5", "-faults", "3", "-steps", "10000"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "converged 5/5") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunAllProtocolsAndDaemons(t *testing.T) {
	for _, proto := range []string{"dijkstra3", "dijkstra4", "kstate", "newthree"} {
		for _, daemon := range []string{"random", "roundrobin", "greedy"} {
			var b strings.Builder
			err := run([]string{"-protocol", proto, "-daemon", daemon,
				"-p", "5", "-runs", "2", "-steps", "20000"}, &b)
			if err != nil {
				t.Fatalf("%s/%s: %v", proto, daemon, err)
			}
		}
	}
}

func TestRunTrace(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "kstate", "-p", "5", "-k", "5", "-trace", "-faults", "2", "-seed", "3"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "legitimate after") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunLive(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "dijkstra4", "-p", "5", "-live", "-faults", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "converged=true") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunService(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "dijkstra3", "-p", "6", "-service",
		"-faults", "3", "-steps", "2000", "-seed", "9"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "mutual-exclusion service") || !strings.Contains(out, "unsafe window") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-protocol", "nope"}, &b); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run([]string{"-daemon", "nope"}, &b); err == nil {
		t.Fatal("unknown daemon accepted")
	}
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunFlagValidation: every out-of-range numeric flag is rejected up
// front with an error that names the flag, before any simulation runs.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		flag string
	}{
		{"too few processes", []string{"-p", "2"}, "-p"},
		{"negative processes", []string{"-p", "-5"}, "-p"},
		{"zero steps", []string{"-steps", "0"}, "-steps"},
		{"negative steps", []string{"-steps", "-100"}, "-steps"},
		{"zero runs", []string{"-runs", "0"}, "-runs"},
		{"negative runs", []string{"-runs", "-1"}, "-runs"},
		{"negative faults", []string{"-faults", "-1"}, "-faults"},
		{"bad kstate domain", []string{"-protocol", "kstate", "-k", "-2"}, "-k"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tc.args, &b)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.flag) {
				t.Fatalf("error %q does not name the flag %s", err, tc.flag)
			}
		})
	}
}

// TestRunCluster exercises the cluster subcommand end to end over the
// deterministic in-proc transport.
func TestRunCluster(t *testing.T) {
	var b strings.Builder
	err := run([]string{"cluster", "-protocol", "dijkstra3", "-p", "5", "-seed", "6",
		"-faults", "0", "-schedule", "corrupt@40:node=1,val=0", "-snapshot-every", "20"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"chan transport", "fault node=1", "stabilized", "converged=true", "stabilization: broken at step 40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunClusterJSON(t *testing.T) {
	var b strings.Builder
	err := run([]string{"cluster", "-p", "4", "-seed", "2", "-json"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"converged": true`) || !strings.Contains(out, `"events"`) {
		t.Fatalf("JSON output unexpected:\n%s", out)
	}
}

// TestRunClusterErrors: the subcommand validates its flags the same way
// the top-level command does.
func TestRunClusterErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"too few processes", []string{"cluster", "-p", "2"}, "-p"},
		{"zero steps", []string{"cluster", "-steps", "0"}, "-steps"},
		{"negative faults", []string{"cluster", "-faults", "-1"}, "-faults"},
		{"bad kstate domain", []string{"cluster", "-protocol", "kstate", "-k", "-1"}, "-k"},
		{"unknown transport", []string{"cluster", "-transport", "pigeon"}, "-transport"},
		{"bad schedule", []string{"cluster", "-schedule", "meteor@9"}, "-schedule"},
		{"unknown protocol", []string{"cluster", "-protocol", "nope"}, "unknown protocol"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tc.args, &b)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
