package main

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cluster/chaos"
)

func chaosArgs(extra ...string) []string {
	base := []string{"chaos", "-protocol", "dijkstra3", "-p", "5", "-seed", "7",
		"-episodes", "4", "-steps", "4000", "-kinds", "corrupt,restart,partition", "-faults", "3"}
	return append(base, extra...)
}

// TestRunChaos runs a small campaign end to end and checks the JSON
// report shape.
func TestRunChaos(t *testing.T) {
	var b strings.Builder
	if err := run(chaosArgs(), &b); err != nil {
		t.Fatal(err)
	}
	var rep chaos.Report
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("output is not a report: %v\n%s", err, b.String())
	}
	if !rep.Pass || rep.Passed != 4 || rep.Transport != "chan" {
		t.Fatalf("campaign %+v", rep)
	}
	if rep.MTTR.N == 0 || len(rep.Kinds) == 0 {
		t.Fatalf("summary empty: mttr=%+v kinds=%v", rep.MTTR, rep.Kinds)
	}
}

// TestRunChaosDeterministic is the reproducibility acceptance check at
// the CLI level: the same seeded invocation prints byte-identical JSON.
func TestRunChaosDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(chaosArgs(), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(chaosArgs(), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed, different reports:\n%s\n%s", a.String(), b.String())
	}
	var c strings.Builder
	if err := run(chaosArgs("-seed", "8"), &c); err != nil {
		t.Fatal(err)
	}
	if c.String() == a.String() {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestRunChaosSLOExit is the violation acceptance check: with the
// recovery budget deliberately set below the measured worst case, the
// command still prints the report but returns an error (non-zero exit).
func TestRunChaosSLOExit(t *testing.T) {
	var probe strings.Builder
	if err := run(chaosArgs(), &probe); err != nil {
		t.Fatal(err)
	}
	var rep chaos.Report
	if err := json.Unmarshal([]byte(probe.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.MTTR.Max < 2 {
		t.Fatalf("campaign too tame for the violation check: %+v", rep.MTTR)
	}
	var b strings.Builder
	err := run(chaosArgs("-recovery-slo", strconv.Itoa(rep.MTTR.Max-1)), &b)
	if err == nil {
		t.Fatal("budget below measured worst case but exit was clean")
	}
	if !strings.Contains(err.Error(), "SLO violated") {
		t.Fatalf("error %q does not name the SLO", err)
	}
	if !strings.Contains(b.String(), "violations") {
		t.Fatalf("report does not carry violations:\n%s", b.String())
	}
}

// TestRunChaosSweep: a comma-separated gap list runs one campaign per
// gap and reports them together.
func TestRunChaosSweep(t *testing.T) {
	var b strings.Builder
	if err := run(chaosArgs("-gap", "60,30"), &b); err != nil {
		t.Fatal(err)
	}
	var sw chaos.SweepReport
	if err := json.Unmarshal([]byte(b.String()), &sw); err != nil {
		t.Fatalf("output is not a sweep report: %v\n%s", err, b.String())
	}
	if len(sw.Configs) != 2 || !sw.Pass {
		t.Fatalf("sweep %+v", sw)
	}
	if !strings.Contains(sw.Configs[0].Template, "gap=60") || !strings.Contains(sw.Configs[1].Template, "gap=30") {
		t.Fatalf("sweep templates wrong: %q %q", sw.Configs[0].Template, sw.Configs[1].Template)
	}
}

func TestRunChaosErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"too few processes", []string{"chaos", "-p", "2"}, "-p"},
		{"unknown transport", chaosArgs("-transport", "pigeon"), "-transport"},
		{"unknown kind", chaosArgs("-kinds", "corrupt,melt"), "unknown fault kind"},
		{"bad gap", chaosArgs("-gap", "x"), "-gap"},
		{"no cut duration", chaosArgs("-cut-duration", "0"), "cut duration"},
		{"unknown protocol", []string{"chaos", "-protocol", "nope"}, "unknown protocol"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tc.args, &b)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
