package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/fleet"
	"repro/internal/service"
)

// runFleet is the `ringsim fleet` subcommand: one seeded membership
// chaos episode against a live in-process checkd fleet, with paced
// traffic running throughout. It prints the membership event stream —
// the fleet control plane's convergence story — and exits non-zero if
// any request drew a 5xx or the rings failed to re-converge.
func runFleet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringsim fleet", flag.ContinueOnError)
	fs.SetOutput(out)
	replicas := fs.Int("replicas", 3, "fleet size (≥ 2)")
	faults := fs.Int("faults", 4, "membership faults in the campaign")
	gap := fs.Int("gap", 3, "ticks between faults")
	cutdur := fs.Int("cutdur", 2, "ticks a crash or cut persists")
	kinds := fs.String("kinds", "crash,partition", "comma-separated: crash | partition | isolate")
	seed := fs.Int64("seed", 5, "campaign schedule seed")
	tick := fs.Duration("tick", 150*time.Millisecond, "campaign tick length")
	requests := fs.Int("n", 400, "traffic requests during the episode")
	events := fs.Bool("events", false, "print the full membership event stream")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var kindList []cluster.FaultKind
	for _, k := range strings.Split(*kinds, ",") {
		kindList = append(kindList, cluster.FaultKind(strings.TrimSpace(k)))
	}
	tpl := chaos.Template{
		Kinds: kindList, Faults: *faults, Gap: *gap, Start: 1, CutDuration: *cutdur,
	}
	sched, err := tpl.FleetSchedule(*replicas, *seed)
	if err != nil {
		return err
	}

	f, err := fleet.New(fleet.Config{Replicas: *replicas, Service: service.Config{}})
	if err != nil {
		return err
	}
	defer f.Close()
	if !f.AwaitReady(30 * time.Second) {
		return fmt.Errorf("fleet replicas never became ready")
	}
	fmt.Fprintf(out, "fleet of %d replicas, campaign %s seed=%d (%d faults)\n",
		*replicas, tpl.String(), *seed, len(sched))

	ctx := context.Background()
	repc := make(chan *fleet.LoadgenReport, 1)
	errc := make(chan error, 1)
	go func() {
		rep, err := fleet.RunLoadgen(ctx, fleet.LoadgenConfig{
			Addrs:    f.HTTPAddrs(),
			Requests: *requests,
			Warmup:   *requests / 3,
			Seed:     *seed,
			Pace:     *tick / 20,
		})
		repc <- rep
		errc <- err
	}()
	res, err := f.RunCampaign(ctx, sched, *tick)
	if err != nil {
		return err
	}
	rep := <-repc
	if err := <-errc; err != nil {
		return err
	}

	if *events {
		for _, e := range f.Events() {
			fmt.Fprintf(out, "%4d  %-18s %-4s %-4s %s\n", e.Seq, e.Kind, e.Replica, e.Observer, e.Detail)
		}
	}
	counts := map[string]int{}
	for _, e := range f.Events() {
		counts[e.Kind]++
	}
	fmt.Fprintf(out, "faults applied: %v; events: %v\n", res.Faults, counts)
	fmt.Fprintf(out, "traffic: %d requests, hit=%.4f forward=%.4f retried=%d 5xx=%d errors=%d\n",
		rep.Requests, rep.HitRatio, rep.ForwardRatio, rep.Retried, rep.ServerErr5x, rep.Status["error"])
	fmt.Fprintf(out, "re-converged: %v (%dms after final heal)\n", res.Converged, res.ConvergeMS)
	if rep.ServerErr5x > 0 || rep.Status["error"] > 0 {
		return fmt.Errorf("traffic saw %d 5xx and %d transport errors", rep.ServerErr5x, rep.Status["error"])
	}
	if !res.Converged {
		return fmt.Errorf("fleet did not re-converge after the campaign")
	}
	return nil
}
