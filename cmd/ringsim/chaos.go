package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/cluster/store"
)

// runChaos implements `ringsim chaos`: a seeded campaign of fault
// episodes judged against a recovery SLO. The report is printed as
// JSON; the exit status is non-zero when any episode violates the SLO,
// so a chaos run can gate CI.
func runChaos(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringsim chaos", flag.ContinueOnError)
	fs.SetOutput(out)
	protoName := fs.String("protocol", "dijkstra3", "dijkstra3 | dijkstra4 | kstate | newthree")
	p := fs.Int("p", 5, "number of processes (≥ 3)")
	k := fs.Int("k", 0, "K for kstate (default: number of processes)")
	transport := fs.String("transport", "chan", "chan (deterministic, reproducible reports) | tcp (loopback sockets)")
	seed := fs.Int64("seed", 1, "campaign seed; every episode's schedule and scheduling derive from it")
	episodes := fs.Int("episodes", 10, "episodes per configuration")
	steps := fs.Int("steps", 5000, "step budget per episode; not re-stabilizing within it is an SLO violation")
	kinds := fs.String("kinds", "corrupt,restart,partition", "comma-separated fault-kind mix for the schedule template")
	faults := fs.Int("faults", 4, "faults per episode (density)")
	gaps := fs.String("gap", "50", "steps between consecutive faults; a comma-separated list sweeps the gap axis")
	start := fs.Int("start", 30, "step of the first fault")
	cutDuration := fs.Int("cut-duration", 40, "steps a partition or isolation lasts before healing")
	recoverySLO := fs.Int("recovery-slo", 0, "SLO: max steps for any single recovery (0 = unbounded)")
	maxTokens := fs.Int("max-tokens", 0, "SLO: max privilege count at any observed event (0 = unchecked)")
	refreshEvery := fs.Int("refresh-every", 0, "periodic anti-entropy round every N steps (0 = only on partition heals)")
	persist := fs.Bool("persist", false, "give each episode an in-memory snapshot store; crash faults recover from it")
	persistEvery := fs.Int("persist-every", 1, "snapshot interval in steps (with -persist)")
	storageFaultEvery := fs.Int("storage-fault-every", 0, "fault every Nth snapshot write (0 = none; needs -persist)")
	storageFaultKinds := fs.String("storage-fault-kinds", "torn,bitflip,stale,missing", "storage-fault mix for -storage-fault-every (also: enospc)")
	timeout := fs.Duration("timeout", 120*time.Second, "wall-clock bound for the whole campaign")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *p < 3 {
		return fmt.Errorf("-p %d: a ring needs at least 3 processes", *p)
	}
	if *k == 0 {
		*k = *p
	}
	proto, err := buildProtocol(*protoName, *p, *k)
	if err != nil {
		return err
	}
	var kindList []cluster.FaultKind
	for _, s := range strings.Split(*kinds, ",") {
		if s = strings.TrimSpace(s); s != "" {
			kindList = append(kindList, cluster.FaultKind(s))
		}
	}
	var gapList []int
	for _, s := range strings.Split(*gaps, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("-gap %q: %v", *gaps, err)
		}
		gapList = append(gapList, g)
	}
	if len(gapList) == 0 {
		return fmt.Errorf("-gap: need at least one value")
	}

	opts := chaos.Options{
		Proto:    proto,
		Seed:     *seed,
		Episodes: *episodes,
		MaxSteps: *steps,
		Template: chaos.Template{
			Kinds:       kindList,
			Faults:      *faults,
			Gap:         gapList[0],
			Start:       *start,
			CutDuration: *cutDuration,
		},
		SLO:          chaos.SLO{RecoverySteps: *recoverySLO, MaxTokens: *maxTokens},
		RefreshEvery: *refreshEvery,
		Persist:      *persist,
		PersistEvery: *persistEvery,
	}
	if *storageFaultEvery > 0 {
		if !*persist {
			return fmt.Errorf("-storage-fault-every needs -persist")
		}
		sfKinds, err := store.ParseFaultKinds(strings.Split(*storageFaultKinds, ","))
		if err != nil {
			return fmt.Errorf("-storage-fault-kinds: %v", err)
		}
		opts.StorageFaultEvery = *storageFaultEvery
		opts.StorageFaultKinds = sfKinds
	}
	switch *transport {
	case "chan":
		// nil NewTransport: each episode runs on a fresh stepped
		// in-proc transport, making the report reproducible.
	case "tcp":
		opts.NewTransport = func(procs int) (cluster.Transport, error) {
			return cluster.NewTCPTransport(procs)
		}
	default:
		return fmt.Errorf("-transport %q: want chan or tcp", *transport)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if len(gapList) == 1 {
		rep, err := chaos.Run(ctx, opts)
		if err != nil {
			return err
		}
		if err := enc.Encode(rep); err != nil {
			return err
		}
		if !rep.Pass {
			return fmt.Errorf("SLO violated in %d/%d episodes", rep.Failed, rep.Episodes)
		}
		return nil
	}
	templates := make([]chaos.Template, len(gapList))
	for i, g := range gapList {
		templates[i] = opts.Template
		templates[i].Gap = g
	}
	sw, err := chaos.RunSweep(ctx, opts, templates)
	if err != nil {
		return err
	}
	if err := enc.Encode(sw); err != nil {
		return err
	}
	if !sw.Pass {
		failed := 0
		for _, rep := range sw.Configs {
			failed += rep.Failed
		}
		return fmt.Errorf("SLO violated in %d episodes across the sweep", failed)
	}
	return nil
}
