// Command checkd is the long-running verification service: it serves the
// repository's decision procedures over HTTP/JSON with a content-addressed
// verdict cache, a bounded worker pool, and per-request deadlines.
//
// Endpoints:
//
//	POST /v1/selfstab   {"source": <GCL text>}             self-stabilization battery
//	POST /v1/refine     {"concrete": ..., "abstract": ...} the gclc refine battery
//	POST /v1/ringsim    {"family": "dijkstra3", ...}       simulator convergence stats
//	POST /v1/cluster    {"family": "dijkstra3", ...}       message-passing cluster episode
//	POST /v1/lint       {"source": <GCL text>}             static analyzer diagnostics
//	GET  /healthz                                          liveness
//	GET  /readyz                                           readiness (503 while draining or saturated)
//	GET  /metrics                                          expvar-style counters
//
// With -cache-path the verdict cache survives restarts: it is snapshotted
// to the file periodically and on graceful shutdown, and reloaded on
// boot (corrupt entries are skipped and counted in /metrics).
//
// With -journal-path every request, verdict, and outcome is appended to
// an event journal (group-committed, checksum-framed) and the verdict
// cache and /metrics counters are rebuilt from it on boot — so a hard
// kill between cache snapshots loses at most one un-flushed batch, not
// the whole inter-snapshot window. /readyz reports "replaying" until
// the projections converge.
//
// With -journal-max-bytes the journal file is additionally kept under a
// disk budget: a retention loop snapshots the cache every
// -journal-checkpoint-interval and compacts the snapshot-covered journal
// prefix with a crash-safe whole-file rewrite; if compaction alone
// cannot hold the budget, admission degrades deterministically —
// backpressure first, then shedding fire-and-forget events (counted in
// /metrics as journal_shed_total) — while durable verdict appends keep
// their durable-or-error contract.
//
// With -fleet N the process runs N replicas as one logical service on
// loopback listeners: a consistent-hash ring routes each program to its
// owner replica, anti-entropy rounds sync verdict caches, and every
// replica additionally serves GET /fleetz with its view of the fleet.
// Point clients (or cmd/loadgen) at any of the printed addresses.
//
// Usage:
//
//	checkd -addr :8417
//	checkd -addr :8417 -workers 8 -queue 128 -cache 8192 -timeout 10s
//	checkd -addr :8417 -cache-path /var/lib/checkd/cache.snap
//	checkd -fleet 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "checkd:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until the context behind stop (nil means
// SIGINT/SIGTERM) is cancelled. Factored out of main for testing.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("checkd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8417", "listen address")
	workers := fs.Int("workers", 0, "verification worker goroutines (default GOMAXPROCS)")
	queue := fs.Int("queue", 64, "bounded request queue depth (overflow → 429)")
	cacheEntries := fs.Int("cache", 4096, "verdict cache capacity in entries")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "upper bound on requested deadlines")
	budget := fs.Int64("budget", 50_000_000, "default enumeration step budget per request")
	maxStates := fs.Int("max-states", 1<<20, "reject programs with larger declared state spaces")
	cachePath := fs.String("cache-path", "", "persist the verdict cache to this file (empty = in-memory only)")
	cacheSnapshotInterval := fs.Duration("cache-snapshot-interval", 30*time.Second, "background cache snapshot period (with -cache-path)")
	journalPath := fs.String("journal-path", "", "append every request/verdict/outcome to this event journal and rebuild state from it on boot (empty = no journal)")
	journalMaxBytes := fs.Int64("journal-max-bytes", 0, "journal disk budget: compact snapshot-covered history past it, then degrade admission (0 = unbounded; requires -journal-path and -cache-path)")
	journalCheckpointInterval := fs.Duration("journal-checkpoint-interval", 2*time.Second, "cache snapshot + compaction-horizon publish cadence (with -journal-max-bytes)")
	fleetSize := fs.Int("fleet", 0, "run N replicas as one fleet on loopback listeners (0 = single process)")
	fleetBreakerFailures := fs.Int("fleet-breaker-failures", 0, "consecutive forward failures that open a peer breaker (0 = default, negative = disabled; requires -fleet)")
	fleetBreakerBreach := fs.Duration("fleet-breaker-breach", 0, "forward p99 latency that opens a peer breaker (0 = default, negative = disabled; requires -fleet)")
	fleetHedgeDelay := fs.Duration("fleet-hedge-delay", 0, "hedged-forward delay (0 = latency-derived, negative = disabled; requires -fleet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fleetSize <= 0 {
		switch {
		case *fleetBreakerFailures != 0:
			return errors.New("-fleet-breaker-failures requires -fleet (breakers guard forwards between replicas)")
		case *fleetBreakerBreach != 0:
			return errors.New("-fleet-breaker-breach requires -fleet (breakers guard forwards between replicas)")
		case *fleetHedgeDelay != 0:
			return errors.New("-fleet-hedge-delay requires -fleet (hedging races a forward against local compute)")
		}
	}
	retention := journal.Options{MaxBytes: *journalMaxBytes, CheckpointInterval: *journalCheckpointInterval}
	if err := retention.Validate(); err != nil {
		return err
	}
	if *journalMaxBytes > 0 {
		// The budget needs a journal file to bound and snapshots to
		// advance the compaction horizon; without them it could only shed.
		if *journalPath == "" {
			return errors.New("-journal-max-bytes requires -journal-path (there is no journal file to bound)")
		}
		if *cachePath == "" {
			return errors.New("-journal-max-bytes requires -cache-path (cache snapshots are what make journal history compactable)")
		}
	}

	svcCfg := service.Config{
		Workers:                   *workers,
		QueueDepth:                *queue,
		CacheEntries:              *cacheEntries,
		DefaultTimeout:            *timeout,
		MaxTimeout:                *maxTimeout,
		DefaultBudget:             *budget,
		MaxStates:                 *maxStates,
		CachePath:                 *cachePath,
		CacheSnapshotInterval:     *cacheSnapshotInterval,
		JournalPath:               *journalPath,
		JournalMaxBytes:           *journalMaxBytes,
		JournalCheckpointInterval: *journalCheckpointInterval,
	}
	if *fleetSize > 0 {
		if *journalPath != "" {
			return errors.New("-journal-path cannot be combined with -fleet: replicas do not share one journal file")
		}
		return runFleet(fleet.Config{
			Replicas:             *fleetSize,
			Service:              svcCfg,
			BreakerFailures:      *fleetBreakerFailures,
			BreakerLatencyBreach: *fleetBreakerBreach,
			HedgeDelay:           *fleetHedgeDelay,
		}, out, stop)
	}

	svc := service.New(svcCfg)
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(out, "checkd listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	if stop == nil {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sigc)
		select {
		case err := <-errc:
			return err
		case <-sigc:
		}
	} else {
		select {
		case err := <-errc:
			return err
		case <-stop:
		}
	}

	// Drain order: flip /readyz to 503 first so balancers stop routing,
	// then stop the listener and wait out in-flight requests; the deferred
	// Close then takes the final cache snapshot with no requests racing it.
	svc.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "checkd stopped")
	return nil
}

// runFleet serves the configured replicas as one logical service until
// stopped.
func runFleet(cfg fleet.Config, out io.Writer, stop <-chan struct{}) error {
	if cfg.Service.CachePath != "" {
		return errors.New("-cache-path cannot be combined with -fleet: replicas do not share one snapshot file")
	}
	f, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	defer f.Close()
	if !f.AwaitReady(30 * time.Second) {
		return errors.New("fleet replicas never became ready")
	}
	for i, addr := range f.HTTPAddrs() {
		fmt.Fprintf(out, "checkd fleet replica r%d listening on %s\n", i, addr)
	}
	if stop == nil {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sigc)
		<-sigc
	} else {
		<-stop
	}
	fmt.Fprintln(out, "checkd fleet stopped")
	return nil
}
