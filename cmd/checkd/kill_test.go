package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestHelperCheckd is not a test: re-exec'd by the kill tests as a real
// checkd process, so the driver can SIGKILL it with no chance of a
// graceful-shutdown snapshot softening the crash.
func TestHelperCheckd(t *testing.T) {
	if os.Getenv("CHECKD_HELPER") != "1" {
		t.Skip("helper process only")
	}
	if err := run(strings.Fields(os.Getenv("CHECKD_ARGS")), os.Stdout, nil); err != nil {
		t.Fatalf("helper run: %v", err)
	}
}

// startCheckdProcess launches this test binary as a checkd subprocess and
// returns its base URL plus a kill function that SIGKILLs it and reaps.
func startCheckdProcess(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperCheckd$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CHECKD_HELPER=1",
		"CHECKD_ARGS="+strings.Join(append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, args...), " "))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	kill := func() {
		_ = cmd.Process.Kill() // SIGKILL: no deferred Close, no final snapshot
		_ = cmd.Wait()
	}

	addrRE := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
				addrc <- m[1]
				return
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, kill
	case <-time.After(10 * time.Second):
		kill()
		t.Fatal("helper checkd never announced its address")
		return "", nil
	}
}

func postRingsim(t *testing.T, base string) map[string]any {
	t.Helper()
	const req = `{"family":"dijkstra3","procs":5,"seed":11,"runs":3,"steps":5000}`
	resp, err := http.Post(base+"/v1/ringsim", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, m)
	}
	return m
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("checkd never became ready")
}

// TestKillBetweenSnapshotsLosesVerdictWithoutJournal pins the race
// window the journal exists to close: with only interval snapshots (set
// far apart), a SIGKILL between them loses every verdict computed since
// the last snapshot, and the restarted checkd recomputes.
func TestKillBetweenSnapshotsLosesVerdictWithoutJournal(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "cache.snap")
	base, kill := startCheckdProcess(t,
		"-cache-path", cachePath, "-cache-snapshot-interval", "1h")
	if m := postRingsim(t, base); m["cached"] != false {
		t.Fatalf("first submission cannot be cached: %v", m)
	}
	kill()

	base2, shutdown := startCheckd(t,
		"-cache-path", cachePath, "-cache-snapshot-interval", "1h")
	defer shutdown()
	if m := postRingsim(t, base2); m["cached"] != false {
		t.Fatalf("verdict survived a kill between snapshots without a journal — the control is broken: %v", m)
	}
}

// TestKillBetweenSnapshotsReplaysFromJournal is the fix: same SIGKILL
// between snapshots, but with -journal-path the verdict was journaled
// durably before the 200 response, so the restarted checkd replays it
// and serves the identical request as a cache hit.
func TestKillBetweenSnapshotsReplaysFromJournal(t *testing.T) {
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "cache.snap")
	journalPath := filepath.Join(dir, "journal.wal")
	args := []string{
		"-cache-path", cachePath, "-cache-snapshot-interval", "1h",
		"-journal-path", journalPath,
	}
	base, kill := startCheckdProcess(t, args...)
	if m := postRingsim(t, base); m["cached"] != false {
		t.Fatalf("first submission cannot be cached: %v", m)
	}
	kill()

	base2, shutdown := startCheckd(t, args...)
	defer shutdown()
	waitReady(t, base2) // 503 "replaying" until the projections converge
	if m := postRingsim(t, base2); m["cached"] != true {
		t.Fatalf("restarted checkd recomputed instead of replaying the journaled verdict: %v", m)
	}
}

// postRingsimSeed submits one small ringsim request whose cache key is
// unique to seed, returning the decoded response.
func postRingsimSeed(t *testing.T, base string, seed int) map[string]any {
	t.Helper()
	req := fmt.Sprintf(`{"family":"dijkstra3","procs":3,"seed":%d,"runs":1,"steps":2000}`, seed)
	resp, err := http.Post(base+"/v1/ringsim", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed %d: status %d: %v", seed, resp.StatusCode, m)
	}
	return m
}

// retentionCompactions reads journal compaction and shed counters from
// /metrics (0, 0 when the section is absent).
func retentionCompactions(t *testing.T, base string) (compactions, shed int64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Journal *struct {
			Retention *struct {
				Compactions int64 `json:"compactions"`
				Shed        int64 `json:"journal_shed_total"`
			} `json:"retention"`
		} `json:"journal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Journal == nil || snap.Journal.Retention == nil {
		return 0, 0
	}
	return snap.Journal.Retention.Compactions, snap.Journal.Retention.Shed
}

// TestKillMidCompactionLosesNoAckedVerdict is the retention acceptance
// crash test: a checkd under a journal disk budget, with the retention
// loop snapshotting and compacting every 25ms while distinct verdicts
// stream in, is SIGKILLed while compactions are actively rewriting the
// journal file. The restarted process — old journal bytes or new, plus
// whatever cache snapshot landed — must serve every acknowledged
// verdict as a cache hit: compaction's atomic swap never strands an
// acked verdict between the snapshot and the journal.
func TestKillMidCompactionLosesNoAckedVerdict(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-cache-path", filepath.Join(dir, "cache.snap"),
		"-cache-snapshot-interval", "1h", // retention loop drives snapshots, not this
		"-journal-path", filepath.Join(dir, "journal.wal"),
		"-journal-max-bytes", "65536",
		"-journal-checkpoint-interval", "25ms",
	}
	base, kill := startCheckdProcess(t, args...)

	// Stream distinct verdicts until several compactions have landed, so
	// the SIGKILL falls into an active snapshot/compact/rewrite cycle.
	acked := 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := postRingsimSeed(t, base, acked); m["cached"] != false {
			t.Fatalf("seed %d: first submission served cached: %v", acked, m)
		}
		acked++
		if c, _ := retentionCompactions(t, base); c >= 3 && acked >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no compactions observed within the deadline")
		}
	}
	kill() // SIGKILL: no drain, no final snapshot, compaction mid-flight

	base2, shutdown := startCheckd(t, args...)
	defer shutdown()
	waitReady(t, base2)
	for seed := 0; seed < acked; seed++ {
		if m := postRingsimSeed(t, base2, seed); m["cached"] != true {
			t.Fatalf("acked verdict for seed %d lost across kill-mid-compaction: %v", seed, m)
		}
	}
}

// TestRunRejectsBadRetentionFlags: nonsense retention settings are
// rejected at flag-validation time with errors naming the flag.
func TestRunRejectsBadRetentionFlags(t *testing.T) {
	cases := []struct {
		args    []string
		wantSub string
	}{
		{[]string{"-journal-max-bytes", "-1"}, "-journal-max-bytes"},
		{[]string{"-journal-max-bytes", "1024"}, "group-commit batch"},
		{[]string{"-journal-max-bytes", "65536", "-journal-checkpoint-interval", "0s"}, "-journal-checkpoint-interval"},
		{[]string{"-journal-max-bytes", "65536", "-cache-path", "c.snap"}, "-journal-path"},
		{[]string{"-journal-max-bytes", "65536", "-journal-path", "j.wal"}, "-cache-path"},
	}
	for _, tc := range cases {
		var out syncBuffer
		err := run(tc.args, &out, nil)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("args %v: err %v does not name %q", tc.args, err, tc.wantSub)
		}
	}
}

func TestRunRejectsJournalWithFleet(t *testing.T) {
	var out syncBuffer
	err := run([]string{"-fleet", "2", "-journal-path", "j.wal"}, &out, nil)
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("want -journal-path/-fleet conflict error, got %v", err)
	}
}
