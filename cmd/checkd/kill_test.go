package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestHelperCheckd is not a test: re-exec'd by the kill tests as a real
// checkd process, so the driver can SIGKILL it with no chance of a
// graceful-shutdown snapshot softening the crash.
func TestHelperCheckd(t *testing.T) {
	if os.Getenv("CHECKD_HELPER") != "1" {
		t.Skip("helper process only")
	}
	if err := run(strings.Fields(os.Getenv("CHECKD_ARGS")), os.Stdout, nil); err != nil {
		t.Fatalf("helper run: %v", err)
	}
}

// startCheckdProcess launches this test binary as a checkd subprocess and
// returns its base URL plus a kill function that SIGKILLs it and reaps.
func startCheckdProcess(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperCheckd$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CHECKD_HELPER=1",
		"CHECKD_ARGS="+strings.Join(append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, args...), " "))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	kill := func() {
		_ = cmd.Process.Kill() // SIGKILL: no deferred Close, no final snapshot
		_ = cmd.Wait()
	}

	addrRE := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
				addrc <- m[1]
				return
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, kill
	case <-time.After(10 * time.Second):
		kill()
		t.Fatal("helper checkd never announced its address")
		return "", nil
	}
}

func postRingsim(t *testing.T, base string) map[string]any {
	t.Helper()
	const req = `{"family":"dijkstra3","procs":5,"seed":11,"runs":3,"steps":5000}`
	resp, err := http.Post(base+"/v1/ringsim", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, m)
	}
	return m
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("checkd never became ready")
}

// TestKillBetweenSnapshotsLosesVerdictWithoutJournal pins the race
// window the journal exists to close: with only interval snapshots (set
// far apart), a SIGKILL between them loses every verdict computed since
// the last snapshot, and the restarted checkd recomputes.
func TestKillBetweenSnapshotsLosesVerdictWithoutJournal(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "cache.snap")
	base, kill := startCheckdProcess(t,
		"-cache-path", cachePath, "-cache-snapshot-interval", "1h")
	if m := postRingsim(t, base); m["cached"] != false {
		t.Fatalf("first submission cannot be cached: %v", m)
	}
	kill()

	base2, shutdown := startCheckd(t,
		"-cache-path", cachePath, "-cache-snapshot-interval", "1h")
	defer shutdown()
	if m := postRingsim(t, base2); m["cached"] != false {
		t.Fatalf("verdict survived a kill between snapshots without a journal — the control is broken: %v", m)
	}
}

// TestKillBetweenSnapshotsReplaysFromJournal is the fix: same SIGKILL
// between snapshots, but with -journal-path the verdict was journaled
// durably before the 200 response, so the restarted checkd replays it
// and serves the identical request as a cache hit.
func TestKillBetweenSnapshotsReplaysFromJournal(t *testing.T) {
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "cache.snap")
	journalPath := filepath.Join(dir, "journal.wal")
	args := []string{
		"-cache-path", cachePath, "-cache-snapshot-interval", "1h",
		"-journal-path", journalPath,
	}
	base, kill := startCheckdProcess(t, args...)
	if m := postRingsim(t, base); m["cached"] != false {
		t.Fatalf("first submission cannot be cached: %v", m)
	}
	kill()

	base2, shutdown := startCheckd(t, args...)
	defer shutdown()
	waitReady(t, base2) // 503 "replaying" until the projections converge
	if m := postRingsim(t, base2); m["cached"] != true {
		t.Fatalf("restarted checkd recomputed instead of replaying the journaled verdict: %v", m)
	}
}

func TestRunRejectsJournalWithFleet(t *testing.T) {
	var out syncBuffer
	err := run([]string{"-fleet", "2", "-journal-path", "j.wal"}, &out, nil)
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("want -journal-path/-fleet conflict error, got %v", err)
	}
}
