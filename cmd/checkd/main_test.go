package main

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run()'s output while the server goroutine
// writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunServesAndStops(t *testing.T) {
	var out syncBuffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out, stop) }()

	addrRE := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never announced its address; output: %q", out.String())
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "checkd stopped") {
		t.Fatalf("missing shutdown message: %q", out.String())
	}
}

// startCheckd runs checkd with the given extra flags and returns its
// base URL plus a shutdown function that waits for a clean exit.
func startCheckd(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	var out syncBuffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extra...)
	go func() { done <- run(args, &out, stop) }()

	addrRE := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never announced its address; output: %q", out.String())
	}
	return "http://" + addr, func() {
		close(stop)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
}

// TestRunCachePersistsAcrossRestart: the issue's acceptance path at the
// binary level. A checkd with -cache-path computes one verdict, shuts
// down gracefully, and a second checkd on the same path answers the
// identical request from the persisted cache.
func TestRunCachePersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	req := `{"family":"dijkstra3","procs":5,"seed":3,"runs":3,"steps":5000}`

	post := func(base string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+"/v1/ringsim", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %v", resp.StatusCode, m)
		}
		return m
	}

	base, shutdown := startCheckd(t, "-cache-path", path)
	if m := post(base); m["cached"] != false {
		t.Fatalf("first submission cannot be cached: %v", m)
	}
	shutdown()

	base, shutdown = startCheckd(t, "-cache-path", path)
	defer shutdown()
	if m := post(base); m["cached"] != true {
		t.Fatalf("restarted checkd recomputed instead of serving the persisted verdict: %v", m)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-bogus"}, &out, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBadAddr(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-addr", "not-an-address:nope"}, &out, nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
