package main

import (
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run()'s output while the server goroutine
// writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunServesAndStops(t *testing.T) {
	var out syncBuffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out, stop) }()

	addrRE := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never announced its address; output: %q", out.String())
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "checkd stopped") {
		t.Fatalf("missing shutdown message: %q", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-bogus"}, &out, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBadAddr(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-addr", "not-an-address:nope"}, &out, nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
