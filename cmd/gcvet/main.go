// Command gcvet runs the repository's custom analyzer suite (see
// internal/analysis/gcvet). It speaks the `go vet -vettool` protocol,
// so the two supported invocations are equivalent:
//
//	go vet -vettool=$(go env GOPATH)/bin/gcvet ./...
//	gcvet ./...   (re-executes itself through go vet)
//
// `make vet` builds it into bin/gcvet and runs it over the module.
package main

import "repro/internal/analysis/gcvet"

func main() {
	gcvet.Main(gcvet.All())
}
