// Command refcheck runs the paper's relation battery for one token-ring
// family and ring size: refinements, convergence refinements, and
// stabilization, each with a ✓/✗ verdict. With -witness, failing verdicts
// additionally print their counterexample computation in the concrete
// system's own state vocabulary.
//
// Usage:
//
//	refcheck -family btr4 -n 3
//	refcheck -family btr3 -n 4 -fair -witness
//	refcheck -family kstate -n 3 -k 4
//	refcheck -family btr -n 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/system"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "refcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("refcheck", flag.ContinueOnError)
	fs.SetOutput(out)
	family := fs.String("family", "btr3", "btr | btr3 | btr4 | kstate")
	n := fs.Int("n", 3, "top process index N (N+1 processes, N ≥ 2)")
	k := fs.Int("k", 0, "K for the kstate family (default N+1)")
	fair := fs.Bool("fair", false, "btr3 only: also check Lemma 9 under weak fairness")
	witness := fs.Bool("witness", false, "print counterexample computations for failing verdicts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("-n %d: need at least 3 processes in the ring (N ≥ 2)", *n)
	}
	if *k == 0 {
		*k = *n + 1
	}
	if *k < 1 {
		return fmt.Errorf("-k %d: the kstate family needs K ≥ 1", *k)
	}

	// show prints a verdict; with -witness, failing verdicts also print
	// the counterexample formatted over the concrete system's state space.
	show := func(v core.Verdict, concrete *system.System) {
		fmt.Fprintln(out, v)
		if *witness && !v.Holds && len(v.Witness) > 0 {
			fmt.Fprintln(out, "  witness:", v.FormatWitness(concrete))
		}
	}

	switch *family {
	case "btr":
		b := ring.NewBTR(*n)
		btr := b.System()
		show(core.SelfStabilizing(btr).Verdict, btr)
		wrapped := b.Wrapped()
		show(core.Stabilizing(wrapped, btr, nil).Verdict, wrapped)
		plain := b.WrappedPlain()
		show(core.Stabilizing(plain, btr, nil).Verdict, plain)
		return nil

	case "btr4":
		b := ring.NewBTR(*n)
		f := ring.NewFourState(*n)
		ab, err := f.Abstraction(b)
		if err != nil {
			return err
		}
		btr := b.System()
		btr4, c1, d4 := f.BTR4(), f.C1(), f.Dijkstra4()
		show(core.ConvergenceRefinement(btr4, btr, ab).Verdict, btr4)
		show(core.ConvergenceRefinement(c1, btr, ab).Verdict, c1)
		show(core.Stabilizing(c1, btr, ab).Verdict, c1)
		show(core.Stabilizing(d4, btr, ab).Verdict, d4)
		show(core.ConvergenceRefinement(d4, btr, ab).Verdict, d4)
		show(core.SelfStabilizing(d4).Verdict, d4)
		return nil

	case "btr3":
		b := ring.NewBTR(*n)
		f := ring.NewThreeState(*n)
		ab, err := f.Abstraction(b)
		if err != nil {
			return err
		}
		btr := b.System()
		lemma9 := f.Lemma9System()
		c2comp := f.ComposedC2()
		d3 := f.Dijkstra3()
		c3 := f.C3().StripSelfLoops()
		nt := f.NewThree()
		show(core.Stabilizing(lemma9, btr, ab).Verdict, lemma9)
		show(core.ConvergenceRefinement(c2comp, lemma9, nil).Verdict, c2comp)
		show(core.Stabilizing(c2comp, btr, ab).Verdict, c2comp)
		show(core.Stabilizing(d3, btr, ab).Verdict, d3)
		show(core.ConvergenceRefinement(c3, btr, ab).Verdict, c3)
		show(core.Stabilizing(nt, btr, ab).Verdict, nt)
		fmt.Fprintf(out, "  aggressive variant = Dijkstra3: %v\n",
			system.TransitionsEqual(f.AggressiveThree(), d3))
		if *fair {
			lab := f.Lemma9Labeled()
			show(core.FairStabilizing(lab, btr, ab).Verdict, lab.Base())
		}
		return nil

	case "kstate":
		u := ring.NewUTR(*n)
		ks := ring.NewKState(*n, *k)
		ab, err := ks.Abstraction(u)
		if err != nil {
			return err
		}
		utr := u.System()
		wrapped := u.Wrapped()
		ksys := ks.System()
		show(core.Stabilizing(wrapped, utr, nil).Verdict, wrapped)
		show(core.SelfStabilizing(ksys).Verdict, ksys)
		show(core.Stabilizing(ksys, utr, ab).Verdict, ksys)
		return nil

	default:
		return fmt.Errorf("unknown family %q", *family)
	}
}
