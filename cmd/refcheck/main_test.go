package main

import (
	"strings"
	"testing"
)

func TestRunFamilies(t *testing.T) {
	for _, family := range []string{"btr", "btr3", "btr4", "kstate"} {
		var b strings.Builder
		if err := run([]string{"-family", family, "-n", "2"}, &b); err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if !strings.Contains(b.String(), "✓") {
			t.Fatalf("%s output has no passing verdicts:\n%s", family, b.String())
		}
	}
}

func TestRunBTR3ShowsFindings(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "btr3", "-n", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Lemma 10 and Lemma 12 failures are expected findings at N=3.
	if !strings.Contains(out, "✗") {
		t.Fatalf("expected recorded findings in output:\n%s", out)
	}
	if !strings.Contains(out, "aggressive variant = Dijkstra3: true") {
		t.Fatalf("missing equality line:\n%s", out)
	}
}

func TestRunWitnessFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "btr3", "-n", "3", "-witness"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "witness: c0=") {
		t.Fatalf("witness lines missing:\n%s", b.String())
	}
}

func TestRunFairFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "btr3", "-n", "4", "-fair"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "weak fairness") {
		t.Fatalf("fair verdict missing:\n%s", b.String())
	}
}

func TestRunUnknownFamily(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "nope"}, &b); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-bogus"}, &b); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunValidatesSizes checks that degenerate ring sizes are rejected
// up front with a clear message, before any construction work.
func TestRunValidatesSizes(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-n", "1"}, "N ≥ 2"},
		{[]string{"-n", "0"}, "N ≥ 2"},
		{[]string{"-n", "-3"}, "N ≥ 2"},
		{[]string{"-family", "kstate", "-n", "3", "-k", "-1"}, "K ≥ 1"},
	}
	for _, tc := range cases {
		var b strings.Builder
		err := run(tc.args, &b)
		if err == nil {
			t.Errorf("%v: accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}
