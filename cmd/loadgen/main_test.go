package main

import (
	"strings"
	"testing"
)

// TestRunFlagValidation drives every up-front rejection path: each bad
// flag value must fail before any fleet or socket work, with an error
// that names the offending flag.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error, starting with the flag name
	}{
		{"negative replicas", []string{"-replicas", "-1"}, "-replicas -1:"},
		{"zero requests", []string{"-replicas", "1", "-n", "0"}, "-n 0:"},
		{"negative requests", []string{"-replicas", "1", "-n", "-5"}, "-n -5:"},
		{"negative warmup", []string{"-replicas", "1", "-warmup", "-1"}, "-warmup -1:"},
		{"warmup swallows run", []string{"-replicas", "1", "-n", "100", "-warmup", "100"}, "-warmup 100:"},
		{"zero programs", []string{"-replicas", "1", "-programs", "0"}, "-programs 0:"},
		{"flat zipf", []string{"-replicas", "1", "-zipf", "1.0"}, "-zipf 1:"},
		{"zero concurrency", []string{"-replicas", "1", "-concurrency", "0"}, "-concurrency 0:"},
		{"zero timeout", []string{"-replicas", "1", "-timeout-ms", "0"}, "-timeout-ms 0:"},
		{"negative pace", []string{"-replicas", "1", "-pace", "-1s"}, "-pace -1s:"},
		{"chaos without faults", []string{"-replicas", "1", "-chaos", "-chaos-faults", "0"}, "-chaos-faults 0:"},
		{"no target", nil, "need -addrs or -replicas"},
		{"both targets", []string{"-replicas", "1", "-addrs", "x:1"}, "mutually exclusive"},
		{"chaos without fleet", []string{"-addrs", "x:1", "-chaos"}, "-chaos needs an in-process fleet"},
		{"short mix", []string{"-replicas", "1", "-mix", "60,40"}, "three comma-separated percentages"},
		{"mix sum", []string{"-replicas", "1", "-mix", "60,30,20"}, "sums to 110"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			err := run(tc.args, &b)
			if err == nil {
				t.Fatalf("args %v accepted, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestRunValidationBeforeFleet: a bad numeric flag must be rejected
// even when the target flags are also wrong — validation runs before
// any fleet is spun up or address dialed.
func TestRunValidationBeforeFleet(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-n", "0"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-n 0:") {
		t.Fatalf("got %v, want the -n rejection before target resolution", err)
	}
}
