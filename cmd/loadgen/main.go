// Command loadgen is the fleet load-generator harness: a seeded
// closed-loop traffic source for checkd replicas, reporting latency
// percentiles, throughput, cache-hit and forward ratios, and
// back-pressure counts (429/504) as JSON.
//
// Two target modes:
//
//   - -addrs host:port,host:port,…  drive an already-running fleet
//     (e.g. one started with checkd -fleet 3);
//   - -replicas N  spin an in-process fleet of N replicas, drive it,
//     and tear it down — a self-contained smoke test and benchmark.
//
// With -replicas, -chaos additionally runs a seeded chaos campaign
// (crash + partition by default; -chaos-kinds widens the mix to the
// gray kinds slow-peer, asym-partition, and garbage-reply) while the
// traffic runs; the fleet must keep answering without a single 5xx,
// and the report gains the campaign result and the membership event
// counts. -breaker-failures, -breaker-breach, and -hedge-delay tune
// the fleet's failure-domain hardening for the run, and the
// per-replica report section carries the breaker, hedge, and
// deadline-budget counters.
//
// The workload is pre-generated from -seed: request kinds from the
// -mix percentages, program popularity Zipf-skewed over -programs
// distinct programs, entry replica round-robin. With -concurrency 1
// every count in the report is deterministic for a fixed seed; latency
// and throughput are wall-clock measurements.
//
// Usage:
//
//	loadgen -replicas 3 -n 600 -warmup 200
//	loadgen -replicas 3 -chaos -fail-on-5xx
//	loadgen -addrs 127.0.0.1:8417 -n 200 -out report.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/fleet"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// fullReport is the loadgen report plus the optional campaign section.
type fullReport struct {
	*fleet.LoadgenReport
	Campaign *fleet.CampaignResult `json:"campaign,omitempty"`
	Events   map[string]int        `json:"events,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(out)
	addrs := fs.String("addrs", "", "comma-separated replica HTTP addresses to drive")
	replicas := fs.Int("replicas", 0, "spin an in-process fleet of N replicas instead of -addrs")
	n := fs.Int("n", 600, "total requests")
	warmup := fs.Int("warmup", 200, "requests excluded from hit-ratio and latency stats")
	programs := fs.Int("programs", 20, "distinct program population")
	seed := fs.Int64("seed", 1, "workload seed")
	zipf := fs.Float64("zipf", 1.2, "Zipf skew over the program population (> 1)")
	mix := fs.String("mix", "60,30,10", "check,lint,refine traffic mix in percent")
	concurrency := fs.Int("concurrency", 1, "closed-loop workers (1 = deterministic counts)")
	timeoutMS := fs.Int64("timeout-ms", 30_000, "per-request timeout_ms")
	pace := fs.Duration("pace", 0, "sleep between consecutive requests per worker (spreads load across a campaign)")
	journalMode := fs.Bool("journal", false, "event-source the in-process fleet: per-replica journals, suffix-based anti-entropy (needs -replicas)")
	chaosRun := fs.Bool("chaos", false, "run a seeded chaos campaign during the load (needs -replicas)")
	chaosFaults := fs.Int("chaos-faults", 3, "campaign fault count")
	chaosKinds := fs.String("chaos-kinds", "crash,partition", "comma-separated campaign fault kinds (crash, partition, isolate, slow-peer, asym-partition, garbage-reply)")
	slowDelay := fs.Duration("slow-delay", 200*time.Millisecond, "injected per-operation delay for slow-peer faults")
	breakerFailures := fs.Int("breaker-failures", 0, "consecutive forward failures that open a peer breaker (0 = fleet default, negative = disabled)")
	breakerBreach := fs.Duration("breaker-breach", 0, "forward p99 latency that opens a peer breaker (0 = fleet default, negative = disabled)")
	hedgeDelay := fs.Duration("hedge-delay", 0, "fixed hedged-forward delay (0 = latency-derived, negative = disabled)")
	failOn5xx := fs.Bool("fail-on-5xx", false, "exit non-zero if any response was a 5xx or transport error")
	outPath := fs.String("out", "", "write the JSON report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Up-front validation, ringsim-style: every rejection names the
	// offending flag, so a typo fails fast instead of surfacing as a
	// confusing mid-run error (or a silent nonsense workload).
	switch {
	case *replicas < 0:
		return fmt.Errorf("-replicas %d: cannot spin a negative number of replicas", *replicas)
	case *n <= 0:
		return fmt.Errorf("-n %d: the run needs at least one request", *n)
	case *warmup < 0:
		return fmt.Errorf("-warmup %d: cannot exclude a negative number of requests", *warmup)
	case *warmup >= *n:
		return fmt.Errorf("-warmup %d: must be smaller than -n %d or no request counts toward the stats", *warmup, *n)
	case *programs <= 0:
		return fmt.Errorf("-programs %d: the program population must be positive", *programs)
	case *zipf <= 1:
		return fmt.Errorf("-zipf %g: the Zipf skew must exceed 1", *zipf)
	case *concurrency <= 0:
		return fmt.Errorf("-concurrency %d: need at least one closed-loop worker", *concurrency)
	case *timeoutMS <= 0:
		return fmt.Errorf("-timeout-ms %d: the per-request timeout must be positive", *timeoutMS)
	case *pace < 0:
		return fmt.Errorf("-pace %s: cannot sleep a negative duration between requests", *pace)
	case *chaosRun && *chaosFaults <= 0:
		return fmt.Errorf("-chaos-faults %d: a chaos campaign needs at least one fault", *chaosFaults)
	case *slowDelay < 0:
		return fmt.Errorf("-slow-delay %s: cannot inject a negative delay", *slowDelay)
	case *breakerFailures != 0 && *replicas == 0:
		return fmt.Errorf("-breaker-failures %d: breaker tuning needs an in-process fleet (-replicas)", *breakerFailures)
	case *breakerBreach != 0 && *replicas == 0:
		return fmt.Errorf("-breaker-breach %s: breaker tuning needs an in-process fleet (-replicas)", *breakerBreach)
	case *hedgeDelay != 0 && *replicas == 0:
		return fmt.Errorf("-hedge-delay %s: hedge tuning needs an in-process fleet (-replicas)", *hedgeDelay)
	}
	mixVal, err := parseMix(*mix)
	if err != nil {
		return err
	}
	kindsVal, err := parseChaosKinds(*chaosKinds)
	if err != nil {
		return err
	}

	var targets []string
	var f *fleet.Fleet
	switch {
	case *replicas > 0 && *addrs != "":
		return errors.New("-addrs and -replicas are mutually exclusive")
	case *replicas > 0:
		f, err = fleet.New(fleet.Config{
			Replicas:             *replicas,
			Service:              service.Config{},
			Journal:              *journalMode,
			BreakerFailures:      *breakerFailures,
			BreakerLatencyBreach: *breakerBreach,
			HedgeDelay:           *hedgeDelay,
		})
		if err != nil {
			return err
		}
		defer f.Close()
		if !f.AwaitReady(30 * time.Second) {
			return errors.New("fleet replicas never became ready")
		}
		targets = f.HTTPAddrs()
	case *addrs != "":
		targets = strings.Split(*addrs, ",")
	default:
		return errors.New("need -addrs or -replicas")
	}
	if *chaosRun && f == nil {
		return errors.New("-chaos needs an in-process fleet (-replicas)")
	}
	if *journalMode && f == nil {
		return errors.New("-journal needs an in-process fleet (-replicas)")
	}

	ctx := context.Background()
	campc := make(chan *fleet.CampaignResult, 1)
	campErr := make(chan error, 1)
	if *chaosRun {
		tpl := chaos.Template{
			Kinds:       kindsVal,
			Faults:      *chaosFaults,
			Gap:         3,
			Start:       1,
			CutDuration: 2,
			SlowDelayMS: slowDelay.Milliseconds(),
		}
		sched, err := tpl.FleetSchedule(*replicas, *seed)
		if err != nil {
			return err
		}
		go func() {
			res, err := f.RunCampaign(ctx, sched, 150*time.Millisecond)
			campc <- res
			campErr <- err
		}()
	}

	rep, err := fleet.RunLoadgen(ctx, fleet.LoadgenConfig{
		Addrs:       targets,
		Requests:    *n,
		Warmup:      *warmup,
		Programs:    *programs,
		Seed:        *seed,
		ZipfS:       *zipf,
		Mix:         mixVal,
		Concurrency: *concurrency,
		TimeoutMS:   *timeoutMS,
		Pace:        *pace,
	})
	if err != nil {
		return err
	}
	full := fullReport{LoadgenReport: rep}
	if *chaosRun {
		full.Campaign = <-campc
		if err := <-campErr; err != nil {
			return fmt.Errorf("chaos campaign: %w", err)
		}
		full.Events = map[string]int{}
		for _, e := range f.Events() {
			full.Events[e.Kind]++
		}
	}

	raw, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "loadgen: report written to %s\n", *outPath)
	} else {
		_, _ = out.Write(raw)
	}

	if *failOn5xx && (rep.ServerErr5x > 0 || rep.Status["error"] > 0) {
		return fmt.Errorf("run saw %d 5xx responses and %d transport errors",
			rep.ServerErr5x, rep.Status["error"])
	}
	if full.Campaign != nil && !full.Campaign.Converged {
		return errors.New("fleet did not re-converge after the chaos campaign")
	}
	return nil
}

// parseChaosKinds parses "crash,partition,slow-peer" into fault kinds,
// accepting only the kinds a live fleet campaign can apply.
func parseChaosKinds(s string) ([]cluster.FaultKind, error) {
	allowed := map[cluster.FaultKind]bool{}
	for _, k := range chaos.FleetKinds() {
		allowed[k] = true
	}
	var kinds []cluster.FaultKind
	for _, p := range strings.Split(s, ",") {
		k := cluster.FaultKind(strings.TrimSpace(p))
		if k == "" {
			continue
		}
		if !allowed[k] {
			return nil, fmt.Errorf("-chaos-kinds %q: %q is not a fleet fault kind (want a subset of %v)",
				s, k, chaos.FleetKinds())
		}
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-chaos-kinds %q: need at least one fault kind", s)
	}
	return kinds, nil
}

// parseMix parses "60,30,10" into a Mix summing to 100.
func parseMix(s string) (fleet.Mix, error) {
	var m fleet.Mix
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return m, fmt.Errorf("mix %q: want three comma-separated percentages", s)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &vals[i]); err != nil {
			return m, fmt.Errorf("mix %q: %v", s, err)
		}
	}
	if vals[0]+vals[1]+vals[2] != 100 {
		return m, fmt.Errorf("mix %q sums to %d, want 100", s, vals[0]+vals[1]+vals[2])
	}
	m.CheckPct, m.LintPct, m.RefinePct = vals[0], vals[1], vals[2]
	return m, nil
}
