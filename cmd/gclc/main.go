// Command gclc is the guarded-command language tool: it parses, checks,
// formats, enumerates, and model-checks GCL programs written in the
// paper's notation.
//
// Usage:
//
//	gclc print prog.gcl          reformat the program
//	gclc info prog.gcl           state-space and automaton summary
//	gclc selfstab prog.gcl       check "prog is stabilizing to prog"
//	gclc dot prog.gcl            emit Graphviz (small programs only)
//	gclc refine C.gcl A.gcl      check [C ⊑ A]_init, [C ⊑ A], [C ⪯ A],
//	                             C stabilizing to A (shared state space)
//	gclc optimize prog.gcl       simplify the program and certify the
//	                             rewrite stabilization preserving
//	gclc lint [-json] prog.gcl   static analysis: dead guards, domain
//	                             escapes, stutter actions, … (exit 1 on
//	                             error-severity diagnostics)
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/gcl"
	"repro/internal/gcl/analysis"
	"repro/internal/mc"
	"repro/internal/system"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gclc:", err)
		os.Exit(1)
	}
}

// usageError builds a per-command usage failure that names the
// missing operand, so `gclc print` says what operand it wants instead
// of dumping the global usage line.
func usageError(cmd, operands, missing string) error {
	return fmt.Errorf("usage: gclc %s %s: missing %s operand", cmd, operands, missing)
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: gclc <print|info|selfstab|dot|refine|optimize|lint> [-json] <file.gcl> [file2.gcl]")
	}
	cmd := args[0]
	args = args[1:]

	// lint takes an optional -json flag before its file operand; the
	// other commands take plain file operands.
	jsonOut := false
	if cmd == "lint" && len(args) > 0 && args[0] == "-json" {
		jsonOut = true
		args = args[1:]
	}
	if len(args) < 1 {
		operands := "<file.gcl>"
		if cmd == "refine" {
			operands = "<concrete.gcl> <abstract.gcl>"
		} else if cmd == "lint" {
			operands = "[-json] <file.gcl>"
		}
		return usageError(cmd, operands, "file")
	}
	path := args[0]

	compile := func(p string) (*gcl.Compiled, error) {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		return gcl.Compile(p, string(src))
	}

	switch cmd {
	case "print":
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		prog, err := gcl.Parse(string(src))
		if err != nil {
			return err
		}
		fmt.Fprint(out, prog)
		return nil

	case "lint":
		return runLint(path, jsonOut, out)

	case "info":
		c, err := compile(path)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, c.System)
		fmt.Fprintf(out, "variables: %d, actions: %d\n", len(c.Program.Vars), len(c.Program.Actions))
		return nil

	case "selfstab":
		c, err := compile(path)
		if err != nil {
			return err
		}
		rep := core.SelfStabilizing(c.System)
		fmt.Fprintln(out, rep.Verdict)
		if !rep.Holds && len(rep.Witness) > 0 {
			fmt.Fprintln(out, "counterexample:", rep.FormatWitness(c.System))
		}
		return nil

	case "dot":
		c, err := compile(path)
		if err != nil {
			return err
		}
		if c.System.NumStates() > 512 {
			return fmt.Errorf("%d states is too large to draw usefully", c.System.NumStates())
		}
		return system.WriteDOT(out, c.System, nil)

	case "refine":
		if len(args) < 2 {
			return usageError("refine", "<concrete.gcl> <abstract.gcl>", "abstract file")
		}
		cc, err := compile(path)
		if err != nil {
			return err
		}
		ca, err := compile(args[1])
		if err != nil {
			return err
		}
		if !cc.Space.SameShape(ca.Space) {
			return fmt.Errorf("programs declare different state spaces; refine requires a shared space")
		}
		fmt.Fprintln(out, core.RefinementInit(cc.System, ca.System, nil))
		fmt.Fprintln(out, core.EverywhereRefinement(cc.System, ca.System, nil))
		fmt.Fprintln(out, core.ConvergenceRefinement(cc.System, ca.System, nil).Verdict)
		fmt.Fprintln(out, core.Stabilizing(cc.System, ca.System, nil).Verdict)
		return nil

	case "optimize":
		c, err := compile(path)
		if err != nil {
			return err
		}
		opt, cert, notes, err := gcl.OptimizeAndCertify(c)
		if err != nil {
			return err
		}
		for _, n := range notes {
			fmt.Fprintln(out, "//", n)
		}
		fmt.Fprint(out, opt.Program)
		fmt.Fprintln(out, "//", cert)
		if !cert.Preserved() {
			return fmt.Errorf("optimization not certified; do not adopt")
		}
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// lintBudget bounds the exact tier's enumeration so linting a
// pathological program stays interactive; past the budget the
// interval tier's approx verdicts are reported instead.
const lintBudget = 5_000_000

// lintJSON is the machine-readable lint report, shared in shape with
// the /v1/lint service endpoint.
type lintJSON struct {
	Program         string          `json:"program"`
	States          int             `json:"states"`
	Exact           bool            `json:"exact"`
	AnalyzerVersion string          `json:"analyzer_version"`
	Errors          int             `json:"errors"`
	Diags           []analysis.Diag `json:"diags"`
}

func runLint(path string, jsonOut bool, out io.Writer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := gcl.Parse(string(src))
	if err != nil {
		return err
	}
	res, err := analysis.Analyze(prog, analysis.Options{
		Exact: true,
		Gas:   mc.NewGas(nil, lintBudget),
	})
	if err != nil {
		return err
	}
	nErrors := analysis.ErrorCount(res.Diags)
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lintJSON{
			Program:         gcl.Fingerprint(prog),
			States:          res.States,
			Exact:           res.Exact,
			AnalyzerVersion: analysis.Version(),
			Errors:          nErrors,
			Diags:           res.Diags,
		}); err != nil {
			return err
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintf(out, "%s:%s\n", path, d)
			for _, rel := range d.Related {
				fmt.Fprintf(out, "\t%s:%s: %s\n", path, rel.Pos, rel.Msg)
			}
		}
	}
	if nErrors > 0 {
		return fmt.Errorf("%s: %d error diagnostic(s)", path, nErrors)
	}
	return nil
}
