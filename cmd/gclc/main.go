// Command gclc is the guarded-command language tool: it parses, checks,
// formats, enumerates, and model-checks GCL programs written in the
// paper's notation.
//
// Usage:
//
//	gclc print prog.gcl          reformat the program
//	gclc info prog.gcl           state-space and automaton summary
//	gclc selfstab prog.gcl       check "prog is stabilizing to prog"
//	gclc dot prog.gcl            emit Graphviz (small programs only)
//	gclc refine C.gcl A.gcl      check [C ⊑ A]_init, [C ⊑ A], [C ⪯ A],
//	                             C stabilizing to A (shared state space)
//	gclc optimize prog.gcl       simplify the program and certify the
//	                             rewrite stabilization preserving
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/gcl"
	"repro/internal/system"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gclc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: gclc <print|info|selfstab|dot|refine|optimize> <file.gcl> [file2.gcl]")
	}
	cmd, path := args[0], args[1]

	compile := func(p string) (*gcl.Compiled, error) {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		return gcl.Compile(p, string(src))
	}

	switch cmd {
	case "print":
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		prog, err := gcl.Parse(string(src))
		if err != nil {
			return err
		}
		fmt.Fprint(out, prog)
		return nil

	case "info":
		c, err := compile(path)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, c.System)
		fmt.Fprintf(out, "variables: %d, actions: %d\n", len(c.Program.Vars), len(c.Program.Actions))
		return nil

	case "selfstab":
		c, err := compile(path)
		if err != nil {
			return err
		}
		rep := core.SelfStabilizing(c.System)
		fmt.Fprintln(out, rep.Verdict)
		if !rep.Holds && len(rep.Witness) > 0 {
			fmt.Fprintln(out, "counterexample:", rep.FormatWitness(c.System))
		}
		return nil

	case "dot":
		c, err := compile(path)
		if err != nil {
			return err
		}
		if c.System.NumStates() > 512 {
			return fmt.Errorf("%d states is too large to draw usefully", c.System.NumStates())
		}
		return system.WriteDOT(out, c.System, nil)

	case "refine":
		if len(args) < 3 {
			return fmt.Errorf("usage: gclc refine C.gcl A.gcl")
		}
		cc, err := compile(path)
		if err != nil {
			return err
		}
		ca, err := compile(args[2])
		if err != nil {
			return err
		}
		if !cc.Space.SameShape(ca.Space) {
			return fmt.Errorf("programs declare different state spaces; refine requires a shared space")
		}
		fmt.Fprintln(out, core.RefinementInit(cc.System, ca.System, nil))
		fmt.Fprintln(out, core.EverywhereRefinement(cc.System, ca.System, nil))
		fmt.Fprintln(out, core.ConvergenceRefinement(cc.System, ca.System, nil).Verdict)
		fmt.Fprintln(out, core.Stabilizing(cc.System, ca.System, nil).Verdict)
		return nil

	case "optimize":
		c, err := compile(path)
		if err != nil {
			return err
		}
		opt, cert, notes, err := gcl.OptimizeAndCertify(c)
		if err != nil {
			return err
		}
		for _, n := range notes {
			fmt.Fprintln(out, "//", n)
		}
		fmt.Fprint(out, opt.Program)
		fmt.Fprintln(out, "//", cert)
		if !cert.Preserved() {
			return fmt.Errorf("optimization not certified; do not adopt")
		}
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}
