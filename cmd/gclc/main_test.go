package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const counterSrc = `
var x : 0..2;
init x == 0;
action tick: true -> x := (x + 1) % 3;
`

func TestRunPrint(t *testing.T) {
	path := writeTemp(t, "c.gcl", counterSrc)
	var b strings.Builder
	if err := run([]string{"print", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "var x : 0..2;") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunInfo(t *testing.T) {
	path := writeTemp(t, "c.gcl", counterSrc)
	var b strings.Builder
	if err := run([]string{"info", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "|Σ|=3") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunSelfStab(t *testing.T) {
	path := writeTemp(t, "c.gcl", counterSrc)
	var b strings.Builder
	if err := run([]string{"selfstab", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "✓") {
		t.Fatalf("output:\n%s", b.String())
	}

	broken := writeTemp(t, "b.gcl", `
var x : 0..1;
init x == 0;
action spin: x == 0 -> x := 0;
action trap: x == 1 -> x := 1;
`)
	b.Reset()
	if err := run([]string{"selfstab", broken}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "✗") || !strings.Contains(b.String(), "counterexample") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunDot(t *testing.T) {
	path := writeTemp(t, "c.gcl", counterSrc)
	var b strings.Builder
	if err := run([]string{"dot", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "digraph") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestRunDotTooLarge(t *testing.T) {
	big := writeTemp(t, "big.gcl", `
var a : 0..9;
var b : 0..9;
var c : 0..9;
action t: true -> a := a;
`)
	var sb strings.Builder
	if err := run([]string{"dot", big}, &sb); err == nil {
		t.Fatal("oversized dot accepted")
	}
}

func TestRunRefine(t *testing.T) {
	aPath := writeTemp(t, "a.gcl", `
var x : 0..3;
init x == 0;
action down: x > 0 -> x := x - 1;
action cycle: x == 0 -> x := 0;
`)
	cPath := writeTemp(t, "c.gcl", `
var x : 0..3;
init x == 0;
action jump: x > 1 -> x := x - 2;
action down: x == 1 -> x := 0;
action cycle: x == 0 -> x := 0;
`)
	var b strings.Builder
	if err := run([]string{"refine", cPath, aPath}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The jump x := x−2 compresses A's two decrements: convergence
	// refinement holds, everywhere refinement does not.
	if !strings.Contains(out, "⪯") || !strings.Contains(out, "⊑") {
		t.Fatalf("output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 verdicts, got:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "✓") { // convergence refinement
		t.Fatalf("convergence verdict: %s", lines[2])
	}
	if !strings.HasPrefix(lines[1], "✗") { // everywhere refinement
		t.Fatalf("everywhere verdict: %s", lines[1])
	}
}

func TestRunRefineSpaceMismatch(t *testing.T) {
	aPath := writeTemp(t, "a.gcl", "var x : 0..1;\naction t: true -> x := x;")
	cPath := writeTemp(t, "c.gcl", "var y : 0..2;\naction t: true -> y := y;")
	var b strings.Builder
	if err := run([]string{"refine", cPath, aPath}, &b); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
}

func TestRunOptimize(t *testing.T) {
	path := writeTemp(t, "o.gcl", `
var x : 0..3;
init x == 0;
action loop: x == x -> x := x * 1;
action step: x + 0 < 3 -> x := x + 1;
`)
	var b strings.Builder
	if err := run([]string{"optimize", path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "certified") {
		t.Fatalf("output:\n%s", out)
	}
	if strings.Contains(out, "x * 1") || strings.Contains(out, "x + 0") {
		t.Fatalf("not simplified:\n%s", out)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"nope", "x"}, &b); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"info", "/does/not/exist.gcl"}, &b); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestUsageErrorNamesOperand: a command invoked without its operand
// must say which operand is missing, per command — not dump the global
// usage line.
func TestUsageErrorNamesOperand(t *testing.T) {
	cases := []struct {
		args []string
		want []string
	}{
		{[]string{"print"}, []string{"gclc print", "missing file operand"}},
		{[]string{"lint"}, []string{"gclc lint", "[-json]", "missing file operand"}},
		{[]string{"lint", "-json"}, []string{"gclc lint", "missing file operand"}},
		{[]string{"refine"}, []string{"gclc refine", "<concrete.gcl> <abstract.gcl>", "missing file operand"}},
		{[]string{"refine", "only-one.gcl"}, []string{"gclc refine", "missing abstract file operand"}},
	}
	for _, tc := range cases {
		err := run(tc.args, &strings.Builder{})
		if err == nil {
			t.Fatalf("%v accepted", tc.args)
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%v: error %q does not mention %q", tc.args, err, w)
			}
		}
	}
}

// TestUsageListsEverySubcommand keeps the usage string honest: every
// subcommand the dispatch switch accepts must be advertised in it.
func TestUsageListsEverySubcommand(t *testing.T) {
	err := run(nil, &strings.Builder{})
	if err == nil {
		t.Fatal("no-args invocation accepted")
	}
	usage := err.Error()

	src, rerr := os.ReadFile("main.go")
	if rerr != nil {
		t.Fatal(rerr)
	}
	re := regexp.MustCompile(`(?m)^\tcase "(\w+)":`)
	matches := re.FindAllStringSubmatch(string(src), -1)
	if len(matches) < 7 {
		t.Fatalf("found only %d subcommands in main.go's dispatch switch; lint missing?", len(matches))
	}
	names := make(map[string]bool, len(matches))
	for _, m := range matches {
		names[m[1]] = true
		if !strings.Contains(usage, m[1]) {
			t.Errorf("usage string omits subcommand %q: %s", m[1], usage)
		}
	}
	if !names["lint"] {
		t.Error("dispatch switch has no lint subcommand")
	}
	// lint's optional -json flag is part of the interface; the global
	// usage line must advertise it, not just lint's per-command usage.
	if !strings.Contains(usage, "[-json]") {
		t.Errorf("usage string omits lint's optional -json flag: %s", usage)
	}
}
