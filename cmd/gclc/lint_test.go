package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestRunLintClean(t *testing.T) {
	path := writeTemp(t, "c.gcl", counterSrc)
	var b strings.Builder
	if err := run([]string{"lint", path}, &b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("clean program produced diagnostics:\n%s", b.String())
	}
}

func TestRunLintHumanOutput(t *testing.T) {
	path := writeTemp(t, "d.gcl", `
var x : 0..3;
action dead: x > 9 -> x := 0;
action live: x < 3 -> x := x + 1;
`)
	var b strings.Builder
	if err := run([]string{"lint", path}, &b); err != nil {
		t.Fatal(err) // warnings only: exit status must stay 0
	}
	out := b.String()
	if !strings.Contains(out, path+":3:") || !strings.Contains(out, "GCL001") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunLintErrorExit(t *testing.T) {
	path := writeTemp(t, "e.gcl", `
var x : 0..3;
action over: x == 3 -> x := x + 10;
`)
	var b strings.Builder
	err := run([]string{"lint", path}, &b)
	if err == nil || !strings.Contains(err.Error(), "error diagnostic") {
		t.Fatalf("error-severity findings must fail the run, got %v", err)
	}
}

func TestRunLintJSON(t *testing.T) {
	path := writeTemp(t, "j.gcl", `
var x : 0..3;
action dead: x > 9 -> x := 0;
action live: x < 3 -> x := x + 1;
`)
	var b strings.Builder
	if err := run([]string{"lint", "-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	var rep lintJSON
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, b.String())
	}
	if len(rep.Program) != 64 {
		t.Fatalf("program fingerprint: %q", rep.Program)
	}
	if rep.States != 4 || !rep.Exact || rep.Errors != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if !strings.HasPrefix(rep.AnalyzerVersion, "v1/") {
		t.Fatalf("analyzer_version: %q", rep.AnalyzerVersion)
	}
	if len(rep.Diags) == 0 || rep.Diags[0].Code != "GCL001" {
		t.Fatalf("diags: %+v", rep.Diags)
	}
}

// TestLintDemoGolden pins the exact diagnostic set for
// examples/gcl/lint-demo.gcl — the file exists to exercise one
// instance of each code, so any drift here is an analyzer behavior
// change that must be deliberate.
func TestLintDemoGolden(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "gcl", "lint-demo.gcl")
	var b strings.Builder
	err := run([]string{"lint", "-json", path}, &b)
	if err == nil || !strings.Contains(err.Error(), "1 error diagnostic") {
		t.Fatalf("lint-demo must carry exactly one error diagnostic, got %v", err)
	}
	var rep lintJSON
	if jerr := json.Unmarshal([]byte(b.String()), &rep); jerr != nil {
		t.Fatalf("bad JSON: %v", jerr)
	}
	if !rep.Exact {
		t.Fatal("lint-demo is 512 states; the exact tier must run")
	}
	var got []string
	for _, d := range rep.Diags {
		got = append(got, fmt.Sprintf("%d:%d %s %s %s", d.Pos.Line, d.Pos.Col, d.Code, d.Severity, d.Confidence))
	}
	want := []string{
		"17:1 GCL006 warning exact",
		"18:1 GCL005 warning exact",
		"23:19 GCL001 warning exact",
		"24:27 GCL003 error exact",
		"25:1 GCL008 warning exact",
		"26:1 GCL007 info exact",
		"26:29 GCL010 info approx",
		"27:1 GCL004 warning exact",
		"27:1 GCL007 info exact",
		"27:1 GCL007 info exact",
		"27:1 GCL007 info exact",
		"27:19 GCL011 warning approx",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("diagnostic set drifted:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	// The escape diagnostic must carry an enumeration witness.
	for _, d := range rep.Diags {
		if d.Code == "GCL003" {
			if len(d.Related) != 1 || !strings.Contains(d.Related[0].Msg, "x=3") {
				t.Fatalf("GCL003 witness: %+v", d.Related)
			}
		}
	}
}

// TestLintAllExamples lints every shipped example and asserts its
// expected findings: the stabilizing examples stay clean or carry only
// the benign diagnostics listed here, and only lint-demo fails.
func TestLintAllExamples(t *testing.T) {
	expect := map[string]struct {
		codes []string // exact multiset of codes, sorted
		fails bool
	}{
		"aggressive3-n2.gcl": {codes: []string{"GCL007"}},
		"broken-reset.gcl":   {codes: []string{"GCL004", "GCL008", "GCL011"}},
		"counter.gcl":        {codes: nil},
		"dijkstra3-n2.gcl":   {codes: []string{"GCL007"}},
		"lint-demo.gcl": {codes: []string{
			"GCL001", "GCL003", "GCL004", "GCL005", "GCL006", "GCL007", "GCL007",
			"GCL007", "GCL007", "GCL008", "GCL010", "GCL011"}, fails: true},
	}
	dir := filepath.Join("..", "..", "examples", "gcl")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".gcl") {
			continue
		}
		want, ok := expect[e.Name()]
		if !ok {
			t.Errorf("example %s has no lint expectation; add one here", e.Name())
			continue
		}
		seen++
		t.Run(e.Name(), func(t *testing.T) {
			var b strings.Builder
			err := run([]string{"lint", "-json", filepath.Join(dir, e.Name())}, &b)
			if want.fails != (err != nil) {
				t.Fatalf("fails=%v, err=%v", want.fails, err)
			}
			var rep lintJSON
			if jerr := json.Unmarshal([]byte(b.String()), &rep); jerr != nil {
				t.Fatalf("bad JSON: %v", jerr)
			}
			var got []string
			for _, d := range rep.Diags {
				got = append(got, string(d.Code))
			}
			sort.Strings(got)
			if strings.Join(got, ",") != strings.Join(want.codes, ",") {
				t.Fatalf("codes: got %v, want %v", got, want.codes)
			}
		})
	}
	if seen != len(expect) {
		t.Fatalf("expected %d examples, saw %d", len(expect), seen)
	}
}
