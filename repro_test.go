package repro_test

import (
	"fmt"
	"testing"

	"repro"
)

// ExampleStabilizing demonstrates the headline check: Dijkstra's 3-state
// token ring is stabilizing to the abstract bidirectional ring through
// the Section 5 mapping.
func ExampleStabilizing() {
	btr := repro.NewBTR(2)
	three := repro.NewThreeState(2)
	alpha, err := three.Abstraction(btr)
	if err != nil {
		fmt.Println(err)
		return
	}
	rep := repro.Stabilizing(three.Dijkstra3(), btr.System(), alpha)
	fmt.Println(rep.Holds)
	// Output: true
}

// ExampleConvergenceRefinement demonstrates Lemma 7: the concrete 4-state
// system C1 is a convergence refinement of BTR, with compressions.
func ExampleConvergenceRefinement() {
	btr := repro.NewBTR(2)
	four := repro.NewFourState(2)
	alpha, err := four.Abstraction(btr)
	if err != nil {
		fmt.Println(err)
		return
	}
	rep := repro.ConvergenceRefinement(four.C1(), btr.System(), alpha)
	fmt.Println(rep.Holds, len(rep.Compressions) > 0)
	// Output: true true
}

// ExampleCompileGCL compiles a guarded-command program into an automaton
// and checks self-stabilization.
func ExampleCompileGCL() {
	c, err := repro.CompileGCL("counter", `
var x : 0..2;
init x == 0;
action spin: true -> x := (x + 1) % 3;
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(c.System.NumStates(), repro.SelfStabilizing(c.System).Holds)
	// Output: 3 true
}

// TestFacadeSurface exercises the re-exported API end to end: build an
// automaton by hand, box a wrapper onto it, and check stabilization.
func TestFacadeSurface(t *testing.T) {
	sp := repro.NewSpace(repro.Bool("t"))
	sys := repro.Enumerate("flip", sp, []repro.Action{{
		Name:   "flip",
		Guard:  func(v repro.Vals) bool { return v[0] == 1 },
		Effect: func(v repro.Vals) { v[0] = 0 },
	}, {
		Name:   "flop",
		Guard:  func(v repro.Vals) bool { return v[0] == 0 },
		Effect: func(v repro.Vals) { v[0] = 1 },
	}}, func(v repro.Vals) bool { return v[0] == 0 })
	rep := repro.SelfStabilizing(sys)
	if !rep.Holds {
		t.Fatalf("flip-flop should self-stabilize: %s", rep.Verdict)
	}

	a, c := repro.Fig1(5)
	if v := repro.RefinementInit(c, a, nil); !v.Holds {
		t.Fatalf("Fig1 init refinement: %s", v)
	}
	if v := repro.Stabilizing(c, a, nil); v.Holds {
		t.Fatal("Fig1 C must not stabilize")
	}

	ae, ce := repro.OddEvenRecovery()
	if v := repro.EverywhereEventuallyRefinement(ce, ae, nil); !v.Holds {
		t.Fatalf("odd/even ⊑ee: %s", v)
	}
}

// TestExperimentRegistry sanity-checks the public experiments hook.
func TestExperimentRegistry(t *testing.T) {
	all := repro.Experiments()
	if len(all) != 22 {
		t.Fatalf("experiments = %d, want 22", len(all))
	}
	rep := all[0]()
	if rep.ID != "E1" || !rep.Pass() {
		t.Fatalf("E1 = %s", rep)
	}
}

// TestSimFacade runs a protocol through the re-exported simulator types.
func TestSimFacade(t *testing.T) {
	proto := repro.SimDijkstra3(5)
	r := &repro.Runner{Proto: proto, Daemon: repro.NewRandomDaemon(1), MaxSteps: 10000}
	res, err := r.Run(repro.SimConfig{0, 2, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
}
