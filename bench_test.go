// Benchmarks: one per experiment E1–E15 (the paper's reproducible
// artifacts; see DESIGN.md's index and EXPERIMENTS.md for recorded
// outputs), plus micro-benchmarks for the substrate — state-space
// enumeration, the relation checkers, and simulator throughput — and
// ablations for the design choices DESIGN.md calls out (priority vs plain
// wrapper composition).
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mc"
	"repro/internal/ring"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/system"
)

// benchExperiment runs one experiment per iteration and fails the
// benchmark if the experiment deviates from its expectations.
func benchExperiment(b *testing.B, fn func() *experiments.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep := fn()
		if !rep.Pass() {
			b.Fatalf("%s deviated:\n%s", rep.ID, rep)
		}
	}
}

func BenchmarkE1Fig1Counterexample(b *testing.B) { benchExperiment(b, experiments.E1Fig1) }
func BenchmarkE2CompilerTolerance(b *testing.B)  { benchExperiment(b, experiments.E2Compiler) }
func BenchmarkE3BiddingServer(b *testing.B)      { benchExperiment(b, experiments.E3Bidding) }
func BenchmarkE4Theorem6(b *testing.B)           { benchExperiment(b, experiments.E4Theorem6) }
func BenchmarkE5Lemma7(b *testing.B)             { benchExperiment(b, experiments.E5Lemma7) }
func BenchmarkE6Dijkstra4(b *testing.B)          { benchExperiment(b, experiments.E6Dijkstra4) }
func BenchmarkE7Lemma9(b *testing.B)             { benchExperiment(b, experiments.E7Lemma9) }
func BenchmarkE8Dijkstra3(b *testing.B)          { benchExperiment(b, experiments.E8Dijkstra3) }
func BenchmarkE9NewThreeState(b *testing.B)      { benchExperiment(b, experiments.E9NewThreeState) }
func BenchmarkE10KState(b *testing.B)            { benchExperiment(b, experiments.E10KState) }
func BenchmarkE11Convergence(b *testing.B)       { benchExperiment(b, experiments.E11Convergence) }
func BenchmarkE12WrapperInterference(b *testing.B) {
	benchExperiment(b, experiments.E12WrapperInterference)
}
func BenchmarkE13RefinementHierarchy(b *testing.B) {
	benchExperiment(b, experiments.E13RefinementHierarchy)
}
func BenchmarkE14SynchronousDaemon(b *testing.B) {
	benchExperiment(b, experiments.E14SynchronousDaemon)
}
func BenchmarkE15FairDaemon(b *testing.B) { benchExperiment(b, experiments.E15FairDaemon) }
func BenchmarkE16ClusterRecovery(b *testing.B) {
	benchExperiment(b, experiments.E16ClusterRecovery)
}
func BenchmarkE17ChaosCampaign(b *testing.B) {
	benchExperiment(b, experiments.E17ChaosCampaign)
}
func BenchmarkE18CrashRecovery(b *testing.B) {
	benchExperiment(b, experiments.E18CrashRecovery)
}
func BenchmarkE19FleetScaling(b *testing.B) {
	benchExperiment(b, experiments.E19Fleet)
}
func BenchmarkE20JournalThroughput(b *testing.B) {
	benchExperiment(b, experiments.E20Journal)
}
func BenchmarkE21Retention(b *testing.B) {
	benchExperiment(b, experiments.E21Retention)
}
func BenchmarkE22GrayFailure(b *testing.B) {
	benchExperiment(b, experiments.E22GrayFailure)
}

// BenchmarkFairStabilizationCheck measures the weak-fairness decision
// procedure on the Lemma 9 composition.
func BenchmarkFairStabilizationCheck(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("Lemma9/N=%d", n), func(b *testing.B) {
			btr := ring.NewBTR(n)
			three := ring.NewThreeState(n)
			alpha, err := three.Abstraction(btr)
			if err != nil {
				b.Fatal(err)
			}
			lab := three.Lemma9Labeled()
			spec := btr.System()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := core.FairStabilizing(lab, spec, alpha); !rep.Holds {
					b.Fatal(rep.Verdict)
				}
			}
		})
	}
}

// BenchmarkEnumerate measures guarded-command enumeration into automata.
func BenchmarkEnumerate(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("Dijkstra3/N=%d", n), func(b *testing.B) {
			t := ring.NewThreeState(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = t.Dijkstra3()
			}
		})
	}
	for _, n := range []int{3, 5} {
		b.Run(fmt.Sprintf("BTR/N=%d", n), func(b *testing.B) {
			r := ring.NewBTR(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = r.System()
			}
		})
	}
}

// BenchmarkStabilizationCheck measures the Section 2 decision procedure.
func BenchmarkStabilizationCheck(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("Dijkstra3-self/N=%d", n), func(b *testing.B) {
			d3 := ring.NewThreeState(n).Dijkstra3()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := core.SelfStabilizing(d3); !rep.Holds {
					b.Fatal(rep.Verdict)
				}
			}
		})
	}
	for _, n := range []int{3, 4} {
		b.Run(fmt.Sprintf("Dijkstra3-to-BTR/N=%d", n), func(b *testing.B) {
			btr := ring.NewBTR(n)
			three := ring.NewThreeState(n)
			alpha, err := three.Abstraction(btr)
			if err != nil {
				b.Fatal(err)
			}
			d3 := three.Dijkstra3()
			spec := btr.System()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := core.Stabilizing(d3, spec, alpha); !rep.Holds {
					b.Fatal(rep.Verdict)
				}
			}
		})
	}
}

// BenchmarkConvergenceRefinementCheck measures [C1 ⪯ BTR].
func BenchmarkConvergenceRefinementCheck(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("C1-BTR/N=%d", n), func(b *testing.B) {
			btr := ring.NewBTR(n)
			four := ring.NewFourState(n)
			alpha, err := four.Abstraction(btr)
			if err != nil {
				b.Fatal(err)
			}
			c1 := four.C1()
			spec := btr.System()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := core.ConvergenceRefinement(c1, spec, alpha); !rep.Holds {
					b.Fatal(rep.Verdict)
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw move execution after
// convergence (token circulation).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, p := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("Dijkstra3/P=%d", p), func(b *testing.B) {
			proto := sim.NewDijkstra3(p)
			legit, err := sim.LegitimateConfig(proto)
			if err != nil {
				b.Fatal(err)
			}
			r := &sim.Runner{Proto: proto, Daemon: sim.NewRoundRobinDaemon(p),
				MaxSteps: b.N, RunAfterConvergence: true}
			b.ResetTimer()
			if _, err := r.Run(legit); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSimConvergence measures recovery runs end to end.
func BenchmarkSimConvergence(b *testing.B) {
	for _, p := range []int{8, 16} {
		b.Run(fmt.Sprintf("Dijkstra3/P=%d", p), func(b *testing.B) {
			proto := sim.NewDijkstra3(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := sim.MeasureConvergence(proto,
					func(run int) sim.Daemon { return sim.NewRandomDaemon(int64(run)) },
					10, p, 100000, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if stats.Converged != stats.Runs {
					b.Fatal("non-convergence")
				}
			}
		})
	}
}

// BenchmarkLiveRing measures the goroutine-per-process ring.
func BenchmarkLiveRing(b *testing.B) {
	proto := sim.NewDijkstra3(8)
	legit, err := sim.LegitimateConfig(proto)
	if err != nil {
		b.Fatal(err)
	}
	start := append(sim.Config(nil), legit...)
	start[3] = (start[3] + 1) % 3
	start[5] = (start[5] + 2) % 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr := &sim.LiveRing{Proto: proto, MaxSteps: 100000}
		res, err := lr.Run(start)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("live ring did not converge")
		}
	}
}

// BenchmarkAblationBoxComposition compares the plain union against the
// priority composition used by Theorem 6 — the design decision DESIGN.md
// calls out (PriorityBox is what makes the abstract wrappers sound).
func BenchmarkAblationBoxComposition(b *testing.B) {
	r := ring.NewBTR(4)
	btr := r.System()
	w1, w2 := r.W1(), r.W2()
	b.Run("PlainBox", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = system.BoxAll(btr, w1, w2)
		}
	})
	b.Run("PriorityBox", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = system.PriorityBox(system.Box(btr, w1), w2)
		}
	})
}

// BenchmarkReachability measures the model checker's core sweep.
func BenchmarkReachability(b *testing.B) {
	for _, n := range []int{5, 7, 9} {
		b.Run(fmt.Sprintf("Dijkstra3/N=%d", n), func(b *testing.B) {
			d3 := ring.NewThreeState(n).Dijkstra3()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = mc.ReachFromInit(d3)
			}
		})
	}
}

// BenchmarkGCLCompile measures the guarded-command pipeline end to end.
func BenchmarkGCLCompile(b *testing.B) {
	const src = `
var c0 : 0..2;
var c1 : 0..2;
var c2 : 0..2;
var c3 : 0..2;
init c0 == 0 && c1 == 0 && c2 == 0 && c3 == 1;
action bottom: c1 == (c0 + 1) % 3 -> c0 := (c1 + 1) % 3;
action up1: c0 == (c1 + 1) % 3 -> c1 := c0;
action dn1: c2 == (c1 + 1) % 3 -> c1 := c2;
action up2: c1 == (c2 + 1) % 3 -> c2 := c1;
action dn2: c3 == (c2 + 1) % 3 -> c2 := c3;
action top: c2 == c0 && (c2 + 1) % 3 != c3 -> c3 := (c2 + 1) % 3;
`
	for i := 0; i < b.N; i++ {
		if _, err := repro.CompileGCL("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

// serviceBenchProgram builds a small GCL program; varying the domain
// bound yields distinct programs with distinct cache keys.
func serviceBenchProgram(bound int) []byte {
	src := fmt.Sprintf("var x : 0..%d;\ninit x == 0;\naction tick: true -> x := (x + 1) %% %d;",
		bound, bound+1)
	body, _ := json.Marshal(map[string]string{"source": src})
	return body
}

func servicePost(b *testing.B, svc *service.Server, body []byte) {
	b.Helper()
	r := httptest.NewRequest(http.MethodPost, "/v1/selfstab", bytes.NewReader(body))
	w := httptest.NewRecorder()
	svc.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body)
	}
}

// BenchmarkServiceCacheHit measures a selfstab request answered from the
// verdict cache: parse + canonicalize + hash, no enumeration.
func BenchmarkServiceCacheHit(b *testing.B) {
	svc := service.New(service.Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	defer svc.Close()
	body := serviceBenchProgram(4)
	servicePost(b, svc, body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servicePost(b, svc, body)
	}
	if hits, _ := svc.CacheStats(); hits < uint64(b.N) {
		b.Fatalf("only %d cache hits over %d requests", hits, b.N)
	}
}

// BenchmarkServiceCacheMiss is the same request shape against a
// one-entry cache with two alternating programs, so every request
// misses and re-runs the full check — the contrast with CacheHit is
// what the cache buys.
func BenchmarkServiceCacheMiss(b *testing.B) {
	svc := service.New(service.Config{Workers: 2, QueueDepth: 16, CacheEntries: 1})
	defer svc.Close()
	bodies := [2][]byte{serviceBenchProgram(4), serviceBenchProgram(5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servicePost(b, svc, bodies[i%2])
	}
	if hits, _ := svc.CacheStats(); hits != 0 {
		b.Fatalf("%d unexpected cache hits", hits)
	}
}
