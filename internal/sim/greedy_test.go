package sim

import "testing"

// expectedGreedy recomputes the adversarial pick independently of the
// daemon: the move whose successor has the most tokens, ties broken by
// move order (processes ascending, rules in declaration order).
func expectedGreedy(p Protocol, c Config, moves []Move) (Move, int) {
	best := moves[0]
	bestTokens := -1
	for _, m := range moves {
		succ := c.Clone()
		succ[m.Proc] = m.NewVal
		if tokens := TokenCount(p, succ); tokens > bestTokens {
			bestTokens = tokens
			best = m
		}
	}
	return best, bestTokens
}

// TestGreedyAdversarialPick: at [0,1,0,1,1] (dijkstra3, P=5) process 2
// can delete a token pair (successor: 1 token) while process 0 merely
// passes (successor keeps 2): the adversary must keep picking the
// passing move, deterministically.
func TestGreedyAdversarialPick(t *testing.T) {
	p := NewDijkstra3(5)
	c := Config{0, 1, 0, 1, 1}
	moves := EnabledMoves(p, c)
	if len(moves) < 2 {
		t.Fatalf("configuration is not interesting: moves %v", moves)
	}
	want, wantTokens := expectedGreedy(p, c, moves)

	// The scenario must actually separate the moves: the adversarial
	// successor keeps more tokens than the worst alternative.
	worst := wantTokens
	for _, m := range moves {
		succ := c.Clone()
		succ[m.Proc] = m.NewVal
		if tokens := TokenCount(p, succ); tokens < worst {
			worst = tokens
		}
	}
	if worst >= wantTokens {
		t.Fatalf("all successors have %d tokens; pick a better test configuration", wantTokens)
	}

	d := NewGreedyDaemon(p)
	for i := 0; i < 10; i++ {
		d.Observe(c)
		if got := d.Choose(moves); got != want {
			t.Fatalf("iteration %d: chose %+v, want %+v", i, got, want)
		}
	}
	// A fresh daemon over the same observation agrees.
	d2 := NewGreedyDaemon(p)
	d2.Observe(c)
	if got := d2.Choose(moves); got != want {
		t.Fatalf("fresh daemon chose %+v, want %+v", got, want)
	}
}

// TestGreedyFallbackNoWorseningMove: at [0,1,0,1,0] no enabled move
// increases the token count (stabilization at work). The daemon must
// fall back to the first move among the least-damaging ones — the
// lowest process index, rules in declaration order.
func TestGreedyFallbackNoWorseningMove(t *testing.T) {
	p := NewDijkstra3(5)
	c := Config{0, 1, 0, 1, 0}
	moves := EnabledMoves(p, c)
	if len(moves) < 2 {
		t.Fatalf("configuration is not interesting: moves %v", moves)
	}
	current := TokenCount(p, c)
	want, wantTokens := expectedGreedy(p, c, moves)
	if wantTokens > current {
		t.Fatalf("a move worsens the ring (%d > %d tokens); this test wants the fallback case",
			wantTokens, current)
	}
	// The expected fallback is the lowest-index move achieving the max.
	for _, m := range moves {
		succ := c.Clone()
		succ[m.Proc] = m.NewVal
		if TokenCount(p, succ) == wantTokens {
			if m != want {
				t.Fatalf("tie broken away from the first maximal move: want %+v, first maximal %+v", want, m)
			}
			break
		}
	}
	d := NewGreedyDaemon(p)
	d.Observe(c)
	if got := d.Choose(moves); got != want {
		t.Fatalf("chose %+v, want fallback %+v", got, want)
	}
}

// TestGreedyWithoutObservation: before any Observe the daemon has no
// configuration to evaluate successors against and must degrade to the
// first enabled move instead of crashing.
func TestGreedyWithoutObservation(t *testing.T) {
	p := NewDijkstra3(5)
	moves := EnabledMoves(p, Config{0, 1, 0, 1, 1})
	d := NewGreedyDaemon(p)
	if got := d.Choose(moves); got != moves[0] {
		t.Fatalf("unobserved daemon chose %+v, want moves[0] %+v", got, moves[0])
	}
}
