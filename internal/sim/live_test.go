package sim

import "testing"

// TestLiveRingEveryProcessMoves: with RunAfterConvergence the token
// keeps circulating after legitimacy, so over a modest budget every
// process of a small ring must execute at least one move.
func TestLiveRingEveryProcessMoves(t *testing.T) {
	p := NewDijkstra3(4)
	lr := &LiveRing{Proto: p, MaxSteps: 2000, Seed: 3, RunAfterConvergence: true}
	res, err := lr.Run(Config{2, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("live ring did not converge: %+v", res)
	}
	total := 0
	for i, m := range res.Moves {
		if m == 0 {
			t.Errorf("process %d never moved: moves %v", i, res.Moves)
		}
		total += m
	}
	if total != lr.MaxSteps {
		t.Fatalf("RunAfterConvergence should spend the whole budget: %d moves of %d", total, lr.MaxSteps)
	}
	if res.Steps <= 0 || res.Steps > lr.MaxSteps {
		t.Fatalf("steps-to-legitimacy out of range: %d", res.Steps)
	}
}

// TestLiveRingMoveCounters: without RunAfterConvergence the counters
// still sum to the executed steps.
func TestLiveRingMoveCounters(t *testing.T) {
	p := NewDijkstra3(5)
	lr := &LiveRing{Proto: p, MaxSteps: 100_000, Seed: 7}
	res, err := lr.Run(Config{0, 2, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("live ring did not converge: %+v", res)
	}
	if len(res.Moves) != p.Procs() {
		t.Fatalf("moves slice has %d entries, want %d", len(res.Moves), p.Procs())
	}
	total := 0
	for _, m := range res.Moves {
		total += m
	}
	if total != res.Steps {
		t.Fatalf("per-process moves sum to %d, steps-to-legitimacy is %d", total, res.Steps)
	}
}

// TestLiveRingImmediatelyLegitimateCounters: an already-legitimate
// start with no after-run reports zeroed counters.
func TestLiveRingImmediatelyLegitimateCounters(t *testing.T) {
	p := NewDijkstra3(4)
	legit, err := LegitimateConfig(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&LiveRing{Proto: p, MaxSteps: 10}).Run(legit)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Steps != 0 {
		t.Fatalf("want immediate convergence, got %+v", res)
	}
	for i, m := range res.Moves {
		if m != 0 {
			t.Fatalf("process %d reported %d moves on an immediate return", i, m)
		}
	}
}
