package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// LiveResult summarizes a live (goroutine-per-process) run.
type LiveResult struct {
	// Converged reports whether legitimacy was reached within MaxSteps.
	Converged bool
	// Steps is the number of moves executed until the first legitimate
	// configuration (or the budget if not converged).
	Steps int
	// Final is the configuration at stop time.
	Final Config
	// Moves counts executed moves per process over the whole run
	// (including steps after convergence when RunAfterConvergence is
	// set).
	Moves []int
}

// LiveRing executes a protocol with one goroutine per process. Each
// process repeatedly locks the shared configuration, evaluates its own
// guards against its neighbors' registers, and executes one enabled move.
// The Go runtime's scheduling order *is* the daemon: an arbitrary,
// non-deterministic but serial (central-daemon) scheduler, since moves are
// mutually exclusive under the configuration lock.
//
// When a process has several enabled moves it picks one with its own
// seeded RNG — always taking the first would silently bias the schedule
// toward "up" rules and away from the move interleavings the model
// checker quantifies over.
//
// This is the repository's "real" concurrent ring — the model checker
// proves stabilization over all schedules, and LiveRing demonstrates it on
// an actual scheduler. internal/cluster goes one step further and drops
// the shared configuration entirely in favor of message passing.
type LiveRing struct {
	// Proto is the protocol to run.
	Proto Protocol
	// MaxSteps bounds the total number of moves (required, > 0).
	MaxSteps int
	// Seed drives each process's move choice (process i uses a source
	// derived from Seed and i).
	Seed int64
	// RunAfterConvergence keeps the ring running (and counting moves)
	// for the remaining budget after legitimacy is reached — in the
	// legitimate region the token keeps circulating, so this is how
	// every process gets to move.
	RunAfterConvergence bool
}

// Run executes from initial until legitimacy or the step budget, blocking
// until all process goroutines have exited.
func (lr *LiveRing) Run(initial Config) (*LiveResult, error) {
	if lr.MaxSteps <= 0 {
		return nil, fmt.Errorf("sim: MaxSteps must be positive, got %d", lr.MaxSteps)
	}
	if err := Validate(lr.Proto, initial); err != nil {
		return nil, err
	}

	procs := lr.Proto.Procs()
	var (
		mu           sync.Mutex
		cur          = initial.Clone()
		steps        int
		stepsToLegit int
		converged    bool
		done         bool
		moveCount    = make([]int, procs)
	)
	if lr.Proto.Legitimate(cur) {
		converged = true
		if !lr.RunAfterConvergence {
			return &LiveResult{Converged: true, Steps: 0, Final: cur, Moves: moveCount}, nil
		}
	}

	var wg sync.WaitGroup
	wg.Add(procs)
	for i := 0; i < procs; i++ {
		//gcvet:leak-ok workers exit via the mutex-guarded done flag, set at MaxSteps at the latest; wg.Wait below joins them
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(lr.Seed + int64(i)*7919 + 1))
			left := (i - 1 + procs) % procs
			right := (i + 1) % procs
			for {
				mu.Lock()
				if done {
					mu.Unlock()
					return
				}
				moves := lr.Proto.Moves(i, cur[left], cur[i], cur[right])
				if len(moves) > 0 {
					m := moves[rng.Intn(len(moves))]
					cur[i] = m.NewVal
					steps++
					moveCount[i]++
					if !converged && lr.Proto.Legitimate(cur) {
						converged = true
						stepsToLegit = steps
					}
					if (converged && !lr.RunAfterConvergence) || steps >= lr.MaxSteps {
						done = true
					}
				}
				mu.Unlock()
				// Let other processes contend for the lock; a disabled
				// process spinning would otherwise starve the enabled one
				// on a single-threaded runtime.
				runtime.Gosched()
			}
		}(i)
	}
	wg.Wait()

	res := &LiveResult{Converged: converged, Final: cur, Moves: moveCount}
	if converged {
		res.Steps = stepsToLegit
	} else {
		res.Steps = steps
	}
	return res, nil
}
