package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// LiveResult summarizes a live (goroutine-per-process) run.
type LiveResult struct {
	// Converged reports whether legitimacy was reached within MaxSteps.
	Converged bool
	// Steps is the number of moves executed until the first legitimate
	// configuration (or the budget if not converged).
	Steps int
	// Final is the configuration at stop time.
	Final Config
}

// LiveRing executes a protocol with one goroutine per process. Each
// process repeatedly locks the shared configuration, evaluates its own
// guards against its neighbors' registers, and executes one enabled move.
// The Go runtime's scheduling order *is* the daemon: an arbitrary,
// non-deterministic but serial (central-daemon) scheduler, since moves are
// mutually exclusive under the configuration lock.
//
// This is the repository's "real" concurrent ring — the model checker
// proves stabilization over all schedules, and LiveRing demonstrates it on
// an actual scheduler.
type LiveRing struct {
	// Proto is the protocol to run.
	Proto Protocol
	// MaxSteps bounds the total number of moves (required, > 0).
	MaxSteps int
}

// Run executes from initial until legitimacy or the step budget, blocking
// until all process goroutines have exited.
func (lr *LiveRing) Run(initial Config) (*LiveResult, error) {
	if lr.MaxSteps <= 0 {
		return nil, fmt.Errorf("sim: MaxSteps must be positive, got %d", lr.MaxSteps)
	}
	if err := Validate(lr.Proto, initial); err != nil {
		return nil, err
	}

	procs := lr.Proto.Procs()
	var (
		mu     sync.Mutex
		cur    = initial.Clone()
		steps  int
		done   bool
		result LiveResult
	)
	if lr.Proto.Legitimate(cur) {
		return &LiveResult{Converged: true, Steps: 0, Final: cur}, nil
	}

	var wg sync.WaitGroup
	wg.Add(procs)
	for i := 0; i < procs; i++ {
		go func(i int) {
			defer wg.Done()
			left := (i - 1 + procs) % procs
			right := (i + 1) % procs
			for {
				mu.Lock()
				if done {
					mu.Unlock()
					return
				}
				moves := lr.Proto.Moves(i, cur[left], cur[i], cur[right])
				if len(moves) > 0 {
					cur[i] = moves[0].NewVal
					steps++
					if lr.Proto.Legitimate(cur) {
						done = true
						result = LiveResult{Converged: true, Steps: steps, Final: cur.Clone()}
					} else if steps >= lr.MaxSteps {
						done = true
						result = LiveResult{Converged: false, Steps: steps, Final: cur.Clone()}
					}
				}
				mu.Unlock()
				// Let other processes contend for the lock; a disabled
				// process spinning would otherwise starve the enabled one
				// on a single-threaded runtime.
				runtime.Gosched()
			}
		}(i)
	}
	wg.Wait()
	return &result, nil
}
