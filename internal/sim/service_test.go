package sim

import (
	"math/rand"
	"testing"
)

func TestServiceSafeFromLegitimate(t *testing.T) {
	p := NewDijkstra3(6)
	legit, err := LegitimateConfig(p)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := MeasureService(p, NewRoundRobinDaemon(p.Procs()), legit, 600)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ViolationSteps != 0 || stats.StepsToSafety != 0 {
		t.Fatalf("violations from legitimate start: %+v", stats)
	}
	// Service liveness and fairness: every process enters its critical
	// section, and no process is starved relative to the others by more
	// than the natural bounce asymmetry.
	if stats.MinEntries() == 0 {
		t.Fatalf("some process never served: %v", stats.Entries)
	}
	if stats.MaxEntries() > 4*stats.MinEntries() {
		t.Fatalf("service too skewed: %v", stats.Entries)
	}
}

func TestServiceRecoversAfterFaults(t *testing.T) {
	p := NewDijkstra3(7)
	legit, err := LegitimateConfig(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	start := Corrupt(p, legit, 5, rng)
	stats, err := MeasureService(p, NewRandomDaemon(4), start, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Violations may occur during recovery but must stop well before the
	// end of the run.
	if stats.StepsToSafety >= stats.Steps/2 {
		t.Fatalf("safety not regained promptly: %+v", stats)
	}
	if stats.ViolationSteps > stats.StepsToSafety {
		t.Fatalf("violation accounting inconsistent: %+v", stats)
	}
}

func TestServiceValidation(t *testing.T) {
	p := NewDijkstra3(4)
	if _, err := MeasureService(p, NewRandomDaemon(1), make(Config, 4), 0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := MeasureService(p, NewRandomDaemon(1), make(Config, 2), 5); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestServiceEntriesSumToSteps(t *testing.T) {
	p := NewKState(5, 5)
	legit, err := LegitimateConfig(p)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := MeasureService(p, NewRandomDaemon(8), legit, 500)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, e := range stats.Entries {
		sum += e
	}
	if sum != stats.Steps || stats.Steps != 500 {
		t.Fatalf("entry accounting: %+v", stats)
	}
	if stats.MaxEntries() == 0 {
		t.Fatal("no entries recorded")
	}
}
