package sim

import (
	"fmt"
	"math/rand"
)

// Daemon is a scheduler: given the enabled moves of a configuration it
// chooses which single move executes next (central-daemon semantics).
// Implementations must be deterministic given their own state and the
// move list; randomness comes from an explicitly seeded source.
type Daemon interface {
	// Name identifies the daemon in reports.
	Name() string
	// Choose picks one of the enabled moves (len(moves) ≥ 1).
	Choose(moves []Move) Move
}

// RandomDaemon picks uniformly at random with a seeded source.
type RandomDaemon struct {
	rng *rand.Rand
}

// NewRandomDaemon builds a random daemon from a seed.
func NewRandomDaemon(seed int64) *RandomDaemon {
	return &RandomDaemon{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Daemon.
func (d *RandomDaemon) Name() string { return "random" }

// Choose implements Daemon.
func (d *RandomDaemon) Choose(moves []Move) Move {
	return moves[d.rng.Intn(len(moves))]
}

// RoundRobinDaemon sweeps process indices cyclically, granting the lowest
// enabled process at or after the cursor; among that process's moves it
// picks the first.
type RoundRobinDaemon struct {
	procs  int
	cursor int
}

// NewRoundRobinDaemon builds a round-robin daemon over p processes.
func NewRoundRobinDaemon(p int) *RoundRobinDaemon {
	if p <= 0 {
		panic(fmt.Sprintf("sim: round-robin daemon over %d processes", p))
	}
	return &RoundRobinDaemon{procs: p}
}

// Name implements Daemon.
func (d *RoundRobinDaemon) Name() string { return "round-robin" }

// Choose implements Daemon.
func (d *RoundRobinDaemon) Choose(moves []Move) Move {
	for off := 0; off < d.procs; off++ {
		want := (d.cursor + off) % d.procs
		for _, m := range moves {
			if m.Proc == want {
				d.cursor = (want + 1) % d.procs
				return m
			}
		}
	}
	// Unreachable for len(moves) ≥ 1; keep the daemon total anyway.
	return moves[0]
}

// GreedyDaemon is an adversarial heuristic: it picks the move whose
// successor configuration has the most tokens (slowest convergence),
// breaking ties by lowest process index. It needs the protocol to evaluate
// successors.
type GreedyDaemon struct {
	proto Protocol
	cur   Config
}

// NewGreedyDaemon builds the adversary for a protocol.
func NewGreedyDaemon(p Protocol) *GreedyDaemon {
	return &GreedyDaemon{proto: p}
}

// Name implements Daemon.
func (d *GreedyDaemon) Name() string { return "greedy-adversary" }

// Observe gives the daemon the current configuration; the Runner calls it
// before each Choose.
func (d *GreedyDaemon) Observe(c Config) { d.cur = c }

// Choose implements Daemon.
func (d *GreedyDaemon) Choose(moves []Move) Move {
	if d.cur == nil {
		return moves[0]
	}
	best := moves[0]
	bestTokens := -1
	scratch := d.cur.Clone()
	for _, m := range moves {
		scratch[m.Proc] = m.NewVal
		tokens := TokenCount(d.proto, scratch)
		scratch[m.Proc] = d.cur[m.Proc]
		if tokens > bestTokens {
			bestTokens = tokens
			best = m
		}
	}
	return best
}

// observer is implemented by daemons that want to see the configuration
// before choosing.
type observer interface {
	Observe(c Config)
}
