package sim

import (
	"context"
	"fmt"
	"math/rand"
)

// Result summarizes one run.
type Result struct {
	// Converged reports whether a legitimate configuration was reached
	// within the step budget.
	Converged bool
	// Steps is the number of moves executed before the first legitimate
	// configuration (or the full budget if not converged).
	Steps int
	// Final is the last configuration.
	Final Config
	// RuleFires counts executions per rule name over the whole run
	// (including steps after convergence if RunAfterConvergence is set).
	RuleFires map[string]int
	// MaxTokens is the largest token count observed.
	MaxTokens int
	// TokenTrace, if requested, records the token count after every step.
	TokenTrace []int
	// RuleTrace, if requested, records the fired rule names in order.
	RuleTrace []string
}

// Runner executes a protocol under a daemon.
type Runner struct {
	// Proto is the protocol under test.
	Proto Protocol
	// Daemon schedules moves.
	Daemon Daemon
	// MaxSteps bounds the run (required, > 0).
	MaxSteps int
	// RunAfterConvergence keeps executing (and counting rule fires) for
	// the remaining budget after legitimacy is reached — used by the
	// token-circulation experiments.
	RunAfterConvergence bool
	// RecordTokens fills Result.TokenTrace.
	RecordTokens bool
	// RecordRules fills Result.RuleTrace.
	RecordRules bool
}

// Run executes from the given initial configuration.
func (r *Runner) Run(initial Config) (*Result, error) {
	if r.MaxSteps <= 0 {
		return nil, fmt.Errorf("sim: MaxSteps must be positive, got %d", r.MaxSteps)
	}
	if err := Validate(r.Proto, initial); err != nil {
		return nil, err
	}
	cur := initial.Clone()
	res := &Result{RuleFires: make(map[string]int), Final: cur}
	res.MaxTokens = TokenCount(r.Proto, cur)
	converged := r.Proto.Legitimate(cur)
	if converged {
		res.Converged = true
	}

	for step := 0; step < r.MaxSteps; step++ {
		if converged && !r.RunAfterConvergence {
			break
		}
		moves := EnabledMoves(r.Proto, cur)
		if len(moves) == 0 {
			// Deadlock: the derived protocols never deadlock; reaching
			// here means the protocol or configuration is broken.
			return nil, fmt.Errorf("sim: deadlock at %v under %s", cur, r.Proto.Name())
		}
		if ob, isObserver := r.Daemon.(observer); isObserver {
			ob.Observe(cur)
		}
		m := r.Daemon.Choose(moves)
		cur[m.Proc] = m.NewVal
		res.RuleFires[m.Rule]++
		if r.RecordRules {
			res.RuleTrace = append(res.RuleTrace, m.Rule)
		}
		tokens := TokenCount(r.Proto, cur)
		if tokens > res.MaxTokens {
			res.MaxTokens = tokens
		}
		if r.RecordTokens {
			res.TokenTrace = append(res.TokenTrace, tokens)
		}
		if !converged {
			res.Steps = step + 1
			if r.Proto.Legitimate(cur) {
				converged = true
				res.Converged = true
			}
		}
	}
	res.Final = cur
	return res, nil
}

// LegitimateConfig returns a canonical legitimate configuration: all
// registers zero is legitimate for every protocol in this package except
// where noted; if not, the zero config is perturbed by running until
// legitimacy (which for these protocols takes at most a few steps).
func LegitimateConfig(p Protocol) (Config, error) {
	c := make(Config, p.Procs())
	if p.Legitimate(c) {
		return c, nil
	}
	r := &Runner{Proto: p, Daemon: NewRoundRobinDaemon(p.Procs()), MaxSteps: 10 * p.Procs() * p.Procs()}
	res, err := r.Run(c)
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("sim: could not reach a legitimate configuration of %s", p.Name())
	}
	return res.Final, nil
}

// Corrupt returns a copy of c with k registers set to uniformly random
// in-domain values (the transient-fault model: arbitrary corruption of
// process states).
func Corrupt(p Protocol, c Config, k int, rng *rand.Rand) Config {
	out := c.Clone()
	procs := p.Procs()
	if k > procs {
		k = procs
	}
	perm := rng.Perm(procs)
	for _, i := range perm[:k] {
		out[i] = rng.Intn(p.Domain(i))
	}
	return out
}

// RandomConfig returns a uniformly random configuration.
func RandomConfig(p Protocol, rng *rand.Rand) Config {
	c := make(Config, p.Procs())
	for i := range c {
		c[i] = rng.Intn(p.Domain(i))
	}
	return c
}

// ConvergenceStats aggregates steps-to-convergence over many runs.
type ConvergenceStats struct {
	// Runs is the number of runs aggregated.
	Runs int
	// Converged is how many reached legitimacy in budget.
	Converged int
	// MeanSteps and MaxSteps summarize steps-to-legitimacy over converged
	// runs.
	MeanSteps float64
	MaxSteps  int
}

// MeasureConvergence runs `runs` corrupted starts (k faults from a
// legitimate configuration) and aggregates. mkDaemon builds a fresh daemon
// per run (daemons are stateful).
func MeasureConvergence(p Protocol, mkDaemon func(run int) Daemon, runs, faults, maxSteps int, seed int64) (*ConvergenceStats, error) {
	return MeasureConvergenceCtx(context.Background(), p, mkDaemon, runs, faults, maxSteps, seed)
}

// MeasureConvergenceCtx is MeasureConvergence with cancellation: the
// context is polled between runs, so a long aggregation (checkd's
// /v1/ringsim workload) stops promptly when its deadline fires instead of
// finishing the remaining runs.
func MeasureConvergenceCtx(ctx context.Context, p Protocol, mkDaemon func(run int) Daemon, runs, faults, maxSteps int, seed int64) (*ConvergenceStats, error) {
	rng := rand.New(rand.NewSource(seed))
	legit, err := LegitimateConfig(p)
	if err != nil {
		return nil, err
	}
	stats := &ConvergenceStats{Runs: runs}
	total := 0
	for run := 0; run < runs; run++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := Corrupt(p, legit, faults, rng)
		r := &Runner{Proto: p, Daemon: mkDaemon(run), MaxSteps: maxSteps}
		res, err := r.Run(start)
		if err != nil {
			return nil, err
		}
		if res.Converged {
			stats.Converged++
			total += res.Steps
			if res.Steps > stats.MaxSteps {
				stats.MaxSteps = res.Steps
			}
		}
	}
	if stats.Converged > 0 {
		stats.MeanSteps = float64(total) / float64(stats.Converged)
	}
	return stats, nil
}
