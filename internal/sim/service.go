package sim

import "fmt"

// ServiceStats measures the ring as a mutual-exclusion service — the
// application Dijkstra's systems exist for. A process "enters its
// critical section" when it fires while privileged; the service is
// correct when at most one process is privileged (so no two can be in
// the critical section), and fair when entries spread over all
// processes.
type ServiceStats struct {
	// Steps is the number of moves executed.
	Steps int
	// ViolationSteps counts moves taken while the configuration held
	// more than one token — critical-section safety was at risk there.
	ViolationSteps int
	// StepsToSafety is the index of the first move after which the
	// configuration held at most one token forever (within the run).
	StepsToSafety int
	// Entries counts critical-section entries (moves) per process.
	Entries []int
}

// MinEntries returns the least-served process's entry count.
func (s *ServiceStats) MinEntries() int {
	if len(s.Entries) == 0 {
		return 0
	}
	minV := s.Entries[0]
	for _, e := range s.Entries[1:] {
		if e < minV {
			minV = e
		}
	}
	return minV
}

// MaxEntries returns the most-served process's entry count.
func (s *ServiceStats) MaxEntries() int {
	maxV := 0
	for _, e := range s.Entries {
		if e > maxV {
			maxV = e
		}
	}
	return maxV
}

// MeasureService runs the protocol for exactly `steps` moves from start
// under the daemon and reports safety violations and per-process service.
func MeasureService(p Protocol, d Daemon, start Config, steps int) (*ServiceStats, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("sim: steps must be positive, got %d", steps)
	}
	if err := Validate(p, start); err != nil {
		return nil, err
	}
	cur := start.Clone()
	stats := &ServiceStats{Entries: make([]int, p.Procs())}
	lastViolation := -1
	for i := 0; i < steps; i++ {
		moves := EnabledMoves(p, cur)
		if len(moves) == 0 {
			return nil, fmt.Errorf("sim: deadlock at %v", cur)
		}
		if ob, isObserver := d.(observer); isObserver {
			ob.Observe(cur)
		}
		m := d.Choose(moves)
		if TokenCount(p, cur) > 1 {
			stats.ViolationSteps++
			lastViolation = i
		}
		cur[m.Proc] = m.NewVal
		stats.Entries[m.Proc]++
		stats.Steps++
	}
	stats.StepsToSafety = lastViolation + 1
	return stats, nil
}
