package sim

import (
	"math/rand"
	"testing"
)

// traceUnder replays a protocol from start under d, recording each chosen
// move. The daemon interface promises determinism given the daemon's own
// state and the move list; identical replays with fresh daemons must
// therefore produce identical traces.
func traceUnder(t *testing.T, p Protocol, d Daemon, start Config, steps int) []Move {
	t.Helper()
	c := start.Clone()
	var trace []Move
	for len(trace) < steps {
		moves := EnabledMoves(p, c)
		if len(moves) == 0 {
			t.Fatalf("%s: deadlock at %v", p.Name(), c)
		}
		if ob, ok := d.(observer); ok {
			ob.Observe(c)
		}
		m := d.Choose(moves)
		c[m.Proc] = m.NewVal
		trace = append(trace, m)
	}
	return trace
}

// TestEachDaemonDeterministic runs every daemon twice over the same
// protocol and start configuration — fresh instance each time, same
// seed / cursor — and requires move-for-move identical schedules.
func TestEachDaemonDeterministic(t *testing.T) {
	p := NewDijkstra3(5)
	cases := []struct {
		name string
		mk   func() Daemon
	}{
		{"random", func() Daemon { return NewRandomDaemon(42) }},
		{"round-robin", func() Daemon { return NewRoundRobinDaemon(p.Procs()) }},
		{"greedy-adversary", func() Daemon { return NewGreedyDaemon(p) }},
	}
	start := RandomConfig(p, rand.New(rand.NewSource(99)))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := traceUnder(t, p, tc.mk(), start, 300)
			b := traceUnder(t, p, tc.mk(), start, 300)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("step %d diverged: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestRoundRobinCursorAdvances pins the cursor semantics: the daemon
// grants the lowest enabled process at or after the cursor, then parks
// the cursor just past it.
func TestRoundRobinCursorAdvances(t *testing.T) {
	d := NewRoundRobinDaemon(4)
	moves := []Move{{Proc: 2, NewVal: 0}, {Proc: 3, NewVal: 0}}
	if got := d.Choose(moves); got.Proc != 2 {
		t.Fatalf("cursor 0 over {2,3}: chose %d, want 2", got.Proc)
	}
	if d.cursor != 3 {
		t.Fatalf("cursor = %d after granting 2, want 3", d.cursor)
	}
	if got := d.Choose(moves); got.Proc != 3 {
		t.Fatalf("cursor 3 over {2,3}: chose %d, want 3", got.Proc)
	}
	// Cursor wraps: 0 is not enabled, so the scan comes back around to 2.
	if got := d.Choose(moves); got.Proc != 2 {
		t.Fatalf("wrapped cursor over {2,3}: chose %d, want 2", got.Proc)
	}
}

// TestLiveRingSmallRingsConverge exercises the goroutine-per-process
// ring for the two Dijkstra protocols at small N. Running under the race
// detector (make check) this also validates the locking discipline.
func TestLiveRingSmallRingsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, p := range []Protocol{NewDijkstra3(4), NewDijkstra4(4)} {
		for trial := 0; trial < 3; trial++ {
			legit, err := LegitimateConfig(p)
			if err != nil {
				t.Fatal(err)
			}
			start := Corrupt(p, legit, 2, rng)
			lr := &LiveRing{Proto: p, MaxSteps: 100_000}
			res, err := lr.Run(start)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if !res.Converged || !p.Legitimate(res.Final) {
				t.Fatalf("%s: trial %d from %v did not converge (result %+v)",
					p.Name(), trial, start, res)
			}
		}
	}
}
