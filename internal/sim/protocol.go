// Package sim is the experimental testbed: a ring simulator that executes
// the derived protocols under pluggable daemons (schedulers) with
// transient-fault injection, and measures convergence. Where the core
// package *decides* stabilization by model checking, sim *exercises* it:
// convergence times, wrapper activity, and token circulation come from
// here. Protocol rules are written in their natural local form (read both
// neighbors, write own register); a cross-validation test checks them
// transition-for-transition against the ring package's automata.
package sim

import "fmt"

// Protocol describes a ring protocol in local-rule form. Processes are
// 0..P−1 on a ring; process i reads its own register and the registers of
// its left ((i−1) mod P) and right ((i+1) mod P) neighbors, and may write
// only its own register. Process 0 is the "bottom" and process P−1 the
// "top" where the protocol distinguishes them.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Procs returns P, the number of processes.
	Procs() int
	// Domain returns the register domain size of process i (values are
	// 0..Domain(i)−1).
	Domain(i int) int
	// Moves returns the state-changing moves available to process i given
	// its neighborhood (τ moves that leave the register unchanged are not
	// reported; a daemon scheduling a no-op is indistinguishable from not
	// scheduling it).
	Moves(i, left, own, right int) []Move
	// Legitimate reports whether the configuration is in the protocol's
	// legitimate region.
	Legitimate(config Config) bool
	// TokenAt reports whether process i holds a token (is privileged) in
	// the configuration.
	TokenAt(config Config, i int) bool
}

// Move is one enabled state change at a process.
type Move struct {
	// Proc is the process the move belongs to (filled by the runner).
	Proc int
	// Rule names the guarded command that produced the move.
	Rule string
	// NewVal is the value written to the process's register.
	NewVal int
}

// Config is a ring configuration: one register value per process.
type Config []int

// Clone copies the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// TokenCount counts privileged processes under the protocol.
func TokenCount(p Protocol, c Config) int {
	n := 0
	for i := 0; i < p.Procs(); i++ {
		if p.TokenAt(c, i) {
			n++
		}
	}
	return n
}

// EnabledMoves collects every process's moves in the configuration, with
// Proc filled in. The result is deterministic: processes in index order,
// rules in declaration order.
func EnabledMoves(p Protocol, c Config) []Move {
	procs := p.Procs()
	var out []Move
	for i := 0; i < procs; i++ {
		left := c[(i-1+procs)%procs]
		right := c[(i+1)%procs]
		for _, m := range p.Moves(i, left, c[i], right) {
			m.Proc = i
			out = append(out, m)
		}
	}
	return out
}

// Validate checks a configuration against the protocol's shape.
func Validate(p Protocol, c Config) error {
	if len(c) != p.Procs() {
		return fmt.Errorf("sim: config has %d registers, protocol %q has %d processes",
			len(c), p.Name(), p.Procs())
	}
	for i, v := range c {
		if v < 0 || v >= p.Domain(i) {
			return fmt.Errorf("sim: register %d holds %d, outside domain [0,%d)", i, v, p.Domain(i))
		}
	}
	return nil
}

// mod3 helpers shared by the 3-state protocols.
func plus1mod3(x int) int { return (x + 1) % 3 }
