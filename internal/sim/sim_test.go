package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/system"
)

// automatonOf enumerates a sim protocol into an automaton over the product
// of its register domains (register i is variable i), with the legitimate
// configurations as initial states.
func automatonOf(p Protocol) (*system.System, *system.Space) {
	vars := make([]system.Var, p.Procs())
	for i := range vars {
		vars[i] = system.Int(fmt.Sprintf("r%d", i), p.Domain(i))
	}
	sp := system.NewSpace(vars...)
	b := system.NewSpaceBuilder(p.Name(), sp)
	cfg := make(Config, p.Procs())
	for s := 0; s < sp.Size(); s++ {
		sp.Decode(s, system.Vals(cfg))
		for _, m := range EnabledMoves(p, cfg) {
			old := cfg[m.Proc]
			cfg[m.Proc] = m.NewVal
			b.AddTransition(s, sp.Encode(system.Vals(cfg)))
			cfg[m.Proc] = old
		}
		if p.Legitimate(cfg) {
			b.AddInit(s)
		}
	}
	return b.Build(), sp
}

// TestDijkstra3MatchesModel cross-validates the local-rule simulator
// protocol against the ring package's automaton, transition for
// transition.
func TestDijkstra3MatchesModel(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		simSys, _ := automatonOf(NewDijkstra3(n + 1))
		model := ring.NewThreeState(n).Dijkstra3()
		if !system.TransitionsEqual(simSys, model) {
			diff := system.DiffTransitions(simSys, model, 3)
			diff2 := system.DiffTransitions(model, simSys, 3)
			t.Fatalf("N=%d: sim vs model differ: sim-only %v, model-only %v", n, diff, diff2)
		}
	}
}

func TestKStateMatchesModel(t *testing.T) {
	for _, n := range []int{2, 3} {
		for _, k := range []int{3, 4} {
			simSys, _ := automatonOf(NewKState(n+1, k))
			model := ring.NewKState(n, k).System()
			if !system.TransitionsEqual(simSys, model) {
				t.Fatalf("N=%d K=%d: sim vs model differ", n, k)
			}
		}
	}
}

// TestDijkstra4MatchesModel translates between the simulator's packed
// per-process registers and the model's c/up variable layout, then
// compares successor sets state by state.
func TestDijkstra4MatchesModel(t *testing.T) {
	n := 3
	f := ring.NewFourState(n)
	model := f.Dijkstra4()
	proto := NewDijkstra4(n + 1)
	simSys, simSpace := automatonOf(proto)

	// modelToSim translates a model state index to a sim state index.
	mv := make(system.Vals, f.Space.NumVars())
	modelToSim := func(s int) int {
		mv = f.Space.Decode(s, mv)
		cfg := make(system.Vals, n+1)
		for j := 0; j <= n; j++ {
			c := mv[j] // c0..cN first in the model space
			switch j {
			case 0, n:
				cfg[j] = c
			default:
				up := mv[n+j] // up1..up(N−1) after the c block
				cfg[j] = c | up<<1
			}
		}
		return simSpace.Encode(cfg)
	}

	for s := 0; s < model.NumStates(); s++ {
		ss := modelToSim(s)
		want := make(map[int]bool)
		for _, t2 := range model.Succ(s) {
			want[modelToSim(t2)] = true
		}
		got := simSys.Succ(ss)
		if len(got) != len(want) {
			t.Fatalf("state %s: sim has %d successors, model %d",
				model.StateString(s), len(got), len(want))
		}
		for _, t2 := range got {
			if !want[t2] {
				t.Fatalf("state %s: sim successor %s not in model",
					model.StateString(s), simSys.StateString(t2))
			}
		}
	}
}

// TestSimProtocolsStabilize runs the model checker on the automata
// enumerated from the simulator's local rules: every protocol, exactly as
// the simulator executes it, is self-stabilizing.
func TestSimProtocolsStabilize(t *testing.T) {
	protos := []Protocol{
		NewDijkstra3(4),
		NewDijkstra4(4),
		NewKState(4, 4),
		NewNewThree(4),
	}
	for _, p := range protos {
		sys, _ := automatonOf(p)
		rep := core.SelfStabilizing(sys)
		if !rep.Holds {
			t.Fatalf("%s: %s", p.Name(), rep.Verdict)
		}
	}
}

func TestTokensNeverZeroDuringRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []Protocol{NewDijkstra3(5), NewDijkstra4(5), NewKState(5, 5)} {
		for trial := 0; trial < 20; trial++ {
			start := RandomConfig(p, rng)
			if TokenCount(p, start) == 0 {
				t.Fatalf("%s: tokenless random config %v", p.Name(), start)
			}
		}
	}
}

func TestRunnerConvergesFromRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	protos := []Protocol{NewDijkstra3(6), NewDijkstra4(6), NewKState(6, 6), NewNewThree(6)}
	for _, p := range protos {
		for trial := 0; trial < 25; trial++ {
			r := &Runner{Proto: p, Daemon: NewRandomDaemon(int64(trial)), MaxSteps: 5000}
			res, err := r.Run(RandomConfig(p, rng))
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			if !res.Converged {
				t.Fatalf("%s: did not converge from random config (trial %d)", p.Name(), trial)
			}
			if !p.Legitimate(res.Final) {
				t.Fatalf("%s: final config not legitimate", p.Name())
			}
		}
	}
}

func TestRunnerConvergesUnderAllDaemons(t *testing.T) {
	p := NewDijkstra3(5)
	daemons := []func() Daemon{
		func() Daemon { return NewRandomDaemon(1) },
		func() Daemon { return NewRoundRobinDaemon(p.Procs()) },
		func() Daemon { return NewGreedyDaemon(p) },
	}
	rng := rand.New(rand.NewSource(3))
	for _, mk := range daemons {
		d := mk()
		r := &Runner{Proto: p, Daemon: d, MaxSteps: 5000}
		res, err := r.Run(RandomConfig(p, rng))
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if !res.Converged {
			t.Fatalf("daemon %s: no convergence", d.Name())
		}
	}
}

func TestDijkstra3TokenInvariants(t *testing.T) {
	// Privileges never vanish entirely, and from a legitimate
	// configuration every move preserves the unique privilege. (Token
	// count is NOT monotone in fault states — Dijkstra's bottom rule can
	// create a privilege during recovery; the stabilization proofs rely
	// on a finer variant function, and the model checker verifies the end
	// result.)
	p := NewDijkstra3(5)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		c := RandomConfig(p, rng)
		legit := p.Legitimate(c)
		for _, m := range EnabledMoves(p, c) {
			next := c.Clone()
			next[m.Proc] = m.NewVal
			after := TokenCount(p, next)
			if after == 0 {
				t.Fatalf("move %+v killed all tokens at %v", m, c)
			}
			if legit && after != 1 {
				t.Fatalf("move %+v broke mutual exclusion from legit %v", m, c)
			}
		}
	}
}

func TestCorrupt(t *testing.T) {
	p := NewDijkstra3(5)
	legit, err := LegitimateConfig(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	out := Corrupt(p, legit, 2, rng)
	if len(out) != len(legit) {
		t.Fatal("length changed")
	}
	if err := Validate(p, out); err != nil {
		t.Fatalf("corrupted config invalid: %v", err)
	}
	// Corruption must not alias the input.
	out[0] = (out[0] + 1) % 3
	if err := Validate(p, legit); err != nil {
		t.Fatal("corrupt aliased its input")
	}
	// k larger than P is clamped.
	_ = Corrupt(p, legit, 100, rng)
}

func TestLegitimateConfigAllProtocols(t *testing.T) {
	for _, p := range []Protocol{NewDijkstra3(5), NewDijkstra4(5), NewKState(5, 4), NewNewThree(5)} {
		c, err := LegitimateConfig(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !p.Legitimate(c) {
			t.Fatalf("%s: returned config not legitimate", p.Name())
		}
	}
}

func TestMeasureConvergence(t *testing.T) {
	p := NewDijkstra3(6)
	stats, err := MeasureConvergence(p,
		func(run int) Daemon { return NewRandomDaemon(int64(run)) },
		30, 3, 5000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Converged != stats.Runs {
		t.Fatalf("only %d/%d runs converged", stats.Converged, stats.Runs)
	}
	if stats.MeanSteps <= 0 || stats.MaxSteps < int(stats.MeanSteps) {
		t.Fatalf("stats implausible: %+v", stats)
	}
}

func TestRunnerTokenCirculation(t *testing.T) {
	// After convergence the single token keeps circulating: every rule of
	// Dijkstra3 fires during a long run from a legitimate configuration.
	p := NewDijkstra3(4)
	legit, err := LegitimateConfig(p)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Proto: p, Daemon: NewRoundRobinDaemon(p.Procs()), MaxSteps: 200,
		RunAfterConvergence: true, RecordTokens: true}
	res, err := r.Run(legit)
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range []string{"bottom", "top", "up", "down"} {
		if res.RuleFires[rule] == 0 {
			t.Fatalf("rule %s never fired: %v", rule, res.RuleFires)
		}
	}
	for i, tok := range res.TokenTrace {
		if tok != 1 {
			t.Fatalf("token count %d at step %d of legitimate run", tok, i)
		}
	}
}

func TestRunnerErrors(t *testing.T) {
	p := NewDijkstra3(4)
	if _, err := (&Runner{Proto: p, Daemon: NewRandomDaemon(1)}).Run(make(Config, 4)); err == nil {
		t.Fatal("zero MaxSteps accepted")
	}
	if _, err := (&Runner{Proto: p, Daemon: NewRandomDaemon(1), MaxSteps: 10}).Run(make(Config, 3)); err == nil {
		t.Fatal("short config accepted")
	}
	bad := Config{9, 0, 0, 0}
	if _, err := (&Runner{Proto: p, Daemon: NewRandomDaemon(1), MaxSteps: 10}).Run(bad); err == nil {
		t.Fatal("out-of-domain config accepted")
	}
}

func TestWrapperActivityNewThree(t *testing.T) {
	// The Section 5.1 interference argument, measured: during recovery
	// runs W1″ fires only when tokens have vanished, and W2′ deletions
	// plus endpoint absorptions make up the difference. Here we check the
	// bookkeeping: runs converge and the W1″ rule fires at least once
	// when starting from the all-equal (tokenless-middle) configuration.
	p := NewNewThree(5)
	start := Config{1, 1, 1, 1, 1}
	r := &Runner{Proto: p, Daemon: NewRandomDaemon(2), MaxSteps: 1000}
	res, err := r.Run(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence from all-equal start")
	}
}

func TestLiveRingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, p := range []Protocol{NewDijkstra3(5), NewDijkstra4(5), NewKState(5, 5)} {
		lr := &LiveRing{Proto: p, MaxSteps: 100000}
		res, err := lr.Run(RandomConfig(p, rng))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !res.Converged {
			t.Fatalf("%s: live ring did not converge", p.Name())
		}
		if !p.Legitimate(res.Final) {
			t.Fatalf("%s: final not legitimate", p.Name())
		}
	}
}

func TestLiveRingImmediateLegitimacy(t *testing.T) {
	p := NewDijkstra3(4)
	legit, err := LegitimateConfig(p)
	if err != nil {
		t.Fatal(err)
	}
	lr := &LiveRing{Proto: p, MaxSteps: 10}
	res, err := lr.Run(legit)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Steps != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestLiveRingValidation(t *testing.T) {
	p := NewDijkstra3(4)
	if _, err := (&LiveRing{Proto: p}).Run(make(Config, 4)); err == nil {
		t.Fatal("zero MaxSteps accepted")
	}
	if _, err := (&LiveRing{Proto: p, MaxSteps: 5}).Run(make(Config, 2)); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestDaemonDeterminism(t *testing.T) {
	p := NewDijkstra3(6)
	run := func(seed int64) []int {
		r := &Runner{Proto: p, Daemon: NewRandomDaemon(seed), MaxSteps: 2000}
		rng := rand.New(rand.NewSource(123))
		res, err := r.Run(RandomConfig(p, rng))
		if err != nil {
			t.Fatal(err)
		}
		return res.Final
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seeds produced different runs")
		}
	}
}

func TestProtocolConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDijkstra3(2) },
		func() { NewDijkstra4(2) },
		func() { NewKState(2, 4) },
		func() { NewKState(4, 1) },
		func() { NewNewThree(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
