package sim

import "fmt"

// Dijkstra3 is Dijkstra's 3-state token ring in local-rule form (the final
// Section 5.2 listing). P = N+1 processes; registers are mod-3 counters.
type Dijkstra3 struct {
	// P is the number of processes (≥ 3).
	P int
}

// NewDijkstra3 builds the protocol for p processes.
func NewDijkstra3(p int) *Dijkstra3 {
	if p < 3 {
		panic(fmt.Sprintf("sim: Dijkstra3 needs ≥ 3 processes, got %d", p))
	}
	return &Dijkstra3{P: p}
}

// Name implements Protocol.
func (d *Dijkstra3) Name() string { return fmt.Sprintf("dijkstra3(P=%d)", d.P) }

// Procs implements Protocol.
func (d *Dijkstra3) Procs() int { return d.P }

// Domain implements Protocol.
func (d *Dijkstra3) Domain(int) int { return 3 }

// Moves implements Protocol.
func (d *Dijkstra3) Moves(i, left, own, right int) []Move {
	switch i {
	case 0:
		// c.1 = c.0⊕1 → c.0 := c.1⊕1
		if right == plus1mod3(own) {
			return []Move{{Rule: "bottom", NewVal: plus1mod3(right)}}
		}
	case d.P - 1:
		// c.(N−1) = c.0 ∧ c.(N−1)⊕1 ≠ c.N → c.N := c.(N−1)⊕1
		if left == right && plus1mod3(left) != own {
			return []Move{{Rule: "top", NewVal: plus1mod3(left)}}
		}
	default:
		var ms []Move
		if left == plus1mod3(own) {
			ms = append(ms, Move{Rule: "up", NewVal: left})
		}
		if right == plus1mod3(own) {
			ms = append(ms, Move{Rule: "down", NewVal: right})
		}
		return ms
	}
	return nil
}

// TokenAt implements Protocol: ↑t.i ∨ ↓t.i in the mod-3 encoding, with
// the endpoint privileges as in the derived system.
func (d *Dijkstra3) TokenAt(c Config, i int) bool {
	p := d.P
	left := c[(i-1+p)%p]
	right := c[(i+1)%p]
	switch i {
	case 0:
		return right == plus1mod3(c[0])
	case p - 1:
		return left == plus1mod3(c[i]) || (left == right && plus1mod3(left) != c[i])
	default:
		return left == plus1mod3(c[i]) || right == plus1mod3(c[i])
	}
}

// Legitimate implements Protocol: exactly one privilege.
func (d *Dijkstra3) Legitimate(c Config) bool { return TokenCount(d, c) == 1 }

// Dijkstra4 is Dijkstra's 4-state token ring in local-rule form. Register
// encoding: the bottom and top carry only their c bit (up.0 ≡ true,
// up.N ≡ false); middles carry c + 2·up.
type Dijkstra4 struct {
	// P is the number of processes (≥ 3).
	P int
}

// NewDijkstra4 builds the protocol for p processes.
func NewDijkstra4(p int) *Dijkstra4 {
	if p < 3 {
		panic(fmt.Sprintf("sim: Dijkstra4 needs ≥ 3 processes, got %d", p))
	}
	return &Dijkstra4{P: p}
}

// Name implements Protocol.
func (d *Dijkstra4) Name() string { return fmt.Sprintf("dijkstra4(P=%d)", d.P) }

// Procs implements Protocol.
func (d *Dijkstra4) Procs() int { return d.P }

// Domain implements Protocol.
func (d *Dijkstra4) Domain(i int) int {
	if i == 0 || i == d.P-1 {
		return 2
	}
	return 4
}

// cBit extracts the c value of process i's register.
func (d *Dijkstra4) cBit(i, v int) int {
	if i == 0 || i == d.P-1 {
		return v
	}
	return v & 1
}

// upBit extracts the up value of process i's register.
func (d *Dijkstra4) upBit(i, v int) bool {
	switch i {
	case 0:
		return true
	case d.P - 1:
		return false
	default:
		return v>>1 == 1
	}
}

// Moves implements Protocol.
func (d *Dijkstra4) Moves(i, left, own, right int) []Move {
	n := d.P - 1
	switch i {
	case n:
		// c.(N−1) ≠ c.N → c.N := c.(N−1)
		if d.cBit(n-1, left) != d.cBit(n, own) {
			return []Move{{Rule: "top", NewVal: d.cBit(n-1, left)}}
		}
	case 0:
		// c.1 = c.0 ∧ ¬up.1 → c.0 := ¬c.0
		if d.cBit(1, right) == d.cBit(0, own) && !d.upBit(1, right) {
			return []Move{{Rule: "bottom", NewVal: 1 - own}}
		}
	default:
		var ms []Move
		c := d.cBit(i, own)
		up := d.upBit(i, own)
		if d.cBit(i-1, left) != c {
			// c.j := c.(j−1); up.j := true
			ms = append(ms, Move{Rule: "up", NewVal: d.cBit(i-1, left) | 2})
		}
		if d.cBit(i+1, right) == c && !d.upBit(i+1, right) && up {
			// up.j := false
			ms = append(ms, Move{Rule: "down", NewVal: c})
		}
		return ms
	}
	return nil
}

// TokenAt implements Protocol: a process is privileged iff one of its
// guards is enabled.
func (d *Dijkstra4) TokenAt(c Config, i int) bool {
	p := d.P
	return len(d.Moves(i, c[(i-1+p)%p], c[i], c[(i+1)%p])) > 0
}

// Legitimate implements Protocol.
func (d *Dijkstra4) Legitimate(c Config) bool { return TokenCount(d, c) == 1 }

// KState is Dijkstra's K-state token ring in local-rule form.
type KState struct {
	// P is the number of processes, K the counter modulus.
	P, K int
}

// NewKState builds the protocol.
func NewKState(p, k int) *KState {
	if p < 3 || k < 2 {
		panic(fmt.Sprintf("sim: KState needs P ≥ 3 and K ≥ 2, got P=%d K=%d", p, k))
	}
	return &KState{P: p, K: k}
}

// Name implements Protocol.
func (ks *KState) Name() string { return fmt.Sprintf("kstate(P=%d,K=%d)", ks.P, ks.K) }

// Procs implements Protocol.
func (ks *KState) Procs() int { return ks.P }

// Domain implements Protocol.
func (ks *KState) Domain(int) int { return ks.K }

// Moves implements Protocol.
func (ks *KState) Moves(i, left, own, _ int) []Move {
	if i == 0 {
		// x.0 = x.N → x.0 := x.0 + 1 (x.N is 0's left neighbor on the ring)
		if own == left {
			return []Move{{Rule: "bottom", NewVal: (own + 1) % ks.K}}
		}
		return nil
	}
	if own != left {
		return []Move{{Rule: "copy", NewVal: left}}
	}
	return nil
}

// TokenAt implements Protocol.
func (ks *KState) TokenAt(c Config, i int) bool {
	if i == 0 {
		return c[0] == c[ks.P-1]
	}
	return c[i] != c[i-1]
}

// Legitimate implements Protocol.
func (ks *KState) Legitimate(c Config) bool { return TokenCount(ks, c) == 1 }

// NewThree is the Section 6 new 3-state system in local-rule form:
// C3's own-write token passing plus the wrappers W1″ (at the top) and W2′
// (deletion, taking local priority over the passing rules — the
// simulator's rendering of the PriorityBox convention). τ moves are not
// reported.
type NewThree struct {
	// P is the number of processes (≥ 3).
	P int
}

// NewNewThree builds the protocol.
func NewNewThree(p int) *NewThree {
	if p < 3 {
		panic(fmt.Sprintf("sim: NewThree needs ≥ 3 processes, got %d", p))
	}
	return &NewThree{P: p}
}

// Name implements Protocol.
func (nt *NewThree) Name() string { return fmt.Sprintf("newthree(P=%d)", nt.P) }

// Procs implements Protocol.
func (nt *NewThree) Procs() int { return nt.P }

// Domain implements Protocol.
func (nt *NewThree) Domain(int) int { return 3 }

// Moves implements Protocol.
func (nt *NewThree) Moves(i, left, own, right int) []Move {
	switch i {
	case 0:
		if right == plus1mod3(own) {
			return []Move{{Rule: "bottom", NewVal: plus1mod3(right)}}
		}
	case nt.P - 1:
		var ms []Move
		// C3's top: ↑t.N → c.N := c.(N−1)⊕1.
		if left == plus1mod3(own) {
			ms = append(ms, Move{Rule: "top", NewVal: plus1mod3(left)})
		}
		// W1″: c.(N−1) = c.0 ∧ c.N ≠ c.(N−1)⊕1 → c.N := c.(N−1)⊕1.
		if left == right && own != plus1mod3(left) {
			ms = append(ms, Move{Rule: "W1''", NewVal: plus1mod3(left)})
		}
		return ms
	default:
		up := left == plus1mod3(own)
		down := right == plus1mod3(own)
		if up && down {
			// W2′ deletion preempts the passing rules locally.
			return []Move{{Rule: "W2'", NewVal: left}}
		}
		var ms []Move
		if up {
			if v := plus1mod3(right); v != own {
				ms = append(ms, Move{Rule: "up", NewVal: v})
			}
		}
		if down {
			if v := plus1mod3(left); v != own {
				ms = append(ms, Move{Rule: "down", NewVal: v})
			}
		}
		return ms
	}
	return nil
}

// TokenAt implements Protocol. The top is privileged when either its C3
// rule or W1″ is enabled, mirroring Dijkstra3's merged top guard.
func (nt *NewThree) TokenAt(c Config, i int) bool {
	p := nt.P
	left := c[(i-1+p)%p]
	right := c[(i+1)%p]
	switch i {
	case 0:
		return right == plus1mod3(c[0])
	case p - 1:
		return left == plus1mod3(c[i]) || (left == right && c[i] != plus1mod3(left))
	default:
		return left == plus1mod3(c[i]) || right == plus1mod3(c[i])
	}
}

// Legitimate implements Protocol.
func (nt *NewThree) Legitimate(c Config) bool { return TokenCount(nt, c) == 1 }
