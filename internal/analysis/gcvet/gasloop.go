package gcvet

import (
	"go/ast"
	"go/types"
)

// GasLoop enforces the metering contract of the model-checking core:
// every state-space sweep a caller can reach through the exported API
// must be boundable by a *mc.Gas budget (or cancellable via context).
// checkd's per-request deadlines and the repair loop's
// candidates-per-second budget both depend on it — an unmetered sweep
// is a request that cannot be cancelled.
//
// The rule: an exported function in internal/mc or internal/core whose
// body contains a state-space loop — a for/range statement whose
// subtree touches a type from internal/system or internal/bitset —
// must (a) accept a *mc.Gas or context.Context parameter and (b)
// charge inside the loop: call Tick/Charge/Err on a Gas, consult
// ctx.Done/ctx.Err, or delegate to a function that takes the meter.
// The idiomatic fix is the repo's pair convention: FooGas does the
// metered work, Foo delegates with a nil (unlimited) meter.
var GasLoop = &Analyzer{
	Name: "gasloop",
	Doc:  "exported mc/core functions with state-space loops must take and charge a *mc.Gas",
	Run:  runGasLoop,
}

var gasLoopGated = []string{
	"internal/mc",
	"internal/core",
}

func runGasLoop(pass *Pass) {
	gated := false
	for _, s := range gasLoopGated {
		if pathHasSuffix(pass.Pkg.Path(), s) {
			gated = true
			break
		}
	}
	if !gated {
		return
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			loops := stateSpaceLoops(pass, fn.Body)
			if len(loops) == 0 {
				continue
			}
			if !acceptsMeter(pass, fn) {
				pass.Reportf(fn.Name.Pos(),
					"exported %s contains a state-space loop but accepts no *mc.Gas or context.Context", fn.Name.Name)
				continue
			}
			for _, loop := range loops {
				if !chargesInside(pass, loop) {
					pass.Reportf(loop.Pos(),
						"state-space loop in exported %s does not charge gas (call Tick inside the loop or delegate to a metered helper)", fn.Name.Name)
				}
			}
		}
	}
}

// stateSpaceLoops returns the outermost for/range statements in body
// whose subtree references a state-space type (internal/system or
// internal/bitset). Plain index/slice bookkeeping loops don't qualify.
func stateSpaceLoops(pass *Pass, body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if touchesStateSpace(pass, n) {
				loops = append(loops, n.(ast.Stmt))
				return false // outermost is enough; nested loops share its charge
			}
		}
		return true
	})
	return loops
}

// touchesStateSpace reports whether any expression under n has a type
// from the state-space packages.
func touchesStateSpace(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		ex, ok := m.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.Info.Types[ex]; ok && namedFromPkg(tv.Type, "internal/system", "internal/bitset") {
			found = true
			return false
		}
		return true
	})
	return found
}

// acceptsMeter reports whether fn has a *mc.Gas or context.Context
// parameter.
func acceptsMeter(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		if isContext(tv.Type) || isGas(tv.Type) {
			return true
		}
	}
	return false
}

// isGas reports whether t is mc.Gas or *mc.Gas (matched by type name
// and package suffix so testdata fixtures gate identically).
func isGas(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Name() == "Gas" && pathHasSuffix(obj.Pkg().Path(), "internal/mc")
}

// chargesInside reports whether the loop's subtree charges the meter:
// a Tick/Charge/Err call on a Gas value, a ctx.Done/ctx.Err consult,
// or a call that passes the meter (or a context) down to a metered
// helper.
func chargesInside(pass *Pass, loop ast.Stmt) bool {
	charged := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if charged {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			recv, ok := pass.Info.Types[sel.X]
			if ok {
				switch sel.Sel.Name {
				case "Tick", "Charge", "Err":
					if isGas(recv.Type) {
						charged = true
						return false
					}
				case "Done":
					if isContext(recv.Type) {
						charged = true
						return false
					}
				}
				if sel.Sel.Name == "Err" && isContext(recv.Type) {
					charged = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if tv, ok := pass.Info.Types[arg]; ok && (isGas(tv.Type) || isContext(tv.Type)) {
				charged = true
				return false
			}
		}
		return true
	})
	return charged
}
