package gcvet

import (
	"go/ast"
	"strings"
)

// DetRand enforces the reproducibility contract of the simulation and
// model-checking layers: every run is a pure function of its seed.
// In the deterministic packages it forbids
//
//   - the global math/rand top-level functions (rand.Intn, rand.Perm,
//     rand.Shuffle, rand.Seed, …), whose shared process-wide source
//     makes interleaved runs order-dependent, and
//   - the wall clock (time.Now, time.Since, time.Until), which leaks
//     real time into schedules, seeds, and reports.
//
// Constructor calls (rand.New, rand.NewSource, rand.NewZipf, …) stay
// legal: building a threaded *rand.Rand from an explicit seed is
// exactly the sanctioned pattern. The service layer is allowlisted —
// HTTP handlers measure real latency by design.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand and wall-clock reads in deterministic packages",
	Run:  runDetRand,
}

// detRandGated lists the deterministic package trees (path suffixes;
// internal/gcl gates its whole subtree).
var detRandGated = []string{
	"internal/sim",
	"internal/mc",
	"internal/core",
	"internal/cluster",
	"internal/cluster/chaos",
	"internal/fleet",
	"internal/journal",
}

// detRandAllowed overrides the gate: these packages may read the wall
// clock (service-layer latency measurement).
var detRandAllowed = []string{
	"internal/service",
}

func detRandGatedPkg(path string) bool {
	for _, s := range detRandAllowed {
		if pathHasSuffix(path, s) {
			return false
		}
	}
	for _, s := range detRandGated {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	// The GCL toolchain (parser, analyzer, checker) is deterministic
	// end to end; gate every package under internal/gcl.
	return pathHasSuffix(path, "internal/gcl") || strings.Contains(path, "/internal/gcl/")
}

func runDetRand(pass *Pass) {
	if !detRandGatedPkg(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch importedPkg(pass.Info, sel) {
			case "math/rand", "math/rand/v2":
				// Only the constructors are deterministic-by-seed;
				// everything else drains the global source.
				if !strings.HasPrefix(sel.Sel.Name, "New") {
					pass.Reportf(call.Pos(),
						"global rand.%s in deterministic package %s: thread a seeded *rand.Rand instead",
						sel.Sel.Name, pass.Pkg.Path())
				}
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(),
						"wall clock time.%s in deterministic package %s: derive time from the seed or step count",
						sel.Sel.Name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
}
