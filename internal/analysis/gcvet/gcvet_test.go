package gcvet

import (
	"strings"
	"testing"
)

func TestDetRandFlagged(t *testing.T) {
	runFixture(t, "repro/internal/sim", DetRand)
}

func TestDetRandAllowlistClean(t *testing.T) {
	runFixture(t, "repro/internal/service", DetRand)
}

func TestGasLoop(t *testing.T) {
	runFixture(t, "repro/internal/mc", GasLoop)
}

func TestMapIter(t *testing.T) {
	runFixture(t, "repro/internal/cluster/chaos", MapIter)
}

func TestGoLeak(t *testing.T) {
	runFixture(t, "repro/internal/worker", GoLeak)
}

func TestEventKind(t *testing.T) {
	runFixture(t, "repro/internal/cluster", EventKind)
}

func TestEventKindJournal(t *testing.T) {
	runFixture(t, "repro/internal/journal", EventKind)
}

func TestEventKindFleet(t *testing.T) {
	runFixture(t, "repro/internal/fleet", EventKind)
}

// TestWaiverHygiene asserts the waiver contract directly: a want
// comment cannot share a line with a waiver comment (everything after
// the directive is the reason), so the hygiene fixture is checked
// without them.
func TestWaiverHygiene(t *testing.T) {
	ld := newLoader(t)
	files, pkg, info := ld.target("repro/internal/hygiene")
	diags := runAnalyzers(All(), ld.fset, files, pkg, info)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "must carry a reason") {
		t.Errorf("diag 0 = %q, want reasonless-waiver finding", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, `unknown waiver directive "//gcvet:detrnd-ok"`) {
		t.Errorf("diag 1 = %q, want unknown-directive finding", diags[1].Message)
	}
	for _, d := range diags {
		if d.Analyzer != "gcvet" {
			t.Errorf("hygiene finding attributed to %q, want gcvet", d.Analyzer)
		}
	}
}

// TestWaiverHygieneSubset: directive validation runs against the full
// registry even when only a subset of analyzers is selected — a
// -detrand-only run must not report every //gcvet:leak-ok as unknown.
func TestWaiverHygieneSubset(t *testing.T) {
	ld := newLoader(t)
	files, pkg, info := ld.target("repro/internal/worker") // carries a leak-ok waiver
	if diags := runAnalyzers([]*Analyzer{DetRand}, ld.fset, files, pkg, info); len(diags) != 0 {
		t.Fatalf("subset run produced diagnostics: %+v", diags)
	}
}

// TestRegistryNames pins the analyzer names: they are flag names and
// waiver directives, so renames are breaking changes.
func TestRegistryNames(t *testing.T) {
	want := []string{"detrand", "gasloop", "mapiter", "leak", "eventkind"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
