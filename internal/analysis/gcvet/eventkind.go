package gcvet

import (
	"go/ast"
	"go/types"
)

// EventKind keeps the monitor/fleet event vocabulary closed: every
// event kind must be one of the declared Kind* constants from the
// package's event registry, never an inline string literal. The
// golden-pinned streams, the chaos judge, and the loadgen report all
// match on kind strings — a typo in a literal ("recoverd") silently
// creates a kind nothing matches, which the compiler cannot catch but
// a closed constant set can.
//
// Flagged in gated packages, in non-test code:
//
//   - Event{Kind: "..."} composite literals with a raw string kind;
//   - emit("...", ...) calls whose kind argument is a raw literal;
//   - journal Append/AppendAsync calls whose kind argument is a raw
//     literal (the journal's event vocabulary is a registry too — a
//     misspelled kind appends events no projection ever applies);
//   - comparisons of a .Kind field (== / != / switch) against a raw
//     literal.
var EventKind = &Analyzer{
	Name: "eventkind",
	Doc:  "monitor/fleet/journal event kinds must be registry constants, not inline string literals",
	Run:  runEventKind,
}

var eventKindGated = []string{
	"internal/cluster",
	"internal/cluster/chaos",
	"internal/fleet",
	"internal/journal",
	"internal/service",
}

func runEventKind(pass *Pass) {
	gated := false
	for _, s := range eventKindGated {
		if pathHasSuffix(pass.Pkg.Path(), s) {
			gated = true
			break
		}
	}
	if !gated {
		return
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch m := n.(type) {
			case *ast.CompositeLit:
				checkEventLit(pass, m)
			case *ast.CallExpr:
				checkEmitCall(pass, m)
				checkAppendCall(pass, m)
			case *ast.BinaryExpr:
				checkKindCompare(pass, m)
			case *ast.SwitchStmt:
				checkKindSwitch(pass, m)
			}
			return true
		})
	}
}

// isEventType reports whether t is a named Event type from one of the
// gated packages.
func isEventType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil || n.Obj().Name() != "Event" {
		return false
	}
	for _, s := range eventKindGated {
		if pathHasSuffix(n.Obj().Pkg().Path(), s) {
			return true
		}
	}
	return false
}

// isKindSelector reports whether ex selects a field named Kind from an
// Event value.
func isKindSelector(pass *Pass, ex ast.Expr) bool {
	sel, ok := ex.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Kind" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	return ok && isEventType(tv.Type)
}

// isStringLit reports whether ex is a raw string literal (not a
// declared constant).
func isStringLit(ex ast.Expr) bool {
	lit, ok := ex.(*ast.BasicLit)
	return ok && lit.Kind.String() == "STRING"
}

func checkEventLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !isEventType(tv.Type) {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" && isStringLit(kv.Value) {
			pass.Reportf(kv.Value.Pos(),
				"inline event kind %s: declare it as a Kind constant in the event registry", exprText(kv.Value))
		}
	}
}

// checkEmitCall flags emit-style calls whose first argument is a raw
// string literal; by convention the kind parameter comes first.
func checkEmitCall(pass *Pass, call *ast.CallExpr) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name != "emit" && name != "emitEvent" {
		return
	}
	if len(call.Args) > 0 && isStringLit(call.Args[0]) {
		pass.Reportf(call.Args[0].Pos(),
			"inline event kind %s passed to %s: use a Kind constant from the event registry", exprText(call.Args[0]), name)
	}
}

// isJournalType reports whether t is the journal's Journal type.
func isJournalType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil || n.Obj().Name() != "Journal" {
		return false
	}
	return pathHasSuffix(n.Obj().Pkg().Path(), "internal/journal")
}

// checkAppendCall flags journal.Append/AppendAsync calls whose kind
// argument (the first) is a raw string literal.
func checkAppendCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Append" && name != "AppendAsync" {
		return
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || !isJournalType(tv.Type) {
		return
	}
	if len(call.Args) > 0 && isStringLit(call.Args[0]) {
		pass.Reportf(call.Args[0].Pos(),
			"inline event kind %s passed to %s: use a Kind constant from the journal event registry", exprText(call.Args[0]), name)
	}
}

func checkKindCompare(pass *Pass, bin *ast.BinaryExpr) {
	if op := bin.Op.String(); op != "==" && op != "!=" {
		return
	}
	if isKindSelector(pass, bin.X) && isStringLit(bin.Y) {
		pass.Reportf(bin.Y.Pos(), "comparing .Kind against inline literal %s: use the registry constant", exprText(bin.Y))
	}
	if isKindSelector(pass, bin.Y) && isStringLit(bin.X) {
		pass.Reportf(bin.X.Pos(), "comparing .Kind against inline literal %s: use the registry constant", exprText(bin.X))
	}
}

func checkKindSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isKindSelector(pass, sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, ex := range cc.List {
			if isStringLit(ex) {
				pass.Reportf(ex.Pos(), "switch on .Kind with inline literal %s: use the registry constant", exprText(ex))
			}
		}
	}
}

// exprText renders a literal for the message.
func exprText(ex ast.Expr) string {
	if lit, ok := ex.(*ast.BasicLit); ok {
		return lit.Value
	}
	return "literal"
}
