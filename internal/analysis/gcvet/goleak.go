package gcvet

import (
	"go/ast"
	"go/token"
	"strings"
)

// GoLeak requires every goroutine started in non-test internal/ code
// to have a visible stop path. The fleet and cluster runtimes start
// and stop hundreds of nodes per test run; a single free-running
// goroutine turns crash/restart cycles into an unbounded leak and
// makes the race detector's reports non-reproducible.
//
// A `go` statement passes if the analyzer can see any of:
//
//   - the goroutine body selects or receives on a channel, or consults
//     ctx.Done()/ctx.Err() (it reacts to shutdown);
//   - the goroutine call passes a context.Context or a channel down
//     (the callee owns the stop path);
//   - the callee is a same-package function whose body satisfies the
//     first rule.
//
// Anything else needs a `//gcvet:leak-ok <reason>` waiver explaining
// why the goroutine is safe (e.g. it exits when its listener closes).
var GoLeak = &Analyzer{
	Name: "leak",
	Doc:  "goroutines in internal/ packages must have a visible stop path",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path()+"/", "internal/") {
		return
	}
	// Index same-package function bodies so `go p.loop()` can be
	// checked through the callee.
	bodies := make(map[string]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				bodies[fn.Name.Name] = fn.Body
			}
		}
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goHasStopPath(pass, g.Call, bodies) {
				pass.Reportf(g.Pos(),
					"goroutine has no visible stop path (select on ctx.Done()/a quit channel, or waive with //gcvet:leak-ok <reason>)")
			}
			return true
		})
	}
}

func goHasStopPath(pass *Pass, call *ast.CallExpr, bodies map[string]*ast.BlockStmt) bool {
	// A context or channel handed to the goroutine is a stop path —
	// either directly (`go loop(ctx)`) or captured by a literal that
	// passes it on (`go func() { loop(ctx) }()`).
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && (isContext(tv.Type) || isChan(tv.Type)) {
			return true
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return stopPathIn(pass, fun.Body, bodies, 2)
	case *ast.Ident:
		if body := bodies[fun.Name]; body != nil {
			return stopPathIn(pass, body, bodies, 1)
		}
	case *ast.SelectorExpr:
		// Method on a same-package receiver: check its body.
		if body := bodies[fun.Sel.Name]; body != nil {
			return stopPathIn(pass, body, bodies, 1)
		}
	}
	return false
}

// stopPathIn reports whether a function body visibly reacts to
// shutdown: a select statement, a channel receive, a ctx.Done/ctx.Err
// consult, or a call that hands a context/channel (or the work
// itself) to a same-package function that does. depth bounds the
// same-package call chase.
func stopPathIn(pass *Pass, body *ast.BlockStmt, bodies map[string]*ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch m := n.(type) {
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			// `for v := range ch` ends when the channel closes.
			if tv, ok := pass.Info.Types[m.X]; ok && isChan(tv.Type) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
				if recv, ok := pass.Info.Types[sel.X]; ok && isContext(recv.Type) &&
					(sel.Sel.Name == "Done" || sel.Sel.Name == "Err") {
					found = true
					return false
				}
			}
			// Handing a context or channel to any callee counts: the
			// callee owns the stop path.
			for _, arg := range m.Args {
				if tv, ok := pass.Info.Types[arg]; ok && (isContext(tv.Type) || isChan(tv.Type)) {
					found = true
					return false
				}
			}
			if depth > 0 {
				// Chase a same-package callee that the body delegates
				// the loop to.
				var name string
				switch fun := m.Fun.(type) {
				case *ast.Ident:
					name = fun.Name
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				}
				if callee := bodies[name]; callee != nil && callee != body {
					if stopPathIn(pass, callee, bodies, depth-1) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}
