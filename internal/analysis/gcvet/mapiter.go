package gcvet

import (
	"go/ast"
	"go/types"
)

// MapIter guards the packages whose output is golden-pinned or
// compared across runs (the cluster monitor's event stream, chaos
// campaign reports, fleet events, experiment tables): iterating a Go
// map yields a fresh random order every run, so a range-over-map that
// feeds an emitted slice or an encoder produces a different artifact
// each time unless something sorts in between.
//
// The rule: in a gated package, a `range` over a map value whose body
// appends to a variable declared outside the loop or calls an
// emit/encode sink is flagged — unless the enclosing function also
// sorts (any sort.*/slices.Sort* call), which is the sanctioned
// pattern: collect in arbitrary order, then impose one.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag range-over-map feeding emitted output without a sort in golden-pinned packages",
	Run:  runMapIter,
}

var mapIterGated = []string{
	"internal/cluster",
	"internal/cluster/chaos",
	"internal/fleet",
	"internal/experiments",
}

// mapIterSinks are call names that emit bytes or events downstream.
var mapIterSinks = map[string]bool{
	"Encode":      true,
	"Marshal":     true,
	"Write":       true,
	"WriteString": true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Printf":      true,
	"Println":     true,
	"emit":        true,
}

func runMapIter(pass *Pass) {
	gated := false
	for _, s := range mapIterGated {
		if pathHasSuffix(pass.Pkg.Path(), s) {
			gated = true
			break
		}
	}
	if !gated {
		return
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sorted := callsSort(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sorted || !feedsOutput(pass, fn, rng) {
					return true
				}
				pass.Reportf(rng.Pos(),
					"range over map feeds emitted output in nondeterministic order; sort before emitting")
				return true
			})
		}
	}
}

// callsSort reports whether the function body calls into sort or
// slices ordering helpers anywhere.
func callsSort(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch importedPkg(pass.Info, sel) {
		case "sort":
			found = true
		case "slices":
			if len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort" {
				found = true
			}
		}
		return !found
	})
	return found
}

// feedsOutput reports whether the range body's effects are observable
// in map order outside the function: it calls an emit/encode sink
// directly, or it accumulates into something that escapes — a field, a
// returned variable, or a variable later handed to a call. A loop that
// merely collects locals for same-function consumption (e.g. gathering
// connections to close) keeps its arbitrary order invisible and is
// fine.
func feedsOutput(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch m := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range m.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					if appendEscapes(pass, fn, call, rng) {
						found = true
						return false
					}
				}
			}
		case *ast.CallExpr:
			switch fun := m.Fun.(type) {
			case *ast.SelectorExpr:
				if mapIterSinks[fun.Sel.Name] {
					found = true
					return false
				}
			case *ast.Ident:
				if mapIterSinks[fun.Name] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// appendEscapes reports whether append's target is declared outside
// the range statement and its accumulated order can be observed
// outside the function.
func appendEscapes(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		// Appending to a field or index expression: visible to every
		// other method, escaping by nature.
		return true
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
		return false // loop-local accumulator
	}
	// The accumulator outlives the loop; does its order leave the
	// function? Returned, or passed to any call after the loop.
	escapes := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch m := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range m.Results {
				if usesObj(pass, res, obj) {
					escapes = true
					return false
				}
			}
		case *ast.CallExpr:
			if m.Pos() <= rng.End() {
				return true
			}
			for _, arg := range m.Args {
				if usesObj(pass, arg, obj) {
					escapes = true
					return false
				}
			}
		}
		return true
	})
	return escapes
}

// usesObj reports whether expr references obj.
func usesObj(pass *Pass, expr ast.Expr, obj types.Object) bool {
	uses := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			uses = true
			return false
		}
		return !uses
	})
	return uses
}
