// Package gcvet is the repository's own go/analysis suite: five
// analyzers that mechanically enforce the determinism, gas, and leak
// invariants the correctness story rests on. The golden-pinned monitor
// streams, the seeded chaos campaigns, and the deterministic loadgen
// are only reproducible if every simulation path draws randomness from
// a threaded seeded *rand.Rand, never consults the wall clock, meters
// its state-space loops with a *mc.Gas, stops every goroutine it
// starts, and names event kinds through the event registry. Those are
// global properties, but — like the paper's refinement proofs reduce
// to local per-transition obligations — each reduces to a locally
// checkable rule at a call site, which is exactly what a static
// analyzer can enforce.
//
// The suite runs as a `go vet -vettool` (see Main), so it plugs into
// `make vet` and CI with full type information from the build cache
// and no dependencies beyond the standard library.
//
// # Waivers
//
// Every analyzer honors a line waiver of the form
//
//	//gcvet:<analyzer>-ok <reason>
//
// (detrand-ok, gasloop-ok, mapiter-ok, leak-ok, eventkind-ok) placed
// on the flagged line or on the line directly above it. The reason is
// mandatory: a waiver without one is itself reported. Waivers are for
// code that is wall-clock or free-running *by design* (the TCP
// transport's dial backoff, latency measurement); simulation and
// model-checking paths are expected to fix, not waive.
package gcvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one registered check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the suite could migrate to the
// upstream framework without rewriting any analyzer.
type Analyzer struct {
	// Name is the analyzer's stable identifier; it is also its flag
	// name (-detrand, …) and the suffix of its waiver directive.
	Name string
	// Doc is a one-line description printed by -flags and usage.
	Doc string
	// Run inspects the package and reports findings via pass.Report.
	Run func(*Pass)
}

// Pass carries one package's worth of context to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds every parsed file of the package, test files
	// included; most analyzers iterate SourceFiles instead.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	report func(Diagnostic)

	waivers map[*ast.File]map[int]*waiver
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// waiver is one parsed //gcvet:<directive> comment.
type waiver struct {
	directive string
	reason    string
	pos       token.Pos
	used      bool
}

// waiverPrefix introduces every waiver comment.
const waiverPrefix = "//gcvet:"

// Reportf records a finding at pos unless a matching waiver covers
// that line. The waiver directive is "<analyzer-name>-ok".
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.waived(pos) {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// waived reports whether a `//gcvet:<analyzer>-ok reason` comment on
// the finding's line (or the line directly above) covers pos.
func (p *Pass) waived(pos token.Pos) bool {
	directive := p.Analyzer.Name + "-ok"
	file := p.fileOf(pos)
	if file == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		if w := p.waivers[file][l]; w != nil && w.directive == directive {
			w.used = true
			return true
		}
	}
	return false
}

// fileOf locates the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// SourceFiles returns the package's non-test files: the invariants
// bind production code; tests may use wall clocks and raw literals
// freely.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.FileStart).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// indexWaivers parses every //gcvet: comment in the pass's files into
// the per-file line index Reportf consults.
func (p *Pass) indexWaivers() {
	p.waivers = make(map[*ast.File]map[int]*waiver)
	for _, f := range p.Files {
		idx := make(map[int]*waiver)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				directive, reason, _ := strings.Cut(rest, " ")
				idx[p.Fset.Position(c.Pos()).Line] = &waiver{
					directive: directive,
					reason:    strings.TrimSpace(reason),
					pos:       c.Pos(),
				}
			}
		}
		p.waivers[f] = idx
	}
}

// runAnalyzers executes the given analyzers over one package and
// returns the findings sorted by position. Beyond the per-analyzer
// checks it enforces the waiver contract itself: every waiver comment
// must carry a reason, name a known directive, and actually cover a
// finding (a reasonless or unknown waiver is a finding of its own).
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	// Directive hygiene validates against the full registry, not the
	// analyzers selected for this run: `go vet -vettool=… -detrand`
	// must not report every //gcvet:leak-ok in the tree as unknown.
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name+"-ok"] = true
	}
	shared := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}
	shared.indexWaivers()
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			waivers:  shared.waivers,
		}
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		a.Run(pass)
	}
	// Waiver hygiene: reasons are mandatory and directives must be
	// spelled correctly — a typoed waiver silently waives nothing.
	for _, f := range files {
		name := fset.Position(f.FileStart).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, w := range shared.waivers[f] {
			switch {
			case !known[w.directive]:
				diags = append(diags, Diagnostic{Pos: w.pos, Analyzer: "gcvet",
					Message: fmt.Sprintf("unknown waiver directive %q", waiverPrefix+w.directive)})
			case w.reason == "":
				diags = append(diags, Diagnostic{Pos: w.pos, Analyzer: "gcvet",
					Message: fmt.Sprintf("waiver %s%s must carry a reason", waiverPrefix, w.directive)})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// All returns the full analyzer registry in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DetRand,
		GasLoop,
		MapIter,
		GoLeak,
		EventKind,
	}
}

// ---- shared type / AST helpers ----

// pathHasSuffix reports whether a package path is exactly suffix or
// ends in "/"+suffix — the analyzers match on path suffixes so their
// analysistest fixtures (testdata/src/repro/internal/…) gate the same
// way the real module does.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// importedPkg resolves sel's qualifier to an imported package path,
// returning "" when sel.X is not a package name.
func importedPkg(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// namedFromPkg reports whether t (after unwrapping pointers, slices,
// arrays, and maps) is a named type declared in a package whose path
// matches one of the given suffixes.
func namedFromPkg(t types.Type, suffixes ...string) bool {
	for depth := 0; t != nil && depth < 8; depth++ {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			obj := u.Obj()
			if obj == nil || obj.Pkg() == nil {
				return false
			}
			for _, s := range suffixes {
				if pathHasSuffix(obj.Pkg().Path(), s) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isChan reports whether t is (or points to) a channel type.
func isChan(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
