package gcvet

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file implements the (unpublished but stable) `go vet -vettool`
// command-line protocol on the standard library alone, so the suite
// needs no golang.org/x/tools dependency:
//
//   - `gcvet -flags` prints the supported analyzer flags as JSON;
//     cmd/go queries it to validate the vet command line.
//   - `gcvet [flags] <dir>/vet.cfg` analyzes one package described by
//     the JSON config cmd/go writes: file lists, the import map, and
//     export-data files for every dependency, which is all the type
//     checker needs.
//   - The config's VetxOutput names a facts file the tool must write;
//     gcvet's analyzers are fact-free, so it writes an empty one —
//     cmd/go then caches it and skips re-running gcvet on unchanged
//     dependencies (cmd/go runs the tool over every transitive
//     dependency in VetxOnly mode purely to collect facts, so the
//     fast path matters).
//
// As a convenience, invoking gcvet with package patterns instead of a
// .cfg re-executes itself through `go vet -vettool` — `gcvet ./...`
// just works.

// Config mirrors cmd/go/internal/work.vetConfig, the JSON shape of
// the vet.cfg file (unknown fields are ignored).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the gcvet entry point: flag handshake, then either one
// vet.cfg unit or a re-exec over package patterns.
func Main(analyzers []*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("gcvet: ")

	fs := flag.NewFlagSet("gcvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gcvet [-<analyzer>] <packages>   (or: go vet -vettool=$(which gcvet) <packages>)\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  -%-10s %s\n", a.Name, a.Doc)
		}
	}
	selected := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		selected[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go handshake)")
	version := fs.String("V", "", "print version and exit (cmd/go handshake)")
	_ = fs.Parse(os.Args[1:])

	if *version != "" {
		// cmd/go hashes this line into the vet action cache key. Report
		// a content ID derived from our own binary so that rebuilding
		// gcvet with different analyzers invalidates cached results.
		fmt.Printf("%s version devel buildID=%s\n", filepath.Base(os.Args[0]), selfContentID())
		os.Exit(0)
	}
	if *printFlags {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		os.Exit(0)
	}

	// If some analyzer flags are explicitly true, run exactly those;
	// otherwise run everything (the vet convention).
	run := analyzers
	var chosen []*Analyzer
	for _, a := range analyzers {
		if *selected[a.Name] {
			chosen = append(chosen, a)
		}
	}
	if len(chosen) > 0 {
		run = chosen
	}

	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], run))
	}
	os.Exit(reExec(args))
}

// selfContentID hashes the running executable; failures degrade to a
// constant (vet results then cache across gcvet rebuilds, nothing
// worse).
func selfContentID() string {
	self, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(self)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// reExec runs `go vet -vettool=<self> <patterns>` so gcvet can be
// invoked directly on package patterns.
func reExec(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		log.Printf("cannot locate own executable: %v", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Print(err)
		return 2
	}
	return 0
}

// runUnit analyzes the single package a vet.cfg describes. Exit code
// 0 means clean, 2 means findings or failure (cmd/go only
// distinguishes zero from non-zero).
func runUnit(cfgFile string, analyzers []*Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		log.Print(err)
		return 2
	}
	// Dependencies are visited only to produce facts; gcvet has none,
	// so write the (empty) facts file and let cmd/go cache the no-op.
	if cfg.VetxOnly {
		if err := writeVetx(cfg); err != nil {
			log.Print(err)
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				_ = writeVetx(cfg)
				return 0
			}
			log.Print(err)
			return 2
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, cfg, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			_ = writeVetx(cfg)
			return 0
		}
		log.Printf("typechecking %s: %v", cfg.ImportPath, err)
		return 2
	}

	diags := runAnalyzers(analyzers, fset, files, pkg, info)
	if err := writeVetx(cfg); err != nil {
		log.Print(err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2
}

// typecheck resolves the package's types against the export data
// cmd/go already built for every dependency.
func typecheck(fset *token.FileSet, cfg *Config, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: strings.TrimSuffix(cfg.GoVersion, " +bla"), // e.g. "go1.22"
	}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// NewInfo allocates the full set of types.Info maps the analyzers
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func readConfig(name string) (*Config, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", name, err)
	}
	return cfg, nil
}

// writeVetx writes the (empty) facts file cmd/go expects so the
// result is cacheable.
func writeVetx(cfg *Config) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte("gcvet.factless.v1\n"), 0o666)
}
