// Package worker is a goleak fixture: every goroutine needs a visible
// stop path.
package worker

import "context"

var sink int

func work() { sink++ }

// Bad spins forever with no way to stop it.
func Bad() {
	go func() { // want `goroutine has no visible stop path`
		for {
			work()
		}
	}()
}

// GoodCtx reacts to cancellation.
func GoodCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// GoodChanArg hands the callee its quit channel.
func GoodChanArg(stop chan struct{}) {
	go loop(stop)
}

func loop(stop chan struct{}) {
	<-stop
}

// W owns its quit channel; Start's goroutine is checked through the
// same-package callee body.
type W struct {
	quit chan struct{}
}

// Start runs the worker loop.
func (w *W) Start() {
	go w.run()
}

func (w *W) run() {
	for {
		select {
		case <-w.quit:
			return
		default:
			work()
		}
	}
}

// Waived shows the reasoned escape hatch.
func Waived() {
	//gcvet:leak-ok fixture goroutine lives for the process lifetime by design
	go func() {
		for {
			work()
		}
	}()
}

// Compactor mirrors the journal writer/compactor shape: one goroutine
// multiplexing a work channel, a compaction-request channel, and a stop
// channel. The select is its stop path.
type Compactor struct {
	workc    chan int
	compactc chan chan struct{}
	stop     chan struct{}
}

// Start runs the compactor loop; the stop channel in the select keeps
// the analyzer satisfied through the same-package callee body.
func (c *Compactor) Start() {
	go c.loop()
}

func (c *Compactor) loop() {
	for {
		select {
		case <-c.workc:
			work()
		case ack := <-c.compactc:
			work() // compaction pass
			if ack != nil {
				close(ack)
			}
		case <-c.stop:
			return
		}
	}
}

// BadCompactorPoll is the shape the check exists to catch: a retention
// loop that polls for compaction work forever with no quit channel —
// every restart cycle leaks one of these.
func BadCompactorPoll() {
	go func() { // want `goroutine has no visible stop path`
		for {
			work() // poll usage, maybe compact — but never stop
		}
	}()
}

// CheckpointDriver hands its goroutine both the poke channel it drains
// and the stop channel, like the service retention loop handing
// coverage pokes to the journal: the channel arguments are the visible
// stop path.
func CheckpointDriver(poke chan struct{}, stop chan struct{}) {
	go drainCheckpoints(poke, stop)
}

func drainCheckpoints(poke chan struct{}, stop chan struct{}) {
	for {
		select {
		case <-poke:
			work()
		case <-stop:
			return
		}
	}
}
