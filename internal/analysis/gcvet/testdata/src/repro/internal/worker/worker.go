// Package worker is a goleak fixture: every goroutine needs a visible
// stop path.
package worker

import "context"

var sink int

func work() { sink++ }

// Bad spins forever with no way to stop it.
func Bad() {
	go func() { // want `goroutine has no visible stop path`
		for {
			work()
		}
	}()
}

// GoodCtx reacts to cancellation.
func GoodCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// GoodChanArg hands the callee its quit channel.
func GoodChanArg(stop chan struct{}) {
	go loop(stop)
}

func loop(stop chan struct{}) {
	<-stop
}

// W owns its quit channel; Start's goroutine is checked through the
// same-package callee body.
type W struct {
	quit chan struct{}
}

// Start runs the worker loop.
func (w *W) Start() {
	go w.run()
}

func (w *W) run() {
	for {
		select {
		case <-w.quit:
			return
		default:
			work()
		}
	}
}

// Waived shows the reasoned escape hatch.
func Waived() {
	//gcvet:leak-ok fixture goroutine lives for the process lifetime by design
	go func() {
		for {
			work()
		}
	}()
}
