// Package system is a minimal stand-in for the repo's transition
// system, giving gasloop fixtures a state-space type to touch.
package system

// System is a finite transition system.
type System struct {
	succ [][]int
}

// NumStates returns the number of states.
func (s *System) NumStates() int { return len(s.succ) }

// Succ returns the successors of state i.
func (s *System) Succ(i int) []int { return s.succ[i] }
