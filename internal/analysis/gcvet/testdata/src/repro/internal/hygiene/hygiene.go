// Package hygiene is a fixture for the waiver contract itself:
// reasonless waivers and typoed directives are findings.
package hygiene

import "time"

// Stamp carries a waiver with no reason.
func Stamp() time.Time {
	//gcvet:detrand-ok
	return time.Now()
}

// Other carries a typoed directive that waives nothing.
//
//gcvet:detrnd-ok backoff is wall-clock by design
func Other() {}
