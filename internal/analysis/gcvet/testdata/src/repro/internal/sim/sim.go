// Package sim is a detrand fixture: a gated deterministic package.
package sim

import (
	"math/rand"
	"time"
)

// Bad drains the global source and reads the wall clock.
func Bad(n int) int {
	start := time.Now()       // want `wall clock time\.Now in deterministic package`
	_ = time.Since(start)     // want `wall clock time\.Since in deterministic package`
	if rand.Float64() < 0.5 { // want `global rand\.Float64 in deterministic package`
		return rand.Intn(n) // want `global rand\.Intn in deterministic package`
	}
	return 0
}

// Good threads a seeded *rand.Rand: the sanctioned pattern.
func Good(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Waived shows the escape hatch for a reasoned exception.
func Waived() time.Time {
	return time.Now() //gcvet:detrand-ok fixture exercising the waiver path
}
