// Package bitset is a minimal stand-in for the repo's bitset, giving
// gasloop fixtures a state-space type to touch.
package bitset

// Set is a fixed-size bit set.
type Set struct {
	bits []uint64
}

// New returns an empty set for n elements.
func New(n int) *Set { return &Set{bits: make([]uint64, (n+63)/64)} }

// Has reports membership.
func (s *Set) Has(i int) bool { return s.bits[i/64]&(1<<uint(i%64)) != 0 }
