// Package service is a detrand fixture: the allowlisted service layer
// measures real latency, so nothing here is flagged.
package service

import "time"

// Latency measures real request latency.
func Latency(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp timestamps a response.
func Stamp() time.Time {
	return time.Now()
}
