// Package chaos is a mapiter fixture: a golden-pinned package where
// map iteration order must not reach emitted output.
package chaos

import (
	"fmt"
	"io"
	"sort"
)

// BadKeys returns map keys in iteration order: a different artifact
// every run.
func BadKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map feeds emitted output`
		out = append(out, k)
	}
	return out
}

// BadEmit streams map entries straight into a writer.
func BadEmit(w io.Writer, m map[string]int) {
	for k, v := range m { // want `range over map feeds emitted output`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// GoodKeys collects in arbitrary order, then imposes one: the
// sanctioned pattern.
func GoodKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CloseAll consumes the collected values inside the same function;
// the arbitrary order is unobservable.
func CloseAll(conns map[int]io.Closer) {
	var cs []io.Closer
	for _, c := range conns {
		cs = append(cs, c)
	}
	for _, c := range cs {
		_ = c.Close()
	}
}
