// Package cluster is an eventkind fixture: event kinds must come from
// the registry constants, never inline literals.
package cluster

// Event mirrors the runtime monitor's event.
type Event struct {
	Step int
	Kind string
}

// Registry constants.
const (
	KindStart = "start"
	KindMove  = "move"
)

// Monitor collects events.
type Monitor struct {
	events []Event
}

func (m *Monitor) emit(kind string) {
	m.events = append(m.events, Event{Kind: kind})
}

// Bad mints kinds from raw literals.
func Bad(m *Monitor) {
	m.events = append(m.events, Event{Step: 1, Kind: "start"}) // want `inline event kind "start"`
	m.emit("move")                                             // want `inline event kind "move" passed to emit`
}

// BadCompare matches a kind against a raw literal.
func BadCompare(ev Event) bool {
	return ev.Kind == "move" // want `comparing \.Kind against inline literal "move"`
}

// BadSwitch switches on raw literals.
func BadSwitch(ev Event) int {
	switch ev.Kind {
	case "start": // want `switch on \.Kind with inline literal "start"`
		return 1
	}
	return 0
}

// Good uses the registry throughout.
func Good(m *Monitor) {
	m.events = append(m.events, Event{Step: 1, Kind: KindStart})
	m.emit(KindMove)
}

// GoodCompare matches against the constant.
func GoodCompare(ev Event) bool {
	return ev.Kind == KindMove
}
