// Package fleet is an eventkind fixture for the fleet's failure-domain
// events: breaker transitions, quarantine, and gray faults must use the
// registry constants, never inline literals.
package fleet

// Event mirrors the fleet monitor's event.
type Event struct {
	Seq  int
	Kind string
}

// Registry constants, mirroring internal/fleet/events.go.
const (
	KindBreakerOpen = "breaker-open"
	KindQuarantined = "quarantined"
	KindParoled     = "paroled"
	KindSlowPeer    = "slow-peer"
)

// Monitor collects events.
type Monitor struct {
	events []Event
}

func (m *Monitor) emit(kind string) {
	m.events = append(m.events, Event{Kind: kind})
}

// Bad mints failure-domain kinds from raw literals.
func Bad(m *Monitor) {
	m.events = append(m.events, Event{Seq: 1, Kind: "breaker-open"}) // want `inline event kind "breaker-open"`
	m.emit("quarantined")                                            // want `inline event kind "quarantined" passed to emit`
}

// BadCompare matches a kind against a raw literal.
func BadCompare(ev Event) bool {
	return ev.Kind == "paroled" // want `comparing \.Kind against inline literal "paroled"`
}

// BadSwitch switches on raw literals.
func BadSwitch(ev Event) int {
	switch ev.Kind {
	case "slow-peer": // want `switch on \.Kind with inline literal "slow-peer"`
		return 1
	}
	return 0
}

// Good uses the registry throughout.
func Good(m *Monitor) {
	m.events = append(m.events, Event{Seq: 1, Kind: KindBreakerOpen})
	m.emit(KindQuarantined)
}

// GoodCompare matches against the constant.
func GoodCompare(ev Event) bool {
	return ev.Kind == KindParoled
}

// GoodSwitch switches on the constants.
func GoodSwitch(ev Event) int {
	switch ev.Kind {
	case KindSlowPeer:
		return 1
	}
	return 0
}
