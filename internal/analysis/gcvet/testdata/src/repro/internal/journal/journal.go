// Package journal is an eventkind fixture: journal event kinds must
// come from the registry constants, never inline literals — both in
// Event composite literals and as Append/AppendAsync arguments.
package journal

// Event mirrors the runtime journal's event.
type Event struct {
	Seq  uint64
	Kind string
	Data []byte
}

// Registry constants.
const (
	KindRequest = "journal-request"
	KindVerdict = "journal-verdict"
)

// Journal mirrors the runtime journal's append API.
type Journal struct {
	events []Event
}

func (j *Journal) Append(kind string, data []byte) (uint64, error) {
	j.events = append(j.events, Event{Seq: uint64(len(j.events) + 1), Kind: kind, Data: data})
	return uint64(len(j.events)), nil
}

func (j *Journal) AppendAsync(kind string, data []byte) {
	_, _ = j.Append(kind, data)
}

// Bad mints kinds from raw literals.
func Bad(j *Journal) {
	_, _ = j.Append("journal-request", nil) // want `inline event kind "journal-request" passed to Append`
	j.AppendAsync("journal-verdict", nil)   // want `inline event kind "journal-verdict" passed to AppendAsync`
}

// BadLit builds an event from a raw literal kind.
func BadLit() Event {
	return Event{Seq: 1, Kind: "journal-request"} // want `inline event kind "journal-request"`
}

// BadCompare matches a kind against a raw literal.
func BadCompare(ev Event) bool {
	return ev.Kind == "journal-verdict" // want `comparing \.Kind against inline literal "journal-verdict"`
}

// Good uses the registry throughout.
func Good(j *Journal) {
	_, _ = j.Append(KindRequest, nil)
	j.AppendAsync(KindVerdict, nil)
}

// GoodSwitch dispatches on the registry constants.
func GoodSwitch(ev Event) int {
	switch ev.Kind {
	case KindRequest:
		return 1
	case KindVerdict:
		return 2
	}
	return 0
}
