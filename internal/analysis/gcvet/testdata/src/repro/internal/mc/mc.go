// Package mc is a gasloop fixture: a gated package with a Gas meter,
// covering flagged and clean shapes of exported state-space sweeps.
package mc

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/system"
)

// Gas mirrors the real meter's shape.
type Gas struct{}

// Tick charges n steps.
func (g *Gas) Tick(n int) error { return nil }

// BadSweep loops over state space with no way to bound it.
func BadSweep(sys *system.System) int { // want `exported BadSweep contains a state-space loop but accepts no \*mc\.Gas`
	total := 0
	for s := 0; s < sys.NumStates(); s++ {
		total += len(sys.Succ(s))
	}
	return total
}

// BadRegion sweeps a bitset region without a meter.
func BadRegion(region *bitset.Set) int { // want `exported BadRegion contains a state-space loop but accepts no \*mc\.Gas`
	n := 0
	for i := 0; i < 64; i++ {
		if region.Has(i) {
			n++
		}
	}
	return n
}

// UnchargedSweep takes the meter but forgets to charge it.
func UnchargedSweep(g *Gas, sys *system.System) int {
	total := 0
	for s := 0; s < sys.NumStates(); s++ { // want `state-space loop in exported UnchargedSweep does not charge gas`
		total += len(sys.Succ(s))
	}
	return total
}

// SweepGas is the sanctioned shape: meter in, ticks inside the loop.
func SweepGas(g *Gas, sys *system.System) (int, error) {
	total := 0
	for s := 0; s < sys.NumStates(); s++ {
		if err := g.Tick(1); err != nil {
			return 0, err
		}
		total += len(sys.Succ(s))
	}
	return total, nil
}

// Sweep is the plain wrapper: no loops of its own, delegates with an
// unlimited meter.
func Sweep(sys *system.System) int {
	n, _ := SweepGas(nil, sys)
	return n
}

// SweepCtx shows the context-based alternative.
func SweepCtx(ctx context.Context, sys *system.System) int {
	total := 0
	for s := 0; s < sys.NumStates(); s++ {
		if ctx.Err() != nil {
			return total
		}
		total += len(sys.Succ(s))
	}
	return total
}

// CountPairs loops over plain ints: not a state-space loop.
func CountPairs(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// smallHelper is unexported: callers reach it through a metered
// exported wrapper, so it is out of scope.
func smallHelper(sys *system.System) int {
	total := 0
	for s := 0; s < sys.NumStates(); s++ {
		total++
	}
	return total
}
