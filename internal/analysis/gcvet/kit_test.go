package gcvet

// An offline analysistest clone: fixture packages live under
// testdata/src/<importpath>/ and annotate the lines they expect
// findings on with `// want "regexp"` comments (several regexps per
// line allowed). Stdlib imports are type-checked from GOROOT source
// (importer "source"), so the kit needs neither network nor x/tools;
// fixture-to-fixture imports (the fake repro/internal/system, …) are
// resolved inside testdata recursively.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture analyzes testdata/src/<pkgpath> with the given analyzers
// and compares the findings against the fixture's want comments.
func runFixture(t *testing.T, pkgpath string, analyzers ...*Analyzer) {
	t.Helper()
	ld := newLoader(t)
	files, pkg, info := ld.target(pkgpath)

	diags := runAnalyzers(analyzers, ld.fset, files, pkg, info)

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range files {
		indexWants(t, ld.fset, f, func(file string, line int, re *regexp.Regexp) {
			key := fmt.Sprintf("%s:%d", file, line)
			wants[key] = append(wants[key], &want{re: re})
		})
	}

	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding [%s]: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected a finding matching %q, got none", key, w.re)
			}
		}
	}
}

// wantRE pulls the quoted regexps out of a want comment; both
// double-quoted and backtick-quoted forms are accepted.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func indexWants(t *testing.T, fset *token.FileSet, f *ast.File, add func(file string, line int, re *regexp.Regexp)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			ms := wantRE.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
			}
			for _, m := range ms {
				expr := m[1]
				if expr == "" {
					expr = m[2]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
				}
				add(filepath.Base(pos.Filename), pos.Line, re)
			}
		}
	}
}

// loader type-checks fixture packages, resolving imports inside
// testdata first and falling back to GOROOT source for the stdlib.
type loader struct {
	t     *testing.T
	fset  *token.FileSet
	root  string // testdata/src
	std   types.Importer
	cache map[string]*fixture
}

type fixture struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newLoader(t *testing.T) *loader {
	t.Helper()
	fset := token.NewFileSet()
	return &loader{
		t:     t,
		fset:  fset,
		root:  filepath.Join("testdata", "src"),
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*fixture),
	}
}

func (ld *loader) target(pkgpath string) ([]*ast.File, *types.Package, *types.Info) {
	fx := ld.load(pkgpath)
	return fx.files, fx.pkg, fx.info
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil {
		return ld.load(path).pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(pkgpath string) *fixture {
	ld.t.Helper()
	if fx, ok := ld.cache[pkgpath]; ok {
		return fx
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("fixture %s: %v", pkgpath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.t.Fatalf("fixture %s: %v", pkgpath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.t.Fatalf("fixture %s: no Go files in %s", pkgpath, dir)
	}
	info := NewInfo()
	tc := &types.Config{Importer: ld}
	pkg, err := tc.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("fixture %s: typecheck: %v", pkgpath, err)
	}
	fx := &fixture{files: files, pkg: pkg, info: info}
	ld.cache[pkgpath] = fx
	return fx
}
