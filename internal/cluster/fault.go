package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/sim"
)

// FaultKind enumerates the runtime's fault model — the paper's
// transient faults made concrete for a message-passing cluster.
type FaultKind string

const (
	// FaultCorrupt overwrites a node's register with an arbitrary
	// in-domain value (transient state corruption).
	FaultCorrupt FaultKind = "corrupt"
	// FaultDrop discards the next Count messages on one link.
	FaultDrop FaultKind = "drop"
	// FaultDup duplicates the next Count messages on one link.
	FaultDup FaultKind = "dup"
	// FaultDelay holds the next message on one link for Count steps
	// before releasing it (possibly after newer state has overtaken it).
	FaultDelay FaultKind = "delay"
	// FaultStall removes a node from scheduling for Count steps.
	FaultStall FaultKind = "stall"
	// FaultRestart resets a node: register to zero, neighbor views
	// forgotten, probes sent to refill them.
	FaultRestart FaultKind = "restart"
	// FaultCrash kills a node's process: it stops moving and loses its
	// in-memory state. The supervisor restarts it after an exponential
	// backoff (with seeded jitter), recovering the register from the
	// snapshot store when the snapshot validates and from arbitrary
	// state when it does not — the paper's in-model perturbation.
	FaultCrash FaultKind = "crash"
	// FaultPartition severs every link between node sets A and B for
	// Count steps: messages crossing the cut are dropped in both
	// directions. When the partition heals, the engine triggers an
	// anti-entropy refresh so stale neighbor views cannot wedge the ring.
	FaultPartition FaultKind = "partition"
	// FaultIsolate severs every link touching one node for Count steps —
	// the degenerate partition {Node} | rest.
	FaultIsolate FaultKind = "isolate"

	// The gray-failure kinds below target live checkd fleets only
	// (chaos.Template.FleetSchedule); the simulated cluster engine and
	// /v1/chaos reject them — a stepped ring model has no data plane
	// to degrade separately from its control plane.

	// FaultSlowPeer injects per-operation latency into one replica's
	// data-plane RPCs (forwards, anti-entropy) while its heartbeats
	// stay fast — Huang et al.'s gray failure: the failure detector
	// stays green while the work drags.
	FaultSlowPeer FaultKind = "slow-peer"
	// FaultAsymPartition severs only the A→B direction of a cut: A
	// cannot reach B, but B still reaches A, so the two sides' views
	// of each other diverge.
	FaultAsymPartition FaultKind = "asym-partition"
	// FaultGarbageReply makes one replica answer data-plane RPCs with
	// well-framed but semantically hostile replies (out-of-range
	// status, negative entry counts, regressing cursors).
	FaultGarbageReply FaultKind = "garbage-reply"
)

// Fault is one scheduled fault. Step is the scheduler step (stepped
// engine: tick; free-running engine: global move count) at which it
// fires or arms.
type Fault struct {
	Kind FaultKind `json:"kind"`
	Step int       `json:"step"`
	// Node targets corrupt | stall | restart.
	Node int `json:"node,omitempty"`
	// Val is the value corrupt writes; -1 means a seeded-random
	// in-domain value.
	Val int `json:"val,omitempty"`
	// From and To name the link for drop | dup | delay.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Count is the number of messages affected (drop, dup), or the
	// number of steps (stall, delay hold time, partition and isolate
	// duration).
	Count int `json:"count,omitempty"`
	// A and B name the two node sets a partition severs.
	A []int `json:"a,omitempty"`
	B []int `json:"b,omitempty"`
}

// nodeList renders a partition side in schedule syntax ("0+1+2").
func nodeList(nodes []int) string {
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, "+")
}

// String renders the fault in schedule syntax.
func (f Fault) String() string {
	switch f.Kind {
	case FaultCorrupt:
		return fmt.Sprintf("corrupt@%d:node=%d,val=%d", f.Step, f.Node, f.Val)
	case FaultStall:
		return fmt.Sprintf("stall@%d:node=%d,count=%d", f.Step, f.Node, f.Count)
	case FaultRestart:
		return fmt.Sprintf("restart@%d:node=%d", f.Step, f.Node)
	case FaultCrash:
		return fmt.Sprintf("crash@%d:node=%d", f.Step, f.Node)
	case FaultPartition:
		return fmt.Sprintf("partition@%d:cut=%s|%s,count=%d", f.Step, nodeList(f.A), nodeList(f.B), f.Count)
	case FaultIsolate:
		return fmt.Sprintf("isolate@%d:node=%d,count=%d", f.Step, f.Node, f.Count)
	default:
		return fmt.Sprintf("%s@%d:link=%d>%d,count=%d", f.Kind, f.Step, f.From, f.To, f.Count)
	}
}

// ParseSchedule parses the CLI/service fault-schedule syntax: a
// semicolon-separated list of `kind@step:key=val,...` entries, e.g.
//
//	corrupt@120:node=2,val=1
//	drop@50:link=1>2,count=3
//	delay@60:link=2>3,count=10
//	stall@100:node=3,count=40
//	restart@150:node=4
//	partition@200:cut=0+1|2+3+4,count=50
//	isolate@260:node=2,count=30
//
// corrupt without val corrupts to a seeded-random in-domain value.
// The result is sorted by Step (stable, preserving entry order within
// a step).
func ParseSchedule(s string) ([]Fault, error) {
	var out []Fault
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, params, _ := strings.Cut(part, ":")
		kindStr, stepStr, ok := strings.Cut(head, "@")
		if !ok {
			return nil, fmt.Errorf("cluster: fault %q: want kind@step:key=val,...", part)
		}
		step, err := strconv.Atoi(stepStr)
		if err != nil || step < 0 {
			return nil, fmt.Errorf("cluster: fault %q: bad step %q", part, stepStr)
		}
		f := Fault{Kind: FaultKind(kindStr), Step: step, Node: -1, Val: -1, From: -1, To: -1, Count: 1}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("cluster: fault %q: bad parameter %q", part, kv)
				}
				switch key {
				case "node", "val", "count":
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, fmt.Errorf("cluster: fault %q: %s=%q is not an integer", part, key, val)
					}
					switch key {
					case "node":
						f.Node = n
					case "val":
						f.Val = n
					case "count":
						f.Count = n
					}
				case "link":
					fromStr, toStr, ok := strings.Cut(val, ">")
					if !ok {
						return nil, fmt.Errorf("cluster: fault %q: link=%q wants from>to", part, val)
					}
					from, err1 := strconv.Atoi(fromStr)
					to, err2 := strconv.Atoi(toStr)
					if err1 != nil || err2 != nil {
						return nil, fmt.Errorf("cluster: fault %q: link=%q wants integer endpoints", part, val)
					}
					f.From, f.To = from, to
				case "cut":
					aStr, bStr, ok := strings.Cut(val, "|")
					if !ok {
						return nil, fmt.Errorf("cluster: fault %q: cut=%q wants a|b node sets", part, val)
					}
					a, err1 := parseNodeList(aStr)
					b, err2 := parseNodeList(bStr)
					if err1 != nil || err2 != nil {
						return nil, fmt.Errorf("cluster: fault %q: cut=%q wants +-separated integer node sets", part, val)
					}
					f.A, f.B = a, b
				default:
					return nil, fmt.Errorf("cluster: fault %q: unknown parameter %q", part, key)
				}
			}
		}
		switch f.Kind {
		case FaultCorrupt, FaultStall, FaultRestart, FaultCrash, FaultIsolate:
			if f.Node < 0 {
				return nil, fmt.Errorf("cluster: fault %q: %s needs node=<i>", part, f.Kind)
			}
		case FaultDrop, FaultDup, FaultDelay:
			if f.From < 0 || f.To < 0 {
				return nil, fmt.Errorf("cluster: fault %q: %s needs link=<from>><to>", part, f.Kind)
			}
		case FaultPartition:
			if len(f.A) == 0 || len(f.B) == 0 {
				return nil, fmt.Errorf("cluster: fault %q: partition needs cut=<a>|<b>", part)
			}
		default:
			return nil, fmt.Errorf("cluster: fault %q: unknown kind %q (want corrupt|drop|dup|delay|stall|restart|crash|partition|isolate)", part, kindStr)
		}
		if f.Count < 1 {
			return nil, fmt.Errorf("cluster: fault %q: count must be ≥ 1", part)
		}
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out, nil
}

// parseNodeList parses one side of a partition cut ("0+1+2").
func parseNodeList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, "+") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// ValidateSchedule checks every fault's targets against a protocol:
// node indices in range, corrupt values in the target's domain.
func ValidateSchedule(p sim.Protocol, schedule []Fault) error {
	procs := p.Procs()
	for _, f := range schedule {
		switch f.Kind {
		case FaultCorrupt, FaultStall, FaultRestart, FaultCrash:
			if f.Node < 0 || f.Node >= procs {
				return fmt.Errorf("cluster: %s: node %d outside [0,%d)", f, f.Node, procs)
			}
			if f.Kind == FaultCorrupt && f.Val >= p.Domain(f.Node) {
				return fmt.Errorf("cluster: %s: value outside node %d's domain [0,%d)", f, f.Node, p.Domain(f.Node))
			}
		case FaultDrop, FaultDup, FaultDelay:
			if f.From < 0 || f.From >= procs || f.To < 0 || f.To >= procs {
				return fmt.Errorf("cluster: %s: link outside [0,%d)", f, procs)
			}
		case FaultIsolate:
			if f.Node < 0 || f.Node >= procs {
				return fmt.Errorf("cluster: %s: node %d outside [0,%d)", f, f.Node, procs)
			}
		case FaultPartition:
			if len(f.A) == 0 || len(f.B) == 0 {
				return fmt.Errorf("cluster: %s: both partition sides must be non-empty", f)
			}
			seen := make(map[int]string, len(f.A)+len(f.B))
			for side, nodes := range map[string][]int{"a": f.A, "b": f.B} {
				for _, n := range nodes {
					if n < 0 || n >= procs {
						return fmt.Errorf("cluster: %s: node %d outside [0,%d)", f, n, procs)
					}
					if prev, dup := seen[n]; dup {
						if prev != side {
							return fmt.Errorf("cluster: %s: node %d appears on both sides of the cut", f, n)
						}
						return fmt.Errorf("cluster: %s: node %d repeated in the cut", f, n)
					}
					seen[n] = side
				}
			}
		}
	}
	return nil
}

// LinkStats counts message-level activity on one directed link,
// including what the fault layer did to it.
type LinkStats struct {
	From       int `json:"from"`
	To         int `json:"to"`
	Sent       int `json:"sent"`
	Dropped    int `json:"dropped,omitempty"`
	Duplicated int `json:"duplicated,omitempty"`
	Delayed    int `json:"delayed,omitempty"`
}

// parked is a delayed message awaiting release.
type parked struct {
	m         Message
	releaseAt int
}

// cut is one active partition or isolation: messages crossing it are
// dropped until the injector's step clock reaches until.
type cut struct {
	f     Fault
	until int
	a, b  map[int]bool // partition sides; unused for isolate
}

// blocks reports whether a message from→to crosses the cut.
func (c *cut) blocks(from, to int) bool {
	if c.f.Kind == FaultIsolate {
		return from == c.f.Node || to == c.f.Node
	}
	return (c.a[from] && c.b[to]) || (c.b[from] && c.a[to])
}

func toSet(nodes []int) map[int]bool {
	s := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		s[n] = true
	}
	return s
}

// injector sits between the nodes and the real transport, applying
// armed link faults to every Send. It is itself a Transport, so nodes
// are oblivious to it. Node-level faults (corrupt, stall, restart) are
// applied by the engines, not here — they are state faults, not
// communication faults.
type injector struct {
	inner Transport

	mu     sync.Mutex
	step   int
	armed  []*Fault // link faults with remaining Count
	cuts   []*cut   // active partitions / isolations
	parked []parked
	links  map[[2]int]*LinkStats
}

func newInjector(inner Transport) *injector {
	return &injector{inner: inner, links: make(map[[2]int]*LinkStats)}
}

// Name implements Transport.
func (in *injector) Name() string { return in.inner.Name() }

// Procs implements Transport.
func (in *injector) Procs() int { return in.inner.Procs() }

// Recv implements Transport.
func (in *injector) Recv(node int) <-chan Message { return in.inner.Recv(node) }

// Close implements Transport.
func (in *injector) Close() error { return in.inner.Close() }

// arm activates one link fault (or partition/isolation cut). Engines
// call it when the schedule reaches the fault's step; cuts stay active
// for f.Count steps of the injector's clock.
func (in *injector) arm(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	switch f.Kind {
	case FaultPartition, FaultIsolate:
		c := &cut{f: f, until: in.step + f.Count}
		if f.Kind == FaultPartition {
			c.a, c.b = toSet(f.A), toSet(f.B)
		}
		in.cuts = append(in.cuts, c)
	default:
		cp := f
		in.armed = append(in.armed, &cp)
	}
}

// advance tells the injector the current scheduler step, expires healed
// cuts, and releases any delayed messages that have served their hold
// time.
func (in *injector) advance(step int) {
	in.mu.Lock()
	var due []Message
	in.step = step
	alive := in.cuts[:0]
	for _, c := range in.cuts {
		if c.until > step {
			alive = append(alive, c)
		}
	}
	in.cuts = alive
	rest := in.parked[:0]
	for _, p := range in.parked {
		if p.releaseAt <= step {
			due = append(due, p.m)
		} else {
			rest = append(rest, p)
		}
	}
	in.parked = rest
	in.mu.Unlock()
	// Deliver outside the lock: inner.Send may block briefly (TCP).
	for _, m := range due {
		_ = in.inner.Send(m)
	}
}

func (in *injector) statsFor(from, to int) *LinkStats {
	key := [2]int{from, to}
	st := in.links[key]
	if st == nil {
		st = &LinkStats{From: from, To: to}
		in.links[key] = st
	}
	return st
}

// Send implements Transport, applying active cuts first and then the
// first matching armed link fault.
func (in *injector) Send(m Message) error {
	in.mu.Lock()
	st := in.statsFor(m.From, m.To)
	st.Sent++
	for _, c := range in.cuts {
		if in.step < c.until && c.blocks(m.From, m.To) {
			st.Dropped++
			in.mu.Unlock()
			return nil
		}
	}
	var action FaultKind
	var hold int
	for i, f := range in.armed {
		if f.From != m.From || f.To != m.To || f.Count <= 0 {
			continue
		}
		action = f.Kind
		if f.Kind == FaultDelay {
			// Count is the hold time; a delay fault affects one message.
			hold = f.Count
			in.armed = append(in.armed[:i], in.armed[i+1:]...)
		} else {
			f.Count--
			if f.Count == 0 {
				in.armed = append(in.armed[:i], in.armed[i+1:]...)
			}
		}
		break
	}
	switch action {
	case FaultDrop:
		st.Dropped++
		in.mu.Unlock()
		return nil
	case FaultDelay:
		st.Delayed++
		in.parked = append(in.parked, parked{m: m, releaseAt: in.step + hold})
		in.mu.Unlock()
		return nil
	case FaultDup:
		st.Duplicated++
		in.mu.Unlock()
		if err := in.inner.Send(m); err != nil {
			return err
		}
		return in.inner.Send(m)
	default:
		in.mu.Unlock()
		return in.inner.Send(m)
	}
}

// linkStats snapshots the per-link counters, sorted by (From, To) for
// deterministic reports.
func (in *injector) linkStats() []LinkStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]LinkStats, 0, len(in.links))
	for _, st := range in.links {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
