package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// FuzzFrameDecode throws arbitrary byte streams at ReadFrame: whatever
// the wire carries, the decoder must either produce valid JSON it
// fully consumed or fail — never panic, never allocate beyond the
// declared bound, and never hand back a partially-filled value.
func FuzzFrameDecode(f *testing.F) {
	// A well-formed frame, built the way the transport builds it.
	var good bytes.Buffer
	if err := WriteFrame(&good, map[string]any{"kind": "state", "regs": []int{1, 2, 3}}); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())

	// A truncated frame: the prefix promises more than the stream holds.
	f.Add(good.Bytes()[:good.Len()-2])

	// Header only, and a short header.
	f.Add(good.Bytes()[:4])
	f.Add([]byte{0x00, 0x00})

	// An oversized frame: length prefix beyond MaxFrameBytes.
	var over [8]byte
	binary.BigEndian.PutUint32(over[:4], MaxFrameBytes+1)
	f.Add(over[:])

	// A zero-length frame (the protocol forbids empty payloads).
	f.Add([]byte{0, 0, 0, 0})

	// Right length, garbage payload.
	f.Add([]byte{0, 0, 0, 3, 'n', 'o', '!'})

	f.Fuzz(func(t *testing.T, data []byte) {
		var v any
		err := ReadFrame(bytes.NewReader(data), 0, &v)
		if err != nil {
			return
		}
		// Success means the payload was real JSON of the declared
		// length; re-encoding must round-trip through the framer.
		n := binary.BigEndian.Uint32(data[:4])
		if n == 0 || n > MaxFrameBytes {
			t.Fatalf("accepted frame with out-of-bounds length %d", n)
		}
		if !json.Valid(data[4 : 4+int(n)]) {
			t.Fatalf("accepted non-JSON payload %q", data[4:4+int(n)])
		}
		var rt bytes.Buffer
		if err := WriteFrame(&rt, v); err != nil {
			t.Fatalf("re-encode of accepted value failed: %v", err)
		}
		var v2 any
		if err := ReadFrame(&rt, 0, &v2); err != nil {
			t.Fatalf("round-trip of accepted value failed: %v", err)
		}
	})
}
