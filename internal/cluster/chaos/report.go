package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
)

// Percentiles summarizes a recovery-time distribution (MTTR, measured
// in engine steps) by nearest-rank percentiles over every completed
// recovery in the campaign.
type Percentiles struct {
	N   int `json:"n"`
	P50 int `json:"p50"`
	P90 int `json:"p90"`
	P99 int `json:"p99"`
	Max int `json:"max"`
}

// KindStats aggregates recoveries attributed to one fault kind.
type KindStats struct {
	Recoveries int     `json:"recoveries"`
	MeanSteps  float64 `json:"mean_steps"`
	WorstSteps int     `json:"worst_steps"`
}

// WorstEpisode points at the campaign's worst single recovery.
type WorstEpisode struct {
	Index    int    `json:"index"`
	Seed     int64  `json:"seed"`
	Schedule string `json:"schedule"`
	Steps    int    `json:"steps"` // the worst single recovery, in steps
	Kind     string `json:"kind"`  // the fault kind it was attributed to
}

// Report is one campaign's full result. For stepped transports it is a
// pure function of (protocol, template, SLO, seed, episodes) and
// contains no wall-clock fields, so serialized reports compare
// byte-for-byte across runs.
type Report struct {
	Protocol  string `json:"protocol"`
	Transport string `json:"transport"`
	Procs     int    `json:"procs"`
	Seed      int64  `json:"seed"`
	Episodes  int    `json:"episodes"`
	Template  string `json:"template"`
	SLO       SLO    `json:"slo"`

	// Passed / Failed count episodes against the SLO; Pass is the
	// campaign verdict (every episode passed).
	Passed int  `json:"passed"`
	Failed int  `json:"failed"`
	Pass   bool `json:"pass"`

	// MTTR is the recovery-time distribution across all episodes.
	MTTR Percentiles `json:"mttr"`
	// Kinds breaks recoveries down by the fault kind they were
	// attributed to (map keys serialize sorted, keeping reports
	// deterministic).
	Kinds map[string]KindStats `json:"kinds,omitempty"`
	// Worst is the single slowest recovery anywhere in the campaign.
	Worst *WorstEpisode `json:"worst,omitempty"`

	// EpisodeResults are the per-episode judgments.
	EpisodeResults []Episode `json:"episode_results"`
}

// aggregate fills the campaign-level summary from the judged episodes.
func (r *Report) aggregate() {
	var steps []int
	type acc struct{ n, total, worst int }
	kinds := map[string]*acc{}
	for i := range r.EpisodeResults {
		ep := &r.EpisodeResults[i]
		if ep.Pass() {
			r.Passed++
		} else {
			r.Failed++
		}
		for _, rec := range ep.Recoveries {
			steps = append(steps, rec.Steps)
			a := kinds[rec.Kind]
			if a == nil {
				a = &acc{}
				kinds[rec.Kind] = a
			}
			a.n++
			a.total += rec.Steps
			if rec.Steps > a.worst {
				a.worst = rec.Steps
			}
			if r.Worst == nil || rec.Steps > r.Worst.Steps {
				r.Worst = &WorstEpisode{
					Index: ep.Index, Seed: ep.Seed, Schedule: ep.Schedule,
					Steps: rec.Steps, Kind: rec.Kind,
				}
			}
		}
	}
	r.Pass = r.Failed == 0
	r.MTTR = percentiles(steps)
	if len(kinds) > 0 {
		r.Kinds = make(map[string]KindStats, len(kinds))
		for k, a := range kinds {
			r.Kinds[k] = KindStats{
				Recoveries: a.n,
				MeanSteps:  float64(a.total) / float64(a.n),
				WorstSteps: a.worst,
			}
		}
	}
}

// percentiles computes nearest-rank percentiles of a sample.
func percentiles(sample []int) Percentiles {
	if len(sample) == 0 {
		return Percentiles{}
	}
	s := append([]int(nil), sample...)
	sort.Ints(s)
	rank := func(p int) int {
		// Nearest-rank: the smallest value with at least p% of the
		// sample at or below it.
		i := (p*len(s) + 99) / 100
		return s[i-1]
	}
	return Percentiles{N: len(s), P50: rank(50), P90: rank(90), P99: rank(99), Max: s[len(s)-1]}
}

// schedRNG derives the schedule-generation RNG for one episode,
// independent of the cluster engine's scheduler stream.
func schedRNG(episodeSeed int64) *rand.Rand {
	return rand.New(rand.NewSource(episodeSeed*6_700_417 + 99))
}

// SweepReport is the result of running the same campaign options over
// several templates — the density / kind-mix / gap sweep.
type SweepReport struct {
	Protocol  string    `json:"protocol"`
	Transport string    `json:"transport"`
	Seed      int64     `json:"seed"`
	Episodes  int       `json:"episodes"`
	Pass      bool      `json:"pass"`
	Configs   []*Report `json:"configs"`
}

// RunSweep runs one campaign per template, holding everything else in
// opts fixed (opts.Template is ignored). The sweep passes only if every
// configuration passes.
func RunSweep(ctx context.Context, opts Options, templates []Template) (*SweepReport, error) {
	if len(templates) == 0 {
		return nil, fmt.Errorf("chaos: sweep needs at least one template")
	}
	sw := &SweepReport{Seed: opts.Seed, Episodes: opts.Episodes, Pass: true}
	for _, t := range templates {
		o := opts
		o.Template = t
		rep, err := Run(ctx, o)
		if err != nil {
			return nil, err
		}
		sw.Protocol = rep.Protocol
		sw.Transport = rep.Transport
		sw.Pass = sw.Pass && rep.Pass
		sw.Configs = append(sw.Configs, rep)
	}
	return sw, nil
}
