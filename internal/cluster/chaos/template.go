package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Template is a family of fault schedules. A campaign instantiates it
// once per episode with that episode's seed, so every episode faces a
// different — but reproducible — schedule drawn from the same
// distribution. The knobs are the sweep axes the campaign explores:
// fault density (Faults), kind mix (Kinds), and inter-fault gap (Gap).
type Template struct {
	// Kinds is the fault-kind mix; each scheduled fault picks its kind
	// uniformly (seeded) from this list.
	Kinds []cluster.FaultKind `json:"kinds"`
	// Faults is the number of faults per episode (the density axis).
	Faults int `json:"faults"`
	// Gap is the number of steps between consecutive faults (the
	// pressure axis: small gaps mean faults land on a still-recovering
	// ring).
	Gap int `json:"gap"`
	// Start is the step of the first fault; the ring runs undisturbed
	// until then.
	Start int `json:"start"`
	// CutDuration is how many steps a partition or isolation lasts
	// before healing (required when Kinds includes those).
	CutDuration int `json:"cut_duration,omitempty"`
	// SlowDelayMS is the per-operation latency a slow-peer fleet fault
	// injects (default 200ms; fleet campaigns only).
	SlowDelayMS int64 `json:"slow_delay_ms,omitempty"`
}

// String renders the template compactly for reports.
func (t Template) String() string {
	kinds := make([]string, len(t.Kinds))
	for i, k := range t.Kinds {
		kinds[i] = string(k)
	}
	s := fmt.Sprintf("faults=%d,gap=%d,start=%d,kinds=%s", t.Faults, t.Gap, t.Start, strings.Join(kinds, "+"))
	if t.CutDuration > 0 {
		s += fmt.Sprintf(",cutdur=%d", t.CutDuration)
	}
	return s
}

// hasCuts reports whether the kind mix includes partition or isolate.
func (t Template) hasCuts() bool {
	for _, k := range t.Kinds {
		if k == cluster.FaultPartition || k == cluster.FaultIsolate {
			return true
		}
	}
	return false
}

// Validate checks the template against a protocol: known kinds,
// positive density/gap/start, a cut duration when the mix includes
// partition or isolate. Run calls it; services can call it up front to
// classify template mistakes as client errors.
func (t Template) Validate(p sim.Protocol) error { return t.validate(p) }

// validate checks the template against a protocol.
func (t Template) validate(p sim.Protocol) error {
	if len(t.Kinds) == 0 {
		return fmt.Errorf("chaos: template needs at least one fault kind")
	}
	known := map[cluster.FaultKind]bool{
		cluster.FaultCorrupt: true, cluster.FaultDrop: true, cluster.FaultDup: true,
		cluster.FaultDelay: true, cluster.FaultStall: true, cluster.FaultRestart: true,
		cluster.FaultCrash: true, cluster.FaultPartition: true, cluster.FaultIsolate: true,
	}
	for _, k := range t.Kinds {
		if !known[k] {
			return fmt.Errorf("chaos: unknown fault kind %q", k)
		}
	}
	if t.Faults < 1 {
		return fmt.Errorf("chaos: template needs faults ≥ 1, got %d", t.Faults)
	}
	if t.Gap < 1 {
		return fmt.Errorf("chaos: template needs gap ≥ 1, got %d", t.Gap)
	}
	if t.Start < 1 {
		return fmt.Errorf("chaos: template needs start ≥ 1, got %d", t.Start)
	}
	if t.hasCuts() {
		if t.CutDuration < 1 {
			return fmt.Errorf("chaos: kind mix includes cuts but cut duration is %d", t.CutDuration)
		}
		if p.Procs() < 2 {
			return fmt.Errorf("chaos: partition/isolate need at least 2 processes, protocol %q has %d",
				p.Name(), p.Procs())
		}
	}
	return nil
}

// instantiate draws one concrete schedule from the template. Fault i
// fires at Start + i*Gap with a seeded-random kind from the mix and
// seeded-random targets: a node for corrupt/stall/restart/isolate, a
// ring-neighbor link for drop/dup/delay, a contiguous two-arc cut for
// partition. The result always passes cluster.ValidateSchedule.
func (t Template) instantiate(p sim.Protocol, rng *rand.Rand) []cluster.Fault {
	procs := p.Procs()
	sched := make([]cluster.Fault, 0, t.Faults)
	for i := 0; i < t.Faults; i++ {
		f := cluster.Fault{
			Kind: t.Kinds[rng.Intn(len(t.Kinds))],
			Step: t.Start + i*t.Gap,
			Node: -1, Val: -1, From: -1, To: -1, Count: 1,
		}
		switch f.Kind {
		case cluster.FaultCorrupt:
			f.Node = rng.Intn(procs) // Val stays -1: the engine seeds the value
		case cluster.FaultRestart:
			f.Node = rng.Intn(procs)
		case cluster.FaultCrash:
			f.Node = rng.Intn(procs)
		case cluster.FaultStall:
			f.Node = rng.Intn(procs)
			f.Count = t.Gap
		case cluster.FaultDrop, cluster.FaultDup:
			f.From, f.To = neighborLink(procs, rng)
			f.Count = 1 + rng.Intn(3)
		case cluster.FaultDelay:
			f.From, f.To = neighborLink(procs, rng)
			f.Count = t.Gap
		case cluster.FaultIsolate:
			f.Node = rng.Intn(procs)
			f.Count = t.CutDuration
		case cluster.FaultPartition:
			f.A, f.B = ringCut(procs, rng)
			f.Count = t.CutDuration
		}
		sched = append(sched, f)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].Step < sched[j].Step })
	return sched
}

// neighborLink picks a seeded-random directed ring link (i to i±1).
func neighborLink(procs int, rng *rand.Rand) (from, to int) {
	from = rng.Intn(procs)
	if rng.Intn(2) == 0 {
		return from, (from + 1) % procs
	}
	return from, (from - 1 + procs) % procs
}

// ringCut splits the ring into two contiguous arcs at a seeded-random
// boundary: A = [0,k), B = [k,procs).
func ringCut(procs int, rng *rand.Rand) (a, b []int) {
	k := 1 + rng.Intn(procs-1)
	for i := 0; i < procs; i++ {
		if i < k {
			a = append(a, i)
		} else {
			b = append(b, i)
		}
	}
	return a, b
}
