package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cluster"
)

// Fleet faults: the campaign engine's template machinery, retargeted
// from simulated ring nodes to live checkd replicas. A fleet fault is
// a membership event — a replica crashing, a network cut — rather
// than a register corruption; the replica fleet (internal/fleet)
// executes the schedule with real listeners and real connections. The
// same seeded-template discipline applies: one template plus one seed
// yields one reproducible schedule, so a campaign failure replays
// exactly.

// FleetFault is one membership or gray fault in a fleet campaign
// schedule.
type FleetFault struct {
	// Kind is crash, partition, isolate, slow-peer, asym-partition, or
	// garbage-reply.
	Kind cluster.FaultKind `json:"kind"`
	// Step is the campaign tick at which the fault lands.
	Step int `json:"step"`
	// Node is the target replica index (crash, isolate, slow-peer,
	// garbage-reply).
	Node int `json:"node,omitempty"`
	// A and B are the cut sides (partition, asym-partition; for the
	// latter only the A→B direction is severed).
	A []int `json:"a,omitempty"`
	B []int `json:"b,omitempty"`
	// Count is how many ticks the fault persists: a crash restarts, a
	// cut heals, and a gray fault clears Count ticks after Step.
	Count int `json:"count"`
	// DelayMS is the injected per-operation latency (slow-peer only).
	DelayMS int64 `json:"delay_ms,omitempty"`
}

// fleetKinds are the fault kinds meaningful against a live fleet, in
// listing order.
var fleetKindList = []cluster.FaultKind{
	cluster.FaultCrash,
	cluster.FaultPartition,
	cluster.FaultIsolate,
	cluster.FaultSlowPeer,
	cluster.FaultAsymPartition,
	cluster.FaultGarbageReply,
}

var fleetKinds = func() map[cluster.FaultKind]bool {
	m := make(map[cluster.FaultKind]bool, len(fleetKindList))
	for _, k := range fleetKindList {
		m[k] = true
	}
	return m
}()

// FleetKinds lists the fault kinds a fleet campaign accepts, in a
// stable order — flag validation and usage strings consume it.
func FleetKinds() []cluster.FaultKind {
	out := make([]cluster.FaultKind, len(fleetKindList))
	copy(out, fleetKindList)
	return out
}

// ValidateFleet checks the template as a fleet campaign source: only
// membership kinds, a cut/outage duration, and at least two replicas.
func (t Template) ValidateFleet(replicas int) error {
	if replicas < 2 {
		return fmt.Errorf("chaos: fleet campaigns need at least 2 replicas, got %d", replicas)
	}
	if len(t.Kinds) == 0 {
		return fmt.Errorf("chaos: template needs at least one fault kind")
	}
	for _, k := range t.Kinds {
		if !fleetKinds[k] {
			return fmt.Errorf("chaos: fault kind %q is not a fleet fault (want one of %v)", k, fleetKindList)
		}
	}
	if t.Faults < 1 {
		return fmt.Errorf("chaos: template needs faults ≥ 1, got %d", t.Faults)
	}
	if t.Gap < 1 {
		return fmt.Errorf("chaos: template needs gap ≥ 1, got %d", t.Gap)
	}
	if t.Start < 1 {
		return fmt.Errorf("chaos: template needs start ≥ 1, got %d", t.Start)
	}
	if t.CutDuration < 1 {
		return fmt.Errorf("chaos: fleet faults persist for CutDuration ticks, which must be ≥ 1, got %d", t.CutDuration)
	}
	return nil
}

// FleetSchedule draws one seeded fault schedule for a fleet of n
// replicas. Fault i lands at Start + i*Gap with a seeded-random kind
// from the mix: a crash picks a random replica and restarts it
// CutDuration ticks later; a partition picks a contiguous index cut
// healed CutDuration ticks later; an isolate cuts one random replica
// from everyone else; slow-peer injects SlowDelayMS (default 200ms) of
// data-plane latency into one replica; asym-partition severs one
// direction of a contiguous cut; garbage-reply turns one replica
// hostile. Every fault clears CutDuration ticks after it lands. The
// schedule is sorted by step and stable for a fixed (template, n,
// seed).
func (t Template) FleetSchedule(n int, seed int64) ([]FleetFault, error) {
	if err := t.ValidateFleet(n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	sched := make([]FleetFault, 0, t.Faults)
	for i := 0; i < t.Faults; i++ {
		f := FleetFault{
			Kind:  t.Kinds[rng.Intn(len(t.Kinds))],
			Step:  t.Start + i*t.Gap,
			Node:  -1,
			Count: t.CutDuration,
		}
		switch f.Kind {
		case cluster.FaultCrash, cluster.FaultIsolate:
			f.Node = rng.Intn(n)
		case cluster.FaultPartition, cluster.FaultAsymPartition:
			f.A, f.B = ringCut(n, rng)
		case cluster.FaultSlowPeer:
			f.Node = rng.Intn(n)
			f.DelayMS = t.SlowDelayMS
			if f.DelayMS <= 0 {
				f.DelayMS = 200
			}
		case cluster.FaultGarbageReply:
			f.Node = rng.Intn(n)
		}
		sched = append(sched, f)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].Step < sched[j].Step })
	return sched, nil
}
