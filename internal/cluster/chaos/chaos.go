// Package chaos is the campaign engine over the cluster runtime: it
// runs many seeded episodes of a protocol under generated fault
// schedules and judges each against a recovery SLO. Where one cluster
// episode answers "did the ring recover from this schedule", a campaign
// answers the operational question the paper's convergence property
// implies: across a whole distribution of fault pressure — density,
// kind mix, inter-fault gap, partitions — does the ring always
// re-stabilize within budget, and what does the recovery-time tail look
// like?
//
// Campaigns over the stepped in-proc transport are deterministic: the
// same (protocol, template, SLO, seed, episodes) produces a
// byte-identical JSON report, so a chaos run can be pinned in CI.
// Campaigns over TCP free-run and report the same structure without
// reproducibility.
package chaos

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/cluster/store"
	"repro/internal/sim"
)

// SLO is the recovery service-level objective an episode must meet.
// The zero value only requires convergence (no silent livelock).
type SLO struct {
	// RecoverySteps bounds every single recovery: each stabilization in
	// an episode must complete within this many steps of losing
	// legitimacy (0 = unbounded).
	RecoverySteps int `json:"recovery_steps,omitempty"`
	// MaxTokens bounds the privilege count at every observed event; the
	// token count exceeding it means the fault pushed the ring further
	// from the legitimate region than the budget allows (0 = unchecked).
	MaxTokens int `json:"max_tokens,omitempty"`
}

// Options configures one campaign.
type Options struct {
	// Proto is the ring protocol under test (required).
	Proto sim.Protocol
	// NewTransport builds one transport per episode; nil means the
	// deterministic stepped in-proc transport. Each episode gets a fresh
	// transport, closed when the episode ends.
	NewTransport func(procs int) (cluster.Transport, error)
	// Seed drives everything: episode e of a campaign derives its
	// schedule and its cluster seed from Seed and e alone.
	Seed int64
	// Episodes is the number of episodes to run (required, ≥ 1).
	Episodes int
	// MaxSteps bounds each episode; an episode that has not
	// re-stabilized by then is an SLO violation (required, > 0).
	MaxSteps int
	// Template generates each episode's fault schedule.
	Template Template
	// SLO is the recovery objective; its zero value requires only
	// convergence.
	SLO SLO
	// RefreshEvery is passed through to the cluster engine: a periodic
	// anti-entropy round every so many steps (0 = only on partition
	// heals).
	RefreshEvery int
	// Persist gives each episode a fresh in-memory snapshot store, so
	// crash faults recover from persisted state instead of resuming
	// arbitrary. Stores never outlive their episode and never touch the
	// host disk.
	Persist bool
	// PersistEvery is the snapshot interval in steps (≤ 0 = every step).
	PersistEvery int
	// StorageFaultEvery puts a seeded storage-fault injector (derived
	// from each episode's seed) under the store, faulting every Nth
	// snapshot write with a kind from StorageFaultKinds (0 = no storage
	// faults). Requires Persist.
	StorageFaultEvery int
	// StorageFaultKinds is the storage-fault mix (torn, bitflip, stale,
	// missing, enospc); defaults to the four silent-corruption kinds
	// when StorageFaultEvery is set. The enospc kind (disk-pressure:
	// short write + surfaced error) is opt-in so existing seeded
	// campaign pins stay stable.
	StorageFaultKinds []store.FaultKind
}

// Recovery is one completed convergence episode inside an episode,
// attributed to a fault kind: the kind of the last fault (or cut heal)
// the monitor observed before the ring re-stabilized — the disturbance
// the ring had to overcome last.
type Recovery struct {
	Kind     string `json:"kind"`
	BrokenAt int    `json:"broken_at"`
	StableAt int    `json:"stable_at"`
	Steps    int    `json:"steps"`
}

// Episode summarizes one judged episode.
type Episode struct {
	// Index is the episode's position in the campaign; Seed is the
	// cluster seed it ran with.
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// Schedule is the generated fault schedule in canonical syntax.
	Schedule string `json:"schedule"`
	// Steps and Moves mirror the cluster result.
	Steps int `json:"steps"`
	Moves int `json:"moves"`
	// Converged reports whether the episode ended legitimate.
	Converged bool `json:"converged"`
	// Recoveries are the completed convergence episodes with fault-kind
	// attribution.
	Recoveries []Recovery `json:"recoveries,omitempty"`
	// MaxTokens is the highest privilege count at any observed event.
	MaxTokens int `json:"max_tokens"`
	// Storage reports the episode's snapshot-store counters when
	// persistence was on.
	Storage *store.Stats `json:"storage,omitempty"`
	// Violations lists every SLO breach; empty means the episode passed.
	Violations []string `json:"violations,omitempty"`
}

// Pass reports whether the episode met the SLO.
func (e *Episode) Pass() bool { return len(e.Violations) == 0 }

// episodeSeed derives episode e's cluster seed; the schedule RNG uses a
// further derivation so schedule shape and scheduler choices are
// independent streams.
func episodeSeed(seed int64, e int) int64 { return seed*1_000_003 + int64(e)*7919 + 13 }

// Run executes one campaign: Episodes episodes of Proto under
// schedules drawn from Template, each judged against SLO. The returned
// report is deterministic for stepped transports.
func Run(ctx context.Context, opts Options) (*Report, error) {
	p := opts.Proto
	if p == nil {
		return nil, fmt.Errorf("chaos: Options.Proto is required")
	}
	if opts.Episodes < 1 {
		return nil, fmt.Errorf("chaos: Episodes must be ≥ 1, got %d", opts.Episodes)
	}
	if opts.MaxSteps <= 0 {
		return nil, fmt.Errorf("chaos: MaxSteps must be positive, got %d", opts.MaxSteps)
	}
	if err := opts.Template.validate(p); err != nil {
		return nil, err
	}
	if opts.StorageFaultEvery > 0 && !opts.Persist {
		return nil, fmt.Errorf("chaos: StorageFaultEvery needs Persist")
	}
	legit, err := sim.LegitimateConfig(p)
	if err != nil {
		return nil, fmt.Errorf("chaos: no legitimate start for %q: %w", p.Name(), err)
	}

	rep := &Report{
		Protocol: p.Name(),
		Procs:    p.Procs(),
		Seed:     opts.Seed,
		Episodes: opts.Episodes,
		Template: opts.Template.String(),
		SLO:      opts.SLO,
	}
	for e := 0; e < opts.Episodes; e++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ep, transport, err := runEpisode(ctx, opts, p, legit, e)
		if err != nil {
			return nil, fmt.Errorf("chaos: episode %d: %w", e, err)
		}
		rep.Transport = transport
		rep.EpisodeResults = append(rep.EpisodeResults, *ep)
	}
	rep.aggregate()
	return rep, nil
}

// runEpisode generates, runs, and judges one episode.
func runEpisode(ctx context.Context, opts Options, p sim.Protocol, legit sim.Config, e int) (*Episode, string, error) {
	seed := episodeSeed(opts.Seed, e)
	sched := opts.Template.instantiate(p, schedRNG(seed))
	var tr cluster.Transport
	if opts.NewTransport != nil {
		var err error
		if tr, err = opts.NewTransport(p.Procs()); err != nil {
			return nil, "", err
		}
		defer tr.Close()
	}
	var st *store.Store
	if opts.Persist {
		var fs store.FS = store.NewMemFS()
		if opts.StorageFaultEvery > 0 {
			kinds := opts.StorageFaultKinds
			if len(kinds) == 0 {
				kinds = []store.FaultKind{store.FaultTorn, store.FaultBitFlip, store.FaultStale, store.FaultMissing}
			}
			fs = store.NewInjector(fs, seed, store.Plan{Every: opts.StorageFaultEvery, Kinds: kinds})
		}
		st = store.New(fs)
	}
	res, err := cluster.Run(ctx, cluster.Options{
		Proto:          p,
		Transport:      tr,
		Seed:           seed,
		MaxSteps:       opts.MaxSteps,
		Schedule:       sched,
		RecordMoves:    true, // exact max-token and livelock evidence
		RefreshEvery:   opts.RefreshEvery,
		StopWhenStable: true,
		Store:          st,
		PersistEvery:   opts.PersistEvery,
	}, legit)
	if err != nil {
		return nil, "", err
	}
	ep := judge(e, seed, sched, res, opts.SLO, opts.MaxSteps)
	return ep, res.Transport, nil
}

// judge folds one cluster result into a judged episode.
func judge(index int, seed int64, sched []cluster.Fault, res *cluster.Result, slo SLO, maxSteps int) *Episode {
	parts := make([]string, len(sched))
	for i, f := range sched {
		parts[i] = f.String()
	}
	ep := &Episode{
		Index:     index,
		Seed:      seed,
		Schedule:  strings.Join(parts, ";"),
		Steps:     res.Steps,
		Moves:     res.Moves,
		Converged: res.Converged,
	}
	ep.Recoveries, ep.MaxTokens = attribute(res.Events)
	ep.Storage = res.Storage
	if !res.Converged {
		// No silent livelock: name the failure mode. Moves near the end
		// of the budget mean the ring was still churning (livelock);
		// none mean it wedged quiescent.
		lastMove := -1
		for _, ev := range res.Events {
			if ev.Kind == cluster.KindMove {
				lastMove = ev.Step
			}
		}
		mode := "wedged quiescent"
		if lastMove >= res.Steps-res.Steps/10 {
			mode = "still churning (livelock)"
		}
		ep.Violations = append(ep.Violations, fmt.Sprintf(
			"did not re-stabilize within %d steps, %s (last move at step %d)", maxSteps, mode, lastMove))
	}
	if slo.RecoverySteps > 0 {
		for _, r := range ep.Recoveries {
			if r.Steps > slo.RecoverySteps {
				ep.Violations = append(ep.Violations, fmt.Sprintf(
					"recovery after %s took %d steps, budget %d", r.Kind, r.Steps, slo.RecoverySteps))
			}
		}
	}
	if slo.MaxTokens > 0 && ep.MaxTokens > slo.MaxTokens {
		ep.Violations = append(ep.Violations, fmt.Sprintf(
			"token count reached %d, budget %d", ep.MaxTokens, slo.MaxTokens))
	}
	return ep
}

// attribute walks an episode's event stream, attributing each completed
// stabilization to the most recent disturbance — a fault, or a cut heal
// (healing is what unblocks recovery from a partition) — and tracking
// the peak token count.
func attribute(events []cluster.Event) ([]Recovery, int) {
	var out []Recovery
	lastKind := "start"
	brokenAt, maxTokens := 0, 0
	for _, ev := range events {
		if ev.Tokens > maxTokens {
			maxTokens = ev.Tokens
		}
		switch ev.Kind {
		case cluster.KindFault, cluster.KindHeal, cluster.KindCrashed:
			lastKind = faultKind(ev.Fault)
		case cluster.KindDestabilized:
			brokenAt = ev.Step
		case cluster.KindStabilized:
			out = append(out, Recovery{Kind: lastKind, BrokenAt: brokenAt, StableAt: ev.Step, Steps: ev.After})
		}
	}
	return out, maxTokens
}

// faultKind extracts the kind from a fault's schedule rendering
// ("corrupt@120:node=2,val=1" → "corrupt").
func faultKind(s string) string {
	if i := strings.IndexByte(s, '@'); i > 0 {
		return s[:i]
	}
	return s
}
