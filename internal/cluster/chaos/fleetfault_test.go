package chaos

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// A fleet schedule is a pure function of (template, n, seed): replaying
// a campaign failure needs only those three numbers.
func TestFleetScheduleDeterministic(t *testing.T) {
	tpl := Template{
		Kinds:       []cluster.FaultKind{cluster.FaultCrash, cluster.FaultPartition, cluster.FaultIsolate},
		Faults:      6,
		Gap:         2,
		Start:       1,
		CutDuration: 3,
	}
	a, err := tpl.FleetSchedule(4, 99)
	if err != nil {
		t.Fatalf("FleetSchedule: %v", err)
	}
	b, err := tpl.FleetSchedule(4, 99)
	if err != nil {
		t.Fatalf("FleetSchedule: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	c, _ := tpl.FleetSchedule(4, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i, f := range a {
		if f.Step != tpl.Start+i*tpl.Gap {
			t.Fatalf("fault %d at step %d, want %d", i, f.Step, tpl.Start+i*tpl.Gap)
		}
		if f.Count != tpl.CutDuration {
			t.Fatalf("fault %d persists %d ticks, want %d", i, f.Count, tpl.CutDuration)
		}
		switch f.Kind {
		case cluster.FaultCrash, cluster.FaultIsolate:
			if f.Node < 0 || f.Node >= 4 {
				t.Fatalf("fault %d targets replica %d of 4", i, f.Node)
			}
		case cluster.FaultPartition:
			if len(f.A) == 0 || len(f.B) == 0 || len(f.A)+len(f.B) != 4 {
				t.Fatalf("fault %d cut %v|%v does not cover 4 replicas", i, f.A, f.B)
			}
		default:
			t.Fatalf("fault %d has non-fleet kind %q", i, f.Kind)
		}
	}
}

// Fleet validation rejects what the live fleet cannot execute:
// register-level kinds, missing durations, single-replica fleets.
func TestFleetScheduleValidation(t *testing.T) {
	good := Template{
		Kinds: []cluster.FaultKind{cluster.FaultCrash}, Faults: 1, Gap: 1, Start: 1, CutDuration: 1,
	}
	if _, err := good.FleetSchedule(2, 1); err != nil {
		t.Fatalf("valid template rejected: %v", err)
	}
	cases := []struct {
		name string
		tpl  Template
		n    int
	}{
		{"register kind", Template{Kinds: []cluster.FaultKind{cluster.FaultCorrupt}, Faults: 1, Gap: 1, Start: 1, CutDuration: 1}, 3},
		{"no kinds", Template{Faults: 1, Gap: 1, Start: 1, CutDuration: 1}, 3},
		{"no duration", Template{Kinds: []cluster.FaultKind{cluster.FaultCrash}, Faults: 1, Gap: 1, Start: 1}, 3},
		{"one replica", good, 1},
		{"zero faults", Template{Kinds: []cluster.FaultKind{cluster.FaultCrash}, Gap: 1, Start: 1, CutDuration: 1}, 3},
	}
	for _, tc := range cases {
		if _, err := tc.tpl.FleetSchedule(tc.n, 1); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
