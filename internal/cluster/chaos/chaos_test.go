package chaos

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cluster/store"
	"repro/internal/sim"
)

func baseOptions() Options {
	return Options{
		Proto:    sim.NewDijkstra3(5),
		Seed:     42,
		Episodes: 6,
		MaxSteps: 5000,
		Template: Template{
			Kinds:       []cluster.FaultKind{cluster.FaultCorrupt, cluster.FaultRestart, cluster.FaultPartition, cluster.FaultIsolate},
			Faults:      4,
			Gap:         60,
			Start:       30,
			CutDuration: 40,
		},
	}
}

func TestCampaignConverges(t *testing.T) {
	rep, err := Run(context.Background(), baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Failed != 0 || rep.Passed != 6 {
		t.Fatalf("campaign failed: passed=%d failed=%d %+v", rep.Passed, rep.Failed, rep.EpisodeResults)
	}
	if rep.Transport != "chan" {
		t.Fatalf("transport %q, want chan", rep.Transport)
	}
	if rep.MTTR.N == 0 {
		t.Fatal("no recoveries measured — faults never destabilized the ring?")
	}
	if rep.MTTR.Max < rep.MTTR.P50 || rep.Worst == nil || rep.Worst.Steps != rep.MTTR.Max {
		t.Fatalf("summary inconsistent: mttr=%+v worst=%+v", rep.MTTR, rep.Worst)
	}
	if len(rep.Kinds) == 0 {
		t.Fatal("no per-kind recovery stats")
	}
	for k, ks := range rep.Kinds {
		if ks.Recoveries == 0 || ks.WorstSteps < 0 {
			t.Fatalf("kind %s stats %+v", k, ks)
		}
	}
	// Every episode carries a generated schedule that the cluster layer
	// can re-parse (the service keys its cache on this rendering).
	for _, ep := range rep.EpisodeResults {
		sched, err := cluster.ParseSchedule(ep.Schedule)
		if err != nil {
			t.Fatalf("episode %d schedule %q does not re-parse: %v", ep.Index, ep.Schedule, err)
		}
		if len(sched) != 4 {
			t.Fatalf("episode %d has %d faults, want 4", ep.Index, len(sched))
		}
	}
}

// TestCampaignDeterministic is the reproducibility acceptance check:
// on the stepped transport the same seed produces a byte-identical
// JSON report, and a different seed produces a different campaign.
func TestCampaignDeterministic(t *testing.T) {
	render := func(seed int64) string {
		o := baseOptions()
		o.Seed = seed
		rep, err := Run(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := render(42), render(42)
	if a != b {
		t.Fatalf("same seed, different reports:\n%s\n%s", a, b)
	}
	if render(43) == a {
		t.Fatal("different seeds produced identical campaigns")
	}
}

// TestCampaignSLOViolation sets the budget deliberately below the
// measured worst case and expects the campaign to fail with named
// violations.
func TestCampaignSLOViolation(t *testing.T) {
	o := baseOptions()
	probe, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if probe.MTTR.Max < 2 {
		t.Fatalf("campaign too tame to test SLO violation: mttr=%+v", probe.MTTR)
	}
	o.SLO = SLO{RecoverySteps: probe.MTTR.Max - 1}
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Failed == 0 {
		t.Fatalf("budget below worst case but campaign passed: %+v", rep.MTTR)
	}
	found := false
	for _, ep := range rep.EpisodeResults {
		for _, v := range ep.Violations {
			if strings.Contains(v, "budget") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no violation names the budget")
	}
}

func TestCampaignMaxTokensSLO(t *testing.T) {
	o := baseOptions()
	o.SLO = SLO{MaxTokens: 1} // a ring under faults always exceeds one token
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("token budget of 1 passed under corruption faults")
	}
}

func TestCampaignOverTCP(t *testing.T) {
	o := baseOptions()
	o.Episodes = 2
	o.MaxSteps = 500_000
	o.Template.Gap = 100
	o.Template.CutDuration = 200
	o.NewTransport = func(procs int) (cluster.Transport, error) {
		return cluster.NewTCPTransport(procs)
	}
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transport != "tcp" {
		t.Fatalf("transport %q, want tcp", rep.Transport)
	}
	if !rep.Pass {
		t.Fatalf("TCP campaign failed: %+v", rep.EpisodeResults)
	}
}

func TestRunSweep(t *testing.T) {
	o := baseOptions()
	o.Episodes = 3
	base := o.Template
	var templates []Template
	for _, gap := range []int{80, 40} {
		tpl := base
		tpl.Gap = gap
		templates = append(templates, tpl)
	}
	sw, err := RunSweep(context.Background(), o, templates)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Configs) != 2 || !sw.Pass {
		t.Fatalf("sweep %+v", sw)
	}
	if sw.Configs[0].Template == sw.Configs[1].Template {
		t.Fatal("sweep configs share a template rendering")
	}
}

func TestTemplateValidate(t *testing.T) {
	p := sim.NewDijkstra3(5)
	bad := []Template{
		{},
		{Kinds: []cluster.FaultKind{"melt"}, Faults: 1, Gap: 1, Start: 1},
		{Kinds: []cluster.FaultKind{cluster.FaultCorrupt}, Faults: 0, Gap: 1, Start: 1},
		{Kinds: []cluster.FaultKind{cluster.FaultCorrupt}, Faults: 1, Gap: 0, Start: 1},
		{Kinds: []cluster.FaultKind{cluster.FaultPartition}, Faults: 1, Gap: 1, Start: 1}, // no cut duration
	}
	for i, tpl := range bad {
		if err := tpl.validate(p); err == nil {
			t.Errorf("template %d (%+v) accepted", i, tpl)
		}
	}
	// Generated schedules always validate against the protocol.
	good := Template{
		Kinds: []cluster.FaultKind{cluster.FaultCorrupt, cluster.FaultDrop, cluster.FaultDup,
			cluster.FaultDelay, cluster.FaultStall, cluster.FaultRestart,
			cluster.FaultPartition, cluster.FaultIsolate},
		Faults: 20, Gap: 10, Start: 5, CutDuration: 15,
	}
	if err := good.validate(p); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		sched := good.instantiate(p, schedRNG(seed))
		if err := cluster.ValidateSchedule(p, sched); err != nil {
			t.Fatalf("seed %d generated invalid schedule: %v", seed, err)
		}
	}
}

func TestPercentiles(t *testing.T) {
	if p := percentiles(nil); p.N != 0 {
		t.Fatalf("empty sample %+v", p)
	}
	p := percentiles([]int{5, 1, 9, 3, 7, 2, 8, 4, 6, 10})
	if p.N != 10 || p.P50 != 5 || p.P90 != 9 || p.P99 != 10 || p.Max != 10 {
		t.Fatalf("percentiles %+v", p)
	}
	one := percentiles([]int{4})
	if one.P50 != 4 || one.P99 != 4 || one.Max != 4 {
		t.Fatalf("single sample %+v", one)
	}
}

// TestCampaignCrashFaults: a crash-inclusive campaign with per-episode
// persistence and a hostile disk passes the recovery SLO, records
// crash-attributed recoveries, reports storage stats, and stays
// byte-deterministic on the stepped transport.
func TestCampaignCrashFaults(t *testing.T) {
	opts := Options{
		Proto:    sim.NewDijkstra3(5),
		Seed:     9,
		Episodes: 6,
		MaxSteps: 5000,
		Template: Template{
			Kinds:  []cluster.FaultKind{cluster.FaultCrash, cluster.FaultCorrupt},
			Faults: 4,
			Gap:    120, // room for backoff + replay between faults
			Start:  30,
		},
		SLO:               SLO{RecoverySteps: 600},
		Persist:           true,
		PersistEvery:      2,
		StorageFaultEvery: 5,
	}
	render := func() (*Report, string) {
		rep, err := Run(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return rep, string(b)
	}
	rep, a := render()
	if !rep.Pass {
		t.Fatalf("crash campaign violated SLO: %+v", rep.EpisodeResults)
	}
	if _, ok := rep.Kinds["crash"]; !ok {
		t.Fatalf("no crash-attributed recoveries: %+v", rep.Kinds)
	}
	sawStorage, sawArbitrary, sawSnapshot := false, false, false
	for _, ep := range rep.EpisodeResults {
		if ep.Storage != nil && ep.Storage.Saves > 0 {
			sawStorage = true
		}
	}
	// Recovery sources: with a hostile disk faulting every 5th write,
	// both snapshot and arbitrary resumes should appear across episodes.
	for _, ep := range rep.EpisodeResults {
		if ep.Storage == nil {
			continue
		}
		if ep.Storage.Restored > 0 {
			sawSnapshot = true
		}
		if ep.Storage.CorruptLoads+ep.Storage.StaleLoads+ep.Storage.MissingLoads > 0 {
			sawArbitrary = true
		}
	}
	if !sawStorage {
		t.Fatal("no episode reported storage stats")
	}
	if !sawSnapshot && !sawArbitrary {
		t.Fatal("no snapshot loads observed at all — crashes never recovered through the store?")
	}
	if _, b := render(); a != b {
		t.Fatalf("crash campaign is not deterministic:\n%s\n%s", a, b)
	}
}

// TestCampaignDiskPressure: a campaign squeezing the disk with the
// enospc mix still converges — saves fail loudly (SaveErrors), the
// previous snapshot stays loadable, and self-stabilization carries the
// episodes through regardless.
func TestCampaignDiskPressure(t *testing.T) {
	opts := Options{
		Proto:    sim.NewDijkstra3(5),
		Seed:     17,
		Episodes: 4,
		MaxSteps: 5000,
		Template: Template{
			Kinds:  []cluster.FaultKind{cluster.FaultCrash, cluster.FaultCorrupt},
			Faults: 3,
			Gap:    120,
			Start:  30,
		},
		SLO:               SLO{RecoverySteps: 600},
		Persist:           true,
		PersistEvery:      2,
		StorageFaultEvery: 3,
		StorageFaultKinds: []store.FaultKind{store.FaultENOSPC},
	}
	rep, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("disk-pressure campaign violated SLO: %+v", rep.EpisodeResults)
	}
	sawSaveErrors := false
	for _, ep := range rep.EpisodeResults {
		if ep.Storage != nil && ep.Storage.SaveErrors > 0 {
			sawSaveErrors = true
		}
	}
	if !sawSaveErrors {
		t.Fatal("enospc mix never surfaced a save error — the pressure was silent")
	}
}

// TestStorageFaultsRequirePersist: the option dependency is validated.
func TestStorageFaultsRequirePersist(t *testing.T) {
	o := baseOptions()
	o.StorageFaultEvery = 3
	if _, err := Run(context.Background(), o); err == nil || !strings.Contains(err.Error(), "Persist") {
		t.Fatalf("want Persist dependency error, got %v", err)
	}
}
