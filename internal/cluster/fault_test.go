package cluster

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseSchedule(t *testing.T) {
	sched, err := ParseSchedule(
		"drop@50:link=1>2,count=3; corrupt@120:node=2,val=1 ;restart@150:node=4;" +
			"stall@100:node=3,count=40;delay@60:link=2>3,count=10;dup@80:link=0>1")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 6 {
		t.Fatalf("want 6 faults, got %d", len(sched))
	}
	// Sorted by step.
	for i := 1; i < len(sched); i++ {
		if sched[i-1].Step > sched[i].Step {
			t.Fatalf("schedule not sorted: %+v", sched)
		}
	}
	want := []string{
		"drop@50:link=1>2,count=3",
		"delay@60:link=2>3,count=10",
		"dup@80:link=0>1,count=1",
		"stall@100:node=3,count=40",
		"corrupt@120:node=2,val=1",
		"restart@150:node=4",
	}
	for i, w := range want {
		if got := sched[i].String(); got != w {
			t.Errorf("fault %d renders %q, want %q", i, got, w)
		}
	}
	// corrupt without val defaults to seeded-random (-1).
	random, err := ParseSchedule("corrupt@5:node=0")
	if err != nil {
		t.Fatal(err)
	}
	if random[0].Val != -1 {
		t.Fatalf("default corrupt val = %d, want -1 (random)", random[0].Val)
	}
	// Empty schedules are fine.
	if s, err := ParseSchedule("  "); err != nil || len(s) != 0 {
		t.Fatalf("blank schedule: %v %v", s, err)
	}
}

func TestParseScheduleCuts(t *testing.T) {
	sched, err := ParseSchedule("partition@200:cut=0+1|2+3+4,count=50; isolate@260:node=2,count=30")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 2 {
		t.Fatalf("want 2 faults, got %d", len(sched))
	}
	p := sched[0]
	if p.Kind != FaultPartition || len(p.A) != 2 || len(p.B) != 3 || p.Count != 50 {
		t.Fatalf("partition parsed as %+v", p)
	}
	// String renders back to canonical schedule syntax, and the render
	// re-parses to the same fault (the service cache keys on this).
	for i, want := range []string{
		"partition@200:cut=0+1|2+3+4,count=50",
		"isolate@260:node=2,count=30",
	} {
		got := sched[i].String()
		if got != want {
			t.Errorf("fault %d renders %q, want %q", i, got, want)
		}
		again, err := ParseSchedule(got)
		if err != nil || len(again) != 1 || again[0].String() != got {
			t.Errorf("render %q does not round-trip: %v %v", got, again, err)
		}
	}
}

func TestParseScheduleCutErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"partition without cut", "partition@5:count=3", "needs cut"},
		{"cut without separator", "partition@5:cut=0+1", "a|b node sets"},
		{"cut with bad node", "partition@5:cut=0+x|1", "integer node sets"},
		{"isolate without node", "isolate@5:count=3", "needs node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSchedule(tc.in)
			if err == nil {
				t.Fatalf("ParseSchedule(%q) succeeded", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"missing step", "corrupt:node=1", "want kind@step"},
		{"bad step", "corrupt@x:node=1", "bad step"},
		{"negative step", "corrupt@-3:node=1", "bad step"},
		{"unknown kind", "melt@5:node=1", "unknown kind"},
		{"corrupt without node", "corrupt@5:val=1", "needs node"},
		{"drop without link", "drop@5:count=2", "needs link"},
		{"bad link", "drop@5:link=12", "from>to"},
		{"bad link endpoint", "drop@5:link=a>b", "integer endpoints"},
		{"unknown param", "corrupt@5:node=1,foo=2", "unknown parameter"},
		{"non-integer param", "corrupt@5:node=x", "not an integer"},
		{"zero count", "drop@5:link=0>1,count=0", "count must be"},
		{"bare param", "corrupt@5:node", "bad parameter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSchedule(tc.in)
			if err == nil {
				t.Fatalf("ParseSchedule(%q) succeeded", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateSchedule(t *testing.T) {
	p := sim.NewDijkstra3(5)
	ok, err := ParseSchedule("corrupt@5:node=1,val=2;drop@6:link=0>1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchedule(p, ok); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []string{
		"corrupt@5:node=9",                // node out of range
		"corrupt@5:node=1,val=3",          // value outside mod-3 domain
		"drop@5:link=0>7",                 // link endpoint out of range
		"partition@5:cut=0+1|2+9,count=3", // partition node out of range
		"partition@5:cut=0+1|1+2,count=3", // node on both sides
		"partition@5:cut=0+0|1+2,count=3", // node repeated within a side
		"isolate@5:node=7,count=3",        // isolate node out of range
	}
	for _, in := range bad {
		sched, err := ParseSchedule(in)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", in, err)
		}
		if err := ValidateSchedule(p, sched); err == nil {
			t.Errorf("ValidateSchedule accepted %q", in)
		}
	}
}

// recvOrNone drains at most one message without blocking.
func recvOrNone(t *ChanTransport, node int) (Message, bool) {
	select {
	case m := <-t.Recv(node):
		return m, true
	default:
		return Message{}, false
	}
}

func TestInjectorDrop(t *testing.T) {
	tr := NewChanTransport(3)
	in := newInjector(tr)
	in.arm(Fault{Kind: FaultDrop, From: 0, To: 1, Count: 2})
	for i := 0; i < 3; i++ {
		if err := in.Send(Message{From: 0, To: 1, Val: i, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	m, ok := recvOrNone(tr, 1)
	if !ok || m.Val != 2 {
		t.Fatalf("want only the third message through, got %+v ok=%v", m, ok)
	}
	if _, ok := recvOrNone(tr, 1); ok {
		t.Fatal("extra message delivered")
	}
	st := in.linkStats()
	if len(st) != 1 || st[0].Sent != 3 || st[0].Dropped != 2 {
		t.Fatalf("link stats %+v", st)
	}
}

func TestInjectorDup(t *testing.T) {
	tr := NewChanTransport(3)
	in := newInjector(tr)
	in.arm(Fault{Kind: FaultDup, From: 1, To: 2, Count: 1})
	if err := in.Send(Message{From: 1, To: 2, Val: 7, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	a, okA := recvOrNone(tr, 2)
	b, okB := recvOrNone(tr, 2)
	if !okA || !okB || a != b {
		t.Fatalf("want the message twice, got %+v/%v %+v/%v", a, okA, b, okB)
	}
	// The fault is spent: the next message passes through once.
	if err := in.Send(Message{From: 1, To: 2, Val: 8, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOrNone(tr, 2); !ok {
		t.Fatal("follow-up message lost")
	}
	if _, ok := recvOrNone(tr, 2); ok {
		t.Fatal("follow-up message duplicated")
	}
}

// TestInjectorPartition arms a cut and asserts messages crossing it are
// dropped in both directions, same-side traffic flows, and the cut
// heals at its expiry step.
func TestInjectorPartition(t *testing.T) {
	tr := NewChanTransport(4)
	in := newInjector(tr)
	in.advance(10)
	in.arm(Fault{Kind: FaultPartition, A: []int{0, 1}, B: []int{2, 3}, Count: 5})
	crossing := []Message{{From: 1, To: 2, Val: 1}, {From: 2, To: 1, Val: 2}}
	for _, m := range crossing {
		if err := in.Send(m); err != nil {
			t.Fatal(err)
		}
		if got, ok := recvOrNone(tr, m.To); ok {
			t.Fatalf("message crossed an active cut: %+v", got)
		}
	}
	// Same-side traffic is untouched.
	if err := in.Send(Message{From: 0, To: 1, Val: 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOrNone(tr, 1); !ok {
		t.Fatal("same-side message dropped")
	}
	// At step 15 the cut heals.
	in.advance(15)
	if err := in.Send(Message{From: 1, To: 2, Val: 4}); err != nil {
		t.Fatal(err)
	}
	if m, ok := recvOrNone(tr, 2); !ok || m.Val != 4 {
		t.Fatalf("post-heal message lost: %+v ok=%v", m, ok)
	}
	st := in.linkStats()
	for _, s := range st {
		if s.From == 1 && s.To == 2 && s.Dropped != 1 {
			t.Fatalf("cut drops miscounted: %+v", st)
		}
	}
}

// TestInjectorIsolate cuts every link touching one node.
func TestInjectorIsolate(t *testing.T) {
	tr := NewChanTransport(3)
	in := newInjector(tr)
	in.arm(Fault{Kind: FaultIsolate, Node: 1, Count: 10})
	for _, m := range []Message{{From: 0, To: 1}, {From: 1, To: 2}} {
		if err := in.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, ok := recvOrNone(tr, m.To); ok {
			t.Fatalf("message touching isolated node delivered: %+v", m)
		}
	}
	if err := in.Send(Message{From: 2, To: 0, Val: 9}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOrNone(tr, 0); !ok {
		t.Fatal("unrelated link severed by isolate")
	}
}

func TestInjectorDelay(t *testing.T) {
	tr := NewChanTransport(3)
	in := newInjector(tr)
	in.advance(10)
	in.arm(Fault{Kind: FaultDelay, From: 2, To: 0, Count: 5})
	if err := in.Send(Message{From: 2, To: 0, Val: 9, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOrNone(tr, 0); ok {
		t.Fatal("delayed message delivered immediately")
	}
	in.advance(14)
	if _, ok := recvOrNone(tr, 0); ok {
		t.Fatal("delayed message released early")
	}
	in.advance(15)
	m, ok := recvOrNone(tr, 0)
	if !ok || m.Val != 9 {
		t.Fatalf("delayed message not released at hold expiry: %+v ok=%v", m, ok)
	}
	// Only the next message is delayed; later traffic flows.
	if err := in.Send(Message{From: 2, To: 0, Val: 10, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOrNone(tr, 0); !ok {
		t.Fatal("post-delay message lost")
	}
}
