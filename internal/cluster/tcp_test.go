package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestTCPTransportFrames exercises the wire path directly: a message
// sent through real loopback sockets arrives intact.
func TestTCPTransportFrames(t *testing.T) {
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	want := Message{From: 0, To: 1, Val: 2, Seq: 7}
	if err := tr.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-tr.Recv(1):
		if got != want {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
	// Probes survive the wire too.
	probe := Message{From: 2, To: 0, Seq: 1, Probe: true}
	if err := tr.Send(probe); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-tr.Recv(0):
		if !got.Probe || got.From != 2 {
			t.Fatalf("probe mangled: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probe never arrived")
	}
}

// TestTCPLoopbackRingConverges is the integration acceptance test: a
// ring of 5 nodes over 127.0.0.1 sockets converges from a perturbed
// start within the step budget.
func TestTCPLoopbackRingConverges(t *testing.T) {
	p := sim.NewDijkstra3(5)
	tr, err := NewTCPTransport(p.Procs())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Options{
		Proto:          p,
		Transport:      tr,
		Seed:           5,
		MaxSteps:       100_000,
		StopWhenStable: true,
	}, sim.Config{2, 0, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("TCP ring did not converge: final %v after %d moves", res.Final, res.Moves)
	}
	if res.Transport != "tcp" {
		t.Fatalf("transport reported as %q", res.Transport)
	}
	if len(res.Stabilizations) == 0 {
		t.Fatal("no stabilization recorded for a perturbed start")
	}
	// Ring traffic flowed on neighbor links.
	if len(res.Links) == 0 {
		t.Fatal("no link statistics recorded")
	}
}

// TestTCPRingWithFault injects a register corruption into a ring of 3
// nodes mid-run and expects recovery.
func TestTCPRingWithFault(t *testing.T) {
	p := sim.NewDijkstra3(3)
	tr, err := NewTCPTransport(p.Procs())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sched, err := ParseSchedule("corrupt@20:node=1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Options{
		Proto:          p,
		Transport:      tr,
		Seed:           8,
		MaxSteps:       100_000,
		Schedule:       sched,
		StopWhenStable: true,
	}, sim.Config{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("TCP ring did not recover: final %v", res.Final)
	}
	sawFault := false
	for _, ev := range res.Events {
		if ev.Kind == "fault" {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("fault event missing from stream")
	}
}
