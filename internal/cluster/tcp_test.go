package cluster

import (
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestTCPTransportFrames exercises the wire path directly: a message
// sent through real loopback sockets arrives intact.
func TestTCPTransportFrames(t *testing.T) {
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	want := Message{From: 0, To: 1, Val: 2, Seq: 7}
	if err := tr.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-tr.Recv(1):
		if got != want {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
	// Probes survive the wire too.
	probe := Message{From: 2, To: 0, Seq: 1, Probe: true}
	if err := tr.Send(probe); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-tr.Recv(0):
		if !got.Probe || got.From != 2 {
			t.Fatalf("probe mangled: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probe never arrived")
	}
}

// sendUntilDelivered retries Send until to's inbox yields a message
// with the wanted Val, tolerating transient write errors and dial
// backoff along the way.
func sendUntilDelivered(t *testing.T, tr *TCPTransport, m Message, deadline time.Duration) {
	t.Helper()
	stop := time.After(deadline)
	for {
		_ = tr.Send(m) // errors expected while the peer is down or backing off
		select {
		case got := <-tr.Recv(m.To):
			if got.Val == m.Val {
				return
			}
		case <-stop:
			t.Fatalf("message %+v never delivered within %v", m, deadline)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestTCPPeerRestart kills a peer's listener mid-episode and asserts
// the transport self-heals: sends to the dead peer fail, and once the
// peer restarts on the same address later sends succeed again.
func TestTCPPeerRestart(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Establish the cached route 0 -> 1.
	sendUntilDelivered(t, tr, Message{From: 0, To: 1, Val: 1}, 5*time.Second)

	if err := tr.StopNode(1); err != nil {
		t.Fatal(err)
	}
	// The cached connection is dead. The first write may still land in
	// the OS buffer, but within a few sends the transport must see the
	// error and evict the connection.
	sawErr := false
	for i := 0; i < 50 && !sawErr; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Val: 2}); err != nil {
			sawErr = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawErr {
		t.Fatal("sends to a stopped peer never failed")
	}
	// Drain anything that slipped through before the stop.
	for {
		select {
		case <-tr.Recv(1):
			continue
		default:
		}
		break
	}

	if err := tr.StartNode(1); err != nil {
		t.Fatal(err)
	}
	// Dial backoff expires, the next Send redials, delivery resumes.
	sendUntilDelivered(t, tr, Message{From: 0, To: 1, Val: 3}, 5*time.Second)
}

// hostilePeer dials node 0's listener directly and writes raw bytes.
// Each case must make the transport close the connection (our read
// sees EOF) without wedging the node: a well-formed message still
// arrives afterwards.
func hostilePeer(t *testing.T, write func(c *net.TCPConn)) {
	t.Helper()
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	raw, err := net.Dial("tcp", tr.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	c := raw.(*net.TCPConn)
	defer c.Close()
	write(c)
	// The transport must hang up on us.
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("transport kept the connection open after a hostile frame")
	}
	// The node is not wedged: normal traffic still flows.
	sendUntilDelivered(t, tr, Message{From: 1, To: 0, Val: 9}, 5*time.Second)
	// The deferred Close would hang on a leaked readLoop goroutine; the
	// test timing out here is the leak detector.
}

func TestTCPHostileOversizedFrame(t *testing.T) {
	hostilePeer(t, func(c *net.TCPConn) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], maxFrameBytes+1)
		if _, err := c.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTCPHostileTruncatedFrame(t *testing.T) {
	hostilePeer(t, func(c *net.TCPConn) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 100)
		if _, err := c.Write(append(hdr[:], []byte("only ten b")...)); err != nil {
			t.Fatal(err)
		}
		// Half-close: the frame promised 100 bytes and will never get
		// them. The reader must give up, not wait forever.
		if err := c.CloseWrite(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTCPHostileNonJSONFrame(t *testing.T) {
	hostilePeer(t, func(c *net.TCPConn) {
		payload := []byte("{not json!")
		frame := make([]byte, 4+len(payload))
		binary.BigEndian.PutUint32(frame, uint32(len(payload)))
		copy(frame[4:], payload)
		if _, err := c.Write(frame); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTCPPartitionHeal runs a full episode over real sockets with a
// mid-episode partition plus a corruption behind the cut, and asserts
// the ring re-stabilizes after the timed heal.
func TestTCPPartitionHeal(t *testing.T) {
	p := sim.NewDijkstra3(5)
	tr, err := NewTCPTransport(p.Procs())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sched, err := ParseSchedule("partition@50:cut=0+1|2+3+4,count=300;corrupt@60:node=3,val=0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Options{
		Proto:          p,
		Transport:      tr,
		Seed:           11,
		MaxSteps:       500_000,
		Schedule:       sched,
		StopWhenStable: true,
	}, sim.Config{2, 0, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("TCP ring did not re-stabilize after partition heal: final %v", res.Final)
	}
	var sawPartition, sawHeal bool
	for _, ev := range res.Events {
		switch ev.Kind {
		case "fault":
			if ev.Fault != "" && ev.Fault[:4] == "part" {
				sawPartition = true
			}
		case "heal":
			sawHeal = true
		}
	}
	if !sawPartition || !sawHeal {
		t.Fatalf("partition/heal events missing: partition=%v heal=%v", sawPartition, sawHeal)
	}
}

// TestTCPLoopbackRingConverges is the integration acceptance test: a
// ring of 5 nodes over 127.0.0.1 sockets converges from a perturbed
// start within the step budget.
func TestTCPLoopbackRingConverges(t *testing.T) {
	p := sim.NewDijkstra3(5)
	tr, err := NewTCPTransport(p.Procs())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Options{
		Proto:          p,
		Transport:      tr,
		Seed:           5,
		MaxSteps:       100_000,
		StopWhenStable: true,
	}, sim.Config{2, 0, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("TCP ring did not converge: final %v after %d moves", res.Final, res.Moves)
	}
	if res.Transport != "tcp" {
		t.Fatalf("transport reported as %q", res.Transport)
	}
	if len(res.Stabilizations) == 0 {
		t.Fatal("no stabilization recorded for a perturbed start")
	}
	// Ring traffic flowed on neighbor links.
	if len(res.Links) == 0 {
		t.Fatal("no link statistics recorded")
	}
}

// TestTCPRingWithFault injects a register corruption into a ring of 3
// nodes mid-run and expects recovery.
func TestTCPRingWithFault(t *testing.T) {
	p := sim.NewDijkstra3(3)
	tr, err := NewTCPTransport(p.Procs())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	sched, err := ParseSchedule("corrupt@20:node=1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Options{
		Proto:          p,
		Transport:      tr,
		Seed:           8,
		MaxSteps:       100_000,
		Schedule:       sched,
		StopWhenStable: true,
	}, sim.Config{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("TCP ring did not recover: final %v", res.Final)
	}
	sawFault := false
	for _, ev := range res.Events {
		if ev.Kind == "fault" {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("fault event missing from stream")
	}
}

// TestTCPRedialBackoffResets: the dial backoff is per-outage, not
// per-lifetime. After a successful reconnect the failure counter is
// forgotten, so the next outage starts backing off from the base window
// again instead of inheriting the previous outage's escalation.
func TestTCPRedialBackoffResets(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	failsTo := func(to int) int {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		if b := tr.backoff[to]; b != nil {
			return b.fails
		}
		return 0
	}
	drain := func(node int) {
		for {
			select {
			case <-tr.Recv(node):
				continue
			default:
			}
			break
		}
	}

	// Establish the route, then take the peer down and let failed dials
	// escalate the backoff well past the base window.
	sendUntilDelivered(t, tr, Message{From: 0, To: 1, Val: 1}, 5*time.Second)
	if err := tr.StopNode(1); err != nil {
		t.Fatal(err)
	}
	for stop := time.After(10 * time.Second); failsTo(1) < 3; {
		_ = tr.Send(Message{From: 0, To: 1, Val: 2})
		select {
		case <-stop:
			t.Fatalf("backoff never escalated: fails=%d", failsTo(1))
		case <-time.After(2 * time.Millisecond):
		}
	}
	drain(1)

	// Reconnect. Delivery resuming means a dial succeeded, which must
	// clear the failure history entirely.
	if err := tr.StartNode(1); err != nil {
		t.Fatal(err)
	}
	sendUntilDelivered(t, tr, Message{From: 0, To: 1, Val: 3}, 5*time.Second)
	if n := failsTo(1); n != 0 {
		t.Fatalf("backoff state survived a successful reconnect: fails=%d", n)
	}

	// Second outage: the first failed dial must register as failure #1
	// (base window), not as a continuation of the previous outage.
	if err := tr.StopNode(1); err != nil {
		t.Fatal(err)
	}
	for stop := time.After(10 * time.Second); failsTo(1) == 0; {
		_ = tr.Send(Message{From: 0, To: 1, Val: 4})
		select {
		case <-stop:
			t.Fatal("second outage never produced a failed dial")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if n := failsTo(1); n != 1 {
		t.Fatalf("second outage started at fails=%d, want 1 (reset to base)", n)
	}
}
