package cluster

import (
	"math/rand"

	"repro/internal/cluster/store"
	"repro/internal/sim"
)

// Crash-recovery policy, in engine steps. Backoff doubles per
// consecutive rapid crash (one within crashLoopWindow of the previous)
// from crashBackoffBase up to crashBackoffMax, plus seeded jitter in
// [0, crashBackoffBase) so simultaneous crashes do not restart in
// lockstep. crashLoopCount rapid crashes flag a crash loop.
const (
	crashBackoffBase = 8
	crashBackoffMax  = 64
	crashLoopWindow  = 100
	crashLoopCount   = 3
)

// Recovery sources reported on "recovered" events.
const (
	RecoverFromSnapshot  = "snapshot"
	RecoverFromArbitrary = "arbitrary"
)

// supervisor is the per-episode restart policy: it tracks which nodes
// are down, schedules their restarts under exponential backoff with
// seeded jitter, detects crash loops, and recovers register state from
// the snapshot store when the snapshot validates — and from arbitrary
// state when it does not. The latter is deliberate: a failed checksum
// means the disk lied, and the paper's convergence guarantee makes an
// arbitrary resume safe where trusting corrupt state would not be.
//
// All randomness is drawn from the engine's seeded rng, and only on
// crash events, so runs without crash faults replay byte-identically.
type supervisor struct {
	proto sim.Protocol
	st    *store.Store
	rng   *rand.Rand
	mon   *Monitor

	downUntil []int // restart step per node; -1 = up
	consec    []int // consecutive rapid crashes
	lastCrash []int
	flagged   []bool // crash loop already reported for this burst
}

func newSupervisor(proto sim.Protocol, st *store.Store, rng *rand.Rand, mon *Monitor) *supervisor {
	procs := proto.Procs()
	s := &supervisor{
		proto:     proto,
		st:        st,
		rng:       rng,
		mon:       mon,
		downUntil: make([]int, procs),
		consec:    make([]int, procs),
		lastCrash: make([]int, procs),
		flagged:   make([]bool, procs),
	}
	for i := range s.downUntil {
		s.downUntil[i] = -1
		s.lastCrash[i] = -(crashLoopWindow + 1)
	}
	return s
}

// down reports whether node is currently crashed.
func (s *supervisor) down(node int) bool { return s.downUntil[node] >= 0 }

// crash records a crash fault at step: emits the crashed event,
// schedules the restart under backoff + jitter, and flags crash loops.
func (s *supervisor) crash(step int, f Fault) {
	node := f.Node
	if step-s.lastCrash[node] > crashLoopWindow {
		s.consec[node] = 0
		s.flagged[node] = false
	}
	s.consec[node]++
	s.lastCrash[node] = step
	s.mon.ObserveCrash(step, f)
	if s.consec[node] >= crashLoopCount && !s.flagged[node] {
		s.flagged[node] = true
		s.mon.ObserveCrashLoop(step, node, s.consec[node])
	}
	backoff := crashBackoffBase
	for i := 1; i < s.consec[node] && backoff < crashBackoffMax; i++ {
		backoff *= 2
	}
	if backoff > crashBackoffMax {
		backoff = crashBackoffMax
	}
	s.downUntil[node] = step + backoff + s.rng.Intn(crashBackoffBase)
}

// due returns the nodes whose backoff expires by step, in node order so
// the restart sequence is deterministic.
func (s *supervisor) due(step int) []int {
	var out []int
	for i, at := range s.downUntil {
		if at >= 0 && at <= step {
			out = append(out, i)
		}
	}
	return out
}

// restart marks node up again and recovers its register: the snapshot's
// value when the store has one that validates (checksum, identity,
// generation) and lies in the register domain, an arbitrary seeded
// value otherwise.
func (s *supervisor) restart(node int) (val int, from string) {
	s.downUntil[node] = -1
	if s.st != nil {
		if _, v, err := s.st.Load(node); err == nil && v >= 0 && v < s.proto.Domain(node) {
			return v, RecoverFromSnapshot
		}
	}
	return s.rng.Intn(s.proto.Domain(node)), RecoverFromArbitrary
}
