package cluster

// Event kind registry: the closed vocabulary of the monitor's event
// stream. Every Event.Kind in the runtime is one of these constants —
// the golden-pinned stream, the chaos judge, and external consumers
// all match on them, and gcvet's eventkind analyzer rejects inline
// literals so a typo cannot mint an unmatchable kind.
const (
	// KindStart opens every stream with the initial configuration.
	KindStart = "start"
	// KindMove records one executed protocol move (when enabled).
	KindMove = "move"
	// KindFault records an injected fault.
	KindFault = "fault"
	// KindHeal records the expiry of a partition or isolation cut.
	KindHeal = "heal"
	// KindCrashed records a node crash.
	KindCrashed = "crashed"
	// KindRecovered records a supervised restart completing.
	KindRecovered = "recovered"
	// KindCrashLoop flags repeated crashes within the supervisor's
	// detection window.
	KindCrashLoop = "crashloop"
	// KindDestabilized marks the view leaving the legitimate set.
	KindDestabilized = "destabilized"
	// KindStabilized marks the view re-entering the legitimate set.
	KindStabilized = "stabilized"
	// KindSnapshot is the periodic tokens-over-time sample.
	KindSnapshot = "snapshot"
	// KindFinish closes the stream.
	KindFinish = "finish"
)
