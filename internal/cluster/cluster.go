// Package cluster is the message-passing runtime: it executes any
// sim.Protocol as one actor goroutine per process, communicating only
// via neighbor-state messages over a pluggable Transport — no shared
// configuration, no central lock. Where internal/sim's Runner and
// LiveRing exercise the protocols under shared-memory daemons, cluster
// is the paper's fault model made operational: a FaultInjector applies
// seeded schedules of transient register corruption, message
// drop/duplicate/delay, node stall/restart, and link cuts
// (partition/isolate with timed heal), while an online
// Monitor detects legitimacy via global snapshots and emits structured
// convergence events (fault applied at step s, re-stabilized after k
// steps, tokens-over-time).
//
// Two execution engines share the same node actor:
//
//   - the stepped engine (in-proc ChanTransport): a seeded scheduler
//     activates one node at a time, so a run is a pure function of
//     (protocol, initial config, seed, schedule) — reproducible
//     byte-for-byte, which the golden tests pin;
//   - the free-running engine (TCPTransport): nodes drive themselves
//     concurrently over real sockets, with the Monitor observing the
//     move stream online. Runs converge but are not reproducible;
//     free-running episodes should execute under a context deadline.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/cluster/store"
	"repro/internal/sim"
)

// persistInterval resolves the snapshot interval: every step unless the
// options say otherwise.
func persistInterval(opts Options) int {
	if opts.PersistEvery > 0 {
		return opts.PersistEvery
	}
	return 1
}

// Options configures one cluster episode.
type Options struct {
	// Proto is the ring protocol to execute (required).
	Proto sim.Protocol
	// Transport connects the nodes; nil means a fresh in-proc
	// ChanTransport (owned and closed by Run).
	Transport Transport
	// Seed drives the stepped scheduler, the per-node move choices,
	// and random corruption values.
	Seed int64
	// MaxSteps bounds the episode: scheduler activations under the
	// stepped engine, collector clock ticks (moves plus idle heartbeats)
	// under the free-running engine (required, > 0).
	MaxSteps int
	// Schedule is the fault schedule (see ParseSchedule), applied at
	// the step each fault names.
	Schedule []Fault
	// SnapshotEvery emits a periodic tokens-over-time snapshot event
	// every so many steps (0 = none).
	SnapshotEvery int
	// RecordMoves adds one event per executed move to the stream.
	RecordMoves bool
	// RefreshEvery triggers a periodic anti-entropy round every so many
	// steps (0 = none): each node re-announces its register and probes
	// its neighbors, repairing views staled by lost messages. Partition
	// heals always trigger one round regardless of this setting.
	RefreshEvery int
	// StopWhenStable ends the episode once the Monitor's view is
	// legitimate, no scheduled faults remain, and no partition is still
	// open, instead of running the full budget. A crashed node keeps the
	// view illegitimate, so the episode always runs through recovery.
	StopWhenStable bool
	// Store, when non-nil, persists each live node's register as a
	// checksummed snapshot every PersistEvery steps (generation = step).
	// Crash faults recover from it: a validating snapshot restores the
	// register, a failed validation resumes from arbitrary state.
	Store *store.Store
	// PersistEvery is the snapshot interval in steps; ≤ 0 means every
	// step when Store is set.
	PersistEvery int
}

// Result summarizes one cluster episode.
type Result struct {
	// Protocol and Transport identify the run.
	Protocol  string `json:"protocol"`
	Transport string `json:"transport"`
	Procs     int    `json:"procs"`
	Seed      int64  `json:"seed"`
	// Steps is the number of scheduler steps consumed (stepped) or
	// collector clock ticks elapsed (free-running).
	Steps int `json:"steps"`
	// Moves is the total number of protocol moves executed.
	Moves int `json:"moves"`
	// Converged reports whether the Monitor's view was legitimate when
	// the episode ended.
	Converged bool `json:"converged"`
	// Final is the Monitor's view at stop time.
	Final []int `json:"final"`
	// Stabilizations are the completed convergence episodes: perturbed
	// start to first legitimacy, and each fault to re-stabilization.
	Stabilizations []Stabilization `json:"stabilizations,omitempty"`
	// MovesPerNode counts executed moves per process.
	MovesPerNode []int `json:"moves_per_node"`
	// Links reports per-link message statistics, including fault-layer
	// drops, duplicates, and delays.
	Links []LinkStats `json:"links,omitempty"`
	// Events is the Monitor's structured convergence event stream.
	Events []Event `json:"events"`
	// Storage reports the snapshot store's counters when persistence was
	// on: saves, validated restores, and what validation caught.
	Storage *store.Stats `json:"storage,omitempty"`

	viewTrace []int
}

// ViewTrace returns the Monitor's recorded view sequence as encoded
// states (mixed-radix over the register domains; nil when the state
// space is too large). The sequence relations of internal/trace —
// Destutter, IsSubsequence, ConvergenceIsomorphic — apply directly.
func (r *Result) ViewTrace() []int { return r.viewTrace }

// nodeSeed derives a per-node RNG seed so move choices are independent
// of the scheduler's stream.
func nodeSeed(seed int64, i int) int64 { return seed*1_000_003 + int64(i)*7919 + 1 }

// Run executes one cluster episode from the initial configuration.
// With a stepped transport (in-proc channels) the run is deterministic
// for a fixed seed; otherwise nodes free-run and the context's
// deadline bounds the wall clock.
func Run(ctx context.Context, opts Options, initial sim.Config) (*Result, error) {
	if opts.Proto == nil {
		return nil, fmt.Errorf("cluster: Options.Proto is required")
	}
	if opts.MaxSteps <= 0 {
		return nil, fmt.Errorf("cluster: MaxSteps must be positive, got %d", opts.MaxSteps)
	}
	if err := sim.Validate(opts.Proto, initial); err != nil {
		return nil, err
	}
	if err := ValidateSchedule(opts.Proto, opts.Schedule); err != nil {
		return nil, err
	}
	procs := opts.Proto.Procs()
	tr := opts.Transport
	owned := false
	if tr == nil {
		tr = NewChanTransport(procs)
		owned = true
	}
	if tr.Procs() != procs {
		return nil, fmt.Errorf("cluster: transport connects %d nodes, protocol %q has %d",
			tr.Procs(), opts.Proto.Name(), procs)
	}
	if owned {
		defer tr.Close()
	}
	inj := newInjector(tr)
	if _, ok := tr.(stepped); ok {
		return runStepped(ctx, opts, inj, initial)
	}
	return runFree(ctx, opts, inj, initial)
}

// heal is a pending partition/isolation expiry: at step `at` the cut is
// gone and the engine emits the heal event plus an anti-entropy round.
type heal struct {
	at int
	f  Fault
}

// sortedSchedule clones and sorts the schedule by step, preserving
// entry order within a step.
func sortedSchedule(schedule []Fault) []Fault {
	out := append([]Fault(nil), schedule...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// runStepped is the deterministic engine: a seeded scheduler activates
// one node per step; every channel interaction is serialized through
// the engine goroutine, so the run replays exactly.
func runStepped(ctx context.Context, opts Options, inj *injector, initial sim.Config) (*Result, error) {
	proto := opts.Proto
	procs := proto.Procs()
	rng := rand.New(rand.NewSource(opts.Seed))

	nodes := make([]*node, procs)
	for i := range nodes {
		nodes[i] = newNode(i, proto, inj, nodeSeed(opts.Seed, i), initial[i])
	}
	runCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			n.steppedLoop(runCtx)
		}(n)
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	// ask serializes one command round-trip with a node actor. The
	// not-ok return covers parent-context cancellation, where the actor
	// may exit without replying.
	ask := func(n *node, c command) (stepReport, bool) {
		c.reply = make(chan stepReport, 1)
		select {
		case n.cmds <- c:
		case <-runCtx.Done():
			return stepReport{}, false
		}
		select {
		case rep := <-c.reply:
			return rep, true
		case <-runCtx.Done():
			return stepReport{}, false
		}
	}
	// Initial announcements, node by node, so even message arrival
	// order is deterministic.
	for _, n := range nodes {
		if _, ok := ask(n, command{kind: cmdInit}); !ok {
			return nil, ctx.Err()
		}
	}

	mon := newMonitor(proto, initial, opts.RecordMoves)
	sup := newSupervisor(proto, opts.Store, rng, mon)
	persistEvery := persistInterval(opts)
	pending := sortedSchedule(opts.Schedule)
	var heals []heal
	stalledUntil := make([]int, procs)
	movesPerNode := make([]int, procs)
	moves, lastStep := 0, 0

	// refresh runs one anti-entropy round, node by node so message
	// arrival order stays deterministic.
	refresh := func() bool {
		for _, n := range nodes {
			if _, ok := ask(n, command{kind: cmdRefresh}); !ok {
				return false
			}
		}
		return true
	}

	for step := 1; step <= opts.MaxSteps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lastStep = step
		inj.advance(step)
		for len(pending) > 0 && pending[0].Step <= step {
			f := pending[0]
			pending = pending[1:]
			switch f.Kind {
			case FaultCorrupt:
				if f.Val < 0 {
					f.Val = rng.Intn(proto.Domain(f.Node))
				}
				if _, ok := ask(nodes[f.Node], command{kind: cmdCorrupt, val: f.Val}); !ok {
					return nil, ctx.Err()
				}
				mon.ObserveFault(step, f, f.Val)
			case FaultRestart:
				if _, ok := ask(nodes[f.Node], command{kind: cmdRestart}); !ok {
					return nil, ctx.Err()
				}
				mon.ObserveFault(step, f, 0)
			case FaultCrash:
				if _, ok := ask(nodes[f.Node], command{kind: cmdCrash}); !ok {
					return nil, ctx.Err()
				}
				sup.crash(step, f)
			case FaultStall:
				stalledUntil[f.Node] = step + f.Count
				mon.ObserveFault(step, f, 0)
			case FaultPartition, FaultIsolate:
				inj.arm(f)
				heals = append(heals, heal{at: step + f.Count, f: f})
				mon.ObserveFault(step, f, 0)
			default: // drop | dup | delay
				inj.arm(f)
				mon.ObserveFault(step, f, 0)
			}
		}
		healed := false
		keep := heals[:0]
		for _, h := range heals {
			if h.at <= step {
				mon.ObserveHeal(step, h.f)
				healed = true
			} else {
				keep = append(keep, h)
			}
		}
		heals = keep
		if healed || (opts.RefreshEvery > 0 && step%opts.RefreshEvery == 0) {
			if !refresh() {
				return nil, ctx.Err()
			}
		}
		for _, nd := range sup.due(step) {
			val, from := sup.restart(nd)
			if _, ok := ask(nodes[nd], command{kind: cmdRestore, val: val}); !ok {
				return nil, ctx.Err()
			}
			mon.ObserveRecovered(step, nd, val, from)
		}
		var runnable []int
		for i := range nodes {
			if stalledUntil[i] <= step && !sup.down(i) {
				runnable = append(runnable, i)
			}
		}
		if len(runnable) > 0 {
			pick := runnable[rng.Intn(len(runnable))]
			rep, ok := ask(nodes[pick], command{kind: cmdStep})
			if !ok {
				return nil, ctx.Err()
			}
			if rep.Moved {
				moves++
				movesPerNode[pick]++
				mon.ObserveMove(step, pick, rep.Rule, rep.Val)
			}
		}
		if opts.Store != nil && step%persistEvery == 0 {
			for i := 0; i < procs; i++ {
				if !sup.down(i) {
					_ = opts.Store.Save(i, uint64(step), mon.view[i])
				}
			}
		}
		if opts.SnapshotEvery > 0 && step%opts.SnapshotEvery == 0 {
			mon.Snapshot(step)
		}
		if opts.StopWhenStable && mon.Legitimate() && len(pending) == 0 && len(heals) == 0 {
			break
		}
	}
	mon.Finish(lastStep)
	return assemble(opts, inj, mon, lastStep, moves, movesPerNode), nil
}

func assemble(opts Options, inj *injector, mon *Monitor, steps, moves int, movesPerNode []int) *Result {
	var storage *store.Stats
	if opts.Store != nil {
		st := opts.Store.Stats()
		storage = &st
	}
	return &Result{
		Protocol:       opts.Proto.Name(),
		Transport:      inj.Name(),
		Procs:          opts.Proto.Procs(),
		Seed:           opts.Seed,
		Steps:          steps,
		Moves:          moves,
		Converged:      mon.Legitimate(),
		Final:          mon.View(),
		Stabilizations: mon.Stabilizations(),
		MovesPerNode:   movesPerNode,
		Links:          inj.linkStats(),
		Events:         mon.Events(),
		Storage:        storage,
		viewTrace:      mon.ViewTrace(),
	}
}
