package cluster

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// cmdKind enumerates the control commands an engine can send a node.
type cmdKind int

const (
	// cmdInit makes the node announce its initial register value.
	cmdInit cmdKind = iota
	// cmdStep runs one activation: drain inbox, re-announce if the
	// register changed behind the protocol's back, attempt one move.
	cmdStep
	// cmdCorrupt overwrites the register (transient state corruption).
	cmdCorrupt
	// cmdRestart resets the node to its boot state.
	cmdRestart
	// cmdStall pauses autonomous moves (free-running engine).
	cmdStall
	// cmdResume lifts a stall.
	cmdResume
	// cmdRefresh is one anti-entropy round: re-announce the register
	// unconditionally and probe both neighbors. Engines trigger it when a
	// partition heals (and optionally on a period), because messages lost
	// to a cut are never re-sent by the announce-on-change discipline.
	cmdRefresh
	// cmdCrash kills the process: it stops moving, stops speaking, and
	// loses every message delivered while down. Only cmdRestore revives
	// it.
	cmdCrash
	// cmdRestore revives a crashed process with the register value the
	// supervisor recovered (from a validated snapshot, or arbitrary when
	// validation failed). Messages queued during the downtime are
	// discarded — the crashed process never saw them.
	cmdRestore
)

// command is one control message from engine to node actor.
type command struct {
	kind  cmdKind
	val   int // cmdCorrupt: the value to write
	reply chan stepReport
}

// stepReport is the node's answer to a command.
type stepReport struct {
	Moved bool
	Rule  string
	// Val is the node's register value after the command.
	Val int
}

// moveReport is what a free-running node tells the collector after
// each executed move.
type moveReport struct {
	Node int
	Rule string
	Val  int
}

// node is one actor: a process of the ring protocol owning exactly its
// register, knowing its neighbors only through received Messages. Both
// engines use the same actor; they differ in who drives the loop.
type node struct {
	id    int
	procs int
	proto sim.Protocol
	tr    Transport
	rng   *rand.Rand

	leftID, rightID     int
	val                 int
	leftVal, rightVal   int
	haveLeft, haveRight bool
	lastSent            int // last announced value; -1 = never announced
	seq                 int
	moves               int
	stalled             bool
	down                bool // crashed: ignores everything except cmdRestore

	cmds    chan command
	reports chan moveReport // free-running engine only
}

func newNode(id int, proto sim.Protocol, tr Transport, seed int64, initial int) *node {
	procs := proto.Procs()
	return &node{
		id:       id,
		procs:    procs,
		proto:    proto,
		tr:       tr,
		rng:      rand.New(rand.NewSource(seed)),
		leftID:   (id - 1 + procs) % procs,
		rightID:  (id + 1) % procs,
		val:      initial,
		lastSent: -1,
		cmds:     make(chan command, 16),
	}
}

// sendState announces the node's current value to one neighbor.
func (n *node) sendState(to int) {
	n.seq++
	_ = n.tr.Send(Message{From: n.id, To: to, Val: n.val, Seq: n.seq})
}

// announce tells both neighbors the current value, if it changed since
// the last announcement. Corruption changes the register without a
// move, so this is checked on every activation, not only after moves —
// the register *is* the communicated state.
func (n *node) announce() {
	if n.val == n.lastSent {
		return
	}
	n.lastSent = n.val
	n.sendState(n.leftID)
	n.sendState(n.rightID)
}

// probe asks both neighbors to re-announce; used after a restart,
// because neighbors only announce on change.
func (n *node) probe() {
	n.seq++
	_ = n.tr.Send(Message{From: n.id, To: n.leftID, Seq: n.seq, Probe: true})
	n.seq++
	_ = n.tr.Send(Message{From: n.id, To: n.rightID, Seq: n.seq, Probe: true})
}

// apply folds one received message into the neighbor views.
func (n *node) apply(m Message) {
	if m.Probe {
		n.sendState(m.From)
		return
	}
	switch m.From {
	case n.leftID:
		n.leftVal, n.haveLeft = m.Val, true
	case n.rightID:
		n.rightVal, n.haveRight = m.Val, true
	}
}

// drain applies every pending message without blocking.
func (n *node) drain() {
	for {
		select {
		case m := <-n.tr.Recv(n.id):
			n.apply(m)
		default:
			return
		}
	}
}

// drainDiscard throws away every pending message: a restoring process
// never saw what was delivered while it was down.
func (n *node) drainDiscard() {
	for {
		select {
		case <-n.tr.Recv(n.id):
		default:
			return
		}
	}
}

// tryMove attempts one protocol move against the current views.
func (n *node) tryMove() (moved bool, rule string) {
	if !n.haveLeft || !n.haveRight {
		return false, ""
	}
	moves := n.proto.Moves(n.id, n.leftVal, n.val, n.rightVal)
	if len(moves) == 0 {
		return false, ""
	}
	m := moves[n.rng.Intn(len(moves))]
	n.val = m.NewVal
	n.moves++
	n.announce()
	return true, m.Rule
}

// handle executes one engine command and returns the report.
func (n *node) handle(c command) stepReport {
	if n.down && c.kind != cmdRestore {
		return stepReport{Val: n.val}
	}
	switch c.kind {
	case cmdInit:
		n.announce()
	case cmdStep:
		n.drain()
		n.announce() // covers register corruption since the last step
		if !n.stalled {
			if moved, rule := n.tryMove(); moved {
				return stepReport{Moved: true, Rule: rule, Val: n.val}
			}
		}
	case cmdCorrupt:
		n.val = c.val
	case cmdRestart:
		n.val = 0
		n.haveLeft, n.haveRight = false, false
		n.lastSent = -1
		n.announce()
		n.probe()
	case cmdStall:
		n.stalled = true
	case cmdResume:
		n.stalled = false
	case cmdRefresh:
		n.drain()
		n.lastSent = -1
		n.announce()
		n.probe()
	case cmdCrash:
		n.down = true
	case cmdRestore:
		n.drainDiscard()
		n.val = c.val
		n.haveLeft, n.haveRight = false, false
		n.lastSent = -1
		n.down = false
		n.announce()
		n.probe()
	}
	return stepReport{Val: n.val}
}

// steppedLoop is the actor body under the deterministic engine: the
// node acts only when commanded, so the engine's seeded choices fully
// determine the run.
func (n *node) steppedLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case c, ok := <-n.cmds:
			if !ok {
				return
			}
			rep := n.handle(c)
			if c.reply != nil {
				c.reply <- rep
			}
		}
	}
}

// freeIdle is how long a free-running node sleeps when it had nothing
// to do — no pending message and no enabled move — before looking
// again. Keeps disabled nodes from spinning a core each.
const freeIdle = 100 * time.Microsecond

// freeLoop is the actor body under the free-running engine: the node
// drives itself, interleaving message handling, engine commands, and
// autonomous moves. Every executed move is reported to the collector.
func (n *node) freeLoop(ctx context.Context) {
	n.announce()
	for {
		select {
		case <-ctx.Done():
			return
		case c, ok := <-n.cmds:
			if !ok {
				return
			}
			rep := n.handle(c)
			if c.reply != nil {
				select {
				case c.reply <- rep:
				case <-ctx.Done():
					return
				}
			}
		case m := <-n.tr.Recv(n.id):
			if !n.down {
				n.apply(m)
			}
		default:
			if n.down {
				time.Sleep(freeIdle)
				continue
			}
			n.announce() // a corrupt command may have changed the register
			moved := false
			var rule string
			if !n.stalled {
				moved, rule = n.tryMove()
			}
			if moved {
				select {
				case n.reports <- moveReport{Node: n.id, Rule: rule, Val: n.val}:
				case <-ctx.Done():
					return
				}
			} else {
				time.Sleep(freeIdle)
			}
		}
	}
}
