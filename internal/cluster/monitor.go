package cluster

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Event is one structured convergence event from the online Monitor.
// The stream is the runtime's observable story of a run: faults as
// they are applied, legitimacy transitions as the global snapshot view
// crosses the legitimate region's boundary, and periodic token-count
// snapshots (tokens-over-time).
type Event struct {
	// Step is the scheduler step the event was observed at.
	Step int `json:"step"`
	// Kind is one of "start", "move", "fault", "heal", "crashed",
	// "recovered", "crashloop", "destabilized", "stabilized",
	// "snapshot", "finish".
	Kind string `json:"kind"`
	// Node is the process a move/fault targets; -1 on events that are
	// not node-specific (kept explicit so node 0 is unambiguous).
	Node int `json:"node"`
	// Rule names the guarded command behind a move event.
	Rule string `json:"rule,omitempty"`
	// Fault renders the applied fault in schedule syntax.
	Fault string `json:"fault,omitempty"`
	// Tokens is the privilege count of the monitor's view.
	Tokens int `json:"tokens"`
	// Config is the monitor's view, included on start / snapshot /
	// stabilized / finish events.
	Config []int `json:"config,omitempty"`
	// After is the number of steps between losing and regaining
	// legitimacy (stabilized events only).
	After int `json:"after,omitempty"`
	// From names the recovery source on recovered events: "snapshot"
	// when the persisted state validated, "arbitrary" when it did not
	// and the node resumed from an arbitrary register value.
	From string `json:"from,omitempty"`
}

// Stabilization records one convergence episode: the view left the
// legitimate region at BrokenAt (0 for a perturbed start) and returned
// to it at StableAt.
type Stabilization struct {
	BrokenAt int `json:"broken_at"`
	StableAt int `json:"stable_at"`
	Steps    int `json:"steps"`
}

// Monitor watches a cluster run online. It maintains a global snapshot
// view of the true register values (fed by the engines from move
// reports and applied state faults — not from the lossy messages), and
// emits structured convergence events. It also records the view
// sequence in a trace.Recorder so runs can be classified with the
// sequence relations of internal/trace.
//
// Monitor is not goroutine-safe; the stepped engine calls it from the
// scheduler loop and the free-running engine from its single collector
// goroutine.
type Monitor struct {
	proto       sim.Protocol
	view        sim.Config
	legit       bool
	brokenAt    int
	crashed     map[int]bool
	events      []Event
	stabs       []Stabilization
	recordMoves bool

	rec    trace.Recorder
	radix  []int
	encode bool // state space small enough to encode into ints
}

// newMonitor starts monitoring from the initial configuration,
// emitting the "start" event.
func newMonitor(p sim.Protocol, initial sim.Config, recordMoves bool) *Monitor {
	m := &Monitor{proto: p, view: initial.Clone(), crashed: make(map[int]bool), recordMoves: recordMoves}
	m.radix = make([]int, p.Procs())
	size := 1
	m.encode = true
	for i := range m.radix {
		m.radix[i] = p.Domain(i)
		if size > (1<<31)/m.radix[i] {
			m.encode = false
		} else {
			size *= m.radix[i]
		}
	}
	m.legit = p.Legitimate(m.view)
	m.observeState()
	ev := Event{Step: 0, Kind: KindStart, Node: -1, Tokens: sim.TokenCount(p, m.view), Config: m.view.Clone()}
	m.events = append(m.events, ev)
	return m
}

// observeState records the current view in the trace recorder.
func (m *Monitor) observeState() {
	if !m.encode {
		return
	}
	s := 0
	for i, v := range m.view {
		s = s*m.radix[i] + v
	}
	m.rec.Observe(s)
}

// checkTransition emits destabilized/stabilized events when the view
// crosses the legitimacy boundary. A ring with a crashed node is never
// legitimate — a dead process holds no register and serves no
// privilege — so a stabilization that spans a crash includes the full
// downtime (backoff, restart, and state replay) in its step count.
func (m *Monitor) checkTransition(step int) {
	now := m.proto.Legitimate(m.view) && len(m.crashed) == 0
	tokens := sim.TokenCount(m.proto, m.view)
	switch {
	case now && !m.legit:
		m.legit = true
		stab := Stabilization{BrokenAt: m.brokenAt, StableAt: step, Steps: step - m.brokenAt}
		m.stabs = append(m.stabs, stab)
		m.events = append(m.events, Event{Step: step, Kind: KindStabilized, Node: -1,
			Tokens: tokens, Config: m.view.Clone(), After: stab.Steps})
	case !now && m.legit:
		m.legit = false
		m.brokenAt = step
		m.events = append(m.events, Event{Step: step, Kind: KindDestabilized, Node: -1, Tokens: tokens})
	}
}

// ObserveMove folds one executed move into the view.
func (m *Monitor) ObserveMove(step, node int, rule string, val int) {
	m.view[node] = val
	m.observeState()
	if m.recordMoves {
		m.events = append(m.events, Event{Step: step, Kind: KindMove, Node: node, Rule: rule,
			Tokens: sim.TokenCount(m.proto, m.view)})
	}
	m.checkTransition(step)
}

// ObserveFault records an applied fault. For state faults (corrupt,
// restart) val is the register value the fault wrote and the view is
// updated; link and stall faults leave the view untouched.
func (m *Monitor) ObserveFault(step int, f Fault, val int) {
	switch f.Kind {
	case FaultCorrupt, FaultRestart:
		if !m.crashed[f.Node] { // state faults on a dead process hit nothing
			m.view[f.Node] = val
			m.observeState()
		}
	}
	m.events = append(m.events, Event{Step: step, Kind: KindFault, Node: f.Node, Fault: f.String(),
		Tokens: sim.TokenCount(m.proto, m.view)})
	m.checkTransition(step)
}

// ObserveHeal records the expiry of a partition or isolation: the cut
// is gone and messages flow again. The view is untouched — healing
// restores communication, not state.
func (m *Monitor) ObserveHeal(step int, f Fault) {
	m.events = append(m.events, Event{Step: step, Kind: KindHeal, Node: healNode(f), Fault: f.String(),
		Tokens: sim.TokenCount(m.proto, m.view)})
}

// healNode mirrors the fault event's node attribution: isolate names
// its node, a partition is not node-specific.
func healNode(f Fault) int {
	if f.Kind == FaultIsolate {
		return f.Node
	}
	return -1
}

// ObserveCrash records a node crash. The node joins the crashed set,
// which forces the view illegitimate until every node is back up.
func (m *Monitor) ObserveCrash(step int, f Fault) {
	m.crashed[f.Node] = true
	m.events = append(m.events, Event{Step: step, Kind: KindCrashed, Node: f.Node, Fault: f.String(),
		Tokens: sim.TokenCount(m.proto, m.view)})
	m.checkTransition(step)
}

// ObserveRecovered records a supervised restart: the node is back up
// with register val, recovered From "snapshot" (persisted state
// validated) or "arbitrary" (validation failed; the restart is an
// in-model transient perturbation the protocol must converge from).
func (m *Monitor) ObserveRecovered(step, node, val int, from string) {
	delete(m.crashed, node)
	m.view[node] = val
	m.observeState()
	m.events = append(m.events, Event{Step: step, Kind: KindRecovered, Node: node, From: from,
		Tokens: sim.TokenCount(m.proto, m.view)})
	m.checkTransition(step)
}

// ObserveCrashLoop flags a node crashing repeatedly within the
// supervisor's detection window.
func (m *Monitor) ObserveCrashLoop(step, node, count int) {
	m.events = append(m.events, Event{Step: step, Kind: KindCrashLoop, Node: node,
		Fault:  fmt.Sprintf("%d crashes within %d steps", count, crashLoopWindow),
		Tokens: sim.TokenCount(m.proto, m.view)})
}

// Snapshot emits a periodic tokens-over-time event.
func (m *Monitor) Snapshot(step int) {
	m.events = append(m.events, Event{Step: step, Kind: KindSnapshot, Node: -1,
		Tokens: sim.TokenCount(m.proto, m.view), Config: m.view.Clone()})
}

// Finish closes the stream.
func (m *Monitor) Finish(step int) {
	m.events = append(m.events, Event{Step: step, Kind: KindFinish, Node: -1,
		Tokens: sim.TokenCount(m.proto, m.view), Config: m.view.Clone()})
}

// Legitimate reports whether the current view is in the legitimate
// region.
func (m *Monitor) Legitimate() bool { return m.legit }

// Events returns the event stream recorded so far.
func (m *Monitor) Events() []Event { return m.events }

// Stabilizations returns the completed convergence episodes.
func (m *Monitor) Stabilizations() []Stabilization { return m.stabs }

// View returns a copy of the monitor's global snapshot view.
func (m *Monitor) View() sim.Config { return m.view.Clone() }

// ViewTrace returns the recorded view sequence as encoded states
// (mixed-radix over the register domains), or nil when the state space
// is too large to encode. trace.Destutter and the other relations of
// internal/trace apply directly.
func (m *Monitor) ViewTrace() []int {
	if !m.encode {
		return nil
	}
	return m.rec.Seq()
}
