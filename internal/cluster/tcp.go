package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFrameBytes bounds one wire frame; state messages are tiny, so
// anything larger is a corrupt or hostile peer.
const maxFrameBytes = 1 << 16

// TCPTransport connects the ring over real sockets: one net.Listener
// per node on 127.0.0.1, length-prefixed JSON frames, lazily dialed
// persistent outbound connections. Nodes sharing this process is a
// convenience for tests — the wire protocol carries everything, so the
// same frames would cross OS processes (or hosts) unchanged.
//
// TCP delivery crosses socket buffers and reader goroutines, so the
// transport is not stepped: episodes over it free-run.
type TCPTransport struct {
	listeners []net.Listener
	addrs     []string
	inboxes   []chan Message

	mu    sync.Mutex
	conns map[int]*outConn
	done  chan struct{}
	wg    sync.WaitGroup
}

// outConn is one outbound connection with its write lock (several
// nodes in this process may share the path to one destination).
type outConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCPTransport listens on procs loopback ports and starts the
// accept/reader goroutines. Close releases everything.
func NewTCPTransport(procs int) (*TCPTransport, error) {
	t := &TCPTransport{
		listeners: make([]net.Listener, procs),
		addrs:     make([]string, procs),
		inboxes:   make([]chan Message, procs),
		conns:     make(map[int]*outConn),
		done:      make(chan struct{}),
	}
	for i := 0; i < procs; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("cluster: listen for node %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.inboxes[i] = make(chan Message, chanInboxDepth)
		t.wg.Add(1)
		go t.accept(i, ln)
	}
	return t, nil
}

// Name implements Transport.
func (t *TCPTransport) Name() string { return "tcp" }

// Procs implements Transport.
func (t *TCPTransport) Procs() int { return len(t.inboxes) }

// Addr returns the listen address of node i (useful for logs and for
// wiring rings that span processes).
func (t *TCPTransport) Addr(i int) string { return t.addrs[i] }

// Recv implements Transport.
func (t *TCPTransport) Recv(node int) <-chan Message { return t.inboxes[node] }

// accept runs one node's listener.
func (t *TCPTransport) accept(node int, ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(node, c)
	}
}

// readLoop decodes frames from one inbound connection into the node's
// inbox. A full inbox drops the frame — the lossy-fabric contract.
func (t *TCPTransport) readLoop(node int, c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameBytes {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		var m Message
		if err := json.Unmarshal(buf, &m); err != nil {
			return
		}
		select {
		case t.inboxes[node] <- m:
		case <-t.done:
			return
		default:
		}
	}
}

// conn returns (dialing if needed) the outbound connection to node to.
func (t *TCPTransport) conn(to int) (*outConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if oc, ok := t.conns[to]; ok {
		return oc, nil
	}
	select {
	case <-t.done:
		return nil, fmt.Errorf("cluster: transport closed")
	default:
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, err
	}
	oc := &outConn{c: c}
	t.conns[to] = oc
	return oc, nil
}

// Send implements Transport: marshal, frame, write. A failed write
// tears the connection down so the next Send redials; the message is
// lost, which the protocols tolerate.
func (t *TCPTransport) Send(m Message) error {
	if m.To < 0 || m.To >= len(t.addrs) {
		return fmt.Errorf("cluster: send to node %d of %d", m.To, len(t.addrs))
	}
	oc, err := t.conn(m.To)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	oc.mu.Lock()
	_, werr := oc.c.Write(frame)
	oc.mu.Unlock()
	if werr != nil {
		t.mu.Lock()
		if t.conns[m.To] == oc {
			delete(t.conns, m.To)
		}
		t.mu.Unlock()
		_ = oc.c.Close()
	}
	return werr
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	select {
	case <-t.done:
		t.mu.Unlock()
		return nil
	default:
		close(t.done)
	}
	conns := t.conns
	t.conns = map[int]*outConn{}
	t.mu.Unlock()
	for _, ln := range t.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	for _, oc := range conns {
		_ = oc.c.Close()
	}
	t.wg.Wait()
	return nil
}
