package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// maxFrameBytes bounds one wire frame; state messages are tiny, so
// anything larger is a corrupt or hostile peer.
const maxFrameBytes = 1 << 16

// Dial backoff bounds: after a failed dial the transport refuses to
// redial the same destination until a backoff window (exponential in
// the consecutive-failure count, with jitter so a restarted peer is not
// hit by a synchronized thundering herd) has passed. Sends inside the
// window fail fast — the lossy-fabric contract — instead of burning a
// dial timeout per message.
const (
	dialBackoffBase = 5 * time.Millisecond
	dialBackoffMax  = 500 * time.Millisecond
)

// TCPTransport connects the ring over real sockets: one net.Listener
// per node on 127.0.0.1, length-prefixed JSON frames, lazily dialed
// persistent outbound connections. Nodes sharing this process is a
// convenience for tests — the wire protocol carries everything, so the
// same frames would cross OS processes (or hosts) unchanged.
//
// The transport is self-healing: a failed write evicts the cached
// outbound connection so the next Send redials, failed dials back off
// exponentially with jitter, and a peer whose listener restarts
// (StopNode/StartNode) is re-reached automatically. Messages in flight
// during a failure are lost — the protocols under test tolerate that.
//
// TCP delivery crosses socket buffers and reader goroutines, so the
// transport is not stepped: episodes over it free-run.
type TCPTransport struct {
	addrs   []string
	inboxes []chan Message

	mu        sync.Mutex
	listeners []net.Listener
	inConns   map[int]map[net.Conn]bool // established inbound conns per node
	conns     map[int]*outConn
	backoff   map[int]*dialBackoff
	rng       *rand.Rand // jitter; guarded by mu
	done      chan struct{}
	wg        sync.WaitGroup
}

// outConn is one outbound connection with its write lock (several
// nodes in this process may share the path to one destination).
type outConn struct {
	mu sync.Mutex
	c  net.Conn
}

// dialBackoff tracks consecutive dial failures to one destination.
type dialBackoff struct {
	fails int
	until time.Time
}

// NewTCPTransport listens on procs loopback ports and starts the
// accept/reader goroutines. Close releases everything.
func NewTCPTransport(procs int) (*TCPTransport, error) {
	t := &TCPTransport{
		listeners: make([]net.Listener, procs),
		addrs:     make([]string, procs),
		inboxes:   make([]chan Message, procs),
		inConns:   make(map[int]map[net.Conn]bool),
		conns:     make(map[int]*outConn),
		backoff:   make(map[int]*dialBackoff),
		// Backoff jitter needs decorrelation, not entropy: a fixed seed
		// keeps redial schedules a pure function of the dial-failure
		// sequence, so transport behavior is reproducible under test.
		rng:  rand.New(rand.NewSource(0x9e3779b9)),
		done: make(chan struct{}),
	}
	for i := 0; i < procs; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("cluster: listen for node %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.inboxes[i] = make(chan Message, chanInboxDepth)
		t.wg.Add(1)
		go t.accept(i, ln)
	}
	return t, nil
}

// Name implements Transport.
func (t *TCPTransport) Name() string { return "tcp" }

// Procs implements Transport.
func (t *TCPTransport) Procs() int { return len(t.inboxes) }

// Addr returns the listen address of node i (useful for logs and for
// wiring rings that span processes).
func (t *TCPTransport) Addr(i int) string { return t.addrs[i] }

// Recv implements Transport.
func (t *TCPTransport) Recv(node int) <-chan Message { return t.inboxes[node] }

// accept runs one node's listener.
func (t *TCPTransport) accept(node int, ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		select {
		case <-t.done:
			t.mu.Unlock()
			_ = c.Close()
			return
		default:
		}
		if t.inConns[node] == nil {
			t.inConns[node] = make(map[net.Conn]bool)
		}
		t.inConns[node][c] = true
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(node, c)
	}
}

// readLoop decodes frames from one inbound connection into the node's
// inbox. A full inbox drops the frame — the lossy-fabric contract. Any
// malformed frame (oversized, truncated, non-JSON) closes the
// connection and ends the loop: a hostile or corrupt peer costs its
// connection, never a wedged node or a leaked goroutine.
func (t *TCPTransport) readLoop(node int, c net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = c.Close()
		t.mu.Lock()
		delete(t.inConns[node], c)
		t.mu.Unlock()
	}()
	for {
		var m Message
		if err := ReadFrame(c, maxFrameBytes, &m); err != nil {
			return
		}
		select {
		case t.inboxes[node] <- m:
		case <-t.done:
			return
		default:
		}
	}
}

// conn returns (dialing if needed) the outbound connection to node to,
// honoring the destination's dial-backoff window.
func (t *TCPTransport) conn(to int) (*outConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if oc, ok := t.conns[to]; ok {
		return oc, nil
	}
	select {
	case <-t.done:
		return nil, fmt.Errorf("cluster: transport closed")
	default:
	}
	//gcvet:detrand-ok the free-running TCP transport backs off in real time; there is no step clock here
	if b := t.backoff[to]; b != nil && time.Now().Before(b.until) {
		return nil, fmt.Errorf("cluster: dial to node %d backing off after %d failures", to, b.fails)
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		b := t.backoff[to]
		if b == nil {
			b = &dialBackoff{}
			t.backoff[to] = b
		}
		b.fails++
		d := dialBackoffBase << uint(min(b.fails-1, 20))
		if d > dialBackoffMax {
			d = dialBackoffMax
		}
		// Jitter in [0.5d, 1.5d).
		d = d/2 + time.Duration(t.rng.Int63n(int64(d)))
		b.until = time.Now().Add(d) //gcvet:detrand-ok real-time backoff deadline on the free-running transport
		return nil, err
	}
	delete(t.backoff, to)
	oc := &outConn{c: c}
	t.conns[to] = oc
	return oc, nil
}

// Send implements Transport: marshal, frame, write. A failed write
// tears the connection down so the next Send redials; the message is
// lost, which the protocols tolerate.
func (t *TCPTransport) Send(m Message) error {
	if m.To < 0 || m.To >= len(t.addrs) {
		return fmt.Errorf("cluster: send to node %d of %d", m.To, len(t.addrs))
	}
	oc, err := t.conn(m.To)
	if err != nil {
		return err
	}
	oc.mu.Lock()
	werr := WriteFrame(oc.c, m)
	oc.mu.Unlock()
	if werr != nil {
		t.evict(m.To, oc)
	}
	return werr
}

// evict drops a cached outbound connection after a write or encode
// error, so the next Send redials instead of failing forever on a dead
// socket.
func (t *TCPTransport) evict(to int, oc *outConn) {
	t.mu.Lock()
	if t.conns[to] == oc {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	_ = oc.c.Close()
}

// StopNode simulates a peer crash: node i's listener and every
// established inbound connection to it are closed. Peers with cached
// connections to i see write errors, evict them, and back off dialing
// until StartNode brings the peer back.
func (t *TCPTransport) StopNode(i int) error {
	if i < 0 || i >= len(t.addrs) {
		return fmt.Errorf("cluster: stop node %d of %d", i, len(t.addrs))
	}
	t.mu.Lock()
	ln := t.listeners[i]
	t.listeners[i] = nil
	conns := t.inConns[i]
	t.inConns[i] = nil
	t.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for c := range conns {
		_ = c.Close()
	}
	return nil
}

// StartNode restarts a stopped peer on its original address, so cached
// routes elsewhere in the cluster keep working once their backoff
// windows expire.
func (t *TCPTransport) StartNode(i int) error {
	if i < 0 || i >= len(t.addrs) {
		return fmt.Errorf("cluster: start node %d of %d", i, len(t.addrs))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.done:
		return fmt.Errorf("cluster: transport closed")
	default:
	}
	if t.listeners[i] != nil {
		return fmt.Errorf("cluster: node %d is already listening", i)
	}
	ln, err := net.Listen("tcp", t.addrs[i])
	if err != nil {
		return fmt.Errorf("cluster: relisten for node %d: %w", i, err)
	}
	t.listeners[i] = ln
	t.wg.Add(1)
	go t.accept(i, ln)
	return nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	select {
	case <-t.done:
		t.mu.Unlock()
		return nil
	default:
		close(t.done)
	}
	conns := t.conns
	t.conns = map[int]*outConn{}
	listeners := t.listeners
	t.listeners = make([]net.Listener, len(t.addrs))
	var inbound []net.Conn
	for _, m := range t.inConns {
		for c := range m {
			inbound = append(inbound, c)
		}
	}
	t.inConns = map[int]map[net.Conn]bool{}
	t.mu.Unlock()
	for _, ln := range listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	for _, oc := range conns {
		_ = oc.c.Close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
	return nil
}
