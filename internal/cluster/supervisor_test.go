package cluster

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/cluster/store"
	"repro/internal/sim"
)

// crashEpisode is the supervised-crash scenario: dijkstra3 on 5 nodes,
// legitimate start, one crash mid-run, snapshots persisted to st.
func crashEpisode(st *store.Store, persistEvery int) (Options, sim.Config) {
	sched, err := ParseSchedule("crash@50:node=2")
	if err != nil {
		panic(err)
	}
	return Options{
		Proto:          sim.NewDijkstra3(5),
		Seed:           11,
		MaxSteps:       2000,
		Schedule:       sched,
		StopWhenStable: true,
		Store:          st,
		PersistEvery:   persistEvery,
	}, sim.Config{2, 0, 0, 0, 0}
}

// findEvent returns the first event of the given kind, if any.
func findEvent(events []Event, kind string) (Event, bool) {
	for _, ev := range events {
		if ev.Kind == kind {
			return ev, true
		}
	}
	return Event{}, false
}

// TestCrashRecoversFromSnapshot: with a healthy store, a crashed node
// comes back with its persisted register — the recovered event says
// from=snapshot — and the ring re-stabilizes with the downtime counted
// in the stabilization.
func TestCrashRecoversFromSnapshot(t *testing.T) {
	st := store.New(store.NewMemFS())
	opts, start := crashEpisode(st, 1)
	res, err := Run(context.Background(), opts, start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("episode did not converge: final %v", res.Final)
	}
	crashed, ok := findEvent(res.Events, "crashed")
	if !ok || crashed.Step != 50 || crashed.Node != 2 || crashed.Fault != "crash@50:node=2" {
		t.Fatalf("crashed event malformed: %+v (ok=%v)", crashed, ok)
	}
	rec, ok := findEvent(res.Events, "recovered")
	if !ok {
		t.Fatalf("no recovered event: %+v", res.Events)
	}
	if rec.From != RecoverFromSnapshot || rec.Node != 2 {
		t.Fatalf("recovered event wants from=snapshot node=2: %+v", rec)
	}
	if rec.Step <= crashed.Step {
		t.Fatalf("recovery at %d not after crash at %d", rec.Step, crashed.Step)
	}
	// The crash destabilized the view; the matching stabilization spans
	// the whole downtime (MTTR includes restart backoff and replay).
	var spanning *Stabilization
	for i := range res.Stabilizations {
		s := res.Stabilizations[i]
		if s.BrokenAt == crashed.Step {
			spanning = &s
		}
	}
	if spanning == nil {
		t.Fatalf("no stabilization broken at crash step %d: %+v", crashed.Step, res.Stabilizations)
	}
	if spanning.StableAt < rec.Step {
		t.Fatalf("stabilization at %d precedes recovery at %d", spanning.StableAt, rec.Step)
	}
	if res.Storage == nil || res.Storage.Restored == 0 || res.Storage.Saves == 0 {
		t.Fatalf("storage stats missing restore: %+v", res.Storage)
	}
}

// TestCrashRecoversFromCorruptedSnapshot is the acceptance scenario:
// every persisted snapshot is corrupted by the storage-fault injector,
// so at recovery the checksum validation fails, the node resumes from
// arbitrary state (recovered(from=arbitrary)), and the ring still
// re-stabilizes — the restart is an in-model transient fault.
func TestCrashRecoversFromCorruptedSnapshot(t *testing.T) {
	inj := store.NewInjector(store.NewMemFS(), 5, store.Plan{Every: 1, Kinds: []store.FaultKind{store.FaultBitFlip}})
	st := store.New(inj)
	opts, start := crashEpisode(st, 1)
	res, err := Run(context.Background(), opts, start)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := findEvent(res.Events, "recovered")
	if !ok {
		t.Fatalf("no recovered event: %+v", res.Events)
	}
	if rec.From != RecoverFromArbitrary || rec.Node != 2 {
		t.Fatalf("recovered event wants from=arbitrary node=2: %+v", rec)
	}
	if !res.Converged || !opts.Proto.Legitimate(res.Final) {
		t.Fatalf("ring did not re-stabilize after arbitrary resume: final %v", res.Final)
	}
	if res.Storage == nil || res.Storage.CorruptLoads == 0 {
		t.Fatalf("corrupt load not counted: %+v", res.Storage)
	}
}

// TestCrashWithoutStoreResumesArbitrary: no store at all means every
// recovery is from arbitrary state, and convergence still holds.
func TestCrashWithoutStoreResumesArbitrary(t *testing.T) {
	opts, start := crashEpisode(nil, 0)
	res, err := Run(context.Background(), opts, start)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := findEvent(res.Events, "recovered")
	if !ok || rec.From != RecoverFromArbitrary {
		t.Fatalf("recovered event wants from=arbitrary: %+v (ok=%v)", rec, ok)
	}
	if !res.Converged {
		t.Fatalf("did not converge: final %v", res.Final)
	}
	if res.Storage != nil {
		t.Fatalf("storage stats reported without a store: %+v", res.Storage)
	}
}

// TestCrashLoopDetected: repeated rapid crashes of the same node raise
// exactly one crashloop event for the burst, and the backoff grows —
// later restarts take longer than the first.
func TestCrashLoopDetected(t *testing.T) {
	sched, err := ParseSchedule("crash@20:node=1;crash@60:node=1;crash@100:node=1")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Proto:          sim.NewDijkstra3(5),
		Seed:           3,
		MaxSteps:       3000,
		Schedule:       sched,
		StopWhenStable: true,
	}
	res, err := Run(context.Background(), opts, sim.Config{0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	loops := 0
	for _, ev := range res.Events {
		if ev.Kind == "crashloop" {
			loops++
			if ev.Node != 1 {
				t.Fatalf("crashloop names node %d, want 1", ev.Node)
			}
		}
	}
	if loops != 1 {
		t.Fatalf("want exactly 1 crashloop event, got %d: %+v", loops, res.Events)
	}
	// Downtime per crash: pair each crashed event with its recovery.
	var downs []int
	downAt := -1
	for _, ev := range res.Events {
		switch ev.Kind {
		case "crashed":
			downAt = ev.Step
		case "recovered":
			downs = append(downs, ev.Step-downAt)
		}
	}
	if len(downs) != 3 {
		t.Fatalf("want 3 crash/recovery pairs, got %v", downs)
	}
	if downs[2] <= downs[0] {
		t.Fatalf("backoff did not grow: downtimes %v", downs)
	}
	if !res.Converged {
		t.Fatalf("did not converge after crash loop: final %v", res.Final)
	}
}

// TestCrashDeterministic: a stepped run with crash faults and a seeded
// storage-fault plan replays byte-for-byte.
func TestCrashDeterministic(t *testing.T) {
	run := func() []byte {
		inj := store.NewInjector(store.NewMemFS(), 7, store.Plan{Every: 3, Kinds: []store.FaultKind{store.FaultTorn, store.FaultStale}})
		st := store.New(inj)
		sched, err := ParseSchedule("crash@30:node=0;crash@90:node=3;corrupt@60:node=4,val=1")
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Proto:          sim.NewDijkstra3(5),
			Seed:           21,
			MaxSteps:       2500,
			Schedule:       sched,
			RecordMoves:    true,
			StopWhenStable: true,
			Store:          st,
			PersistEvery:   2,
		}
		res, err := Run(context.Background(), opts, sim.Config{1, 1, 0, 2, 0})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
}

// TestCrashedNodeIgnoresStateFaults: a corrupt fault aimed at a node
// while it is down hits nothing — the dead process has no register —
// and the monitor's view stays consistent with the node's state.
func TestCrashedNodeIgnoresStateFaults(t *testing.T) {
	// Crash at 20; the corrupt at 22 lands inside the backoff window
	// (minimum downtime is crashBackoffBase steps).
	sched, err := ParseSchedule("crash@20:node=2;corrupt@22:node=2,val=2")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Proto:          sim.NewDijkstra3(5),
		Seed:           13,
		MaxSteps:       2000,
		Schedule:       sched,
		StopWhenStable: true,
	}
	res, err := Run(context.Background(), opts, sim.Config{0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: final %v", res.Final)
	}
	var crashStep, recStep int
	for _, ev := range res.Events {
		switch ev.Kind {
		case "crashed":
			crashStep = ev.Step
		case "recovered":
			recStep = ev.Step
		}
	}
	if crashStep != 20 || recStep <= 22 {
		t.Fatalf("corrupt at 22 did not land inside downtime [%d,%d]", crashStep, recStep)
	}
}
