package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Frame I/O: the cluster wire protocol is length-prefixed JSON — a
// 4-byte big-endian payload length followed by the JSON payload. The
// TCP transport has always spoken it; these helpers export the framing
// so other subsystems (the checkd replica fleet's forward/anti-entropy
// RPC) reuse the exact wire discipline instead of inventing a second
// one: bounded frames, and any malformed frame (oversized, truncated,
// non-JSON) surfacing as an error the caller converts into a closed
// connection.

// MaxFrameBytes is the default bound on one wire frame for the ring
// transport; state messages are tiny, so anything larger is a corrupt
// or hostile peer.
const MaxFrameBytes = maxFrameBytes

// WriteFrame marshals v and writes one length-prefixed frame. The
// marshal and the write are a single Write call so concurrent writers
// multiplexing one connection need only serialize around WriteFrame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cluster: encode frame: %w", err)
	}
	if len(payload) > maxInt32 {
		return fmt.Errorf("cluster: frame payload %d bytes overflows length prefix", len(payload))
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	_, err = w.Write(frame)
	return err
}

const maxInt32 = 1<<31 - 1

// ReadFrame reads one length-prefixed frame, rejecting empty or
// oversized payloads (maxBytes ≤ 0 means MaxFrameBytes), and unmarshals
// it into v. Any error means the stream can no longer be trusted; the
// caller should close the connection.
func ReadFrame(r io.Reader, maxBytes int, v any) error {
	if maxBytes <= 0 {
		maxBytes = maxFrameBytes
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > uint32(maxBytes) {
		return fmt.Errorf("cluster: frame length %d outside (0, %d]", n, maxBytes)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("cluster: decode frame: %w", err)
	}
	return nil
}
