package cluster

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// faultEpisode is the acceptance scenario shared by several tests and
// the golden test: dijkstra3 on 5 nodes, a perturbed start, and one
// mid-run register corruption at step 40.
func faultEpisode() (Options, sim.Config) {
	sched, err := ParseSchedule("corrupt@40:node=1,val=0")
	if err != nil {
		panic(err)
	}
	return Options{
		Proto:          sim.NewDijkstra3(5),
		Seed:           6,
		MaxSteps:       2000,
		Schedule:       sched,
		SnapshotEvery:  20,
		StopWhenStable: true,
	}, sim.Config{0, 2, 0, 0, 0}
}

// TestSteppedFaultRecovery is the tentpole acceptance test: a seeded
// in-proc run of dijkstra3 (N=5) with one mid-run register corruption
// re-stabilizes, and the Monitor's event stream records both the fault
// and the recovery.
func TestSteppedFaultRecovery(t *testing.T) {
	opts, start := faultEpisode()
	res, err := Run(context.Background(), opts, start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("episode did not converge: %+v", res)
	}
	if len(res.Stabilizations) != 2 {
		t.Fatalf("want 2 stabilizations (perturbed start, injected fault), got %+v", res.Stabilizations)
	}
	first, second := res.Stabilizations[0], res.Stabilizations[1]
	if first.BrokenAt != 0 || first.StableAt <= 0 {
		t.Fatalf("initial stabilization malformed: %+v", first)
	}
	if second.BrokenAt != 40 || second.StableAt <= 40 || second.Steps != second.StableAt-second.BrokenAt {
		t.Fatalf("fault recovery malformed: %+v", second)
	}

	var sawFault, sawRecovery bool
	for _, ev := range res.Events {
		switch ev.Kind {
		case "fault":
			if ev.Step != 40 || ev.Node != 1 || ev.Fault != "corrupt@40:node=1,val=0" {
				t.Fatalf("fault event malformed: %+v", ev)
			}
			sawFault = true
		case "stabilized":
			if sawFault {
				if ev.Step != second.StableAt || ev.After != second.Steps {
					t.Fatalf("recovery event disagrees with stabilization record: %+v vs %+v", ev, second)
				}
				sawRecovery = true
			}
		}
	}
	if !sawFault || !sawRecovery {
		t.Fatalf("event stream missing fault (%v) or recovery (%v): %+v", sawFault, sawRecovery, res.Events)
	}

	if !opts.Proto.Legitimate(res.Final) {
		t.Fatalf("final view %v is not legitimate", res.Final)
	}
	total := 0
	for _, m := range res.MovesPerNode {
		total += m
	}
	if total != res.Moves || res.Moves == 0 {
		t.Fatalf("moves bookkeeping: total %d vs %d", total, res.Moves)
	}
}

// TestSteppedDeterministic runs the same seeded episode twice —
// including link faults so the injector is on the deterministic path —
// and requires byte-identical full results.
func TestSteppedDeterministic(t *testing.T) {
	sched, err := ParseSchedule("drop@10:link=0>1,count=2;corrupt@40:node=1,val=0;delay@50:link=4>0,count=8;dup@60:link=2>3;" +
		"partition@70:cut=0+1|2+3+4,count=30;isolate@130:node=3,count=20")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Proto:          sim.NewDijkstra3(5),
		Seed:           11,
		MaxSteps:       500,
		Schedule:       sched,
		SnapshotEvery:  25,
		RecordMoves:    true,
		StopWhenStable: true,
	}
	start := sim.Config{0, 1, 2, 1, 0}
	var runs [2][]byte
	for i := range runs {
		res, err := Run(context.Background(), opts, start)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = raw
	}
	if string(runs[0]) != string(runs[1]) {
		t.Fatalf("seeded stepped runs diverged:\n%s\nvs\n%s", runs[0], runs[1])
	}
}

// TestSteppedPartitionHeal opens a partition across the ring, corrupts
// a register while the cut is active, and requires the monitor to see
// the heal event and the ring to re-stabilize afterwards. Messages
// crossing the cut must show up as drops in the link statistics.
func TestSteppedPartitionHeal(t *testing.T) {
	sched, err := ParseSchedule("partition@30:cut=0+1|2+3+4,count=60;corrupt@35:node=2,val=0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Options{
		Proto:          sim.NewDijkstra3(5),
		Seed:           3,
		MaxSteps:       5000,
		Schedule:       sched,
		StopWhenStable: true,
	}, sim.Config{0, 1, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("ring did not re-stabilize after partition heal: final %v", res.Final)
	}
	var healStep int
	for _, ev := range res.Events {
		if ev.Kind == "heal" {
			healStep = ev.Step
			if ev.Fault != "partition@30:cut=0+1|2+3+4,count=60" {
				t.Fatalf("heal names the wrong fault: %+v", ev)
			}
		}
	}
	if healStep != 90 {
		t.Fatalf("heal at step %d, want 90", healStep)
	}
	// The episode may not end while the cut is open.
	if res.Steps < healStep {
		t.Fatalf("episode ended at step %d, before the heal at %d", res.Steps, healStep)
	}
	crossDrops := 0
	for _, st := range res.Links {
		cross := (st.From <= 1) != (st.To <= 1)
		if cross {
			crossDrops += st.Dropped
		} else if st.Dropped != 0 {
			t.Fatalf("same-side link %d>%d recorded drops: %+v", st.From, st.To, st)
		}
	}
	if crossDrops == 0 {
		t.Fatal("no cross-cut messages were dropped; was the partition active?")
	}
}

// TestSteppedIsolateRecovers cuts one node off mid-run; after the heal
// the anti-entropy refresh must let the ring converge again.
func TestSteppedIsolateRecovers(t *testing.T) {
	sched, err := ParseSchedule("isolate@20:node=1,count=50;corrupt@25:node=1,val=2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Options{
		Proto:          sim.NewDijkstra3(5),
		Seed:           7,
		MaxSteps:       5000,
		Schedule:       sched,
		StopWhenStable: true,
	}, sim.Config{0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("ring did not recover from isolation: final %v", res.Final)
	}
	sawHeal := false
	for _, ev := range res.Events {
		if ev.Kind == "heal" && ev.Node == 1 {
			sawHeal = true
		}
	}
	if !sawHeal {
		t.Fatal("isolate heal event missing from stream")
	}
}

// TestViewTraceRelations ties the Monitor to internal/trace: the
// recorded view sequence destutters to a subsequence of itself ending
// in the final configuration's encoding.
func TestViewTraceRelations(t *testing.T) {
	opts, start := faultEpisode()
	res, err := Run(context.Background(), opts, start)
	if err != nil {
		t.Fatal(err)
	}
	vt := res.ViewTrace()
	if len(vt) == 0 {
		t.Fatal("view trace empty; dijkstra3(5) is small enough to encode")
	}
	ds := trace.Destutter(vt)
	if !trace.IsSubsequence(ds, vt) {
		t.Fatal("destuttered view trace is not a subsequence of the raw trace")
	}
	enc := 0
	for _, v := range res.Final {
		enc = enc*3 + v
	}
	if ds[len(ds)-1] != enc {
		t.Fatalf("trace ends at %d, final config encodes to %d", ds[len(ds)-1], enc)
	}
}

// TestStallFault removes node 0 from scheduling: it must execute no
// moves while the rest of the ring keeps running.
func TestStallFault(t *testing.T) {
	sched, err := ParseSchedule("stall@1:node=0,count=400")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Options{
		Proto:    sim.NewDijkstra3(5),
		Seed:     2,
		MaxSteps: 300, // entirely inside the stall window
		Schedule: sched,
	}, sim.Config{0, 1, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.MovesPerNode[0] != 0 {
		t.Fatalf("stalled node moved %d times", res.MovesPerNode[0])
	}
	if res.Moves == 0 {
		t.Fatal("rest of the ring made no progress during the stall")
	}
}

// TestRestartFault reboots a node mid-run: the probe protocol must
// refill its neighbor views so it rejoins the ring and moves again.
func TestRestartFault(t *testing.T) {
	sched, err := ParseSchedule("restart@30:node=2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Options{
		Proto:       sim.NewDijkstra3(5),
		Seed:        4,
		MaxSteps:    400,
		Schedule:    sched,
		RecordMoves: true,
	}, sim.Config{0, 1, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	movedAfterRestart := false
	for _, ev := range res.Events {
		if ev.Kind == "move" && ev.Node == 2 && ev.Step > 30 {
			movedAfterRestart = true
			break
		}
	}
	if !movedAfterRestart {
		t.Fatal("restarted node never moved again; probe protocol broken?")
	}
	if !res.Converged {
		t.Fatalf("ring did not return to legitimacy after restart: final %v", res.Final)
	}
}

// TestEveryProtocolConvergesInProc runs each protocol family once over
// the stepped engine from a perturbed start.
func TestEveryProtocolConvergesInProc(t *testing.T) {
	protos := []sim.Protocol{
		sim.NewDijkstra3(5),
		sim.NewDijkstra4(5),
		sim.NewKState(5, 5),
		sim.NewNewThree(5),
	}
	for _, p := range protos {
		t.Run(p.Name(), func(t *testing.T) {
			legit, err := sim.LegitimateConfig(p)
			if err != nil {
				t.Fatal(err)
			}
			start := legit.Clone()
			start[1] = (start[1] + 1) % p.Domain(1)
			start[3] = (start[3] + 1) % p.Domain(3)
			res, err := Run(context.Background(), Options{
				Proto:          p,
				Seed:           9,
				MaxSteps:       20000,
				StopWhenStable: true,
			}, start)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%s did not converge from %v; final %v", p.Name(), start, res.Final)
			}
		})
	}
}

// TestRunValidation exercises the argument checks.
func TestRunValidation(t *testing.T) {
	p := sim.NewDijkstra3(5)
	good := sim.Config{0, 0, 0, 0, 0}
	cases := []struct {
		name    string
		opts    Options
		initial sim.Config
	}{
		{"nil proto", Options{MaxSteps: 10}, good},
		{"no budget", Options{Proto: p}, good},
		{"bad config length", Options{Proto: p, MaxSteps: 10}, sim.Config{0, 0}},
		{"register out of domain", Options{Proto: p, MaxSteps: 10}, sim.Config{0, 0, 7, 0, 0}},
		{"schedule node out of range", Options{Proto: p, MaxSteps: 10,
			Schedule: []Fault{{Kind: FaultCorrupt, Step: 1, Node: 9, Val: 0, Count: 1}}}, good},
		{"schedule value out of domain", Options{Proto: p, MaxSteps: 10,
			Schedule: []Fault{{Kind: FaultCorrupt, Step: 1, Node: 1, Val: 5, Count: 1}}}, good},
		{"transport size mismatch", Options{Proto: p, MaxSteps: 10,
			Transport: NewChanTransport(3)}, good},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(context.Background(), tc.opts, tc.initial); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

// TestSteppedHonorsCancellation: a cancelled context stops the stepped
// engine promptly with the context's error.
func TestSteppedHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Options{Proto: sim.NewDijkstra3(5), Seed: 1, MaxSteps: 1000},
		sim.Config{0, 1, 2, 1, 0})
	if err == nil {
		t.Fatal("want context error")
	}
}
