package cluster

import (
	"context"
	"math/rand"
	"sync"

	"repro/internal/sim"
)

// resume is a pending un-stall for the free-running engine.
type resume struct {
	step int
	node int
}

// runFree is the concurrent engine: nodes drive themselves, the
// collector goroutine (this function) folds their move reports into
// the Monitor, applies due faults, and decides when the episode ends.
// "Step" here is the global count of executed moves — the only
// cluster-wide clock a free-running system has.
func runFree(ctx context.Context, opts Options, inj *injector, initial sim.Config) (*Result, error) {
	proto := opts.Proto
	procs := proto.Procs()
	rng := rand.New(rand.NewSource(opts.Seed))

	runCtx, cancel := context.WithCancel(ctx)
	reports := make(chan moveReport, 256)
	nodes := make([]*node, procs)
	for i := range nodes {
		nodes[i] = newNode(i, proto, inj, nodeSeed(opts.Seed, i), initial[i])
		nodes[i].reports = reports
	}
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			n.freeLoop(runCtx)
		}(n)
	}
	stop := func() {
		cancel()
		wg.Wait()
	}

	// tell sends a command without waiting for a reply; node command
	// buffers absorb it even when the node is mid-report.
	tell := func(i int, c command) {
		select {
		case nodes[i].cmds <- c:
		case <-runCtx.Done():
		}
	}

	mon := newMonitor(proto, initial, opts.RecordMoves)
	pending := sortedSchedule(opts.Schedule)
	var resumes []resume
	movesPerNode := make([]int, procs)
	moves := 0

	for {
		select {
		case <-ctx.Done():
			stop()
			return nil, ctx.Err()
		case r := <-reports:
			moves++
			inj.advance(moves)
			movesPerNode[r.Node]++
			mon.ObserveMove(moves, r.Node, r.Rule, r.Val)
			for len(pending) > 0 && pending[0].Step <= moves {
				f := pending[0]
				pending = pending[1:]
				switch f.Kind {
				case FaultCorrupt:
					if f.Val < 0 {
						f.Val = rng.Intn(proto.Domain(f.Node))
					}
					tell(f.Node, command{kind: cmdCorrupt, val: f.Val})
					mon.ObserveFault(moves, f, f.Val)
				case FaultRestart:
					tell(f.Node, command{kind: cmdRestart})
					mon.ObserveFault(moves, f, 0)
				case FaultStall:
					tell(f.Node, command{kind: cmdStall})
					resumes = append(resumes, resume{step: moves + f.Count, node: f.Node})
					mon.ObserveFault(moves, f, 0)
				default: // drop | dup | delay
					inj.arm(f)
					mon.ObserveFault(moves, f, 0)
				}
			}
			keep := resumes[:0]
			for _, rs := range resumes {
				if rs.step <= moves {
					tell(rs.node, command{kind: cmdResume})
				} else {
					keep = append(keep, rs)
				}
			}
			resumes = keep
			if opts.SnapshotEvery > 0 && moves%opts.SnapshotEvery == 0 {
				mon.Snapshot(moves)
			}
			done := moves >= opts.MaxSteps ||
				(opts.StopWhenStable && mon.Legitimate() && len(pending) == 0 && len(resumes) == 0)
			if done {
				stop()
				mon.Finish(moves)
				return assemble(opts, inj, mon, moves, moves, movesPerNode), nil
			}
		}
	}
}
