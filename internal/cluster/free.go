package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/sim"
)

// resume is a pending un-stall for the free-running engine.
type resume struct {
	step int
	node int
}

// freeTickInterval is the idle heartbeat of the free-running collector.
// The engine's clock advances on every executed move AND on every tick,
// so scheduled faults fire, stalls resume, and partitions heal even
// while the ring is quiescent — a partitioned ring makes no moves, and
// without the heartbeat its heal step would never arrive.
const freeTickInterval = time.Millisecond

// runFree is the concurrent engine: nodes drive themselves, the
// collector goroutine (this function) folds their move reports into
// the Monitor, applies due faults, and decides when the episode ends.
// "Step" here is the collector's clock: the count of executed moves
// plus idle heartbeats — the only cluster-wide clock a free-running
// system has.
func runFree(ctx context.Context, opts Options, inj *injector, initial sim.Config) (*Result, error) {
	proto := opts.Proto
	procs := proto.Procs()
	rng := rand.New(rand.NewSource(opts.Seed))

	runCtx, cancel := context.WithCancel(ctx)
	reports := make(chan moveReport, 256)
	nodes := make([]*node, procs)
	for i := range nodes {
		nodes[i] = newNode(i, proto, inj, nodeSeed(opts.Seed, i), initial[i])
		nodes[i].reports = reports
	}
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			n.freeLoop(runCtx)
		}(n)
	}
	stop := func() {
		cancel()
		wg.Wait()
	}

	// tell sends a command without waiting for a reply; node command
	// buffers absorb it even when the node is mid-report.
	tell := func(i int, c command) {
		select {
		case nodes[i].cmds <- c:
		case <-runCtx.Done():
		}
	}

	mon := newMonitor(proto, initial, opts.RecordMoves)
	sup := newSupervisor(proto, opts.Store, rng, mon)
	persistEvery := persistInterval(opts)
	pending := sortedSchedule(opts.Schedule)
	var resumes []resume
	var heals []heal
	movesPerNode := make([]int, procs)
	clock, moves := 0, 0

	ticker := time.NewTicker(freeTickInterval)
	defer ticker.Stop()

	// advanceClock runs the per-step bookkeeping shared by the move and
	// heartbeat paths: due faults, heals, resumes, anti-entropy,
	// snapshots, and the stop decision.
	advanceClock := func() (done bool) {
		for len(pending) > 0 && pending[0].Step <= clock {
			f := pending[0]
			pending = pending[1:]
			switch f.Kind {
			case FaultCorrupt:
				if f.Val < 0 {
					f.Val = rng.Intn(proto.Domain(f.Node))
				}
				tell(f.Node, command{kind: cmdCorrupt, val: f.Val})
				mon.ObserveFault(clock, f, f.Val)
			case FaultRestart:
				tell(f.Node, command{kind: cmdRestart})
				mon.ObserveFault(clock, f, 0)
			case FaultCrash:
				tell(f.Node, command{kind: cmdCrash})
				sup.crash(clock, f)
			case FaultStall:
				tell(f.Node, command{kind: cmdStall})
				resumes = append(resumes, resume{step: clock + f.Count, node: f.Node})
				mon.ObserveFault(clock, f, 0)
			case FaultPartition, FaultIsolate:
				inj.arm(f)
				heals = append(heals, heal{at: clock + f.Count, f: f})
				mon.ObserveFault(clock, f, 0)
			default: // drop | dup | delay
				inj.arm(f)
				mon.ObserveFault(clock, f, 0)
			}
		}
		healed := false
		keepHeals := heals[:0]
		for _, h := range heals {
			if h.at <= clock {
				mon.ObserveHeal(clock, h.f)
				healed = true
			} else {
				keepHeals = append(keepHeals, h)
			}
		}
		heals = keepHeals
		keep := resumes[:0]
		for _, rs := range resumes {
			if rs.step <= clock {
				tell(rs.node, command{kind: cmdResume})
			} else {
				keep = append(keep, rs)
			}
		}
		resumes = keep
		for _, nd := range sup.due(clock) {
			val, from := sup.restart(nd)
			tell(nd, command{kind: cmdRestore, val: val})
			mon.ObserveRecovered(clock, nd, val, from)
		}
		if healed || (opts.RefreshEvery > 0 && clock%opts.RefreshEvery == 0) {
			for i := range nodes {
				tell(i, command{kind: cmdRefresh})
			}
		}
		if opts.Store != nil && clock%persistEvery == 0 {
			for i := 0; i < procs; i++ {
				if !sup.down(i) {
					_ = opts.Store.Save(i, uint64(clock), mon.view[i])
				}
			}
		}
		if opts.SnapshotEvery > 0 && clock%opts.SnapshotEvery == 0 {
			mon.Snapshot(clock)
		}
		return clock >= opts.MaxSteps ||
			(opts.StopWhenStable && mon.Legitimate() &&
				len(pending) == 0 && len(resumes) == 0 && len(heals) == 0)
	}

	for {
		select {
		case <-ctx.Done():
			stop()
			return nil, ctx.Err()
		case r := <-reports:
			clock++
			moves++
			inj.advance(clock)
			movesPerNode[r.Node]++
			mon.ObserveMove(clock, r.Node, r.Rule, r.Val)
		case <-ticker.C:
			clock++
			inj.advance(clock)
		}
		if advanceClock() {
			stop()
			mon.Finish(clock)
			return assemble(opts, inj, mon, clock, moves, movesPerNode), nil
		}
	}
}
