package cluster

import (
	"fmt"
	"sync/atomic"
)

// Message is one neighbor-state announcement: node From tells node To
// the current value of From's register. It is the *only* thing nodes
// exchange — there is no shared memory in this runtime, so a node's
// knowledge of its neighbors is exactly the messages it has received.
type Message struct {
	// From and To are ring process indices.
	From int `json:"from"`
	To   int `json:"to"`
	// Val is From's register value at send time.
	Val int `json:"val"`
	// Seq is From's per-sender sequence number (monotone; duplicates
	// injected by the fault layer share the original's Seq).
	Seq int `json:"seq"`
	// Probe asks the receiver to announce its own current value back to
	// From unconditionally. Restarted nodes use it to refill their
	// neighbor views, since neighbors only announce on change.
	Probe bool `json:"probe,omitempty"`
}

// Transport moves Messages between the nodes of one cluster. Send must
// be safe for concurrent use; Recv(i) returns node i's inbox channel.
// A Transport is a lossy datagram fabric by contract: Send may drop a
// message (full inbox, broken connection) without error — the protocols
// under test are self-stabilizing and must tolerate it.
type Transport interface {
	// Name identifies the transport in reports ("chan", "tcp").
	Name() string
	// Procs returns the number of nodes the transport connects.
	Procs() int
	// Send delivers (or drops) one message.
	Send(m Message) error
	// Recv returns the inbox channel of node i.
	Recv(node int) <-chan Message
	// Close releases listeners, connections, and reader goroutines.
	Close() error
}

// stepped marks transports whose Send enqueues synchronously into the
// destination inbox, so a seeded single-threaded scheduler over them is
// deterministic. The TCP transport is not stepped: delivery crosses
// socket buffers and reader goroutines.
type stepped interface {
	stepped()
}

// chanInboxDepth bounds each in-proc inbox. Ring nodes announce to two
// neighbors and drain their inbox on every activation, so the steady
// state is a handful of messages; the depth only matters under
// injected delay faults releasing bursts.
const chanInboxDepth = 1024

// ChanTransport is the in-process transport: one buffered channel per
// node. It is deterministic under the stepped engine (Send completes
// delivery before returning) and is the default for `ringsim cluster`
// and the checkd /v1/cluster endpoint.
type ChanTransport struct {
	inboxes []chan Message
	dropped atomic.Int64
}

// NewChanTransport builds the in-proc fabric for procs nodes.
func NewChanTransport(procs int) *ChanTransport {
	t := &ChanTransport{inboxes: make([]chan Message, procs)}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan Message, chanInboxDepth)
	}
	return t
}

// Name implements Transport.
func (t *ChanTransport) Name() string { return "chan" }

// Procs implements Transport.
func (t *ChanTransport) Procs() int { return len(t.inboxes) }

// Send implements Transport. A full inbox drops the message (counted),
// matching the lossy-fabric contract instead of deadlocking the
// scheduler.
func (t *ChanTransport) Send(m Message) error {
	if m.To < 0 || m.To >= len(t.inboxes) {
		return fmt.Errorf("cluster: send to node %d of %d", m.To, len(t.inboxes))
	}
	select {
	case t.inboxes[m.To] <- m:
	default:
		t.dropped.Add(1)
	}
	return nil
}

// Recv implements Transport.
func (t *ChanTransport) Recv(node int) <-chan Message { return t.inboxes[node] }

// Close implements Transport.
func (t *ChanTransport) Close() error { return nil }

// Dropped reports messages discarded on full inboxes.
func (t *ChanTransport) Dropped() int64 { return t.dropped.Load() }

func (t *ChanTransport) stepped() {}
