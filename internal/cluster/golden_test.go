package cluster

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenEventStream pins the JSON event stream of the seeded
// in-proc fault episode byte-for-byte, the way the lint-demo golden
// test pins the analyzer's diagnostic set: any change to the event
// shapes, the monitor's transition logic, the scheduler's seeding, or
// the fault model shows up as a diff here.
//
// Regenerate deliberately with:
//
//	go test ./internal/cluster -run TestGoldenEventStream -update
func TestGoldenEventStream(t *testing.T) {
	opts, start := faultEpisode()
	res, err := Run(context.Background(), opts, start)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(res.Events, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "cluster_events.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("event stream diverged from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
