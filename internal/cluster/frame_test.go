package cluster

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Message{From: 1, To: 2, Val: 7, Seq: 9, Probe: true}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := ReadFrame(&buf, 0, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestReadFrameRejectsHostileLengths(t *testing.T) {
	// Oversized length prefix.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameBytes+1)
	buf.Write(hdr[:])
	buf.WriteString(strings.Repeat("x", 16))
	var m Message
	if err := ReadFrame(&buf, MaxFrameBytes, &m); err == nil {
		t.Fatal("oversized frame accepted")
	}

	// Zero length.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 0)
	buf.Write(hdr[:])
	if err := ReadFrame(&buf, 0, &m); err == nil {
		t.Fatal("zero-length frame accepted")
	}

	// Truncated payload.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	if err := ReadFrame(&buf, 0, &m); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// Non-JSON payload.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 4)
	buf.Write(hdr[:])
	buf.WriteString("}{!!")
	if err := ReadFrame(&buf, 0, &m); err == nil {
		t.Fatal("non-JSON frame accepted")
	}
}
