package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotDecode: arbitrary bytes fed to the record + snapshot
// decoders must yield either a valid state or a classified error —
// never a panic, and never a silently-wrong state. When the decode
// succeeds, re-encoding the result must reproduce the accepted record
// exactly: the only bytes the decoder accepts are the ones the encoder
// emits.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(1, EncodeSnapshot(Snapshot{Node: 2, Val: 3})))
	f.Add(EncodeRecord(0, []byte("not json")))
	truncated := EncodeRecord(9, EncodeSnapshot(Snapshot{Node: 0, Val: 1}))
	f.Add(truncated[:len(truncated)-3])
	f.Fuzz(func(t *testing.T, b []byte) {
		gen, payload, rest, err := DecodeRecord(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("record error %v is not ErrCorrupt", err)
			}
			return
		}
		snap, err := DecodeSnapshot(payload)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("snapshot error %v is not ErrCorrupt", err)
			}
			return
		}
		// Round-trip identity: the accepted record prefix re-encodes to
		// itself, so a CRC collision cannot smuggle in a different state.
		reenc := EncodeRecord(gen, payload)
		if !bytes.Equal(reenc, b[:len(b)-len(rest)]) {
			t.Fatalf("accepted record does not re-encode to itself:\n in: %x\nout: %x", b[:len(b)-len(rest)], reenc)
		}
		_ = snap
	})
}
