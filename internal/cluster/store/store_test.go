package store

import (
	"errors"
	"syscall"
	"testing"
)

// TestRecordRoundTrip: encode → decode is the identity, and the rest
// pointer supports record streams.
func TestRecordRoundTrip(t *testing.T) {
	payload := []byte(`{"node":3,"val":2}`)
	rec := EncodeRecord(7, payload)
	rec = append(rec, EncodeRecord(8, []byte("second"))...)
	gen, got, rest, err := DecodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 || string(got) != string(payload) {
		t.Fatalf("got gen=%d payload=%q", gen, got)
	}
	gen2, got2, rest2, err := DecodeRecord(rest)
	if err != nil {
		t.Fatal(err)
	}
	if gen2 != 8 || string(got2) != "second" || len(rest2) != 0 {
		t.Fatalf("second record: gen=%d payload=%q rest=%d bytes", gen2, got2, len(rest2))
	}
}

// TestRecordDetectsCorruption: every single-bit flip anywhere in a
// record fails the decode with ErrCorrupt — the checksum covers the
// generation and the length prefix, not just the payload.
func TestRecordDetectsCorruption(t *testing.T) {
	rec := EncodeRecord(42, []byte(`{"node":0,"val":1}`))
	for i := 0; i < len(rec)*8; i++ {
		mut := append([]byte(nil), rec...)
		mut[i/8] ^= 1 << (i % 8)
		if _, _, _, err := DecodeRecord(mut); err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: error %v is not ErrCorrupt", i, err)
		}
	}
}

// TestRecordTruncation: every proper prefix of a record is ErrCorrupt.
func TestRecordTruncation(t *testing.T) {
	rec := EncodeRecord(1, []byte("payload bytes"))
	for n := 0; n < len(rec); n++ {
		if _, _, _, err := DecodeRecord(rec[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v", n, err)
		}
	}
}

// TestStoreSaveLoad: the plain round trip on both FS backends.
func TestStoreSaveLoad(t *testing.T) {
	backends := map[string]FS{"mem": NewMemFS()}
	dirFS, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backends["dir"] = dirFS
	for name, fs := range backends {
		t.Run(name, func(t *testing.T) {
			s := New(fs)
			if err := s.Save(2, 10, 3); err != nil {
				t.Fatal(err)
			}
			gen, val, err := s.Load(2)
			if err != nil {
				t.Fatal(err)
			}
			if gen != 10 || val != 3 {
				t.Fatalf("load: gen=%d val=%d", gen, val)
			}
			// Overwrite with a newer generation.
			if err := s.Save(2, 20, 1); err != nil {
				t.Fatal(err)
			}
			if gen, val, _ = s.Load(2); gen != 20 || val != 1 {
				t.Fatalf("after overwrite: gen=%d val=%d", gen, val)
			}
			if _, _, err := s.Load(5); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing node: %v", err)
			}
			st := s.Stats()
			if st.Saves != 2 || st.Restored != 2 || st.MissingLoads != 1 {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

// TestStoreWrongNodeRejected: a record renamed onto another node's file
// fails identity validation.
func TestStoreWrongNodeRejected(t *testing.T) {
	fs := NewMemFS()
	s := New(fs)
	if err := s.Save(1, 5, 2); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile("node-1.snap")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("node-0.snap", b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("impersonated snapshot: %v", err)
	}
}

// TestInjectorTorn: a torn write yields ErrCorrupt on load, and the
// previous snapshot is gone only because the torn record replaced it.
func TestInjectorTorn(t *testing.T) {
	inj := NewInjector(NewMemFS(), 1, Plan{})
	s := New(inj)
	inj.Arm(FaultTorn)
	if err := s.Save(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn write: %v", err)
	}
	if inj.Injected()[FaultTorn] != 1 {
		t.Fatalf("injected %v", inj.Injected())
	}
	// The next, unfaulted save repairs the file.
	if err := s.Save(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, val, err := s.Load(0); err != nil || val != 2 {
		t.Fatalf("after repair: val=%d err=%v", val, err)
	}
}

// TestInjectorBitFlip: a flipped bit yields ErrCorrupt on load.
func TestInjectorBitFlip(t *testing.T) {
	inj := NewInjector(NewMemFS(), 2, Plan{})
	s := New(inj)
	inj.Arm(FaultBitFlip)
	if err := s.Save(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: %v", err)
	}
}

// TestInjectorStale: a swallowed rename leaves the previous generation
// in place, and the monotonicity check reports ErrStale.
func TestInjectorStale(t *testing.T) {
	inj := NewInjector(NewMemFS(), 3, Plan{})
	s := New(inj)
	if err := s.Save(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	inj.Arm(FaultStale)
	if err := s.Save(0, 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(0); !errors.Is(err, ErrStale) {
		t.Fatalf("stale rollback: %v", err)
	}
}

// TestInjectorMissing: a lost file is ErrNotFound, not a crash.
func TestInjectorMissing(t *testing.T) {
	inj := NewInjector(NewMemFS(), 4, Plan{})
	s := New(inj)
	if err := s.Save(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	inj.Arm(FaultMissing)
	if err := s.Save(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file: %v", err)
	}
}

// TestInjectorPlan: a seeded plan faults every Nth write
// deterministically — two injectors with the same seed corrupt the same
// writes the same way.
func TestInjectorPlan(t *testing.T) {
	run := func(seed int64) []string {
		inj := NewInjector(NewMemFS(), seed, Plan{Every: 2, Kinds: []FaultKind{FaultTorn, FaultBitFlip, FaultStale}})
		s := New(inj)
		var outcomes []string
		for i := 0; i < 12; i++ {
			node := i % 3
			if err := s.Save(node, uint64(i+1), i%4); err != nil {
				outcomes = append(outcomes, "saveerr")
				continue
			}
			if _, _, err := s.Load(node); err != nil {
				switch {
				case errors.Is(err, ErrCorrupt):
					outcomes = append(outcomes, "corrupt")
				case errors.Is(err, ErrStale):
					outcomes = append(outcomes, "stale")
				default:
					outcomes = append(outcomes, "notfound")
				}
			} else {
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(9), run(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at write %d: %v vs %v", i, a, b)
		}
	}
	faulted := 0
	for _, o := range a {
		if o != "ok" {
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatalf("plan injected nothing: %v", a)
	}
}

// TestInjectorENOSPC: a full disk surfaces as an error wrapping
// syscall.ENOSPC — never an acked lie — and the short-written temp
// never reaches its rename, so the previous snapshot survives intact.
func TestInjectorENOSPC(t *testing.T) {
	inj := NewInjector(NewMemFS(), 5, Plan{})
	s := New(inj)
	if err := s.Save(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	inj.Arm(FaultENOSPC)
	err := s.Save(0, 2, 9)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("save on full disk: err = %v, want ENOSPC", err)
	}
	if gen, val, err := s.Load(0); err != nil || gen != 1 || val != 7 {
		t.Fatalf("previous snapshot damaged by failed write: gen=%d val=%d err=%v", gen, val, err)
	}
	if inj.Injected()[FaultENOSPC] != 1 {
		t.Fatalf("injected %v", inj.Injected())
	}
	// The disk "clears": the next save succeeds and advances normally.
	if err := s.Save(0, 2, 9); err != nil {
		t.Fatal(err)
	}
	if gen, val, err := s.Load(0); err != nil || gen != 2 || val != 9 {
		t.Fatalf("after recovery: gen=%d val=%d err=%v", gen, val, err)
	}
}

// TestParseFaultKinds: known kinds parse, unknown are named in the
// error.
func TestParseFaultKinds(t *testing.T) {
	ks, err := ParseFaultKinds([]string{"torn", "bitflip", "stale", "missing", "enospc"})
	if err != nil || len(ks) != 5 {
		t.Fatalf("parse: %v %v", ks, err)
	}
	if _, err := ParseFaultKinds([]string{"gremlin"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
