package store

import (
	"fmt"
	"math/rand"
	"sync"
	"syscall"
)

// FaultKind enumerates the storage-fault model: the real-world failure
// modes of a disk under crash, each mapped onto the write-to-temp +
// atomic-rename discipline the store uses.
type FaultKind string

const (
	// FaultTorn truncates the written bytes at a seeded point — the
	// classic torn write of a crash mid-write. The CRC over the
	// length-prefixed payload catches it on load.
	FaultTorn FaultKind = "torn"
	// FaultBitFlip flips one seeded bit of the written record — media
	// corruption. Caught by the CRC.
	FaultBitFlip FaultKind = "bitflip"
	// FaultStale swallows the atomic rename, leaving the previous
	// generation's file in place — a rollback to a stale snapshot.
	// Caught by the store's generation-monotonicity check.
	FaultStale FaultKind = "stale"
	// FaultMissing loses the file entirely: the rename removes both the
	// temp and the target. Loads see ErrNotFound.
	FaultMissing FaultKind = "missing"
	// FaultENOSPC models a full disk: the write persists only a seeded
	// prefix of its bytes (the short write a full filesystem leaves
	// behind) and fails with an error wrapping syscall.ENOSPC, so the
	// caller sees the pressure instead of an acked lie. The follow-up
	// rename is swallowed like stale, because a failed temp write never
	// reaches its rename.
	FaultENOSPC FaultKind = "enospc"
)

// ParseFaultKinds parses a comma- or plus-separated storage-fault kind
// list ("torn,bitflip").
func ParseFaultKinds(kinds []string) ([]FaultKind, error) {
	known := map[FaultKind]bool{FaultTorn: true, FaultBitFlip: true, FaultStale: true, FaultMissing: true, FaultENOSPC: true}
	out := make([]FaultKind, 0, len(kinds))
	for _, s := range kinds {
		k := FaultKind(s)
		if !known[k] {
			return nil, fmt.Errorf("store: unknown storage-fault kind %q (want torn|bitflip|stale|missing|enospc)", s)
		}
		out = append(out, k)
	}
	return out, nil
}

// Plan schedules background storage faults: every Every-th store write
// suffers a fault whose kind is drawn (seeded) from Kinds. The zero
// Plan injects nothing.
type Plan struct {
	Every int
	Kinds []FaultKind
}

// Injector sits between a Store and its FS, corrupting writes on a
// seeded schedule so recovery paths are tested against hostile disks.
// It is itself an FS, so the store is oblivious to it. Faults are
// decided per store write (one WriteFile + Rename pair): the injector
// tags the temp file at write time and applies rename-level faults
// (stale, missing) when that temp is renamed.
type Injector struct {
	inner FS

	mu       sync.Mutex
	rng      *rand.Rand
	plan     Plan
	armed    []FaultKind          // explicit one-shot faults, consumed FIFO before the plan
	pending  map[string]FaultKind // temp name → rename-level fault to apply
	writes   int                  // store writes seen (WriteFile calls)
	injected map[FaultKind]int
}

// NewInjector wraps inner with a seeded fault schedule. A zero plan
// (Every ≤ 0 or no kinds) makes the injector transparent until Arm is
// called.
func NewInjector(inner FS, seed int64, plan Plan) *Injector {
	return &Injector{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed*97_561 + 11)),
		plan:     plan,
		pending:  make(map[string]FaultKind),
		injected: make(map[FaultKind]int),
	}
}

// Arm queues one fault to apply to the next store write, ahead of the
// plan. Tests use it to hit a specific Save deterministically.
func (in *Injector) Arm(k FaultKind) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = append(in.armed, k)
}

// Injected reports how many faults of each kind have been applied.
func (in *Injector) Injected() map[FaultKind]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[FaultKind]int, len(in.injected))
	for k, n := range in.injected {
		out[k] = n
	}
	return out
}

// nextFault decides (under mu) the fault for the current write, if any.
func (in *Injector) nextFault() (FaultKind, bool) {
	if len(in.armed) > 0 {
		k := in.armed[0]
		in.armed = in.armed[1:]
		return k, true
	}
	if in.plan.Every > 0 && len(in.plan.Kinds) > 0 && in.writes%in.plan.Every == 0 {
		return in.plan.Kinds[in.rng.Intn(len(in.plan.Kinds))], true
	}
	return "", false
}

// ReadFile implements FS (reads pass through untouched — the store's
// validation is what is under test, not the read path).
func (in *Injector) ReadFile(name string) ([]byte, error) { return in.inner.ReadFile(name) }

// WriteFile implements FS, applying write-level faults (torn, bitflip)
// to the data and tagging the name with rename-level faults (stale,
// missing) for the Rename that follows.
func (in *Injector) WriteFile(name string, data []byte) error {
	in.mu.Lock()
	in.writes++
	k, fault := in.nextFault()
	enospc := false
	if fault {
		in.injected[k]++
		switch k {
		case FaultTorn:
			if len(data) > 1 {
				data = data[:1+in.rng.Intn(len(data)-1)]
			}
		case FaultBitFlip:
			if len(data) > 0 {
				data = append([]byte(nil), data...)
				bit := in.rng.Intn(len(data) * 8)
				data[bit/8] ^= 1 << (bit % 8)
			}
		case FaultStale, FaultMissing:
			in.pending[name] = k
		case FaultENOSPC:
			// Short write + surfaced error: the disk is full. A seeded
			// prefix still lands (a real ENOSPC leaves one) but the
			// caller sees the failure and aborts before the rename
			// commit point, so the previous snapshot survives.
			if len(data) > 1 {
				data = data[:in.rng.Intn(len(data))]
			}
			enospc = true
		}
	}
	in.mu.Unlock()
	err := in.inner.WriteFile(name, data)
	if enospc {
		return fmt.Errorf("store: write %s: %w", name, syscall.ENOSPC)
	}
	return err
}

// Rename implements FS, applying any rename-level fault tagged at write
// time: stale swallows the rename (the old file survives), missing
// removes both files.
func (in *Injector) Rename(oldname, newname string) error {
	in.mu.Lock()
	k, fault := in.pending[oldname]
	delete(in.pending, oldname)
	in.mu.Unlock()
	if !fault {
		return in.inner.Rename(oldname, newname)
	}
	switch k {
	case FaultStale:
		return in.inner.Remove(oldname)
	case FaultMissing:
		_ = in.inner.Remove(oldname)
		_ = in.inner.Remove(newname) // may not exist yet; both gone either way
		return nil
	}
	return in.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error { return in.inner.Remove(name) }
