// Package store is the durable crash-recovery layer under the cluster
// runtime: a per-node snapshot store that persists process registers as
// checksummed, versioned records, with a seeded storage-fault injector
// layered beneath it so recovery paths are exercised against hostile
// disks — torn writes, bit flips, stale-generation rollbacks, missing
// files.
//
// The paper's frame makes this layer cheap to get right: Theorem 1
// guarantees the derived token rings reconverge from *arbitrary*
// transient state, so a node restarting from a corrupted, stale, or
// absent snapshot is an in-model perturbation, not a disaster. The
// store therefore never needs write-ahead logging or replication — it
// validates what it reads, and the supervisor deliberately resumes from
// arbitrary state when validation fails, trusting convergence.
//
// Three pieces:
//
//   - the record framing (this file): magic + monotonic generation +
//     length-prefixed payload + CRC32, the unit both the per-node
//     snapshot files and checkd's persisted verdict cache are built
//     from;
//   - the FS abstraction and the fault injector (fs.go, injector.go):
//     every store write goes write-to-temp + atomic rename through a
//     pluggable FS, and the injector corrupts those primitives on a
//     seeded schedule;
//   - the Store itself (store.go): Save/Load of one register snapshot
//     per node, with generation-monotonicity checking that detects
//     rollback to a stale snapshot.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// recordMagic opens every record. A version bump changes the last byte.
var recordMagic = [4]byte{'S', 'N', 'P', '1'}

// recordHeaderSize is magic + generation + payload length.
const recordHeaderSize = 4 + 8 + 4

// maxRecordPayload bounds one record's payload; snapshots are a few
// dozen bytes and cache entries a few KB, so anything larger is a
// corrupt length field, not data.
const maxRecordPayload = 1 << 24

// Record read errors. ErrCorrupt covers everything a hostile disk can
// produce (bad magic, impossible length, checksum mismatch, truncation);
// ErrStale and ErrNotFound are store-level classifications.
var (
	ErrCorrupt  = errors.New("store: corrupt record")
	ErrStale    = errors.New("store: stale generation")
	ErrNotFound = errors.New("store: no snapshot")
)

// EncodeRecord frames one payload: magic, big-endian generation,
// big-endian payload length, payload, CRC32 (IEEE) over the generation +
// length + payload bytes. The CRC covering the length prefix means a
// torn write that truncates the payload cannot masquerade as a shorter
// valid record.
func EncodeRecord(gen uint64, payload []byte) []byte {
	out := make([]byte, recordHeaderSize+len(payload)+4)
	copy(out, recordMagic[:])
	binary.BigEndian.PutUint64(out[4:], gen)
	binary.BigEndian.PutUint32(out[12:], uint32(len(payload)))
	copy(out[recordHeaderSize:], payload)
	crc := crc32.ChecksumIEEE(out[4 : recordHeaderSize+len(payload)])
	binary.BigEndian.PutUint32(out[recordHeaderSize+len(payload):], crc)
	return out
}

// DecodeRecord parses one record from the front of b, returning the
// generation, the payload, and the remaining bytes after the record.
// Every failure mode — short buffer, wrong magic, oversized length,
// checksum mismatch — is ErrCorrupt; arbitrary bytes either decode to
// exactly what was encoded or fail loudly, never to a silently-wrong
// payload.
func DecodeRecord(b []byte) (gen uint64, payload, rest []byte, err error) {
	if len(b) < recordHeaderSize+4 {
		return 0, nil, nil, fmt.Errorf("%w: %d bytes is shorter than a record header", ErrCorrupt, len(b))
	}
	if [4]byte(b[:4]) != recordMagic {
		return 0, nil, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	gen = binary.BigEndian.Uint64(b[4:])
	n := binary.BigEndian.Uint32(b[12:])
	if n > maxRecordPayload || int(n) > len(b)-recordHeaderSize-4 {
		return 0, nil, nil, fmt.Errorf("%w: payload length %d exceeds the %d bytes present", ErrCorrupt, n, len(b))
	}
	end := recordHeaderSize + int(n)
	want := binary.BigEndian.Uint32(b[end:])
	if got := crc32.ChecksumIEEE(b[4:end]); got != want {
		return 0, nil, nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return gen, b[recordHeaderSize:end], b[end+4:], nil
}

// NextMagic returns the offset of the next record-magic occurrence in b
// at or after position 1, or -1. Loaders of record streams use it to
// resynchronize past a corrupt record and skip to the next candidate
// instead of abandoning the rest of the file.
func NextMagic(b []byte) int {
	for i := 1; i+4 <= len(b); i++ {
		if [4]byte(b[i:i+4]) == recordMagic {
			return i
		}
	}
	return -1
}
