package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FS is the slice of a filesystem the store uses: whole-file reads,
// whole-file writes (to temp names), atomic renames, and removals. The
// store's durability discipline — write-to-temp then rename — is
// expressed against this interface, which is what lets the fault
// injector corrupt exactly those primitives.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte) error
	Rename(oldname, newname string) error
	Remove(name string) error
}

// DirFS is the real-disk FS rooted at one directory.
type DirFS struct{ dir string }

// NewDirFS creates (if needed) and roots an FS at dir.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	return &DirFS{dir: dir}, nil
}

func (f *DirFS) path(name string) string { return filepath.Join(f.dir, filepath.Base(name)) }

// ReadFile implements FS.
func (f *DirFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(f.path(name)) }

// WriteFile implements FS.
func (f *DirFS) WriteFile(name string, data []byte) error {
	return os.WriteFile(f.path(name), data, 0o644)
}

// Rename implements FS.
func (f *DirFS) Rename(oldname, newname string) error {
	return os.Rename(f.path(oldname), f.path(newname))
}

// Remove implements FS.
func (f *DirFS) Remove(name string) error { return os.Remove(f.path(name)) }

// MemFS is the in-memory FS: what checkd's /v1/cluster and /v1/chaos
// persistence modes run on (a service request must not write the
// server's disk), and what keeps store-level tests hermetic. It honors
// the same semantics as DirFS, including os.ErrNotExist on missing
// files.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS builds an empty in-memory FS.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

// ReadFile implements FS.
func (f *MemFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("store: read %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), b...), nil
}

// WriteFile implements FS.
func (f *MemFS) WriteFile(name string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[name] = append([]byte(nil), data...)
	return nil
}

// Rename implements FS.
func (f *MemFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.files[oldname]
	if !ok {
		return fmt.Errorf("store: rename %s: %w", oldname, os.ErrNotExist)
	}
	delete(f.files, oldname)
	f.files[newname] = b
	return nil
}

// Remove implements FS.
func (f *MemFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; !ok {
		return fmt.Errorf("store: remove %s: %w", name, os.ErrNotExist)
	}
	delete(f.files, name)
	return nil
}
