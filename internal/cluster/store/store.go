package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Snapshot is one persisted register state: the payload of a per-node
// record. Node is stored (and checked on load) so a record renamed onto
// the wrong file cannot impersonate another process.
type Snapshot struct {
	Node int `json:"node"`
	Val  int `json:"val"`
}

// EncodeSnapshot renders one snapshot payload.
func EncodeSnapshot(s Snapshot) []byte {
	b, _ := json.Marshal(s) // two ints; cannot fail
	return b
}

// DecodeSnapshot parses a snapshot payload. Arbitrary bytes yield
// either a valid snapshot or an ErrCorrupt — never a panic, and (under
// the record CRC) never a silently-wrong state.
func DecodeSnapshot(payload []byte) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("%w: snapshot payload: %v", ErrCorrupt, err)
	}
	return s, nil
}

// Stats counts the store's activity, including what the fault injector
// and the validation layer caught. Exposed in cluster results and
// checkd responses so a run's storage story is visible.
type Stats struct {
	Saves        int `json:"saves"`
	SaveErrors   int `json:"save_errors,omitempty"`
	Loads        int `json:"loads"`
	Restored     int `json:"restored"`                // loads that returned a valid snapshot
	CorruptLoads int `json:"corrupt_loads,omitempty"` // checksum/decode failures
	StaleLoads   int `json:"stale_loads,omitempty"`   // generation rollback detected
	MissingLoads int `json:"missing_loads,omitempty"` // no snapshot file
}

// Store persists one checksummed register snapshot per node. Writes go
// write-to-temp + atomic rename so a crash mid-save leaves the previous
// snapshot intact; generations are monotonic per node, so a rollback to
// an older file (the stale fault) is detected on load rather than
// silently resurrecting old state.
//
// Store is goroutine-safe; the free-running engine persists from its
// collector while tests may load concurrently.
type Store struct {
	fs FS

	mu      sync.Mutex
	lastGen map[int]uint64
	stats   Stats
}

// New builds a store over fs (use NewDirFS for real disks, NewMemFS for
// hermetic or in-service use, and wrap either in an Injector to test
// against storage faults).
func New(fs FS) *Store {
	return &Store{fs: fs, lastGen: make(map[int]uint64)}
}

// NewDir is shorthand for a store on a real directory.
func NewDir(dir string) (*Store, error) {
	fs, err := NewDirFS(dir)
	if err != nil {
		return nil, err
	}
	return New(fs), nil
}

func snapName(node int) string { return fmt.Sprintf("node-%d.snap", node) }

// Save persists node's register under a generation number, which must
// be monotone per node (engines use their step clock). The write is
// temp + rename: either the new record lands completely or the old one
// survives.
func (s *Store) Save(node int, gen uint64, val int) error {
	rec := EncodeRecord(gen, EncodeSnapshot(Snapshot{Node: node, Val: val}))
	name := snapName(node)
	tmp := name + ".tmp"
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fs.WriteFile(tmp, rec); err != nil {
		s.stats.SaveErrors++
		return fmt.Errorf("store: save node %d: %w", node, err)
	}
	if err := s.fs.Rename(tmp, name); err != nil {
		s.stats.SaveErrors++
		return fmt.Errorf("store: save node %d: %w", node, err)
	}
	if gen > s.lastGen[node] {
		s.lastGen[node] = gen
	}
	s.stats.Saves++
	return nil
}

// Load reads and validates node's snapshot: record checksum, payload
// decode, node identity, and generation monotonicity against the
// newest generation this store has written. The error classifies the
// failure (ErrNotFound, ErrCorrupt, ErrStale) so the supervisor can
// report *why* a node resumed from arbitrary state.
func (s *Store) Load(node int) (gen uint64, val int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Loads++
	b, err := s.fs.ReadFile(snapName(node))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			s.stats.MissingLoads++
			return 0, 0, fmt.Errorf("%w for node %d", ErrNotFound, node)
		}
		s.stats.CorruptLoads++
		return 0, 0, fmt.Errorf("%w: read node %d: %v", ErrCorrupt, node, err)
	}
	gen, payload, _, err := DecodeRecord(b)
	if err != nil {
		s.stats.CorruptLoads++
		return 0, 0, fmt.Errorf("node %d: %w", node, err)
	}
	snap, err := DecodeSnapshot(payload)
	if err != nil {
		s.stats.CorruptLoads++
		return 0, 0, fmt.Errorf("node %d: %w", node, err)
	}
	if snap.Node != node {
		s.stats.CorruptLoads++
		return 0, 0, fmt.Errorf("%w: snapshot names node %d, loaded for node %d", ErrCorrupt, snap.Node, node)
	}
	if last := s.lastGen[node]; gen < last {
		s.stats.StaleLoads++
		return 0, 0, fmt.Errorf("%w: node %d snapshot is generation %d, newest written was %d",
			ErrStale, node, gen, last)
	}
	s.stats.Restored++
	return gen, snap.Val, nil
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
