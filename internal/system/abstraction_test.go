package system

import (
	"errors"
	"testing"

	"repro/internal/bitset"
)

func TestIdentityAbstraction(t *testing.T) {
	ab := Identity(5)
	for s := 0; s < 5; s++ {
		if ab.Of(s) != s {
			t.Fatalf("Of(%d) = %d", s, ab.Of(s))
		}
	}
	if !ab.Onto() {
		t.Fatal("identity should be onto")
	}
	if ab.NumConcrete() != 5 || ab.NumAbstract() != 5 {
		t.Fatal("sizes wrong")
	}
}

func TestNewAbstractionTotalityError(t *testing.T) {
	_, err := NewAbstraction(3, 2, func(s int) int { return s }) // f(2)=2 out of range
	if !errors.Is(err, ErrNotTotal) {
		t.Fatalf("err = %v, want ErrNotTotal", err)
	}
}

func TestOnto(t *testing.T) {
	onto, err := NewAbstraction(4, 2, func(s int) int { return s % 2 })
	if err != nil {
		t.Fatal(err)
	}
	if !onto.Onto() {
		t.Fatal("s%2 over 4→2 should be onto")
	}
	notOnto, err := NewAbstraction(4, 3, func(s int) int { return s % 2 })
	if err != nil {
		t.Fatal(err)
	}
	if notOnto.Onto() {
		t.Fatal("s%2 over 4→3 should not be onto")
	}
}

func TestImagePreimage(t *testing.T) {
	ab, err := NewAbstraction(6, 3, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	img := ab.Image(bitset.FromSlice(6, []int{0, 1, 4}))
	if !img.Equal(bitset.FromSlice(3, []int{0, 2})) {
		t.Fatalf("Image = %v", img)
	}
	pre := ab.Preimage(bitset.FromSlice(3, []int{1}))
	if !pre.Equal(bitset.FromSlice(6, []int{2, 3})) {
		t.Fatalf("Preimage = %v", pre)
	}
}

func TestPreimageImageGalois(t *testing.T) {
	ab, err := NewAbstraction(10, 4, func(s int) int { return s % 4 })
	if err != nil {
		t.Fatal(err)
	}
	// image(preimage(X)) == X when ab is onto.
	x := bitset.FromSlice(4, []int{1, 3})
	got := ab.Image(ab.Preimage(x))
	if !got.Equal(x) {
		t.Fatalf("Image(Preimage(%v)) = %v", x, got)
	}
}

func TestMapSeq(t *testing.T) {
	ab, err := NewAbstraction(4, 2, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	got := ab.MapSeq([]int{0, 1, 2, 3})
	want := []int{0, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MapSeq = %v", got)
		}
	}
}

func TestMapSpaces(t *testing.T) {
	// Concrete: two bits; abstract: their parity.
	cSp := NewSpace(Bool("a"), Bool("b"))
	aSp := NewSpace(Bool("parity"))
	ab, err := MapSpaces(cSp, aSp, func(c Vals, a Vals) {
		a[0] = (c[0] + c[1]) % 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ab.Onto() {
		t.Fatal("parity should be onto")
	}
	s := cSp.Encode(Vals{1, 0})
	if got := ab.Of(s); got != aSp.Encode(Vals{1}) {
		t.Fatalf("Of = %d", got)
	}
}
