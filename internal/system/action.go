package system

import "fmt"

// Action is one guarded command "guard → effect" in the paper's notation.
// Guard inspects a decoded state; Effect mutates the decoded state in place
// to produce the successor. Effects run on a private copy, so they may write
// any variable — whether a system respects the concrete execution model
// (write own state only) is a property of how its actions are written, and
// the ring package enforces it per system.
type Action struct {
	Name   string
	Guard  func(v Vals) bool
	Effect func(v Vals)
}

// Enumerate builds the automaton of the guarded-command system with the
// given actions over sp, under interleaving (central daemon) semantics:
// each enabled action contributes one transition per state. init selects
// the initial states; a nil init marks every state initial (wrapper
// convention).
//
// Self-loop transitions produced by an effect that does not change the
// state are kept: they are the paper's τ (stuttering) steps, which matter
// for the C3 derivation in Section 6.
func Enumerate(name string, sp *Space, actions []Action, init func(v Vals) bool) *System {
	b := NewSpaceBuilder(name, sp)
	cur := make(Vals, sp.NumVars())
	next := make(Vals, sp.NumVars())
	for s := 0; s < sp.Size(); s++ {
		cur = sp.Decode(s, cur)
		for _, a := range actions {
			if a.Guard == nil || a.Effect == nil {
				panic(fmt.Sprintf("system: action %q of %q missing guard or effect", a.Name, name))
			}
			if !a.Guard(cur) {
				continue
			}
			copy(next, cur)
			a.Effect(next)
			b.AddTransition(s, sp.Encode(next))
		}
		if init == nil || init(cur) {
			b.AddInit(s)
		}
	}
	return b.Build()
}

// EnabledActions returns the names of the actions enabled in state s, in
// declaration order. Useful for traces and the simulator.
func EnabledActions(sp *Space, actions []Action, s int) []string {
	cur := sp.Decode(s, nil)
	var names []string
	for _, a := range actions {
		if a.Guard(cur) {
			names = append(names, a.Name)
		}
	}
	return names
}
