package system

import "fmt"

// LabeledEdge is one transition tagged with the guarded command (action)
// that produced it.
type LabeledEdge struct {
	// Action is an index into the owning LabeledSystem's action names.
	Action int
	// To is the successor state.
	To int
}

// LabeledSystem is an automaton that remembers which action produced each
// transition. Plain Systems suffice for the Section 2 relations, which
// are defined purely on state sequences; labels are needed for
// fairness-aware analysis, where "action α is eventually taken" must be
// distinguishable from "some transition happens".
type LabeledSystem struct {
	base    *System
	actions []string
	edges   [][]LabeledEdge
	enabled [][]bool // enabled[s][a]: action a enabled in state s
}

// EnumerateLabeled builds a labeled automaton from guarded actions,
// mirroring Enumerate (including keeping τ self-loops).
func EnumerateLabeled(name string, sp *Space, actions []Action, init func(v Vals) bool) *LabeledSystem {
	ls := &LabeledSystem{
		actions: make([]string, len(actions)),
		edges:   make([][]LabeledEdge, sp.Size()),
		enabled: make([][]bool, sp.Size()),
	}
	for i, a := range actions {
		ls.actions[i] = a.Name
	}
	b := NewSpaceBuilder(name, sp)
	cur := make(Vals, sp.NumVars())
	next := make(Vals, sp.NumVars())
	for s := 0; s < sp.Size(); s++ {
		cur = sp.Decode(s, cur)
		ls.enabled[s] = make([]bool, len(actions))
		for ai, a := range actions {
			if !a.Guard(cur) {
				continue
			}
			ls.enabled[s][ai] = true
			copy(next, cur)
			a.Effect(next)
			t := sp.Encode(next)
			b.AddTransition(s, t)
			ls.edges[s] = append(ls.edges[s], LabeledEdge{Action: ai, To: t})
		}
		if init == nil || init(cur) {
			b.AddInit(s)
		}
	}
	ls.base = b.Build()
	return ls
}

// Base returns the underlying unlabeled automaton.
func (ls *LabeledSystem) Base() *System { return ls.base }

// NumActions returns the number of distinct actions.
func (ls *LabeledSystem) NumActions() int { return len(ls.actions) }

// ActionName returns the name of action a.
func (ls *LabeledSystem) ActionName(a int) string { return ls.actions[a] }

// Edges returns the labeled transitions from s (shared storage; do not
// modify).
func (ls *LabeledSystem) Edges(s int) []LabeledEdge { return ls.edges[s] }

// Enabled reports whether action a's guard holds in state s.
func (ls *LabeledSystem) Enabled(s, a int) bool { return ls.enabled[s][a] }

// BoxLabeled composes labeled systems by unioning actions and
// transitions; action indices of b are shifted past a's. Initial states
// are unioned, as with Box.
func BoxLabeled(a, b *LabeledSystem) *LabeledSystem {
	if a.base.NumStates() != b.base.NumStates() {
		panic(fmt.Sprintf("system: BoxLabeled(%q, %q): |Σ| mismatch", a.base.Name(), b.base.Name()))
	}
	n := a.base.NumStates()
	out := &LabeledSystem{
		actions: append(append([]string(nil), a.actions...), b.actions...),
		edges:   make([][]LabeledEdge, n),
		enabled: make([][]bool, n),
	}
	shift := len(a.actions)
	for s := 0; s < n; s++ {
		out.edges[s] = append(out.edges[s], a.edges[s]...)
		for _, e := range b.edges[s] {
			out.edges[s] = append(out.edges[s], LabeledEdge{Action: e.Action + shift, To: e.To})
		}
		out.enabled[s] = make([]bool, len(out.actions))
		copy(out.enabled[s], a.enabled[s])
		copy(out.enabled[s][shift:], b.enabled[s])
	}
	out.base = Box(a.base, b.base)
	return out
}

// PriorityBoxLabeled composes base with a preempting labeled wrapper:
// where the wrapper has an enabled action, only its edges occur.
func PriorityBoxLabeled(base, pre *LabeledSystem) *LabeledSystem {
	if base.base.NumStates() != pre.base.NumStates() {
		panic(fmt.Sprintf("system: PriorityBoxLabeled(%q, %q): |Σ| mismatch", base.base.Name(), pre.base.Name()))
	}
	n := base.base.NumStates()
	out := &LabeledSystem{
		actions: append(append([]string(nil), base.actions...), pre.actions...),
		edges:   make([][]LabeledEdge, n),
		enabled: make([][]bool, n),
	}
	shift := len(base.actions)
	for s := 0; s < n; s++ {
		out.enabled[s] = make([]bool, len(out.actions))
		if len(pre.edges[s]) > 0 {
			for _, e := range pre.edges[s] {
				out.edges[s] = append(out.edges[s], LabeledEdge{Action: e.Action + shift, To: e.To})
			}
			copy(out.enabled[s][shift:], pre.enabled[s])
			continue
		}
		out.edges[s] = append(out.edges[s], base.edges[s]...)
		copy(out.enabled[s], base.enabled[s])
	}
	out.base = PriorityBox(base.base, pre.base)
	return out
}
