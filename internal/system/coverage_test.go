package system

import (
	"strings"
	"testing"
)

func TestStripSelfLoops(t *testing.T) {
	b := NewBuilder("loopy", 4)
	b.AddTransition(0, 0)
	b.AddTransition(0, 1)
	b.AddTransition(1, 1)
	b.AddTransition(2, 3)
	b.AddInit(0)
	sys := b.Build()

	stripped := sys.StripSelfLoops()
	if stripped.HasTransition(0, 0) || stripped.HasTransition(1, 1) {
		t.Fatal("self loops survived")
	}
	if !stripped.HasTransition(0, 1) || !stripped.HasTransition(2, 3) {
		t.Fatal("real transitions lost")
	}
	if stripped.NumTransitions() != 2 {
		t.Fatalf("NumTransitions = %d", stripped.NumTransitions())
	}
	if !stripped.Terminal(1) {
		t.Fatal("state 1 should become terminal")
	}
	// Original untouched.
	if !sys.HasTransition(0, 0) {
		t.Fatal("StripSelfLoops mutated the original")
	}
	// Init preserved.
	if !stripped.IsInit(0) {
		t.Fatal("init lost")
	}
	// Idempotent on loop-free systems (and shares nothing harmful).
	again := stripped.StripSelfLoops()
	if !TransitionsEqual(again, stripped) {
		t.Fatal("strip not idempotent")
	}
}

func TestSystemStringAndSpaceAccessors(t *testing.T) {
	sp := NewSpace(Bool("t"))
	sys := Enumerate("demo", sp, nil, nil)
	if sys.Space() != sp {
		t.Fatal("Space accessor wrong")
	}
	s := sys.String()
	for _, want := range []string{"demo", "|Σ|=2", "|T|=0", "|I|=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String = %q", s)
		}
	}
}

func TestVarCustomFormatter(t *testing.T) {
	v := Var{Name: "phase", Card: 2, Fmt: func(x int) string {
		if x == 0 {
			return "idle"
		}
		return "busy"
	}}
	sp := NewSpace(v)
	if got := sp.StateString(1); got != "phase=busy" {
		t.Fatalf("StateString = %q", got)
	}
}

func TestBuilderValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBuilder("bad", 0) },
		func() {
			b := NewBuilder("bad", 2)
			b.AddTransition(0, 5)
		},
		func() {
			b := NewBuilder("bad", 2)
			b.AddInit(-1)
		},
		func() {
			sp := NewSpace(Int("x", 2))
			Enumerate("bad", sp, []Action{{Name: "broken"}}, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMergeSortedEdgeCases(t *testing.T) {
	// Exercised through Box with asymmetric successor lists.
	a := NewBuilder("a", 4)
	a.AddTransition(0, 1)
	a.AddTransition(0, 3)
	b := NewBuilder("b", 4)
	b.AddTransition(0, 2)
	boxed := Box(a.Build(), b.Build())
	got := boxed.Succ(0)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Succ = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Succ = %v", got)
		}
	}
	// One side empty.
	if got := boxed.Succ(1); len(got) != 0 {
		t.Fatalf("Succ(1) = %v", got)
	}
}

func TestPriorityBoxSemantics(t *testing.T) {
	base := NewBuilder("base", 3)
	base.AddTransition(0, 1)
	base.AddTransition(1, 2)
	base.AddInit(0)
	pre := NewBuilder("pre", 3)
	pre.AddTransition(1, 0) // preempts base at state 1
	comp := PriorityBox(base.Build(), pre.Build())
	if !comp.HasTransition(0, 1) {
		t.Fatal("base transition lost where wrapper idle")
	}
	if comp.HasTransition(1, 2) {
		t.Fatal("preempted base transition survived")
	}
	if !comp.HasTransition(1, 0) {
		t.Fatal("wrapper transition missing")
	}
	if !strings.Contains(comp.Name(), "<]") {
		t.Fatalf("Name = %q", comp.Name())
	}
	if got := comp.InitStates(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("init = %v", got)
	}
}

func TestPriorityBoxMismatchPanics(t *testing.T) {
	a := NewBuilder("a", 2).Build()
	b := NewBuilder("b", 3).Build()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PriorityBox(a, b)
}

func TestSpaceOverflowPanics(t *testing.T) {
	vars := make([]Var, 64)
	for i := range vars {
		vars[i] = Int(strings.Repeat("x", 1)+string(rune('a'+i%26))+string(rune('0'+i/26)), 8)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	NewSpace(vars...)
}
