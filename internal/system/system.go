package system

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// System is the paper's Definition 1: a finite-state automaton (Σ, T, I)
// where Σ is [0, NumStates()), T is the transition relation, and I is the
// set of initial states. A computation is a maximal sequence of states
// related by T (finite computations end in states with no outgoing
// transition).
//
// Systems are immutable once built; construct them with a Builder or with
// Enumerate.
type System struct {
	name  string
	space *Space // may be nil for raw index-based systems
	n     int
	succ  [][]int
	init  *bitset.Set
	nT    int
}

// Builder accumulates transitions and initial states for a System.
type Builder struct {
	name  string
	space *Space
	n     int
	succ  []map[int]struct{}
	init  *bitset.Set
}

// NewBuilder returns a builder for a system over the raw state space [0, n).
func NewBuilder(name string, n int) *Builder {
	if n <= 0 {
		panic(fmt.Sprintf("system: non-positive state count %d", n))
	}
	return &Builder{
		name: name,
		n:    n,
		succ: make([]map[int]struct{}, n),
		init: bitset.New(n),
	}
}

// NewSpaceBuilder returns a builder for a system over the given space.
func NewSpaceBuilder(name string, sp *Space) *Builder {
	b := NewBuilder(name, sp.Size())
	b.space = sp
	return b
}

func (b *Builder) checkState(s int) {
	if s < 0 || s >= b.n {
		panic(fmt.Sprintf("system: state %d out of [0,%d) in %q", s, b.n, b.name))
	}
}

// AddTransition records the transition (s, t). Duplicates are merged.
func (b *Builder) AddTransition(s, t int) {
	b.checkState(s)
	b.checkState(t)
	if b.succ[s] == nil {
		b.succ[s] = make(map[int]struct{})
	}
	b.succ[s][t] = struct{}{}
}

// AddInit marks s as an initial state.
func (b *Builder) AddInit(s int) {
	b.checkState(s)
	b.init.Add(s)
}

// Wrappers add no initial states at all: a Builder with no AddInit calls
// yields a system with I = ∅, the wrapper convention used by Box.

// Build freezes the builder into an immutable System.
func (b *Builder) Build() *System {
	sys := &System{
		name:  b.name,
		space: b.space,
		n:     b.n,
		succ:  make([][]int, b.n),
		init:  b.init.Clone(),
	}
	for s, set := range b.succ {
		if len(set) == 0 {
			continue
		}
		ts := make([]int, 0, len(set))
		for t := range set {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		sys.succ[s] = ts
		sys.nT += len(ts)
	}
	return sys
}

// Name returns the system's display name.
func (sys *System) Name() string { return sys.name }

// Space returns the structured state space, or nil for raw systems.
func (sys *System) Space() *Space { return sys.space }

// NumStates returns |Σ|.
func (sys *System) NumStates() int { return sys.n }

// NumTransitions returns |T|.
func (sys *System) NumTransitions() int { return sys.nT }

// Succ returns the successors of s in increasing order. The returned slice
// is owned by the System and must not be modified; it is shared rather than
// copied because Succ is the hot path of every reachability sweep.
func (sys *System) Succ(s int) []int { return sys.succ[s] }

// HasTransition reports whether (s, t) ∈ T.
func (sys *System) HasTransition(s, t int) bool {
	ts := sys.succ[s]
	i := sort.SearchInts(ts, t)
	return i < len(ts) && ts[i] == t
}

// Terminal reports whether s has no outgoing transition (computations
// reaching s are finite and end there).
func (sys *System) Terminal(s int) bool { return len(sys.succ[s]) == 0 }

// Init returns a copy of the initial-state set.
func (sys *System) Init() *bitset.Set { return sys.init.Clone() }

// IsInit reports whether s ∈ I.
func (sys *System) IsInit(s int) bool { return sys.init.Has(s) }

// InitStates returns the initial states in increasing order.
func (sys *System) InitStates() []int { return sys.init.Members() }

// StateString renders s using the system's space, or as "s<i>" for raw
// systems.
func (sys *System) StateString(s int) string {
	if sys.space != nil {
		return sys.space.StateString(s)
	}
	return fmt.Sprintf("s%d", s)
}

// String summarizes the automaton.
func (sys *System) String() string {
	return fmt.Sprintf("%s: |Σ|=%d |T|=%d |I|=%d", sys.name, sys.n, sys.nT, sys.init.Count())
}

// Rename returns a shallow copy of sys with a different display name.
// Sharing the transition storage is safe because systems are immutable.
func (sys *System) Rename(name string) *System {
	c := *sys
	c.name = name
	return &c
}

// WithInit returns a copy of sys whose initial states are exactly the given
// ones. Used when deriving an initialized system from a wrapper-style
// (all-states-initial) automaton.
func (sys *System) WithInit(states []int) *System {
	c := *sys
	c.init = bitset.FromSlice(sys.n, states)
	return &c
}

// StripSelfLoops returns a copy of sys without self-loop transitions.
// A guarded command whose effect leaves the state unchanged (a τ step,
// Section 6) contributes the transition (s, s); as a sequence of states,
// executing it changes nothing, and a daemon spinning on such a no-op
// forever is indistinguishable from not executing at all. Dropping
// self-loops models the standard convention that maximal computations are
// sequences of state *changes*.
func (sys *System) StripSelfLoops() *System {
	c := *sys
	c.succ = make([][]int, sys.n)
	c.nT = 0
	for s := 0; s < sys.n; s++ {
		ts := sys.succ[s]
		keep := ts
		for i, t := range ts {
			if t == s {
				keep = make([]int, 0, len(ts)-1)
				keep = append(keep, ts[:i]...)
				for _, u := range ts[i+1:] {
					if u != s {
						keep = append(keep, u)
					}
				}
				break
			}
		}
		c.succ[s] = keep
		c.nT += len(keep)
	}
	return &c
}

// TransitionsEqual reports whether two systems over the same state space
// have exactly the same transition relation. Used by the derivations to
// check claims of the form "the composed system IS Dijkstra's system".
func TransitionsEqual(a, b *System) bool {
	if a.n != b.n || a.nT != b.nT {
		return false
	}
	for s := 0; s < a.n; s++ {
		as, bs := a.succ[s], b.succ[s]
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	return true
}

// Equal reports whether two systems have identical state spaces, transition
// relations, and initial-state sets.
func Equal(a, b *System) bool {
	return TransitionsEqual(a, b) && a.init.Equal(b.init)
}

// DiffTransitions returns up to max transitions present in a but not in b,
// for diagnostic messages. Pass max <= 0 for all of them.
func DiffTransitions(a, b *System, max int) [][2]int {
	var out [][2]int
	for s := 0; s < a.n; s++ {
		for _, t := range a.succ[s] {
			if !b.HasTransition(s, t) {
				out = append(out, [2]int{s, t})
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}
