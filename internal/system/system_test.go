package system

import (
	"strings"
	"testing"
)

// chain builds the system s0 -> s1 -> ... -> s(n-1) with init {0}.
func chain(t *testing.T, name string, n int) *System {
	t.Helper()
	b := NewBuilder(name, n)
	for i := 0; i+1 < n; i++ {
		b.AddTransition(i, i+1)
	}
	b.AddInit(0)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	sys := chain(t, "chain", 4)
	if sys.NumStates() != 4 || sys.NumTransitions() != 3 {
		t.Fatalf("got %s", sys)
	}
	if !sys.HasTransition(0, 1) || sys.HasTransition(1, 0) {
		t.Fatal("transition relation wrong")
	}
	if !sys.Terminal(3) || sys.Terminal(0) {
		t.Fatal("terminal detection wrong")
	}
	if !sys.IsInit(0) || sys.IsInit(1) {
		t.Fatal("init set wrong")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder("dup", 2)
	b.AddTransition(0, 1)
	b.AddTransition(0, 1)
	sys := b.Build()
	if sys.NumTransitions() != 1 {
		t.Fatalf("NumTransitions = %d, want 1", sys.NumTransitions())
	}
	if got := sys.Succ(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Succ(0) = %v", got)
	}
}

func TestSuccSorted(t *testing.T) {
	b := NewBuilder("s", 5)
	for _, x := range []int{4, 2, 3, 1} {
		b.AddTransition(0, x)
	}
	sys := b.Build()
	got := sys.Succ(0)
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Succ not sorted: %v", got)
		}
	}
}

func TestSelfLoopKept(t *testing.T) {
	b := NewBuilder("loop", 1)
	b.AddTransition(0, 0)
	sys := b.Build()
	if !sys.HasTransition(0, 0) || sys.Terminal(0) {
		t.Fatal("self loop lost")
	}
}

func TestBoxUnionsTransitions(t *testing.T) {
	a := NewBuilder("a", 3)
	a.AddTransition(0, 1)
	a.AddInit(0)
	w := NewBuilder("w", 3)
	w.AddTransition(1, 2)
	boxed := Box(a.Build(), w.Build())
	if !boxed.HasTransition(0, 1) || !boxed.HasTransition(1, 2) {
		t.Fatal("box lost transitions")
	}
	if boxed.NumTransitions() != 2 {
		t.Fatalf("NumTransitions = %d", boxed.NumTransitions())
	}
	// Wrapper has all states initial, so init is a's init.
	if !boxed.IsInit(0) || boxed.IsInit(1) || boxed.IsInit(2) {
		t.Fatalf("box init = %v", boxed.InitStates())
	}
	if got := boxed.Name(); got != "a [] w" {
		t.Fatalf("Name = %q", got)
	}
}

func TestBoxOverlappingTransitions(t *testing.T) {
	a := NewBuilder("a", 2)
	a.AddTransition(0, 1)
	b := NewBuilder("b", 2)
	b.AddTransition(0, 1)
	boxed := Box(a.Build(), b.Build())
	if boxed.NumTransitions() != 1 {
		t.Fatalf("NumTransitions = %d, want deduped 1", boxed.NumTransitions())
	}
}

func TestBoxAll(t *testing.T) {
	mk := func(name string, from, to int) *System {
		b := NewBuilder(name, 4)
		b.AddTransition(from, to)
		return b.Build()
	}
	sys := BoxAll(mk("x", 0, 1), mk("y", 1, 2), mk("z", 2, 3))
	if sys.NumTransitions() != 3 {
		t.Fatalf("NumTransitions = %d", sys.NumTransitions())
	}
}

func TestBoxSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Box(chain(t, "a", 2), chain(t, "b", 3))
}

func TestEnumerate(t *testing.T) {
	sp := NewSpace(Int("x", 3))
	// x < 2 → x := x+1
	inc := Action{
		Name:   "inc",
		Guard:  func(v Vals) bool { return v[0] < 2 },
		Effect: func(v Vals) { v[0]++ },
	}
	sys := Enumerate("counter", sp, []Action{inc}, func(v Vals) bool { return v[0] == 0 })
	if sys.NumStates() != 3 || sys.NumTransitions() != 2 {
		t.Fatalf("got %s", sys)
	}
	if !sys.HasTransition(0, 1) || !sys.HasTransition(1, 2) {
		t.Fatal("wrong transitions")
	}
	if !sys.Terminal(2) {
		t.Fatal("state 2 should be terminal")
	}
	if got := sys.InitStates(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("init = %v", got)
	}
}

func TestEnumerateNilInitMeansAll(t *testing.T) {
	sp := NewSpace(Int("x", 3))
	sys := Enumerate("w", sp, nil, nil)
	if got := sys.Init().Count(); got != 3 {
		t.Fatalf("init count = %d, want 3", got)
	}
}

func TestEnumerateKeepsStutter(t *testing.T) {
	sp := NewSpace(Int("x", 2))
	tau := Action{
		Name:   "tau",
		Guard:  func(v Vals) bool { return v[0] == 1 },
		Effect: func(v Vals) {}, // no change: τ step
	}
	sys := Enumerate("stutter", sp, []Action{tau}, nil)
	if !sys.HasTransition(1, 1) {
		t.Fatal("stutter transition dropped")
	}
}

func TestEnabledActions(t *testing.T) {
	sp := NewSpace(Int("x", 3))
	acts := []Action{
		{Name: "a", Guard: func(v Vals) bool { return v[0] == 1 }, Effect: func(v Vals) { v[0] = 0 }},
		{Name: "b", Guard: func(v Vals) bool { return v[0] >= 1 }, Effect: func(v Vals) { v[0] = 2 }},
	}
	got := EnabledActions(sp, acts, sp.Encode(Vals{1}))
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("EnabledActions = %v", got)
	}
	if got := EnabledActions(sp, acts, sp.Encode(Vals{0})); got != nil {
		t.Fatalf("EnabledActions = %v, want none", got)
	}
}

func TestTransitionsEqualAndDiff(t *testing.T) {
	a := chain(t, "a", 3)
	b := chain(t, "b", 3)
	if !TransitionsEqual(a, b) {
		t.Fatal("identical chains not equal")
	}
	bb := NewBuilder("c", 3)
	bb.AddTransition(0, 1)
	bb.AddTransition(0, 2)
	bb.AddInit(0)
	c := bb.Build()
	if TransitionsEqual(a, c) {
		t.Fatal("different systems reported equal")
	}
	diff := DiffTransitions(c, a, 0)
	if len(diff) != 1 || diff[0] != [2]int{0, 2} {
		t.Fatalf("DiffTransitions = %v", diff)
	}
}

func TestEqualChecksInit(t *testing.T) {
	a := chain(t, "a", 3)
	b := a.WithInit([]int{1})
	if Equal(a, b) {
		t.Fatal("Equal ignored init difference")
	}
	if !TransitionsEqual(a, b) {
		t.Fatal("WithInit changed transitions")
	}
}

func TestRename(t *testing.T) {
	a := chain(t, "a", 3)
	b := a.Rename("fresh")
	if b.Name() != "fresh" || a.Name() != "a" {
		t.Fatal("rename wrong")
	}
	if !TransitionsEqual(a, b) {
		t.Fatal("rename changed transitions")
	}
}

func TestInitReturnsCopy(t *testing.T) {
	a := chain(t, "a", 3)
	got := a.Init()
	got.Add(2)
	if a.IsInit(2) {
		t.Fatal("Init exposed internal storage")
	}
}

func TestStateStringRawAndSpace(t *testing.T) {
	raw := chain(t, "raw", 2)
	if got := raw.StateString(1); got != "s1" {
		t.Fatalf("StateString = %q", got)
	}
	sp := NewSpace(Bool("t"))
	sys := Enumerate("sys", sp, nil, nil)
	if got := sys.StateString(1); got != "t=true" {
		t.Fatalf("StateString = %q", got)
	}
}

func TestWriteDOT(t *testing.T) {
	sys := chain(t, "dot", 2)
	var b strings.Builder
	if err := WriteDOT(&b, sys, func(s int) bool { return s == 1 }); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "doublecircle", "n0 -> n1", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
