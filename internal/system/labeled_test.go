package system

import "testing"

func labeledFixture(t *testing.T) (*LabeledSystem, *Space) {
	t.Helper()
	sp := NewSpace(Int("x", 3))
	acts := []Action{
		{Name: "inc", Guard: func(v Vals) bool { return v[0] < 2 }, Effect: func(v Vals) { v[0]++ }},
		{Name: "reset", Guard: func(v Vals) bool { return v[0] == 2 }, Effect: func(v Vals) { v[0] = 0 }},
	}
	return EnumerateLabeled("counter", sp, acts, func(v Vals) bool { return v[0] == 0 }), sp
}

func TestEnumerateLabeled(t *testing.T) {
	ls, _ := labeledFixture(t)
	if ls.NumActions() != 2 || ls.ActionName(0) != "inc" || ls.ActionName(1) != "reset" {
		t.Fatal("action registry wrong")
	}
	base := ls.Base()
	if base.NumStates() != 3 || base.NumTransitions() != 3 {
		t.Fatalf("base = %s", base)
	}
	if !ls.Enabled(0, 0) || ls.Enabled(0, 1) || !ls.Enabled(2, 1) {
		t.Fatal("enabledness wrong")
	}
	edges := ls.Edges(2)
	if len(edges) != 1 || edges[0].Action != 1 || edges[0].To != 0 {
		t.Fatalf("edges(2) = %+v", edges)
	}
	if got := base.InitStates(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("init = %v", got)
	}
}

func TestBoxLabeled(t *testing.T) {
	sp := NewSpace(Int("x", 3))
	a := EnumerateLabeled("a", sp, []Action{
		{Name: "up", Guard: func(v Vals) bool { return v[0] == 0 }, Effect: func(v Vals) { v[0] = 1 }},
	}, nil)
	b := EnumerateLabeled("b", sp, []Action{
		{Name: "down", Guard: func(v Vals) bool { return v[0] == 1 }, Effect: func(v Vals) { v[0] = 0 }},
	}, func(Vals) bool { return false })
	boxed := BoxLabeled(a, b)
	if boxed.NumActions() != 2 || boxed.ActionName(1) != "down" {
		t.Fatal("action shift wrong")
	}
	if !boxed.Enabled(1, 1) || boxed.Enabled(1, 0) {
		t.Fatal("enabledness after box wrong")
	}
	if !boxed.Base().HasTransition(0, 1) || !boxed.Base().HasTransition(1, 0) {
		t.Fatal("base transitions wrong")
	}
	// a had all states initial (nil init); the union keeps them.
	if boxed.Base().Init().Count() != 3 {
		t.Fatalf("init = %v", boxed.Base().InitStates())
	}
}

func TestPriorityBoxLabeled(t *testing.T) {
	sp := NewSpace(Int("x", 3))
	base := EnumerateLabeled("base", sp, []Action{
		{Name: "spin", Guard: func(v Vals) bool { return true }, Effect: func(v Vals) { v[0] = (v[0] + 1) % 3 }},
	}, nil)
	pre := EnumerateLabeled("pre", sp, []Action{
		{Name: "fix", Guard: func(v Vals) bool { return v[0] == 2 }, Effect: func(v Vals) { v[0] = 0 }},
	}, func(Vals) bool { return false })
	comp := PriorityBoxLabeled(base, pre)
	// At x=2 only the wrapper acts.
	edges := comp.Edges(2)
	if len(edges) != 1 || comp.ActionName(edges[0].Action) != "fix" {
		t.Fatalf("edges(2) = %+v", edges)
	}
	if comp.Enabled(2, 0) {
		t.Fatal("preempted action still enabled")
	}
	if !comp.Enabled(2, 1) {
		t.Fatal("wrapper action not enabled")
	}
	// Elsewhere the base acts.
	if got := comp.Edges(0); len(got) != 1 || comp.ActionName(got[0].Action) != "spin" {
		t.Fatalf("edges(0) = %+v", got)
	}
}

func TestLabeledMismatchPanics(t *testing.T) {
	spA := NewSpace(Int("x", 2))
	spB := NewSpace(Int("x", 3))
	a := EnumerateLabeled("a", spA, nil, nil)
	b := EnumerateLabeled("b", spB, nil, nil)
	for _, fn := range []func(){
		func() { BoxLabeled(a, b) },
		func() { PriorityBoxLabeled(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
