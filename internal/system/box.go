package system

import "fmt"

// Box is the paper's [] operator: the union of automata. The transition
// relation of (A [] W) is T_A ∪ T_W and the initial states are I_A ∪ I_W.
// Wrappers are built with no initial states of their own, so boxing a
// wrapper onto a system preserves the system's initial states — exactly
// the convention Sections 3–6 rely on — while wrapper-to-wrapper
// convergence refinements [W' ⪯ W] are judged on all computations, their
// (vacuous) initial-state clause interfering with nothing.
//
// Box panics if the systems have different state-space sizes or
// incompatible structured spaces; composing systems over different spaces
// is always a modeling bug.
func Box(a, b *System) *System {
	if a.n != b.n {
		panic(fmt.Sprintf("system: Box(%q, %q): |Σ| mismatch %d vs %d", a.name, b.name, a.n, b.n))
	}
	if a.space != nil && b.space != nil && !a.space.SameShape(b.space) {
		panic(fmt.Sprintf("system: Box(%q, %q): incompatible spaces", a.name, b.name))
	}
	out := &System{
		name:  a.name + " [] " + b.name,
		space: a.space,
		n:     a.n,
		succ:  make([][]int, a.n),
	}
	if out.space == nil {
		out.space = b.space
	}
	for s := 0; s < a.n; s++ {
		out.succ[s] = mergeSorted(a.succ[s], b.succ[s])
		out.nT += len(out.succ[s])
	}
	init := a.init.Clone()
	init.UnionWith(b.init)
	out.init = init
	return out
}

// BoxAll folds Box over one or more systems, left to right.
func BoxAll(systems ...*System) *System {
	if len(systems) == 0 {
		panic("system: BoxAll of zero systems")
	}
	out := systems[0]
	for _, s := range systems[1:] {
		out = Box(out, s)
	}
	return out
}

// mergeSorted merges two sorted, duplicate-free int slices into a new
// sorted, duplicate-free slice.
func mergeSorted(a, b []int) []int {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
