package system

import (
	"testing"

	"repro/internal/bitset"
)

func TestInduced(t *testing.T) {
	b := NewBuilder("g", 5)
	b.AddTransition(0, 1)
	b.AddTransition(1, 2)
	b.AddTransition(2, 0)
	b.AddTransition(3, 4) // dropped
	b.AddInit(0)
	b.AddInit(3)
	sys := b.Build()

	keep := bitset.FromSlice(5, []int{0, 1, 2})
	sub, oldToNew := Induced(sys, keep)
	if sub.NumStates() != 3 || sub.NumTransitions() != 3 {
		t.Fatalf("sub = %s", sub)
	}
	if oldToNew[3] != -1 || oldToNew[4] != -1 {
		t.Fatalf("mapping = %v", oldToNew)
	}
	if !sub.HasTransition(oldToNew[0], oldToNew[1]) {
		t.Fatal("edge lost")
	}
	if got := sub.InitStates(); len(got) != 1 || got[0] != oldToNew[0] {
		t.Fatalf("init = %v", got)
	}
}

func TestInducedDropsCrossEdges(t *testing.T) {
	b := NewBuilder("g", 3)
	b.AddTransition(0, 1)
	b.AddTransition(1, 2)
	sys := b.Build()
	sub, m := Induced(sys, bitset.FromSlice(3, []int{0, 1}))
	if sub.NumTransitions() != 1 {
		t.Fatalf("transitions = %d", sub.NumTransitions())
	}
	if !sub.Terminal(m[1]) {
		t.Fatal("state 1 should be terminal after dropping the cross edge")
	}
}

func TestInducedAbstraction(t *testing.T) {
	ab, err := NewAbstraction(6, 2, func(s int) int { return s % 2 })
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("g", 6)
	b.AddTransition(2, 3)
	sys := b.Build()
	sub, oldToNew := Induced(sys, bitset.FromSlice(6, []int{2, 3, 5}))
	lifted, err := InducedAbstraction(ab, oldToNew, sub.NumStates())
	if err != nil {
		t.Fatal(err)
	}
	if lifted.Of(oldToNew[2]) != 0 || lifted.Of(oldToNew[3]) != 1 || lifted.Of(oldToNew[5]) != 1 {
		t.Fatal("lifted abstraction wrong")
	}
}

func TestInducedEmptyPanics(t *testing.T) {
	sys := NewBuilder("g", 2).Build()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Induced(sys, bitset.New(2))
}
