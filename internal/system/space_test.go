package system

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpaceSize(t *testing.T) {
	sp := NewSpace(Bool("a"), Int("b", 3), Int("c", 5))
	if got := sp.Size(); got != 30 {
		t.Fatalf("Size = %d, want 30", got)
	}
	if got := sp.NumVars(); got != 3 {
		t.Fatalf("NumVars = %d, want 3", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sp := NewSpace(Bool("a"), Int("b", 3), Int("c", 5))
	var v Vals
	for s := 0; s < sp.Size(); s++ {
		v = sp.Decode(s, v)
		if got := sp.Encode(v); got != s {
			t.Fatalf("Encode(Decode(%d)) = %d", s, got)
		}
	}
}

func TestEncodeDistinct(t *testing.T) {
	sp := NewSpace(Int("x", 4), Int("y", 4))
	seen := make(map[int]bool)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			s := sp.Encode(Vals{x, y})
			if seen[s] {
				t.Fatalf("duplicate encoding %d for (%d,%d)", s, x, y)
			}
			seen[s] = true
		}
	}
}

// Property: Decode(Encode(v)) == v for random valid assignments of a
// random-shape space.
func TestQuickEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 1 + r.Intn(6)
		vars := make([]Var, nv)
		for i := range vars {
			vars[i] = Int(string(rune('a'+i)), 1+r.Intn(5))
		}
		sp := NewSpace(vars...)
		v := make(Vals, nv)
		for i := range v {
			v[i] = r.Intn(vars[i].Card)
		}
		got := sp.Decode(sp.Encode(v), nil)
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Rand: rng, MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestVarIndex(t *testing.T) {
	sp := NewSpace(Bool("up"), Int("c", 3))
	if i, ok := sp.VarIndex("c"); !ok || i != 1 {
		t.Fatalf("VarIndex(c) = %d, %v", i, ok)
	}
	if _, ok := sp.VarIndex("missing"); ok {
		t.Fatal("VarIndex(missing) reported ok")
	}
}

func TestStateString(t *testing.T) {
	sp := NewSpace(Bool("up"), Int("c", 3))
	s := sp.Encode(Vals{1, 2})
	if got := sp.StateString(s); got != "up=true c=2" {
		t.Fatalf("StateString = %q", got)
	}
}

func TestSameShape(t *testing.T) {
	a := NewSpace(Bool("x"), Int("y", 3))
	b := NewSpace(Bool("x"), Int("y", 3))
	c := NewSpace(Bool("x"), Int("y", 4))
	d := NewSpace(Bool("x"))
	if !a.SameShape(b) {
		t.Fatal("identical shapes not recognized")
	}
	if a.SameShape(c) || a.SameShape(d) {
		t.Fatal("different shapes reported same")
	}
	if !a.SameShape(a) {
		t.Fatal("space not same shape as itself")
	}
}

func TestDuplicateVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpace(Bool("x"), Int("x", 3))
}

func TestBadCardinalityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpace(Int("x", 0))
}

func TestEncodeOutOfDomainPanics(t *testing.T) {
	sp := NewSpace(Int("x", 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sp.Encode(Vals{3})
}

func TestDecodeReusesBuffer(t *testing.T) {
	sp := NewSpace(Int("x", 3), Int("y", 3))
	buf := make(Vals, 2)
	got := sp.Decode(4, buf)
	if &got[0] != &buf[0] {
		t.Fatal("Decode allocated despite sufficient buffer")
	}
}
