package system

import (
	"fmt"

	"repro/internal/bitset"
)

// Induced builds the subsystem of sys induced by the given state set: the
// new system's state space is exactly the kept states (re-indexed densely
// in increasing order), with the transitions among them and the initial
// states that survive. It returns the new system and the old-to-new index
// mapping (−1 for dropped states).
//
// The checkers quantify computations over a system's whole state space;
// restricting to the states reachable from a designated fault-start set
// before checking expresses "stabilizing with respect to fault class F"
// (only F-induced starts matter), as used by the Section 1 compiler
// example where faults corrupt variables but not the program counter.
// The kept set should be closed under transitions (e.g. a Reach result);
// transitions leaving it are dropped, which would otherwise manufacture
// spurious terminal states.
func Induced(sys *System, keep *bitset.Set) (*System, []int) {
	if keep.Len() != sys.n {
		panic(fmt.Sprintf("system: Induced universe %d does not match %q (%d states)", keep.Len(), sys.name, sys.n))
	}
	oldToNew := make([]int, sys.n)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	var count int
	keep.ForEach(func(s int) {
		oldToNew[s] = count
		count++
	})
	if count == 0 {
		panic(fmt.Sprintf("system: Induced on empty set of %q", sys.name))
	}
	b := NewBuilder(sys.name+"|induced", count)
	keep.ForEach(func(s int) {
		ns := oldToNew[s]
		for _, t := range sys.succ[s] {
			if nt := oldToNew[t]; nt >= 0 {
				b.AddTransition(ns, nt)
			}
		}
		if sys.init.Has(s) {
			b.AddInit(ns)
		}
	})
	return b.Build(), oldToNew
}

// InducedAbstraction lifts an abstraction α: Σ_C → Σ_A to the induced
// subsystem: the new abstraction maps each kept (re-indexed) state to
// α(old index).
func InducedAbstraction(ab *Abstraction, oldToNew []int, keptCount int) (*Abstraction, error) {
	newToOld := make([]int, keptCount)
	for old, nw := range oldToNew {
		if nw >= 0 {
			newToOld[nw] = old
		}
	}
	return NewAbstraction(keptCount, ab.NumAbstract(), func(s int) int {
		return ab.Of(newToOld[s])
	})
}
