package system

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// Abstraction is the Section 2.3 device for relating an implementation C to
// a specification A over a different state space: a total mapping from Σ_C
// onto Σ_A. Totality is guaranteed by construction (every concrete index
// maps somewhere); ontoness is checked separately because the paper's own
// token-ring mappings are deliberately not onto (no BTR4 state maps to an
// abstract state holding both ↑t.j and ↓t.j), and the checkers only need
// totality.
type Abstraction struct {
	nC, nA int
	m      []int
}

// ErrNotTotal reports a mapping function that produced an out-of-range
// abstract state.
var ErrNotTotal = errors.New("abstraction maps a concrete state outside the abstract space")

// NewAbstraction tabulates f over [0, nC). It returns ErrNotTotal (wrapped
// with the offending state) if f(s) falls outside [0, nA).
func NewAbstraction(nC, nA int, f func(s int) int) (*Abstraction, error) {
	if nC <= 0 || nA <= 0 {
		return nil, fmt.Errorf("abstraction: non-positive space sizes %d, %d", nC, nA)
	}
	ab := &Abstraction{nC: nC, nA: nA, m: make([]int, nC)}
	for s := 0; s < nC; s++ {
		a := f(s)
		if a < 0 || a >= nA {
			return nil, fmt.Errorf("abstraction: f(%d) = %d: %w", s, a, ErrNotTotal)
		}
		ab.m[s] = a
	}
	return ab, nil
}

// MapSpaces builds an abstraction between structured spaces, where f
// translates a decoded concrete assignment into a decoded abstract
// assignment.
func MapSpaces(cSp, aSp *Space, f func(c Vals, a Vals)) (*Abstraction, error) {
	cv := make(Vals, cSp.NumVars())
	av := make(Vals, aSp.NumVars())
	return NewAbstraction(cSp.Size(), aSp.Size(), func(s int) int {
		cv = cSp.Decode(s, cv)
		f(cv, av)
		return aSp.Encode(av)
	})
}

// Identity returns the identity abstraction on a shared state space, used
// when C and A are over the same Σ (the Section 2 default).
func Identity(n int) *Abstraction {
	ab := &Abstraction{nC: n, nA: n, m: make([]int, n)}
	for i := range ab.m {
		ab.m[i] = i
	}
	return ab
}

// Of returns α(s).
func (ab *Abstraction) Of(s int) int { return ab.m[s] }

// NumConcrete returns |Σ_C|.
func (ab *Abstraction) NumConcrete() int { return ab.nC }

// NumAbstract returns |Σ_A|.
func (ab *Abstraction) NumAbstract() int { return ab.nA }

// Onto reports whether every abstract state is the image of some concrete
// state (the letter of Section 2.3's definition).
func (ab *Abstraction) Onto() bool {
	seen := bitset.New(ab.nA)
	for _, a := range ab.m {
		seen.Add(a)
	}
	return seen.Count() == ab.nA
}

// Image returns the set of abstract states that are images of members of
// the given concrete set.
func (ab *Abstraction) Image(concrete *bitset.Set) *bitset.Set {
	out := bitset.New(ab.nA)
	concrete.ForEach(func(s int) { out.Add(ab.m[s]) })
	return out
}

// Preimage returns the set of concrete states mapping into the given
// abstract set.
func (ab *Abstraction) Preimage(abstract *bitset.Set) *bitset.Set {
	out := bitset.New(ab.nC)
	for s, a := range ab.m {
		if abstract.Has(a) {
			out.Add(s)
		}
	}
	return out
}

// MapSeq applies α pointwise to a concrete state sequence.
func (ab *Abstraction) MapSeq(seq []int) []int {
	out := make([]int, len(seq))
	for i, s := range seq {
		out[i] = ab.m[s]
	}
	return out
}
