package system

import (
	"fmt"
	"io"
)

// WriteDOT renders the automaton in Graphviz DOT format, with initial
// states drawn as double circles. highlight, if non-nil, selects states to
// fill (e.g. the legitimate states of a stabilization check). Intended for
// small systems in documentation and debugging; the ring systems at N ≥ 4
// are too large to draw usefully.
func WriteDOT(w io.Writer, sys *System, highlight func(s int) bool) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", sys.name); err != nil {
		return err
	}
	for s := 0; s < sys.n; s++ {
		shape := "circle"
		if sys.IsInit(s) {
			shape = "doublecircle"
		}
		style := ""
		if highlight != nil && highlight(s) {
			style = `, style=filled, fillcolor="#e0e0e0"`
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q, shape=%s%s];\n", s, sys.StateString(s), shape, style); err != nil {
			return err
		}
	}
	for s := 0; s < sys.n; s++ {
		for _, t := range sys.Succ(s) {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", s, t); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
