// Package system defines the finite-state automaton model of the paper
// (Definition: a system S is an automaton (Σ, T, I)), together with the
// structured state spaces, guarded actions, box composition, and
// abstraction functions used throughout the derivations.
//
// States are represented as dense integer indices into a Space, which is a
// product of finite-domain variables. All systems over the same Space share
// the same index encoding, so the box operator and the refinement checkers
// can compare them state-by-state.
package system

import (
	"fmt"
	"strconv"
	"strings"
)

// Var is one finite-domain variable of a state space. Values range over
// [0, Card). Fmt, if non-nil, renders a value for display (e.g. booleans
// as "false"/"true"); otherwise values print as decimal integers.
type Var struct {
	Name string
	Card int
	Fmt  func(v int) string
}

// Bool returns a two-valued variable displayed as false/true.
func Bool(name string) Var {
	return Var{Name: name, Card: 2, Fmt: func(v int) string {
		if v == 0 {
			return "false"
		}
		return "true"
	}}
}

// Int returns a variable with values 0..card-1 displayed in decimal.
func Int(name string, card int) Var {
	return Var{Name: name, Card: card}
}

// Space is a product of finite-domain variables. A state of the space is an
// assignment of a value to every variable, encoded as a single integer in
// [0, Size()) using mixed-radix positional encoding (variable 0 is the
// lowest-order digit).
type Space struct {
	vars    []Var
	strides []int
	size    int
	index   map[string]int
}

// NewSpace builds a space from the given variables. It panics if a variable
// has a non-positive cardinality, a duplicate name, or if the product of
// cardinalities overflows int.
func NewSpace(vars ...Var) *Space {
	sp := &Space{
		vars:    make([]Var, len(vars)),
		strides: make([]int, len(vars)),
		size:    1,
		index:   make(map[string]int, len(vars)),
	}
	copy(sp.vars, vars)
	for i, v := range vars {
		if v.Card <= 0 {
			panic(fmt.Sprintf("system: variable %q has cardinality %d", v.Name, v.Card))
		}
		if _, dup := sp.index[v.Name]; dup {
			panic(fmt.Sprintf("system: duplicate variable name %q", v.Name))
		}
		sp.index[v.Name] = i
		sp.strides[i] = sp.size
		if sp.size > (1<<62)/v.Card {
			panic(fmt.Sprintf("system: state space overflow at variable %q", v.Name))
		}
		sp.size *= v.Card
	}
	return sp
}

// Size returns the number of states in the space.
func (sp *Space) Size() int { return sp.size }

// NumVars returns the number of variables.
func (sp *Space) NumVars() int { return len(sp.vars) }

// Var returns the i-th variable.
func (sp *Space) Var(i int) Var { return sp.vars[i] }

// VarIndex returns the index of the named variable and whether it exists.
func (sp *Space) VarIndex(name string) (int, bool) {
	i, ok := sp.index[name]
	return i, ok
}

// Vals is a decoded state: one value per variable, in variable order.
type Vals []int

// Encode maps an assignment to its state index. It panics if the assignment
// has the wrong arity or a value out of domain — encoding errors are always
// programming bugs in system definitions, never runtime conditions.
func (sp *Space) Encode(v Vals) int {
	if len(v) != len(sp.vars) {
		panic(fmt.Sprintf("system: Encode arity %d, space has %d vars", len(v), len(sp.vars)))
	}
	s := 0
	for i, x := range v {
		if x < 0 || x >= sp.vars[i].Card {
			panic(fmt.Sprintf("system: value %d out of domain [0,%d) for %q", x, sp.vars[i].Card, sp.vars[i].Name))
		}
		s += x * sp.strides[i]
	}
	return s
}

// Decode writes the assignment for state s into dst (allocating if dst is
// too short) and returns it.
func (sp *Space) Decode(s int, dst Vals) Vals {
	if s < 0 || s >= sp.size {
		panic(fmt.Sprintf("system: state %d out of space [0,%d)", s, sp.size))
	}
	if cap(dst) < len(sp.vars) {
		dst = make(Vals, len(sp.vars))
	}
	dst = dst[:len(sp.vars)]
	for i := range sp.vars {
		dst[i] = s % sp.vars[i].Card
		s /= sp.vars[i].Card
	}
	return dst
}

// StateString renders state s as "x=0 y=true ...".
func (sp *Space) StateString(s int) string {
	v := sp.Decode(s, nil)
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.vars[i].Name)
		b.WriteByte('=')
		if sp.vars[i].Fmt != nil {
			b.WriteString(sp.vars[i].Fmt(x))
		} else {
			b.WriteString(strconv.Itoa(x))
		}
	}
	return b.String()
}

// SameShape reports whether two spaces have identical variable names and
// cardinalities (and hence identical encodings). Systems can only be
// box-composed when their spaces have the same shape.
func (sp *Space) SameShape(other *Space) bool {
	if sp == other {
		return true
	}
	if sp == nil || other == nil || len(sp.vars) != len(other.vars) {
		return false
	}
	for i := range sp.vars {
		if sp.vars[i].Name != other.vars[i].Name || sp.vars[i].Card != other.vars[i].Card {
			return false
		}
	}
	return true
}
