package system

import "fmt"

// PriorityBox composes base with a preempting wrapper: in any state where
// pre has an enabled transition, only pre's transitions occur; elsewhere
// base's transitions occur. Initial states are the union, as with Box.
//
// This implements the execution convention Section 3.2's token-deletion
// wrapper W2 needs: "if ever ↑t.j and ↓t.j are truthified at the same
// state, then both of the tokens are deleted". Under the plain union
// (Box), a daemon may keep choosing the ring's own move actions at a
// collision state, letting opposing tokens pass through each other forever
// and defeating convergence — the experiments demonstrate this failure
// mechanically. PriorityBox resolves every collision before normal
// execution resumes, which is how the refined systems behave implicitly
// (their encodings make collisions either impossible or self-resolving).
func PriorityBox(base, pre *System) *System {
	if base.n != pre.n {
		panic(fmt.Sprintf("system: PriorityBox(%q, %q): |Σ| mismatch %d vs %d", base.name, pre.name, base.n, pre.n))
	}
	if base.space != nil && pre.space != nil && !base.space.SameShape(pre.space) {
		panic(fmt.Sprintf("system: PriorityBox(%q, %q): incompatible spaces", base.name, pre.name))
	}
	out := &System{
		name:  base.name + " <] " + pre.name,
		space: base.space,
		n:     base.n,
		succ:  make([][]int, base.n),
	}
	if out.space == nil {
		out.space = pre.space
	}
	for s := 0; s < base.n; s++ {
		if len(pre.succ[s]) > 0 {
			out.succ[s] = pre.succ[s]
		} else {
			out.succ[s] = base.succ[s]
		}
		out.nT += len(out.succ[s])
	}
	init := base.init.Clone()
	init.UnionWith(pre.init)
	out.init = init
	return out
}
