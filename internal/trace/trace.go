// Package trace implements the sequence-level relations of Section 2 —
// subsequences, convergence isomorphism, destuttering — on finite state
// sequences, plus validity checks tying sequences back to automata. The
// checkers in internal/core decide the relations symbolically over whole
// systems; this package is the ground truth those decisions are tested
// against, and what the simulator uses to classify recorded runs.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/system"
)

// IsSubsequence reports whether c can be obtained from a by deleting zero
// or more elements (order-preserving, multiplicity-respecting).
func IsSubsequence(c, a []int) bool {
	i := 0
	for _, x := range a {
		if i < len(c) && c[i] == x {
			i++
		}
	}
	return i == len(c)
}

// ConvergenceIsomorphic implements the paper's Definition verbatim for
// finite sequences: c is a convergence isomorphism of a iff c is a
// subsequence of a with the same initial state and the same final state.
// (The "finite number of omissions" clause is automatic for finite
// sequences; Omissions exposes the count.) Empty sequences are isomorphic
// only to empty sequences.
func ConvergenceIsomorphic(c, a []int) bool {
	if len(c) == 0 || len(a) == 0 {
		return len(c) == 0 && len(a) == 0
	}
	if c[0] != a[0] || c[len(c)-1] != a[len(a)-1] {
		return false
	}
	return IsSubsequence(c, a)
}

// Omissions returns the number of states dropped from a to obtain c, and
// whether c is a convergence isomorphism of a at all.
func Omissions(c, a []int) (int, bool) {
	if !ConvergenceIsomorphic(c, a) {
		return 0, false
	}
	return len(a) - len(c), true
}

// Destutter removes consecutive duplicate states. It is applied to
// α-mapped concrete computations before comparing them with abstract ones:
// a concrete τ step (Section 6's C3) maps to a repetition of the same
// abstract state.
func Destutter(seq []int) []int {
	if len(seq) == 0 {
		return nil
	}
	out := make([]int, 1, len(seq))
	out[0] = seq[0]
	for _, s := range seq[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// IsPathOf reports whether every adjacent pair of seq is a transition of
// sys. Sequences of length ≤ 1 are trivially paths.
func IsPathOf(sys *system.System, seq []int) bool {
	for i := 0; i+1 < len(seq); i++ {
		if !sys.HasTransition(seq[i], seq[i+1]) {
			return false
		}
	}
	return true
}

// IsComputationOf reports whether seq is a finite computation of sys: a
// path that is maximal, i.e. its last state is terminal. (Infinite
// computations are represented as lassos elsewhere.)
func IsComputationOf(sys *system.System, seq []int) bool {
	if len(seq) == 0 {
		return false
	}
	return IsPathOf(sys, seq) && sys.Terminal(seq[len(seq)-1])
}

// IsComputationFromInit additionally requires seq to start at an initial
// state of sys.
func IsComputationFromInit(sys *system.System, seq []int) bool {
	return IsComputationOf(sys, seq) && sys.IsInit(seq[0])
}

// HasSuffixSatisfying reports whether some suffix of seq satisfies pred,
// and returns the index at which the earliest such suffix starts.
func HasSuffixSatisfying(seq []int, pred func(suffix []int) bool) (int, bool) {
	for i := range seq {
		if pred(seq[i:]) {
			return i, true
		}
	}
	return 0, false
}

// Format renders a sequence using a system's state formatter, e.g.
// "x=0 → x=1 → x=2".
func Format(sys *system.System, seq []int) string {
	parts := make([]string, len(seq))
	for i, s := range seq {
		parts[i] = sys.StateString(s)
	}
	return strings.Join(parts, " → ")
}

// Recorder accumulates the states visited by a run (simulator or explicit
// walk). The zero value is ready to use.
type Recorder struct {
	states []int
}

// Observe appends a state. Consecutive duplicates are kept; use Destutter
// on Seq() if stuttering should be collapsed.
func (r *Recorder) Observe(s int) { r.states = append(r.states, s) }

// Seq returns a copy of the recorded sequence.
func (r *Recorder) Seq() []int {
	out := make([]int, len(r.states))
	copy(out, r.states)
	return out
}

// Len returns the number of recorded states.
func (r *Recorder) Len() int { return len(r.states) }

// Last returns the most recently recorded state. It panics on an empty
// recorder — callers always observe the initial state first.
func (r *Recorder) Last() int {
	if len(r.states) == 0 {
		panic("trace: Last on empty recorder")
	}
	return r.states[len(r.states)-1]
}

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() { r.states = r.states[:0] }

// String summarizes the recorder for debugging.
func (r *Recorder) String() string {
	return fmt.Sprintf("trace(%d states)", len(r.states))
}
