package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/system"
)

func TestIsSubsequence(t *testing.T) {
	cases := []struct {
		c, a []int
		want bool
	}{
		{[]int{1, 3, 6}, []int{1, 2, 3, 4, 5, 6}, true},
		{[]int{1, 3, 5, 6}, []int{1, 2, 5, 6}, false}, // the paper's non-example
		{[]int{}, []int{1, 2}, true},
		{[]int{1, 2}, []int{}, false},
		{[]int{1, 1}, []int{1}, false}, // multiplicity respected
		{[]int{1, 1}, []int{1, 2, 1}, true},
		{[]int{2, 1}, []int{1, 2}, false}, // order respected
		{[]int{1, 2}, []int{1, 2}, true},
	}
	for _, tc := range cases {
		if got := IsSubsequence(tc.c, tc.a); got != tc.want {
			t.Errorf("IsSubsequence(%v, %v) = %v, want %v", tc.c, tc.a, got, tc.want)
		}
	}
}

func TestConvergenceIsomorphicPaperExamples(t *testing.T) {
	// From Section 2: c = s1 s3 s6 is a convergence isomorphism of
	// a = s1 s2 s3 s4 s5 s6.
	if !ConvergenceIsomorphic([]int{1, 3, 6}, []int{1, 2, 3, 4, 5, 6}) {
		t.Fatal("paper's positive example rejected")
	}
	// c = s1 s3 s5 s6 is NOT one of a = s1 s2 s5 s6 (cannot insert s3).
	if ConvergenceIsomorphic([]int{1, 3, 5, 6}, []int{1, 2, 5, 6}) {
		t.Fatal("paper's negative example accepted")
	}
}

func TestConvergenceIsomorphicEndpoints(t *testing.T) {
	// Same first and last state required.
	if ConvergenceIsomorphic([]int{2, 3}, []int{1, 2, 3}) {
		t.Fatal("initial state may not be dropped")
	}
	if ConvergenceIsomorphic([]int{1, 2}, []int{1, 2, 3}) {
		t.Fatal("final state may not be dropped")
	}
	if !ConvergenceIsomorphic([]int{1}, []int{1}) {
		t.Fatal("singleton should match itself")
	}
	if !ConvergenceIsomorphic(nil, nil) {
		t.Fatal("empty vs empty")
	}
	if ConvergenceIsomorphic(nil, []int{1}) {
		t.Fatal("empty vs non-empty")
	}
}

func TestOmissions(t *testing.T) {
	n, ok := Omissions([]int{1, 3, 6}, []int{1, 2, 3, 4, 5, 6})
	if !ok || n != 3 {
		t.Fatalf("Omissions = %d, %v", n, ok)
	}
	if _, ok := Omissions([]int{9}, []int{1}); ok {
		t.Fatal("unrelated sequences reported isomorphic")
	}
}

// Property: any subsequence of a keeping first and last elements is a
// convergence isomorphism of a.
func TestQuickConvergenceIsomorphism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		a := make([]int, n)
		for i := range a {
			a[i] = r.Intn(5)
		}
		c := []int{a[0]}
		for i := 1; i < n-1; i++ {
			if r.Intn(2) == 0 {
				c = append(c, a[i])
			}
		}
		c = append(c, a[n-1])
		return ConvergenceIsomorphic(c, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: convergence isomorphism is reflexive and transitive on random
// sequences (c ⊑ b and b ⊑ a implies c ⊑ a).
func TestQuickIsomorphismTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(15)
		a := make([]int, n)
		for i := range a {
			a[i] = r.Intn(4)
		}
		if !ConvergenceIsomorphic(a, a) {
			return false
		}
		drop := func(s []int) []int {
			out := []int{s[0]}
			for i := 1; i < len(s)-1; i++ {
				if r.Intn(3) > 0 {
					out = append(out, s[i])
				}
			}
			return append(out, s[len(s)-1])
		}
		b := drop(a)
		c := drop(b)
		return ConvergenceIsomorphic(b, a) && ConvergenceIsomorphic(c, b) && ConvergenceIsomorphic(c, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDestutter(t *testing.T) {
	cases := []struct {
		in, want []int
	}{
		{nil, nil},
		{[]int{1}, []int{1}},
		{[]int{1, 1, 1}, []int{1}},
		{[]int{1, 1, 2, 2, 1}, []int{1, 2, 1}},
		{[]int{1, 2, 3}, []int{1, 2, 3}},
	}
	for _, tc := range cases {
		got := Destutter(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("Destutter(%v) = %v", tc.in, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Destutter(%v) = %v", tc.in, got)
			}
		}
	}
}

func TestQuickDestutterIdempotent(t *testing.T) {
	f := func(xs []uint8) bool {
		seq := make([]int, len(xs))
		for i, x := range xs {
			seq[i] = int(x % 3)
		}
		once := Destutter(seq)
		twice := Destutter(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		// No two adjacent equal states remain.
		for i := 1; i < len(once); i++ {
			if once[i] == once[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mkChain(t *testing.T) *system.System {
	t.Helper()
	b := system.NewBuilder("chain", 4)
	b.AddTransition(0, 1)
	b.AddTransition(1, 2)
	b.AddTransition(2, 3)
	b.AddInit(0)
	return b.Build()
}

func TestIsPathOf(t *testing.T) {
	sys := mkChain(t)
	if !IsPathOf(sys, []int{0, 1, 2}) {
		t.Fatal("valid path rejected")
	}
	if IsPathOf(sys, []int{0, 2}) {
		t.Fatal("invalid path accepted")
	}
	if !IsPathOf(sys, []int{2}) || !IsPathOf(sys, nil) {
		t.Fatal("trivial paths rejected")
	}
}

func TestIsComputationOf(t *testing.T) {
	sys := mkChain(t)
	if !IsComputationOf(sys, []int{0, 1, 2, 3}) {
		t.Fatal("maximal path rejected")
	}
	if IsComputationOf(sys, []int{0, 1, 2}) {
		t.Fatal("non-maximal path accepted as computation")
	}
	if IsComputationOf(sys, nil) {
		t.Fatal("empty accepted")
	}
	if !IsComputationFromInit(sys, []int{0, 1, 2, 3}) {
		t.Fatal("from-init computation rejected")
	}
	if IsComputationFromInit(sys, []int{1, 2, 3}) {
		t.Fatal("non-init start accepted")
	}
}

func TestHasSuffixSatisfying(t *testing.T) {
	seq := []int{9, 9, 1, 2, 3}
	idx, ok := HasSuffixSatisfying(seq, func(s []int) bool { return s[0] == 1 })
	if !ok || idx != 2 {
		t.Fatalf("idx = %d, ok = %v", idx, ok)
	}
	if _, ok := HasSuffixSatisfying(seq, func(s []int) bool { return false }); ok {
		t.Fatal("impossible predicate satisfied")
	}
}

func TestFormat(t *testing.T) {
	sys := mkChain(t)
	got := Format(sys, []int{0, 1})
	if got != "s0 → s1" {
		t.Fatalf("Format = %q", got)
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Observe(1)
	r.Observe(1)
	r.Observe(2)
	if r.Len() != 3 || r.Last() != 2 {
		t.Fatalf("recorder state: %v", r.Seq())
	}
	seq := r.Seq()
	seq[0] = 99
	if r.Seq()[0] != 1 {
		t.Fatal("Seq exposed internal storage")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRecorderLastPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var r Recorder
	r.Last()
}
