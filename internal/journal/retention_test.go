package journal

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fillJournal appends n small events and returns the last seq.
func fillJournal(t *testing.T, j *Journal, n int) uint64 {
	t.Helper()
	var last uint64
	for i := 0; i < n; i++ {
		last = mustAppend(t, j, KindVerdict, fmt.Sprintf(`{"i":%d}`, i))
	}
	return last
}

func TestCompactionDropsCoveredPrefix(t *testing.T) {
	mem := NewMemBackend(nil)
	j, err := Open(mem, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillJournal(t, j, 10)
	before := mem.Len()

	j.SetCovered(6)
	st := j.Compact()
	if st.HorizonSeq != 6 || st.DroppedEvents != 6 || st.Compactions != 1 {
		t.Fatalf("retention after compact = %+v, want horizon 6, 6 dropped", st)
	}
	if evs := j.Events(0); len(evs) != 4 || evs[0].Seq != 7 {
		t.Fatalf("in-memory events after compact = %d starting at %d, want 4 from 7", len(evs), evs[0].Seq)
	}
	if mem.Len() >= before {
		t.Fatalf("backend did not shrink: %d -> %d", before, mem.Len())
	}
	if got := j.Usage(); got != int64(mem.Len()) {
		t.Fatalf("tracked usage %d != backend len %d", got, mem.Len())
	}

	// Appends continue the numbering on the compacted journal.
	if seq := mustAppend(t, j, KindVerdict, `{}`); seq != 11 {
		t.Fatalf("post-compaction append seq = %d, want 11", seq)
	}
	j.Close()

	// A restart on the compacted bytes recovers the horizon and resumes
	// the same numbering.
	re, err := Open(mem, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if st := re.ReplayStats(); st.Events != 5 || st.Corrupt != 0 || st.Stale != 0 {
		t.Fatalf("replay stats = %+v, want 5 clean events", st)
	}
	if re.LastSeq() != 11 || re.Horizon() != 6 {
		t.Fatalf("reopened last=%d horizon=%d, want 11/6", re.LastSeq(), re.Horizon())
	}
}

func TestCompactionKeepsNewestEvent(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	last := fillJournal(t, j, 5)
	// Coverage beyond the whole history still retains the newest event,
	// so a restart cannot reset the sequence numbering to zero.
	j.SetCovered(last + 100)
	st := j.Compact()
	if st.HorizonSeq != last-1 {
		t.Fatalf("horizon = %d, want %d (newest event retained)", st.HorizonSeq, last-1)
	}
	if evs := j.Events(0); len(evs) != 1 || evs[0].Seq != last {
		t.Fatalf("events after full-coverage compact = %+v, want only seq %d", evs, last)
	}
}

func TestCompactionHonorsRetainFloor(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	fillJournal(t, j, 10)
	j.SetRetainFunc(func() (uint64, bool) { return 3, true })
	j.SetCovered(9)
	if st := j.Compact(); st.HorizonSeq != 3 {
		t.Fatalf("horizon = %d, want 3 (projection floor wins)", st.HorizonSeq)
	}
}

func TestFileBackendCompactionSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.snp")
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	j, err := Open(fb, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fillJournal(t, j, 20)
	j.SetCovered(15)
	st := j.Compact()
	if st.HorizonSeq != 15 || st.Compactions != 1 {
		t.Fatalf("retention = %+v, want horizon 15", st)
	}
	// The swap must leave the append handle usable: later events land in
	// the new file, not the unlinked old inode.
	if seq := mustAppend(t, j, KindVerdict, `{"after":"compact"}`); seq != 21 {
		t.Fatalf("post-swap seq = %d, want 21", seq)
	}
	j.Close()
	if err := fb.Close(); err != nil {
		t.Fatalf("backend close: %v", err)
	}

	fb2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("reopen file: %v", err)
	}
	defer fb2.Close()
	re, err := Open(fb2, Options{})
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer re.Close()
	if st := re.ReplayStats(); st.Events != 6 || st.Corrupt != 0 {
		t.Fatalf("replay stats = %+v, want 6 clean events (16..21)", st)
	}
	if re.LastSeq() != 21 || re.Horizon() != 15 {
		t.Fatalf("reopened last=%d horizon=%d, want 21/15", re.LastSeq(), re.Horizon())
	}
}

// Both kill arms of a mid-compaction crash must leave a journal that
// replays cleanly with every acked event above the horizon intact.
func TestKillMidCompactionBothArmsReplayClean(t *testing.T) {
	for _, afterSwap := range []bool{false, true} {
		name := "before-swap"
		if afterSwap {
			name = "after-swap"
		}
		t.Run(name, func(t *testing.T) {
			tb := NewTornBackend(0, 0) // never tears on Append
			j, err := Open(tb, Options{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			fillJournal(t, j, 10)
			tb.ArmReplaceKill(afterSwap)
			// SetCovered pokes an async compaction (which hits the armed
			// kill); Compact() then synchronizes with the writer and may
			// count a second failure against the now-dead backend.
			j.SetCovered(6)
			st := j.Compact()
			if st.CompactErrors == 0 || st.Compactions != 0 {
				t.Fatalf("retention = %+v, want failed compactions only", st)
			}
			j.Close()

			re, err := Open(NewMemBackend(tb.Bytes()), Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer re.Close()
			rst := re.ReplayStats()
			if rst.Corrupt != 0 || rst.Stale != 0 {
				t.Fatalf("%s: replay damage %+v, want clean", name, rst)
			}
			if re.LastSeq() != 10 {
				t.Fatalf("%s: last seq %d, want 10", name, re.LastSeq())
			}
			wantEvents, wantFirst := 10, uint64(1) // old journal: everything
			if afterSwap {
				wantEvents, wantFirst = 4, 7 // compacted: suffix only
			}
			evs := re.Events(0)
			if len(evs) != wantEvents || evs[0].Seq != wantFirst {
				t.Fatalf("%s: %d events from %d, want %d from %d",
					name, len(evs), evs[0].Seq, wantEvents, wantFirst)
			}
			// Either way, every acked event above the covered prefix is
			// present — nothing durable was lost to the crash.
			for seq := uint64(7); seq <= 10; seq++ {
				if len(re.Events(seq)) == 0 {
					t.Fatalf("%s: acked event %d missing after crash", name, seq)
				}
			}
		})
	}
}

func TestReplayTo(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	fillJournal(t, j, 10)

	evs, err := j.ReplayTo(4)
	if err != nil {
		t.Fatalf("ReplayTo(4): %v", err)
	}
	if len(evs) != 4 || evs[len(evs)-1].Seq != 4 {
		t.Fatalf("ReplayTo(4) = %d events ending at %d", len(evs), evs[len(evs)-1].Seq)
	}

	j.SetCovered(6)
	j.Compact()
	if _, err := j.ReplayTo(5); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReplayTo below horizon: err = %v, want ErrCompacted", err)
	}
	evs, err = j.ReplayTo(8)
	if err != nil {
		t.Fatalf("ReplayTo(8) above horizon: %v", err)
	}
	if len(evs) != 2 || evs[0].Seq != 7 || evs[1].Seq != 8 {
		t.Fatalf("ReplayTo(8) = %+v, want seqs 7,8", evs)
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want string // substring of the error, "" = valid
	}{
		{"zero is valid", Options{}, ""},
		{"budget with interval", Options{MaxBytes: MinMaxBytes, CheckpointInterval: time.Second}, ""},
		{"negative budget", Options{MaxBytes: -1}, "-journal-max-bytes"},
		{"budget below one batch", Options{MaxBytes: 1024, CheckpointInterval: time.Second}, "smaller than one group-commit batch"},
		{"budget without interval", Options{MaxBytes: MinMaxBytes}, "-journal-checkpoint-interval"},
	}
	for _, tc := range cases {
		err := tc.opt.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestOpenRejectsBudgetWithoutReplaceBackend(t *testing.T) {
	// slow-style backend without Replace: a budget would be unenforceable.
	type appendOnly struct{ Backend }
	_, err := Open(appendOnly{NewMemBackend(nil)}, Options{MaxBytes: MinMaxBytes})
	if err == nil || !strings.Contains(err.Error(), "atomic replace") {
		t.Fatalf("Open with budget on append-only backend: err = %v", err)
	}
}

// With prompt coverage the ladder never engages: the budget holds via
// compaction alone and usage stays bounded.
func TestBudgetHoldsWithPromptCoverage(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{MaxBatch: 4, MaxBytes: 2048})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	// Simulate an eager snapshotter: every commit is immediately covered.
	j.AddCommitHook(func(last uint64) { j.SetCovered(last) })
	var maxUsage int64
	for i := 0; i < 400; i++ {
		mustAppend(t, j, KindVerdict, fmt.Sprintf(`{"i":%d}`, i))
		if u := j.Usage(); u > maxUsage {
			maxUsage = u
		}
	}
	st := j.Retention()
	if st.Compactions == 0 {
		t.Fatalf("no compactions under budget pressure: %+v", st)
	}
	if st.Shed != 0 || st.Level != "none" {
		t.Fatalf("ladder engaged despite prompt coverage: %+v", st)
	}
	// Usage may overshoot by at most one batch before the post-commit
	// compaction claws it back.
	if maxUsage > 2048+1024 {
		t.Fatalf("usage peaked at %d, want ≤ budget + one small batch", maxUsage)
	}
}

// With coverage frozen the ladder escalates: backpressure (a checkpoint
// request) and then shedding of async appends, while durable Append
// keeps working. Coverage arriving de-escalates back to none.
func TestDegradationLadderEscalatesAndRecovers(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{MaxBatch: 4, MaxBytes: 1024})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	var ckptReqs atomic.Int64
	// The owner's snapshotter is broken: every checkpoint request
	// completes as an attempt but advances no coverage.
	j.SetCheckpointRequest(func() {
		ckptReqs.Add(1)
		go j.SetCovered(0)
	})
	var last uint64
	for i := 0; i < 64; i++ {
		last = mustAppend(t, j, KindVerdict, fmt.Sprintf(`{"i":%d}`, i))
	}
	waitLevel := func(want string) {
		t.Helper()
		for i := 0; i < 5000 && j.Retention().Level != want; i++ {
			time.Sleep(time.Millisecond)
		}
		if got := j.Retention().Level; got != want {
			t.Fatalf("level = %q, want %q (retention %+v)", got, want, j.Retention())
		}
	}
	waitLevel("shed")
	if ckptReqs.Load() == 0 {
		t.Fatal("ladder escalated without ever requesting a checkpoint")
	}

	// Async appends shed with a counted error; durable appends do not.
	errAsync := j.AppendAsync(KindOutcome, []byte(`{"shed":"me"}`))
	if !errors.Is(errAsync, ErrShed) {
		t.Fatalf("AppendAsync under shed: err = %v, want ErrShed", errAsync)
	}
	seq, err := j.Append(KindVerdict, []byte(`{"durable":true}`))
	if err != nil || seq <= last {
		t.Fatalf("durable Append under shed: seq=%d err=%v", seq, err)
	}
	if st := j.Retention(); st.Shed != 1 {
		t.Fatalf("shed count = %d, want 1", st.Shed)
	}

	// Coverage finally lands: compaction reclaims and the ladder resets.
	j.SetCovered(j.LastSeq())
	j.Compact()
	waitLevel("none")
	if err := j.AppendAsync(KindOutcome, []byte(`{"back":"open"}`)); err != nil {
		t.Fatalf("AppendAsync after recovery: %v", err)
	}
}

// Backpressure must release the writer as soon as a checkpoint attempt
// lands, even one that advances coverage enough to reclaim — the
// healthy middle rung of the ladder.
func TestBackpressureReleasedByCheckpoint(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{MaxBatch: 4, MaxBytes: 1024})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	// A working snapshotter: each request covers everything committed.
	j.SetCheckpointRequest(func() {
		go j.SetCovered(j.LastSeq())
	})
	for i := 0; i < 200; i++ {
		mustAppend(t, j, KindVerdict, fmt.Sprintf(`{"i":%d}`, i))
	}
	st := j.Retention()
	if st.Shed != 0 {
		t.Fatalf("healthy snapshotter still shed %d appends: %+v", st.Shed, st)
	}
	if st.Compactions == 0 {
		t.Fatalf("no compaction ever ran: %+v", st)
	}
}
