package journal

import (
	"encoding/json"
	"fmt"

	"repro/internal/cluster/store"
)

// Event is one journal entry: a monotonic sequence number, a kind from
// the registry in events.go, and an opaque JSON payload.
type Event struct {
	Seq  uint64          `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// eventBody is the payload inside the SNP1 frame; the sequence number
// rides the frame's generation field, so it is CRC-protected without
// being duplicated in the JSON.
type eventBody struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Stats summarizes one replay pass over a journal byte stream.
type Stats struct {
	// Events is the number of records accepted.
	Events int `json:"events"`
	// Corrupt counts records rejected by framing or payload validation.
	Corrupt int `json:"corrupt"`
	// Stale counts well-formed records whose sequence number did not
	// advance past the last accepted one (duplicated or reordered
	// bytes, e.g. from a replayed torn region).
	Stale int `json:"stale"`
	// Resyncs counts NextMagic skips past damaged regions.
	Resyncs int `json:"resyncs"`
	// Bytes is the total input length.
	Bytes int `json:"bytes"`
}

// EncodeEvent frames one event in the store's SNP1 record format: the
// sequence number in the generation field, the kind + data as a JSON
// payload, CRC32 over the lot.
func EncodeEvent(ev Event) []byte {
	body, err := json.Marshal(eventBody{Kind: ev.Kind, Data: ev.Data})
	if err != nil {
		// Kind is a registry string and Data is already-valid JSON;
		// reaching here means a caller handed us a non-JSON RawMessage.
		// Frame the error loudly rather than panicking the writer.
		body, _ = json.Marshal(eventBody{Kind: ev.Kind})
	}
	return store.EncodeRecord(ev.Seq, body)
}

// decodeOne parses a single event from the front of b.
func decodeOne(b []byte) (Event, []byte, error) {
	seq, payload, rest, err := store.DecodeRecord(b)
	if err != nil {
		return Event{}, nil, err
	}
	var body eventBody
	if err := json.Unmarshal(payload, &body); err != nil {
		return Event{}, nil, fmt.Errorf("%w: event body: %v", store.ErrCorrupt, err)
	}
	if body.Kind == "" {
		return Event{}, nil, fmt.Errorf("%w: event without kind", store.ErrCorrupt)
	}
	if len(body.Data) > MaxEventBytes {
		return Event{}, nil, fmt.Errorf("%w: event data %d bytes", store.ErrCorrupt, len(body.Data))
	}
	return Event{Seq: seq, Kind: body.Kind, Data: body.Data}, rest, nil
}

// DecodeEvents replays a journal byte stream, accepting every valid
// record whose sequence number advances monotonically and
// resynchronizing past anything else via NextMagic. It never fails:
// arbitrary bytes decode to the longest recoverable event history plus
// stats on what was skipped. Sequence gaps are legal (failed group
// commits consume numbers); regressions and duplicates are not.
func DecodeEvents(b []byte) ([]Event, Stats) {
	stats := Stats{Bytes: len(b)}
	var events []Event
	var lastSeq uint64
	for len(b) > 0 {
		ev, rest, err := decodeOne(b)
		if err == nil {
			b = rest
			if ev.Seq <= lastSeq {
				stats.Stale++
				continue
			}
			lastSeq = ev.Seq
			events = append(events, ev)
			stats.Events++
			continue
		}
		stats.Corrupt++
		skip := store.NextMagic(b)
		if skip < 0 {
			break
		}
		stats.Resyncs++
		b = b[skip:]
	}
	return events, stats
}
