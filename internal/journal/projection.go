package journal

import (
	"sync"
	"time"
)

// Projection is a derived view of the journal: a consumer that applies
// events in sequence order and reports its checkpoint. The refinement
// invariant every projection must satisfy: applying any prefix of the
// event history, possibly with stuttering (re-applying events at or
// below the checkpoint), converges to the same observable state —
// Apply must therefore be idempotent per sequence number. Apply runs on
// the projection's driver goroutine and must not append to the journal
// (the bounded-lag gate would deadlock the writer against itself).
type Projection interface {
	// Name identifies the projection in lag gauges.
	Name() string
	// Apply consumes one event. Events arrive in strictly increasing
	// sequence order, starting just above the registration checkpoint.
	Apply(ev Event)
	// Seq returns the checkpoint: the highest sequence number whose
	// event is reflected in the projection's state.
	Seq() uint64
}

// DefaultMaxLag bounds how far (in sequence numbers) the slowest
// projection may trail the journal before appends block.
const DefaultMaxLag = 4096

// Engine drives registered projections asynchronously from a journal:
// each gets a goroutine that replays from its checkpoint and then
// follows live group commits, and an admission gate on the journal's
// writer bounds the slowest projection's lag so a stuck consumer turns
// into append backpressure instead of unbounded memory.
type Engine struct {
	j      *Journal
	maxLag uint64

	mu      sync.Mutex
	cond    *sync.Cond
	seqs    map[string]uint64 // applied checkpoint per projection
	closed  bool
	drivers []chan struct{}

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewEngine wires an engine to j: a commit hook wakes the drivers and
// the admission gate bounds projection lag. maxLag ≤ 0 uses
// DefaultMaxLag.
func NewEngine(j *Journal, maxLag int) *Engine {
	if maxLag <= 0 {
		maxLag = DefaultMaxLag
	}
	e := &Engine{
		j:      j,
		maxLag: uint64(maxLag),
		seqs:   make(map[string]uint64),
		stop:   make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	j.AddCommitHook(e.notifyAll)
	j.SetGate(e.admit)
	return e
}

// Register starts driving p. Replay begins just above p.Seq(), so a
// projection restored from a checkpoint skips the prefix it already
// reflects. Call before traffic; registrations race live commits
// harmlessly (the driver catches up) but Lags snapshots mid-replay.
func (e *Engine) Register(p Projection) {
	notify := make(chan struct{}, 1)
	e.mu.Lock()
	e.seqs[p.Name()] = p.Seq()
	e.drivers = append(e.drivers, notify)
	e.mu.Unlock()
	e.wg.Add(1)
	go e.drive(p, notify)
}

func (e *Engine) notifyAll(uint64) {
	e.mu.Lock()
	drivers := e.drivers
	e.mu.Unlock()
	for _, ch := range drivers {
		select {
		case ch <- struct{}{}:
		default: // already poked; the driver drains everything pending
		}
	}
}

// admit is the journal writer's gate: block while the slowest
// projection trails by more than maxLag. Returns immediately once the
// engine closes so Close cannot wedge the writer.
func (e *Engine) admit(last uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for !e.closed {
		min, ok := e.minSeqLocked()
		if !ok || last < min+e.maxLag {
			return
		}
		e.cond.Wait()
	}
}

// MinSeq returns the smallest projection checkpoint; ok is false with
// no registrations. The retention layer uses it as the compaction
// floor: events above the slowest projection's checkpoint are still
// needed for its replay and must not be dropped.
func (e *Engine) MinSeq() (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.minSeqLocked()
}

// minSeqLocked returns the smallest projection checkpoint; ok is false
// with no registrations.
func (e *Engine) minSeqLocked() (uint64, bool) {
	var min uint64
	ok := false
	for _, s := range e.seqs {
		if !ok || s < min {
			min, ok = s, true
		}
	}
	return min, ok
}

func (e *Engine) drive(p Projection, notify chan struct{}) {
	defer e.wg.Done()
	for {
		e.catchUp(p)
		select {
		case <-notify:
		case <-e.stop:
			e.catchUp(p) // final drain so Close leaves projections converged
			return
		}
	}
}

// catchUp applies everything the journal holds above p's checkpoint,
// then publishes the new checkpoint and wakes gate/WaitCaughtUp
// waiters.
func (e *Engine) catchUp(p Projection) {
	for {
		evs := e.j.Events(p.Seq() + 1)
		if len(evs) == 0 {
			break
		}
		for _, ev := range evs {
			p.Apply(ev)
		}
	}
	e.mu.Lock()
	e.seqs[p.Name()] = p.Seq()
	e.mu.Unlock()
	e.cond.Broadcast()
}

// Lags returns each projection's current lag behind the journal in
// sequence numbers. Sequence gaps from failed commits inflate the
// number slightly; it is a bound, not an exact event count.
func (e *Engine) Lags() map[string]uint64 {
	last := e.j.LastSeq()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]uint64, len(e.seqs))
	for name, s := range e.seqs {
		var lag uint64
		if last > s {
			lag = last - s
		}
		out[name] = lag
	}
	return out
}

// WaitCaughtUp blocks until every projection's checkpoint reaches the
// journal's last sequence number, or the timeout elapses; it reports
// whether convergence was reached. This is checkd's startup barrier:
// replay the journal, wait here, then open /readyz.
func (e *Engine) WaitCaughtUp(timeout time.Duration) bool {
	expired := false
	t := time.AfterFunc(timeout, func() {
		e.mu.Lock()
		expired = true
		e.mu.Unlock()
		e.cond.Broadcast()
	})
	defer t.Stop()
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		min, ok := e.minSeqLocked()
		caught := !ok || min >= e.j.LastSeq()
		if caught || e.closed || expired {
			return caught
		}
		e.cond.Wait()
	}
}

// Close stops the drivers after a final catch-up pass and releases any
// writer blocked in the gate. Close the engine before the journal so
// the last commits are still readable during the final drain.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.stop)
	e.cond.Broadcast()
	e.wg.Wait()
}
