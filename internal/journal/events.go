package journal

// Event kind registry: the closed vocabulary of journal event kinds.
// Projections switch on these strings and gcvet's eventkind analyzer
// rejects inline literals in gated packages, so a typo cannot mint an
// event no projection will ever apply.
const (
	// KindRequest records a check request arriving at a handler.
	KindRequest = "journal-request"
	// KindVerdict records a computed verdict entering the cache; its
	// append is durable before the HTTP response is written.
	KindVerdict = "journal-verdict"
	// KindOutcome records how a request finished (ok, bad_request,
	// timeout, overload, internal) with its latency.
	KindOutcome = "journal-outcome"
	// KindCampaign records a completed chaos campaign summary.
	KindCampaign = "journal-campaign"
)
