package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/store"
)

func mustAppend(t *testing.T, j *Journal, kind string, data string) uint64 {
	t.Helper()
	seq, err := j.Append(kind, []byte(data))
	if err != nil {
		t.Fatalf("Append(%s): %v", kind, err)
	}
	return seq
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	b := NewMemBackend(nil)
	j, err := Open(b, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		seq := mustAppend(t, j, KindRequest, fmt.Sprintf(`{"i":%d}`, i))
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if got := j.LastSeq(); got != n {
		t.Fatalf("LastSeq = %d, want %d", got, n)
	}
	j.Close()

	j2, err := Open(b, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if st := j2.ReplayStats(); st.Events != n || st.Corrupt != 0 || st.Stale != 0 {
		t.Fatalf("replay stats = %+v, want %d clean events", st, n)
	}
	evs := j2.Events(1)
	if len(evs) != n {
		t.Fatalf("replayed %d events, want %d", len(evs), n)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Kind != KindRequest {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	// Replayed numbering continues: the next append gets n+1.
	if seq := mustAppend(t, j2, KindOutcome, `{}`); seq != n+1 {
		t.Fatalf("post-replay seq = %d, want %d", seq, n+1)
	}
}

func TestJournalConcurrentAppendsGroupCommit(t *testing.T) {
	b := NewMemBackend(nil)
	j, err := Open(b, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const writers, each = 8, 50
	var wg sync.WaitGroup
	seqs := make(chan uint64, writers*each)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := j.Append(KindVerdict, []byte(fmt.Sprintf(`{"w":%d,"i":%d}`, w, i)))
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				seqs <- seq
			}
		}(w)
	}
	wg.Wait()
	close(seqs)
	seen := make(map[uint64]bool)
	for s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate seq %d", s)
		}
		seen[s] = true
	}
	if len(seen) != writers*each {
		t.Fatalf("got %d unique seqs, want %d", len(seen), writers*each)
	}
	records, commits, errsN := j.Counters()
	if records != writers*each || errsN != 0 {
		t.Fatalf("records=%d errs=%d, want %d/0", records, errsN, writers*each)
	}
	if commits > records {
		t.Fatalf("commits=%d exceeds records=%d", commits, records)
	}
	j.Close()
	evs, stats := DecodeEvents(mustReadAll(t, b))
	if stats.Events != writers*each || stats.Corrupt != 0 {
		t.Fatalf("decode stats %+v", stats)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq regression at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func mustReadAll(t *testing.T, b Backend) []byte {
	t.Helper()
	raw, err := b.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return raw
}

func TestJournalReplayResyncsPastDamage(t *testing.T) {
	var raw []byte
	raw = append(raw, EncodeEvent(Event{Seq: 1, Kind: KindRequest, Data: json.RawMessage(`{"a":1}`)})...)
	raw = append(raw, EncodeEvent(Event{Seq: 2, Kind: KindVerdict, Data: json.RawMessage(`{"b":2}`)})...)
	raw = append(raw, []byte("garbage in the middle")...)
	raw = append(raw, EncodeEvent(Event{Seq: 5, Kind: KindOutcome})...)
	raw = append(raw, EncodeEvent(Event{Seq: 3, Kind: KindRequest})...) // stale: regresses
	good := EncodeEvent(Event{Seq: 9, Kind: KindCampaign})
	raw = append(raw, good...)
	raw = append(raw, good[:len(good)-7]...) // torn tail

	evs, stats := DecodeEvents(raw)
	wantSeqs := []uint64{1, 2, 5, 9}
	if len(evs) != len(wantSeqs) {
		t.Fatalf("got %d events (%+v), want seqs %v; stats %+v", len(evs), evs, wantSeqs, stats)
	}
	for i, want := range wantSeqs {
		if evs[i].Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, evs[i].Seq, want)
		}
	}
	if stats.Stale != 1 {
		t.Fatalf("stale = %d, want 1; stats %+v", stats.Stale, stats)
	}
	if stats.Corrupt < 2 { // the garbage region and the torn tail
		t.Fatalf("corrupt = %d, want >= 2; stats %+v", stats.Corrupt, stats)
	}

	// A journal opened on the damaged bytes continues past the highest
	// surviving seq.
	j, err := Open(NewMemBackend(raw), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	if seq := mustAppend(t, j, KindRequest, `{}`); seq != 10 {
		t.Fatalf("post-damage seq = %d, want 10", seq)
	}
}

// failBackend errors every Append whose 1-based index is in failAt.
type failBackend struct {
	mem    MemBackend
	mu     sync.Mutex
	n      int
	failAt map[int]bool
}

func (fb *failBackend) ReadAll() ([]byte, error) { return fb.mem.ReadAll() }

func (fb *failBackend) Append(b []byte) error {
	fb.mu.Lock()
	fb.n++
	fail := fb.failAt[fb.n]
	fb.mu.Unlock()
	if fail {
		return errors.New("injected append failure")
	}
	return fb.mem.Append(b)
}

func TestJournalFailedCommitConsumesSeqs(t *testing.T) {
	fb := &failBackend{failAt: map[int]bool{2: true}}
	j, err := Open(fb, Options{MaxBatch: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if seq := mustAppend(t, j, KindRequest, `{}`); seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	if _, err := j.Append(KindRequest, []byte(`{}`)); err == nil {
		t.Fatal("append over failing backend succeeded")
	}
	// The failed batch's number is burned: a torn prefix of it on disk
	// can never collide with a later acked record.
	if seq := mustAppend(t, j, KindRequest, `{}`); seq != 3 {
		t.Fatalf("post-failure seq = %d, want 3 (seq 2 consumed by failed commit)", seq)
	}
	_, _, appendErrors := j.Counters()
	if appendErrors != 1 {
		t.Fatalf("appendErrors = %d, want 1", appendErrors)
	}
	j.Close()
	evs, _ := DecodeEvents(mustReadAll(t, fb))
	wantSeqs := []uint64{1, 3}
	if len(evs) != 2 || evs[0].Seq != wantSeqs[0] || evs[1].Seq != wantSeqs[1] {
		t.Fatalf("durable events %+v, want seqs %v", evs, wantSeqs)
	}
}

func TestJournalCloseDrainsPending(t *testing.T) {
	b := NewMemBackend(nil)
	j, err := Open(b, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := j.AppendAsync(KindOutcome, []byte(`{}`)); err != nil {
			t.Fatalf("AppendAsync: %v", err)
		}
	}
	j.Close()
	if d := j.Depth(); d != 0 {
		t.Fatalf("depth after close = %d, want 0", d)
	}
	evs, stats := DecodeEvents(mustReadAll(t, b))
	if len(evs) != n || stats.Corrupt != 0 {
		t.Fatalf("drained %d events (stats %+v), want %d", len(evs), stats, n)
	}
	if _, err := j.Append(KindRequest, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	j.Close() // idempotent
}

func TestJournalRejectsOversizedEvent(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	if _, err := j.Append(KindRequest, make([]byte, MaxEventBytes+1)); !errors.Is(err, ErrEventTooLarge) {
		t.Fatalf("oversized append: %v, want ErrEventTooLarge", err)
	}
}

func TestFileBackendSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.snp")
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	j, err := Open(fb, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, j, KindVerdict, `{"v":1}`)
	mustAppend(t, j, KindVerdict, `{"v":2}`)
	j.Close()
	if err := fb.Close(); err != nil {
		t.Fatalf("backend close: %v", err)
	}

	fb2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fb2.Close()
	j2, err := Open(fb2, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j2.Close()
	if got := j2.LastSeq(); got != 2 {
		t.Fatalf("LastSeq after file reopen = %d, want 2", got)
	}
}

func TestTornBackendModelsHardKill(t *testing.T) {
	tb := NewTornBackend(3, 2) // tear the 3rd append, keep half its bytes
	j, err := Open(tb, Options{MaxBatch: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, j, KindVerdict, `{"v":1}`)
	mustAppend(t, j, KindVerdict, `{"v":2}`)
	// The torn append is acked — the lie a crash makes possible.
	mustAppend(t, j, KindVerdict, `{"v":3}`)
	if !tb.Torn() {
		t.Fatal("backend not torn after third append")
	}
	if _, err := j.Append(KindVerdict, []byte(`{"v":4}`)); err == nil {
		t.Fatal("append to dead backend succeeded")
	}
	j.Close()

	// Restart on the surviving bytes: the acked-but-unflushed suffix is
	// exactly the torn batch; everything before it replays cleanly.
	j2, err := Open(NewMemBackend(tb.Bytes()), Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if got := j2.LastSeq(); got != 2 {
		t.Fatalf("LastSeq after torn replay = %d, want 2", got)
	}
	if st := j2.ReplayStats(); st.Events != 2 || st.Corrupt == 0 {
		t.Fatalf("replay stats %+v, want 2 events and a corrupt tail", st)
	}
}

// countProjection counts events per kind; Apply is idempotent per seq
// by construction (seq strictly advances before state mutates).
type countProjection struct {
	name string
	mu   sync.Mutex
	seq  uint64
	n    map[string]int
	hold chan struct{} // non-nil: Apply blocks until closed
	slow time.Duration // per-event apply delay
}

func newCountProjection(name string) *countProjection {
	return &countProjection{name: name, n: make(map[string]int)}
}

func (c *countProjection) Name() string { return c.name }

func (c *countProjection) Seq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

func (c *countProjection) Apply(ev Event) {
	if c.hold != nil {
		<-c.hold
	}
	if c.slow > 0 {
		time.Sleep(c.slow)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.Seq <= c.seq {
		return // stuttering: already reflected
	}
	c.seq = ev.Seq
	c.n[ev.Kind]++
}

func (c *countProjection) count(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n[kind]
}

func TestEngineDrivesProjectionsToConvergence(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	e := NewEngine(j, 0)
	defer e.Close()
	p := newCountProjection("counts")
	e.Register(p)

	const n = 50
	for i := 0; i < n; i++ {
		mustAppend(t, j, KindRequest, `{}`)
	}
	if !e.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("projections did not converge; lags %v", e.Lags())
	}
	if got := p.count(KindRequest); got != n {
		t.Fatalf("projection counted %d, want %d", got, n)
	}
	if lags := e.Lags(); lags["counts"] != 0 {
		t.Fatalf("lag after convergence = %v", lags)
	}
}

func TestEngineReplaysFromCheckpoint(t *testing.T) {
	b := NewMemBackend(nil)
	j, err := Open(b, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, j, KindVerdict, `{}`)
	}
	j.Close()

	j2, err := Open(b, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	e := NewEngine(j2, 0)
	defer e.Close()
	p := newCountProjection("ckpt")
	p.seq = 6 // restored checkpoint: events 1–6 already reflected
	e.Register(p)
	if !e.WaitCaughtUp(5 * time.Second) {
		t.Fatalf("no convergence; lags %v", e.Lags())
	}
	if got := p.count(KindVerdict); got != 4 {
		t.Fatalf("checkpointed projection applied %d events, want 4", got)
	}
}

func TestEngineBoundsProjectionLag(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{MaxBatch: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	const maxLag = 4
	e := NewEngine(j, maxLag)
	p := newCountProjection("slow")
	p.hold = make(chan struct{})
	e.Register(p)

	// The first maxLag commits pass the gate; the one after blocks.
	acked := make(chan uint64, maxLag+2)
	go func() {
		for i := 0; i < maxLag+2; i++ {
			seq, err := j.Append(KindRequest, []byte(`{}`))
			if err != nil {
				return
			}
			acked <- seq
		}
	}()
	for i := 0; i < maxLag; i++ {
		select {
		case <-acked:
		case <-time.After(5 * time.Second):
			t.Fatalf("append %d did not complete under the lag bound", i)
		}
	}
	select {
	case seq := <-acked:
		t.Fatalf("append seq %d completed past the lag bound with a wedged projection", seq)
	case <-time.After(100 * time.Millisecond):
		// blocked, as designed
	}

	close(p.hold) // projection drains; gate reopens
	for i := 0; i < 2; i++ {
		select {
		case <-acked:
		case <-time.After(5 * time.Second):
			t.Fatal("append still blocked after projection caught up")
		}
	}
	e.Close()
}

func TestEngineCloseReleasesGatedWriter(t *testing.T) {
	j, err := Open(NewMemBackend(nil), Options{MaxBatch: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e := NewEngine(j, 1)
	p := newCountProjection("slow")
	p.slow = 20 * time.Millisecond
	e.Register(p)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			j.Append(KindRequest, []byte(`{}`)) //nolint:errcheck
		}
	}()
	// Close the engine while the writer is pacing behind the slow
	// projection's lag bound: the closed gate must admit everything so
	// the remaining appends (and journal Close) cannot deadlock.
	time.Sleep(30 * time.Millisecond)
	e.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer stayed wedged after engine close")
	}
	j.Close()
}

func TestBatchHistogramPercentiles(t *testing.T) {
	var h batchHistogram
	for i := 0; i < 90; i++ {
		h.observe(1)
	}
	for i := 0; i < 10; i++ {
		h.observe(64)
	}
	if p50 := h.percentile(0.50); p50 != 1 {
		t.Fatalf("p50 = %v, want 1", p50)
	}
	if p99 := h.percentile(0.99); p99 != 64 {
		t.Fatalf("p99 = %v, want 64", p99)
	}
	if p := h.percentile(0.99); p != 64 {
		t.Fatalf("repeat p99 = %v", p)
	}
	var empty batchHistogram
	if p := empty.percentile(0.5); p != 0 {
		t.Fatalf("empty percentile = %v, want 0", p)
	}
}

func TestEncodeEventFramesOnStoreRecord(t *testing.T) {
	ev := Event{Seq: 42, Kind: KindCampaign, Data: json.RawMessage(`{"x":1}`)}
	raw := EncodeEvent(ev)
	gen, payload, rest, err := store.DecodeRecord(raw)
	if err != nil || gen != 42 || len(rest) != 0 {
		t.Fatalf("DecodeRecord: gen=%d rest=%d err=%v", gen, len(rest), err)
	}
	var body eventBody
	if err := json.Unmarshal(payload, &body); err != nil || body.Kind != KindCampaign {
		t.Fatalf("payload %s: %v", payload, err)
	}
}
