package journal

import (
	"errors"
	"os"
	"sync"
)

// Backend is the journal's durable byte sink. Append must be
// fsync-equivalent: when it returns nil the bytes survive a crash.
// ReadAll returns everything previously appended, including any torn
// tail a crash left behind — the codec's job is to survive it.
type Backend interface {
	ReadAll() ([]byte, error)
	Append(b []byte) error
}

// MemBackend is an in-memory backend for tests and fleet replicas.
// Safe for concurrent use.
type MemBackend struct {
	mu  sync.Mutex
	buf []byte
}

// NewMemBackend returns an empty in-memory backend, optionally seeded
// with existing journal bytes (a "restart" keeps the same backend).
func NewMemBackend(seed []byte) *MemBackend {
	return &MemBackend{buf: append([]byte(nil), seed...)}
}

func (m *MemBackend) ReadAll() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf...), nil
}

func (m *MemBackend) Append(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = append(m.buf, b...)
	return nil
}

// Len returns the backend's current size in bytes.
func (m *MemBackend) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.buf)
}

// FileBackend appends to one O_APPEND file, syncing after every write
// so a nil Append means the batch is on disk. The group-commit writer
// amortizes that sync across a whole batch.
type FileBackend struct {
	path string
	mu   sync.Mutex
	f    *os.File
}

// OpenFile opens (creating if absent) the journal file at path.
func OpenFile(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileBackend{path: path, f: f}, nil
}

func (fb *FileBackend) ReadAll() ([]byte, error) {
	b, err := os.ReadFile(fb.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return b, err
}

func (fb *FileBackend) Append(b []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if _, err := fb.f.Write(b); err != nil {
		return err
	}
	return fb.f.Sync()
}

// Close closes the underlying file. Call after Journal.Close.
func (fb *FileBackend) Close() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.f.Close()
}

// ErrBackendDead is returned by a TornBackend after its injected tear:
// the modeled disk is gone, as after a hard kill.
var ErrBackendDead = errors.New("journal: backend dead after torn write")

// TornBackend models a hard kill mid-batch: the Nth Append persists
// only a prefix of its bytes yet reports success (the
// acknowledged-but-unflushed lie every group-commit design must bound),
// and every later Append fails — the process is dead; only the torn
// bytes survive for the restart to replay. Deterministic: the tear
// point and prefix fraction are fixed by construction.
type TornBackend struct {
	mem      MemBackend
	mu       sync.Mutex
	appends  int
	tearAt   int
	prefixOf int // keep len(b)/prefixOf bytes of the torn append
	dead     bool
}

// NewTornBackend tears the tearAt-th Append (1-based), keeping
// 1/prefixOf of that batch's bytes. prefixOf ≤ 0 keeps nothing.
func NewTornBackend(tearAt, prefixOf int) *TornBackend {
	return &TornBackend{tearAt: tearAt, prefixOf: prefixOf}
}

func (tb *TornBackend) ReadAll() ([]byte, error) { return tb.mem.ReadAll() }

// Bytes returns what actually survived — the restart's input.
func (tb *TornBackend) Bytes() []byte {
	b, _ := tb.mem.ReadAll()
	return b
}

// Torn reports whether the tear has happened yet.
func (tb *TornBackend) Torn() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.dead
}

func (tb *TornBackend) Append(b []byte) error {
	tb.mu.Lock()
	if tb.dead {
		tb.mu.Unlock()
		return ErrBackendDead
	}
	tb.appends++
	torn := tb.appends == tb.tearAt
	if torn {
		tb.dead = true
	}
	tb.mu.Unlock()
	if torn {
		keep := 0
		if tb.prefixOf > 0 {
			keep = len(b) / tb.prefixOf
		}
		tb.mem.Append(b[:keep])
		return nil // the lie: acked but not durable
	}
	return tb.mem.Append(b)
}
