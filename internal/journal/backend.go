package journal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
)

// Backend is the journal's durable byte sink. Append must be
// fsync-equivalent: when it returns nil the bytes survive a crash.
// ReadAll returns everything previously appended, including any torn
// tail a crash left behind — the codec's job is to survive it.
type Backend interface {
	ReadAll() ([]byte, error)
	Append(b []byte) error
}

// ReplaceBackend is the optional capability compaction needs: atomically
// substitute the backend's entire contents with b. The swap must be
// all-or-nothing across a crash — after a kill at any point, ReadAll
// returns either the complete old bytes or the complete new bytes,
// never a mixture — because the compactor's correctness argument is
// exactly that both sides replay to a consistent history.
type ReplaceBackend interface {
	Backend
	Replace(b []byte) error
}

// MemBackend is an in-memory backend for tests and fleet replicas.
// Safe for concurrent use.
type MemBackend struct {
	mu  sync.Mutex
	buf []byte
}

// NewMemBackend returns an empty in-memory backend, optionally seeded
// with existing journal bytes (a "restart" keeps the same backend).
func NewMemBackend(seed []byte) *MemBackend {
	return &MemBackend{buf: append([]byte(nil), seed...)}
}

func (m *MemBackend) ReadAll() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf...), nil
}

func (m *MemBackend) Append(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = append(m.buf, b...)
	return nil
}

// Len returns the backend's current size in bytes.
func (m *MemBackend) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.buf)
}

// Replace atomically substitutes the backend's contents — the in-memory
// model of a compaction swap.
func (m *MemBackend) Replace(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = append(m.buf[:0:0], b...)
	return nil
}

// FileBackend appends to one O_APPEND file, syncing after every write
// so a nil Append means the batch is on disk. The group-commit writer
// amortizes that sync across a whole batch.
type FileBackend struct {
	path string
	mu   sync.Mutex
	f    *os.File
}

// compactSuffix names the temporary file a compaction rewrite targets.
// The rename onto the journal path is the commit point.
const compactSuffix = ".compact"

// OpenFile opens (creating if absent) the journal file at path. A
// leftover compaction temp file means a crash landed before the rename
// commit point; the original journal is intact, so the temp is garbage.
func OpenFile(path string) (*FileBackend, error) {
	_ = os.Remove(path + compactSuffix)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileBackend{path: path, f: f}, nil
}

func (fb *FileBackend) ReadAll() ([]byte, error) {
	b, err := os.ReadFile(fb.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return b, err
}

func (fb *FileBackend) Append(b []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.f == nil {
		return errors.New("journal: file backend lost its handle after a failed compaction swap")
	}
	if _, err := fb.f.Write(b); err != nil {
		return err
	}
	return fb.f.Sync()
}

// Replace rewrites the journal file with b via the classic crash-safe
// sequence: write a temp file, fsync it, rename it over the journal
// path, fsync the parent directory, then move the append handle to the
// new inode. A kill before the rename leaves the old file; a kill after
// leaves the new one; there is no in-between state a restart can read.
func (fb *FileBackend) Replace(b []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	tmp := fb.path + compactSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, fb.path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(fb.path))
	// The old handle points at the now-unlinked inode; appends through it
	// would vanish. Reopen before closing it so a reopen failure leaves
	// the backend loudly broken (nil handle) instead of silently lossy.
	nf, err := os.OpenFile(fb.path, os.O_APPEND|os.O_WRONLY, 0o644)
	old := fb.f
	fb.f = nf // nil on error
	if old != nil {
		old.Close()
	}
	return err
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best-effort: some filesystems reject directory fsync, and the rename
// itself is already ordered on the ones that matter.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Close closes the underlying file. Call after Journal.Close.
func (fb *FileBackend) Close() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.f == nil {
		return nil
	}
	return fb.f.Close()
}

// ErrBackendDead is returned by a TornBackend after its injected tear:
// the modeled disk is gone, as after a hard kill.
var ErrBackendDead = errors.New("journal: backend dead after torn write")

// TornBackend models a hard kill mid-batch: the Nth Append persists
// only a prefix of its bytes yet reports success (the
// acknowledged-but-unflushed lie every group-commit design must bound),
// and every later Append fails — the process is dead; only the torn
// bytes survive for the restart to replay. Deterministic: the tear
// point and prefix fraction are fixed by construction.
type TornBackend struct {
	mem      MemBackend
	mu       sync.Mutex
	appends  int
	tearAt   int
	prefixOf int // keep len(b)/prefixOf bytes of the torn append
	dead     bool

	// Kill-mid-compaction arming: the next Replace dies instead of
	// completing. killAfterSwap selects which side of the rename commit
	// point the kill lands on — false models a kill before the swap (the
	// old bytes survive untouched), true a kill just after (the new bytes
	// survive). Either way the backend is dead afterwards, exactly like a
	// SIGKILLed process whose restart will replay whatever survived.
	killOnReplace bool
	killAfterSwap bool
}

// NewTornBackend tears the tearAt-th Append (1-based), keeping
// 1/prefixOf of that batch's bytes. prefixOf ≤ 0 keeps nothing.
func NewTornBackend(tearAt, prefixOf int) *TornBackend {
	return &TornBackend{tearAt: tearAt, prefixOf: prefixOf}
}

func (tb *TornBackend) ReadAll() ([]byte, error) { return tb.mem.ReadAll() }

// Bytes returns what actually survived — the restart's input.
func (tb *TornBackend) Bytes() []byte {
	b, _ := tb.mem.ReadAll()
	return b
}

// Torn reports whether the tear has happened yet.
func (tb *TornBackend) Torn() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.dead
}

func (tb *TornBackend) Append(b []byte) error {
	tb.mu.Lock()
	if tb.dead {
		tb.mu.Unlock()
		return ErrBackendDead
	}
	tb.appends++
	torn := tb.appends == tb.tearAt
	if torn {
		tb.dead = true
	}
	tb.mu.Unlock()
	if torn {
		keep := 0
		if tb.prefixOf > 0 {
			keep = len(b) / tb.prefixOf
		}
		tb.mem.Append(b[:keep])
		return nil // the lie: acked but not durable
	}
	return tb.mem.Append(b)
}

// ArmReplaceKill arms a deterministic hard kill inside the next
// Replace. afterSwap=false kills before the atomic swap (old journal
// survives); afterSwap=true kills immediately after it (compacted
// journal survives). Use Bytes() afterwards as the restart's input.
func (tb *TornBackend) ArmReplaceKill(afterSwap bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.killOnReplace = true
	tb.killAfterSwap = afterSwap
}

// Replace implements ReplaceBackend with the armed kill model: an
// unarmed Replace swaps cleanly; an armed one dies on the chosen side
// of the swap and reports the death. Because a real Replace is atomic
// (FileBackend's rename), these are the only two crash outcomes.
func (tb *TornBackend) Replace(b []byte) error {
	tb.mu.Lock()
	if tb.dead {
		tb.mu.Unlock()
		return ErrBackendDead
	}
	kill, after := tb.killOnReplace, tb.killAfterSwap
	if kill {
		tb.dead = true
		tb.killOnReplace = false
	}
	tb.mu.Unlock()
	if kill && !after {
		return ErrBackendDead // died before the rename: old bytes stand
	}
	if err := tb.mem.Replace(b); err != nil {
		return err
	}
	if kill {
		return ErrBackendDead // died after the rename: new bytes stand
	}
	return nil
}
