package journal

import (
	"fmt"
)

// Retention: checkpoint-anchored compaction plus a disk budget with an
// explicit degradation ladder.
//
// Compaction drops the journal prefix that is both (a) covered by a
// durable checkpoint outside the journal — the owner asserts this with
// SetCovered after a cache snapshot lands on disk — and (b) at or below
// every live projection's applied checkpoint, so no consumer still
// needs those events for replay. The surviving suffix is rewritten to
// the backend in one atomic Replace (write temp + fsync + rename +
// fsync dir for FileBackend), so a kill at any instant leaves either
// the old or the new journal, both fully replayable.
//
// The budget (Options.MaxBytes) degrades in explicit, observable rungs
// when the journal outgrows it:
//
//  1. compact — drop the covered prefix; usually enough.
//  2. backpressure — compaction could not reclaim (coverage is stale),
//     so request a checkpoint from the owner and hold the writer before
//     its next commit until a checkpoint attempt completes. Appenders
//     feel this through the bounded queue, exactly like the projection
//     lag gate.
//  3. shed — the checkpoint attempt didn't reclaim either (disk full,
//     snapshot failing). Fire-and-forget appends (AppendAsync) are
//     refused with ErrShed and counted; durable Append keeps its
//     durable-or-error contract and is never shed.
//
// Every rung is visible in RetentionStats; nothing is dropped silently.
// All decisions are event-driven (coverage attempts, commit sizes) —
// the journal never reads a clock, so the ladder is deterministic.

// Degradation ladder stages, in escalation order.
const (
	// DegradeNone: within budget (or no budget configured).
	DegradeNone int32 = iota
	// DegradeBackpressure: over budget after compaction; the writer
	// holds commits until the owner attempts a checkpoint.
	DegradeBackpressure
	// DegradeShed: still over budget after a checkpoint attempt; async
	// appends are shed (counted), durable appends still commit.
	DegradeShed
)

// MinMaxBytes is the smallest admissible disk budget: one group commit
// of modest events must fit, or the ladder would thrash on every batch.
const MinMaxBytes = 64 << 10

// Validate rejects nonsensical retention settings with errors naming
// the flag, mirroring the repo's flag-validation convention. Call it at
// flag-parse time; Open itself only enforces what would corrupt state
// (a budget on a backend without atomic replace).
func (o Options) Validate() error {
	if o.MaxBytes < 0 {
		return fmt.Errorf("journal: -journal-max-bytes must be ≥ 0, got %d", o.MaxBytes)
	}
	if o.MaxBytes > 0 && o.MaxBytes < MinMaxBytes {
		return fmt.Errorf("journal: -journal-max-bytes %d is smaller than one group-commit batch (minimum %d)", o.MaxBytes, int64(MinMaxBytes))
	}
	if o.MaxBytes > 0 && o.CheckpointInterval <= 0 {
		return fmt.Errorf("journal: -journal-checkpoint-interval must be positive when -journal-max-bytes is set, got %s", o.CheckpointInterval)
	}
	return nil
}

// RetentionStats is the observable state of the retention layer.
type RetentionStats struct {
	// MaxBytes is the configured budget (0 = unbounded).
	MaxBytes int64 `json:"max_bytes"`
	// UsageBytes is the journal's current backend footprint as tracked
	// by the writer (replayed bytes + committed bytes − reclaimed).
	UsageBytes int64 `json:"usage_bytes"`
	// CoveredSeq is the highest sequence the owner has asserted durable
	// coverage for (cache snapshot checkpoint).
	CoveredSeq uint64 `json:"covered_seq"`
	// HorizonSeq is the compaction horizon: events at or below it have
	// been dropped from the journal.
	HorizonSeq uint64 `json:"horizon_seq"`
	// Level names the current degradation rung.
	Level string `json:"level"`
	// Compactions / CompactErrors count swap attempts.
	Compactions   int64 `json:"compactions"`
	CompactErrors int64 `json:"compact_errors"`
	// DroppedEvents / ReclaimedBytes measure what compaction removed.
	DroppedEvents  int64 `json:"dropped_events"`
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	// Shed counts async appends refused under disk pressure
	// (journal_shed_total in /metrics). Never incremented silently —
	// every count corresponds to an ErrShed returned to a caller.
	Shed int64 `json:"journal_shed_total"`
}

// Retention returns a snapshot of the retention state.
func (j *Journal) Retention() RetentionStats {
	j.mu.Lock()
	covered := j.covered
	j.mu.Unlock()
	return RetentionStats{
		MaxBytes:       j.opt.MaxBytes,
		UsageBytes:     j.usage.Load(),
		CoveredSeq:     covered,
		HorizonSeq:     j.horizon.Load(),
		Level:          levelName(j.level.Load()),
		Compactions:    j.compactions.Load(),
		CompactErrors:  j.compactErrors.Load(),
		DroppedEvents:  j.dropped.Load(),
		ReclaimedBytes: j.reclaimed.Load(),
		Shed:           j.shed.Load(),
	}
}

func levelName(l int32) string {
	switch l {
	case DegradeBackpressure:
		return "backpressure"
	case DegradeShed:
		return "shed"
	default:
		return "none"
	}
}

// Horizon returns the compaction horizon: the highest sequence number
// whose event has been dropped. 0 means nothing was ever compacted.
func (j *Journal) Horizon() uint64 { return j.horizon.Load() }

// Usage returns the journal's tracked backend footprint in bytes.
func (j *Journal) Usage() int64 { return j.usage.Load() }

// Covered returns the highest externally-covered sequence number.
func (j *Journal) Covered() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.covered
}

// SetCovered asserts that all events with Seq ≤ seq are durably
// reconstructible without the journal (a cache snapshot embedding a
// journal checkpoint ≥ seq is on disk). Coverage only advances; calling
// with an older seq still counts as a checkpoint attempt, which is what
// releases a writer waiting in the backpressure rung — the owner must
// call SetCovered after every snapshot attempt, successful or not, or
// pressure would hold the writer until the next attempt.
func (j *Journal) SetCovered(seq uint64) {
	j.mu.Lock()
	if seq > j.covered {
		j.covered = seq
	}
	j.ckptAttempts++
	j.mu.Unlock()
	j.pressure.Broadcast()
	j.pokeCompaction()
}

// SetRetainFunc installs the projection floor: compaction never drops
// above the returned sequence (the projection engine's minimum applied
// checkpoint), because live projections replay from the in-memory
// history. ok=false means no floor. Install before traffic.
func (j *Journal) SetRetainFunc(fn func() (uint64, bool)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.retain = fn
}

// SetCheckpointRequest installs the owner's checkpoint trigger, called
// by the writer (non-blocking, coalesced by the owner) when compaction
// alone cannot reclaim the budget. Install before traffic.
func (j *Journal) SetCheckpointRequest(fn func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ckptReq = fn
}

// Compact requests a compaction pass on the writer goroutine and waits
// for it, then returns the resulting retention state. Safe to call
// concurrently with appends; a no-op when nothing is droppable.
func (j *Journal) Compact() RetentionStats {
	ack := make(chan struct{})
	select {
	case j.compactc <- ack:
		select {
		case <-ack:
		case <-j.done:
		}
	case <-j.done:
	}
	return j.Retention()
}

// pokeCompaction schedules a compaction pass without waiting. The
// buffered channel coalesces bursts; the writer drains it between
// batches.
func (j *Journal) pokeCompaction() {
	select {
	case j.compactc <- nil:
	default:
	}
}

// ReplayTo returns the event history up to and including seq — the
// time-travel input for rebuilding "state as of seq N". It fails with
// ErrCompacted when seq is below the compaction horizon, because the
// prefix needed for the reconstruction no longer exists.
func (j *Journal) ReplayTo(seq uint64) ([]Event, error) {
	if h := j.horizon.Load(); seq < h {
		return nil, fmt.Errorf("%w: seq %d < horizon %d", ErrCompacted, seq, h)
	}
	evs := j.Events(0)
	// Binary search for the first event above seq.
	lo, hi := 0, len(evs)
	for lo < hi {
		mid := (lo + hi) / 2
		if evs[mid].Seq <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return evs[:lo], nil
}

// retentionHorizon computes the highest droppable sequence number:
// everything covered externally, not still needed by a projection, and
// strictly below the last event — the journal always keeps its newest
// event so a restart resumes the sequence numbering instead of
// restarting at zero underneath the projections' checkpoints.
func (j *Journal) retentionHorizon() uint64 {
	j.mu.Lock()
	target := j.covered
	retain := j.retain
	n := len(j.events)
	var newest uint64
	if n > 0 {
		newest = j.events[n-1].Seq
	}
	j.mu.Unlock()
	if retain != nil {
		if floor, ok := retain(); ok && floor < target {
			target = floor
		}
	}
	if n == 0 {
		return 0
	}
	if target >= newest {
		target = newest - 1
	}
	return target
}

// runCompaction rewrites the backend to the suffix above the retention
// horizon. Writer goroutine only: nothing else mutates j.events or
// appends to the backend while the swap is in flight, which is the
// whole concurrency argument for compacting on the writer.
func (j *Journal) runCompaction() {
	rb, ok := j.b.(ReplaceBackend)
	if !ok {
		return
	}
	target := j.retentionHorizon()
	if target <= j.horizon.Load() {
		return
	}
	j.mu.Lock()
	// First surviving index: events are sorted by Seq.
	lo, hi := 0, len(j.events)
	for lo < hi {
		mid := (lo + hi) / 2
		if j.events[mid].Seq <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	droppedN := lo
	var buf []byte
	for _, ev := range j.events[lo:] {
		buf = append(buf, EncodeEvent(ev)...)
	}
	j.mu.Unlock()
	if droppedN == 0 {
		j.horizon.Store(target) // nothing stored below target (gaps)
		return
	}
	if err := rb.Replace(buf); err != nil {
		j.compactErrors.Add(1)
		return
	}
	j.mu.Lock()
	survived := j.events[droppedN:]
	j.events = append(make([]Event, 0, len(survived)), survived...)
	j.mu.Unlock()
	old := j.usage.Swap(int64(len(buf)))
	if d := old - int64(len(buf)); d > 0 {
		j.reclaimed.Add(d)
	}
	j.dropped.Add(int64(droppedN))
	j.horizon.Store(target)
	j.compactions.Add(1)
	// Any compaction that restores the budget de-escalates the ladder
	// immediately — recovery is as observable as degradation.
	if max := j.opt.MaxBytes; max > 0 && j.usage.Load() <= max {
		j.level.Store(DegradeNone)
	}
}

// checkBudget runs after every commit: evaluate the ladder. Rung 1 is
// always a compaction attempt; if usage still exceeds the budget, ask
// the owner for a checkpoint and escalate one rung. De-escalation is
// immediate the moment any compaction brings usage back under budget.
func (j *Journal) checkBudget() {
	max := j.opt.MaxBytes
	if max <= 0 {
		return
	}
	if j.usage.Load() <= max {
		j.level.Store(DegradeNone)
		return
	}
	j.runCompaction()
	if j.usage.Load() <= max {
		j.level.Store(DegradeNone)
		return
	}
	// Snapshot the attempt counter BEFORE issuing the request: the
	// owner's checkpoint may complete (and call SetCovered) before the
	// writer reaches the pressure gate, and the gate must treat that as
	// the attempt it was waiting for, not wedge waiting for another.
	j.mu.Lock()
	req := j.ckptReq
	base := j.ckptAttempts
	j.mu.Unlock()
	switch j.level.Load() {
	case DegradeNone:
		if req == nil {
			// Nobody to ask for coverage: backpressure would hold the
			// writer forever. Skip straight to shedding.
			j.level.Store(DegradeShed)
			return
		}
		j.mu.Lock()
		j.pressureBase = base
		j.mu.Unlock()
		j.level.Store(DegradeBackpressure)
		req()
	case DegradeBackpressure:
		// pressureGate already held a commit through one checkpoint
		// attempt and the budget is still blown: escalate, but keep
		// asking — recovery rides the next successful checkpoint.
		j.level.Store(DegradeShed)
		if req != nil {
			req()
		}
	case DegradeShed:
		if req != nil {
			req()
		}
	}
}

// pressureGate holds the writer before a commit while the ladder is in
// the backpressure rung, until a checkpoint attempt completes (or the
// journal closes). It then compacts with whatever coverage the attempt
// produced; if that clears the budget the ladder resets and traffic
// proceeds as if nothing happened — the paper's convergence frame
// applied to storage: a bounded perturbation, then re-convergence.
func (j *Journal) pressureGate() {
	if j.opt.MaxBytes <= 0 || j.level.Load() != DegradeBackpressure {
		return
	}
	j.mu.Lock()
	for !j.closed && j.level.Load() == DegradeBackpressure && j.ckptAttempts <= j.pressureBase {
		j.pressure.Wait()
	}
	j.mu.Unlock()
	j.runCompaction()
	if j.usage.Load() <= j.opt.MaxBytes {
		j.level.Store(DegradeNone)
	}
}
