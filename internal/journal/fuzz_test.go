package journal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the replay path and
// checks the codec's survival contract: DecodeEvents never panics,
// never lets the sequence number regress or repeat, never accepts an
// event without a registry-shaped kind, and everything it accepts
// round-trips — re-encoding the accepted history and replaying it
// yields the identical event list with zero corruption.
func FuzzJournalDecode(f *testing.F) {
	valid := func(evs ...Event) []byte {
		var b []byte
		for _, ev := range evs {
			b = append(b, EncodeEvent(ev)...)
		}
		return b
	}
	clean := valid(
		Event{Seq: 1, Kind: KindRequest, Data: json.RawMessage(`{"kind":"ringsim"}`)},
		Event{Seq: 2, Kind: KindVerdict, Data: json.RawMessage(`{"key":"abc","v":1}`)},
		Event{Seq: 3, Kind: KindOutcome, Data: json.RawMessage(`{"status":"ok"}`)},
	)
	f.Add(clean)
	f.Add(clean[:len(clean)-9]) // torn tail
	bitflipped := append([]byte(nil), clean...)
	bitflipped[len(bitflipped)/2] ^= 0x40
	f.Add(bitflipped)
	f.Add(valid( // stale: seq regresses mid-stream
		Event{Seq: 5, Kind: KindRequest},
		Event{Seq: 3, Kind: KindVerdict},
		Event{Seq: 5, Kind: KindOutcome},
		Event{Seq: 6, Kind: KindCampaign},
	))
	// Oversized length field: header claims more payload than exists.
	over := append([]byte(nil), clean[:16]...)
	over[12], over[13], over[14], over[15] = 0x7f, 0xff, 0xff, 0xff
	f.Add(over)
	f.Add([]byte("SNP1"))
	f.Add([]byte{})
	f.Add(append([]byte("noise before "), clean...))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, stats := DecodeEvents(data)
		if stats.Events != len(evs) {
			t.Fatalf("stats.Events=%d but %d events", stats.Events, len(evs))
		}
		if stats.Bytes != len(data) {
			t.Fatalf("stats.Bytes=%d, want %d", stats.Bytes, len(data))
		}
		var last uint64
		for i, ev := range evs {
			if ev.Seq <= last {
				t.Fatalf("event %d: seq %d does not advance past %d", i, ev.Seq, last)
			}
			last = ev.Seq
			if ev.Kind == "" {
				t.Fatalf("event %d accepted without a kind", i)
			}
			if len(ev.Data) > MaxEventBytes {
				t.Fatalf("event %d: oversized data %d", i, len(ev.Data))
			}
		}
		// Round-trip: the accepted history re-encodes to a stream that
		// replays cleanly to the same seq/kind sequence, and encoding
		// is idempotent from there (hand-crafted inputs may carry
		// non-compact JSON that one encode pass normalizes).
		var re []byte
		for _, ev := range evs {
			re = append(re, EncodeEvent(ev)...)
		}
		evs2, stats2 := DecodeEvents(re)
		if stats2.Corrupt != 0 || stats2.Stale != 0 {
			t.Fatalf("re-encoded stream not clean: %+v", stats2)
		}
		if len(evs2) != len(evs) {
			t.Fatalf("round trip: %d events became %d", len(evs), len(evs2))
		}
		var re2 []byte
		for i := range evs {
			if evs2[i].Seq != evs[i].Seq || evs2[i].Kind != evs[i].Kind {
				t.Fatalf("round trip diverged at %d: %+v vs %+v", i, evs[i], evs2[i])
			}
			re2 = append(re2, EncodeEvent(evs2[i])...)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode not idempotent over accepted events")
		}
	})
}
