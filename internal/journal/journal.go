// Package journal is the event-sourced request journal under checkd: an
// append-only log of typed events on the snapshot store's SNP1 record
// framing, written by a batched single-writer loop and consumed by
// asynchronous projections.
//
// The design splits durability from derivation:
//
//   - the journal (this file + codec.go + backend.go) is the single
//     durable source of truth. Concurrent appenders hand records to one
//     writer goroutine that coalesces them into group commits — one
//     flush per batch, one ack per record — so heavy write traffic pays
//     one fsync-equivalent per batch instead of one per request;
//   - projections (projection.go) are derived views: registered
//     consumers replay the journal from their checkpoint and then
//     follow live commits, each a stuttering refinement of the event
//     history — replaying any prefix converges to the same observable
//     state, so crash recovery is replay, not reconstruction.
//
// The paper's frame is what makes the split safe: correctness lives in
// convergence, not in fragile in-flight state. A torn tail, a corrupt
// record, or a lost unflushed batch is a bounded perturbation — replay
// resynchronizes past the damage (CRC + NextMagic), the sequence number
// never regresses, and every projection converges to the state implied
// by the surviving prefix.
package journal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Limits and defaults. One event is a request/verdict-sized JSON blob;
// anything near the record cap is a bug, not data.
const (
	// DefaultMaxBatch is the group-commit coalescing bound.
	DefaultMaxBatch = 256
	// DefaultMaxQueue bounds records waiting for the writer; beyond it,
	// appenders block (backpressure, not unbounded memory).
	DefaultMaxQueue = 1024
	// MaxEventBytes bounds one event's payload.
	MaxEventBytes = 1 << 20
)

// Journal errors.
var (
	// ErrClosed rejects appends after Close.
	ErrClosed = errors.New("journal: closed")
	// ErrEventTooLarge rejects oversized payloads at admission.
	ErrEventTooLarge = errors.New("journal: event exceeds size bound")
	// ErrShed rejects fire-and-forget appends while the retention ladder
	// is in its shed stage: the disk budget is exhausted and compaction
	// plus a checkpoint attempt could not reclaim it. Never silent — the
	// caller sees the error and RetentionStats counts it.
	ErrShed = errors.New("journal: async append shed under disk pressure")
	// ErrCompacted rejects a ReplayTo target below the compaction
	// horizon: the prefix needed to reconstruct that state is gone.
	ErrCompacted = errors.New("journal: sequence below compaction horizon")
)

// Options tunes a journal. Zero values mean "use the default".
type Options struct {
	// MaxBatch caps records coalesced into one group commit.
	MaxBatch int
	// MaxQueue bounds the pending-append queue.
	MaxQueue int
	// MaxBytes, when positive, is the journal's disk budget: past it the
	// writer compacts, then applies backpressure, then sheds async
	// appends (see retention.go). Requires a ReplaceBackend. Zero means
	// unbounded (compaction still runs when requested explicitly).
	MaxBytes int64
	// CheckpointInterval is the cadence at which the journal's owner
	// promises to publish durable coverage (SetCovered) — the journal
	// itself never ticks a clock, but Validate rejects a budget with no
	// checkpoint cadence because compaction could then never reclaim.
	CheckpointInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = DefaultMaxQueue
	}
	return o
}

// appendReq is one record handed to the writer. ack is nil for
// fire-and-forget appends (AppendAsync).
type appendReq struct {
	kind string
	data []byte
	ack  chan appendAck
}

type appendAck struct {
	seq uint64
	err error
}

// Journal is the append-only event log. Construct with Open, dispose
// with Close. Append/AppendAsync are safe for concurrent use; replay
// state (Events, LastSeq) is safe to read concurrently with appends.
type Journal struct {
	b   Backend
	opt Options

	appendc chan appendReq
	stop    chan struct{}
	done    chan struct{}

	mu      sync.Mutex
	closed  bool
	events  []Event // durable history, oldest first
	hooks   []func(last uint64)
	gate    func(next uint64) // optional admission gate (bounded projection lag)
	batches batchHistogram

	// Retention state (retention.go). covered/ckptAttempts are guarded
	// by mu; pressure waits on them. retain/ckptReq are set before
	// traffic. compactc carries compaction requests to the writer.
	covered      uint64
	ckptAttempts uint64
	pressureBase uint64 // ckptAttempts snapshot at backpressure escalation
	pressure     *sync.Cond
	retain       func() (uint64, bool)
	ckptReq      func()
	compactc     chan chan struct{}

	lastSeq      atomic.Uint64 // highest durable sequence number
	depth        atomic.Int64  // records accepted but not yet flushed
	records      atomic.Int64  // records durably committed
	commits      atomic.Int64  // group commits flushed
	appendErrors atomic.Int64  // records whose flush failed

	usage         atomic.Int64  // backend bytes, tracked journal-side
	horizon       atomic.Uint64 // highest compacted-away sequence number
	level         atomic.Int32  // degradation ladder stage (DegradeNone…)
	compactions   atomic.Int64  // successful compaction swaps
	compactErrors atomic.Int64  // failed compaction swaps
	dropped       atomic.Int64  // events dropped by compaction
	reclaimed     atomic.Int64  // bytes reclaimed by compaction
	shed          atomic.Int64  // async appends shed under disk pressure

	replay Stats // decode stats from Open, immutable afterwards
}

// Open reads and validates b's existing contents (resynchronizing past
// torn or corrupt regions), then starts the writer loop. The returned
// journal continues the surviving sequence numbering: replayed state and
// new appends form one monotonic history.
func Open(b Backend, opt Options) (*Journal, error) {
	raw, err := b.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	events, stats := DecodeEvents(raw)
	j := &Journal{
		b:      b,
		opt:    opt.withDefaults(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		events: events,
		replay: stats,
	}
	if j.opt.MaxBytes > 0 {
		if _, ok := b.(ReplaceBackend); !ok {
			return nil, errors.New("journal: -journal-max-bytes requires a backend that supports atomic replace")
		}
	}
	j.pressure = sync.NewCond(&j.mu)
	j.compactc = make(chan chan struct{}, 1)
	j.appendc = make(chan appendReq, j.opt.MaxQueue)
	j.usage.Store(int64(stats.Bytes))
	if n := len(events); n > 0 {
		j.lastSeq.Store(events[n-1].Seq)
		// A history starting above 1 is the signature of a prior
		// compaction: everything below the first surviving event was
		// covered and dropped. Recover the horizon so ReplayTo and
		// fleet hole detection stay honest across restarts.
		if first := events[0].Seq; first > 1 {
			j.horizon.Store(first - 1)
		}
	}
	go j.writer(j.stop)
	return j, nil
}

// ReplayStats reports what Open found: events accepted, corrupt records
// skipped, stale (sequence-regressing) records skipped, and resyncs.
func (j *Journal) ReplayStats() Stats { return j.replay }

// LastSeq returns the highest durable sequence number (0 = empty).
func (j *Journal) LastSeq() uint64 { return j.lastSeq.Load() }

// Depth returns the number of records accepted but not yet flushed —
// the journal's write backlog, exported as journal_depth.
func (j *Journal) Depth() int64 { return j.depth.Load() }

// Counters returns cumulative commit statistics.
func (j *Journal) Counters() (records, commits, appendErrors int64) {
	return j.records.Load(), j.commits.Load(), j.appendErrors.Load()
}

// BatchPercentiles reports the p50 and p99 group-commit batch sizes.
func (j *Journal) BatchPercentiles() (p50, p99 float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.batches.percentile(0.50), j.batches.percentile(0.99)
}

// Append durably appends one event and returns its sequence number. It
// blocks until the event's group commit has been flushed (or failed):
// when Append returns nil, the event is in the journal.
func (j *Journal) Append(kind string, data []byte) (uint64, error) {
	ack := make(chan appendAck, 1)
	if err := j.enqueue(appendReq{kind: kind, data: data, ack: ack}); err != nil {
		return 0, err
	}
	a := <-ack
	return a.seq, a.err
}

// AppendAsync appends one event without waiting for durability: the
// record rides the next group commit, and a flush failure is counted
// (Counters) rather than surfaced. Use it for derived bookkeeping
// events whose loss a restart can tolerate; verdicts use Append.
func (j *Journal) AppendAsync(kind string, data []byte) error {
	return j.enqueue(appendReq{kind: kind, data: data})
}

func (j *Journal) enqueue(r appendReq) error {
	if len(r.data) > MaxEventBytes {
		return fmt.Errorf("%w: %d bytes", ErrEventTooLarge, len(r.data))
	}
	// The ladder's last rung: fire-and-forget kinds shed under disk
	// pressure. Durable appends (with an ack) are never shed — they ride
	// the queue and either commit or return an error.
	if r.ack == nil && j.level.Load() >= DegradeShed {
		j.shed.Add(1)
		return ErrShed
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	// Count under the lock so Close's drain loop sees every accepted
	// record before deciding the queue is empty.
	j.depth.Add(1)
	j.mu.Unlock()
	j.appendc <- r
	return nil
}

// Events returns a copy of the durable events with Seq ≥ from, oldest
// first. from = 0 (or 1) returns the full history.
func (j *Journal) Events(from uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Binary search over the (sorted, possibly gapped) history.
	lo, hi := 0, len(j.events)
	for lo < hi {
		mid := (lo + hi) / 2
		if j.events[mid].Seq < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	out := make([]Event, len(j.events)-lo)
	copy(out, j.events[lo:])
	return out
}

// AddCommitHook registers fn to run after every group commit with the
// new last sequence number. Hooks run on the writer goroutine and must
// not block on the journal itself; the projection engine uses one to
// wake its drivers.
func (j *Journal) AddCommitHook(fn func(last uint64)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.hooks = append(j.hooks, fn)
}

// SetGate installs an admission gate the writer consults before each
// group commit, passing the current last sequence number. The gate may
// block (the projection engine bounds lag with it) but must return once
// its condition clears or its owner closes.
func (j *Journal) SetGate(gate func(last uint64)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.gate = gate
}

// writer is the single-writer group-commit loop: take one record, drain
// whatever else is queued (up to MaxBatch), flush once, ack each.
func (j *Journal) writer(stop chan struct{}) {
	defer close(j.done)
	for {
		var first appendReq
		select {
		case first = <-j.appendc:
		case ack := <-j.compactc:
			j.runCompaction()
			if ack != nil {
				close(ack)
			}
			continue
		case <-stop:
			// Graceful close: flush everything accepted before Close.
			for j.depth.Load() > 0 {
				j.commit(j.collect(<-j.appendc))
			}
			return
		}
		batch := j.collect(first)
		j.mu.Lock()
		gate := j.gate
		j.mu.Unlock()
		if gate != nil {
			gate(j.lastSeq.Load())
		}
		j.pressureGate()
		j.commit(batch)
		j.checkBudget()
	}
}

// collect coalesces queued records behind first, up to MaxBatch.
func (j *Journal) collect(first appendReq) []appendReq {
	batch := append(make([]appendReq, 0, 16), first)
	for len(batch) < j.opt.MaxBatch {
		select {
		case r := <-j.appendc:
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// commit flushes one batch: assign sequence numbers, encode, append to
// the backend, then publish and ack. Sequence numbers are consumed even
// when the flush fails — a torn write may have persisted a prefix of
// the batch, and reusing its numbers would make replay accept a stale
// record in place of a later acked one.
func (j *Journal) commit(batch []appendReq) {
	base := j.lastSeq.Load()
	var buf []byte
	events := make([]Event, len(batch))
	for i, r := range batch {
		ev := Event{Seq: base + uint64(i) + 1, Kind: r.kind, Data: r.data}
		events[i] = ev
		buf = append(buf, EncodeEvent(ev)...)
	}
	err := j.b.Append(buf)
	j.depth.Add(-int64(len(batch)))
	// Charge the budget even on error: a torn write may have persisted a
	// prefix of the batch, so over-counting is the safe direction.
	j.usage.Add(int64(len(buf)))
	if err != nil {
		j.appendErrors.Add(int64(len(batch)))
		for _, r := range batch {
			if r.ack != nil {
				r.ack <- appendAck{err: fmt.Errorf("journal: append: %w", err)}
			}
		}
		// The numbering still advances past the possibly-torn region.
		j.lastSeqAdvance(base + uint64(len(batch)))
		return
	}
	last := base + uint64(len(batch))
	j.mu.Lock()
	j.events = append(j.events, events...)
	j.batches.observe(len(batch))
	hooks := j.hooks
	j.mu.Unlock()
	j.lastSeq.Store(last)
	j.records.Add(int64(len(batch)))
	j.commits.Add(1)
	for i, r := range batch {
		if r.ack != nil {
			r.ack <- appendAck{seq: events[i].Seq}
		}
	}
	for _, fn := range hooks {
		fn(last)
	}
}

// lastSeqAdvance moves lastSeq forward without publishing events (the
// failed-flush path). CAS-free: only the writer mutates lastSeq.
func (j *Journal) lastSeqAdvance(to uint64) {
	if to > j.lastSeq.Load() {
		j.lastSeq.Store(to)
	}
}

// Close stops the writer after flushing every accepted record.
// Idempotent; appends after Close fail with ErrClosed.
func (j *Journal) Close() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return
	}
	j.closed = true
	j.mu.Unlock()
	close(j.stop)
	j.pressure.Broadcast() // release a writer parked in the pressure gate
	<-j.done
}

// batchHistogram tracks group-commit batch sizes in power-of-two
// buckets (1, 2, 4, … 512, overflow) for the p50/p99 gauges.
type batchHistogram struct {
	counts [11]int64
	n      int64
}

// batchBucket maps a batch size to its bucket index.
func batchBucket(size int) int {
	i, bound := 0, 1
	for i < 10 && size > bound {
		bound <<= 1
		i++
	}
	return i
}

// batchBucketValue is the representative size of bucket i.
func batchBucketValue(i int) float64 {
	if i >= 10 {
		return 1024
	}
	return float64(int(1) << i)
}

func (h *batchHistogram) observe(size int) {
	h.counts[batchBucket(size)]++
	h.n++
}

// percentile returns the representative batch size at quantile q.
func (h *batchHistogram) percentile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return batchBucketValue(i)
		}
	}
	return batchBucketValue(len(h.counts) - 1)
}
