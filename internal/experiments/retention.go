package experiments

import (
	"fmt"

	"repro/internal/journal"
)

// E21Retention is the eighth extension experiment: the journal
// retention layer. Four properties are checked, all deterministic
// (in-memory backends, explicit coverage, no timers). Bounded disk:
// under a byte budget with prompt snapshot coverage, the journal's
// footprint stays flat while the appended volume grows far past the
// budget — compaction reclaims the covered prefix instead of the file
// growing without bound. Crash safety: a hard kill on either side of
// compaction's atomic swap (before: old bytes stand; after: new bytes
// stand) leaves a journal that replays cleanly with every
// acknowledged-and-covered-or-later event intact. Replay cost: a
// restart on a compacted journal replays only the surviving suffix,
// not the retired history. Degradation ladder: when coverage cannot
// advance, the journal sheds only fire-and-forget appends — counted,
// never silent — while durable appends keep working, and compaction
// restores full admission.
func E21Retention() *Report {
	r := &Report{
		ID:    "E21",
		Title: "Extension: journal retention — bounded disk, crash-safe compaction, degradation ladder",
		Claim: "checkpoint-anchored compaction bounds the journal's footprint without losing acked state, and disk pressure degrades service deterministically (compact → backpressure → shed) instead of failing open or silently dropping durable events",
	}
	flatCurveRows(r)
	killMidCompactionRows(r)
	replayCostRow(r)
	ladderRows(r)
	return r
}

// flatCurveRows streams events through a budgeted journal with prompt
// coverage and checks the byte curve stays flat under the budget while
// the appended volume grows past it.
func flatCurveRows(r *Report) {
	const (
		budget  = 8 << 10
		appends = 512
		cover   = 16 // publish coverage + compact every this many appends
	)
	mem := journal.NewMemBackend(nil)
	j, err := journal.Open(mem, journal.Options{MaxBatch: 4, MaxBytes: budget})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "flat curve: open", Detail: err.Error()})
		return
	}
	defer j.Close()
	payload := []byte(`{"kind":"ringsim","key":"sha256:abcdef0123456789","cached":false}`)
	var appended, maxUsage int64
	for i := 0; i < appends; i++ {
		if _, err := j.Append(journal.KindVerdict, payload); err != nil {
			r.Rows = append(r.Rows, Row{Name: "flat curve: append", Detail: err.Error()})
			return
		}
		appended += int64(len(payload))
		if (i+1)%cover == 0 {
			j.SetCovered(j.LastSeq())
			j.Compact()
		}
		if u := j.Usage(); u > maxUsage {
			maxUsage = u
		}
	}
	st := j.Retention()
	r.Rows = append(r.Rows, expectRow(
		fmt.Sprintf("flat curve: %d appends under a %d-byte budget", appends, budget),
		maxUsage <= budget && st.UsageBytes <= budget && appended > 3*budget, true,
		fmt.Sprintf("payload=%d bytes appended, peak usage=%d, final usage=%d, compactions=%d, reclaimed=%d bytes, shed=%d",
			appended, maxUsage, st.UsageBytes, st.Compactions, st.ReclaimedBytes, st.Shed)))
	r.Rows = append(r.Rows, expectRow(
		"flat curve: nothing shed with prompt coverage",
		st.Shed == 0 && st.Level == "none", true,
		fmt.Sprintf("level=%s shed=%d — compaction alone held the budget", st.Level, st.Shed)))
}

// killMidCompactionRows hard-kills the backend on each side of the
// compaction swap and checks the surviving bytes replay cleanly with
// the uncovered suffix intact.
func killMidCompactionRows(r *Report) {
	for _, afterSwap := range []bool{false, true} {
		arm := "before swap"
		if afterSwap {
			arm = "after swap"
		}
		tb := journal.NewTornBackend(0, 0)
		j, err := journal.Open(tb, journal.Options{MaxBatch: 1})
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: "kill " + arm + ": open", Detail: err.Error()})
			return
		}
		const n = 10
		for i := 0; i < n; i++ {
			if _, err := j.Append(journal.KindVerdict, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
				r.Rows = append(r.Rows, Row{Name: "kill " + arm + ": append", Detail: err.Error()})
				return
			}
		}
		tb.ArmReplaceKill(afterSwap)
		j.SetCovered(6)
		j.Compact()
		j.Close()

		re, err := journal.Open(journal.NewMemBackend(tb.Bytes()), journal.Options{})
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: "kill " + arm + ": reopen", Detail: err.Error()})
			return
		}
		st := re.ReplayStats()
		events := re.Events(0)
		// Before the swap the old file stands (all 10 events); after it
		// the new file stands (the suffix above the horizon). Either way:
		// zero corruption, and every event above the covered prefix — the
		// ones a snapshot does not hold — survives.
		wantFirst, wantEvents := uint64(1), n
		if afterSwap {
			wantFirst, wantEvents = 7, 4
		}
		clean := st.Corrupt == 0 && st.Stale == 0 && len(events) == wantEvents &&
			re.LastSeq() == n && events[0].Seq == wantFirst
		suffixIntact := true
		seen := map[uint64]bool{}
		for _, ev := range events {
			seen[ev.Seq] = true
		}
		for seq := uint64(7); seq <= n; seq++ {
			if !seen[seq] {
				suffixIntact = false
			}
		}
		re.Close()
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("kill %s: replay clean, uncovered suffix intact", arm),
			clean && suffixIntact, true,
			fmt.Sprintf("events=%d first_seq=%d last_seq=%d corrupt=%d (atomic swap: the journal is always one of exactly two valid files)",
				len(events), events[0].Seq, re.LastSeq(), st.Corrupt)))
	}
}

// replayCostRow compares restart replay cost before and after
// compaction on the same history.
func replayCostRow(r *Report) {
	const n = 400
	mem := journal.NewMemBackend(nil)
	j, err := journal.Open(mem, journal.Options{MaxBatch: 8})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "replay cost: open", Detail: err.Error()})
		return
	}
	for i := 0; i < n; i++ {
		if _, err := j.Append(journal.KindVerdict, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			r.Rows = append(r.Rows, Row{Name: "replay cost: append", Detail: err.Error()})
			return
		}
	}
	full, err := journal.Open(journal.NewMemBackend(mustBytes(mem)), journal.Options{})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "replay cost: full reopen", Detail: err.Error()})
		return
	}
	fullEvents := full.ReplayStats().Events
	full.Close()

	j.SetCovered(n - 20)
	j.Compact()
	j.Close()
	compacted, err := journal.Open(journal.NewMemBackend(mustBytes(mem)), journal.Options{})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "replay cost: compacted reopen", Detail: err.Error()})
		return
	}
	defer compacted.Close()
	st := compacted.ReplayStats()
	r.Rows = append(r.Rows, expectRow(
		fmt.Sprintf("replay cost: %d events → %d after compaction", fullEvents, st.Events),
		fullEvents == n && st.Events == 20 && compacted.LastSeq() == n && compacted.Horizon() == n-20, true,
		fmt.Sprintf("restart replays %d events instead of %d; horizon=%d inferred from the surviving suffix, head seq preserved at %d",
			st.Events, fullEvents, compacted.Horizon(), compacted.LastSeq())))
}

// ladderRows drives the journal past its budget with no coverage
// available, checks shedding is selective and counted, then restores
// coverage and checks full admission returns.
func ladderRows(r *Report) {
	const budget = 2 << 10
	mem := journal.NewMemBackend(nil)
	j, err := journal.Open(mem, journal.Options{MaxBatch: 1, MaxBytes: budget})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "ladder: open", Detail: err.Error()})
		return
	}
	defer j.Close()
	payload := []byte(`{"kind":"outcome","status":"ok","elapsed_us":1200}`)
	// No coverage, no checkpoint requester: once over budget the writer
	// can neither compact nor wait, so the ladder goes straight to shed.
	for j.Usage() <= budget {
		if _, err := j.Append(journal.KindVerdict, payload); err != nil {
			r.Rows = append(r.Rows, Row{Name: "ladder: fill", Detail: err.Error()})
			return
		}
	}
	// One more durable append: the writer ran the over-budget check for
	// the crossing batch before committing this one.
	if _, err := j.Append(journal.KindVerdict, payload); err != nil {
		r.Rows = append(r.Rows, Row{Name: "ladder: crossing append", Detail: err.Error()})
		return
	}
	st := j.Retention()
	asyncErr := j.AppendAsync(journal.KindOutcome, payload)
	_, durableErr := j.Append(journal.KindVerdict, payload)
	shedSt := j.Retention()
	r.Rows = append(r.Rows, expectRow(
		"ladder: over budget with no coverage sheds async only",
		st.Level == "shed" && asyncErr == journal.ErrShed && durableErr == nil && shedSt.Shed == 1, true,
		fmt.Sprintf("level=%s async=%v durable=%v journal_shed_total=%d — durable appends keep their contract",
			st.Level, asyncErr, durableErr, shedSt.Shed)))

	// Coverage returns: compaction reclaims the prefix and admission
	// recovers without a restart.
	j.SetCovered(j.LastSeq())
	after := j.Compact()
	asyncErr = j.AppendAsync(journal.KindOutcome, payload)
	r.Rows = append(r.Rows, expectRow(
		"ladder: compaction restores full admission",
		after.Level == "none" && after.UsageBytes <= budget && asyncErr == nil, true,
		fmt.Sprintf("level=%s usage=%d/%d async=%v shed_total=%d (counter is cumulative, shedding stopped)",
			after.Level, after.UsageBytes, budget, asyncErr, after.Shed)))
}
