package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

// E19Fleet is the sixth extension experiment: horizontal scaling of
// the verdict service. Fleets of 1, 2, and 3 replicas face the same
// seeded Zipf-skewed workload twice — once with anti-entropy disabled,
// once with digest/pull rounds run to fixpoint between the passes —
// and the experiment measures what each mechanism buys: consistent-
// hash routing concentrates each program's compute on one owner
// (forwards instead of duplicate work), and anti-entropy converts
// those forwards into local hits by diffusing the verdicts to every
// replica. All counts are deterministic for the fixed seed: the
// workload is pre-generated and runs sequentially, so the report is a
// golden artifact (BENCH_fleet.json), not a flaky benchmark.
func E19Fleet() *Report {
	r := &Report{
		ID:    "E19",
		Title: "Extension: replica fleet scaling — consistent-hash routing and anti-entropy sync",
		Claim: "any replica answers any request; routing makes one replica own each verdict, and anti-entropy makes every replica serve it locally — zero 5xx throughout",
	}

	const (
		requests = 240
		warmup   = 80
		programs = 10
		seed     = 19
	)

	for _, n := range []int{1, 2, 3} {
		for _, withAE := range []bool{false, true} {
			row, note := runE19Cell(n, withAE, requests, warmup, programs, seed)
			r.Rows = append(r.Rows, row)
			if note != "" {
				r.Notes = append(r.Notes, note)
			}
		}
	}
	return r
}

// runE19Cell measures one (fleet size, anti-entropy) cell: a warmup
// pass over the full workload, optionally anti-entropy to fixpoint,
// then a measured pass over the same workload against the warm fleet.
func runE19Cell(n int, withAE bool, requests, warmup, programs int, seed int64) (Row, string) {
	f, err := fleet.New(fleet.Config{
		Replicas:            n,
		Service:             service.Config{Workers: 2, QueueDepth: 64},
		AntiEntropyInterval: -1, // manual: the experiment drives rounds
		HeartbeatInterval:   25 * time.Millisecond,
	})
	if err != nil {
		return Row{Name: fmt.Sprintf("N=%d", n), Detail: err.Error()}, ""
	}
	defer f.Close()
	if !f.AwaitReady(10 * time.Second) {
		return Row{Name: fmt.Sprintf("N=%d", n), Detail: "fleet never became ready"}, ""
	}
	cfg := fleet.LoadgenConfig{
		Addrs:    f.HTTPAddrs(),
		Requests: requests,
		Warmup:   warmup,
		Programs: programs,
		Seed:     seed,
	}
	ctx := context.Background()
	// Pass 1 warms every owner's cache with the full workload.
	if _, err := fleet.RunLoadgen(ctx, cfg); err != nil {
		return Row{Name: fmt.Sprintf("N=%d", n), Detail: err.Error()}, ""
	}
	rounds, pulled := 0, 0
	if withAE {
		// Digest/pull to fixpoint: rounds stop pulling once every
		// replica holds every verdict.
		for {
			got := f.AntiEntropyRound()
			rounds++
			pulled += got
			if got == 0 || rounds > 20 {
				break
			}
		}
	}
	rep, err := fleet.RunLoadgen(ctx, cfg)
	if err != nil {
		return Row{Name: fmt.Sprintf("N=%d", n), Detail: err.Error()}, ""
	}

	name := fmt.Sprintf("N=%d %s", n, map[bool]string{false: "routing only", true: "with anti-entropy"}[withAE])
	detail := fmt.Sprintf("hit=%.4f forward=%.4f 5xx=%d 429=%d 504=%d",
		rep.HitRatio, rep.ForwardRatio, rep.ServerErr5x, rep.Overload429, rep.Timeout504)
	if withAE {
		detail += fmt.Sprintf(" ae_rounds=%d pulled=%d", rounds, pulled)
	}

	clean := rep.ServerErr5x == 0 && rep.Status["error"] == 0 && rep.Timeout504 == 0
	warm := rep.HitRatio == 1 // every measured request served from a cache
	var routed bool
	var note string
	if withAE {
		// Anti-entropy turns every forward into a local hit.
		routed = rep.Forwarded == 0
		if caches := cacheSpread(f); caches != "" {
			note = fmt.Sprintf("N=%d cache spread after sync: %s", n, caches)
		}
	} else if n == 1 {
		routed = rep.Forwarded == 0 // nothing to forward to
	} else {
		// Without sync, a non-owner entry must forward: the owner holds
		// the only copy of the verdict.
		routed = rep.Forwarded > 0
	}
	return Row{Name: name, Detail: detail, Pass: clean && warm && routed}, note
}

// cacheSpread renders each replica's cache size after sync — equal
// sizes are the visible trace of convergence.
func cacheSpread(f *fleet.Fleet) string {
	sizes := make([]int, 0, f.Replicas())
	for i := 0; i < f.Replicas(); i++ {
		if svc := f.Replica(i).Service(); svc != nil {
			sizes = append(sizes, len(svc.CacheKeys()))
		}
	}
	sort.Ints(sizes)
	return fmt.Sprintf("%v entries per replica", sizes)
}
