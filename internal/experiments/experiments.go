// Package experiments regenerates every result of the paper as a
// structured report: one experiment per figure, listing, lemma, and
// theorem (E1–E13, indexed in DESIGN.md) plus nine extension experiments (E14–E22). The cmd/experiments binary
// prints the reports, the repository benchmarks time them, and
// EXPERIMENTS.md records their output. Each row carries an expectation:
// a row "passes" when the mechanized outcome matches the recorded
// expectation — including the cases where the mechanized outcome is a
// documented deviation from the paper's informal claim.
package experiments

import (
	"fmt"
	"strings"
)

// Row is one checked fact within an experiment.
type Row struct {
	// Name identifies the instance, e.g. "N=3: [C1 ⪯ BTR]".
	Name string
	// Detail is the verdict reason or measured value.
	Detail string
	// Pass reports whether the outcome matches the expectation.
	Pass bool
}

// Report is one experiment's outcome.
type Report struct {
	// ID is the experiment index (E1..E16).
	ID string
	// Title summarizes the experiment.
	Title string
	// Claim restates what the paper asserts (or implies).
	Claim string
	// Rows are the checked instances.
	Rows []Row
	// Notes records findings and deviations.
	Notes []string
}

// Pass reports whether every row met its expectation.
func (r *Report) Pass() bool {
	for _, row := range r.Rows {
		if !row.Pass {
			return false
		}
	}
	return true
}

// String renders the report as text.
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "%s — %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "  claim: %s\n", r.Claim)
	for _, row := range r.Rows {
		mark := "✓"
		if !row.Pass {
			mark = "✗"
		}
		fmt.Fprintf(&b, "  %s %-40s %s\n", mark, row.Name, row.Detail)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// expectRow builds a row that passes when got == want.
func expectRow(name string, got, want bool, detail string) Row {
	return Row{Name: name, Detail: detail, Pass: got == want}
}

// All returns the experiments in order. Each function is self-contained
// and deterministic.
func All() []func() *Report {
	return []func() *Report{
		E1Fig1,
		E2Compiler,
		E3Bidding,
		E4Theorem6,
		E5Lemma7,
		E6Dijkstra4,
		E7Lemma9,
		E8Dijkstra3,
		E9NewThreeState,
		E10KState,
		E11Convergence,
		E12WrapperInterference,
		E13RefinementHierarchy,
		E14SynchronousDaemon,
		E15FairDaemon,
		E16ClusterRecovery,
		E17ChaosCampaign,
		E18CrashRecovery,
		E19Fleet,
		E20Journal,
		E21Retention,
		E22GrayFailure,
	}
}
