package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/bidding"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/vm"
)

// E2Compiler machine-checks the Section 1 compiler example.
func E2Compiler() *Report {
	r := &Report{
		ID:    "E2",
		Title: "Section 1: compilation does not preserve tolerance",
		Claim: "the source loop tolerates corruption of x; its naive compilation does not; a read-once compilation does",
	}
	src, err := vm.ParseSource("int x = 0;\nwhile (x == x) { x = 0; }")
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "parse", Detail: err.Error()})
		return r
	}
	sourceTol := core.Stabilizing(vm.SourceLoopSystem(2), vm.AlwaysZeroSpec(2), nil)
	r.Rows = append(r.Rows, expectRow("source stabilizing to (x always 0)", sourceTol.Holds, true, sourceTol.Reason))

	for _, tc := range []struct {
		strategy vm.Strategy
		want     bool
	}{
		{vm.Naive, false},
		{vm.ReadOnce, true},
	} {
		prog, _, err := vm.Compile(src, tc.strategy)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: tc.strategy.String(), Detail: err.Error()})
			continue
		}
		m := &vm.Machine{Prog: prog, MaxVal: 2, MaxStack: 2}
		md, err := vm.NewModel(m, 1, []int{0})
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: tc.strategy.String(), Detail: err.Error()})
			continue
		}
		rep, err := vm.CheckLocalFaultStabilization(md, vm.AlwaysZeroSpec(2), 0)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: tc.strategy.String(), Detail: err.Error()})
			continue
		}
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("%s compilation tolerant=%v (%d instrs)", tc.strategy, tc.want, len(prog)),
			rep.Holds, tc.want, rep.Reason))
	}
	return r
}

// E3Bidding measures the Section 1 bidding-server example.
func E3Bidding() *Report {
	r := &Report{
		ID:    "E3",
		Title: "Section 1: bidding server under single-bid corruption",
		Claim: "the spec delivers (k−1)-of-best-k under one corrupted bid; the sorted-list refinement does not; the scan-min repair does",
	}
	const k, trials, streamLen, maxBid = 4, 200, 60, 100
	for _, tc := range []struct {
		mk       func() bidding.Server
		wantFull bool
	}{
		{func() bidding.Server { return bidding.NewSpec(k) }, true},
		{func() bidding.Server { return bidding.NewScanMin(k) }, true},
		{func() bidding.Server { return bidding.NewSortedList(k) }, false},
	} {
		name := tc.mk().Name()
		stats, err := bidding.MeasureTolerance(tc.mk, trials, streamLen, maxBid, 7)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: name, Detail: err.Error()})
			continue
		}
		full := stats.Satisfied == stats.Trials
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("%s: satisfies bar in all trials=%v", name, tc.wantFull),
			full, tc.wantFull,
			fmt.Sprintf("%d/%d trials, mean overlap %.2f of %d", stats.Satisfied, stats.Trials, stats.MeanOverlap, k)))
	}
	return r
}

// E11Convergence measures steps-to-stabilization versus ring size, fault
// count, and daemon, for every derived protocol — the evaluation figures a
// systems venue would expect.
func E11Convergence() *Report {
	r := &Report{
		ID:    "E11",
		Title: "Convergence time of the derived protocols",
		Claim: "all derived protocols converge from arbitrary corruption; steps grow with ring size and fault count",
		Notes: []string{"series: mean steps over 100 seeded runs, random central daemon, faults = P"},
	}
	const runs, maxSteps = 100, 100000
	protos := func(p int) []sim.Protocol {
		return []sim.Protocol{
			sim.NewDijkstra3(p),
			sim.NewDijkstra4(p),
			sim.NewKState(p, p),
			sim.NewNewThree(p),
		}
	}
	var prevMean float64
	for _, p := range []int{4, 6, 8, 10} {
		for _, proto := range protos(p) {
			stats, err := sim.MeasureConvergence(proto,
				func(run int) sim.Daemon { return sim.NewRandomDaemon(int64(run)) },
				runs, p, maxSteps, int64(p))
			if err != nil {
				r.Rows = append(r.Rows, Row{Name: proto.Name(), Detail: err.Error()})
				continue
			}
			r.Rows = append(r.Rows, expectRow(
				fmt.Sprintf("P=%d %s", p, proto.Name()),
				stats.Converged == stats.Runs, true,
				fmt.Sprintf("mean %.1f steps, max %d, %d/%d converged", stats.MeanSteps, stats.MaxSteps, stats.Converged, stats.Runs)))
			_ = prevMean
		}
	}
	// Fault-count sweep at fixed size.
	const p = 8
	for _, faults := range []int{1, 2, 4, 8} {
		stats, err := sim.MeasureConvergence(sim.NewDijkstra3(p),
			func(run int) sim.Daemon { return sim.NewRandomDaemon(int64(run)) },
			runs, faults, maxSteps, 17)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("faults=%d", faults), Detail: err.Error()})
			continue
		}
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("P=%d dijkstra3 faults=%d", p, faults),
			stats.Converged == stats.Runs, true,
			fmt.Sprintf("mean %.1f steps", stats.MeanSteps)))
	}
	// Exact adversarial worst case from the model: outside the legitimate
	// region a stabilizing system is acyclic, so the worst-case recovery
	// is the longest path — the upper envelope of every measured curve.
	for _, n := range []int{3, 5, 7} {
		d3 := ring.NewThreeState(n).Dijkstra3()
		rep := core.SelfStabilizing(d3)
		if !rep.Holds {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("N=%d worst case", n), Detail: rep.Reason})
			continue
		}
		worst, err := mc.WorstCaseRecovery(d3, rep.Legitimate)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("N=%d worst case", n), Detail: err.Error()})
			continue
		}
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("P=%d dijkstra3 exact adversarial worst case", n+1),
			worst > 0, true,
			fmt.Sprintf("%d steps (model longest path outside the legitimate region)", worst)))
	}
	// Daemon comparison.
	for _, mk := range []struct {
		name string
		fn   func(run int) sim.Daemon
	}{
		{"random", func(run int) sim.Daemon { return sim.NewRandomDaemon(int64(run)) }},
		{"round-robin", func(run int) sim.Daemon { return sim.NewRoundRobinDaemon(p) }},
		{"greedy-adversary", func(run int) sim.Daemon { return sim.NewGreedyDaemon(sim.NewDijkstra3(p)) }},
	} {
		stats, err := sim.MeasureConvergence(sim.NewDijkstra3(p), mk.fn, runs, p, maxSteps, 23)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: mk.name, Detail: err.Error()})
			continue
		}
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("P=%d dijkstra3 daemon=%s", p, mk.name),
			stats.Converged == stats.Runs, true,
			fmt.Sprintf("mean %.1f steps, max %d", stats.MeanSteps, stats.MaxSteps)))
	}
	return r
}

// E12WrapperInterference measures the Section 5.1 non-interference
// argument on the new 3-state system: W1″-created tokens are compensated
// by W2' deletions (and endpoint absorptions), so runs converge and W1″
// activity dies out.
func E12WrapperInterference() *Report {
	r := &Report{
		ID:    "E12",
		Title: "Wrapper interference: W1'' creation vs W2' deletion",
		Claim: "between consecutive W1'' firings the system sheds tokens; W1'' cannot fire infinitely often",
	}
	const p, maxSteps = 7, 50000
	proto := sim.NewNewThree(p)

	// In the all-equal (token-free middles) configuration, W1'' is the
	// only enabled rule: token regeneration is exactly its job.
	allEqual := make(sim.Config, p)
	moves := sim.EnabledMoves(proto, allEqual)
	onlyW1 := len(moves) == 1 && moves[0].Rule == "W1''"
	r.Rows = append(r.Rows, expectRow("all-equal: only W1'' enabled", onlyW1, true,
		fmt.Sprintf("%d moves enabled", len(moves))))

	// Randomized recovery runs: count wrapper activity.
	var totalW1, totalW2 int
	for seed := int64(0); seed < 10; seed++ {
		rng := newSeededRand(seed)
		start := sim.RandomConfig(proto, rng)
		runner := &sim.Runner{
			Proto:       proto,
			Daemon:      sim.NewRandomDaemon(seed),
			MaxSteps:    maxSteps,
			RecordRules: true,
		}
		res, err := runner.Run(start)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("seed=%d", seed), Detail: err.Error()})
			continue
		}
		w1, w2 := res.RuleFires["W1''"], res.RuleFires["W2'"]
		totalW1 += w1
		totalW2 += w2
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("seed=%d: converged", seed),
			res.Converged, true,
			fmt.Sprintf("%d steps, W1''=%d, W2'=%d, max tokens %d", res.Steps, w1, w2, res.MaxTokens)))
	}
	r.Rows = append(r.Rows, expectRow("wrappers exercised across seeds",
		totalW1 >= 1 && totalW2 >= 1, true,
		fmt.Sprintf("ΣW1''=%d ΣW2'=%d", totalW1, totalW2)))
	return r
}

// newSeededRand builds a deterministic random source for experiment runs.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
