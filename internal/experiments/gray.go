package experiments

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/fleet"
	"repro/internal/service"
)

// E22GrayFailure is the ninth extension experiment: the fleet's
// failure-domain hardening under gray failures — faults that degrade a
// replica without killing it, so the heartbeat failure detector stays
// green while the data plane rots. A slow replica (injected RPC
// latency) shows what breakers and hedged forwards buy: with them, the
// routed-request p99 stays near the hedge delay because local compute
// wins the race and the latency-breach breaker stops paying the
// forward at all; without them (the pre-hardening fleet), every
// forward to the slow owner eats the full injected delay. A hostile
// replica (garbage RPC replies) must cost availability nothing: reply
// validation converts garbage into breaker-counted failures and local
// fallbacks, never a 5xx. Deadline budgets shrink across the forward
// hop, so a request that arrives with less budget than the floor is
// refused by the owner and served locally instead of wedging both
// replicas. Finally, a replica that flaps in and out of suspicion is
// quarantined with an exponential hold and must replay the clean
// quarantined → paroled → recovered sequence even when it is killed
// outright while quarantined.
func E22GrayFailure() *Report {
	r := &Report{
		ID:    "E22",
		Title: "Extension: gray-failure hardening — breakers, hedged forwards, deadline budgets, flap quarantine",
		Claim: "a slow, hostile, or flapping replica degrades tail latency and nothing else: hedges and breakers keep routed p99 near the hedge delay, garbage replies and exhausted budgets become local fallbacks (zero 5xx), and flapping peers are quarantined and paroled cleanly",
	}

	const (
		slowDelay = 200 * time.Millisecond
		requests  = 90
		warmup    = 30
		programs  = 8
		seed      = 22
	)

	hardened, hardenedRow := runE22SlowCell("slow owner, hardened", fleet.Config{
		Replicas:             3,
		Service:              service.Config{Workers: 2, QueueDepth: 64},
		AntiEntropyInterval:  -1,
		HeartbeatInterval:    25 * time.Millisecond,
		BreakerLatencyBreach: 40 * time.Millisecond,
		HedgeDelay:           15 * time.Millisecond,
	}, slowDelay, requests, warmup, programs, seed)
	legacy, legacyRow := runE22SlowCell("slow owner, legacy (no breakers, no hedging)", fleet.Config{
		Replicas:             3,
		Service:              service.Config{Workers: 2, QueueDepth: 64},
		AntiEntropyInterval:  -1,
		HeartbeatInterval:    25 * time.Millisecond,
		BreakerFailures:      -1,
		BreakerLatencyBreach: -1,
		HedgeDelay:           -1,
	}, slowDelay, requests, warmup, programs, seed)
	r.Rows = append(r.Rows, hardenedRow, legacyRow)

	if hardened != nil && legacy != nil && hardened.Latency.P99US > 0 {
		ratio := float64(legacy.Latency.P99US) / float64(hardened.Latency.P99US)
		r.Rows = append(r.Rows, Row{
			Name:   "p99 improvement ≥ 5×",
			Detail: fmt.Sprintf("legacy p99=%dµs hardened p99=%dµs ratio=%.1f×", legacy.Latency.P99US, hardened.Latency.P99US, ratio),
			Pass:   ratio >= 5,
		})
	} else {
		r.Rows = append(r.Rows, Row{Name: "p99 improvement ≥ 5×", Detail: "slow cells did not both complete"})
	}

	r.Rows = append(r.Rows, runE22GarbageRow())
	r.Rows = append(r.Rows, runE22BudgetRow())
	r.Rows = append(r.Rows, runE22QuarantineRow())
	r.Rows = append(r.Rows, runE22CampaignRow())
	return r
}

// runE22SlowCell drives one fleet with replica 1's data-plane RPCs
// slowed by delay and reports the measured routed-traffic percentiles.
// The heartbeat path is deliberately unaffected: the failure detector
// never suspects the slow replica, which is exactly what makes the
// fault gray.
func runE22SlowCell(name string, cfg fleet.Config, delay time.Duration, requests, warmup, programs int, seed int64) (*fleet.LoadgenReport, Row) {
	f, err := fleet.New(cfg)
	if err != nil {
		return nil, Row{Name: name, Detail: err.Error()}
	}
	defer f.Close()
	if !f.AwaitReady(10 * time.Second) {
		return nil, Row{Name: name, Detail: "fleet never became ready"}
	}
	f.SlowReplica(1, delay)

	rep, err := fleet.RunLoadgen(context.Background(), fleet.LoadgenConfig{
		Addrs:    f.HTTPAddrs(),
		Requests: requests,
		Warmup:   warmup,
		Programs: programs,
		Seed:     seed,
	})
	if err != nil {
		return nil, Row{Name: name, Detail: err.Error()}
	}

	opens, hedges := int64(0), int64(0)
	for i := 0; i < f.Replicas(); i++ {
		st := f.Replica(i).Status()
		opens += st.BreakerOpens
		hedges += st.HedgesFired
	}
	clean := rep.ServerErr5x == 0 && rep.Status["error"] == 0
	detail := fmt.Sprintf("p99=%dµs max=%dµs breaker_opens=%d hedges=%d 5xx=%d",
		rep.Latency.P99US, rep.Latency.MaxUS, opens, hedges, rep.ServerErr5x)
	return rep, Row{Name: name, Detail: detail, Pass: clean}
}

// runE22GarbageRow points a fleet at a hostile replica that answers
// every data-plane RPC with a malformed reply. Reply validation must
// turn each one into a breaker-counted failure and a local fallback —
// the client keeps getting 200s and the breaker opens, so the fleet
// stops asking the liar.
func runE22GarbageRow() Row {
	const name = "garbage replies → local fallback, breaker opens"
	f, err := fleet.New(fleet.Config{
		Replicas:            3,
		Service:             service.Config{Workers: 2, QueueDepth: 64},
		AntiEntropyInterval: -1,
		HeartbeatInterval:   25 * time.Millisecond,
	})
	if err != nil {
		return Row{Name: name, Detail: err.Error()}
	}
	defer f.Close()
	if !f.AwaitReady(10 * time.Second) {
		return Row{Name: name, Detail: "fleet never became ready"}
	}
	f.GarbageReplica(1, true)

	rep, err := fleet.RunLoadgen(context.Background(), fleet.LoadgenConfig{
		Addrs:    f.HTTPAddrs(),
		Requests: 90,
		Warmup:   30,
		Programs: 8,
		Seed:     23,
	})
	if err != nil {
		return Row{Name: name, Detail: err.Error()}
	}
	var opens, fallbacks int64
	for i := 0; i < f.Replicas(); i++ {
		st := f.Replica(i).Status()
		opens += st.BreakerOpens
		fallbacks += st.LocalFallbacks
	}
	clean := rep.ServerErr5x == 0 && rep.Status["error"] == 0
	return Row{
		Name:   name,
		Detail: fmt.Sprintf("5xx=%d errors=%d breaker_opens=%d local_fallbacks=%d", rep.ServerErr5x, rep.Status["error"], opens, fallbacks),
		Pass:   clean && opens > 0 && fallbacks > 0,
	}
}

// runE22BudgetRow sends routed requests whose declared deadline is
// below the owner's budget floor to both replicas of a 2-fleet. The
// non-owner entry must not wedge on the forward: the owner refuses the
// exhausted budget, the entry serves locally, and the budget counters
// record the refusal.
func runE22BudgetRow() Row {
	const name = "deadline budget below floor → refused, served locally"
	f, err := fleet.New(fleet.Config{
		Replicas:            2,
		Service:             service.Config{Workers: 2, QueueDepth: 64},
		AntiEntropyInterval: -1,
		HeartbeatInterval:   25 * time.Millisecond,
	})
	if err != nil {
		return Row{Name: name, Detail: err.Error()}
	}
	defer f.Close()
	if !f.AwaitReady(10 * time.Second) {
		return Row{Name: name, Detail: "fleet never became ready"}
	}

	// The same program posted to both replicas: exactly one entry is the
	// non-owner and must forward — with 3ms of budget, below the 5ms
	// floor the owner honors.
	body := fmt.Sprintf(`{"source": %q, "timeout_ms": 3}`, fleet.LoadgenProgram(0))
	client := &http.Client{Timeout: 5 * time.Second}
	bad := 0
	for round := 0; round < 6; round++ {
		for _, addr := range f.HTTPAddrs() {
			resp, err := client.Post("http://"+addr+"/v1/lint", "application/json", strings.NewReader(body))
			if err != nil {
				bad++
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// 504 is the honest shed for an impossible deadline; any
			// other 5xx is a drop.
			if resp.StatusCode >= 500 && resp.StatusCode != http.StatusGatewayTimeout {
				bad++
			}
		}
	}
	var exhausted, refused int64
	for i := 0; i < f.Replicas(); i++ {
		st := f.Replica(i).Status()
		exhausted += st.BudgetExhausted
		refused += st.BudgetRefused
	}
	return Row{
		Name:   name,
		Detail: fmt.Sprintf("budget_exhausted=%d budget_refused=%d drops=%d", exhausted, refused, bad),
		Pass:   bad == 0 && exhausted > 0 && refused > 0,
	}
}

// runE22QuarantineRow flaps one replica of a 2-fleet past the flap
// limit, kills it outright while quarantined, and checks that the
// observer's event stream ends with the clean quarantined → paroled →
// recovered sequence once the replica restarts after parole.
func runE22QuarantineRow() Row {
	const name = "flapping replica quarantined, paroled, recovered"
	f, err := fleet.New(fleet.Config{
		Replicas:            2,
		Service:             service.Config{Workers: 2, QueueDepth: 64},
		AntiEntropyInterval: -1,
		HeartbeatInterval:   15 * time.Millisecond,
		SuspectAfter:        2,
		FlapLimit:           2,
		QuarantineHold:      300 * time.Millisecond,
	})
	if err != nil {
		return Row{Name: name, Detail: err.Error()}
	}
	defer f.Close()
	if !f.AwaitReady(10 * time.Second) {
		return Row{Name: name, Detail: "fleet never became ready"}
	}
	flapper := f.Replica(1).ID()

	// Flap: crash until suspected, restart until recovered. The third
	// recovery inside the window exceeds FlapLimit=2 and quarantines.
	for i := 0; i < 3; i++ {
		after := lastSeq(f)
		f.CrashReplica(1)
		if !awaitEvent(f, fleet.KindReplicaSuspected, flapper, after) {
			return Row{Name: name, Detail: fmt.Sprintf("flap %d: peer never suspected", i+1)}
		}
		after = lastSeq(f)
		if err := f.RestartReplica(1); err != nil {
			return Row{Name: name, Detail: err.Error()}
		}
		if i < 2 {
			if !awaitEvent(f, fleet.KindReplicaRecovered, flapper, after) {
				return Row{Name: name, Detail: fmt.Sprintf("flap %d: peer never recovered", i+1)}
			}
		} else if !awaitEvent(f, fleet.KindQuarantined, flapper, after) {
			return Row{Name: name, Detail: "third recovery did not quarantine the flapper"}
		}
	}

	// Kill the quarantined replica outright. Nobody is pinging it, so
	// nothing changes until the hold expires and parole re-admits it to
	// suspicion — at which point the restart must earn a clean recovery.
	after := lastSeq(f)
	f.CrashReplica(1)
	if !awaitEvent(f, fleet.KindParoled, flapper, after) {
		return Row{Name: name, Detail: "quarantine hold never expired into parole"}
	}
	after = lastSeq(f)
	if err := f.RestartReplica(1); err != nil {
		return Row{Name: name, Detail: err.Error()}
	}
	if !awaitEvent(f, fleet.KindReplicaRecovered, flapper, after) {
		return Row{Name: name, Detail: "paroled replica never recovered after restart"}
	}

	// The filtered story must end quarantined → paroled → recovered.
	var tail []string
	for _, e := range f.Events() {
		if e.Replica != flapper {
			continue
		}
		switch e.Kind {
		case fleet.KindQuarantined, fleet.KindParoled, fleet.KindReplicaRecovered:
			tail = append(tail, e.Kind)
		}
	}
	want := []string{fleet.KindQuarantined, fleet.KindParoled, fleet.KindReplicaRecovered}
	ok := len(tail) >= len(want)
	if ok {
		for i, k := range want {
			if tail[len(tail)-len(want)+i] != k {
				ok = false
			}
		}
	}
	return Row{Name: name, Detail: fmt.Sprintf("event tail %v", tail), Pass: ok}
}

// runE22CampaignRow runs a seeded chaos campaign drawn entirely from
// the gray fault kinds and requires the fleet to re-converge after the
// final heal.
func runE22CampaignRow() Row {
	const name = "gray-kind chaos campaign re-converges"
	f, err := fleet.New(fleet.Config{
		Replicas:            3,
		Service:             service.Config{Workers: 2, QueueDepth: 64},
		AntiEntropyInterval: -1,
		HeartbeatInterval:   25 * time.Millisecond,
	})
	if err != nil {
		return Row{Name: name, Detail: err.Error()}
	}
	defer f.Close()
	if !f.AwaitReady(10 * time.Second) {
		return Row{Name: name, Detail: "fleet never became ready"}
	}
	tpl := chaos.Template{
		Kinds:       []cluster.FaultKind{cluster.FaultSlowPeer, cluster.FaultAsymPartition, cluster.FaultGarbageReply},
		Faults:      3,
		Gap:         3,
		Start:       1,
		CutDuration: 2,
		SlowDelayMS: 50,
	}
	sched, err := tpl.FleetSchedule(3, 22)
	if err != nil {
		return Row{Name: name, Detail: err.Error()}
	}
	res, err := f.RunCampaign(context.Background(), sched, 50*time.Millisecond)
	if err != nil {
		return Row{Name: name, Detail: err.Error()}
	}
	return Row{
		Name:   name,
		Detail: fmt.Sprintf("faults=%v converged=%v", res.Faults, res.Converged),
		Pass:   res.Converged,
	}
}

// lastSeq returns the newest event sequence number (0 when empty).
func lastSeq(f *fleet.Fleet) int {
	evs := f.Events()
	if len(evs) == 0 {
		return 0
	}
	return evs[len(evs)-1].Seq
}

// awaitEvent polls the fleet's event stream until an event of kind
// about replica appears with Seq > after, or five seconds pass.
func awaitEvent(f *fleet.Fleet, kind, replica string, after int) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, e := range f.Events() {
			if e.Seq > after && e.Kind == kind && e.Replica == replica {
				return true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
