package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/cluster/store"
	"repro/internal/sim"
)

// E18CrashRecovery is the fifth extension experiment: process crashes
// with durable state. A 6-process Dijkstra-3 ring faces campaigns of
// crash and corruption faults while each node persists its register to
// a checksummed snapshot store; a supervisor restarts crashed nodes
// after backoff, restoring the snapshot when it validates and resuming
// from an arbitrary register when it does not. The experiment measures
// what durability buys: crash-recovery time as the snapshot interval
// stretches (staler snapshots), against the two bracketing baselines —
// no store at all (every restart is an arbitrary resume) and a hostile
// disk that corrupts every other snapshot write.
func E18CrashRecovery() *Report {
	r := &Report{
		ID:    "E18",
		Title: "Extension: crash recovery from validated snapshots vs arbitrary resume",
		Claim: "a crashed node recovers whether its snapshot is fresh, stale, corrupted, or absent — the store only shifts where recovery restarts from, never whether the ring re-stabilizes",
	}
	p := sim.NewDijkstra3(6)
	base := chaos.Options{
		Proto:    p,
		Seed:     18,
		Episodes: 10,
		MaxSteps: 8000,
		Template: chaos.Template{
			Kinds:  []cluster.FaultKind{cluster.FaultCrash, cluster.FaultCorrupt},
			Faults: 5,
			Gap:    120,
			Start:  30,
		},
	}

	run := func(name string, opts chaos.Options) *chaos.Report {
		rep, err := chaos.Run(context.Background(), opts)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: name, Detail: err.Error()})
			return nil
		}
		detail := fmt.Sprintf("recovered %d/%d episodes; MTTR p50=%d p90=%d max=%d",
			rep.Passed, rep.Episodes, rep.MTTR.P50, rep.MTTR.P90, rep.MTTR.Max)
		if ks, ok := rep.Kinds["crash"]; ok {
			detail += fmt.Sprintf("; crash recoveries: %d, mean %.1f steps, worst %d",
				ks.Recoveries, ks.MeanSteps, ks.WorstSteps)
		}
		var st store.Stats
		for _, ep := range rep.EpisodeResults {
			if ep.Storage != nil {
				st.Restored += ep.Storage.Restored
				st.CorruptLoads += ep.Storage.CorruptLoads
				st.StaleLoads += ep.Storage.StaleLoads
				st.MissingLoads += ep.Storage.MissingLoads
			}
		}
		if loads := st.Restored + st.CorruptLoads + st.StaleLoads + st.MissingLoads; loads > 0 {
			detail += fmt.Sprintf("; restarts: %d from snapshot, %d arbitrary (%d corrupt, %d stale, %d missing)",
				st.Restored, st.CorruptLoads+st.StaleLoads+st.MissingLoads,
				st.CorruptLoads, st.StaleLoads, st.MissingLoads)
		}
		r.Rows = append(r.Rows, expectRow(name, rep.Pass, true, detail))
		return rep
	}

	// Axis 1: snapshot interval. Every step, every 8, every 32 — the
	// snapshot a restart sees grows staler as the interval stretches.
	var curve []string
	for _, every := range []int{1, 8, 32} {
		opts := base
		opts.Persist = true
		opts.PersistEvery = every
		if rep := run(fmt.Sprintf("snapshot every %d steps", every), opts); rep != nil {
			if ks, ok := rep.Kinds["crash"]; ok {
				curve = append(curve, fmt.Sprintf("%d→mean=%.1f", every, ks.MeanSteps))
			}
		}
	}

	// Baseline: no store. Every restart resumes from an arbitrary
	// register — the pure Theorem 1 regime.
	noStore := run("no store (every restart arbitrary)", base)

	// Hostile disk: every 2nd snapshot write is torn, bit-flipped,
	// rolled back, or dropped. Validation turns each damaged snapshot
	// into an arbitrary resume instead of a poisoned restore.
	hostile := base
	hostile.Persist = true
	hostile.PersistEvery = 1
	hostile.StorageFaultEvery = 2
	run("hostile disk (storage fault every 2nd write)", hostile)

	r.Notes = append(r.Notes,
		"recovery-time curve (snapshot interval → mean crash-recovery steps): "+strings.Join(curve, ", "),
		"finding: the snapshot store is an optimization, not a correctness mechanism — every configuration re-stabilizes, and crash-recovery time is dominated by the supervisor's restart backoff plus re-stabilization from wherever the node resumes; a validated snapshot shortens the second term, a stale or corrupt one merely falls back to the arbitrary-resume cost",
		"this is the paper's claim operationalized: because Theorem 1 makes arbitrary state recoverable, snapshot validation can afford to be ruthless — anything questionable is discarded wholesale rather than repaired",
	)
	if noStore != nil && noStore.Pass {
		r.Notes = append(r.Notes,
			"deterministic: campaigns run on the stepped transport, so this report reproduces byte-for-byte for the fixed seed")
	}
	return r
}
