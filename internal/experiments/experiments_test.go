package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs the full E1–E13 suite: every row must match
// its recorded expectation (including the documented deviations).
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	for _, fn := range All() {
		rep := fn()
		if !rep.Pass() {
			t.Errorf("%s failed:\n%s", rep.ID, rep)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := E1Fig1()
	s := rep.String()
	for _, want := range []string{"E1", "PASS", "claim:", "✓"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report rendering missing %q:\n%s", want, s)
		}
	}
}

func TestExperimentIDsUniqueAndOrdered(t *testing.T) {
	seen := make(map[string]bool)
	for i, fn := range All() {
		rep := fn()
		if seen[rep.ID] {
			t.Fatalf("duplicate experiment ID %s", rep.ID)
		}
		seen[rep.ID] = true
		if rep.Title == "" || rep.Claim == "" || len(rep.Rows) == 0 {
			t.Fatalf("experiment %d (%s) under-specified", i, rep.ID)
		}
		if testing.Short() && i >= 3 {
			break
		}
	}
}

func TestFailingRowRendering(t *testing.T) {
	rep := &Report{ID: "EX", Title: "t", Claim: "c",
		Rows: []Row{{Name: "r", Detail: "d", Pass: false}}}
	if rep.Pass() {
		t.Fatal("Pass with failing row")
	}
	if !strings.Contains(rep.String(), "FAIL") || !strings.Contains(rep.String(), "✗") {
		t.Fatalf("rendering = %q", rep.String())
	}
}
