package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/sim"
)

// E17ChaosCampaign is the fourth extension experiment: sustained fault
// pressure instead of E16's one-shot corruption. A 6-process Dijkstra-3
// ring faces seeded chaos campaigns whose schedules keep injecting
// faults — corruptions, restarts, and network partitions with timed
// heals — at decreasing inter-fault gaps, and the campaign engine
// judges every episode against a recovery SLO. Where E16 measures one
// recovery per episode, E17 measures the recovery-time distribution
// (MTTR percentiles, per-fault-kind attribution, worst case) when the
// next fault can land on a still-recovering ring.
func E17ChaosCampaign() *Report {
	r := &Report{
		ID:    "E17",
		Title: "Extension: recovery under sustained fault pressure and partitions (chaos campaigns)",
		Claim: "the derived ring re-stabilizes from every episode of a seeded fault campaign — including network partitions — and recovery time stays bounded as fault pressure rises",
	}
	p := sim.NewDijkstra3(6)
	base := chaos.Options{
		Proto:    p,
		Seed:     17,
		Episodes: 10,
		MaxSteps: 8000,
		Template: chaos.Template{
			Kinds:       []cluster.FaultKind{cluster.FaultCorrupt, cluster.FaultRestart, cluster.FaultPartition},
			Faults:      5,
			Start:       30,
			CutDuration: 40,
		},
	}
	// Sweep the inter-fault gap: 80 steps (pressure comparable to E16's
	// one-shot), then 40 and 20 — faults landing before the previous
	// recovery completes.
	var curve []string
	for _, gap := range []int{80, 40, 20} {
		opts := base
		opts.Template.Gap = gap
		rep, err := chaos.Run(context.Background(), opts)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("gap=%d", gap), Detail: err.Error()})
			continue
		}
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("gap=%d: %d episodes × %d faults (corrupt+restart+partition)", gap, rep.Episodes, opts.Template.Faults),
			rep.Pass, true,
			fmt.Sprintf("recovered %d/%d episodes; MTTR p50=%d p90=%d max=%d over %d recoveries",
				rep.Passed, rep.Episodes, rep.MTTR.P50, rep.MTTR.P90, rep.MTTR.Max, rep.MTTR.N)))
		curve = append(curve, fmt.Sprintf("%d→p90=%d", gap, rep.MTTR.P90))
		if gap == 20 {
			var kinds []string
			for _, k := range []string{"corrupt", "restart", "partition", "heal"} {
				if ks, ok := rep.Kinds[k]; ok {
					kinds = append(kinds, fmt.Sprintf("%s: %d recoveries, mean %.1f, worst %d",
						k, ks.Recoveries, ks.MeanSteps, ks.WorstSteps))
				}
			}
			r.Notes = append(r.Notes, "per-kind at gap=20 — "+strings.Join(kinds, "; "))
			if rep.Worst != nil {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"worst single recovery at gap=20: %d steps after %s (episode %d, seed %d)",
					rep.Worst.Steps, rep.Worst.Kind, rep.Worst.Index, rep.Worst.Seed))
			}
		}
	}
	r.Notes = append(r.Notes,
		"pressure curve (gap → p90 steps to re-stabilize): "+strings.Join(curve, ", "),
		"finding: unlike E16's one-shot curve (flat in fault count), the chaos tail is dominated by partitions, not density — per-kind attribution shows partition-gated recoveries several times slower than corruptions, because a corruption behind an open cut cannot finish propagating until the cut heals and the anti-entropy round repairs neighbor views; p90 therefore tracks where partitions land relative to their heal, not the gap itself",
		"every episode at every gap still re-stabilizes: the paper's convergence property is closed under fault composition, provided faults eventually pause long enough for the race to be won",
		"deterministic: campaigns run on the stepped transport, so this report reproduces byte-for-byte for the fixed seed")
	return r
}
