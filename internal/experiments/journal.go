package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/journal"
)

// slowBackend models an fsync-priced disk: every Append pays a fixed
// latency before the bytes land in memory. The group-commit writer's
// whole value proposition is amortizing exactly this cost across a
// batch, so the throughput comparison runs on this backend — a free
// in-memory Append would hide the effect being measured.
type slowBackend struct {
	mem   journal.MemBackend
	delay time.Duration
	mu    sync.Mutex
	syncs int
}

func (s *slowBackend) ReadAll() ([]byte, error) { return s.mem.ReadAll() }

func (s *slowBackend) Append(b []byte) error {
	time.Sleep(s.delay)
	s.mu.Lock()
	s.syncs++
	s.mu.Unlock()
	return s.mem.Append(b)
}

func (s *slowBackend) Syncs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// countProjection is the minimal derived view: events seen per kind.
// Apply is trivially idempotent per sequence number because the engine
// delivers each sequence at most once above the checkpoint.
type countProjection struct {
	mu     sync.Mutex
	seq    uint64
	byKind map[string]int
}

func newCountProjection() *countProjection {
	return &countProjection{byKind: make(map[string]int)}
}

func (c *countProjection) Name() string { return "count" }

func (c *countProjection) Apply(ev journal.Event) {
	c.mu.Lock()
	c.byKind[ev.Kind]++
	c.seq = ev.Seq
	c.mu.Unlock()
}

func (c *countProjection) Seq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

func (c *countProjection) count(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKind[kind]
}

// E20Journal is the seventh extension experiment: the event-sourced
// request journal. Three properties are checked. Replay: a journal
// closed and reopened on its own bytes reconstructs the identical
// event history, and a projection registered on the reopened journal
// converges to the same per-kind counts. Damage tolerance: a hard kill
// mid-write leaves a torn tail; replay resynchronizes past it and
// keeps the intact prefix, never failing open. Throughput: on a
// backend that charges a fixed fsync-equivalent latency per Append,
// the batched group-commit writer with 32 concurrent appenders beats
// one-flush-per-record sequential appends by ≥ 5× — the amortization
// the design exists to buy.
func E20Journal() *Report {
	r := &Report{
		ID:    "E20",
		Title: "Extension: event-sourced journal — replay equivalence, torn-tail resync, group-commit throughput",
		Claim: "crash recovery is replay: the journal's surviving prefix determines the state, projections converge to it, and group commit makes durable appends cheap under concurrency",
	}

	replayRows(r)
	tornTailRow(r)
	throughputRows(r)
	return r
}

// replayRows appends a mixed-kind history, reopens the journal on the
// same backend, and checks the history and a projection's view survive
// the round trip.
func replayRows(r *Report) {
	const n = 64
	mem := journal.NewMemBackend(nil)
	j, err := journal.Open(mem, journal.Options{MaxBatch: 8})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "replay: open", Detail: err.Error()})
		return
	}
	kinds := []string{journal.KindRequest, journal.KindVerdict, journal.KindOutcome, journal.KindCampaign}
	for i := 0; i < n; i++ {
		data := []byte(fmt.Sprintf(`{"i":%d}`, i))
		if _, err := j.Append(kinds[i%len(kinds)], data); err != nil {
			r.Rows = append(r.Rows, Row{Name: "replay: append", Detail: err.Error()})
			return
		}
	}
	j.Close()

	re, err := journal.Open(journal.NewMemBackend(mustBytes(mem)), journal.Options{})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "replay: reopen", Detail: err.Error()})
		return
	}
	defer re.Close()
	st := re.ReplayStats()
	r.Rows = append(r.Rows, expectRow(
		fmt.Sprintf("replay: %d events round-trip", n),
		re.LastSeq() == n && st.Events == n && st.Corrupt == 0 && st.Stale == 0, true,
		fmt.Sprintf("last_seq=%d events=%d corrupt=%d stale=%d bytes=%d",
			re.LastSeq(), st.Events, st.Corrupt, st.Stale, st.Bytes)))

	// A projection registered on the reopened journal replays the full
	// history and converges to the counts the original traffic implies.
	eng := journal.NewEngine(re, 0)
	proj := newCountProjection()
	eng.Register(proj)
	caught := eng.WaitCaughtUp(5 * time.Second)
	eng.Close()
	want := n / len(kinds)
	allMatch := caught
	for _, k := range kinds {
		if proj.count(k) != want {
			allMatch = false
		}
	}
	r.Rows = append(r.Rows, expectRow(
		"replay: projection convergence",
		allMatch, true,
		fmt.Sprintf("caught_up=%v per-kind=%d/%d/%d/%d want %d each", caught,
			proj.count(kinds[0]), proj.count(kinds[1]), proj.count(kinds[2]), proj.count(kinds[3]), want)))
}

// tornTailRow hard-kills the backend mid-write (the third flush
// persists only half its bytes, later flushes fail) and checks the
// reopened journal keeps exactly the intact prefix.
func tornTailRow(r *Report) {
	tb := journal.NewTornBackend(3, 2)
	j, err := journal.Open(tb, journal.Options{MaxBatch: 1})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "torn tail: open", Detail: err.Error()})
		return
	}
	acked := 0
	for i := 0; i < 6; i++ {
		if _, err := j.Append(journal.KindVerdict, []byte(`{"v":true}`)); err == nil {
			acked++
		}
	}
	j.Close()

	re, err := journal.Open(journal.NewMemBackend(tb.Bytes()), journal.Options{})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "torn tail: reopen", Detail: err.Error()})
		return
	}
	defer re.Close()
	st := re.ReplayStats()
	// Appends 1 and 2 flushed intact; the torn third acked but left only
	// half a record, and everything after died with the backend. Replay
	// must keep the two intact events and classify the tail as damage.
	r.Rows = append(r.Rows, expectRow(
		"torn tail: resync keeps intact prefix",
		st.Events == 2 && re.LastSeq() == 2 && st.Corrupt >= 1, true,
		fmt.Sprintf("acked=%d survived=%d corrupt=%d resyncs=%d (torn flush acked then lost — the bounded group-commit lie)",
			acked, st.Events, st.Corrupt, st.Resyncs)))
}

// throughputRows runs the same event volume through two write regimes
// on the same fsync-priced backend and compares throughput.
func throughputRows(r *Report) {
	const (
		syncCost  = time.Millisecond
		appenders = 32
		perWorker = 8
		total     = appenders * perWorker
	)
	payload := []byte(`{"runs":2,"converged":2,"mean_steps":17.5}`)

	// Regime 1: unbatched, concurrency 1 — every Append is its own group
	// commit, so every record pays the full sync latency.
	seq := &slowBackend{delay: syncCost}
	js, err := journal.Open(seq, journal.Options{MaxBatch: 1})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "throughput: open", Detail: err.Error()})
		return
	}
	start := time.Now()
	for i := 0; i < total; i++ {
		if _, err := js.Append(journal.KindVerdict, payload); err != nil {
			r.Rows = append(r.Rows, Row{Name: "throughput: unbatched append", Detail: err.Error()})
			return
		}
	}
	js.Close()
	seqElapsed := time.Since(start)
	seqRate := float64(total) / seqElapsed.Seconds()
	r.Rows = append(r.Rows, expectRow(
		"throughput: unbatched concurrency-1",
		seq.Syncs() == total, true,
		fmt.Sprintf("%d events, %d syncs, %.0f events/s", total, seq.Syncs(), seqRate)))

	// Regime 2: 32 concurrent appenders, group commit up to 32 — while
	// one flush sleeps, the queue refills, so the next commit carries a
	// whole batch and the sync cost is shared.
	par := &slowBackend{delay: syncCost}
	jb, err := journal.Open(par, journal.Options{MaxBatch: appenders})
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "throughput: open batched", Detail: err.Error()})
		return
	}
	start = time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, appenders)
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		//gcvet:leak-ok each appender runs a finite perWorker loop (or bails on append error); wg.Wait below joins them
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := jb.Append(journal.KindVerdict, payload); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	jb.Close()
	batElapsed := time.Since(start)
	select {
	case err := <-errc:
		r.Rows = append(r.Rows, Row{Name: "throughput: batched append", Detail: err.Error()})
		return
	default:
	}
	batRate := float64(total) / batElapsed.Seconds()
	p50, p99 := jb.BatchPercentiles()
	r.Rows = append(r.Rows, expectRow(
		fmt.Sprintf("throughput: batched %d appenders", appenders),
		par.Syncs() < total, true,
		fmt.Sprintf("%d events, %d syncs, %.0f events/s, batch p50=%.0f p99=%.0f",
			total, par.Syncs(), batRate, p50, p99)))

	ratio := batRate / seqRate
	r.Rows = append(r.Rows, expectRow(
		"group-commit speedup ≥ 5×",
		ratio >= 5, true,
		fmt.Sprintf("%.1f× (%.0f vs %.0f events/s; %d vs %d syncs for %d events)",
			ratio, batRate, seqRate, par.Syncs(), seq.Syncs(), total)))
	r.Notes = append(r.Notes,
		fmt.Sprintf("sync cost modeled at %s per backend Append; the speedup is the sync-count ratio made wall-clock-visible — group commit turned %d syncs into %d",
			syncCost, seq.Syncs(), par.Syncs()),
		"replay rows are deterministic; throughput rows are wall-clock measurements, so the recorded ratio varies run to run while the ≥ 5× bound holds with wide margin",
	)
}

// mustBytes snapshots a MemBackend's contents; its ReadAll cannot fail.
func mustBytes(m *journal.MemBackend) []byte {
	b, _ := m.ReadAll()
	return b
}
