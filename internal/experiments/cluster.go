package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// E16ClusterRecovery is the third extension experiment: the paper's
// convergence property exercised in the message-passing cluster runtime
// rather than the shared-memory simulator. A legitimate 6-process
// Dijkstra-3 ring runs as one actor per process over the deterministic
// in-proc transport; at step 50 the fault injector corrupts f registers
// simultaneously, and the online monitor measures the steps from the
// fault to re-stabilization. The result is a fault-recovery curve:
// recovery time as a function of the number of injected faults.
func E16ClusterRecovery() *Report {
	r := &Report{
		ID:    "E16",
		Title: "Extension: fault-recovery curve in the message-passing cluster runtime",
		Claim: "the derived ring re-stabilizes after simultaneous register corruptions even when processes communicate only by messages",
	}
	p := sim.NewDijkstra3(6)
	legit, err := sim.LegitimateConfig(p)
	if err != nil {
		r.Rows = append(r.Rows, Row{Name: "legitimate start", Detail: err.Error()})
		return r
	}
	// For each fault count f, 10 seeded episodes: f registers corrupted
	// simultaneously at step 50 to seeded-random in-domain values
	// (Val: -1). An episode whose corruption happens to land back inside
	// the legitimate region recovers in 0 steps — that is the fault
	// model behaving as specified, not a failure.
	const (
		faultStep = 50
		episodes  = 10
	)
	var curve []string
	for f := 1; f <= 4; f++ {
		total, worst, converged := 0, 0, 0
		for seed := int64(1); seed <= episodes; seed++ {
			var sched []cluster.Fault
			for i := 0; i < f; i++ {
				sched = append(sched, cluster.Fault{
					Kind: cluster.FaultCorrupt, Step: faultStep, Node: i,
					Val: -1, From: -1, To: -1, Count: 1,
				})
			}
			res, err := cluster.Run(context.Background(), cluster.Options{
				Proto:          p,
				Seed:           seed,
				MaxSteps:       5000,
				Schedule:       sched,
				StopWhenStable: true,
			}, legit)
			if err != nil {
				r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("f=%d seed=%d", f, seed), Detail: err.Error()})
				continue
			}
			if res.Converged {
				converged++
			}
			for _, st := range res.Stabilizations {
				if st.BrokenAt >= faultStep {
					total += st.Steps
					if st.Steps > worst {
						worst = st.Steps
					}
				}
			}
		}
		mean := float64(total) / episodes
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("f=%d: corrupt %d registers at step %d", f, f, faultStep),
			converged == episodes, true,
			fmt.Sprintf("recovered %d/%d episodes; mean %.1f steps to re-stabilize, worst %d", converged, episodes, mean, worst)))
		curve = append(curve, fmt.Sprintf("%d→%.1f", f, mean))
	}
	r.Notes = append(r.Notes,
		"recovery curve (faults → mean steps to re-stabilize): "+strings.Join(curve, ", "),
		"finding: unlike the shared-memory curve of E11 (steps grow with fault count), message-passing recovery time is roughly flat in f — re-propagating consistent neighbor views around the ring dominates, not the number of corrupted registers",
		"deterministic: the stepped engine makes each episode a pure function of (protocol, start, seed, schedule)")
	return r
}
