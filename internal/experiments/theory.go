package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/system"
)

// E1Fig1 machine-checks the Figure 1 counterexample: refinement with
// respect to initial states does not preserve stabilization.
func E1Fig1() *Report {
	r := &Report{
		ID:    "E1",
		Title: "Figure 1: plain refinement is not stabilization preserving",
		Claim: "[C ⊑ A]_init holds and A is stabilizing to A, yet C is not stabilizing to A",
	}
	for _, k := range []int{4, 6, 10} {
		a, c := core.Fig1(k)
		init := core.RefinementInit(c, a, nil)
		selfStab := core.SelfStabilizing(a)
		notStab := core.Stabilizing(c, a, nil)
		name := fmt.Sprintf("k=%d", k)
		r.Rows = append(r.Rows,
			expectRow(name+": [C ⊑ A]_init", init.Holds, true, init.Reason),
			expectRow(name+": A stabilizing to A", selfStab.Holds, true, selfStab.Reason),
			expectRow(name+": C NOT stabilizing to A", notStab.Holds, false, notStab.Reason),
		)
	}
	return r
}

// E4Theorem6 checks (BTR [] W1) <] W2 stabilizing to BTR, and documents
// that the plain union fails (the token-crossing schedule).
func E4Theorem6() *Report {
	r := &Report{
		ID:    "E4",
		Title: "Theorem 6: BTR [] W1 [] W2 is stabilizing to BTR",
		Claim: "the wrappers of Section 3.2 stabilize the abstract bidirectional ring",
		Notes: []string{
			"W2 must preempt the ring's moves (PriorityBox); under the plain union a daemon moves opposing tokens through each other forever — the checker exhibits the crossing loop.",
		},
	}
	for _, n := range []int{2, 3, 4, 5} {
		b := ring.NewBTR(n)
		btr := b.System()
		rep := core.Stabilizing(b.Wrapped(), btr, nil)
		r.Rows = append(r.Rows, expectRow(fmt.Sprintf("N=%d: wrapped stabilizing", n), rep.Holds, true, rep.Reason))
	}
	b := ring.NewBTR(3)
	plain := core.Stabilizing(b.WrappedPlain(), b.System(), nil)
	r.Rows = append(r.Rows, expectRow("N=3: plain union NOT stabilizing", plain.Holds, false, plain.Reason))
	return r
}

// E5Lemma7 checks [C1 ⪯ BTR] through the 4-state mapping, plus the
// exactness of BTR4 itself.
func E5Lemma7() *Report {
	r := &Report{
		ID:    "E5",
		Title: "Lemma 7: [C1 ⪯ BTR] via the 4-state mapping",
		Claim: "C1's computations are convergence isomorphisms of BTR's; compressions only drop tokens",
	}
	for _, n := range []int{2, 3, 4} {
		b := ring.NewBTR(n)
		f := ring.NewFourState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("N=%d", n), Detail: err.Error()})
			continue
		}
		btr4 := core.ConvergenceRefinement(f.BTR4(), b.System(), ab)
		c1 := core.ConvergenceRefinement(f.C1(), b.System(), ab)
		r.Rows = append(r.Rows,
			expectRow(fmt.Sprintf("N=%d: [BTR4 ⪯ BTR]", n), btr4.Holds, true, btr4.Reason),
			expectRow(fmt.Sprintf("N=%d: [C1 ⪯ BTR]", n), c1.Holds, true,
				fmt.Sprintf("%s; %d compressions", c1.Reason, len(c1.Compressions))),
		)
	}
	return r
}

// E6Dijkstra4 checks Theorem 8 and the 4-state optimization.
func E6Dijkstra4() *Report {
	r := &Report{
		ID:    "E6",
		Title: "Theorem 8 + Dijkstra's 4-state system",
		Claim: "C1 [] W1' [] W2' (= C1, the wrappers being vacuous) and the guard-relaxed Dijkstra-4 are stabilizing to BTR",
		Notes: []string{
			"Finding: the guard relaxation is NOT itself a convergence refinement of BTR for N ≥ 3 (a relaxed move can create a token); its stabilization is established directly, outside the refinement framework.",
		},
	}
	for _, n := range []int{2, 3, 4} {
		b := ring.NewBTR(n)
		f := ring.NewFourState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("N=%d", n), Detail: err.Error()})
			continue
		}
		w1 := f.W1Prime()
		vacuous := true
		for s := 0; s < w1.NumStates(); s++ {
			for _, t := range w1.Succ(s) {
				if t != s {
					vacuous = false
				}
			}
		}
		c1 := core.Stabilizing(f.C1(), b.System(), ab)
		d4 := core.Stabilizing(f.Dijkstra4(), b.System(), ab)
		r.Rows = append(r.Rows,
			expectRow(fmt.Sprintf("N=%d: W1' vacuous, W2' empty", n),
				vacuous && f.W2Prime().NumTransitions() == 0, true,
				fmt.Sprintf("W1' self-loops only: %v; W2' transitions: %d", vacuous, f.W2Prime().NumTransitions())),
			expectRow(fmt.Sprintf("N=%d: C1 stabilizing to BTR", n), c1.Holds, true, c1.Reason),
			expectRow(fmt.Sprintf("N=%d: Dijkstra4 stabilizing to BTR", n), d4.Holds, true, d4.Reason),
		)
	}
	b := ring.NewBTR(3)
	f := ring.NewFourState(3)
	ab, _ := f.Abstraction(b)
	rel := core.ConvergenceRefinement(f.Dijkstra4(), b.System(), ab)
	r.Rows = append(r.Rows, expectRow("N=3: [D4 ⪯ BTR] fails (finding)", rel.Holds, false, rel.Reason))
	return r
}

// E7Lemma9 checks (BTR3 [] W1″) <] W2' stabilizing to BTR and the
// boundary at N = 4.
func E7Lemma9() *Report {
	r := &Report{
		ID:    "E7",
		Title: "Lemma 9: BTR3 [] W1'' [] W2' is stabilizing to BTR",
		Claim: "the local wrapper W1'' and deletion wrapper W2' stabilize the abstract 3-state ring",
		Notes: []string{
			"Finding: under a fully adversarial daemon the composition fails at N = 4 (a staircase of same-direction tokens circulates forever, starving a continuously enabled action); Dijkstra's merged top guard rules the schedule out. Under weak fairness the lemma holds at every tested N — the paper's claim is correct for any non-starving daemon.",
		},
	}
	for _, n := range []int{2, 3} {
		b := ring.NewBTR(n)
		f := ring.NewThreeState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("N=%d", n), Detail: err.Error()})
			continue
		}
		rep := core.Stabilizing(f.Lemma9System(), b.System(), ab)
		r.Rows = append(r.Rows,
			expectRow(fmt.Sprintf("N=%d: Lemma 9", n), rep.Holds, true, rep.Reason))
		if n >= 3 {
			// At N = 2 the local and global guards coincide; the
			// separation needs a middle counter to differ.
			notEvery := core.EverywhereRefinement(f.W1DoublePrime(), f.W1PrimeGlobal(), nil)
			r.Rows = append(r.Rows,
				expectRow(fmt.Sprintf("N=%d: W1'' not an everywhere refinement of W1'", n), notEvery.Holds, false, notEvery.Reason))
		}
	}
	b := ring.NewBTR(4)
	f := ring.NewThreeState(4)
	ab, _ := f.Abstraction(b)
	rep := core.Stabilizing(f.Lemma9System(), b.System(), ab)
	r.Rows = append(r.Rows, expectRow("N=4: unfair boundary (fails, finding)", rep.Holds, false, rep.Reason))
	for _, n := range []int{4, 5} {
		bn := ring.NewBTR(n)
		fn := ring.NewThreeState(n)
		abn, err := fn.Abstraction(bn)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("N=%d fair", n), Detail: err.Error()})
			continue
		}
		fair := core.FairStabilizing(fn.Lemma9Labeled(), bn.System(), abn)
		r.Rows = append(r.Rows, expectRow(fmt.Sprintf("N=%d: holds under weak fairness", n), fair.Holds, true, fair.Reason))
	}
	return r
}

// E8Dijkstra3 checks Lemma 10 (with its N ≥ 3 boundary) and Theorem 11.
func E8Dijkstra3() *Report {
	r := &Report{
		ID:    "E8",
		Title: "Lemma 10, Theorem 11: Dijkstra's 3-state system",
		Claim: "[C2[]W1''[]W2' ⪯ BTR3[]W1''[]W2'] and the composed system is stabilizing to BTR",
		Notes: []string{
			"Finding: Lemma 10 verifies at N = 2 but fails for N ≥ 3 (a C2 move deletes one token and redirects another in a single step, with no abstract cover). Theorem 11's conclusion is established directly at every N.",
		},
	}
	f2 := ring.NewThreeState(2)
	l10 := core.ConvergenceRefinement(f2.ComposedC2(), f2.Lemma9System(), nil)
	r.Rows = append(r.Rows, expectRow("N=2: Lemma 10", l10.Holds, true,
		fmt.Sprintf("%s; %d compressions", l10.Reason, len(l10.Compressions))))
	f3 := ring.NewThreeState(3)
	l10b := core.ConvergenceRefinement(f3.ComposedC2(), f3.Lemma9System(), nil)
	r.Rows = append(r.Rows, expectRow("N=3: Lemma 10 fails (finding)", l10b.Holds, false, l10b.Reason))

	for _, n := range []int{2, 3, 4, 5} {
		b := ring.NewBTR(n)
		f := ring.NewThreeState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("N=%d", n), Detail: err.Error()})
			continue
		}
		d3 := core.Stabilizing(f.Dijkstra3(), b.System(), ab)
		r.Rows = append(r.Rows, expectRow(fmt.Sprintf("N=%d: Dijkstra3 stabilizing to BTR", n), d3.Holds, true, d3.Reason))
	}
	return r
}

// E9NewThreeState checks Section 6: Lemma 12's collision-state finding,
// Theorem 13, and the aggressive-W2' equality with Dijkstra-3.
func E9NewThreeState() *Report {
	r := &Report{
		ID:    "E9",
		Title: "Section 6: the new 3-state system C3",
		Claim: "C3 stutters instead of compressing (Lemma 12); C3 [] W1'' [] W2' is stabilizing to BTR (Theorem 13); the aggressive-W2' variant equals Dijkstra's 3-state system",
		Notes: []string{
			"Finding: Lemma 12 as stated fails — at an opposing-token collision state C3's move relocates both tokens at once, a compression lying on a cycle. Away from collisions the τ-step claim is exact, and Theorem 13 holds (the deletion wrapper resolves collisions first).",
		},
	}
	for _, n := range []int{2, 3, 4} {
		b := ring.NewBTR(n)
		f := ring.NewThreeState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("N=%d", n), Detail: err.Error()})
			continue
		}
		l12 := core.ConvergenceRefinement(f.C3().StripSelfLoops(), b.System(), ab)
		t13 := core.Stabilizing(f.NewThree(), b.System(), ab)
		agg := system.TransitionsEqual(f.AggressiveThree(), f.Dijkstra3())
		r.Rows = append(r.Rows,
			expectRow(fmt.Sprintf("N=%d: Lemma 12 fails at collisions (finding)", n), l12.Holds, false, l12.Reason),
			expectRow(fmt.Sprintf("N=%d: Theorem 13", n), t13.Holds, true, t13.Reason),
			expectRow(fmt.Sprintf("N=%d: aggressive variant = Dijkstra3", n), agg, true, "automaton equality"),
		)
	}
	return r
}

// E10KState checks the unidirectional ring derivation and the K-vs-N
// stabilization matrix of Dijkstra's K-state system.
func E10KState() *Report {
	r := &Report{
		ID:    "E10",
		Title: "K-state system (technical-report derivation)",
		Claim: "the wrapped unidirectional ring stabilizes; Dijkstra's K-state system self-stabilizes iff K ≥ N (N+1 processes)",
	}
	for _, n := range []int{2, 3} {
		u := ring.NewUTR(n)
		rep := core.Stabilizing(u.Wrapped(), u.System(), nil)
		r.Rows = append(r.Rows, expectRow(fmt.Sprintf("N=%d: UTR wrapped stabilizing", n), rep.Holds, true, rep.Reason))
	}
	for _, tc := range []struct {
		n, k int
		want bool
	}{
		{2, 2, true}, {3, 2, false}, {3, 3, true}, {4, 3, false}, {4, 4, true}, {4, 6, true},
	} {
		ks := ring.NewKState(tc.n, tc.k)
		rep := core.SelfStabilizing(ks.System())
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("N=%d K=%d: self-stabilizing=%v", tc.n, tc.k, tc.want),
			rep.Holds, tc.want, rep.Reason))
	}
	return r
}

// E13RefinementHierarchy separates the three refinement relations of
// Sections 2 and 7 with witnesses.
func E13RefinementHierarchy() *Report {
	r := &Report{
		ID:    "E13",
		Title: "Refinement hierarchy: everywhere ⊂ convergence ⊂ everywhere-eventually",
		Claim: "the odd/even recovery example is an everywhere-eventually refinement but not a convergence refinement; every everywhere refinement is a convergence refinement",
	}
	a, c := core.OddEvenRecovery()
	ee := core.EverywhereEventuallyRefinement(c, a, nil)
	conv := core.ConvergenceRefinement(c, a, nil)
	ev := core.EverywhereRefinement(c, a, nil)
	r.Rows = append(r.Rows,
		expectRow("odd/even: [C ⊑ee A]", ee.Holds, true, ee.Reason),
		expectRow("odd/even: [C ⪯ A] fails", conv.Holds, false, conv.Reason),
		expectRow("odd/even: [C ⊑ A] fails", ev.Holds, false, ev.Reason),
	)

	// Everywhere ⇒ convergence on a ring instance: BTR refines itself.
	b := ring.NewBTR(2)
	btr := b.System()
	self := core.ConvergenceRefinement(btr, btr, nil)
	r.Rows = append(r.Rows, expectRow("BTR: [BTR ⪯ BTR]", self.Holds, true, self.Reason))
	return r
}
