package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
)

// E14SynchronousDaemon is an extension experiment beyond the paper (its
// Section 8 future work asks for refinement methodologies accommodating
// other execution models): the derived systems re-checked under the
// synchronous daemon, where every privileged process fires at once.
func E14SynchronousDaemon() *Report {
	r := &Report{
		ID:    "E14",
		Title: "Extension: the derived systems under a synchronous daemon",
		Claim: "Dijkstra's 3-state system remains self-stabilizing synchronously; the K-state system needs one extra state (K ≥ N+1 instead of K ≥ N)",
		Notes: []string{
			"The synchronous semantics fires all privileged processes simultaneously (one transition per combination of per-process alternatives).",
		},
	}
	for _, n := range []int{2, 3, 4} {
		sync := ring.NewThreeState(n).Dijkstra3Synchronous()
		rep := core.SelfStabilizing(sync)
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("N=%d: Dijkstra3 synchronous", n), rep.Holds, true, rep.Reason))
	}
	for _, tc := range []struct {
		n, k int
		want bool
	}{
		{2, 2, false}, {2, 3, true}, {3, 3, false}, {3, 4, true}, {4, 4, false}, {4, 5, true},
	} {
		sync := ring.NewKState(tc.n, tc.k).KStateSynchronous()
		rep := core.SelfStabilizing(sync)
		r.Rows = append(r.Rows, expectRow(
			fmt.Sprintf("N=%d K=%d: K-state synchronous self-stabilizing=%v", tc.n, tc.k, tc.want),
			rep.Holds, tc.want, rep.Reason))
	}
	return r
}

// E15FairDaemon is the second extension experiment: the weak-fairness
// re-examination of Lemma 9's adversarial-daemon boundary, using the
// labeled-transition Streett-style check.
func E15FairDaemon() *Report {
	r := &Report{
		ID:    "E15",
		Title: "Extension: Lemma 9 under a weakly-fair daemon",
		Claim: "the N ≥ 4 counterexample schedule starves an enabled action; under weak fairness the composition stabilizes at every tested N",
	}
	for _, n := range []int{2, 3, 4, 5} {
		b := ring.NewBTR(n)
		f := ring.NewThreeState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			r.Rows = append(r.Rows, Row{Name: fmt.Sprintf("N=%d", n), Detail: err.Error()})
			continue
		}
		unfair := core.Stabilizing(f.Lemma9System(), b.System(), ab)
		fair := core.FairStabilizing(f.Lemma9Labeled(), b.System(), ab)
		r.Rows = append(r.Rows,
			expectRow(fmt.Sprintf("N=%d: unfair daemon (holds iff N ≤ 3)", n), unfair.Holds, n <= 3, unfair.Reason),
			expectRow(fmt.Sprintf("N=%d: weakly-fair daemon", n), fair.Holds, true, fair.Reason),
		)
	}
	return r
}
