package vm

import "testing"

// FuzzParseSource asserts the mini-language parser never panics.
func FuzzParseSource(f *testing.F) {
	f.Add(paperSource)
	f.Add("int a = 0; while (a != 1) { a = 1; }")
	f.Add("int x = 0; while (x == x) { while (x == 0) { x = 0; } }")
	f.Add("int x")
	f.Add("while while while")
	f.Add("}}}{{{")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseSource(src)
		if err != nil {
			return
		}
		// Accepted programs must compile under both strategies.
		for _, strat := range []Strategy{Naive, ReadOnce} {
			if _, _, err := Compile(prog, strat); err != nil {
				t.Fatalf("accepted program failed to compile (%v): %v", strat, err)
			}
		}
	})
}

// FuzzMachineStep asserts the machine never panics on arbitrary (even
// inconsistent) configurations of a fixed program.
func FuzzMachineStep(f *testing.F) {
	prog, _, err := Compile(mustParseF(paperSource), Naive)
	if err != nil {
		f.Fatal(err)
	}
	m := &Machine{Prog: prog, MaxVal: 2, MaxStack: 2}
	f.Add(0, 0, 0, 0)
	f.Add(7, 1, 1, 1)
	f.Add(-3, 9, -1, 5)
	f.Fuzz(func(t *testing.T, pc, local, s0, s1 int) {
		cfg := Config{PC: pc, Locals: []int{local & 1}, Stack: []int{s0 & 1, s1 & 1}}
		if _, st, _ := m.Run(cfg, 100); st == 0 {
			t.Fatal("invalid status")
		}
	})
}

// mustParseF is the f.Fatal-free helper used at fuzz-seed time.
func mustParseF(src string) *SrcProgram {
	p, err := ParseSource(src)
	if err != nil {
		panic(err)
	}
	return p
}
