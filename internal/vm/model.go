package vm

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/system"
)

// Model is a machine program turned into a finite automaton: one state per
// configuration (pc, stack, locals), one transition per machine step.
// Halted and trapped configurations are terminal. Stack slots above the
// stack pointer are kept at zero so each machine configuration has exactly
// one encoding.
type Model struct {
	// Machine is the modeled machine.
	Machine *Machine
	// Space encodes configurations: pc, sp, stack slots, locals.
	Space *system.Space
	// Sys is the enumerated automaton; initial state per NewModel's
	// initial locals.
	Sys *system.System

	numLocals int
}

// NewModel enumerates the machine over its finite configuration space.
// initLocals gives the modeled entry configuration (pc 0, empty stack).
func NewModel(m *Machine, numLocals int, initLocals []int) (*Model, error) {
	if err := m.Prog.Validate(numLocals); err != nil {
		return nil, err
	}
	if m.MaxVal < 2 || m.MaxStack < 1 {
		return nil, fmt.Errorf("vm: model needs MaxVal ≥ 2 and MaxStack ≥ 1, got %d and %d", m.MaxVal, m.MaxStack)
	}
	if len(initLocals) != numLocals {
		return nil, fmt.Errorf("vm: %d initial locals for %d slots", len(initLocals), numLocals)
	}
	vars := make([]system.Var, 0, 2+m.MaxStack+numLocals)
	vars = append(vars, system.Int("pc", len(m.Prog)), system.Int("sp", m.MaxStack+1))
	for i := 0; i < m.MaxStack; i++ {
		vars = append(vars, system.Int(fmt.Sprintf("st%d", i), m.MaxVal))
	}
	for i := 0; i < numLocals; i++ {
		vars = append(vars, system.Int(fmt.Sprintf("l%d", i), m.MaxVal))
	}
	sp := system.NewSpace(vars...)
	md := &Model{Machine: m, Space: sp, numLocals: numLocals}

	b := system.NewSpaceBuilder(fmt.Sprintf("vm(%d instrs)", len(m.Prog)), sp)
	vals := make(system.Vals, sp.NumVars())
	for s := 0; s < sp.Size(); s++ {
		vals = sp.Decode(s, vals)
		cfg, valid := md.configOf(vals)
		if !valid {
			continue // non-canonical padding: unreachable encoding
		}
		next, st := m.Step(cfg)
		if st != Running {
			continue // halted or trapped: terminal
		}
		b.AddTransition(s, md.EncodeConfig(next))
	}
	init := Config{PC: 0, Locals: append([]int(nil), initLocals...)}
	b.AddInit(md.EncodeConfig(init))
	md.Sys = b.Build()
	return md, nil
}

// configOf decodes a state; valid is false for non-canonical encodings
// (stack padding above sp not zeroed).
func (md *Model) configOf(vals system.Vals) (Config, bool) {
	m := md.Machine
	cfg := Config{PC: vals[0]}
	spDepth := vals[1]
	for i := spDepth; i < m.MaxStack; i++ {
		if vals[2+i] != 0 {
			return Config{}, false
		}
	}
	cfg.Stack = make([]int, spDepth)
	for i := 0; i < spDepth; i++ {
		cfg.Stack[i] = vals[2+i]
	}
	cfg.Locals = make([]int, md.numLocals)
	for i := range cfg.Locals {
		cfg.Locals[i] = vals[2+m.MaxStack+i]
	}
	return cfg, true
}

// EncodeConfig maps a machine configuration to its state index.
func (md *Model) EncodeConfig(c Config) int {
	m := md.Machine
	vals := make(system.Vals, md.Space.NumVars())
	vals[0] = c.PC
	vals[1] = len(c.Stack)
	for i, v := range c.Stack {
		vals[2+i] = v
	}
	for i, v := range c.Locals {
		vals[2+m.MaxStack+i] = v
	}
	return md.Space.Encode(vals)
}

// LocalAbstraction maps configurations to the value of the watched local,
// over the abstract space 0..MaxVal−1.
func (md *Model) LocalAbstraction(watched int) (*system.Abstraction, error) {
	if watched < 0 || watched >= md.numLocals {
		return nil, fmt.Errorf("vm: watched local %d outside [0,%d)", watched, md.numLocals)
	}
	m := md.Machine
	vals := make(system.Vals, md.Space.NumVars())
	return system.NewAbstraction(md.Space.Size(), m.MaxVal, func(s int) int {
		vals = md.Space.Decode(s, vals)
		return vals[2+m.MaxStack+watched]
	})
}

// LocalFaultStates closes a state set under arbitrary corruption of the
// local variables (the paper's fault: "the value of x is corrupted"):
// every combination of local values is substituted into every member.
func (md *Model) LocalFaultStates(from *bitset.Set) *bitset.Set {
	m := md.Machine
	out := bitset.New(md.Space.Size())
	vals := make(system.Vals, md.Space.NumVars())
	total := 1
	for i := 0; i < md.numLocals; i++ {
		total *= m.MaxVal
	}
	from.ForEach(func(s int) {
		vals = md.Space.Decode(s, vals)
		for combo := 0; combo < total; combo++ {
			c := combo
			for i := 0; i < md.numLocals; i++ {
				vals[2+m.MaxStack+i] = c % m.MaxVal
				c /= m.MaxVal
			}
			out.Add(md.Space.Encode(vals))
		}
	})
	return out
}

// CheckLocalFaultStabilization decides whether the compiled program,
// subject to transient corruption of its locals at any reachable point of
// execution, is stabilizing to spec (over the watched local's value). It
// restricts the automaton to the states reachable from the fault-closed
// reachable set, then runs the Section 2 stabilization check through the
// local-value abstraction.
func CheckLocalFaultStabilization(md *Model, spec *system.System, watched int) (*core.StabilizationReport, error) {
	alpha, err := md.LocalAbstraction(watched)
	if err != nil {
		return nil, err
	}
	normal := mc.ReachFromInit(md.Sys)
	faulty := md.LocalFaultStates(normal)
	relevant := mc.Reach(md.Sys, faulty)
	sub, oldToNew := system.Induced(md.Sys, relevant)
	subAlpha, err := system.InducedAbstraction(alpha, oldToNew, sub.NumStates())
	if err != nil {
		return nil, err
	}
	return core.Stabilizing(sub, spec, subAlpha), nil
}

// AlwaysZeroSpec is the Section 1 specification B: "x is always 0". Its
// only behavior is the self-loop at 0; 0 is the only initial state.
func AlwaysZeroSpec(maxVal int) *system.System {
	b := system.NewBuilder("B(always x=0)", maxVal)
	b.AddTransition(0, 0)
	b.AddInit(0)
	return b.Build()
}

// SourceLoopSystem is the source-level semantics A of
// "while (x == x) { x = 0; }": from any value of x, one loop iteration
// sets x to 0, forever. A is stabilizing to AlwaysZeroSpec — the source
// program tolerates corruption of x.
func SourceLoopSystem(maxVal int) *system.System {
	b := system.NewBuilder("A(while x==x: x:=0)", maxVal)
	for v := 0; v < maxVal; v++ {
		b.AddTransition(v, 0)
	}
	b.AddInit(0)
	return b.Build()
}
