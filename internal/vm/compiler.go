package vm

import "fmt"

// Strategy selects how conditions are compiled.
type Strategy int

// Compilation strategies.
const (
	// Naive compiles a comparison by evaluating each operand separately —
	// a variable compared with itself is loaded twice, as the Java
	// compiler does in the paper's listing. A fault striking the variable
	// between the two loads makes the comparison observe two different
	// values, which is exactly how the compiled program loses the source
	// program's tolerance.
	Naive Strategy = iota + 1
	// ReadOnce loads a variable compared against itself once and
	// duplicates the value on the stack, so the comparison is between two
	// copies of a single read. This is the convergence-preserving
	// strategy: every machine execution then tracks a source execution
	// modulo stuttering, regardless of variable corruption.
	ReadOnce
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case ReadOnce:
		return "read-once"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Compile translates a source program. It returns the machine program and
// the variable-to-local-slot assignment.
func Compile(src *SrcProgram, st Strategy) (Program, map[string]int, error) {
	if st != Naive && st != ReadOnce {
		return nil, nil, fmt.Errorf("vm: unknown strategy %d", int(st))
	}
	c := &compiler{strategy: st, slots: make(map[string]int, len(src.Vars))}
	for i, v := range src.Vars {
		c.slots[v.Name] = i
	}
	// Initializers.
	for _, v := range src.Vars {
		c.emit(Instr{Op: OpIConst, Arg: v.Init})
		c.emit(Instr{Op: OpIStore, Arg: c.slots[v.Name]})
	}
	if err := c.stmts(src.Body); err != nil {
		return nil, nil, err
	}
	c.emit(Instr{Op: OpReturn})
	if err := Program(c.code).Validate(len(src.Vars)); err != nil {
		return nil, nil, err
	}
	return c.code, c.slots, nil
}

type compiler struct {
	strategy Strategy
	slots    map[string]int
	code     []Instr
}

func (c *compiler) emit(in Instr) int {
	c.code = append(c.code, in)
	return len(c.code) - 1
}

func (c *compiler) operand(o SrcOperand) {
	if o.IsVar {
		c.emit(Instr{Op: OpILoad, Arg: c.slots[o.Name]})
	} else {
		c.emit(Instr{Op: OpIConst, Arg: o.Lit})
	}
}

func (c *compiler) stmts(ss []SrcStmt) error {
	for _, s := range ss {
		switch s := s.(type) {
		case SrcAssign:
			c.operand(s.Val)
			c.emit(Instr{Op: OpIStore, Arg: c.slots[s.Name]})
		case SrcWhile:
			if err := c.while(s); err != nil {
				return err
			}
		default:
			return fmt.Errorf("vm: unknown statement %T", s)
		}
	}
	return nil
}

// while lays the loop out like the paper's listing: a goto to the test,
// the body, then the test branching back to the body when the condition
// holds.
func (c *compiler) while(w SrcWhile) error {
	jumpToTest := c.emit(Instr{Op: OpGoto}) // patched below
	bodyStart := len(c.code)
	if err := c.stmts(w.Body); err != nil {
		return err
	}
	testStart := len(c.code)
	c.code[jumpToTest].Arg = testStart

	sameVar := w.Left.IsVar && w.Right.IsVar && w.Left.Name == w.Right.Name
	if c.strategy == ReadOnce && sameVar {
		c.emit(Instr{Op: OpILoad, Arg: c.slots[w.Left.Name]})
		c.emit(Instr{Op: OpDup})
	} else {
		c.operand(w.Left)
		c.operand(w.Right)
	}
	if w.Equal {
		c.emit(Instr{Op: OpIfICmpEq, Arg: bodyStart})
	} else {
		// a != b: equal exits the loop, otherwise loop.
		branch := c.emit(Instr{Op: OpIfICmpEq}) // patched to after the goto
		c.emit(Instr{Op: OpGoto, Arg: bodyStart})
		c.code[branch].Arg = len(c.code)
	}
	return nil
}
