package vm

import "fmt"

// Status describes a machine after a step.
type Status int

// Machine statuses.
const (
	// Running means execution can continue.
	Running Status = iota + 1
	// Halted means a return was executed.
	Halted
	// Trapped means the step was impossible (stack underflow/overflow or
	// an out-of-range value) — only reachable from corrupted
	// configurations.
	Trapped
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Halted:
		return "halted"
	case Trapped:
		return "trapped"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Config is a machine configuration: program counter, local variables,
// and operand stack (bottom first).
type Config struct {
	PC     int
	Locals []int
	Stack  []int
}

// Clone deep-copies the configuration.
func (c Config) Clone() Config {
	out := Config{PC: c.PC, Locals: make([]int, len(c.Locals)), Stack: make([]int, len(c.Stack))}
	copy(out.Locals, c.Locals)
	copy(out.Stack, c.Stack)
	return out
}

// Machine executes a Program over values 0..MaxVal−1 with an operand
// stack bounded by MaxStack (bounds keep the configuration space finite
// for model construction; the example programs respect them).
type Machine struct {
	Prog     Program
	MaxVal   int
	MaxStack int
}

// Step executes one instruction. The returned status is Running if the
// machine may continue, Halted on return, Trapped on a machine error;
// cfg is only advanced when Running.
func (m *Machine) Step(cfg Config) (Config, Status) {
	if cfg.PC < 0 || cfg.PC >= len(m.Prog) {
		return cfg, Trapped
	}
	in := m.Prog[cfg.PC]
	switch in.Op {
	case OpIConst:
		if len(cfg.Stack) >= m.MaxStack || in.Arg < 0 || in.Arg >= m.MaxVal {
			return cfg, Trapped
		}
		next := cfg.Clone()
		next.Stack = append(next.Stack, in.Arg)
		next.PC++
		return next, Running
	case OpILoad:
		if len(cfg.Stack) >= m.MaxStack {
			return cfg, Trapped
		}
		next := cfg.Clone()
		next.Stack = append(next.Stack, cfg.Locals[in.Arg])
		next.PC++
		return next, Running
	case OpIStore:
		if len(cfg.Stack) == 0 {
			return cfg, Trapped
		}
		next := cfg.Clone()
		next.Locals[in.Arg] = next.Stack[len(next.Stack)-1]
		next.Stack = next.Stack[:len(next.Stack)-1]
		next.PC++
		return next, Running
	case OpDup:
		if len(cfg.Stack) == 0 || len(cfg.Stack) >= m.MaxStack {
			return cfg, Trapped
		}
		next := cfg.Clone()
		next.Stack = append(next.Stack, next.Stack[len(next.Stack)-1])
		next.PC++
		return next, Running
	case OpIfICmpEq:
		if len(cfg.Stack) < 2 {
			return cfg, Trapped
		}
		next := cfg.Clone()
		b := next.Stack[len(next.Stack)-1]
		a := next.Stack[len(next.Stack)-2]
		next.Stack = next.Stack[:len(next.Stack)-2]
		if a == b {
			next.PC = in.Arg
		} else {
			next.PC++
		}
		return next, Running
	case OpGoto:
		next := cfg.Clone()
		next.PC = in.Arg
		return next, Running
	case OpReturn:
		return cfg, Halted
	default:
		return cfg, Trapped
	}
}

// Run executes up to fuel steps, returning the final configuration, its
// status, and the number of steps taken. A Running status after fuel
// steps means the budget expired mid-execution.
func (m *Machine) Run(cfg Config, fuel int) (Config, Status, int) {
	cur := cfg.Clone()
	for i := 0; i < fuel; i++ {
		next, st := m.Step(cur)
		if st != Running {
			return cur, st, i
		}
		cur = next
	}
	return cur, Running, fuel
}
