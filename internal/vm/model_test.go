package vm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mc"
)

func buildModel(t *testing.T, strategy Strategy) (*Model, map[string]int) {
	t.Helper()
	prog, slots, err := Compile(mustParse(t, paperSource), strategy)
	if err != nil {
		t.Fatal(err)
	}
	m := &Machine{Prog: prog, MaxVal: 2, MaxStack: 2}
	md, err := NewModel(m, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	return md, slots
}

func TestSourceProgramIsTolerant(t *testing.T) {
	// The paper's premise: the source program is "trivially tolerant to
	// the corruption of x in that it eventually ensures x is always 0".
	a := SourceLoopSystem(2)
	b := AlwaysZeroSpec(2)
	rep := core.Stabilizing(a, b, nil)
	if !rep.Holds {
		t.Fatalf("source not stabilizing to spec: %s", rep.Verdict)
	}
}

// TestNaiveCompilationLosesTolerance is the Section 1 headline, machine-
// checked: the naively compiled program, under corruption of x at any
// reachable configuration, is NOT stabilizing to "x is always 0" — some
// executions escape the loop and halt.
func TestNaiveCompilationLosesTolerance(t *testing.T) {
	md, _ := buildModel(t, Naive)
	rep, err := CheckLocalFaultStabilization(md, AlwaysZeroSpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatalf("naive compilation reported tolerant: %s", rep.Verdict)
	}
}

// TestReadOnceCompilationPreservesTolerance: the convergence-preserving
// strategy keeps the machine inside the loop for every corruption of x,
// so the compiled program remains stabilizing to the spec.
func TestReadOnceCompilationPreservesTolerance(t *testing.T) {
	md, _ := buildModel(t, ReadOnce)
	rep, err := CheckLocalFaultStabilization(md, AlwaysZeroSpec(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("read-once compilation reported intolerant: %s", rep.Verdict)
	}
}

func TestNominalExecutionsAgree(t *testing.T) {
	// In the absence of faults both compilations refine the source
	// program: from the initial state, the machine's x-trace destutters
	// to A's behavior.
	for _, strat := range []Strategy{Naive, ReadOnce} {
		md, _ := buildModel(t, strat)
		alpha, err := md.LocalAbstraction(0)
		if err != nil {
			t.Fatal(err)
		}
		v := core.RefinementInit(md.Sys, SourceLoopSystem(2), alpha)
		if !v.Holds {
			t.Fatalf("%v: nominal refinement fails: %s", strat, v)
		}
	}
}

func TestModelShape(t *testing.T) {
	md, _ := buildModel(t, Naive)
	// Nominal execution never traps and loops forever.
	reach := mc.ReachFromInit(md.Sys)
	found := false
	reach.ForEach(func(s int) {
		if md.Sys.Terminal(s) {
			found = true
		}
	})
	if found {
		t.Fatal("nominal execution reaches a terminal configuration")
	}
}

func TestEncodeDecodeConfig(t *testing.T) {
	md, _ := buildModel(t, Naive)
	cfg := Config{PC: 3, Stack: []int{1}, Locals: []int{1}}
	s := md.EncodeConfig(cfg)
	vals := md.Space.Decode(s, nil)
	got, valid := md.configOf(vals)
	if !valid || got.PC != 3 || len(got.Stack) != 1 || got.Stack[0] != 1 || got.Locals[0] != 1 {
		t.Fatalf("round trip = %+v (valid=%v)", got, valid)
	}
}

func TestLocalFaultStatesClosure(t *testing.T) {
	md, _ := buildModel(t, Naive)
	normal := mc.ReachFromInit(md.Sys)
	faulty := md.LocalFaultStates(normal)
	if faulty.Count() != 2*normal.Count() {
		// One local over {0,1}: the closure doubles every state (x=0 and
		// x=1 variants).
		t.Fatalf("faulty = %d, normal = %d", faulty.Count(), normal.Count())
	}
	if !normal.SubsetOf(faulty) {
		t.Fatal("fault closure lost normal states")
	}
}

func TestNewModelValidation(t *testing.T) {
	prog := Program{{Op: OpReturn}}
	if _, err := NewModel(&Machine{Prog: prog, MaxVal: 1, MaxStack: 1}, 1, []int{0}); err == nil {
		t.Fatal("MaxVal=1 accepted")
	}
	if _, err := NewModel(&Machine{Prog: prog, MaxVal: 2, MaxStack: 2}, 1, []int{0, 0}); err == nil {
		t.Fatal("wrong locals length accepted")
	}
	if _, err := NewModel(&Machine{Prog: Program{{Op: OpGoto, Arg: 7}}, MaxVal: 2, MaxStack: 1}, 1, []int{0}); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestLocalAbstractionValidation(t *testing.T) {
	md, _ := buildModel(t, Naive)
	if _, err := md.LocalAbstraction(5); err == nil {
		t.Fatal("bad watched index accepted")
	}
}
