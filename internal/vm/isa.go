// Package vm reproduces the paper's Section 1 motivating example as a
// running artifact: a small stack machine in the image of the JVM, a
// compiler from a miniature imperative language onto it, and a modeling
// bridge that turns machine executions into the automata of
// internal/system so the stabilization checker can decide — exactly as
// the paper argues informally — that the source program tolerates
// corruption of x while its naive compilation does not, and that a
// read-once ("convergence-preserving") compilation strategy restores the
// tolerance.
package vm

import (
	"fmt"
	"strings"
)

// Op is a machine opcode.
type Op uint8

// The instruction set, mirroring the bytecodes in the paper's listing
// plus Dup, which the robust compilation strategy uses.
const (
	// OpIConst pushes the immediate Arg.
	OpIConst Op = iota + 1
	// OpILoad pushes local variable Arg.
	OpILoad
	// OpIStore pops into local variable Arg.
	OpIStore
	// OpIfICmpEq pops two values and jumps to Arg if they are equal.
	OpIfICmpEq
	// OpGoto jumps to Arg.
	OpGoto
	// OpDup duplicates the top of the stack.
	OpDup
	// OpReturn halts the machine.
	OpReturn
)

var opNames = map[Op]string{
	OpIConst: "iconst", OpILoad: "iload", OpIStore: "istore",
	OpIfICmpEq: "if_icmpeq", OpGoto: "goto", OpDup: "dup", OpReturn: "return",
}

// String names the opcode.
func (o Op) String() string {
	if s, okk := opNames[o]; okk {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// hasArg reports whether the opcode carries an operand.
func (o Op) hasArg() bool {
	switch o {
	case OpIConst, OpILoad, OpIStore, OpIfICmpEq, OpGoto:
		return true
	default:
		return false
	}
}

// Instr is one instruction.
type Instr struct {
	Op  Op
	Arg int
}

// String renders the instruction.
func (in Instr) String() string {
	if in.Op.hasArg() {
		return fmt.Sprintf("%s %d", in.Op, in.Arg)
	}
	return in.Op.String()
}

// Program is an instruction sequence; jump targets are instruction
// indices.
type Program []Instr

// String renders a numbered listing like the paper's.
func (p Program) String() string {
	var b strings.Builder
	for i, in := range p {
		fmt.Fprintf(&b, "%2d  %s\n", i, in)
	}
	return b.String()
}

// Validate checks jump targets and operand ranges.
func (p Program) Validate(numLocals int) error {
	if len(p) == 0 {
		return fmt.Errorf("vm: empty program")
	}
	for i, in := range p {
		switch in.Op {
		case OpIfICmpEq, OpGoto:
			if in.Arg < 0 || in.Arg >= len(p) {
				return fmt.Errorf("vm: instruction %d jumps to %d, outside [0,%d)", i, in.Arg, len(p))
			}
		case OpILoad, OpIStore:
			if in.Arg < 0 || in.Arg >= numLocals {
				return fmt.Errorf("vm: instruction %d touches local %d, outside [0,%d)", i, in.Arg, numLocals)
			}
		case OpIConst, OpDup, OpReturn:
		default:
			return fmt.Errorf("vm: instruction %d has unknown opcode %d", i, in.Op)
		}
	}
	return nil
}
