package vm

import (
	"strings"
	"testing"
)

// paperSource is the Section 1 example program.
const paperSource = `
int x = 0;
while (x == x) { x = 0; }
`

func mustParse(t *testing.T, src string) *SrcProgram {
	t.Helper()
	p, err := ParseSource(src)
	if err != nil {
		t.Fatalf("ParseSource: %v", err)
	}
	return p
}

func TestParseSource(t *testing.T) {
	p := mustParse(t, paperSource)
	if len(p.Vars) != 1 || p.Vars[0].Name != "x" || p.Vars[0].Init != 0 {
		t.Fatalf("vars = %+v", p.Vars)
	}
	if len(p.Body) != 1 {
		t.Fatalf("body = %+v", p.Body)
	}
	w, isWhile := p.Body[0].(SrcWhile)
	if !isWhile || !w.Equal || !w.Left.IsVar || w.Left.Name != "x" || w.Right.Name != "x" {
		t.Fatalf("while = %+v", p.Body[0])
	}
	if len(w.Body) != 1 {
		t.Fatalf("loop body = %+v", w.Body)
	}
}

func TestParseSourceNested(t *testing.T) {
	p := mustParse(t, `
int a = 0;
int b = 1;
while (a != b) { a = b; while (b == 1) { b = 0; } }
a = 5;
`)
	if len(p.Vars) != 2 || len(p.Body) != 2 {
		t.Fatalf("prog = %+v", p)
	}
}

func TestParseSourceErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int x = 0; int x = 1;", "redeclared"},
		{"int x = 0; y = 1;", "undeclared"},
		{"int x = 0; while (y == x) { }", "undeclared"},
		{"int x = 0; while (x = x) { }", `expected == or !=`},
		{"int x = 0; x = 1", `expected ";"`},
		{"int x = 0; @", "unexpected character"},
		{"int x = 0; while (x == x) { x = 0; ", `expected identifier`},
	}
	for _, tc := range cases {
		if _, err := ParseSource(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSource(%q) err = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestCompileNaiveMatchesPaperShape(t *testing.T) {
	prog, slots, err := Compile(mustParse(t, paperSource), Naive)
	if err != nil {
		t.Fatal(err)
	}
	if slots["x"] != 0 {
		t.Fatalf("slots = %v", slots)
	}
	want := Program{
		{Op: OpIConst, Arg: 0}, // init x
		{Op: OpIStore, Arg: 0},
		{Op: OpGoto, Arg: 5}, // jump to test
		{Op: OpIConst, Arg: 0},
		{Op: OpIStore, Arg: 0},
		{Op: OpILoad, Arg: 0}, // x loaded twice — the vulnerable window
		{Op: OpILoad, Arg: 0},
		{Op: OpIfICmpEq, Arg: 3},
		{Op: OpReturn},
	}
	if len(prog) != len(want) {
		t.Fatalf("program:\n%s", prog)
	}
	for i := range want {
		if prog[i] != want[i] {
			t.Fatalf("instr %d = %v, want %v\n%s", i, prog[i], want[i], prog)
		}
	}
}

func TestCompileReadOnceUsesDup(t *testing.T) {
	prog, _, err := Compile(mustParse(t, paperSource), ReadOnce)
	if err != nil {
		t.Fatal(err)
	}
	var loads, dups int
	for _, in := range prog {
		switch in.Op {
		case OpILoad:
			loads++
		case OpDup:
			dups++
		}
	}
	if loads != 1 || dups != 1 {
		t.Fatalf("loads=%d dups=%d:\n%s", loads, dups, prog)
	}
}

func TestCompileNotEqualLoop(t *testing.T) {
	prog, _, err := Compile(mustParse(t, "int a = 0; int b = 1; while (a != b) { a = b; }"), Naive)
	if err != nil {
		t.Fatal(err)
	}
	m := &Machine{Prog: prog, MaxVal: 2, MaxStack: 2}
	final, st, _ := m.Run(Config{Locals: []int{0, 0}}, 100)
	if st != Halted {
		t.Fatalf("status = %v", st)
	}
	if final.Locals[0] != 1 || final.Locals[1] != 1 {
		t.Fatalf("locals = %v", final.Locals)
	}
}

func TestMachineStepSemantics(t *testing.T) {
	prog := Program{
		{Op: OpIConst, Arg: 1},
		{Op: OpDup},
		{Op: OpIfICmpEq, Arg: 4}, // consumes both copies
		{Op: OpGoto, Arg: 0},
		{Op: OpIConst, Arg: 1},
		{Op: OpIStore, Arg: 0},
		{Op: OpReturn},
	}
	m := &Machine{Prog: prog, MaxVal: 2, MaxStack: 2}
	final, st, steps := m.Run(Config{Locals: []int{0}}, 100)
	if st != Halted || final.Locals[0] != 1 {
		t.Fatalf("st=%v locals=%v steps=%d", st, final.Locals, steps)
	}
}

func TestMachineTraps(t *testing.T) {
	m := &Machine{Prog: Program{{Op: OpIStore, Arg: 0}}, MaxVal: 2, MaxStack: 1}
	if _, st := m.Step(Config{Locals: []int{0}}); st != Trapped {
		t.Fatalf("underflow status = %v", st)
	}
	m2 := &Machine{Prog: Program{{Op: OpIConst, Arg: 0}}, MaxVal: 2, MaxStack: 1}
	if _, st := m2.Step(Config{Stack: []int{0}, Locals: []int{0}}); st != Trapped {
		t.Fatalf("overflow status = %v", st)
	}
	if _, st := m2.Step(Config{PC: 9, Locals: []int{0}}); st != Trapped {
		t.Fatalf("bad pc status = %v", st)
	}
}

// TestPaperFaultTrace reproduces the paper's exact failure scenario: the
// value of x is corrupted after the first iload (line 7 in the paper's
// numbering) and before the second; the comparison observes two different
// values and the program terminates, never restoring x = 0.
func TestPaperFaultTrace(t *testing.T) {
	prog, slots, err := Compile(mustParse(t, paperSource), Naive)
	if err != nil {
		t.Fatal(err)
	}
	m := &Machine{Prog: prog, MaxVal: 2, MaxStack: 2}

	// Run to the state right after the first iload of the test.
	cfg := Config{Locals: []int{0}}
	for cfg.PC != 6 {
		next, st := m.Step(cfg)
		if st != Running {
			t.Fatalf("unexpected status %v at pc %d", st, cfg.PC)
		}
		cfg = next
	}
	// The transient fault: x corrupted between the two loads.
	cfg.Locals[slots["x"]] = 1
	final, st, _ := m.Run(cfg, 100)
	if st != Halted {
		t.Fatalf("status = %v, want halted", st)
	}
	if final.Locals[slots["x"]] != 1 {
		t.Fatalf("x = %d after halt, corruption should persist", final.Locals[slots["x"]])
	}

	// The read-once compilation shrugs the same fault off: inject the
	// corruption at every reachable configuration and verify the machine
	// keeps running with x eventually 0.
	progR, slotsR, err := Compile(mustParse(t, paperSource), ReadOnce)
	if err != nil {
		t.Fatal(err)
	}
	mR := &Machine{Prog: progR, MaxVal: 2, MaxStack: 2}
	cfgR := Config{Locals: []int{0}}
	for step := 0; step < 20; step++ {
		corrupted := cfgR.Clone()
		corrupted.Locals[slotsR["x"]] = 1
		final, st, _ := mR.Run(corrupted, 200)
		if st != Running {
			t.Fatalf("read-once halted (%v) after corruption at pc %d", st, cfgR.PC)
		}
		if final.Locals[slotsR["x"]] != 0 {
			t.Fatalf("read-once left x = %d after corruption at pc %d", final.Locals[slotsR["x"]], cfgR.PC)
		}
		next, st2 := mR.Step(cfgR)
		if st2 != Running {
			t.Fatalf("nominal run halted at pc %d", cfgR.PC)
		}
		cfgR = next
	}
}

func TestCompileNestedLoops(t *testing.T) {
	// Outer loop forever; inner loop drains y back to 0 each iteration.
	src := `
int x = 0;
int y = 0;
while (x == x) {
  y = 1;
  while (y != 0) { y = 0; }
  x = 0;
}
`
	for _, strat := range []Strategy{Naive, ReadOnce} {
		prog, slots, err := Compile(mustParse(t, src), strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		m := &Machine{Prog: prog, MaxVal: 2, MaxStack: 2}
		final, st, _ := m.Run(Config{Locals: []int{0, 0}}, 500)
		if st != Running {
			t.Fatalf("%v: outer loop terminated: %v", strat, st)
		}
		if final.Locals[slots["y"]] != 0 && final.Locals[slots["x"]] != 0 {
			// Mid-iteration values are fine; just ensure domains hold.
			t.Fatalf("%v: locals out of expectation: %v", strat, final.Locals)
		}
	}
}

func TestReadOnceOnlyAppliesToSelfComparison(t *testing.T) {
	// Different operands: both strategies must emit identical code.
	src := "int a = 0;\nint b = 1;\nwhile (a == b) { a = 1; }"
	naive, _, err := Compile(mustParse(t, src), Naive)
	if err != nil {
		t.Fatal(err)
	}
	readOnce, _, err := Compile(mustParse(t, src), ReadOnce)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != len(readOnce) {
		t.Fatalf("lengths differ: %d vs %d", len(naive), len(readOnce))
	}
	for i := range naive {
		if naive[i] != readOnce[i] {
			t.Fatalf("instr %d differs: %v vs %v", i, naive[i], readOnce[i])
		}
	}
}

func TestCompileUnknownStrategy(t *testing.T) {
	if _, _, err := Compile(mustParse(t, paperSource), Strategy(99)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestProgramValidate(t *testing.T) {
	if err := (Program{}).Validate(1); err == nil {
		t.Fatal("empty program accepted")
	}
	if err := (Program{{Op: OpGoto, Arg: 5}}).Validate(1); err == nil {
		t.Fatal("wild jump accepted")
	}
	if err := (Program{{Op: OpILoad, Arg: 3}, {Op: OpReturn}}).Validate(1); err == nil {
		t.Fatal("bad local accepted")
	}
	if err := (Program{{Op: Op(99)}}).Validate(1); err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

func TestProgramString(t *testing.T) {
	s := Program{{Op: OpIConst, Arg: 0}, {Op: OpReturn}}.String()
	if !strings.Contains(s, "iconst 0") || !strings.Contains(s, "return") {
		t.Fatalf("listing = %q", s)
	}
}
