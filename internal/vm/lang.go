package vm

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The miniature source language of the Section 1 example:
//
//	int x = 0;
//	while (x == x) { x = 0; }
//
// Statements: declarations with initializers, assignments, and while
// loops whose condition compares two operands with == or !=. Operands are
// integer literals or variables.

// SrcProgram is a parsed source program.
type SrcProgram struct {
	// Vars lists declared variables in declaration order; the compiler
	// assigns local slots in this order.
	Vars []SrcVar
	// Body is the statement list.
	Body []SrcStmt
}

// SrcVar is a declaration "int x = n;".
type SrcVar struct {
	Name string
	Init int
}

// SrcStmt is either an assignment or a while loop.
type SrcStmt interface{ srcStmt() }

// SrcAssign is "x = operand;".
type SrcAssign struct {
	Name string
	Val  SrcOperand
}

// SrcWhile is "while (a ==/!= b) { body }".
type SrcWhile struct {
	Left, Right SrcOperand
	Equal       bool // true for ==, false for !=
	Body        []SrcStmt
}

func (SrcAssign) srcStmt() {}
func (SrcWhile) srcStmt()  {}

// SrcOperand is a literal or a variable reference.
type SrcOperand struct {
	IsVar bool
	Name  string
	Lit   int
}

// String renders the operand.
func (o SrcOperand) String() string {
	if o.IsVar {
		return o.Name
	}
	return strconv.Itoa(o.Lit)
}

// ParseSource parses the mini language.
func ParseSource(src string) (*SrcProgram, error) {
	toks, err := tokenizeSource(src)
	if err != nil {
		return nil, err
	}
	p := &srcParser{toks: toks}
	prog := &SrcProgram{}
	seen := map[string]bool{}
	for p.peek() == "int" {
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("vm: variable %q redeclared", name)
		}
		seen[name] = true
		if err := p.expect("="); err != nil {
			return nil, err
		}
		lit, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		prog.Vars = append(prog.Vars, SrcVar{Name: name, Init: lit})
	}
	body, err := p.stmts("")
	if err != nil {
		return nil, err
	}
	prog.Body = body
	if p.peek() != "" {
		return nil, fmt.Errorf("vm: trailing input at %q", p.peek())
	}
	if err := checkSource(prog, seen); err != nil {
		return nil, err
	}
	return prog, nil
}

func checkSource(prog *SrcProgram, declared map[string]bool) error {
	var checkOperand func(o SrcOperand) error
	checkOperand = func(o SrcOperand) error {
		if o.IsVar && !declared[o.Name] {
			return fmt.Errorf("vm: undeclared variable %q", o.Name)
		}
		return nil
	}
	var checkStmts func(ss []SrcStmt) error
	checkStmts = func(ss []SrcStmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case SrcAssign:
				if !declared[s.Name] {
					return fmt.Errorf("vm: assignment to undeclared variable %q", s.Name)
				}
				if err := checkOperand(s.Val); err != nil {
					return err
				}
			case SrcWhile:
				if err := checkOperand(s.Left); err != nil {
					return err
				}
				if err := checkOperand(s.Right); err != nil {
					return err
				}
				if err := checkStmts(s.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return checkStmts(prog.Body)
}

type srcParser struct {
	toks []string
	i    int
}

func (p *srcParser) peek() string {
	if p.i >= len(p.toks) {
		return ""
	}
	return p.toks[p.i]
}

func (p *srcParser) next() string {
	t := p.peek()
	p.i++
	return t
}

func (p *srcParser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("vm: expected %q, found %q", t, got)
	}
	return nil
}

func (p *srcParser) ident() (string, error) {
	t := p.next()
	if t == "" || !unicode.IsLetter(rune(t[0])) {
		return "", fmt.Errorf("vm: expected identifier, found %q", t)
	}
	return t, nil
}

func (p *srcParser) number() (int, error) {
	t := p.next()
	n, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("vm: expected number, found %q", t)
	}
	return n, nil
}

func (p *srcParser) operand() (SrcOperand, error) {
	t := p.peek()
	if t == "" {
		return SrcOperand{}, fmt.Errorf("vm: expected operand, found end of input")
	}
	if unicode.IsDigit(rune(t[0])) {
		n, err := p.number()
		return SrcOperand{Lit: n}, err
	}
	name, err := p.ident()
	return SrcOperand{IsVar: true, Name: name}, err
}

// stmts parses statements until the closer token ("}" inside a block,
// end of input at top level).
func (p *srcParser) stmts(closer string) ([]SrcStmt, error) {
	var out []SrcStmt
	for {
		t := p.peek()
		if t == closer {
			return out, nil
		}
		switch t {
		case "while":
			p.next()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			left, err := p.operand()
			if err != nil {
				return nil, err
			}
			op := p.next()
			if op != "==" && op != "!=" {
				return nil, fmt.Errorf("vm: expected == or !=, found %q", op)
			}
			right, err := p.operand()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			body, err := p.stmts("}")
			if err != nil {
				return nil, err
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
			out = append(out, SrcWhile{Left: left, Right: right, Equal: op == "==", Body: body})
		default:
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			val, err := p.operand()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			out = append(out, SrcAssign{Name: name, Val: val})
		}
	}
}

// tokenizeSource splits the mini language into tokens.
func tokenizeSource(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case unicode.IsLetter(rune(ch)):
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j]))) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case unicode.IsDigit(rune(ch)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case strings.HasPrefix(src[i:], "==") || strings.HasPrefix(src[i:], "!="):
			toks = append(toks, src[i:i+2])
			i += 2
		case strings.ContainsRune("=;(){}", rune(ch)):
			toks = append(toks, string(ch))
			i++
		default:
			return nil, fmt.Errorf("vm: unexpected character %q", ch)
		}
	}
	return toks, nil
}
