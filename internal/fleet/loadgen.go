package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/service"
)

// Loadgen: a seeded closed-loop traffic harness against a fleet's HTTP
// addresses. The workload — request kinds, program choice, entry
// replica — is pre-generated from the seed, so two runs with the same
// seed issue byte-identical request sequences; program popularity is
// Zipf-distributed, so a cache has something to earn. Counts (status
// codes, cache hits, forwards) are deterministic for a fixed seed in
// sequential mode; latency and throughput are measured wall-clock and
// belong in benchmark files, not golden ones.

// Mix is the traffic mix in percent; it must sum to 100.
type Mix struct {
	CheckPct  int `json:"check_pct"`
	LintPct   int `json:"lint_pct"`
	RefinePct int `json:"refine_pct"`
}

// LoadgenConfig parameterizes one run.
type LoadgenConfig struct {
	// Addrs are the replica HTTP addresses; request i enters at
	// Addrs[i % len(Addrs)].
	Addrs []string
	// Requests is the total request count (default 300).
	Requests int
	// Warmup excludes the first Warmup requests from hit-ratio and
	// latency statistics (they still run and still count status codes).
	Warmup int
	// Programs is the distinct-program population size (default 20).
	Programs int
	// Seed drives workload generation.
	Seed int64
	// ZipfS is the Zipf skew (must be > 1; default 1.2). Larger values
	// concentrate traffic on fewer programs.
	ZipfS float64
	// Mix is the check/lint/refine traffic mix (default 60/30/10).
	Mix Mix
	// Concurrency is the closed-loop worker count (default 1:
	// sequential, fully deterministic counts).
	Concurrency int
	// TimeoutMS is the per-request timeout_ms field (default 30000).
	TimeoutMS int64
	// Pace, when positive, sleeps this long between consecutive
	// requests of each worker — stretching the run across a chaos
	// campaign instead of finishing before the first fault lands.
	Pace time.Duration
}

func (c LoadgenConfig) withDefaults() LoadgenConfig {
	if c.Requests <= 0 {
		c.Requests = 300
	}
	if c.Programs <= 0 {
		c.Programs = 20
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Mix == (Mix{}) {
		c.Mix = Mix{CheckPct: 60, LintPct: 30, RefinePct: 10}
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.TimeoutMS <= 0 {
		c.TimeoutMS = 30_000
	}
	return c
}

// LoadgenProgram returns the i'th program of the workload population:
// small distinct state spaces (3..6 values of one variable), cheap to
// check and cheap to tell apart by fingerprint.
func LoadgenProgram(i int) string {
	k := 3 + i%4
	return fmt.Sprintf(
		"var x : 0..%d;\ninit x == %d;\naction tick%d: true -> x := (x + 1) %% %d;\naction snap: x == %d -> x := %d;\n",
		k-1, i%k, i, k, (i/2)%k, i%k)
}

// loadgenRequest is one pre-generated workload entry.
type loadgenRequest struct {
	kind    string
	program int
	addr    string
}

// LatencySummary is the measured latency digest, in microseconds.
type LatencySummary struct {
	P50US  int64 `json:"p50_us"`
	P99US  int64 `json:"p99_us"`
	P999US int64 `json:"p999_us"`
	MaxUS  int64 `json:"max_us"`
}

// ReplicaLoad is one replica's contribution, read from its /fleetz —
// plus, on event-sourced replicas, the journal gauges from /metrics.
type ReplicaLoad struct {
	Replica         string  `json:"replica"`
	Forwards        int64   `json:"forwards"`
	ForwardedServed int64   `json:"forwarded_served"`
	LocalFallbacks  int64   `json:"local_fallbacks"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	HitRatio        float64 `json:"hit_ratio"`
	AEJournalRounds int64   `json:"ae_journal_rounds,omitempty"`

	// Failure-domain counters: breaker transitions, hedged-forward
	// races, and deadline-budget refusals observed by this replica.
	BreakerOpens     int64    `json:"breaker_opens,omitempty"`
	BreakerHalfOpens int64    `json:"breaker_half_opens,omitempty"`
	BreakerSkips     int64    `json:"breaker_skips,omitempty"`
	HedgesFired      int64    `json:"hedges_fired,omitempty"`
	HedgeLocalWins   int64    `json:"hedge_local_wins,omitempty"`
	HedgeWinRatio    float64  `json:"hedge_win_ratio,omitempty"`
	BudgetExhausted  int64    `json:"budget_exhausted,omitempty"`
	Quarantined      []string `json:"quarantined,omitempty"`

	// Journal carries journal_depth, journal_batch_size_p50/p99, and
	// per-projection projection_lag for event-sourced replicas.
	Journal *service.JournalMetricsSnapshot `json:"journal,omitempty"`
}

// LoadgenReport is the run's result. Every field above the latency
// section is deterministic for a fixed seed when Concurrency is 1.
type LoadgenReport struct {
	Addrs    []string `json:"addrs"`
	Requests int      `json:"requests"`
	Warmup   int      `json:"warmup"`
	Programs int      `json:"programs"`
	Seed     int64    `json:"seed"`
	Mix      Mix      `json:"mix"`

	// ByKind counts issued requests per check kind.
	ByKind map[string]int `json:"by_kind"`
	// Status counts responses by HTTP status code (all requests,
	// including warmup). Transport errors count under "error".
	Status map[string]int64 `json:"status"`
	// Overload429 and Timeout504 pull the two back-pressure codes out
	// for direct reading.
	Overload429 int64 `json:"overload_429"`
	Timeout504  int64 `json:"timeout_504"`
	ServerErr5x int64 `json:"server_5xx"`

	// Measured section: post-warmup requests only.
	Measured     int     `json:"measured"`
	CachedOK     int64   `json:"cached_ok"`
	HitRatio     float64 `json:"hit_ratio"`
	Forwarded    int64   `json:"forwarded"`
	ForwardRatio float64 `json:"forward_ratio"`
	// Retried counts requests (warmup included) whose entry replica
	// refused the connection and another replica answered instead.
	Retried int64 `json:"retried"`

	PerReplica []ReplicaLoad `json:"per_replica,omitempty"`

	// Wall-clock section: reproducible in shape, not in value.
	Latency       LatencySummary `json:"latency"`
	ElapsedMS     int64          `json:"elapsed_ms"`
	ThroughputRPS float64        `json:"throughput_rps"`
}

// generateWorkload pre-draws the full request sequence from the seed.
func generateWorkload(cfg LoadgenConfig) []loadgenRequest {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Programs-1))
	out := make([]loadgenRequest, cfg.Requests)
	for i := range out {
		var kind string
		switch pick := rng.Intn(100); {
		case pick < cfg.Mix.CheckPct:
			kind = "selfstab"
		case pick < cfg.Mix.CheckPct+cfg.Mix.LintPct:
			kind = "lint"
		default:
			kind = "refine"
		}
		out[i] = loadgenRequest{
			kind:    kind,
			program: int(zipf.Uint64()),
			addr:    cfg.Addrs[i%len(cfg.Addrs)],
		}
	}
	return out
}

// body builds the request path and JSON body for one workload entry.
func (lr loadgenRequest) bodyAndPath(timeoutMS int64) (string, []byte) {
	src := LoadgenProgram(lr.program)
	switch lr.kind {
	case "selfstab":
		b, _ := json.Marshal(map[string]any{"source": src, "timeout_ms": timeoutMS})
		return "/v1/selfstab", b
	case "lint":
		b, _ := json.Marshal(map[string]any{"source": src, "timeout_ms": timeoutMS})
		return "/v1/lint", b
	default: // refine: a program refines itself — same-shape guaranteed
		b, _ := json.Marshal(map[string]any{"concrete": src, "abstract": src, "timeout_ms": timeoutMS})
		return "/v1/refine", b
	}
}

// loadgenOutcome is what one request contributes to the report.
type loadgenOutcome struct {
	status    int // 0 = no replica accepted the request
	cached    bool
	forwarded bool
	retried   bool // entry replica failed; another one answered
	elapsed   time.Duration
	measured  bool
}

// RunLoadgen executes the workload and aggregates the report. With
// Concurrency 1 requests run strictly in workload order (closed loop
// of one); otherwise Concurrency closed-loop workers each own the
// workload slice congruent to their index.
func RunLoadgen(ctx context.Context, cfg LoadgenConfig) (*LoadgenReport, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("loadgen: no target addresses")
	}
	if cfg.Warmup >= cfg.Requests {
		return nil, fmt.Errorf("loadgen: warmup %d swallows all %d requests", cfg.Warmup, cfg.Requests)
	}
	workload := generateWorkload(cfg)
	outcomes := make([]loadgenOutcome, len(workload))
	client := &http.Client{}

	start := time.Now() //gcvet:detrand-ok loadgen exists to measure real request latency
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(workload); i += cfg.Concurrency {
				select {
				case <-ctx.Done():
					return
				default:
				}
				outcomes[i] = runOne(ctx, client, cfg.Addrs, workload[i], cfg.TimeoutMS)
				outcomes[i].measured = i >= cfg.Warmup
				if cfg.Pace > 0 {
					time.Sleep(cfg.Pace)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start) //gcvet:detrand-ok loadgen exists to measure real request latency

	rep := &LoadgenReport{
		Addrs: cfg.Addrs, Requests: cfg.Requests, Warmup: cfg.Warmup,
		Programs: cfg.Programs, Seed: cfg.Seed, Mix: cfg.Mix,
		ByKind: make(map[string]int), Status: make(map[string]int64),
		ElapsedMS: elapsed.Milliseconds(),
	}
	var lat []time.Duration
	for i, o := range outcomes {
		rep.ByKind[workload[i].kind]++
		if o.status == 0 {
			rep.Status["error"]++
		} else {
			rep.Status[fmt.Sprintf("%d", o.status)]++
		}
		if o.retried {
			rep.Retried++
		}
		switch {
		case o.status == http.StatusTooManyRequests:
			rep.Overload429++
		case o.status == http.StatusGatewayTimeout:
			rep.Timeout504++
		case o.status >= 500:
			rep.ServerErr5x++
		}
		if !o.measured {
			continue
		}
		rep.Measured++
		if o.status == http.StatusOK {
			if o.cached {
				rep.CachedOK++
			}
			lat = append(lat, o.elapsed)
		}
		if o.forwarded {
			rep.Forwarded++
		}
	}
	if rep.Measured > 0 {
		rep.HitRatio = round4(float64(rep.CachedOK) / float64(rep.Measured))
		rep.ForwardRatio = round4(float64(rep.Forwarded) / float64(rep.Measured))
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		rep.Latency = LatencySummary{
			P50US:  lat[len(lat)*50/100].Microseconds(),
			P99US:  lat[min(len(lat)*99/100, len(lat)-1)].Microseconds(),
			P999US: lat[min(len(lat)*999/1000, len(lat)-1)].Microseconds(),
			MaxUS:  lat[len(lat)-1].Microseconds(),
		}
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rep.ThroughputRPS = round4(float64(cfg.Requests) / sec)
	}
	rep.PerReplica = fetchReplicaLoads(client, cfg.Addrs)
	return rep, nil
}

func round4(f float64) float64 {
	return float64(int64(f*10_000+0.5)) / 10_000
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runOne issues one request and classifies the outcome. A transport
// error — the entry replica crashed mid-campaign — retries on the
// other replicas in order, exactly as a client with a replica list
// would; only a request no replica accepts records an error.
func runOne(ctx context.Context, client *http.Client, addrs []string, lr loadgenRequest, timeoutMS int64) loadgenOutcome {
	path, body := lr.bodyAndPath(timeoutMS)
	started := time.Now() //gcvet:detrand-ok per-request wall-clock latency is the measured quantity
	var resp *http.Response
	tryAddr := func(addr string) bool {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
		if err != nil {
			return false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err = client.Do(req)
		return err == nil
	}
	ok := tryAddr(lr.addr)
	for i := 0; !ok && i < len(addrs); i++ {
		if addrs[i] != lr.addr {
			ok = tryAddr(addrs[i])
		}
	}
	if !ok {
		return loadgenOutcome{retried: true}
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, fleetMaxBody))
	out := loadgenOutcome{
		status:    resp.StatusCode,
		forwarded: resp.Header.Get("X-Fleet-Owner") != "",
		retried:   resp.Request.URL.Host != lr.addr,
		elapsed:   time.Since(started), //gcvet:detrand-ok per-request wall-clock latency is the measured quantity
	}
	if resp.StatusCode == http.StatusOK {
		var probe struct {
			Cached bool `json:"cached"`
		}
		if json.Unmarshal(raw, &probe) == nil {
			out.cached = probe.Cached
		}
	}
	return out
}

// fetchJournalGauges reads one replica's /metrics journal section; nil
// for journal-less replicas or unreachable targets.
func fetchJournalGauges(client *http.Client, addr string) *service.JournalMetricsSnapshot {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, fleetMaxBody))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var snap service.MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil
	}
	return snap.Journal
}

// fetchReplicaLoads polls each target's /fleetz. Targets that do not
// answer (a plain checkd, a crashed replica) are skipped.
func fetchReplicaLoads(client *http.Client, addrs []string) []ReplicaLoad {
	var out []ReplicaLoad
	for _, addr := range addrs {
		resp, err := client.Get("http://" + addr + "/fleetz")
		if err != nil {
			continue
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, fleetMaxBody))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		var st FleetzStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			continue
		}
		rl := ReplicaLoad{
			Replica:         st.Replica,
			Forwards:        st.Forwards,
			ForwardedServed: st.ForwardedServed,
			LocalFallbacks:  st.LocalFallbacks,
			CacheHits:       st.CacheHits,
			CacheMisses:     st.CacheMisses,
			AEJournalRounds: st.AEJournalRounds,

			BreakerOpens:     st.BreakerOpens,
			BreakerHalfOpens: st.BreakerHalfOpens,
			BreakerSkips:     st.BreakerSkips,
			HedgesFired:      st.HedgesFired,
			HedgeLocalWins:   st.HedgeLocalWins,
			BudgetExhausted:  st.BudgetExhausted,
			Quarantined:      st.Quarantined,
		}
		if total := st.CacheHits + st.CacheMisses; total > 0 {
			rl.HitRatio = round4(float64(st.CacheHits) / float64(total))
		}
		if st.HedgesFired > 0 {
			rl.HedgeWinRatio = round4(float64(st.HedgeLocalWins) / float64(st.HedgesFired))
		}
		rl.Journal = fetchJournalGauges(client, addr)
		out = append(out, rl)
	}
	return out
}
