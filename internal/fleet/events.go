package fleet

// Event kind registry: the closed vocabulary of the fleet's
// control-plane event stream. Campaign judges and the loadgen report
// match on these strings, and gcvet's eventkind analyzer rejects
// inline literals so a typo cannot mint an unmatchable kind.
const (
	// KindReplicaJoined marks a replica entering the membership ring.
	KindReplicaJoined = "replica-joined"
	// KindReplicaLeft marks a graceful departure.
	KindReplicaLeft = "replica-left"
	// KindReplicaSuspected marks an observer removing a silent peer
	// from its ring view after missed heartbeats.
	KindReplicaSuspected = "replica-suspected"
	// KindReplicaRecovered marks an observer re-admitting a peer.
	KindReplicaRecovered = "replica-recovered"
	// KindCrash records a campaign-injected replica crash.
	KindCrash = "crash"
	// KindRestart records a crashed replica coming back.
	KindRestart = "restart"
	// KindPartition records a campaign-injected network cut.
	KindPartition = "partition"
	// KindHeal records a cut being removed.
	KindHeal = "heal"
	// KindAERound records one anti-entropy pull completing.
	KindAERound = "ae-round"
)
