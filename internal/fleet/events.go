package fleet

// Event kind registry: the closed vocabulary of the fleet's
// control-plane event stream. Campaign judges and the loadgen report
// match on these strings, and gcvet's eventkind analyzer rejects
// inline literals so a typo cannot mint an unmatchable kind.
const (
	// KindReplicaJoined marks a replica entering the membership ring.
	KindReplicaJoined = "replica-joined"
	// KindReplicaLeft marks a graceful departure.
	KindReplicaLeft = "replica-left"
	// KindReplicaSuspected marks an observer removing a silent peer
	// from its ring view after missed heartbeats.
	KindReplicaSuspected = "replica-suspected"
	// KindReplicaRecovered marks an observer re-admitting a peer.
	KindReplicaRecovered = "replica-recovered"
	// KindCrash records a campaign-injected replica crash.
	KindCrash = "crash"
	// KindRestart records a crashed replica coming back.
	KindRestart = "restart"
	// KindPartition records a campaign-injected network cut.
	KindPartition = "partition"
	// KindHeal records a cut being removed.
	KindHeal = "heal"
	// KindAERound records one anti-entropy pull completing.
	KindAERound = "ae-round"
	// KindBreakerOpen marks a peer's circuit breaker tripping open
	// (consecutive failures or a p99 latency breach).
	KindBreakerOpen = "breaker-open"
	// KindBreakerHalfOpen marks an open breaker's hold expiring and a
	// single probe being admitted.
	KindBreakerHalfOpen = "breaker-half-open"
	// KindBreakerClosed marks a half-open probe succeeding and the
	// breaker closing.
	KindBreakerClosed = "breaker-closed"
	// KindQuarantined marks a flapping peer being quarantined with an
	// exponential hold: the ring excludes it and anti-entropy skips it.
	KindQuarantined = "quarantined"
	// KindParoled marks a quarantine hold expiring; the peer re-enters
	// as suspected and must earn a heartbeat to recover.
	KindParoled = "paroled"
	// KindSlowPeer records a campaign-injected data-plane latency fault
	// (gray failure: pings stay fast, forwards drag).
	KindSlowPeer = "slow-peer"
	// KindGarbageReply records a campaign-injected hostile-reply fault:
	// well-framed RPC replies with out-of-range fields.
	KindGarbageReply = "garbage-reply"
	// KindAsymPartition records a campaign-injected one-way cut: A's
	// calls to B fail while B's calls to A still succeed.
	KindAsymPartition = "asym-partition"
)
