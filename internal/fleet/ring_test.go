package fleet

import (
	"fmt"
	"testing"
)

// Two rings that agree on the member set agree on every owner, no
// matter the order members joined — ownership is a pure function of
// the set, which is what lets every replica route without
// coordination.
func TestRingDeterministicOwnership(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	for _, m := range []string{"r0", "r1", "r2"} {
		a.Add(m)
	}
	for _, m := range []string{"r2", "r0", "r1"} {
		b.Add(m)
	}
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("sha256:%064d", i)
		oa, ob := a.Owner(key), b.Owner(key)
		if oa != ob {
			t.Fatalf("key %q: owner %q vs %q for the same member set", key, oa, ob)
		}
		counts[oa]++
	}
	for _, m := range []string{"r0", "r1", "r2"} {
		if counts[m] == 0 {
			t.Fatalf("member %s owns no keys out of 200: distribution %v", m, counts)
		}
	}
}

// Removing one member re-homes only that member's keys: every key
// owned by a survivor keeps its owner. This is the property that makes
// a crash cost ≈1/N of the cache, not all of it.
func TestRingRebalanceMovesOnlyLostArcs(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"r0", "r1", "r2"} {
		r.Add(m)
	}
	before := map[string]string{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		before[key] = r.Owner(key)
	}
	r.Remove("r1")
	moved := 0
	for key, owner := range before {
		now := r.Owner(key)
		if owner != "r1" {
			if now != owner {
				t.Fatalf("key %q moved from surviving member %s to %s", key, owner, now)
			}
			continue
		}
		if now == "r1" {
			t.Fatalf("key %q still owned by removed member", key)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("no keys were owned by r1 before removal; test is vacuous")
	}
	// Re-adding restores the original assignment exactly.
	r.Add("r1")
	for key, owner := range before {
		if now := r.Owner(key); now != owner {
			t.Fatalf("after re-add, key %q owned by %s, want %s", key, now, owner)
		}
	}
}

// An empty ring owns nothing; a one-member ring owns everything.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(4)
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	r.Add("solo")
	for i := 0; i < 10; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)); got != "solo" {
			t.Fatalf("one-member ring owner = %q", got)
		}
	}
	r.Remove("solo")
	if r.Size() != 0 || r.Owner("x") != "" {
		t.Fatal("ring not empty after removing its only member")
	}
}
