package fleet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Per-peer circuit breaker: the failure-domain boundary between one
// replica and one peer. A peer that fails forwards consecutively — or
// answers them, but slower than the latency breach — trips its breaker
// open, and routed requests skip straight to local compute instead of
// paying the dial-and-timeout tax on every hop. After a seeded
// exponential backoff the breaker goes half-open and admits exactly one
// probe; a probe success closes it, a probe failure re-opens it with a
// doubled hold. The same tracker that feeds the breach trip derives the
// hedge delay (hedge.go), so "how slow is this peer lately" is measured
// once and consulted twice.

// Breaker state names, as reported by /fleetz and /metrics.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

const (
	// breakerSamples is the per-peer latency ring size. 64 round trips
	// of memory is enough for a stable p95/p99 and cheap to sort.
	breakerSamples = 64
	// breachMinSamples gates the latency trip: below it a p99 is one
	// unlucky round trip, not a sick peer.
	breachMinSamples = 4
	// breakerMaxBackoffShift caps the open→half-open hold doubling at
	// 16× the base cooldown.
	breakerMaxBackoffShift = 4

	// hedgeDelayCold is the hedge delay before the tracker has enough
	// samples to derive one.
	hedgeDelayCold = 25 * time.Millisecond
	// hedgeDelayFloor / hedgeDelayCap clamp the derived delay: below
	// the floor hedging doubles steady-state load for nothing, and a
	// delay derived from an already-sick peer must not grow past the
	// cap or the hedge would never fire in time to help.
	hedgeDelayFloor = 5 * time.Millisecond
	hedgeDelayCap   = 40 * time.Millisecond
)

// wallNow reads the wall clock for fleet I/O pacing. Every wall-clock
// read the fleet's data plane makes funnels through here, so the
// detrand waiver below is the package's single one for request-path
// time (breakers themselves take an injected clock for tests).
func wallNow() time.Time {
	return time.Now() //gcvet:detrand-ok real I/O pacing (breaker holds, deadline budgets, hedge delays) on live TCP replicas
}

// breakerEvent is a state transition for the monitor; the caller owns
// the peer id and observer.
type breakerEvent struct {
	kind   string
	detail string
}

// breakerStats is a point-in-time counter snapshot.
type breakerStats struct {
	state     string
	opens     int64
	halfOpens int64
	closes    int64
	skips     int64
}

// breaker is one peer's circuit breaker plus its latency tracker. All
// methods are nil-safe so call sites need no peer-existence ceremony.
type breaker struct {
	failures int           // consecutive failures that trip it; <= 0 disables gating
	breach   time.Duration // p99 latency that trips it; <= 0 disables the latency trip
	cooldown time.Duration // base open→half-open hold
	now      func() time.Time
	rng      *rand.Rand // seeded jitter; guarded by mu

	mu          sync.Mutex
	state       string
	consecFails int
	streak      int // consecutive opens without an intervening close, for backoff
	until       time.Time
	probing     bool // a half-open probe is in flight

	lat    [breakerSamples]time.Duration
	latN   int // samples held (≤ breakerSamples)
	latIdx int // next write position

	opens     int64
	halfOpens int64
	closes    int64
	skips     int64
}

// newBreaker builds one peer's breaker from the fleet config. Negative
// config values mean "disabled" and are normalized to zero here.
func newBreaker(cfg Config, seed int64) *breaker {
	failures := cfg.BreakerFailures
	if failures < 0 {
		failures = 0
	}
	breach := cfg.BreakerLatencyBreach
	if breach < 0 {
		breach = 0
	}
	return &breaker{
		failures: failures,
		breach:   breach,
		cooldown: cfg.BreakerCooldown,
		now:      wallNow,
		rng:      rand.New(rand.NewSource(seed)),
		state:    breakerClosed,
	}
}

// allow reports whether a call to the peer may proceed. An open breaker
// whose hold expired transitions to half-open and admits the caller as
// the single probe; an open (or probing half-open) breaker refuses, and
// the caller should go straight to local compute.
func (b *breaker) allow() (bool, []breakerEvent) {
	if b == nil || b.failures <= 0 {
		return true, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Before(b.until) {
			b.skips++
			return false, nil
		}
		b.state = breakerHalfOpen
		b.halfOpens++
		b.probing = true
		return true, []breakerEvent{{KindBreakerHalfOpen, "hold expired; probing"}}
	case breakerHalfOpen:
		if b.probing {
			b.skips++
			return false, nil
		}
		b.probing = true
		return true, nil
	}
	return true, nil
}

// success records one completed round trip. It always feeds the latency
// tracker (hedge delays want samples even with gating disabled); with
// gating enabled it closes a half-open breaker and checks the closed
// state for a p99 breach.
func (b *breaker) success(rtt time.Duration) []breakerEvent {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.recordLocked(rtt)
	if b.failures <= 0 {
		return nil
	}
	b.consecFails = 0
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerClosed
		b.probing = false
		b.streak = 0
		b.closes++
		return []breakerEvent{{KindBreakerClosed, "probe succeeded"}}
	case breakerClosed:
		if b.breach > 0 && b.latN >= breachMinSamples {
			if p99 := b.quantileLocked(0.99); p99 > b.breach {
				return b.tripLocked(fmt.Sprintf("p99 %v over breach %v", p99, b.breach))
			}
		}
	}
	return nil
}

// failure records one failed call: a failed probe re-opens immediately,
// and the configured number of consecutive closed-state failures trips
// the breaker.
func (b *breaker) failure() []breakerEvent {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failures <= 0 {
		return nil
	}
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		return b.tripLocked("probe failed")
	case breakerClosed:
		b.consecFails++
		if b.consecFails >= b.failures {
			return b.tripLocked(fmt.Sprintf("%d consecutive failures", b.consecFails))
		}
	}
	// Open: a background (hedged) call finishing late; the trip already
	// accounted for this peer.
	return nil
}

// tripLocked opens the breaker: exponential hold with seeded jitter,
// and the latency window cleared so stale sick-peer samples cannot
// re-trip the breach the moment a recovered peer closes it again.
func (b *breaker) tripLocked(why string) []breakerEvent {
	b.state = breakerOpen
	b.consecFails = 0
	b.probing = false
	b.opens++
	b.streak++
	shift := b.streak - 1
	if shift > breakerMaxBackoffShift {
		shift = breakerMaxBackoffShift
	}
	hold := b.cooldown << shift
	if jitter := int64(hold) / 4; jitter > 0 {
		hold += time.Duration(b.rng.Int63n(jitter))
	}
	b.until = b.now().Add(hold)
	b.latN = 0
	b.latIdx = 0
	return []breakerEvent{{KindBreakerOpen, why}}
}

// recordLocked appends one latency sample to the ring.
func (b *breaker) recordLocked(rtt time.Duration) {
	b.lat[b.latIdx] = rtt
	b.latIdx = (b.latIdx + 1) % breakerSamples
	if b.latN < breakerSamples {
		b.latN++
	}
}

// quantileLocked returns the q-quantile of the held samples (nearest
// rank on a sorted copy); zero with no samples.
func (b *breaker) quantileLocked(q float64) time.Duration {
	if b.latN == 0 {
		return 0
	}
	tmp := make([]time.Duration, b.latN)
	copy(tmp, b.lat[:b.latN])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(q * float64(b.latN))
	if i >= b.latN {
		i = b.latN - 1
	}
	return tmp[i]
}

// hedgeDelay derives how long a forward to this peer may be in flight
// before local compute races it: twice the observed p95, clamped.
func (b *breaker) hedgeDelay() time.Duration {
	if b == nil {
		return hedgeDelayCold
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.latN < breachMinSamples {
		return hedgeDelayCold
	}
	d := 2 * b.quantileLocked(0.95)
	if d < hedgeDelayFloor {
		d = hedgeDelayFloor
	}
	if d > hedgeDelayCap {
		d = hedgeDelayCap
	}
	return d
}

// reset returns the breaker to cold closed state (replica restart).
func (b *breaker) reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecFails = 0
	b.streak = 0
	b.until = time.Time{}
	b.probing = false
	b.latN = 0
	b.latIdx = 0
}

// currentState returns the breaker's state name.
func (b *breaker) currentState() string {
	if b == nil {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// stats snapshots the lifetime transition counters.
func (b *breaker) stats() breakerStats {
	if b == nil {
		return breakerStats{state: breakerClosed}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStats{
		state:     b.state,
		opens:     b.opens,
		halfOpens: b.halfOpens,
		closes:    b.closes,
		skips:     b.skips,
	}
}
