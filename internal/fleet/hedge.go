package fleet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"time"

	"repro/internal/service"
)

// errBreakerOpen is the refusal a gated call gets when the peer's
// breaker is open: the caller already knows the peer is sick, so no
// wire time is spent confirming it.
var errBreakerOpen = errors.New("fleet: peer breaker is open")

// Hedged forwards and deadline-budget propagation: the owner-miss path
// of ServeHTTP. A routed request whose owner is a peer consults the
// peer's breaker first (an open breaker skips the forward entirely),
// ships the *remaining* deadline budget in the RPC so the owner never
// computes past what the client will wait for, and — once the forward
// has been in flight longer than the peer's derived hedge delay —
// races local compute against it and answers with whichever finishes
// first. The forward loser always runs to completion in the
// background: its outcome is what feeds the breaker's failure counter
// and latency tracker, so a slow peer trips the p99 breach even though
// every hedged request stopped waiting for it.

// budgetFloor is the smallest remaining budget worth shipping to an
// owner: below it the hop would spend the whole budget on the wire, so
// the owner refuses (budget_exhausted) and the client computes locally
// with what little remains.
const budgetFloor = 5 * time.Millisecond

// routeToOwner serves one routed request owned by a peer. started is
// when the fleet layer first saw the request; the budget shrinks from
// there.
func (rp *Replica) routeToOwner(svc *service.Server, w http.ResponseWriter, r *http.Request, body []byte, id, owner string, info service.RouteInfo, started time.Time) {
	deadline := started.Add(rp.f.cfg.Service.RequestTimeout(info.TimeoutMS))
	br := rp.peerBreaker(owner)

	allowed, evs := br.allow()
	rp.noteBreakerEvents(owner, evs)
	remaining := deadline.Sub(wallNow())
	if !allowed || remaining <= 0 {
		rp.localFallbacks.Add(1)
		rp.serveLocalBudget(svc, w, r, body, id, deadline)
		return
	}
	fwdTimeout := rp.f.cfg.ForwardTimeout
	if remaining < fwdTimeout {
		fwdTimeout = remaining
	}
	req := rpcRequest{
		Op: "forward", From: rp.id, ID: id, Path: r.URL.Path, Body: body,
		// Round up: a sub-millisecond remainder must not truncate to
		// "no budget declared".
		TimeoutMS: int64((fwdTimeout + time.Millisecond - 1) / time.Millisecond),
	}

	type fwdResult struct {
		reply rpcReply
		err   error
	}
	fwdc := make(chan fwdResult, 1)
	//gcvet:leak-ok bounded by fwdTimeout: the call's I/O deadline forces a return, and the result channel is buffered
	go func() {
		t0 := wallNow()
		reply, err := rp.callPeer(owner, req, fwdTimeout)
		rp.recordForwardOutcome(owner, reply, err, wallNow().Sub(t0))
		fwdc <- fwdResult{reply, err}
	}()

	hd := rp.hedgeDelayFor(br)
	if hd >= 0 {
		timer := time.NewTimer(hd)
		defer timer.Stop()
		select {
		case res := <-fwdc:
			rp.finishForward(svc, w, r, body, id, owner, deadline, res.reply, res.err)
			return
		case <-timer.C:
		}
		// Hedge fires: race local compute against the in-flight forward.
		rp.hedgesFired.Add(1)
		lctx, lcancel := context.WithDeadline(r.Context(), deadline)
		defer lcancel()
		localc := make(chan *responseRecorder, 1)
		//gcvet:leak-ok bounded by the request deadline on lctx, and the result channel is buffered
		go func() {
			rec := &responseRecorder{header: make(http.Header)}
			r2 := r.Clone(lctx)
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
			r2.Header.Set("X-Request-Id", id)
			svc.ServeHTTP(rec, r2)
			localc <- rec
		}()
		select {
		case res := <-fwdc:
			if res.err == nil && res.reply.OK && !res.reply.BudgetExhausted {
				// Forward wins: cancel the local racer, it has nothing
				// left to contribute.
				rp.hedgeForwardWins.Add(1)
				rp.forwards.Add(1)
				lcancel()
				writeForwardReply(w, id, owner, res.reply)
				return
			}
			// The forward failed after the hedge fired; the local racer
			// is now the only path. (Its recorder already holds — or
			// will hold — the answer; waiting is correct, not a stall:
			// the deadline on lctx bounds it.)
			rp.countForwardFailure(res.reply, res.err)
			rp.localFallbacks.Add(1)
			writeRecorded(w, <-localc)
		case rec := <-localc:
			// Local wins: answer now. The forward keeps running in the
			// background, feeding the breaker when it resolves.
			rp.hedgeLocalWins.Add(1)
			rp.localFallbacks.Add(1)
			writeRecorded(w, rec)
		}
		return
	}
	// Hedging disabled: wait the forward out (PR-6 behavior).
	res := <-fwdc
	rp.finishForward(svc, w, r, body, id, owner, deadline, res.reply, res.err)
}

// finishForward writes a resolved (un-hedged) forward: the peer's
// answer on success, local compute under the remaining budget on any
// failure or budget refusal.
func (rp *Replica) finishForward(svc *service.Server, w http.ResponseWriter, r *http.Request, body []byte, id, owner string, deadline time.Time, reply rpcReply, err error) {
	if err == nil && reply.OK && !reply.BudgetExhausted {
		rp.forwards.Add(1)
		writeForwardReply(w, id, owner, reply)
		return
	}
	rp.countForwardFailure(reply, err)
	rp.localFallbacks.Add(1)
	rp.serveLocalBudget(svc, w, r, body, id, deadline)
}

// countForwardFailure classifies a failed forward for the counters.
func (rp *Replica) countForwardFailure(reply rpcReply, err error) {
	if err == nil && reply.OK && reply.BudgetExhausted {
		rp.budgetExhausted.Add(1)
		return
	}
	rp.forwardErrors.Add(1)
}

// serveLocalBudget runs local compute bounded by the request's
// remaining deadline budget instead of a fresh full timeout.
func (rp *Replica) serveLocalBudget(svc *service.Server, w http.ResponseWriter, r *http.Request, body []byte, id string, deadline time.Time) {
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()
	rp.serveLocal(svc, w, r.WithContext(ctx), body, id)
}

// writeForwardReply relays an owner's recorded response.
func writeForwardReply(w http.ResponseWriter, id, owner string, reply rpcReply) {
	w.Header().Set("X-Request-Id", id)
	w.Header().Set("X-Fleet-Owner", owner)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(reply.Status)
	_, _ = w.Write(reply.Body)
}

// writeRecorded replays a locally recorded response onto the real
// writer.
func writeRecorded(w http.ResponseWriter, rec *responseRecorder) {
	h := w.Header()
	for k, vs := range rec.header {
		h[k] = vs
	}
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	_, _ = w.Write(rec.buf.Bytes())
}

// recordForwardOutcome feeds one resolved peer call to the breaker. A
// budget-exhausted refusal is a *healthy* peer answering promptly that
// time ran out — a success for breaker purposes.
func (rp *Replica) recordForwardOutcome(owner string, reply rpcReply, err error, rtt time.Duration) {
	br := rp.peerBreaker(owner)
	if br == nil {
		return
	}
	if err == nil && reply.OK {
		rp.noteBreakerEvents(owner, br.success(rtt))
		return
	}
	rp.noteBreakerEvents(owner, br.failure())
}

// peerBreaker returns a peer's breaker (nil for unknown ids; breaker
// methods are nil-safe).
func (rp *Replica) peerBreaker(id string) *breaker {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if p, ok := rp.peers[id]; ok {
		return p.br
	}
	return nil
}

// noteBreakerEvents emits breaker transitions to the fleet monitor.
func (rp *Replica) noteBreakerEvents(peerID string, evs []breakerEvent) {
	for _, ev := range evs {
		rp.f.mon.emit(ev.kind, peerID, rp.id, ev.detail)
	}
}

// hedgeDelayFor resolves the effective hedge delay: fixed when
// configured, per-peer derived when automatic, -1 when disabled.
func (rp *Replica) hedgeDelayFor(br *breaker) time.Duration {
	cfg := rp.f.cfg
	if cfg.HedgeDelay < 0 {
		return -1
	}
	if cfg.HedgeDelay > 0 {
		return cfg.HedgeDelay
	}
	return br.hedgeDelay()
}

// callPeerGated is callPeer behind the peer's breaker: anti-entropy
// uses it so digest/journal traffic both respects an open breaker and
// feeds the same failure counter and latency tracker forwards do.
func (rp *Replica) callPeerGated(id string, req rpcRequest, timeout time.Duration) (rpcReply, error) {
	br := rp.peerBreaker(id)
	allowed, evs := br.allow()
	rp.noteBreakerEvents(id, evs)
	if !allowed {
		return rpcReply{}, errBreakerOpen
	}
	t0 := wallNow()
	reply, err := rp.callPeer(id, req, timeout)
	rp.recordForwardOutcome(id, reply, err, wallNow().Sub(t0))
	return reply, err
}
