package fleet

import (
	"context"
	"reflect"
	"testing"
)

// Sequential loadgen with a fixed seed produces identical count
// sections across fresh fleets — the property experiment E19 and
// BENCH_fleet.json stand on. The run itself must see zero 5xx and a
// warm cache must clear the 60% aggregate hit bar.
func TestLoadgenDeterministicCounts(t *testing.T) {
	run := func() *LoadgenReport {
		f := testFleet(t, 3, nil)
		rep, err := RunLoadgen(context.Background(), LoadgenConfig{
			Addrs:    f.HTTPAddrs(),
			Requests: 90,
			Warmup:   30,
			Programs: 6,
			Seed:     7,
		})
		if err != nil {
			t.Fatalf("loadgen: %v", err)
		}
		return rep
	}
	a := run()
	b := run()

	if a.ServerErr5x != 0 || a.Status["error"] != 0 {
		t.Fatalf("healthy fleet produced failures: %+v", a.Status)
	}
	if a.HitRatio < 0.6 {
		t.Fatalf("post-warmup hit ratio %.4f below 0.6; report: %+v", a.HitRatio, a)
	}
	if a.Forwarded == 0 {
		t.Fatal("no request was ever forwarded; routing is vacuous")
	}
	total := 0
	for _, n := range a.ByKind {
		total += n
	}
	if total != 90 {
		t.Fatalf("by_kind sums to %d, want 90: %v", total, a.ByKind)
	}

	type counts struct {
		ByKind    map[string]int
		Status    map[string]int64
		Measured  int
		CachedOK  int64
		HitRatio  float64
		Forwarded int64
		PerRep    []ReplicaLoad
	}
	strip := func(r *LoadgenReport) counts {
		per := make([]ReplicaLoad, len(r.PerReplica))
		copy(per, r.PerReplica)
		for i := range per {
			per[i].LocalFallbacks = 0 // timing-dependent under heartbeat races
		}
		return counts{r.ByKind, r.Status, r.Measured, r.CachedOK, r.HitRatio, r.Forwarded, per}
	}
	if !reflect.DeepEqual(strip(a), strip(b)) {
		t.Fatalf("same seed, different counts:\n%+v\n%+v", strip(a), strip(b))
	}
}
