package fleet

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/service"
)

// Reply validation is the semantic tier above the frame codec: a
// well-framed reply whose declared fields cannot be honest is an error
// (and a breaker-counted failure at the call site), never a wedge.
func TestValidateReply(t *testing.T) {
	forward := rpcRequest{Op: "forward"}
	digest := rpcRequest{Op: "digest"}
	journal := rpcRequest{Op: "journal", Since: 40}
	cases := []struct {
		name    string
		req     rpcRequest
		reply   rpcReply
		wantErr bool
	}{
		{"forward ok", forward, rpcReply{OK: true, Status: 200, Body: []byte(`{"ok":true}`)}, false},
		{"forward 4xx ok", forward, rpcReply{OK: true, Status: 429, Body: []byte(`{"error":"busy"}`)}, false},
		{"forward budget-exhausted carries no status", forward, rpcReply{OK: true, BudgetExhausted: true}, false},
		{"forward status below range", forward, rpcReply{OK: true, Status: 42}, true},
		{"forward status above range", forward, rpcReply{OK: true, Status: 999}, true},
		{"forward truncated body", forward, rpcReply{OK: true, Status: 200, Body: []byte(`{"truncated`)}, true},
		{"forward empty body ok", forward, rpcReply{OK: true, Status: 204}, false},
		{"not-ok reply is the peer's honest error", forward, rpcReply{OK: false, Err: "down"}, false},
		{"digest ok", digest, rpcReply{OK: true, Entries: 12}, false},
		{"digest negative entries", digest, rpcReply{OK: true, Entries: -7}, true},
		{"digest entry flood", digest, rpcReply{OK: true, Entries: maxReplyEntries + 1}, true},
		{"journal ok", journal, rpcReply{OK: true, Entries: 3, Next: 43}, false},
		{"journal cursor regression", journal, rpcReply{OK: true, Entries: 0, Next: 39}, true},
		{"journal hole may rewind", journal, rpcReply{OK: true, Hole: true, Next: 7}, false},
		{"oversized body", forward, rpcReply{OK: true, Status: 200, Body: make([]byte, maxRPCFrameBytes+1)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateReply(tc.req, tc.reply)
			if (err != nil) != tc.wantErr {
				t.Fatalf("validateReply = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

// An owner refuses a forward whose remaining deadline budget is below
// the floor — budget_exhausted, no compute — and honors a workable
// budget as its deadline.
func TestHandleForwardBudgetFloor(t *testing.T) {
	f := testFleet(t, 1, nil)
	rp := f.Replica(0)
	body := []byte(fmt.Sprintf(`{"source": %q}`, tinyProgram(0)))

	reply := rp.handleForward(rpcRequest{Op: "forward", Path: "/v1/lint", Body: body, TimeoutMS: 1})
	if !reply.OK || !reply.BudgetExhausted {
		t.Fatalf("1ms budget: reply = %+v, want OK budget-exhausted refusal", reply)
	}
	if got := rp.budgetRefused.Load(); got != 1 {
		t.Fatalf("budgetRefused = %d, want 1", got)
	}

	reply = rp.handleForward(rpcRequest{Op: "forward", Path: "/v1/lint", Body: body, TimeoutMS: 5_000})
	if !reply.OK || reply.BudgetExhausted || reply.Status != http.StatusOK {
		t.Fatalf("5s budget: reply status = %d (exhausted=%v), want 200", reply.Status, reply.BudgetExhausted)
	}
}

// End to end: a routed request that arrives at the non-owner with less
// budget than the owner's floor still gets an answer — the owner
// refuses, the entry serves locally — and both sides count it.
func TestFleetBudgetPropagation(t *testing.T) {
	f := testFleet(t, 2, nil)
	body := service.LintRequest{Source: tinyProgram(1), TimeoutMS: 3}
	for round := 0; round < 4; round++ {
		for i, addr := range f.HTTPAddrs() {
			resp, raw := postTo(t, addr, "/v1/lint", body, "")
			if resp.StatusCode >= 500 && resp.StatusCode != http.StatusGatewayTimeout {
				t.Fatalf("replica %d: status %d: %s", i, resp.StatusCode, raw)
			}
		}
	}
	var exhausted, refused int64
	for i := 0; i < f.Replicas(); i++ {
		st := f.Replica(i).Status()
		exhausted += st.BudgetExhausted
		refused += st.BudgetRefused
	}
	if exhausted == 0 || refused == 0 {
		t.Fatalf("budget counters: exhausted=%d refused=%d, want both > 0", exhausted, refused)
	}
}

// A hedged forward is a race with exactly one winner. With every
// peer's data plane slowed far past the hedge delay, local compute
// must win every race the entry replica starts, and the slow forward
// keeps running in the background (it feeds the latency tracker) —
// the response the client sees is the local one.
func TestFleetHedgedForwardLocalWins(t *testing.T) {
	f := testFleet(t, 2, func(c *Config) {
		c.HedgeDelay = 8 * time.Millisecond
		c.BreakerLatencyBreach = -1 // keep the breach from short-circuiting the race
	})
	for i := 0; i < f.Replicas(); i++ {
		f.SlowReplica(i, 150*time.Millisecond)
	}
	body := service.SelfStabRequest{Source: tinyProgram(2), TimeoutMS: 30_000}
	for i, addr := range f.HTTPAddrs() {
		resp, raw := postTo(t, addr, "/v1/selfstab", body, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d: status %d: %s", i, resp.StatusCode, raw)
		}
		// The local winner serves the response, so no forward-owner
		// header may be stamped on it.
		if owner := resp.Header.Get("X-Fleet-Owner"); owner != "" {
			t.Fatalf("replica %d: hedged response claims forward owner %s", i, owner)
		}
	}
	var fired, localWins, forwardWins int64
	for i := 0; i < f.Replicas(); i++ {
		st := f.Replica(i).Status()
		fired += st.HedgesFired
		localWins += st.HedgeLocalWins
		forwardWins += st.HedgeForwardWins
	}
	if fired == 0 {
		t.Fatal("no hedge fired against a 150ms-slow owner with an 8ms hedge delay")
	}
	if localWins != fired || forwardWins != 0 {
		t.Fatalf("hedge wins: fired=%d local=%d forward=%d, want local to win every race", fired, localWins, forwardWins)
	}
}

// With a healthy fast owner, every fired hedge still resolves to
// exactly one winner — whichever side it is — and the client sees one
// coherent 200.
func TestFleetHedgedForwardSingleWinner(t *testing.T) {
	f := testFleet(t, 2, func(c *Config) {
		c.HedgeDelay = time.Nanosecond // race from the first instant
		c.BreakerLatencyBreach = -1
	})
	body := service.SelfStabRequest{Source: tinyProgram(0), TimeoutMS: 30_000}
	for i, addr := range f.HTTPAddrs() {
		resp, raw := postTo(t, addr, "/v1/selfstab", body, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	var fired, localWins, forwardWins int64
	for i := 0; i < f.Replicas(); i++ {
		st := f.Replica(i).Status()
		fired += st.HedgesFired
		localWins += st.HedgeLocalWins
		forwardWins += st.HedgeForwardWins
	}
	if fired == 0 {
		t.Fatal("no hedge fired with a nanosecond hedge delay")
	}
	if localWins+forwardWins != fired {
		t.Fatalf("hedge races: fired=%d local=%d forward=%d, want exactly one winner per race",
			fired, localWins, forwardWins)
	}
}

// A hostile peer that answers data-plane RPCs with garbage costs the
// fleet forwards, never availability: validation turns each reply into
// a local fallback, the breaker opens after the configured streak, and
// every client request is still a 200.
func TestFleetGarbageReplyFallsBackLocally(t *testing.T) {
	f := testFleet(t, 2, nil)
	f.GarbageReplica(1, true)
	for i := 0; i < 12; i++ {
		body := service.LintRequest{Source: tinyProgram(i), TimeoutMS: 30_000}
		resp, raw := postTo(t, f.HTTPAddrs()[0], "/v1/lint", body, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	st := f.Replica(0).Status()
	if st.LocalFallbacks == 0 {
		t.Fatal("no forward fell back locally despite a garbage-talking owner")
	}
	if st.BreakerOpens == 0 {
		t.Fatalf("breaker never opened against the garbage peer (fallbacks=%d)", st.LocalFallbacks)
	}
}

// The flap-quarantine story as a golden event stream: suspect/recover
// twice, quarantine on the third recovery, kill the quarantined
// replica outright, parole on hold expiry, and a clean recovery after
// restart. The observer's filtered stream must match exactly.
func TestFleetQuarantineFlapSequence(t *testing.T) {
	f := testFleet(t, 2, func(c *Config) {
		c.HeartbeatInterval = 15 * time.Millisecond
		c.SuspectAfter = 2
		c.FlapLimit = 2
		c.FlapWindow = time.Minute
		c.QuarantineHold = 250 * time.Millisecond
	})
	flapper := f.Replica(1).ID()

	await := func(kind string, after int, why string) int {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			for _, e := range f.Events() {
				if e.Seq > after && e.Kind == kind && e.Replica == flapper {
					return e.Seq
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("%s: no %s event for %s", why, kind, flapper)
		return 0
	}

	seq := 0
	for i := 0; i < 3; i++ {
		f.CrashReplica(1)
		seq = await(KindReplicaSuspected, seq, fmt.Sprintf("flap %d", i+1))
		if err := f.RestartReplica(1); err != nil {
			t.Fatalf("restart %d: %v", i+1, err)
		}
		if i < 2 {
			seq = await(KindReplicaRecovered, seq, fmt.Sprintf("flap %d", i+1))
		} else {
			seq = await(KindQuarantined, seq, "third recovery")
		}
	}

	// SIGKILL the quarantined replica: nobody pings it, so nothing
	// happens until parole re-admits it to ordinary suspicion.
	f.CrashReplica(1)
	seq = await(KindParoled, seq, "hold expiry")
	if err := f.RestartReplica(1); err != nil {
		t.Fatalf("restart after parole: %v", err)
	}
	await(KindReplicaRecovered, seq, "post-parole restart")

	var got []string
	for _, e := range f.Events() {
		if e.Replica != flapper {
			continue
		}
		switch e.Kind {
		case KindReplicaSuspected, KindReplicaRecovered, KindQuarantined, KindParoled:
			got = append(got, e.Kind)
		}
	}
	want := []string{
		KindReplicaSuspected, KindReplicaRecovered,
		KindReplicaSuspected, KindReplicaRecovered,
		KindReplicaSuspected, KindQuarantined,
		KindParoled, KindReplicaRecovered,
	}
	if len(got) != len(want) {
		t.Fatalf("event stream %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (stream %v)", i, got[i], want[i], got)
		}
	}
}
