package fleet

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/service"
)

// verdictHolder returns the index of the single replica whose cache
// holds exactly one entry, failing if the count is not exactly one.
func verdictHolder(t *testing.T, f *Fleet) int {
	t.Helper()
	holder := -1
	for i := 0; i < f.Replicas(); i++ {
		if len(f.Replica(i).Service().CacheKeys()) == 1 {
			if holder != -1 {
				t.Fatalf("replicas %d and %d both hold the verdict", holder, i)
			}
			holder = i
		}
	}
	if holder == -1 {
		t.Fatal("no replica holds the verdict")
	}
	return holder
}

// In a journal fleet, anti-entropy rounds ship journal suffixes instead
// of digests: the verdict diffuses, the rounds count as journal rounds,
// and a second round pulls nothing because the cursor advanced past the
// already-seen suffix.
func TestFleetJournalSuffixSync(t *testing.T) {
	f := testFleet(t, 2, func(c *Config) { c.Journal = true })
	body := service.SelfStabRequest{Source: tinyProgram(2), TimeoutMS: 30_000}
	resp, raw := postTo(t, f.HTTPAddrs()[0], "/v1/selfstab", body, "journal-seed")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request: %d: %s", resp.StatusCode, raw)
	}
	verdictHolder(t, f)

	if pulled := f.AntiEntropyRound(); pulled != 1 {
		t.Fatalf("journal anti-entropy pulled %d entries, want 1", pulled)
	}
	for i := 0; i < f.Replicas(); i++ {
		rp := f.Replica(i)
		if n := len(rp.Service().CacheKeys()); n != 1 {
			t.Fatalf("replica %d holds %d entries after sync, want 1", i, n)
		}
		if rp.aeJournalRounds.Load() == 0 {
			t.Fatalf("replica %d fell back to digest mode in a journal fleet", i)
		}
	}
	// The cursors advanced: re-running the round re-ships nothing.
	if pulled := f.AntiEntropyRound(); pulled != 0 {
		t.Fatalf("second round re-pulled %d entries, want 0", pulled)
	}
	// The non-owner serves the synced verdict locally, no forward hop.
	for i, addr := range f.HTTPAddrs() {
		resp, raw := postTo(t, addr, "/v1/selfstab", body, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d post-sync: %d: %s", i, resp.StatusCode, raw)
		}
		if owner := resp.Header.Get("X-Fleet-Owner"); owner != "" {
			t.Fatalf("replica %d still forwards (owner %s) after sync", i, owner)
		}
		var out service.SelfStabResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("replica %d response: %v", i, err)
		}
		if !out.Cached {
			t.Fatalf("replica %d recomputed a synced verdict", i)
		}
	}
	// /fleetz carries the journal head and journal-round counters.
	var st FleetzStatus
	_, fz := getStatus(t, f.HTTPAddrs()[0], "/fleetz")
	if err := json.Unmarshal(fz, &st); err != nil {
		t.Fatalf("fleetz: %v: %s", err, fz)
	}
	if st.JournalLastSeq == 0 || st.AEJournalRounds == 0 {
		t.Fatalf("fleetz misses journal counters: %s", fz)
	}
}

// A crashed journal-fleet replica restarts into its own event history:
// the fleet-held backend survives the crash, replay reconstructs the
// verdict cache, and the identical request serves cached — no
// anti-entropy round needed.
func TestFleetJournalRestartReplaysOwnHistory(t *testing.T) {
	f := testFleet(t, 2, func(c *Config) { c.Journal = true })
	body := service.SelfStabRequest{Source: tinyProgram(1), TimeoutMS: 30_000}
	resp, raw := postTo(t, f.HTTPAddrs()[0], "/v1/selfstab", body, "restart-seed")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request: %d: %s", resp.StatusCode, raw)
	}
	owner := verdictHolder(t, f)

	f.CrashReplica(owner)
	if err := f.RestartReplica(owner); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if !f.AwaitReady(5 * time.Second) {
		t.Fatal("fleet never became ready after restart")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(f.Replica(owner).Service().CacheKeys()) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never replayed its journaled verdict")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, raw = postTo(t, f.Replica(owner).HTTPAddr(), "/v1/selfstab", body, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart request: %d: %s", resp.StatusCode, raw)
	}
	var out service.SelfStabResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("post-restart response: %v", err)
	}
	if !out.Cached {
		t.Fatal("restarted replica recomputed instead of replaying its journal")
	}
}

// When a peer's journal compacts past a requester's cursor, the suffix
// pull reports a hole instead of silently skipping the retired events:
// the requester falls back to a full digest exchange (so pre-compaction
// verdicts still diffuse), counts the hole, and adopts the peer's
// horizon as its cursor so the next round resumes incrementally.
func TestFleetJournalCursorBelowHorizonFallsBackToDigest(t *testing.T) {
	f := testFleet(t, 2, func(c *Config) { c.Journal = true })
	const verdicts = 3
	for i := 0; i < verdicts; i++ {
		body := service.SelfStabRequest{Source: tinyProgram(i), TimeoutMS: 30_000}
		resp, raw := postTo(t, f.HTTPAddrs()[0], "/v1/selfstab", body, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", i, resp.StatusCode, raw)
		}
	}
	// Compact every journal that has history to its head before any
	// cursor has moved: each peer's cursor (0) is now below the horizon
	// of every journal that holds verdicts. (A replica that owned
	// nothing has an empty journal and nothing to compact.)
	compacted := 0
	for i := 0; i < f.Replicas(); i++ {
		svc := f.Replica(i).Service()
		if svc.JournalLastSeq() < 2 {
			continue
		}
		svc.CoverJournalTo(svc.JournalLastSeq())
		if st := svc.CompactJournal(); st.HorizonSeq == 0 {
			t.Fatalf("replica %d never compacted: %+v", i, st)
		}
		compacted++
	}
	if compacted == 0 {
		t.Fatal("no replica had history to compact")
	}

	f.AntiEntropyRound()
	holes := int64(0)
	for i := 0; i < f.Replicas(); i++ {
		rp := f.Replica(i)
		holes += rp.aeJournalHoles.Load()
		if n := len(rp.Service().CacheKeys()); n != verdicts {
			t.Fatalf("replica %d holds %d verdicts after hole fallback, want %d", i, n, verdicts)
		}
	}
	if holes == 0 {
		t.Fatal("no replica detected a compaction hole")
	}
	// Cursors adopted the horizons: the next round is incremental again —
	// no new holes, nothing re-pulled.
	if pulled := f.AntiEntropyRound(); pulled != 0 {
		t.Fatalf("post-resync round re-pulled %d entries", pulled)
	}
	after := int64(0)
	for i := 0; i < f.Replicas(); i++ {
		after += f.Replica(i).aeJournalHoles.Load()
	}
	if after != holes {
		t.Fatalf("holes kept appearing after resync: %d → %d", holes, after)
	}
	// /fleetz surfaces the counter.
	var st FleetzStatus
	_, fz := getStatus(t, f.HTTPAddrs()[0], "/fleetz")
	if err := json.Unmarshal(fz, &st); err != nil {
		t.Fatalf("fleetz: %v: %s", err, fz)
	}
	if st.AEJournalHoles+f.Replica(1).Status().AEJournalHoles != holes {
		t.Fatalf("fleetz hole counters do not add up to %d: %s", holes, fz)
	}
}

// Replicas cannot share one journal: the fleet manages per-replica
// backends, so a Service-level journal config is a construction error.
func TestFleetJournalRejectsSharedServiceJournal(t *testing.T) {
	_, err := New(Config{Replicas: 2, Service: service.Config{JournalPath: "x.wal"}})
	if err == nil {
		t.Fatal("fleet accepted a shared Service.JournalPath")
	}
}
