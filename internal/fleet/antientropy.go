package fleet

import (
	"fmt"
	"time"

	"repro/internal/service"
)

// Anti-entropy: each replica periodically picks one live peer
// (round-robin over the sorted live set), sends a digest frame listing
// the cache keys it already holds, and receives back the entries the
// peer has that it lacks, encoded with the persistent cache's
// kind-tagged snapshot framing. Pulled entries land at the cold end of
// the LRU and only into spare capacity, so sync never evicts verdicts
// a replica earned by serving its own traffic; entries whose kind or
// schema no longer decodes are skipped and counted, exactly like a
// stale snapshot at reload. The exchange is pull-only and pairwise, so
// a partitioned or crashed peer costs one failed round, never a wedged
// loop — and after a heal, the verdicts computed on the other side of
// the cut diffuse back in O(log N) rounds.

// aeLoop runs periodic anti-entropy rounds. A negative interval means
// manual mode (rounds run only via AntiEntropyRound); the loop exits
// immediately and readiness does not wait on a first round.
func (rp *Replica) aeLoop(stop chan struct{}) {
	defer rp.wg.Done()
	interval := rp.f.cfg.AntiEntropyInterval
	if interval < 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	rp.AntiEntropyRound()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			rp.AntiEntropyRound()
		}
	}
}

// AntiEntropyRound runs one digest/pull exchange against the next live
// peer in round-robin order. It returns the number of entries pulled.
// A fleet of one (or a fully partitioned replica) completes the round
// trivially — with no reachable peer there is nothing to reconcile, so
// the replica still becomes ready.
func (rp *Replica) AntiEntropyRound() int {
	svc := rp.Service()
	if svc == nil {
		return 0
	}
	live := rp.livePeers()
	if len(live) == 0 {
		rp.finishRound()
		return 0
	}
	rp.mu.Lock()
	target := live[rp.aeCursor%len(live)]
	rp.aeCursor++
	since := target.journalCursor
	rp.mu.Unlock()

	// Journal fleets pull an incremental suffix of the peer's event
	// journal addressed by a per-peer cursor — O(new verdicts) instead
	// of O(cache) per round. A peer without a journal (mixed fleet, or
	// its journal failed to open) answers "no journal" and the round
	// falls back to the digest exchange below.
	if svc.JournalEnabled() {
		if n, ok := rp.journalRound(svc, target.id, since); ok {
			return n
		}
	}

	n, _ := rp.digestRound(svc, target.id)
	return n
}

// digestRound runs one full digest/pull exchange against one peer. The
// second return reports whether the exchange completed (a failed round
// leaves readiness untouched; the next tick retries another peer).
// Both anti-entropy exchanges go through the peer's circuit breaker
// (callPeerGated): an open breaker skips the round cheaply, and AE
// failures count toward tripping it just like forwards.
func (rp *Replica) digestRound(svc *service.Server, targetID string) (int, bool) {
	reply, err := rp.callPeerGated(targetID, rpcRequest{
		Op: "digest", From: rp.id, Keys: svc.CacheKeys(),
	}, rp.f.cfg.ForwardTimeout)
	if err != nil || !reply.OK {
		// Failed round: stay unready if this would have been the first,
		// retry against the next peer on the next tick.
		return 0, false
	}
	loaded, skipped := svc.LoadColdCacheEntries(reply.Body)
	rp.finishRound()
	if loaded > 0 || skipped > 0 {
		rp.aePulled.Add(loaded)
		rp.f.mon.emit(KindAERound, rp.id, "", fmt.Sprintf("peer=%s pulled=%d skipped=%d", targetID, loaded, skipped))
	}
	return int(loaded), true
}

// journalRound runs one suffix pull against one peer. The second return
// reports whether the journal path handled the round (false → caller
// falls back to a digest exchange).
func (rp *Replica) journalRound(svc *service.Server, targetID string, since uint64) (int, bool) {
	reply, err := rp.callPeerGated(targetID, rpcRequest{
		Op: "journal", From: rp.id, Since: since,
	}, rp.f.cfg.ForwardTimeout)
	if err != nil || !reply.OK {
		return 0, false
	}
	if reply.Hole {
		// The cursor fell below the peer's compaction horizon — the
		// events it expected were retired by retention. An incremental
		// pull from here would silently skip history, so reconcile with
		// a full digest exchange and only then adopt the peer's horizon
		// as the new cursor: if the digest round fails, the stale cursor
		// stays and the next round re-detects the hole.
		rp.aeJournalHoles.Add(1)
		n, ok := rp.digestRound(svc, targetID)
		if ok {
			rp.mu.Lock()
			if p, exists := rp.peers[targetID]; exists && reply.Next > p.journalCursor {
				p.journalCursor = reply.Next
			}
			rp.mu.Unlock()
			rp.f.mon.emit(KindAERound, rp.id, "",
				fmt.Sprintf("peer=%s mode=journal-hole resynced=%d cursor=%d", targetID, n, reply.Next))
		}
		return n, ok
	}
	loaded, skipped := svc.ApplyJournalSuffix(reply.Body)
	rp.mu.Lock()
	if p, ok := rp.peers[targetID]; ok && reply.Next > p.journalCursor {
		p.journalCursor = reply.Next
	}
	rp.mu.Unlock()
	rp.finishRound()
	rp.aeJournalRounds.Add(1)
	if loaded > 0 || skipped > 0 {
		rp.aePulled.Add(loaded)
		rp.f.mon.emit(KindAERound, rp.id, "",
			fmt.Sprintf("peer=%s mode=journal pulled=%d skipped=%d next=%d", targetID, loaded, skipped, reply.Next))
	}
	return int(loaded), true
}

// handleJournalSuffix is the peer side of a journal-mode exchange:
// encode the verdict events above the requester's cursor, bounded by
// MaxPullPerRound per round.
func (rp *Replica) handleJournalSuffix(req rpcRequest) rpcReply {
	svc := rp.Service()
	if svc == nil {
		return rpcReply{Err: "replica is down"}
	}
	if !svc.JournalEnabled() {
		return rpcReply{Err: "no journal"}
	}
	body, next, n, hole := svc.EncodeJournalSuffix(req.Since, rp.f.cfg.MaxPullPerRound)
	return rpcReply{OK: true, Body: body, Entries: n, Next: next, Hole: hole}
}

// finishRound marks a completed round, flipping first-round readiness.
func (rp *Replica) finishRound() {
	rp.aeRounds.Add(1)
	rp.aeDone.Store(true)
}

// handleDigest is the peer side of an anti-entropy exchange: encode the
// entries the requester lacks, up to MaxPullPerRound per round.
func (rp *Replica) handleDigest(req rpcRequest) rpcReply {
	svc := rp.Service()
	if svc == nil {
		return rpcReply{Err: "replica is down"}
	}
	has := make(map[string]bool, len(req.Keys))
	for _, k := range req.Keys {
		has[k] = true
	}
	var missing []string
	for _, k := range svc.CacheKeys() {
		if !has[k] {
			missing = append(missing, k)
		}
	}
	max := rp.f.cfg.MaxPullPerRound
	if len(missing) > max {
		missing = missing[:max]
	}
	body := svc.EncodeCacheEntriesFor(missing, max)
	return rpcReply{OK: true, Body: body, Entries: len(missing)}
}
