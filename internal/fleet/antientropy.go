package fleet

import (
	"fmt"
	"time"

	"repro/internal/service"
)

// Anti-entropy: each replica periodically picks one live peer
// (round-robin over the sorted live set), sends a digest frame listing
// the cache keys it already holds, and receives back the entries the
// peer has that it lacks, encoded with the persistent cache's
// kind-tagged snapshot framing. Pulled entries land at the cold end of
// the LRU and only into spare capacity, so sync never evicts verdicts
// a replica earned by serving its own traffic; entries whose kind or
// schema no longer decodes are skipped and counted, exactly like a
// stale snapshot at reload. The exchange is pull-only and pairwise, so
// a partitioned or crashed peer costs one failed round, never a wedged
// loop — and after a heal, the verdicts computed on the other side of
// the cut diffuse back in O(log N) rounds.

// aeLoop runs periodic anti-entropy rounds. A negative interval means
// manual mode (rounds run only via AntiEntropyRound); the loop exits
// immediately and readiness does not wait on a first round.
func (rp *Replica) aeLoop(stop chan struct{}) {
	defer rp.wg.Done()
	interval := rp.f.cfg.AntiEntropyInterval
	if interval < 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	rp.AntiEntropyRound()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			rp.AntiEntropyRound()
		}
	}
}

// AntiEntropyRound runs one digest/pull exchange against the next live
// peer in round-robin order. It returns the number of entries pulled.
// A fleet of one (or a fully partitioned replica) completes the round
// trivially — with no reachable peer there is nothing to reconcile, so
// the replica still becomes ready.
func (rp *Replica) AntiEntropyRound() int {
	svc := rp.Service()
	if svc == nil {
		return 0
	}
	live := rp.livePeers()
	if len(live) == 0 {
		rp.finishRound()
		return 0
	}
	rp.mu.Lock()
	target := live[rp.aeCursor%len(live)]
	rp.aeCursor++
	since := target.journalCursor
	rp.mu.Unlock()

	// Journal fleets pull an incremental suffix of the peer's event
	// journal addressed by a per-peer cursor — O(new verdicts) instead
	// of O(cache) per round. A peer without a journal (mixed fleet, or
	// its journal failed to open) answers "no journal" and the round
	// falls back to the digest exchange below.
	if svc.JournalEnabled() {
		if n, ok := rp.journalRound(svc, target.id, since); ok {
			return n
		}
	}

	reply, err := rp.callPeer(target.id, rpcRequest{
		Op: "digest", From: rp.id, Keys: svc.CacheKeys(),
	}, rp.f.cfg.ForwardTimeout)
	if err != nil || !reply.OK {
		// Failed round: stay unready if this would have been the first,
		// retry against the next peer on the next tick.
		return 0
	}
	loaded, skipped := svc.LoadColdCacheEntries(reply.Body)
	rp.finishRound()
	if loaded > 0 || skipped > 0 {
		rp.aePulled.Add(loaded)
		rp.f.mon.emit(KindAERound, rp.id, "", fmt.Sprintf("peer=%s pulled=%d skipped=%d", target.id, loaded, skipped))
	}
	return int(loaded)
}

// journalRound runs one suffix pull against one peer. The second return
// reports whether the journal path handled the round (false → caller
// falls back to a digest exchange).
func (rp *Replica) journalRound(svc *service.Server, targetID string, since uint64) (int, bool) {
	reply, err := rp.callPeer(targetID, rpcRequest{
		Op: "journal", From: rp.id, Since: since,
	}, rp.f.cfg.ForwardTimeout)
	if err != nil || !reply.OK {
		return 0, false
	}
	loaded, skipped := svc.ApplyJournalSuffix(reply.Body)
	rp.mu.Lock()
	if p, ok := rp.peers[targetID]; ok && reply.Next > p.journalCursor {
		p.journalCursor = reply.Next
	}
	rp.mu.Unlock()
	rp.finishRound()
	rp.aeJournalRounds.Add(1)
	if loaded > 0 || skipped > 0 {
		rp.aePulled.Add(loaded)
		rp.f.mon.emit(KindAERound, rp.id, "",
			fmt.Sprintf("peer=%s mode=journal pulled=%d skipped=%d next=%d", targetID, loaded, skipped, reply.Next))
	}
	return int(loaded), true
}

// handleJournalSuffix is the peer side of a journal-mode exchange:
// encode the verdict events above the requester's cursor, bounded by
// MaxPullPerRound per round.
func (rp *Replica) handleJournalSuffix(req rpcRequest) rpcReply {
	svc := rp.Service()
	if svc == nil {
		return rpcReply{Err: "replica is down"}
	}
	if !svc.JournalEnabled() {
		return rpcReply{Err: "no journal"}
	}
	body, next, n := svc.EncodeJournalSuffix(req.Since, rp.f.cfg.MaxPullPerRound)
	return rpcReply{OK: true, Body: body, Entries: n, Next: next}
}

// finishRound marks a completed round, flipping first-round readiness.
func (rp *Replica) finishRound() {
	rp.aeRounds.Add(1)
	rp.aeDone.Store(true)
}

// handleDigest is the peer side of an anti-entropy exchange: encode the
// entries the requester lacks, up to MaxPullPerRound per round.
func (rp *Replica) handleDigest(req rpcRequest) rpcReply {
	svc := rp.Service()
	if svc == nil {
		return rpcReply{Err: "replica is down"}
	}
	has := make(map[string]bool, len(req.Keys))
	for _, k := range req.Keys {
		has[k] = true
	}
	var missing []string
	for _, k := range svc.CacheKeys() {
		if !has[k] {
			missing = append(missing, k)
		}
	}
	max := rp.f.cfg.MaxPullPerRound
	if len(missing) > max {
		missing = missing[:max]
	}
	body := svc.EncodeCacheEntriesFor(missing, max)
	return rpcReply{OK: true, Body: body, Entries: len(missing)}
}
