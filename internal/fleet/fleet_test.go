package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/service"
)

// testFleet builds a small fast fleet: quick heartbeats, manual
// anti-entropy (tests drive rounds explicitly), tiny worker pools.
func testFleet(t *testing.T, replicas int, mutate func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{
		Replicas:            replicas,
		Service:             service.Config{Workers: 2, QueueDepth: 16},
		HeartbeatInterval:   20 * time.Millisecond,
		SuspectAfter:        3,
		AntiEntropyInterval: -1,
		ForwardTimeout:      5 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	t.Cleanup(f.Close)
	if !f.AwaitReady(5 * time.Second) {
		t.Fatal("fleet never became ready")
	}
	return f
}

// tinyProgram returns the i'th distinct small GCL program (3 states).
func tinyProgram(i int) string {
	return fmt.Sprintf("var x : 0..2;\ninit x == %d;\naction tick: true -> x := (x + 1) %% 3;", i%3) +
		fmt.Sprintf("\naction t%d: x == %d -> x := 0;", i, i%3)
}

// postTo posts a JSON body to one replica and returns the response.
func postTo(t *testing.T, addr, path string, body any, requestID string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getStatus(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// Every replica accepts every request; exactly one replica owns each
// program, the other entry points forward to it, and the forwarded
// response echoes the caller's X-Request-Id — one id traces the
// request across the hop. The owner's job log carries the same id.
func TestFleetForwardPreservesRequestID(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	f := testFleet(t, 3, func(c *Config) {
		c.Logf = func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		}
	})
	body := service.SelfStabRequest{Source: tinyProgram(1), TimeoutMS: 30_000}
	forwarded := 0
	for i, addr := range f.HTTPAddrs() {
		id := fmt.Sprintf("trace-%d.abc:42", i)
		resp, raw := postTo(t, addr, "/v1/selfstab", body, id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d: status %d: %s", i, resp.StatusCode, raw)
		}
		if got := resp.Header.Get("X-Request-Id"); got != id {
			t.Fatalf("replica %d: X-Request-Id = %q, want %q", i, got, id)
		}
		if owner := resp.Header.Get("X-Fleet-Owner"); owner != "" {
			forwarded++
			if owner == f.Replica(i).ID() {
				t.Fatalf("replica %d claims to have forwarded to itself", i)
			}
		}
	}
	if forwarded != 2 {
		t.Fatalf("forwarded %d of 3 requests, want exactly 2 (one owner)", forwarded)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawJob bool
	for _, line := range logs {
		if strings.Contains(line, "job done") && strings.Contains(line, "request=trace-0.abc:42") {
			sawJob = true
		}
	}
	if !sawJob {
		t.Fatalf("no worker-pool job log carries the original request id; logs:\n%s", strings.Join(logs, "\n"))
	}
}

// A fleet member's /readyz gates on membership and the first
// anti-entropy round; a plain single-process service is ready
// immediately — fleet gating never leaks into the standalone mode.
func TestFleetReadyzGating(t *testing.T) {
	f := testFleet(t, 2, func(c *Config) {
		// Periodic anti-entropy: readiness must wait for the first round.
		c.AntiEntropyInterval = time.Hour
	})
	addr := f.Replica(0).HTTPAddr()
	if code, body := getStatus(t, addr, "/readyz"); code != http.StatusOK {
		t.Fatalf("ready fleet member /readyz = %d: %s", code, body)
	}
	// Wind the replica back to the cold-boot state: readiness must drop.
	f.Replica(0).aeDone.Store(false)
	code, body := getStatus(t, addr, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("pre-first-round /readyz = %d, want 503: %s", code, body)
	}
	if !bytes.Contains(body, []byte("joining")) {
		t.Fatalf("pre-first-round /readyz body lacks joining status: %s", body)
	}
	if f.Replica(0).AntiEntropyRound() != 0 {
		t.Fatal("round against an in-sync peer pulled entries")
	}
	if code, body := getStatus(t, addr, "/readyz"); code != http.StatusOK {
		t.Fatalf("post-round /readyz = %d: %s", code, body)
	}

	// Standalone mode: no ring, no gating — ready from the first request.
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	rec := newLocalGet(svc, "/readyz")
	if rec.status != http.StatusOK {
		t.Fatalf("standalone /readyz = %d, want 200 immediately", rec.status)
	}
}

// newLocalGet drives a handler directly (no listener) for the
// standalone comparison.
func newLocalGet(h http.Handler, path string) *responseRecorder {
	rec := &responseRecorder{header: make(http.Header)}
	req, _ := http.NewRequest(http.MethodGet, path, nil)
	h.ServeHTTP(rec, req)
	return rec
}

// Anti-entropy diffuses a verdict computed on one replica to the
// others: after a round, a non-owner serves the same program from its
// own cache — no forward hop, cached=true.
func TestFleetAntiEntropySyncsVerdicts(t *testing.T) {
	f := testFleet(t, 2, nil)
	body := service.SelfStabRequest{Source: tinyProgram(2), TimeoutMS: 30_000}
	resp, raw := postTo(t, f.HTTPAddrs()[0], "/v1/selfstab", body, "seed-req")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request: %d: %s", resp.StatusCode, raw)
	}
	// Exactly one replica earned the cache entry.
	holders := 0
	for i := 0; i < f.Replicas(); i++ {
		if len(f.Replica(i).Service().CacheKeys()) == 1 {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("%d replicas hold the verdict before sync, want 1", holders)
	}
	if pulled := f.AntiEntropyRound(); pulled != 1 {
		t.Fatalf("anti-entropy pulled %d entries, want 1", pulled)
	}
	for i := 0; i < f.Replicas(); i++ {
		if n := len(f.Replica(i).Service().CacheKeys()); n != 1 {
			t.Fatalf("replica %d holds %d entries after sync, want 1", i, n)
		}
	}
	// The non-owner now serves locally from the synced entry.
	for i, addr := range f.HTTPAddrs() {
		resp, raw := postTo(t, addr, "/v1/selfstab", body, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d post-sync: %d: %s", i, resp.StatusCode, raw)
		}
		if owner := resp.Header.Get("X-Fleet-Owner"); owner != "" {
			t.Fatalf("replica %d still forwards (owner %s) after sync", i, owner)
		}
		var out service.SelfStabResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("replica %d response: %v", i, err)
		}
		if !out.Cached {
			t.Fatalf("replica %d recomputed a synced verdict", i)
		}
	}
}

// A crashed replica is suspected by its peers (ring shrinks), keeps
// being served around, and on restart is re-admitted: the rings
// re-converge to the full member set and the monitor shows the story.
func TestFleetCrashSuspectRecover(t *testing.T) {
	f := testFleet(t, 3, nil)
	f.CrashReplica(2)
	deadline := time.Now().Add(5 * time.Second)
	for f.mon.Count("replica-suspected") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("peers never suspected the crashed replica; events: %+v", f.Events())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !f.AwaitConverged(5 * time.Second) {
		t.Fatalf("rings did not shrink to the live set; r0 ring: %v", f.Replica(0).RingMembers())
	}
	// The shrunken fleet still answers everything.
	for i := 0; i < 6; i++ {
		body := service.SelfStabRequest{Source: tinyProgram(i), TimeoutMS: 30_000}
		for _, addr := range f.HTTPAddrs()[:2] {
			resp, raw := postTo(t, addr, "/v1/selfstab", body, "")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("during crash: %d: %s", resp.StatusCode, raw)
			}
		}
	}
	if err := f.RestartReplica(2); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if !f.AwaitConverged(5 * time.Second) {
		t.Fatalf("rings never re-converged after restart; r0 ring: %v", f.Replica(0).RingMembers())
	}
	if got := f.Replica(0).RingMembers(); len(got) != 3 {
		t.Fatalf("r0 ring after recovery: %v", got)
	}
	if f.mon.Count("replica-recovered") < 2 {
		t.Fatalf("no recovery events; events: %+v", f.Events())
	}
	if f.mon.Count("crash") != 1 || f.mon.Count("restart") != 1 {
		t.Fatalf("crash/restart events missing; events: %+v", f.Events())
	}
}

// Under a partition, a request whose owner is unreachable falls back
// to local compute — never a 5xx — and after the heal the rings
// re-converge.
func TestFleetPartitionFallsBackLocally(t *testing.T) {
	f := testFleet(t, 3, nil)
	f.Partition([]int{0}, []int{1, 2})
	// Requests keep succeeding on both sides of the cut, immediately —
	// before and after suspicion lands.
	for i := 0; i < 8; i++ {
		body := service.SelfStabRequest{Source: tinyProgram(i), TimeoutMS: 30_000}
		for j, addr := range f.HTTPAddrs() {
			resp, raw := postTo(t, addr, "/v1/selfstab", body, "")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("replica %d during cut: %d: %s", j, resp.StatusCode, raw)
			}
		}
	}
	// Each side's ring shrinks to its island.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r0 := f.Replica(0).RingMembers()
		r1 := f.Replica(1).RingMembers()
		if len(r0) == 1 && len(r1) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rings never shrank to islands: r0=%v r1=%v", r0, r1)
		}
		time.Sleep(10 * time.Millisecond)
	}
	f.Heal()
	if !f.AwaitConverged(5 * time.Second) {
		t.Fatalf("rings never re-converged after heal; r0: %v", f.Replica(0).RingMembers())
	}
	if f.mon.Count("partition") != 1 || f.mon.Count("heal") != 1 {
		t.Fatalf("partition/heal events missing; events: %+v", f.Events())
	}
}

// A graceful leave drops the member from peers' rings without a
// suspicion round, and a restart re-admits it.
func TestFleetGracefulLeaveAndReturn(t *testing.T) {
	f := testFleet(t, 3, nil)
	f.StopReplica(1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(f.Replica(0).RingMembers()) == 2 && f.Converged() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peers never dropped the departed member; r0 ring: %v", f.Replica(0).RingMembers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if f.mon.Count("replica-left") != 1 {
		t.Fatalf("leave event missing; events: %+v", f.Events())
	}
	if err := f.RestartReplica(1); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if !f.AwaitConverged(5 * time.Second) {
		t.Fatalf("departed member never rejoined; r0 ring: %v", f.Replica(0).RingMembers())
	}
}

// A seeded chaos campaign — crashes and partitions with durations —
// runs against a live fleet and the control plane re-converges after
// the final heal. Traffic during the campaign never sees a 5xx.
func TestFleetChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test needs wall-clock ticks")
	}
	f := testFleet(t, 3, nil)
	tpl := chaos.Template{
		Kinds:       []cluster.FaultKind{cluster.FaultCrash, cluster.FaultPartition},
		Faults:      3,
		Gap:         3,
		Start:       1,
		CutDuration: 2,
	}
	sched, err := tpl.FleetSchedule(3, 42)
	if err != nil {
		t.Fatalf("FleetSchedule: %v", err)
	}
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		defer close(errs)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			body := service.SelfStabRequest{Source: tinyProgram(i), TimeoutMS: 30_000}
			addr := f.HTTPAddrs()[i%3]
			raw, _ := json.Marshal(body)
			resp, err := http.Post("http://"+addr+"/v1/selfstab", "application/json", bytes.NewReader(raw))
			if err == nil {
				if resp.StatusCode >= 500 {
					errs <- fmt.Errorf("request %d to %s: status %d", i, addr, resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
			// Connection errors are expected against a crashed replica; a
			// real client retries elsewhere. 5xx from a live one is not.
			i++
			time.Sleep(5 * time.Millisecond)
		}
	}()
	res, err := f.RunCampaign(context.Background(), sched, 60*time.Millisecond)
	close(stop)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if cerr := <-errs; cerr != nil {
		t.Fatalf("traffic during campaign: %v", cerr)
	}
	if !res.Converged {
		t.Fatalf("fleet did not re-converge after the campaign: %+v; events: %+v", res, f.Events())
	}
	total := 0
	for _, n := range res.Faults {
		total += n
	}
	if total != 3 {
		t.Fatalf("campaign applied %d faults, want 3: %+v", total, res.Faults)
	}
}
