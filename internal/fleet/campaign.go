package fleet

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
)

// Campaign execution: the chaos engine's seeded fleet-fault schedules
// (chaos.Template.FleetSchedule) applied to a live fleet. Where the
// simulated campaigns corrupt registers inside a stepped model, a
// fleet campaign closes real listeners and severs real connections —
// and the recovery it measures is the control plane's: heartbeats
// suspecting the dead, rings shrinking to the live set, and both
// re-converging after the faults clear.

// CampaignResult summarizes one fleet campaign run.
type CampaignResult struct {
	// Ticks is how many campaign ticks ran.
	Ticks int `json:"ticks"`
	// Faults counts the schedule entries applied, by kind.
	Faults map[string]int `json:"faults"`
	// Converged reports whether every live replica's ring re-converged
	// to the live member set after the final heal.
	Converged bool `json:"converged"`
	// ConvergeTicksMax bounds how long the run waited for final
	// convergence (in heartbeat intervals).
	ConvergeMS int64 `json:"converge_ms"`
}

// RunCampaign executes a fleet-fault schedule against the fleet, one
// tick per `tick` of wall-clock: crashes restart and cuts heal Count
// ticks after they land, and after the last fault clears the run
// heals everything, restarts any still-crashed replica, and waits for
// the rings to re-converge. The fleet keeps serving throughout — the
// campaign only injects membership faults; it never pauses traffic.
func (f *Fleet) RunCampaign(ctx context.Context, sched []chaos.FleetFault, tick time.Duration) (*CampaignResult, error) {
	if tick <= 0 {
		tick = 2 * f.cfg.HeartbeatInterval
	}
	res := &CampaignResult{Faults: make(map[string]int)}

	type pending struct {
		step  int
		fault chaos.FleetFault
	}
	lastStep := 0
	for _, ff := range sched {
		if end := ff.Step + ff.Count; end > lastStep {
			lastStep = end
		}
	}
	var undo []pending
	next := 0
	for step := 1; step <= lastStep; step++ {
		select {
		case <-ctx.Done():
			return res, ctx.Err()
		default:
		}
		// Clear faults whose duration expired at this tick.
		kept := undo[:0]
		for _, p := range undo {
			if p.step > step {
				kept = append(kept, p)
				continue
			}
			if err := f.clearFault(p.fault); err != nil {
				return res, err
			}
		}
		undo = kept
		// Land the faults scheduled for this tick.
		for next < len(sched) && sched[next].Step <= step {
			ff := sched[next]
			next++
			if err := f.applyFault(ff); err != nil {
				return res, err
			}
			res.Faults[string(ff.Kind)]++
			undo = append(undo, pending{step: ff.Step + ff.Count, fault: ff})
		}
		res.Ticks++
		time.Sleep(tick)
	}
	// Final cleanup: heal every cut, clear every gray fault, restart
	// every crashed replica, and parole quarantined peer views — a
	// quarantine hold outlasting the campaign must not stall the
	// convergence gate below.
	f.Heal()
	for i := range f.replicas {
		f.SlowReplica(i, 0)
		f.GarbageReplica(i, false)
		if err := f.RestartReplica(i); err != nil {
			return res, err
		}
	}
	f.ParoleAll()
	// Convergence needs SuspectAfter missed-then-seen heartbeat sweeps
	// on every replica; give it a generous multiple.
	wait := time.Duration(f.cfg.SuspectAfter+20) * f.cfg.HeartbeatInterval * 4
	if wait < 2*time.Second {
		wait = 2 * time.Second
	}
	start := time.Now() //gcvet:detrand-ok measures real re-convergence latency for the campaign report
	res.Converged = f.AwaitConverged(wait)
	res.ConvergeMS = time.Since(start).Milliseconds() //gcvet:detrand-ok measures real re-convergence latency for the campaign report
	return res, nil
}

// applyFault lands one fleet fault.
func (f *Fleet) applyFault(ff chaos.FleetFault) error {
	switch ff.Kind {
	case cluster.FaultCrash:
		f.CrashReplica(ff.Node)
	case cluster.FaultPartition:
		f.Partition(ff.A, ff.B)
	case cluster.FaultIsolate:
		f.Partition([]int{ff.Node}, f.othersOf(ff.Node))
	case cluster.FaultSlowPeer:
		d := time.Duration(ff.DelayMS) * time.Millisecond
		if d <= 0 {
			d = 200 * time.Millisecond
		}
		f.SlowReplica(ff.Node, d)
	case cluster.FaultAsymPartition:
		f.PartitionOneWay(ff.A, ff.B)
	case cluster.FaultGarbageReply:
		f.GarbageReplica(ff.Node, true)
	default:
		return fmt.Errorf("fleet: fault kind %q is not a fleet fault", ff.Kind)
	}
	return nil
}

// clearFault undoes one fleet fault when its duration expires.
func (f *Fleet) clearFault(ff chaos.FleetFault) error {
	switch ff.Kind {
	case cluster.FaultCrash:
		return f.RestartReplica(ff.Node)
	case cluster.FaultPartition:
		f.HealCut(ff.A, ff.B)
	case cluster.FaultIsolate:
		f.HealCut([]int{ff.Node}, f.othersOf(ff.Node))
	case cluster.FaultSlowPeer:
		f.SlowReplica(ff.Node, 0)
	case cluster.FaultAsymPartition:
		// unblock is idempotent, so healing the cut both ways is safe.
		f.HealCut(ff.A, ff.B)
	case cluster.FaultGarbageReply:
		f.GarbageReplica(ff.Node, false)
	}
	return nil
}

// othersOf lists every replica index except i.
func (f *Fleet) othersOf(i int) []int {
	out := make([]int, 0, len(f.replicas)-1)
	for j := range f.replicas {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}
