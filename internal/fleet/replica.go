package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/service"
)

// fleetMaxBody bounds a routed request body before routing looks at
// it, matching the service's own bound.
const fleetMaxBody = 1 << 20

// peer is a replica's view of one other fleet member.
type peer struct {
	id     string
	addr   string // RPC address
	client *peerClient
	br     *breaker

	misses    int
	suspected bool
	left      bool

	// Flap quarantine: recovery timestamps inside FlapWindow, the
	// offense count (doubles the hold), and the active hold if any.
	flapTimes   []time.Time
	quarantines int
	quarantined bool
	paroleAt    time.Time

	// journalCursor is the peer journal sequence number anti-entropy
	// has pulled through (journal mode only; reset on local restart).
	journalCursor uint64
}

// Replica is one checkd process inside a fleet: a full service.Server
// (worker pool, verdict cache, metrics) behind a routing layer that
// forwards program-addressed requests to their ring owner, plus the
// membership and anti-entropy loops.
type Replica struct {
	id  string
	idx int
	f   *Fleet

	httpAddr string
	rpcAddr  string

	// journal is this replica's fleet-held event journal backend
	// (Config.Journal); nil in digest-only fleets. It survives crash/
	// restart, so a restarted incarnation replays its own history.
	journal journal.Backend

	mu      sync.Mutex
	svc     *service.Server
	ring    *Ring
	peers   map[string]*peer
	blocked map[string]bool // partitioned-away peer ids
	down    bool

	httpSrv   *http.Server
	httpLn    net.Listener
	rpcLn     net.Listener
	stop      chan struct{}
	conns     map[net.Conn]bool // live inbound RPC connections
	leftFleet bool              // gracefully departed (StopReplica)

	joined atomic.Bool
	aeDone atomic.Bool
	reqSeq atomic.Uint64

	aeCursor int // round-robin anti-entropy target index

	forwards        atomic.Int64 // requests forwarded to their owner
	forwardErrors   atomic.Int64 // forward RPCs that failed
	localFallbacks  atomic.Int64 // owner-miss requests computed locally
	forwardedServed atomic.Int64 // forwards served on behalf of peers
	aeRounds        atomic.Int64 // anti-entropy rounds completed
	aePulled        atomic.Int64 // entries pulled by anti-entropy
	aeJournalRounds atomic.Int64 // rounds served by journal suffixes
	aeJournalHoles  atomic.Int64 // cursors caught below a peer's compaction horizon

	hedgesFired      atomic.Int64 // forwards that tripped the hedge timer
	hedgeLocalWins   atomic.Int64 // hedged races local compute won
	hedgeForwardWins atomic.Int64 // hedged races the forward still won
	budgetExhausted  atomic.Int64 // forwards an owner refused as budget-exhausted
	budgetRefused    atomic.Int64 // forwards this replica refused as owner

	// Gray-failure injection (campaign faults): a data-plane RPC delay
	// and a hostile-reply switch. Pings are never affected.
	slowDelay atomic.Int64 // nanoseconds
	garbage   atomic.Bool

	wg sync.WaitGroup
}

// ID returns the replica's fleet id ("r0", "r1", …).
func (rp *Replica) ID() string { return rp.id }

// HTTPAddr returns the replica's HTTP listen address.
func (rp *Replica) HTTPAddr() string { return rp.httpAddr }

// RPCAddr returns the replica's fleet RPC listen address.
func (rp *Replica) RPCAddr() string { return rp.rpcAddr }

// Service returns the replica's underlying service.Server (nil while
// crashed).
func (rp *Replica) Service() *service.Server {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.svc
}

// Ready reports fleet readiness: the replica has joined the ring and —
// when periodic anti-entropy is enabled — completed its first
// anti-entropy round. /readyz on a fleet member reports 503 until
// then, so a balancer never routes to a replica still cold-booting
// into the fleet.
func (rp *Replica) Ready() bool {
	if !rp.joined.Load() {
		return false
	}
	if rp.f.cfg.AntiEntropyInterval < 0 {
		return true // manual anti-entropy: rounds run only on demand
	}
	return rp.aeDone.Load()
}

// RingMembers returns the replica's current ring view, sorted.
func (rp *Replica) RingMembers() []string {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.ring.Members()
}

// nextID mints a request id for requests that arrive without one.
func (rp *Replica) nextID() string {
	return fmt.Sprintf("rq-%s-%d", rp.id, rp.reqSeq.Add(1))
}

// ServeHTTP implements the fleet routing layer. Operational endpoints
// and non-routable requests go straight to the local service; routable
// requests are served locally when this replica owns the fingerprint
// (or already holds the verdict), and forwarded to the owner
// otherwise. A forward that fails for any reason — partition, crash,
// timeout — falls back to local compute: an owner miss costs a
// duplicated verdict, never a 5xx.
func (rp *Replica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Path == "/fleetz" {
		rp.handleFleetz(w)
		return
	}
	svc := rp.Service()
	if svc == nil {
		http.Error(w, "replica is down", http.StatusServiceUnavailable)
		return
	}
	if r.Method == http.MethodGet && r.URL.Path == "/readyz" && !rp.Ready() {
		writeFleetJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "joining",
			"replica": rp.id,
			"joined":  rp.joined.Load(),
			"ae_done": rp.aeDone.Load(),
		})
		return
	}
	kind, routable := service.RouteKind(r.Method, r.URL.Path)
	if !routable {
		svc.ServeHTTP(w, r)
		return
	}
	started := wallNow()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, fleetMaxBody))
	if err != nil {
		writeFleetJSON(w, http.StatusBadRequest, map[string]any{"error": "reading request body: " + err.Error()})
		return
	}
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = rp.nextID()
	}

	info, err := service.Route(kind, body)
	if err != nil {
		// Unroutable body: the local handler produces the canonical 400.
		rp.serveLocal(svc, w, r, body, id)
		return
	}
	owner := rp.ownerOf(info.RingKey)
	if owner == "" || owner == rp.id {
		rp.serveLocal(svc, w, r, body, id)
		return
	}
	// Not the owner: serve from the local (anti-entropy-synced) cache
	// when possible, else forward the request to its owner — behind the
	// owner's circuit breaker, under the shrinking deadline budget, and
	// hedged by local compute once the forward outstays its welcome
	// (hedge.go).
	if svc.TryServeCached(w, info.CacheKey, id) {
		return
	}
	rp.routeToOwner(svc, w, r, body, id, owner, info, started)
}

// serveLocal hands the request to the local service with the body
// restored and the fleet's request id attached (the service adopts a
// well-formed inbound id instead of minting its own).
func (rp *Replica) serveLocal(svc *service.Server, w http.ResponseWriter, r *http.Request, body []byte, id string) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	r2.Header.Set("X-Request-Id", id)
	svc.ServeHTTP(w, r2)
}

// ownerOf resolves the ring owner of a routing key.
func (rp *Replica) ownerOf(ringKey string) string {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.ring.Owner(ringKey)
}

// callPeer runs one RPC against a peer, honoring partitions: a blocked
// peer fails immediately, exactly as an unreachable host would.
func (rp *Replica) callPeer(id string, req rpcRequest, timeout time.Duration) (rpcReply, error) {
	rp.mu.Lock()
	if rp.down {
		rp.mu.Unlock()
		return rpcReply{}, fmt.Errorf("fleet: replica %s is down", rp.id)
	}
	if rp.blocked[id] {
		rp.mu.Unlock()
		return rpcReply{}, fmt.Errorf("fleet: %s is partitioned away from %s", rp.id, id)
	}
	p, ok := rp.peers[id]
	rp.mu.Unlock()
	if !ok {
		return rpcReply{}, fmt.Errorf("fleet: unknown peer %q", id)
	}
	return p.client.call(req, timeout)
}

// handleForward is the owner side of a forward hop: replay the request
// against the local service with the original request id, and ship the
// status and body back. A declared TimeoutMS is the requester's
// *remaining* deadline budget: the owner honors it as its context
// deadline (the service's Gas plumbing makes the check stop there) and
// refuses outright — budget_exhausted, no compute — when the remainder
// is too small to be worth the hop.
func (rp *Replica) handleForward(req rpcRequest) rpcReply {
	svc := rp.Service()
	if svc == nil {
		return rpcReply{Err: "replica is down"}
	}
	if _, ok := service.RouteKind(http.MethodPost, req.Path); !ok {
		return rpcReply{Err: fmt.Sprintf("path %q is not forwardable", req.Path)}
	}
	timeout := rp.f.cfg.ForwardTimeout
	if req.TimeoutMS > 0 {
		budget := time.Duration(req.TimeoutMS) * time.Millisecond
		if budget < budgetFloor {
			rp.budgetRefused.Add(1)
			return rpcReply{OK: true, BudgetExhausted: true}
		}
		if budget < timeout {
			timeout = budget
		}
	}
	rp.forwardedServed.Add(1)
	rp.f.logf("fleet %s: serving forward request=%s path=%s from=%s", rp.id, req.ID, req.Path, req.From)

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	hr := (&http.Request{
		Method: http.MethodPost,
		URL:    &url.URL{Path: req.Path},
		Header: http.Header{"X-Request-Id": {req.ID}},
		Body:   io.NopCloser(bytes.NewReader(req.Body)),
	}).WithContext(ctx)
	rec := &responseRecorder{header: make(http.Header)}
	svc.ServeHTTP(rec, hr)
	return rpcReply{OK: true, Status: rec.status, Body: rec.buf.Bytes()}
}

// responseRecorder captures a handler's response for the RPC reply.
type responseRecorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (r *responseRecorder) Header() http.Header { return r.header }
func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}
func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.buf.Write(b)
}

// writeFleetJSON writes a JSON response from the fleet layer itself.
func writeFleetJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(mustJSON(v))
}

// trackConn registers a live inbound RPC connection; it reports false
// when the replica is down, telling the acceptor to drop the
// connection instead of serving it.
func (rp *Replica) trackConn(c net.Conn) bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.down {
		return false
	}
	rp.conns[c] = true
	return true
}

func (rp *Replica) untrackConn(c net.Conn) {
	rp.mu.Lock()
	delete(rp.conns, c)
	rp.mu.Unlock()
}

// closeConns severs every live inbound RPC connection (crash).
func (rp *Replica) closeConns() {
	rp.mu.Lock()
	conns := make([]net.Conn, 0, len(rp.conns))
	for c := range rp.conns {
		conns = append(conns, c)
	}
	rp.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// --- membership ---

// livePeers snapshots the peers currently believed alive, sorted by
// id. A quarantined peer is not alive for routing or anti-entropy
// purposes even though it may be answering pings.
func (rp *Replica) livePeers() []*peer {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	out := make([]*peer, 0, len(rp.peers))
	for _, p := range rp.peers {
		if !p.suspected && !p.left && !p.quarantined && !rp.blocked[p.id] {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// allPeers snapshots every known peer that has not left, sorted by id.
func (rp *Replica) allPeers() []*peer {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	out := make([]*peer, 0, len(rp.peers))
	for _, p := range rp.peers {
		if !p.left {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// heartbeatLoop pings every peer each interval, feeding the
// suspicion/recovery state machine.
func (rp *Replica) heartbeatLoop(stop chan struct{}) {
	defer rp.wg.Done()
	t := time.NewTicker(rp.f.cfg.HeartbeatInterval)
	defer t.Stop()
	rp.sweep()
	if !rp.joined.Load() {
		rp.joined.Store(true)
		rp.f.mon.emit(KindReplicaJoined, rp.id, "", fmt.Sprintf("peers=%d", len(rp.allPeers())))
	}
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			rp.sweep()
		}
	}
}

// sweep pings every non-left, non-quarantined peer once, after first
// paroling any quarantined peer whose hold has expired — parole and
// the re-admitting ping can land in the same sweep.
func (rp *Replica) sweep() {
	timeout := rp.f.cfg.HeartbeatInterval
	if timeout < 50*time.Millisecond {
		timeout = 50 * time.Millisecond
	}
	rp.paroleDue()
	for _, p := range rp.allPeers() {
		rp.mu.Lock()
		skip := p.quarantined
		rp.mu.Unlock()
		if skip {
			continue
		}
		reply, err := rp.callPeer(p.id, rpcRequest{Op: "ping", From: rp.id}, timeout)
		rp.noteHeartbeat(p.id, err == nil && reply.OK)
	}
}

// paroleDue releases quarantined peers whose hold expired. A paroled
// peer re-enters as suspected with misses pinned at the threshold: it
// earns its way back into the ring with a real heartbeat, it is not
// presumed recovered.
func (rp *Replica) paroleDue() {
	now := wallNow()
	var paroled []string
	rp.mu.Lock()
	for _, p := range rp.peers {
		if p.quarantined && !now.Before(p.paroleAt) {
			p.quarantined = false
			p.suspected = true
			p.misses = rp.f.cfg.SuspectAfter
			paroled = append(paroled, p.id)
		}
	}
	rp.mu.Unlock()
	sort.Strings(paroled)
	for _, id := range paroled {
		rp.f.mon.emit(KindParoled, id, rp.id, "hold expired")
	}
}

// noteHeartbeat advances one peer's suspicion state: SuspectAfter
// consecutive misses removes the peer from the ring (its keys re-home
// to the survivors); the first success re-admits it — unless the
// recovery is one flap too many, in which case the peer is
// quarantined instead.
func (rp *Replica) noteHeartbeat(id string, ok bool) {
	rp.mu.Lock()
	p, known := rp.peers[id]
	if !known || p.left || p.quarantined {
		rp.mu.Unlock()
		return
	}
	var event, detail string
	if ok {
		p.misses = 0
		if p.suspected {
			event, detail = rp.admitPeerLocked(p)
		}
	} else {
		p.misses++
		if !p.suspected && p.misses >= rp.f.cfg.SuspectAfter {
			p.suspected = true
			rp.ring.Remove(id)
			event = KindReplicaSuspected
		}
	}
	rp.mu.Unlock()
	if event != "" {
		rp.f.mon.emit(event, id, rp.id, detail)
	}
}

// admitPeerLocked re-admits a previously suspected peer, tracking the
// recovery as a flap. More than FlapLimit recoveries inside FlapWindow
// quarantines the peer instead: an exponential hold (doubling per
// offense up to QuarantineHoldMax) during which the ring excludes it,
// sweeps skip it, and inbound RPCs do not re-admit it. Returns the
// event to emit after the lock drops.
func (rp *Replica) admitPeerLocked(p *peer) (string, string) {
	cfg := rp.f.cfg
	p.suspected = false
	if cfg.FlapLimit > 0 {
		now := wallNow()
		keep := p.flapTimes[:0]
		for _, t := range p.flapTimes {
			if now.Sub(t) <= cfg.FlapWindow {
				keep = append(keep, t)
			}
		}
		p.flapTimes = append(keep, now)
		if len(p.flapTimes) > cfg.FlapLimit {
			p.quarantines++
			shift := p.quarantines - 1
			hold := cfg.QuarantineHold << shift
			if hold > cfg.QuarantineHoldMax || hold <= 0 {
				hold = cfg.QuarantineHoldMax
			}
			p.quarantined = true
			p.paroleAt = now.Add(hold)
			p.flapTimes = nil
			p.misses = 0
			rp.ring.Remove(p.id)
			return KindQuarantined, fmt.Sprintf("flaps=%d hold=%s", len(keep)+1, hold)
		}
	}
	rp.ring.Add(p.id)
	return KindReplicaRecovered, ""
}

// sawPeer treats any inbound RPC as liveness evidence. A quarantined
// sender only clears its miss counter: quarantine is time-served, not
// talked out of.
func (rp *Replica) sawPeer(id string) {
	if id == "" {
		return
	}
	rp.mu.Lock()
	p, known := rp.peers[id]
	if !known || p.left || rp.blocked[id] {
		rp.mu.Unlock()
		return
	}
	if p.quarantined {
		p.misses = 0
		rp.mu.Unlock()
		return
	}
	var event, detail string
	p.misses = 0
	if p.suspected {
		event, detail = rp.admitPeerLocked(p)
		if detail == "" {
			detail = "inbound rpc"
		}
	}
	rp.mu.Unlock()
	if event != "" {
		rp.f.mon.emit(event, id, rp.id, detail)
	}
}

// peerLeft handles a graceful leave notification.
func (rp *Replica) peerLeft(id string) {
	rp.mu.Lock()
	if p, ok := rp.peers[id]; ok {
		p.left = true
		p.client.closeIdle()
		rp.ring.Remove(id)
	}
	rp.mu.Unlock()
}

// peerReturned clears the left flag when a stopped replica restarts.
func (rp *Replica) peerReturned(id string) {
	rp.mu.Lock()
	if p, ok := rp.peers[id]; ok && p.left {
		p.left = false
		p.misses = 0
		p.suspected = false
		rp.ring.Add(id)
	}
	rp.mu.Unlock()
}

// block severs this replica's view of a peer (partition fault).
func (rp *Replica) block(id string) {
	rp.mu.Lock()
	rp.blocked[id] = true
	if p, ok := rp.peers[id]; ok {
		p.client.closeIdle()
	}
	rp.mu.Unlock()
}

// unblock heals this replica's view of a peer.
func (rp *Replica) unblock(id string) {
	rp.mu.Lock()
	delete(rp.blocked, id)
	rp.mu.Unlock()
}

// --- status ---

// FleetzStatus is the GET /fleetz response: the replica's view of the
// fleet, plus its routing and anti-entropy counters.
type FleetzStatus struct {
	Replica string   `json:"replica"`
	Ready   bool     `json:"ready"`
	Joined  bool     `json:"joined"`
	AEDone  bool     `json:"ae_done"`
	Ring    []string `json:"ring"`

	Forwards        int64 `json:"forwards"`
	ForwardErrors   int64 `json:"forward_errors"`
	LocalFallbacks  int64 `json:"local_fallbacks"`
	ForwardedServed int64 `json:"forwarded_served"`
	AERounds        int64 `json:"ae_rounds"`
	AEPulled        int64 `json:"ae_pulled"`
	AEJournalRounds int64 `json:"ae_journal_rounds"`
	AEJournalHoles  int64 `json:"ae_journal_holes"`

	// Failure-domain hardening counters (see breaker.go / hedge.go).
	Breakers         map[string]string `json:"breakers,omitempty"` // peer id → breaker state
	BreakerOpens     int64             `json:"breaker_opens"`
	BreakerHalfOpens int64             `json:"breaker_half_opens"`
	BreakerCloses    int64             `json:"breaker_closes"`
	BreakerSkips     int64             `json:"breaker_skips"`
	HedgesFired      int64             `json:"hedges_fired"`
	HedgeLocalWins   int64             `json:"hedge_local_wins"`
	HedgeForwardWins int64             `json:"hedge_forward_wins"`
	BudgetExhausted  int64             `json:"budget_exhausted"`
	BudgetRefused    int64             `json:"budget_refused"`
	Quarantined      []string          `json:"quarantined,omitempty"` // peers currently held
	Quarantines      int64             `json:"quarantines"`           // lifetime offenses observed

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`

	// JournalLastSeq is the replica's journal head (journal fleets only).
	JournalLastSeq uint64 `json:"journal_last_seq,omitempty"`
}

// resilienceSnapshot aggregates the breaker/hedge/budget/quarantine
// counters across this replica's peers. It backs both /fleetz and the
// service's /metrics "fleet" section (installed via
// service.Config.ResilienceMetrics, so the service never imports the
// fleet).
func (rp *Replica) resilienceSnapshot() *service.FleetResilienceSnapshot {
	snap := &service.FleetResilienceSnapshot{BreakerStates: make(map[string]string)}
	rp.mu.Lock()
	for id, p := range rp.peers {
		st := p.br.stats()
		snap.BreakerStates[id] = st.state
		snap.BreakerOpens += st.opens
		snap.BreakerHalfOpens += st.halfOpens
		snap.BreakerCloses += st.closes
		snap.BreakerSkips += st.skips
		if p.quarantined {
			snap.Quarantined = append(snap.Quarantined, id)
		}
		snap.Quarantines += int64(p.quarantines)
	}
	rp.mu.Unlock()
	sort.Strings(snap.Quarantined)
	snap.HedgesFired = rp.hedgesFired.Load()
	snap.HedgeLocalWins = rp.hedgeLocalWins.Load()
	snap.HedgeForwardWins = rp.hedgeForwardWins.Load()
	if snap.HedgesFired > 0 {
		snap.HedgeWinRatio = float64(snap.HedgeLocalWins) / float64(snap.HedgesFired)
	}
	snap.BudgetExhausted = rp.budgetExhausted.Load()
	snap.BudgetRefused = rp.budgetRefused.Load()
	return snap
}

// Status snapshots the replica's fleet view.
func (rp *Replica) Status() FleetzStatus {
	st := FleetzStatus{
		Replica: rp.id,
		Ready:   rp.Ready(),
		Joined:  rp.joined.Load(),
		AEDone:  rp.aeDone.Load(),
		Ring:    rp.RingMembers(),

		Forwards:        rp.forwards.Load(),
		ForwardErrors:   rp.forwardErrors.Load(),
		LocalFallbacks:  rp.localFallbacks.Load(),
		ForwardedServed: rp.forwardedServed.Load(),
		AERounds:        rp.aeRounds.Load(),
		AEPulled:        rp.aePulled.Load(),
		AEJournalRounds: rp.aeJournalRounds.Load(),
		AEJournalHoles:  rp.aeJournalHoles.Load(),
	}
	res := rp.resilienceSnapshot()
	st.Breakers = res.BreakerStates
	st.BreakerOpens = res.BreakerOpens
	st.BreakerHalfOpens = res.BreakerHalfOpens
	st.BreakerCloses = res.BreakerCloses
	st.BreakerSkips = res.BreakerSkips
	st.HedgesFired = res.HedgesFired
	st.HedgeLocalWins = res.HedgeLocalWins
	st.HedgeForwardWins = res.HedgeForwardWins
	st.BudgetExhausted = res.BudgetExhausted
	st.BudgetRefused = res.BudgetRefused
	st.Quarantined = res.Quarantined
	st.Quarantines = res.Quarantines
	if svc := rp.Service(); svc != nil {
		st.CacheHits, st.CacheMisses = svc.CacheStats()
		st.JournalLastSeq = svc.JournalLastSeq()
	}
	return st
}

func (rp *Replica) handleFleetz(w http.ResponseWriter) {
	writeFleetJSON(w, http.StatusOK, rp.Status())
}
