package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
)

// Replica-to-replica RPC: one length-prefixed JSON frame per request
// and one per reply, over pooled persistent TCP connections — the
// cluster runtime's wire discipline (cluster.WriteFrame/ReadFrame)
// carrying fleet operations instead of ring registers. Five ops:
//
//	forward  run a routed check on its owner, preserving X-Request-Id
//	digest   anti-entropy: here are my cache keys; send what I lack
//	journal  anti-entropy: send your verdict events above my cursor
//	ping     heartbeat; the reply carries the peer's readiness
//	leave    graceful departure; the receiver drops the sender now
//
// Like the ring transport, a malformed or oversized frame costs the
// connection, never a wedged replica; a failed call costs the request
// a fallback (local compute), never a 5xx.

// maxRPCFrameBytes bounds one fleet frame. Digest key lists and pulled
// entry batches are far larger than ring state messages, so the bound
// is generous — but still a bound: a hostile peer cannot make a
// replica buffer unbounded bytes.
const maxRPCFrameBytes = 8 << 20

// rpcRequest is the request frame.
type rpcRequest struct {
	Op   string `json:"op"`
	From string `json:"from,omitempty"`
	// Forward fields.
	ID        string `json:"id,omitempty"`   // original X-Request-Id
	Path      string `json:"path,omitempty"` // original URL path
	Body      []byte `json:"body,omitempty"` // original request body
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// Digest fields: the keys the sender already holds.
	Keys []string `json:"keys,omitempty"`
	// Journal field: the sender's cursor into the receiver's journal.
	Since uint64 `json:"since,omitempty"`
}

// rpcReply is the reply frame.
type rpcReply struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Forward reply.
	Status int    `json:"status,omitempty"`
	Body   []byte `json:"body,omitempty"` // forward: response body; digest: framed entries
	// Ping reply.
	Ready bool `json:"ready,omitempty"`
	// Digest reply: how many entries the body carries.
	Entries int `json:"entries,omitempty"`
	// Journal reply: the cursor the requester should present next time.
	Next uint64 `json:"next,omitempty"`
	// Hole marks a journal reply whose Since cursor fell below the
	// peer's compaction horizon: the requested suffix no longer exists,
	// Next is the horizon, and the requester must digest-sync before
	// resuming incremental pulls.
	Hole bool `json:"hole,omitempty"`
	// BudgetExhausted marks a forward the owner refused because the
	// request's remaining deadline budget was too small to be worth
	// computing against; the requester spends what is left locally.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
}

// maxReplyEntries bounds the Entries a digest or journal reply may
// declare. The real ceiling is MaxPullPerRound (≤ a few thousand);
// anything near a million entries in one round is a hostile peer.
const maxReplyEntries = 1 << 20

// validateReply range-checks a reply's declared fields against its
// request. roundTrip trusts the frame codec for shape; this is the
// semantic tier — a well-framed reply whose fields cannot be honest
// (status outside HTTP, negative entry counts, a regressing journal
// cursor) costs the connection and counts as a breaker failure, never
// a wedged caller downstream.
func validateReply(req rpcRequest, reply rpcReply) error {
	if len(reply.Body) > maxRPCFrameBytes {
		return fmt.Errorf("fleet: reply body %d bytes exceeds frame bound %d", len(reply.Body), maxRPCFrameBytes)
	}
	if !reply.OK {
		return nil
	}
	switch req.Op {
	case "forward":
		if reply.BudgetExhausted {
			return nil
		}
		if reply.Status < 100 || reply.Status > 599 {
			return fmt.Errorf("fleet: forward reply status %d out of range", reply.Status)
		}
		if len(reply.Body) > 0 && !json.Valid(reply.Body) {
			return fmt.Errorf("fleet: forward reply body is not valid JSON")
		}
	case "digest", "journal":
		if reply.Entries < 0 || reply.Entries > maxReplyEntries {
			return fmt.Errorf("fleet: %s reply declares %d entries", req.Op, reply.Entries)
		}
		if req.Op == "journal" && !reply.Hole && reply.Next < req.Since {
			return fmt.Errorf("fleet: journal reply cursor regressed (next %d < since %d)", reply.Next, req.Since)
		}
	}
	return nil
}

// peerClient pools connections to one peer. Calls are sequential per
// connection (one frame out, one frame in); concurrent calls draw
// distinct connections from the pool or dial fresh ones.
type peerClient struct {
	addr string

	mu   sync.Mutex
	idle []net.Conn
}

// maxIdleConns bounds the per-peer pool; beyond it, finished
// connections close instead of parking.
const maxIdleConns = 4

func newPeerClient(addr string) *peerClient { return &peerClient{addr: addr} }

func (p *peerClient) get(dialTimeout time.Duration) (net.Conn, bool, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, true, nil
	}
	p.mu.Unlock()
	c, err := net.DialTimeout("tcp", p.addr, dialTimeout)
	return c, false, err
}

func (p *peerClient) put(c net.Conn) {
	p.mu.Lock()
	if len(p.idle) < maxIdleConns {
		p.idle = append(p.idle, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	_ = c.Close()
}

// closeIdle drops every pooled connection (peer crashed or left).
func (p *peerClient) closeIdle() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
}

// roundTrip performs one call on one connection under deadline.
func roundTrip(c net.Conn, req rpcRequest, deadline time.Time) (rpcReply, error) {
	var reply rpcReply
	if err := c.SetDeadline(deadline); err != nil {
		return reply, err
	}
	if err := cluster.WriteFrame(c, req); err != nil {
		return reply, err
	}
	if err := cluster.ReadFrame(c, maxRPCFrameBytes, &reply); err != nil {
		return reply, err
	}
	_ = c.SetDeadline(time.Time{})
	return reply, nil
}

// call runs one RPC with a bounded timeout. A call that fails on a
// pooled connection retries once on a fresh dial — pooled connections
// go stale when the peer restarts, and the retry is what makes the
// path self-healing rather than sticky-broken. A reply that fails
// validation does NOT retry: garbage is a sick peer, not a stale
// socket, and the failure must surface to the breaker.
func (p *peerClient) call(req rpcRequest, timeout time.Duration) (rpcReply, error) {
	deadline := time.Now().Add(timeout) //gcvet:detrand-ok real I/O deadline on a live TCP connection
	c, pooled, err := p.get(timeout)
	if err != nil {
		return rpcReply{}, err
	}
	reply, err := roundTrip(c, req, deadline)
	if err == nil {
		if verr := validateReply(req, reply); verr != nil {
			_ = c.Close()
			return rpcReply{}, verr
		}
		p.put(c)
		return reply, nil
	}
	_ = c.Close()
	if !pooled {
		return rpcReply{}, err
	}
	// Stale pooled connection: one fresh attempt.
	//gcvet:detrand-ok real I/O deadline on a live TCP connection
	c2, err2 := net.DialTimeout("tcp", p.addr, time.Until(deadline))
	if err2 != nil {
		return rpcReply{}, err2
	}
	reply, err = roundTrip(c2, req, deadline)
	if err != nil {
		_ = c2.Close()
		return rpcReply{}, err
	}
	if verr := validateReply(req, reply); verr != nil {
		_ = c2.Close()
		return rpcReply{}, verr
	}
	p.put(c2)
	return reply, nil
}

// serveRPC accepts connections on the replica's RPC listener. It runs
// once per incarnation: a crash closes the listener and every tracked
// connection, so peers see real connection failures, not polite
// refusals.
func (rp *Replica) serveRPC(ln net.Listener, stop chan struct{}) {
	defer rp.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !rp.trackConn(c) {
			_ = c.Close()
			return
		}
		rp.wg.Add(1)
		go rp.serveRPCConn(c, stop)
	}
}

// serveRPCConn handles one inbound connection: a loop of frame in,
// frame out. Any framing error closes the connection.
func (rp *Replica) serveRPCConn(c net.Conn, stop chan struct{}) {
	defer rp.wg.Done()
	defer rp.untrackConn(c)
	defer func() { _ = c.Close() }()
	for {
		var req rpcRequest
		if err := cluster.ReadFrame(c, maxRPCFrameBytes, &req); err != nil {
			return
		}
		reply := rp.handleRPC(req)
		if err := cluster.WriteFrame(c, reply); err != nil {
			return
		}
		select {
		case <-stop:
			return
		default:
		}
	}
}

// handleRPC dispatches one fleet operation.
func (rp *Replica) handleRPC(req rpcRequest) rpcReply {
	switch req.Op {
	case "ping":
		rp.sawPeer(req.From)
		return rpcReply{OK: true, Ready: rp.Ready()}
	case "leave":
		rp.peerLeft(req.From)
		return rpcReply{OK: true}
	}
	// Gray-failure injection, data-plane ops only: a slow or hostile
	// replica keeps answering pings promptly — the failure detector
	// stays green while forwards and anti-entropy drag or rot, which is
	// exactly the regime the breaker layer exists for.
	if d := rp.slowDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if rp.garbage.Load() {
		return garbageRPCReply(req)
	}
	switch req.Op {
	case "forward":
		return rp.handleForward(req)
	case "digest":
		return rp.handleDigest(req)
	case "journal":
		return rp.handleJournalSuffix(req)
	}
	return rpcReply{Err: fmt.Sprintf("unknown op %q", req.Op)}
}

// garbageRPCReply builds a well-framed but semantically hostile reply
// for the garbage-reply fault: every field a validateReply-less client
// would trust is out of range or truncated.
func garbageRPCReply(req rpcRequest) rpcReply {
	switch req.Op {
	case "forward":
		return rpcReply{OK: true, Status: 999, Body: []byte(`{"truncated`)}
	case "digest":
		return rpcReply{OK: true, Entries: -7}
	case "journal":
		return rpcReply{OK: true, Entries: maxReplyEntries + 1}
	}
	return rpcReply{OK: true, Status: -1}
}
