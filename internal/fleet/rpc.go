package fleet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
)

// Replica-to-replica RPC: one length-prefixed JSON frame per request
// and one per reply, over pooled persistent TCP connections — the
// cluster runtime's wire discipline (cluster.WriteFrame/ReadFrame)
// carrying fleet operations instead of ring registers. Five ops:
//
//	forward  run a routed check on its owner, preserving X-Request-Id
//	digest   anti-entropy: here are my cache keys; send what I lack
//	journal  anti-entropy: send your verdict events above my cursor
//	ping     heartbeat; the reply carries the peer's readiness
//	leave    graceful departure; the receiver drops the sender now
//
// Like the ring transport, a malformed or oversized frame costs the
// connection, never a wedged replica; a failed call costs the request
// a fallback (local compute), never a 5xx.

// maxRPCFrameBytes bounds one fleet frame. Digest key lists and pulled
// entry batches are far larger than ring state messages, so the bound
// is generous — but still a bound: a hostile peer cannot make a
// replica buffer unbounded bytes.
const maxRPCFrameBytes = 8 << 20

// rpcRequest is the request frame.
type rpcRequest struct {
	Op   string `json:"op"`
	From string `json:"from,omitempty"`
	// Forward fields.
	ID        string `json:"id,omitempty"`   // original X-Request-Id
	Path      string `json:"path,omitempty"` // original URL path
	Body      []byte `json:"body,omitempty"` // original request body
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// Digest fields: the keys the sender already holds.
	Keys []string `json:"keys,omitempty"`
	// Journal field: the sender's cursor into the receiver's journal.
	Since uint64 `json:"since,omitempty"`
}

// rpcReply is the reply frame.
type rpcReply struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Forward reply.
	Status int    `json:"status,omitempty"`
	Body   []byte `json:"body,omitempty"` // forward: response body; digest: framed entries
	// Ping reply.
	Ready bool `json:"ready,omitempty"`
	// Digest reply: how many entries the body carries.
	Entries int `json:"entries,omitempty"`
	// Journal reply: the cursor the requester should present next time.
	Next uint64 `json:"next,omitempty"`
	// Hole marks a journal reply whose Since cursor fell below the
	// peer's compaction horizon: the requested suffix no longer exists,
	// Next is the horizon, and the requester must digest-sync before
	// resuming incremental pulls.
	Hole bool `json:"hole,omitempty"`
}

// peerClient pools connections to one peer. Calls are sequential per
// connection (one frame out, one frame in); concurrent calls draw
// distinct connections from the pool or dial fresh ones.
type peerClient struct {
	addr string

	mu   sync.Mutex
	idle []net.Conn
}

// maxIdleConns bounds the per-peer pool; beyond it, finished
// connections close instead of parking.
const maxIdleConns = 4

func newPeerClient(addr string) *peerClient { return &peerClient{addr: addr} }

func (p *peerClient) get(dialTimeout time.Duration) (net.Conn, bool, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, true, nil
	}
	p.mu.Unlock()
	c, err := net.DialTimeout("tcp", p.addr, dialTimeout)
	return c, false, err
}

func (p *peerClient) put(c net.Conn) {
	p.mu.Lock()
	if len(p.idle) < maxIdleConns {
		p.idle = append(p.idle, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	_ = c.Close()
}

// closeIdle drops every pooled connection (peer crashed or left).
func (p *peerClient) closeIdle() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		_ = c.Close()
	}
}

// roundTrip performs one call on one connection under deadline.
func roundTrip(c net.Conn, req rpcRequest, deadline time.Time) (rpcReply, error) {
	var reply rpcReply
	if err := c.SetDeadline(deadline); err != nil {
		return reply, err
	}
	if err := cluster.WriteFrame(c, req); err != nil {
		return reply, err
	}
	if err := cluster.ReadFrame(c, maxRPCFrameBytes, &reply); err != nil {
		return reply, err
	}
	_ = c.SetDeadline(time.Time{})
	return reply, nil
}

// call runs one RPC with a bounded timeout. A call that fails on a
// pooled connection retries once on a fresh dial — pooled connections
// go stale when the peer restarts, and the retry is what makes the
// path self-healing rather than sticky-broken.
func (p *peerClient) call(req rpcRequest, timeout time.Duration) (rpcReply, error) {
	deadline := time.Now().Add(timeout) //gcvet:detrand-ok real I/O deadline on a live TCP connection
	c, pooled, err := p.get(timeout)
	if err != nil {
		return rpcReply{}, err
	}
	reply, err := roundTrip(c, req, deadline)
	if err == nil {
		p.put(c)
		return reply, nil
	}
	_ = c.Close()
	if !pooled {
		return rpcReply{}, err
	}
	// Stale pooled connection: one fresh attempt.
	//gcvet:detrand-ok real I/O deadline on a live TCP connection
	c2, err2 := net.DialTimeout("tcp", p.addr, time.Until(deadline))
	if err2 != nil {
		return rpcReply{}, err2
	}
	reply, err = roundTrip(c2, req, deadline)
	if err != nil {
		_ = c2.Close()
		return rpcReply{}, err
	}
	p.put(c2)
	return reply, nil
}

// serveRPC accepts connections on the replica's RPC listener. It runs
// once per incarnation: a crash closes the listener and every tracked
// connection, so peers see real connection failures, not polite
// refusals.
func (rp *Replica) serveRPC(ln net.Listener, stop chan struct{}) {
	defer rp.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !rp.trackConn(c) {
			_ = c.Close()
			return
		}
		rp.wg.Add(1)
		go rp.serveRPCConn(c, stop)
	}
}

// serveRPCConn handles one inbound connection: a loop of frame in,
// frame out. Any framing error closes the connection.
func (rp *Replica) serveRPCConn(c net.Conn, stop chan struct{}) {
	defer rp.wg.Done()
	defer rp.untrackConn(c)
	defer func() { _ = c.Close() }()
	for {
		var req rpcRequest
		if err := cluster.ReadFrame(c, maxRPCFrameBytes, &req); err != nil {
			return
		}
		reply := rp.handleRPC(req)
		if err := cluster.WriteFrame(c, reply); err != nil {
			return
		}
		select {
		case <-stop:
			return
		default:
		}
	}
}

// handleRPC dispatches one fleet operation.
func (rp *Replica) handleRPC(req rpcRequest) rpcReply {
	switch req.Op {
	case "ping":
		rp.sawPeer(req.From)
		return rpcReply{OK: true, Ready: rp.Ready()}
	case "leave":
		rp.peerLeft(req.From)
		return rpcReply{OK: true}
	case "forward":
		return rp.handleForward(req)
	case "digest":
		return rp.handleDigest(req)
	case "journal":
		return rp.handleJournalSuffix(req)
	}
	return rpcReply{Err: fmt.Sprintf("unknown op %q", req.Op)}
}
