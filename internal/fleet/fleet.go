package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/journal"
	"repro/internal/service"
)

// Config sizes a fleet. Zero values mean "use the default".
type Config struct {
	// Replicas is the number of checkd replicas (default 3).
	Replicas int
	// Service configures each replica's underlying service.Server.
	// CachePath must be empty — replicas do not share a snapshot file —
	// and so must JournalPath/JournalBackend: set Journal instead and
	// the fleet manages one backend per replica.
	Service service.Config
	// Journal event-sources every replica: each gets its own journal
	// backend, held by the fleet so it survives CrashReplica/
	// RestartReplica — a restarted replica replays its own history
	// instead of coming back cold. Anti-entropy then ships journal
	// suffixes (incremental, cursor-addressed) instead of full key
	// digests, falling back to digest mode against any peer without a
	// journal.
	Journal bool
	// VNodes is the consistent-hash points per replica (default 64).
	VNodes int
	// HeartbeatInterval paces membership pings (default 75ms).
	HeartbeatInterval time.Duration
	// SuspectAfter is how many consecutive heartbeat misses make a peer
	// suspected and remove it from the ring (default 3).
	SuspectAfter int
	// AntiEntropyInterval paces cache sync rounds (default 250ms;
	// negative disables the loop — rounds run only via
	// AntiEntropyRound, and readiness does not wait for one).
	AntiEntropyInterval time.Duration
	// ForwardTimeout bounds one forward or digest RPC (default 10s).
	ForwardTimeout time.Duration
	// MaxPullPerRound caps entries pulled per anti-entropy round
	// (default 256).
	MaxPullPerRound int
	// BreakerFailures is how many consecutive failed calls trip a
	// peer's circuit breaker open (default 3; negative disables
	// breakers — the PR-6 timeout-then-fallback behavior).
	BreakerFailures int
	// BreakerLatencyBreach trips a peer's breaker when its observed
	// p99 call latency exceeds it, even though calls succeed — the
	// gray-failure trip (default 500ms; negative disables it).
	BreakerLatencyBreach time.Duration
	// BreakerCooldown is the base open→half-open hold, doubled per
	// consecutive open up to 16× with seeded jitter (default 400ms).
	BreakerCooldown time.Duration
	// BreakerSeed seeds the breaker jitter RNGs (default 1).
	BreakerSeed int64
	// HedgeDelay is how long a forward may be in flight before local
	// compute races it: 0 derives a per-peer delay from the latency
	// tracker, > 0 fixes it, negative disables hedging.
	HedgeDelay time.Duration
	// FlapLimit quarantines a peer observed recovering more than this
	// many times inside FlapWindow (default 4; negative disables
	// quarantine).
	FlapLimit int
	// FlapWindow is the flap-counting window (default 5s).
	FlapWindow time.Duration
	// QuarantineHold is the base quarantine hold, doubled per repeat
	// offense (default 1s).
	QuarantineHold time.Duration
	// QuarantineHoldMax caps the exponential hold (default 30s).
	QuarantineHoldMax time.Duration
	// Logf, when non-nil, receives fleet and per-replica job log lines.
	// It must be safe for concurrent use.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 75 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
	if c.AntiEntropyInterval == 0 {
		c.AntiEntropyInterval = 250 * time.Millisecond
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 10 * time.Second
	}
	if c.MaxPullPerRound <= 0 {
		c.MaxPullPerRound = 256
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerLatencyBreach == 0 {
		c.BreakerLatencyBreach = 500 * time.Millisecond
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 400 * time.Millisecond
	}
	if c.BreakerSeed == 0 {
		c.BreakerSeed = 1
	}
	if c.FlapLimit == 0 {
		c.FlapLimit = 4
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 5 * time.Second
	}
	if c.QuarantineHold <= 0 {
		c.QuarantineHold = time.Second
	}
	if c.QuarantineHoldMax <= 0 {
		c.QuarantineHoldMax = 30 * time.Second
	}
	return c
}

// Fleet runs N replicas as one logical service on loopback listeners.
// Construct with New, dispose with Close. Fault methods (CrashReplica,
// RestartReplica, Partition, Heal) are how the chaos campaign engine —
// and tests — batter the fleet.
type Fleet struct {
	cfg      Config
	mon      *Monitor
	replicas []*Replica
}

// New starts a fleet: every replica gets an HTTP listener, an RPC
// listener, a fresh service.Server, and the full static member set in
// its ring; then the membership and anti-entropy loops start.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Service.CachePath != "" {
		return nil, fmt.Errorf("fleet: Service.CachePath must be empty (replicas cannot share one snapshot file)")
	}
	if cfg.Service.JournalPath != "" || cfg.Service.JournalBackend != nil {
		return nil, fmt.Errorf("fleet: Service journal fields must be empty (set Config.Journal; the fleet manages per-replica backends)")
	}
	f := &Fleet{cfg: cfg, mon: NewMonitor()}

	// Bind every listener first, so peer address books are complete
	// before any replica starts heartbeating.
	for i := 0; i < cfg.Replicas; i++ {
		rp := &Replica{id: fmt.Sprintf("r%d", i), idx: i, f: f}
		if cfg.Journal {
			// Fleet-held, so it outlives the replica's incarnations.
			rp.journal = journal.NewMemBackend(nil)
		}
		httpLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: http listen: %w", err)
		}
		rpcLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = httpLn.Close()
			f.Close()
			return nil, fmt.Errorf("fleet: rpc listen: %w", err)
		}
		rp.httpAddr = httpLn.Addr().String()
		rp.rpcAddr = rpcLn.Addr().String()
		rp.httpLn = httpLn
		rp.rpcLn = rpcLn
		f.replicas = append(f.replicas, rp)
	}
	for _, rp := range f.replicas {
		rp.peers = make(map[string]*peer, cfg.Replicas-1)
		for _, other := range f.replicas {
			if other.id == rp.id {
				continue
			}
			// Distinct deterministic seed per (observer, peer) edge so
			// breaker backoff jitter never synchronizes across the fleet.
			seed := cfg.BreakerSeed*int64(cfg.Replicas*cfg.Replicas+1) + int64(rp.idx*cfg.Replicas+other.idx)
			rp.peers[other.id] = &peer{
				id: other.id, addr: other.rpcAddr, client: newPeerClient(other.rpcAddr),
				br: newBreaker(cfg, seed),
			}
		}
		rp.start(rp.httpLn, rp.rpcLn)
	}
	return f, nil
}

// serviceConfig builds one replica's service configuration.
func (f *Fleet) serviceConfig(rp *Replica) service.Config {
	cfg := f.cfg.Service
	cfg.ResilienceMetrics = rp.resilienceSnapshot
	if rp.journal != nil {
		cfg.JournalBackend = rp.journal
	}
	if f.cfg.Logf != nil {
		id := rp.id
		cfg.Logf = func(format string, args ...any) {
			f.cfg.Logf("fleet "+id+": "+format, args...)
		}
	}
	return cfg
}

func (f *Fleet) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// start boots one replica incarnation: fresh service, fresh ring view
// holding every non-left member, loops running against a fresh stop
// channel.
func (rp *Replica) start(httpLn, rpcLn net.Listener) {
	svc := service.New(rp.f.serviceConfig(rp))
	ring := NewRing(rp.f.cfg.VNodes)
	ring.Add(rp.id)

	rp.mu.Lock()
	for _, p := range rp.peers {
		p.misses = 0
		p.suspected = false
		// A fresh incarnation starts with a clean opinion of its peers:
		// breakers closed, no flap history, no quarantine.
		p.br.reset()
		p.flapTimes = nil
		p.quarantines = 0
		p.quarantined = false
		p.paroleAt = time.Time{}
		// Reset the anti-entropy journal cursor: verdicts pulled cold
		// from this peer were never journaled locally, so a restarted
		// replica must re-pull from the beginning (PutCold makes the
		// overlap idempotent).
		p.journalCursor = 0
		if !p.left {
			ring.Add(p.id)
		}
	}
	rp.svc = svc
	rp.ring = ring
	rp.down = false
	rp.conns = make(map[net.Conn]bool)
	rp.blocked = make(map[string]bool)
	stop := make(chan struct{})
	rp.stop = stop
	rp.httpLn = httpLn
	rp.rpcLn = rpcLn
	rp.httpSrv = &http.Server{Handler: rp}
	rp.mu.Unlock()

	rp.joined.Store(false)
	rp.aeDone.Store(false)

	httpSrv := rp.httpSrv
	//gcvet:leak-ok Serve returns when shutdown() closes httpLn; the listener itself is the stop signal
	go func() { _ = httpSrv.Serve(httpLn) }()
	rp.wg.Add(3)
	go rp.serveRPC(rpcLn, stop)
	go rp.heartbeatLoop(stop)
	go rp.aeLoop(stop)
}

// shutdown stops one replica incarnation. Graceful leaves and crashes
// share it; only the surrounding bookkeeping differs.
func (rp *Replica) shutdown() {
	rp.mu.Lock()
	if rp.down {
		rp.mu.Unlock()
		return
	}
	rp.down = true
	svc := rp.svc
	rp.svc = nil
	stop := rp.stop
	httpSrv := rp.httpSrv
	rpcLn := rp.rpcLn
	for _, p := range rp.peers {
		p.client.closeIdle()
	}
	rp.mu.Unlock()

	close(stop)
	if httpSrv != nil {
		_ = httpSrv.Close()
	}
	if rpcLn != nil {
		_ = rpcLn.Close()
	}
	rp.closeConns()
	if svc != nil {
		svc.Close()
	}
}

// Replicas returns the fleet size (including crashed/stopped members).
func (f *Fleet) Replicas() int { return len(f.replicas) }

// Replica returns the i'th replica.
func (f *Fleet) Replica(i int) *Replica { return f.replicas[i] }

// HTTPAddrs lists every replica's HTTP address in index order.
func (f *Fleet) HTTPAddrs() []string {
	out := make([]string, len(f.replicas))
	for i, rp := range f.replicas {
		out[i] = rp.httpAddr
	}
	return out
}

// Monitor returns the fleet's shared membership monitor.
func (f *Fleet) Monitor() *Monitor { return f.mon }

// Events returns the membership event stream so far.
func (f *Fleet) Events() []Event { return f.mon.Events() }

// AntiEntropyRound runs one round on every live replica in index
// order and returns the total entries pulled. With a negative
// AntiEntropyInterval this is the only way rounds run — deterministic
// harnesses (loadgen -sequential, experiment E19) drive sync
// explicitly instead of racing a ticker.
func (f *Fleet) AntiEntropyRound() int {
	total := 0
	for _, rp := range f.replicas {
		total += rp.AntiEntropyRound()
	}
	return total
}

// live returns the ids of replicas that are up, sorted.
func (f *Fleet) live() []string {
	var out []string
	for _, rp := range f.replicas {
		rp.mu.Lock()
		up := !rp.down && !rp.leftFleet
		rp.mu.Unlock()
		if up {
			out = append(out, rp.id)
		}
	}
	sort.Strings(out)
	return out
}

// Converged reports whether every live replica has joined and agrees
// that the ring is exactly the live member set — the fleet control
// plane's closure predicate.
func (f *Fleet) Converged() bool {
	want := f.live()
	for _, rp := range f.replicas {
		rp.mu.Lock()
		up := !rp.down && !rp.leftFleet
		rp.mu.Unlock()
		if !up {
			continue
		}
		if !rp.joined.Load() {
			return false
		}
		got := rp.RingMembers()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
	}
	return true
}

// AwaitConverged polls Converged until it holds or the deadline
// passes.
func (f *Fleet) AwaitConverged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout) //gcvet:detrand-ok real deadline polling live TCP replicas
	for {
		if f.Converged() {
			return true
		}
		//gcvet:detrand-ok real deadline polling live TCP replicas
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// AwaitReady polls until every live replica reports Ready.
func (f *Fleet) AwaitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout) //gcvet:detrand-ok real deadline polling live TCP replicas
	for {
		ready := true
		for _, rp := range f.replicas {
			rp.mu.Lock()
			up := !rp.down && !rp.leftFleet
			rp.mu.Unlock()
			if up && !rp.Ready() {
				ready = false
				break
			}
		}
		if ready {
			return true
		}
		//gcvet:detrand-ok real deadline polling live TCP replicas
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// CrashReplica kills replica i without ceremony: listeners and live
// connections close, the service dies with its cache. Peers notice by
// heartbeat misses.
func (f *Fleet) CrashReplica(i int) {
	rp := f.replicas[i]
	rp.mu.Lock()
	down := rp.down
	rp.mu.Unlock()
	if down {
		return
	}
	f.mon.emit(KindCrash, rp.id, "", "")
	rp.shutdown()
}

// RestartReplica brings a crashed replica back on its original
// addresses with a cold cache and a fresh ring view. Peers re-admit it
// on the first successful heartbeat; anti-entropy refills its cache.
func (f *Fleet) RestartReplica(i int) error {
	rp := f.replicas[i]
	rp.mu.Lock()
	down := rp.down
	rp.mu.Unlock()
	if !down {
		return nil
	}
	httpLn, err := listenBack(rp.httpAddr)
	if err != nil {
		return fmt.Errorf("fleet: restart %s http: %w", rp.id, err)
	}
	rpcLn, err := listenBack(rp.rpcAddr)
	if err != nil {
		_ = httpLn.Close()
		return fmt.Errorf("fleet: restart %s rpc: %w", rp.id, err)
	}
	f.mon.emit(KindRestart, rp.id, "", "")
	rp.start(httpLn, rpcLn)
	// Tell peers that previously saw a graceful leave the member is back.
	for _, other := range f.replicas {
		if other != rp {
			other.peerReturned(rp.id)
		}
	}
	rp.mu.Lock()
	rp.leftFleet = false
	rp.mu.Unlock()
	return nil
}

// listenBack rebinds an exact address, retrying briefly: the old
// listener's port can linger for a moment after a crash.
func listenBack(addr string) (net.Listener, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, lastErr
}

// StopReplica removes replica i gracefully: it notifies every live
// peer before going dark, so peers drop it immediately instead of
// suspecting it after misses.
func (f *Fleet) StopReplica(i int) {
	rp := f.replicas[i]
	rp.mu.Lock()
	down := rp.down
	rp.mu.Unlock()
	if down {
		return
	}
	for _, p := range rp.allPeers() {
		_, _ = rp.callPeer(p.id, rpcRequest{Op: "leave", From: rp.id}, f.cfg.HeartbeatInterval*2)
	}
	f.mon.emit(KindReplicaLeft, rp.id, "", "graceful")
	rp.shutdown()
	rp.mu.Lock()
	rp.leftFleet = true
	rp.mu.Unlock()
}

// Partition cuts the fleet into two sides by replica index: every
// RPC across the cut fails until Heal. One-sided views are possible
// mid-cut (exactly as on a real network); the suspicion machinery
// shrinks each side's ring to its own island.
func (f *Fleet) Partition(a, b []int) {
	for _, i := range a {
		for _, j := range b {
			f.replicas[i].block(f.replicas[j].id)
			f.replicas[j].block(f.replicas[i].id)
		}
	}
	f.mon.emit(KindPartition, "", "", cutDetail(a, b))
}

// HealCut removes one specific cut (the pairs it blocked), leaving any
// other active cuts in place — overlapping partitions heal
// independently.
func (f *Fleet) HealCut(a, b []int) {
	for _, i := range a {
		for _, j := range b {
			f.replicas[i].unblock(f.replicas[j].id)
			f.replicas[j].unblock(f.replicas[i].id)
		}
	}
	f.mon.emit(KindHeal, "", "", cutDetail(a, b))
}

// Heal removes every partition in the fleet.
func (f *Fleet) Heal() {
	for _, rp := range f.replicas {
		rp.mu.Lock()
		rp.blocked = make(map[string]bool)
		rp.mu.Unlock()
	}
	f.mon.emit(KindHeal, "", "", "")
}

// PartitionOneWay cuts only the a→b direction: every replica in a
// fails its calls to every replica in b (and stops crediting their
// inbound RPCs as liveness), while b still reaches a — the asymmetric
// gray failure where one side's view disagrees with the other's.
func (f *Fleet) PartitionOneWay(a, b []int) {
	for _, i := range a {
		for _, j := range b {
			f.replicas[i].block(f.replicas[j].id)
		}
	}
	f.mon.emit(KindAsymPartition, "", "", cutDetail(a, b))
}

// SlowReplica injects d of latency into every data-plane RPC replica i
// serves (forward, digest, journal) — pings stay fast, so membership
// keeps trusting a replica whose data plane is dragging. d = 0 clears
// the fault. Events are emitted only on an actual change.
func (f *Fleet) SlowReplica(i int, d time.Duration) {
	rp := f.replicas[i]
	old := rp.slowDelay.Swap(int64(d))
	if old == int64(d) {
		return
	}
	if d > 0 {
		f.mon.emit(KindSlowPeer, rp.id, "", fmt.Sprintf("delay=%s", d))
	} else {
		f.mon.emit(KindHeal, rp.id, "", "slow-peer cleared")
	}
}

// GarbageReplica makes replica i answer data-plane RPCs with
// well-framed but semantically hostile replies (hostile = true), or
// clears the fault (hostile = false).
func (f *Fleet) GarbageReplica(i int, hostile bool) {
	rp := f.replicas[i]
	if rp.garbage.Swap(hostile) == hostile {
		return
	}
	if hostile {
		f.mon.emit(KindGarbageReply, rp.id, "", "")
	} else {
		f.mon.emit(KindHeal, rp.id, "", "garbage-reply cleared")
	}
}

// ParoleAll releases every quarantined peer view in the fleet
// immediately (campaign cleanup: a quarantine hold must not stall the
// post-campaign convergence gate). Paroled peers still re-enter as
// suspected and must earn a heartbeat.
func (f *Fleet) ParoleAll() {
	for _, rp := range f.replicas {
		var paroled []string
		rp.mu.Lock()
		for _, p := range rp.peers {
			if p.quarantined {
				p.quarantined = false
				p.suspected = true
				p.misses = f.cfg.SuspectAfter
				p.flapTimes = nil
				p.paroleAt = time.Time{}
				paroled = append(paroled, p.id)
			}
		}
		rp.mu.Unlock()
		sort.Strings(paroled)
		for _, id := range paroled {
			f.mon.emit(KindParoled, id, rp.id, "campaign cleanup")
		}
	}
}

func cutDetail(a, b []int) string {
	var sb strings.Builder
	for k, i := range a {
		if k > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "r%d", i)
	}
	sb.WriteByte('|')
	for k, j := range b {
		if k > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "r%d", j)
	}
	return sb.String()
}

// Close shuts every replica down.
func (f *Fleet) Close() {
	for _, rp := range f.replicas {
		rp.shutdown()
	}
	for _, rp := range f.replicas {
		rp.wg.Wait()
	}
}

// mustJSON marshals a value the package itself constructed.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
