package fleet

import (
	"testing"
	"time"
)

// fakeClock is an injected breaker clock: tests advance it explicitly,
// so every hold expiry is exact and no test sleeps.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// testBreaker builds a breaker on the fake clock with a fixed seed, so
// the jittered holds are reproducible run to run.
func testBreaker(clk *fakeClock, failures int, breach, cooldown time.Duration) *breaker {
	b := newBreaker(Config{
		BreakerFailures:      failures,
		BreakerLatencyBreach: breach,
		BreakerCooldown:      cooldown,
	}, 7)
	b.now = clk.now
	return b
}

// The breaker state machine, table-driven: each case is a script of
// operations against a fresh breaker and the state it must land in.
func TestBreakerStateMachine(t *testing.T) {
	const cooldown = 100 * time.Millisecond
	// maxHold bounds any single hold in these scripts: base cooldown,
	// doubled per re-open up to the shift cap, plus 25% jitter.
	maxHold := time.Duration(float64(cooldown<<breakerMaxBackoffShift) * 1.25)

	type step struct {
		op  string        // "fail", "ok", "allow", "deny", "advance"
		rtt time.Duration // for "ok"
		d   time.Duration // for "advance"
	}
	cases := []struct {
		name     string
		failures int
		breach   time.Duration
		steps    []step
		want     string
	}{
		{
			name: "closed survives sub-threshold failures", failures: 3,
			steps: []step{{op: "fail"}, {op: "fail"}, {op: "allow"}},
			want:  breakerClosed,
		},
		{
			name: "consecutive failures trip open", failures: 3,
			steps: []step{{op: "fail"}, {op: "fail"}, {op: "fail"}, {op: "deny"}},
			want:  breakerOpen,
		},
		{
			name: "a success resets the failure count", failures: 2,
			steps: []step{{op: "fail"}, {op: "ok", rtt: time.Millisecond}, {op: "fail"}, {op: "allow"}},
			want:  breakerClosed,
		},
		{
			name: "hold expiry admits one half-open probe", failures: 1,
			steps: []step{{op: "fail"}, {op: "advance", d: maxHold}, {op: "allow"}, {op: "deny"}},
			want:  breakerHalfOpen,
		},
		{
			name: "probe success closes", failures: 1,
			steps: []step{{op: "fail"}, {op: "advance", d: maxHold}, {op: "allow"}, {op: "ok", rtt: time.Millisecond}, {op: "allow"}},
			want:  breakerClosed,
		},
		{
			name: "probe failure re-opens", failures: 1,
			steps: []step{{op: "fail"}, {op: "advance", d: maxHold}, {op: "allow"}, {op: "fail"}, {op: "deny"}},
			want:  breakerOpen,
		},
		{
			name: "re-open doubles the hold", failures: 1,
			steps: []step{
				{op: "fail"}, // streak 1: hold ∈ [c, 1.25c]
				{op: "advance", d: maxHold},
				{op: "allow"}, {op: "fail"}, // streak 2: hold ∈ [2c, 2.5c]
				{op: "advance", d: cooldown}, // one base cooldown is not enough now
				{op: "deny"},
			},
			want: breakerOpen,
		},
		{
			name: "latency breach trips at the sample floor", failures: 3, breach: 50 * time.Millisecond,
			steps: []step{
				{op: "ok", rtt: time.Millisecond},
				{op: "ok", rtt: time.Millisecond},
				{op: "ok", rtt: 200 * time.Millisecond}, // 3 samples: below the floor, no trip
				{op: "allow"},
				{op: "ok", rtt: 200 * time.Millisecond}, // 4th sample: p99 over breach
				{op: "deny"},
			},
			want: breakerOpen,
		},
		{
			name: "disabled gating never trips", failures: -1, breach: -1,
			steps: []step{{op: "fail"}, {op: "fail"}, {op: "fail"}, {op: "fail"}, {op: "allow"}},
			want:  breakerClosed,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{t: time.Unix(1000, 0)}
			b := testBreaker(clk, tc.failures, tc.breach, cooldown)
			for i, s := range tc.steps {
				switch s.op {
				case "fail":
					b.failure()
				case "ok":
					b.success(s.rtt)
				case "advance":
					clk.advance(s.d)
				case "allow", "deny":
					got, _ := b.allow()
					if want := s.op == "allow"; got != want {
						t.Fatalf("step %d: allow() = %v, want %v (state %s)", i, got, want, b.currentState())
					}
				default:
					t.Fatalf("step %d: unknown op %q", i, s.op)
				}
			}
			if got := b.currentState(); got != tc.want {
				t.Fatalf("final state %s, want %s", got, tc.want)
			}
		})
	}
}

// A trip clears the latency window: the sick-peer samples that caused
// the breach must not re-trip the breaker the moment a recovered peer
// closes it.
func TestBreakerTripClearsLatencyWindow(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := testBreaker(clk, 3, 50*time.Millisecond, 100*time.Millisecond)
	for i := 0; i < breachMinSamples; i++ {
		b.success(200 * time.Millisecond)
	}
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state after breach = %s, want open", got)
	}
	clk.advance(time.Second)
	if ok, _ := b.allow(); !ok {
		t.Fatal("hold expired but probe refused")
	}
	// The probe success closes the breaker; with the window cleared it
	// must take a fresh breachMinSamples of slow round trips to re-trip.
	b.success(200 * time.Millisecond)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after probe success = %s, want closed", got)
	}
	for i := 0; i < breachMinSamples-2; i++ {
		b.success(200 * time.Millisecond)
	}
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("re-tripped with only %d fresh samples", breachMinSamples-1)
	}
	b.success(200 * time.Millisecond)
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state with %d fresh slow samples = %s, want open", breachMinSamples, got)
	}
}

// Breaker events carry the transition story the monitor emits.
func TestBreakerEvents(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := testBreaker(clk, 1, 0, 100*time.Millisecond)

	evs := b.failure()
	if len(evs) != 1 || evs[0].kind != KindBreakerOpen {
		t.Fatalf("trip events = %+v, want one %s", evs, KindBreakerOpen)
	}
	clk.advance(time.Second)
	_, evs = b.allow()
	if len(evs) != 1 || evs[0].kind != KindBreakerHalfOpen {
		t.Fatalf("probe-admit events = %+v, want one %s", evs, KindBreakerHalfOpen)
	}
	evs = b.success(time.Millisecond)
	if len(evs) != 1 || evs[0].kind != KindBreakerClosed {
		t.Fatalf("probe-success events = %+v, want one %s", evs, KindBreakerClosed)
	}
	st := b.stats()
	if st.opens != 1 || st.halfOpens != 1 || st.closes != 1 {
		t.Fatalf("stats = %+v, want opens=1 halfOpens=1 closes=1", st)
	}
}

// The hedge delay is derived from the same tracker: cold default before
// the sample floor, 2×p95 clamped to [floor, cap] after.
func TestBreakerHedgeDelay(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := testBreaker(clk, 3, 0, 100*time.Millisecond)
	if got := b.hedgeDelay(); got != hedgeDelayCold {
		t.Fatalf("cold hedge delay = %v, want %v", got, hedgeDelayCold)
	}
	for i := 0; i < breachMinSamples; i++ {
		b.success(time.Millisecond) // 2×p95 = 2ms, below the floor
	}
	if got := b.hedgeDelay(); got != hedgeDelayFloor {
		t.Fatalf("fast-peer hedge delay = %v, want floor %v", got, hedgeDelayFloor)
	}
	for i := 0; i < breakerSamples; i++ {
		b.success(100 * time.Millisecond) // 2×p95 = 200ms, above the cap
	}
	if got := b.hedgeDelay(); got != hedgeDelayCap {
		t.Fatalf("slow-peer hedge delay = %v, want cap %v", got, hedgeDelayCap)
	}
	var nilBreaker *breaker
	if got := nilBreaker.hedgeDelay(); got != hedgeDelayCold {
		t.Fatalf("nil breaker hedge delay = %v, want cold %v", got, hedgeDelayCold)
	}
}

// Open-state refusals are counted: every skip is a dial the request
// did not pay.
func TestBreakerSkipsCounted(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := testBreaker(clk, 1, 0, time.Hour)
	b.failure()
	for i := 0; i < 3; i++ {
		if ok, _ := b.allow(); ok {
			t.Fatal("open breaker allowed a call inside its hold")
		}
	}
	if st := b.stats(); st.skips != 3 {
		t.Fatalf("skips = %d, want 3", st.skips)
	}
}
