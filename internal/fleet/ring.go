// Package fleet runs N checkd replicas as one logical service: a
// consistent-hash ring keyed on gcl.Fingerprint routes each
// program-addressed request (selfstab, refine, lint) to its owner
// replica, a distributed verdict cache layers anti-entropy sync on the
// persistent cache's kind-tagged snapshot framing, and a membership
// monitor watches replicas join, leave, crash, and recover — under the
// same chaos campaign engine that batters the ring protocols.
//
// The design dogfoods the paper's own thesis: the fleet's control
// plane (ring membership, cache contents) self-stabilizes through
// transient corruption. A partition makes replicas suspect each other
// and shrink their rings; requests owned by an unreachable replica
// fall back to local compute, never a 5xx; when the partition heals,
// heartbeats re-admit the peers, rings re-converge to agreement, and
// anti-entropy rounds pull the verdicts computed on the other side of
// the cut. No step of this requires a correct past — exactly the
// unsupportive-environment regime the convergence-refinement paper
// assumes of its protocols.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring over replica ids. Each member
// projects VNodes points onto a 64-bit circle; a key is owned by the
// member of the first point clockwise of the key's hash. The
// projection is pure (SHA-256 of member id and vnode index), so every
// replica that agrees on the member set agrees on every owner — there
// is no coordination, and after a membership change only the keys
// whose arcs moved change owner (≈ 1/N of the space per member).
//
// Ring is not goroutine-safe; the Replica guards it with its own lock.
type Ring struct {
	vnodes  int
	members map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring with vnodes points per member
// (vnodes ≤ 0 selects the default of 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hashBytes maps arbitrary bytes to a point on the circle.
func hashBytes(b []byte) uint64 {
	sum := sha256.Sum256(b)
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	var buf []byte
	for i := 0; i < r.vnodes; i++ {
		buf = buf[:0]
		buf = append(buf, member...)
		buf = append(buf, '#')
		buf = binary.BigEndian.AppendUint32(buf, uint32(i))
		r.points = append(r.points, ringPoint{hash: hashBytes(buf), member: member})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(member string) bool { return r.members[member] }

// Members returns the member set, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning key, or "" when the ring is empty.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashBytes([]byte(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise of the circle's end
	}
	return r.points[i].member
}
