package fleet

import "sync"

// Event is one structured membership observation. The stream is the
// fleet's observable story: replicas joining and leaving, suspicion
// and recovery as heartbeats fail and return, and the faults the
// campaign engine injects. Where the cluster Monitor watches register
// legitimacy, this monitor watches control-plane legitimacy — the ring
// views re-converging to the live member set.
type Event struct {
	// Seq orders events across the whole fleet.
	Seq int `json:"seq"`
	// Kind is one of the Kind* registry constants (events.go).
	Kind string `json:"kind"`
	// Replica is the subject of the event.
	Replica string `json:"replica,omitempty"`
	// Observer is the replica that noticed, for observations one
	// replica makes about another (suspected, recovered).
	Observer string `json:"observer,omitempty"`
	// Detail carries event-specific context (cut description, entries
	// pulled, …).
	Detail string `json:"detail,omitempty"`
}

// maxMonitorEvents bounds the retained stream; long campaigns drop the
// oldest events (counted) rather than growing without bound.
const maxMonitorEvents = 8192

// Monitor collects the fleet's event stream. All replicas of one fleet
// share a Monitor, so the stream is totally ordered by Seq.
type Monitor struct {
	mu      sync.Mutex
	seq     int
	events  []Event
	dropped int
}

// NewMonitor builds an empty monitor.
func NewMonitor() *Monitor { return &Monitor{} }

func (m *Monitor) emit(kind, replica, observer, detail string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	if len(m.events) >= maxMonitorEvents {
		copy(m.events, m.events[1:])
		m.events = m.events[:len(m.events)-1]
		m.dropped++
	}
	m.events = append(m.events, Event{
		Seq: m.seq, Kind: kind, Replica: replica, Observer: observer, Detail: detail,
	})
}

// Events returns a copy of the retained stream.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Dropped reports events discarded once the retention bound was hit.
func (m *Monitor) Dropped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Count returns how many events of kind are retained.
func (m *Monitor) Count(kind string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
