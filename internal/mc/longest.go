package mc

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/system"
)

// ErrCyclic reports that the region contains a cycle, so no longest path
// exists.
var ErrCyclic = errors.New("region is cyclic")

// LongestEscape computes the exact worst-case number of steps a daemon
// can keep the system inside `region` before every continuation has left
// it: the longest path through the subgraph induced by region, plus the
// final exiting step. For a stabilizing system with region = the
// complement of its legitimate set, this is the adversarial worst-case
// recovery time — the restriction is a DAG precisely because the system
// stabilizes, and the function returns ErrCyclic otherwise (wrapped with
// a witness state).
//
// States of region with no outgoing transitions at all contribute paths
// that end inside the region (the computation terminates there); they are
// counted without the exiting step.
func LongestEscape(sys *system.System, region *bitset.Set) (int, error) {
	return LongestEscapeGas(nil, sys, region)
}

// LongestEscapeGas is LongestEscape under a meter: one tick per
// examined edge, so a budget bounds the DFS over the induced DAG.
func LongestEscapeGas(g *Gas, sys *system.System, region *bitset.Set) (int, error) {
	// Longest path over the induced DAG by memoized DFS with cycle
	// detection (colors: 0 unvisited, 1 on stack, 2 done).
	n := sys.NumStates()
	color := make([]uint8, n)
	memo := make([]int, n)

	var visit func(s int) (int, error)
	visit = func(s int) (int, error) {
		switch color[s] {
		case 1:
			return 0, fmt.Errorf("mc: state %d: %w", s, ErrCyclic)
		case 2:
			return memo[s], nil
		}
		color[s] = 1
		best := 0
		for _, t := range sys.Succ(s) {
			if err := g.Tick(1); err != nil {
				return 0, err
			}
			if !region.Has(t) {
				// Exiting step.
				if best < 1 {
					best = 1
				}
				continue
			}
			sub, err := visit(t)
			if err != nil {
				return 0, err
			}
			if sub+1 > best {
				best = sub + 1
			}
		}
		color[s] = 2
		memo[s] = best
		return best, nil
	}

	longest := 0
	var failure error
	region.ForEach(func(s int) {
		if failure != nil {
			return
		}
		d, err := visit(s)
		if err != nil {
			failure = err
			return
		}
		if d > longest {
			longest = d
		}
	})
	if failure != nil {
		return 0, failure
	}
	return longest, nil
}

// WorstCaseRecovery returns the exact adversarial worst-case number of
// steps from any state of sys to its legitimate region (the states given
// as a sorted slice, e.g. StabilizationReport.Legitimate). It errors if
// the illegitimate region is cyclic — i.e. if sys does not actually
// converge.
func WorstCaseRecovery(sys *system.System, legitimate []int) (int, error) {
	return WorstCaseRecoveryGas(nil, sys, legitimate)
}

// WorstCaseRecoveryGas is WorstCaseRecovery under a meter.
func WorstCaseRecoveryGas(g *Gas, sys *system.System, legitimate []int) (int, error) {
	region := bitset.Full(sys.NumStates())
	for _, s := range legitimate {
		if err := g.Tick(1); err != nil {
			return 0, err
		}
		region.Remove(s)
	}
	if region.Empty() {
		return 0, nil
	}
	return LongestEscapeGas(g, sys, region)
}
