// Package mc is the graph engine under the refinement and stabilization
// checkers: forward/backward reachability, Tarjan strongly-connected
// components, shortest-path witnesses, and cycle detection restricted to a
// state subset. Everything operates on the automata of internal/system and
// is deterministic (successors are visited in sorted order).
//
// Every sweep comes in two forms: the plain entry point (Reach, SCCs, …),
// which always runs to completion, and a metered variant (ReachGas,
// SCCsGas, …) that ticks a Gas each visited state/edge so a server can
// cancel or budget-bound a check mid-flight.
package mc

import (
	"repro/internal/bitset"
	"repro/internal/system"
)

// Reach returns the set of states reachable from `from` via zero or more
// transitions of sys (so `from` itself is included).
func Reach(sys *system.System, from *bitset.Set) *bitset.Set {
	seen, _ := ReachGas(nil, sys, from)
	return seen
}

// ReachGas is Reach with cancellation: it ticks g once per expanded state
// plus once per traversed edge and aborts with g's error when the meter
// trips.
func ReachGas(g *Gas, sys *system.System, from *bitset.Set) (*bitset.Set, error) {
	seen := from.Clone()
	stack := from.Members()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succ := sys.Succ(s)
		if err := g.Tick(1 + len(succ)); err != nil {
			return nil, err
		}
		for _, t := range succ {
			if !seen.Has(t) {
				seen.Add(t)
				stack = append(stack, t)
			}
		}
	}
	return seen, nil
}

// ReachFromInit returns the states reachable from the initial states: the
// legitimate-state region of a specification.
func ReachFromInit(sys *system.System) *bitset.Set {
	return Reach(sys, sys.Init())
}

// ReachFromInitGas is ReachFromInit under a meter.
func ReachFromInitGas(g *Gas, sys *system.System) (*bitset.Set, error) {
	return ReachGas(g, sys, sys.Init())
}

// CanReach returns the set of states from which some state in `target` is
// reachable (backward reachability; includes target itself). Backward edges
// are materialized on the fly by a predecessor index.
func CanReach(sys *system.System, target *bitset.Set) *bitset.Set {
	seen, _ := CanReachGas(nil, sys, target)
	return seen
}

// CanReachGas is CanReach under a meter (the predecessor-index build is
// metered too: it alone touches every edge of the system).
func CanReachGas(g *Gas, sys *system.System, target *bitset.Set) (*bitset.Set, error) {
	pred, err := predecessorsGas(g, sys)
	if err != nil {
		return nil, err
	}
	seen := target.Clone()
	stack := target.Members()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if err := g.Tick(1 + len(pred[s])); err != nil {
			return nil, err
		}
		for _, p := range pred[s] {
			if !seen.Has(p) {
				seen.Add(p)
				stack = append(stack, p)
			}
		}
	}
	return seen, nil
}

// Predecessors builds the reversed adjacency of sys: pred[t] lists every s
// with (s, t) ∈ T, in increasing order.
func Predecessors(sys *system.System) [][]int {
	pred, _ := predecessorsGas(nil, sys)
	return pred
}

func predecessorsGas(g *Gas, sys *system.System) ([][]int, error) {
	n := sys.NumStates()
	counts := make([]int, n)
	for s := 0; s < n; s++ {
		succ := sys.Succ(s)
		if err := g.Tick(len(succ)); err != nil {
			return nil, err
		}
		for _, t := range succ {
			counts[t]++
		}
	}
	pred := make([][]int, n)
	for t := 0; t < n; t++ {
		if counts[t] > 0 {
			pred[t] = make([]int, 0, counts[t])
		}
	}
	for s := 0; s < n; s++ {
		for _, t := range sys.Succ(s) {
			pred[t] = append(pred[t], s)
		}
	}
	return pred, nil
}

// BFSTree holds the result of a breadth-first search from a single source:
// distances (-1 for unreachable) and BFS-tree parents (-1 for source and
// unreachable states). Paths reconstructed from it are shortest paths.
type BFSTree struct {
	Source int
	Dist   []int
	Parent []int
}

// BFS runs a breadth-first search over sys from source. If within is
// non-nil the search only traverses states in it (the source must be a
// member).
func BFS(sys *system.System, source int, within *bitset.Set) *BFSTree {
	tr, _ := BFSGas(nil, sys, source, within)
	return tr
}

// BFSGas is BFS under a meter.
func BFSGas(g *Gas, sys *system.System, source int, within *bitset.Set) (*BFSTree, error) {
	n := sys.NumStates()
	tr := &BFSTree{Source: source, Dist: make([]int, n), Parent: make([]int, n)}
	for i := range tr.Dist {
		tr.Dist[i] = -1
		tr.Parent[i] = -1
	}
	tr.Dist[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		succ := sys.Succ(s)
		if err := g.Tick(1 + len(succ)); err != nil {
			return nil, err
		}
		for _, t := range succ {
			if within != nil && !within.Has(t) {
				continue
			}
			if tr.Dist[t] == -1 {
				tr.Dist[t] = tr.Dist[s] + 1
				tr.Parent[t] = s
				queue = append(queue, t)
			}
		}
	}
	return tr, nil
}

// PathTo reconstructs the shortest path from the tree's source to t,
// inclusive of both endpoints. It returns nil if t is unreachable. For
// t == source it returns the one-state path.
func (tr *BFSTree) PathTo(t int) []int {
	if tr.Dist[t] == -1 {
		return nil
	}
	path := make([]int, tr.Dist[t]+1)
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = t
		t = tr.Parent[t]
	}
	return path
}

// ShortestPath returns a shortest path from `from` to `to` (inclusive), or
// nil if none exists.
func ShortestPath(sys *system.System, from, to int) []int {
	return BFS(sys, from, nil).PathTo(to)
}

// PathFromInit returns a shortest path from some initial state of sys to
// target, or nil if target is unreachable from I.
func PathFromInit(sys *system.System, target int) []int {
	p, _ := PathFromInitGas(nil, sys, target)
	return p
}

// PathFromInitGas is PathFromInit under a meter.
func PathFromInitGas(g *Gas, sys *system.System, target int) ([]int, error) {
	var best []int
	var err error
	sys.Init().ForEach(func(s int) {
		if err != nil {
			return
		}
		tr, e := BFSGas(g, sys, s, nil)
		if e != nil {
			err = e
			return
		}
		if p := tr.PathTo(target); p != nil && (best == nil || len(p) < len(best)) {
			best = p
		}
	})
	if err != nil {
		return nil, err
	}
	return best, nil
}
