// Package mc is the graph engine under the refinement and stabilization
// checkers: forward/backward reachability, Tarjan strongly-connected
// components, shortest-path witnesses, and cycle detection restricted to a
// state subset. Everything operates on the automata of internal/system and
// is deterministic (successors are visited in sorted order).
package mc

import (
	"repro/internal/bitset"
	"repro/internal/system"
)

// Reach returns the set of states reachable from `from` via zero or more
// transitions of sys (so `from` itself is included).
func Reach(sys *system.System, from *bitset.Set) *bitset.Set {
	seen := from.Clone()
	stack := from.Members()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range sys.Succ(s) {
			if !seen.Has(t) {
				seen.Add(t)
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// ReachFromInit returns the states reachable from the initial states: the
// legitimate-state region of a specification.
func ReachFromInit(sys *system.System) *bitset.Set {
	return Reach(sys, sys.Init())
}

// CanReach returns the set of states from which some state in `target` is
// reachable (backward reachability; includes target itself). Backward edges
// are materialized on the fly by a predecessor index.
func CanReach(sys *system.System, target *bitset.Set) *bitset.Set {
	pred := Predecessors(sys)
	seen := target.Clone()
	stack := target.Members()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pred[s] {
			if !seen.Has(p) {
				seen.Add(p)
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Predecessors builds the reversed adjacency of sys: pred[t] lists every s
// with (s, t) ∈ T, in increasing order.
func Predecessors(sys *system.System) [][]int {
	n := sys.NumStates()
	counts := make([]int, n)
	for s := 0; s < n; s++ {
		for _, t := range sys.Succ(s) {
			counts[t]++
		}
	}
	pred := make([][]int, n)
	for t := 0; t < n; t++ {
		if counts[t] > 0 {
			pred[t] = make([]int, 0, counts[t])
		}
	}
	for s := 0; s < n; s++ {
		for _, t := range sys.Succ(s) {
			pred[t] = append(pred[t], s)
		}
	}
	return pred
}

// BFSTree holds the result of a breadth-first search from a single source:
// distances (-1 for unreachable) and BFS-tree parents (-1 for source and
// unreachable states). Paths reconstructed from it are shortest paths.
type BFSTree struct {
	Source int
	Dist   []int
	Parent []int
}

// BFS runs a breadth-first search over sys from source. If within is
// non-nil the search only traverses states in it (the source must be a
// member).
func BFS(sys *system.System, source int, within *bitset.Set) *BFSTree {
	n := sys.NumStates()
	tr := &BFSTree{Source: source, Dist: make([]int, n), Parent: make([]int, n)}
	for i := range tr.Dist {
		tr.Dist[i] = -1
		tr.Parent[i] = -1
	}
	tr.Dist[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range sys.Succ(s) {
			if within != nil && !within.Has(t) {
				continue
			}
			if tr.Dist[t] == -1 {
				tr.Dist[t] = tr.Dist[s] + 1
				tr.Parent[t] = s
				queue = append(queue, t)
			}
		}
	}
	return tr
}

// PathTo reconstructs the shortest path from the tree's source to t,
// inclusive of both endpoints. It returns nil if t is unreachable. For
// t == source it returns the one-state path.
func (tr *BFSTree) PathTo(t int) []int {
	if tr.Dist[t] == -1 {
		return nil
	}
	path := make([]int, tr.Dist[t]+1)
	for i := len(path) - 1; i >= 0; i-- {
		path[i] = t
		t = tr.Parent[t]
	}
	return path
}

// ShortestPath returns a shortest path from `from` to `to` (inclusive), or
// nil if none exists.
func ShortestPath(sys *system.System, from, to int) []int {
	return BFS(sys, from, nil).PathTo(to)
}

// PathFromInit returns a shortest path from some initial state of sys to
// target, or nil if target is unreachable from I.
func PathFromInit(sys *system.System, target int) []int {
	var best []int
	sys.Init().ForEach(func(s int) {
		if p := ShortestPath(sys, s, target); p != nil && (best == nil || len(p) < len(best)) {
			best = p
		}
	})
	return best
}
