package mc

import (
	"repro/internal/bitset"
	"repro/internal/system"
)

// GreatestFixpoint computes the largest subset of seed on which keep is
// stable: starting from seed, states for which keep(s, current) is false
// are removed until no more removals occur. keep must be monotone in its
// second argument (removing states can only turn keep false, never true);
// all uses in this repository — closure under transitions with side
// conditions — are monotone.
func GreatestFixpoint(seed *bitset.Set, keep func(s int, current *bitset.Set) bool) *bitset.Set {
	cur, _ := GreatestFixpointGas(nil, seed, keep)
	return cur
}

// GreatestFixpointGas is GreatestFixpoint under a meter: one tick per
// keep evaluation, so a budget bounds the total work of the iteration.
func GreatestFixpointGas(g *Gas, seed *bitset.Set, keep func(s int, current *bitset.Set) bool) (*bitset.Set, error) {
	cur := seed.Clone()
	for {
		var removed []int
		var err error
		cur.ForEach(func(s int) {
			if err != nil {
				return
			}
			if err = g.Tick(1); err != nil {
				return
			}
			if !keep(s, cur) {
				removed = append(removed, s)
			}
		})
		if err != nil {
			return nil, err
		}
		if len(removed) == 0 {
			return cur, nil
		}
		for _, s := range removed {
			cur.Remove(s)
		}
	}
}

// Lasso is a witness for a maximal computation that never leaves a state
// region: a finite Stem followed either by a Loop (infinite computation) or
// by termination at the stem's last state (Loop nil).
type Lasso struct {
	Stem []int // non-empty; Stem[0] is the starting state
	Loop []int // nil for a finite (terminating) witness
}

// Infinite reports whether the witness denotes an infinite computation.
func (l *Lasso) Infinite() bool { return len(l.Loop) > 0 }

// States returns stem followed by one unrolling of the loop.
func (l *Lasso) States() []int {
	out := make([]int, 0, len(l.Stem)+len(l.Loop))
	out = append(out, l.Stem...)
	out = append(out, l.Loop...)
	return out
}

// TrappedWitness searches for a maximal computation of sys that starts in
// `from` and stays forever inside `region`: either a path to a cycle inside
// region, or a path to a sys-terminal state inside region. It returns nil
// if every computation from `from` eventually leaves region. This is the
// counterexample generator for the convergence half of stabilization
// checks, with region = the complement of the legitimate set.
func TrappedWitness(sys *system.System, from, region *bitset.Set) *Lasso {
	starts := from.Clone()
	starts.IntersectWith(region)
	if starts.Empty() {
		return nil
	}

	// Terminal-in-region witness: shortest path inside region from a start.
	if terms := TerminalsWithin(sys, region); len(terms) > 0 {
		tset := bitset.FromSlice(sys.NumStates(), terms)
		if l := pathInto(sys, starts, region, tset); l != nil {
			return &Lasso{Stem: l}
		}
	}

	// Cycle-in-region witness.
	if cyc := FindCycleWithin(sys, region); cyc != nil {
		entry := bitset.FromSlice(sys.NumStates(), cyc.States)
		stem := pathInto(sys, starts, region, entry)
		if stem != nil {
			loop := rotateCycle(cyc.States, stem[len(stem)-1])
			return &Lasso{Stem: stem, Loop: loop}
		}
		// The cycle exists but is unreachable from `from` inside region;
		// other cycles might be reachable. Fall through to a per-start
		// exhaustive search.
		return trappedSearch(sys, starts, region)
	}
	return nil
}

// pathInto finds a shortest path from any state of starts to any state of
// targets, traveling only inside region. Returns nil if none.
func pathInto(sys *system.System, starts, region, targets *bitset.Set) []int {
	var best []int
	starts.ForEach(func(s int) {
		if !region.Has(s) {
			return
		}
		tr := BFS(sys, s, region)
		targets.ForEach(func(t int) {
			if p := tr.PathTo(t); p != nil && (best == nil || len(p) < len(best)) {
				best = p
			}
		})
	})
	return best
}

// rotateCycle rotates cycle states so the cycle starts right after `at` if
// `at` is on the cycle; otherwise returns the cycle unchanged (stem ends at
// the entry point, loop begins with its successor along the cycle).
func rotateCycle(cycle []int, at int) []int {
	for i, s := range cycle {
		if s == at {
			out := make([]int, 0, len(cycle))
			out = append(out, cycle[i+1:]...)
			out = append(out, cycle[:i+1]...)
			return out
		}
	}
	return append([]int(nil), cycle...)
}

// trappedSearch is the exhaustive fallback: restrict to the region
// reachable from starts and retry cycle/terminal detection there.
func trappedSearch(sys *system.System, starts, region *bitset.Set) *Lasso {
	reach := reachWithin(sys, starts, region)
	if terms := TerminalsWithin(sys, reach); len(terms) > 0 {
		tset := bitset.FromSlice(sys.NumStates(), terms)
		if p := pathInto(sys, starts, reach, tset); p != nil {
			return &Lasso{Stem: p}
		}
	}
	if cyc := FindCycleWithin(sys, reach); cyc != nil {
		entry := bitset.FromSlice(sys.NumStates(), cyc.States)
		if stem := pathInto(sys, starts, reach, entry); stem != nil {
			return &Lasso{Stem: stem, Loop: rotateCycle(cyc.States, stem[len(stem)-1])}
		}
	}
	return nil
}

// reachWithin is forward reachability restricted to a region.
func reachWithin(sys *system.System, from, region *bitset.Set) *bitset.Set {
	seen := from.Clone()
	seen.IntersectWith(region)
	stack := seen.Members()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range sys.Succ(s) {
			if region.Has(t) && !seen.Has(t) {
				seen.Add(t)
				stack = append(stack, t)
			}
		}
	}
	return seen
}
