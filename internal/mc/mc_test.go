package mc

import (
	"sort"
	"testing"

	"repro/internal/bitset"
	"repro/internal/system"
)

// build constructs a raw system from an edge list.
func build(t *testing.T, n int, edges [][2]int, inits ...int) *system.System {
	t.Helper()
	b := system.NewBuilder("g", n)
	for _, e := range edges {
		b.AddTransition(e[0], e[1])
	}
	for _, i := range inits {
		b.AddInit(i)
	}
	return b.Build()
}

func TestReach(t *testing.T) {
	sys := build(t, 5, [][2]int{{0, 1}, {1, 2}, {3, 4}}, 0)
	got := Reach(sys, bitset.FromSlice(5, []int{0}))
	if !got.Equal(bitset.FromSlice(5, []int{0, 1, 2})) {
		t.Fatalf("Reach = %v", got)
	}
}

func TestReachFromInit(t *testing.T) {
	sys := build(t, 4, [][2]int{{0, 1}, {2, 3}}, 0, 2)
	got := ReachFromInit(sys)
	if got.Count() != 4 {
		t.Fatalf("Reach = %v", got)
	}
}

func TestCanReach(t *testing.T) {
	sys := build(t, 5, [][2]int{{0, 1}, {1, 2}, {3, 2}, {4, 0}})
	got := CanReach(sys, bitset.FromSlice(5, []int{2}))
	if !got.Equal(bitset.FromSlice(5, []int{0, 1, 2, 3, 4})) {
		t.Fatalf("CanReach = %v", got)
	}
	got = CanReach(sys, bitset.FromSlice(5, []int{4}))
	if !got.Equal(bitset.FromSlice(5, []int{4})) {
		t.Fatalf("CanReach = %v", got)
	}
}

func TestPredecessors(t *testing.T) {
	sys := build(t, 3, [][2]int{{0, 2}, {1, 2}, {2, 0}})
	pred := Predecessors(sys)
	if len(pred[2]) != 2 || pred[2][0] != 0 || pred[2][1] != 1 {
		t.Fatalf("pred[2] = %v", pred[2])
	}
	if len(pred[0]) != 1 || pred[0][0] != 2 {
		t.Fatalf("pred[0] = %v", pred[0])
	}
	if len(pred[1]) != 0 {
		t.Fatalf("pred[1] = %v", pred[1])
	}
}

func TestShortestPath(t *testing.T) {
	sys := build(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}, {3, 5}})
	p := ShortestPath(sys, 0, 3)
	if len(p) != 3 || p[0] != 0 || p[2] != 3 {
		t.Fatalf("ShortestPath = %v", p)
	}
	if got := ShortestPath(sys, 3, 0); got != nil {
		t.Fatalf("path should not exist, got %v", got)
	}
	if p := ShortestPath(sys, 2, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("trivial path = %v", p)
	}
}

func TestBFSWithin(t *testing.T) {
	sys := build(t, 4, [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}})
	within := bitset.FromSlice(4, []int{0, 2, 3}) // exclude 1
	tr := BFS(sys, 0, within)
	p := tr.PathTo(3)
	if len(p) != 3 || p[1] != 2 {
		t.Fatalf("PathTo(3) = %v, want via 2", p)
	}
	if tr.Dist[1] != -1 {
		t.Fatal("BFS entered excluded state")
	}
}

func TestPathFromInit(t *testing.T) {
	sys := build(t, 5, [][2]int{{0, 2}, {1, 2}, {2, 3}}, 0, 1)
	p := PathFromInit(sys, 3)
	if len(p) != 3 || p[2] != 3 {
		t.Fatalf("PathFromInit = %v", p)
	}
	if got := PathFromInit(sys, 4); got != nil {
		t.Fatalf("unreachable target returned %v", got)
	}
}

func TestSCCs(t *testing.T) {
	// Two SCCs: {0,1,2} cycle and {3}; plus 4 with self-loop.
	sys := build(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {4, 4}})
	comps, comp := SCCs(sys, nil)
	if len(comps) != 3 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("cycle states in different components")
	}
	if comp[3] == comp[0] || comp[4] == comp[0] {
		t.Fatal("separate states merged")
	}
	// Reverse topological order: {3} must be emitted before {0,1,2}.
	var big, single int
	for i, c := range comps {
		if len(c) == 3 {
			big = i
		}
		if len(c) == 1 && c[0] == 3 {
			single = i
		}
	}
	if single > big {
		t.Fatal("SCC emission not reverse-topological")
	}
}

func TestSCCsWithin(t *testing.T) {
	sys := build(t, 3, [][2]int{{0, 1}, {1, 0}, {1, 2}})
	within := bitset.FromSlice(3, []int{0, 2})
	comps, comp := SCCs(sys, within)
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if comp[1] != -1 {
		t.Fatal("excluded state got a component")
	}
}

func TestFindCycleWithin(t *testing.T) {
	sys := build(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 1}, {3, 3}})
	// Full graph: cycle {1,2} exists.
	cyc := FindCycleWithin(sys, bitset.Full(5))
	if cyc == nil {
		t.Fatal("missed cycle")
	}
	states := append([]int(nil), cyc.States...)
	sort.Ints(states)
	if len(states) == 1 && states[0] == 3 {
		// self-loop also acceptable
	} else if len(states) != 2 || states[0] != 1 || states[1] != 2 {
		t.Fatalf("cycle = %v", cyc.States)
	}
	// Cycle witness must be a real cycle: consecutive transitions and wrap.
	for i := 0; i+1 < len(cyc.States); i++ {
		if !sys.HasTransition(cyc.States[i], cyc.States[i+1]) {
			t.Fatalf("witness edge missing: %v", cyc.States)
		}
	}
	if !sys.HasTransition(cyc.States[len(cyc.States)-1], cyc.States[0]) {
		t.Fatalf("witness does not wrap: %v", cyc.States)
	}
	// Excluding state 2 and 3 leaves no cycle.
	if c := FindCycleWithin(sys, bitset.FromSlice(5, []int{0, 1, 4})); c != nil {
		t.Fatalf("phantom cycle %v", c.States)
	}
}

func TestFindSelfLoop(t *testing.T) {
	sys := build(t, 2, [][2]int{{1, 1}})
	cyc := FindCycleWithin(sys, bitset.Full(2))
	if cyc == nil || len(cyc.States) != 1 || cyc.States[0] != 1 {
		t.Fatalf("cycle = %+v", cyc)
	}
}

func TestTerminalsWithin(t *testing.T) {
	sys := build(t, 4, [][2]int{{0, 1}, {2, 3}})
	got := TerminalsWithin(sys, bitset.FromSlice(4, []int{1, 2, 3}))
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("terminals = %v", got)
	}
}

func TestGreatestFixpoint(t *testing.T) {
	// Keep states whose value is >= all removed neighbors... simpler: keep
	// s if s+1 is still in the set or s == 4 (top). Seed {0..4}: stable.
	seed := bitset.Full(5)
	got := GreatestFixpoint(seed, func(s int, cur *bitset.Set) bool {
		return s == 4 || cur.Has(s+1)
	})
	if got.Count() != 5 {
		t.Fatalf("fixpoint = %v", got)
	}
	// Remove the anchor: everything unravels.
	seed2 := bitset.FromSlice(5, []int{0, 1, 2, 3})
	got2 := GreatestFixpoint(seed2, func(s int, cur *bitset.Set) bool {
		return s == 4 || cur.Has(s+1)
	})
	if !got2.Empty() {
		t.Fatalf("fixpoint = %v, want empty", got2)
	}
}

func TestTrappedWitnessCycle(t *testing.T) {
	// Region {1,2}: cycle 1<->2 reachable from 0? 0 not in region, so start
	// inside region.
	sys := build(t, 3, [][2]int{{0, 1}, {1, 2}, {2, 1}})
	region := bitset.FromSlice(3, []int{1, 2})
	w := TrappedWitness(sys, bitset.FromSlice(3, []int{1}), region)
	if w == nil || !w.Infinite() {
		t.Fatalf("witness = %+v", w)
	}
	if w.Stem[0] != 1 {
		t.Fatalf("stem = %v", w.Stem)
	}
}

func TestTrappedWitnessTerminal(t *testing.T) {
	sys := build(t, 3, [][2]int{{0, 1}, {1, 2}})
	region := bitset.FromSlice(3, []int{1, 2})
	w := TrappedWitness(sys, bitset.FromSlice(3, []int{1}), region)
	if w == nil || w.Infinite() {
		t.Fatalf("witness = %+v", w)
	}
	if last := w.Stem[len(w.Stem)-1]; last != 2 {
		t.Fatalf("stem = %v, want ending at terminal 2", w.Stem)
	}
}

func TestTrappedWitnessNone(t *testing.T) {
	// From region {0}, the only move leaves the region; no trap.
	sys := build(t, 2, [][2]int{{0, 1}, {1, 1}})
	region := bitset.FromSlice(2, []int{0})
	if w := TrappedWitness(sys, bitset.FromSlice(2, []int{0}), region); w != nil {
		t.Fatalf("unexpected witness %+v", w)
	}
}

func TestTrappedWitnessUnreachableCycle(t *testing.T) {
	// Region {0,1,2,3}: cycle {2,3} exists but is unreachable from start 0;
	// 0 -> 1 terminal... 1 is terminal in region AND in sys, so the
	// terminal witness fires. Make 1 leave the region instead: then from 0
	// nothing traps.
	sys := build(t, 5, [][2]int{{0, 1}, {1, 4}, {2, 3}, {3, 2}, {4, 4}})
	region := bitset.FromSlice(5, []int{0, 1, 2, 3})
	w := TrappedWitness(sys, bitset.FromSlice(5, []int{0}), region)
	if w != nil {
		t.Fatalf("unexpected witness %+v", w)
	}
	// But starting inside the cycle, it traps.
	w = TrappedWitness(sys, bitset.FromSlice(5, []int{2}), region)
	if w == nil || !w.Infinite() {
		t.Fatalf("witness = %+v", w)
	}
}

func TestLassoStates(t *testing.T) {
	l := &Lasso{Stem: []int{0, 1}, Loop: []int{2, 3}}
	got := l.States()
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("States = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("States = %v", got)
		}
	}
}
