package mc

import (
	"context"
	"errors"
	"fmt"
)

// ErrBudgetExhausted is returned (wrapped) by metered sweeps whose step
// budget ran out before the analysis finished.
var ErrBudgetExhausted = errors.New("mc: step budget exhausted")

// gasPollInterval is how many metered steps elapse between context polls.
// Polling a context is cheap but not free; the hot loops tick once per
// visited state or edge, so checking every few thousand steps keeps the
// overhead invisible while still cancelling within microseconds of real
// work after a deadline fires.
const gasPollInterval = 4096

// Gas meters the hot enumeration loops of the model checker so that a
// long-running check can be abandoned mid-flight: it carries an optional
// context.Context (deadline / cancellation) and an optional step budget
// (a hard cap on visited states and edges, independent of wall clock).
//
// A nil *Gas is valid everywhere and means "unlimited": the non-metered
// entry points (Reach, SCCs, …) pass nil and can never fail. A Gas is
// not safe for concurrent use; create one per check.
type Gas struct {
	ctx       context.Context
	limited   bool
	left      int64
	sincePoll int64
	spent     int64
	err       error
}

// NewGas builds a meter. ctx may be nil (no cancellation); steps < 0
// means no step budget.
func NewGas(ctx context.Context, steps int64) *Gas {
	return &Gas{ctx: ctx, limited: steps >= 0, left: steps}
}

// Tick spends n units of budget and occasionally polls the context. It
// returns a non-nil error — sticky from then on — once the budget is
// exhausted or the context is done. A nil receiver always returns nil.
func (g *Gas) Tick(n int) error {
	if g == nil {
		return nil
	}
	if g.err != nil {
		return g.err
	}
	g.spent += int64(n)
	if g.limited {
		g.left -= int64(n)
		if g.left < 0 {
			g.err = fmt.Errorf("%w after %d steps", ErrBudgetExhausted, g.spent)
			return g.err
		}
	}
	g.sincePoll += int64(n)
	if g.sincePoll >= gasPollInterval {
		g.sincePoll = 0
		if g.ctx != nil {
			if err := g.ctx.Err(); err != nil {
				g.err = err
				return err
			}
		}
	}
	return nil
}

// Err reports the sticky failure state without spending budget.
func (g *Gas) Err() error {
	if g == nil {
		return nil
	}
	return g.err
}

// Spent reports how many units have been consumed so far.
func (g *Gas) Spent() int64 {
	if g == nil {
		return 0
	}
	return g.spent
}
