package mc

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bitset"
	"repro/internal/system"
)

// chainWithLoop builds a long path 0 → 1 → … → n−1 with a back edge
// closing a cycle, large enough that metered sweeps do real work.
func chainWithLoop(n int) *system.System {
	b := system.NewBuilder("chain", n)
	b.AddInit(0)
	for s := 0; s+1 < n; s++ {
		b.AddTransition(s, s+1)
	}
	b.AddTransition(n-1, 0)
	return b.Build()
}

func TestGasNilIsUnlimited(t *testing.T) {
	var g *Gas
	for i := 0; i < 10_000; i++ {
		if err := g.Tick(100); err != nil {
			t.Fatalf("nil gas erred: %v", err)
		}
	}
	if g.Err() != nil || g.Spent() != 0 {
		t.Fatal("nil gas carries state")
	}
}

func TestGasBudgetExhaustion(t *testing.T) {
	sys := chainWithLoop(10_000)
	g := NewGas(context.Background(), 100)
	_, err := ReachGas(g, sys, sys.Init())
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	// The error is sticky: later calls fail immediately.
	if err := g.Tick(0); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("error not sticky: %v", err)
	}
}

func TestGasContextCancellation(t *testing.T) {
	sys := chainWithLoop(100_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the first poll must notice
	g := NewGas(ctx, -1)
	if _, err := ReachGas(g, sys, sys.Init()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestGasMeteredSweepsMatchUnmetered(t *testing.T) {
	sys := chainWithLoop(500)
	g := NewGas(context.Background(), -1)

	r, err := ReachGas(g, sys, sys.Init())
	if err != nil || !r.Equal(ReachFromInit(sys)) {
		t.Fatalf("ReachGas mismatch (err=%v)", err)
	}
	cr, err := CanReachGas(g, sys, sys.Init())
	if err != nil || !cr.Equal(CanReach(sys, sys.Init())) {
		t.Fatalf("CanReachGas mismatch (err=%v)", err)
	}
	comps, _, err := SCCsGas(g, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantComps, _ := SCCs(sys, nil)
	if len(comps) != len(wantComps) {
		t.Fatalf("SCCsGas found %d components, want %d", len(comps), len(wantComps))
	}
	cyc, err := FindCycleWithinGas(g, sys, bitset.Full(sys.NumStates()))
	if err != nil || cyc == nil {
		t.Fatalf("FindCycleWithinGas missed the cycle (err=%v)", err)
	}
	fix, err := GreatestFixpointGas(g, bitset.Full(sys.NumStates()), func(s int, cur *bitset.Set) bool {
		return s%2 == 0 || s < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	want := GreatestFixpoint(bitset.Full(sys.NumStates()), func(s int, cur *bitset.Set) bool {
		return s%2 == 0 || s < 10
	})
	if !fix.Equal(want) {
		t.Fatal("GreatestFixpointGas mismatch")
	}
	if g.Spent() == 0 {
		t.Fatal("meter recorded no work")
	}
}

func TestGasFixpointBudget(t *testing.T) {
	full := bitset.Full(10_000)
	g := NewGas(nil, 50)
	_, err := GreatestFixpointGas(g, full, func(int, *bitset.Set) bool { return true })
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}
