package mc

import (
	"errors"
	"testing"

	"repro/internal/bitset"
	"repro/internal/system"
)

func TestLongestEscapeChain(t *testing.T) {
	// 3 → 2 → 1 → 0, region {1,2,3}: worst case 3 steps (3,2,1, exit).
	b := system.NewBuilder("chain", 4)
	b.AddTransition(3, 2)
	b.AddTransition(2, 1)
	b.AddTransition(1, 0)
	sys := b.Build()
	got, err := LongestEscape(sys, bitset.FromSlice(4, []int{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("LongestEscape = %d, want 3", got)
	}
}

func TestLongestEscapeBranching(t *testing.T) {
	// 4 can exit immediately or take the long way 4→3→2→exit.
	b := system.NewBuilder("g", 5)
	b.AddTransition(4, 0)
	b.AddTransition(4, 3)
	b.AddTransition(3, 2)
	b.AddTransition(2, 0)
	sys := b.Build()
	got, err := LongestEscape(sys, bitset.FromSlice(5, []int{2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("LongestEscape = %d, want 3", got)
	}
}

func TestLongestEscapeCyclic(t *testing.T) {
	b := system.NewBuilder("c", 3)
	b.AddTransition(1, 2)
	b.AddTransition(2, 1)
	sys := b.Build()
	_, err := LongestEscape(sys, bitset.FromSlice(3, []int{1, 2}))
	if !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestLongestEscapeTerminalInside(t *testing.T) {
	// 2 → 1(terminal): the path ends inside the region after one step.
	b := system.NewBuilder("t", 3)
	b.AddTransition(2, 1)
	sys := b.Build()
	got, err := LongestEscape(sys, bitset.FromSlice(3, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("LongestEscape = %d, want 1", got)
	}
}

func TestWorstCaseRecoveryAllLegit(t *testing.T) {
	b := system.NewBuilder("l", 2)
	b.AddTransition(0, 1)
	b.AddTransition(1, 0)
	sys := b.Build()
	got, err := WorstCaseRecovery(sys, []int{0, 1})
	if err != nil || got != 0 {
		t.Fatalf("WorstCaseRecovery = %d, %v", got, err)
	}
}
