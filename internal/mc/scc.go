package mc

import (
	"repro/internal/bitset"
	"repro/internal/system"
)

// SCCs computes the strongly connected components of sys restricted to the
// states in `within` (nil means all states), using an iterative Tarjan
// algorithm. Components are returned in reverse topological order (Tarjan's
// natural emission order: a component is emitted only after everything it
// can reach). comp[s] is the component index of s, or -1 if s ∉ within.
func SCCs(sys *system.System, within *bitset.Set) (components [][]int, comp []int) {
	components, comp, _ = SCCsGas(nil, sys, within)
	return components, comp
}

// SCCsGas is SCCs under a meter: it ticks g once per discovered state and
// once per examined edge.
func SCCsGas(g *Gas, sys *system.System, within *bitset.Set) (components [][]int, comp []int, err error) {
	n := sys.NumStates()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp = make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	next := 0

	inSet := func(s int) bool { return within == nil || within.Has(s) }

	// Iterative Tarjan with an explicit call frame per state.
	type frame struct {
		s  int
		ei int // index into Succ(s)
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited || !inSet(root) {
			continue
		}
		call := []frame{{s: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			succ := sys.Succ(f.s)
			advanced := false
			if err := g.Tick(1); err != nil {
				return nil, nil, err
			}
			for f.ei < len(succ) {
				t := succ[f.ei]
				f.ei++
				if !inSet(t) {
					continue
				}
				if index[t] == unvisited {
					index[t] = next
					low[t] = next
					next++
					stack = append(stack, t)
					onStack[t] = true
					call = append(call, frame{s: t})
					advanced = true
					break
				}
				if onStack[t] && index[t] < low[f.s] {
					low[f.s] = index[t]
				}
			}
			if advanced {
				continue
			}
			// f.s finished.
			if low[f.s] == index[f.s] {
				var c []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(components)
					c = append(c, w)
					if w == f.s {
						break
					}
				}
				components = append(components, c)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].s
				if low[f.s] < low[parent] {
					low[parent] = low[f.s]
				}
			}
		}
	}
	return components, comp, nil
}

// Cycle holds a witness cycle: states[0] == states[len-1] is implied (the
// last state has a transition back to states[0]).
type Cycle struct {
	States []int
}

// FindCycleWithin returns a cycle of sys lying entirely inside `within`, or
// nil if the restriction of sys to `within` is acyclic. Self-loops count as
// cycles.
func FindCycleWithin(sys *system.System, within *bitset.Set) *Cycle {
	cyc, _ := FindCycleWithinGas(nil, sys, within)
	return cyc
}

// FindCycleWithinGas is FindCycleWithin under a meter.
func FindCycleWithinGas(g *Gas, sys *system.System, within *bitset.Set) (*Cycle, error) {
	components, comp, err := SCCsGas(g, sys, within)
	if err != nil {
		return nil, err
	}
	for _, c := range components {
		if err := g.Tick(1); err != nil {
			return nil, err
		}
		if len(c) > 1 {
			return traceCycle(sys, within, comp, c), nil
		}
		s := c[0]
		if sys.HasTransition(s, s) {
			return &Cycle{States: []int{s}}, nil
		}
	}
	return nil, nil
}

// traceCycle extracts an explicit cycle from a non-trivial SCC by walking
// successors inside the component until a state repeats.
func traceCycle(sys *system.System, within *bitset.Set, comp []int, c []int) *Cycle {
	target := comp[c[0]]
	pos := make(map[int]int)
	var walk []int
	s := c[0]
	for {
		if at, seen := pos[s]; seen {
			return &Cycle{States: walk[at:]}
		}
		pos[s] = len(walk)
		walk = append(walk, s)
		advanced := false
		for _, t := range sys.Succ(s) {
			if (within == nil || within.Has(t)) && comp[t] == target {
				s = t
				advanced = true
				break
			}
		}
		if !advanced {
			// Cannot happen inside a non-trivial SCC; guard anyway.
			return &Cycle{States: walk}
		}
	}
}

// TerminalsWithin returns the states of `within` that are terminal in sys
// (no outgoing transitions at all — not merely none inside within).
func TerminalsWithin(sys *system.System, within *bitset.Set) []int {
	var out []int
	within.ForEach(func(s int) {
		if sys.Terminal(s) {
			out = append(out, s)
		}
	})
	return out
}
