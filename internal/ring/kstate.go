package ring

import (
	"fmt"

	"repro/internal/system"
)

// UTR models the abstract unidirectional token ring used by the full
// version of the paper [4] to derive Dijkstra's K-state system: one
// boolean token t.j per process, circulating 0 → 1 → … → N → 0.
type UTR struct {
	// N is the top process index; tokens move j → j+1 mod N+1.
	N int
	// Space holds t0..tN.
	Space *system.Space
}

// NewUTR builds the unidirectional ring space (n ≥ 2).
func NewUTR(n int) *UTR {
	if n < 2 {
		panic(fmt.Sprintf("ring: UTR needs N ≥ 2, got %d", n))
	}
	vars := make([]system.Var, 0, n+1)
	for j := 0; j <= n; j++ {
		vars = append(vars, system.Bool(fmt.Sprintf("t%d", j)))
	}
	return &UTR{N: n, Space: system.NewSpace(vars...)}
}

// TokenCount counts the tokens held.
func (u *UTR) TokenCount(v system.Vals) int {
	c := 0
	for _, x := range v {
		c += x
	}
	return c
}

// UniqueToken is the legitimacy predicate: exactly one token.
func (u *UTR) UniqueToken(v system.Vals) bool { return u.TokenCount(v) == 1 }

// Actions move each held token one step around the ring; moving onto a
// process that already holds a token merges the two (the boolean simply
// stays true).
func (u *UTR) Actions() []system.Action {
	var acts []system.Action
	for j := 0; j <= u.N; j++ {
		j := j
		next := (j + 1) % (u.N + 1)
		acts = append(acts, system.Action{
			Name:  fmt.Sprintf("pass%d", j),
			Guard: func(v system.Vals) bool { return v[j] == 1 },
			Effect: func(v system.Vals) {
				v[j] = 0
				v[next] = 1
			},
		})
	}
	return acts
}

// System enumerates UTR with unique-token initial states.
func (u *UTR) System() *system.System {
	return system.Enumerate(fmt.Sprintf("UTR(N=%d)", u.N), u.Space, u.Actions(), u.UniqueToken)
}

// WU1 creates a token at the bottom when none exists (the unidirectional
// analogue of W1).
func (u *UTR) WU1() *system.System {
	acts := []system.Action{{
		Name:   "WU1",
		Guard:  func(v system.Vals) bool { return u.TokenCount(v) == 0 },
		Effect: func(v system.Vals) { v[0] = 1 },
	}}
	return enumerateWrapper(fmt.Sprintf("WU1(N=%d)", u.N), u.Space, acts)
}

// WU2 deletes a non-bottom token while the bottom holds one: extra tokens
// are absorbed when they meet the bottom's. Like W2, it must preempt the
// ring's own moves (PriorityBox) — otherwise a daemon keeps two tokens
// chasing each other at a fixed distance forever.
func (u *UTR) WU2() *system.System {
	var acts []system.Action
	for j := 1; j <= u.N; j++ {
		j := j
		acts = append(acts, system.Action{
			Name:   fmt.Sprintf("WU2_%d", j),
			Guard:  func(v system.Vals) bool { return v[0] == 1 && v[j] == 1 },
			Effect: func(v system.Vals) { v[j] = 0 },
		})
	}
	return enumerateWrapper(fmt.Sprintf("WU2(N=%d)", u.N), u.Space, acts)
}

// Wrapped is the stabilized abstract composition (UTR [] WU1) <] WU2.
func (u *UTR) Wrapped() *system.System {
	return system.PriorityBox(system.Box(u.System(), u.WU1()), u.WU2())
}

// KState models Dijkstra's K-state system: x.j ∈ 0..K−1 at every process;
// the bottom holds the token when x.0 = x.N, any other process when
// x.j ≠ x.(j−1):
//
//	x.0 = x.N       → x.0 := x.0 + 1 mod K    (bottom)
//	x.j ≠ x.(j−1)   → x.j := x.(j−1)          (j ≠ 0)
type KState struct {
	// N is the top process index, K the counter modulus.
	N, K int
	// Space holds x0..xN, each over 0..K−1.
	Space *system.Space
}

// NewKState builds the K-state space (n ≥ 2, k ≥ 2).
func NewKState(n, k int) *KState {
	if n < 2 || k < 2 {
		panic(fmt.Sprintf("ring: KState needs N ≥ 2 and K ≥ 2, got N=%d K=%d", n, k))
	}
	vars := make([]system.Var, 0, n+1)
	for j := 0; j <= n; j++ {
		vars = append(vars, system.Int(fmt.Sprintf("x%d", j), k))
	}
	return &KState{N: n, K: k, Space: system.NewSpace(vars...)}
}

// HasToken evaluates the privilege predicate at process j.
func (ks *KState) HasToken(v system.Vals, j int) bool {
	if j == 0 {
		return v[0] == v[ks.N]
	}
	return v[j] != v[j-1]
}

// TokenCount counts privileged processes.
func (ks *KState) TokenCount(v system.Vals) int {
	c := 0
	for j := 0; j <= ks.N; j++ {
		if ks.HasToken(v, j) {
			c++
		}
	}
	return c
}

// Abstraction maps a K-state configuration to the UTR state holding the
// privilege tokens.
func (ks *KState) Abstraction(u *UTR) (*system.Abstraction, error) {
	if u.N != ks.N {
		return nil, fmt.Errorf("ring: abstraction between N=%d and N=%d", ks.N, u.N)
	}
	return system.MapSpaces(ks.Space, u.Space, func(c system.Vals, a system.Vals) {
		for j := 0; j <= ks.N; j++ {
			a[j] = boolToInt(ks.HasToken(c, j))
		}
	})
}

// System enumerates the K-state automaton with unique-token initial
// states.
func (ks *KState) System() *system.System {
	acts := []system.Action{{
		Name:  "bottom",
		Guard: func(v system.Vals) bool { return v[0] == v[ks.N] },
		Effect: func(v system.Vals) {
			v[0] = (v[0] + 1) % ks.K
		},
	}}
	for j := 1; j <= ks.N; j++ {
		j := j
		acts = append(acts, system.Action{
			Name:  fmt.Sprintf("copy%d", j),
			Guard: func(v system.Vals) bool { return v[j] != v[j-1] },
			Effect: func(v system.Vals) {
				v[j] = v[j-1]
			},
		})
	}
	return system.Enumerate(fmt.Sprintf("KState(N=%d,K=%d)", ks.N, ks.K), ks.Space, acts,
		func(v system.Vals) bool { return ks.TokenCount(v) == 1 })
}
