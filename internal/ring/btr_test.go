package ring

import (
	"testing"

	"repro/internal/core"
	"repro/internal/system"
)

func TestBTRShape(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		b := NewBTR(n)
		sys := b.System()
		if got, want := sys.NumStates(), 1<<(2*n); got != want {
			t.Fatalf("N=%d: states = %d, want %d", n, got, want)
		}
		// Initial states: one per token position = 2N.
		if got := len(sys.InitStates()); got != 2*n {
			t.Fatalf("N=%d: inits = %d, want %d", n, got, 2*n)
		}
	}
}

func TestBTRIndexHelpers(t *testing.T) {
	b := NewBTR(3)
	if b.UpIdx(1) != 0 || b.UpIdx(3) != 2 || b.DownIdx(0) != 3 || b.DownIdx(2) != 5 {
		t.Fatal("index layout changed")
	}
	for _, fn := range []func(){
		func() { b.UpIdx(0) },
		func() { b.UpIdx(4) },
		func() { b.DownIdx(3) },
		func() { b.DownIdx(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for undefined token variable")
				}
			}()
			fn()
		}()
	}
}

func TestBTRTokenConservation(t *testing.T) {
	// The ring's own actions never create or destroy tokens, except that
	// moving a token onto an equally-directed token merges the two.
	b := NewBTR(3)
	sys := b.System()
	cur := make(system.Vals, b.Space.NumVars())
	next := make(system.Vals, b.Space.NumVars())
	for s := 0; s < sys.NumStates(); s++ {
		cur = b.Space.Decode(s, cur)
		pre := b.TokenCount(cur)
		for _, succ := range sys.Succ(s) {
			next = b.Space.Decode(succ, next)
			post := b.TokenCount(next)
			if post > pre || post < pre-1 {
				t.Fatalf("token count %d → %d on %s → %s", pre, post,
					sys.StateString(s), sys.StateString(succ))
			}
		}
	}
}

func TestBTRAloneNotStabilizing(t *testing.T) {
	b := NewBTR(2)
	rep := core.SelfStabilizing(b.System())
	if rep.Holds {
		t.Fatalf("BTR without wrappers reported stabilizing: %s", rep.Verdict)
	}
}

// TestTheorem6 verifies (BTR [] W1) <] W2 is stabilizing to BTR — the
// Section 3.2 result — for several ring sizes, with W2 preempting the
// ring's moves.
func TestTheorem6(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		b := NewBTR(n)
		rep := core.Stabilizing(b.Wrapped(), b.System(), nil)
		if !rep.Holds {
			t.Fatalf("N=%d: %s", n, rep.Verdict)
		}
		// The legitimate region is exactly the unique-token states.
		if got := len(rep.Legitimate); got != 2*n {
			t.Fatalf("N=%d: legitimate = %d, want %d", n, got, 2*n)
		}
	}
}

// TestTheorem6NeedsPriority documents why PriorityBox is part of W2's
// semantics: under the plain union, opposing tokens cross through each
// other forever and the composition is not stabilizing. The checker's
// counterexample is the token-crossing loop.
func TestTheorem6NeedsPriority(t *testing.T) {
	b := NewBTR(3)
	rep := core.Stabilizing(b.WrappedPlain(), b.System(), nil)
	if rep.Holds {
		t.Fatalf("plain union unexpectedly stabilizing: %s", rep.Verdict)
	}
	if len(rep.WitnessLoop) == 0 {
		t.Fatalf("expected a loop witness, got %+v", rep.Verdict)
	}
}

func TestW1FiresOnlyOnTokenlessStates(t *testing.T) {
	b := NewBTR(3)
	w1 := b.W1()
	v := make(system.Vals, b.Space.NumVars())
	count := 0
	for s := 0; s < w1.NumStates(); s++ {
		if len(w1.Succ(s)) == 0 {
			continue
		}
		count++
		v = b.Space.Decode(s, v)
		if b.TokenCount(v) != 0 {
			t.Fatalf("W1 enabled in tokenful state %s", w1.StateString(s))
		}
	}
	if count != 1 {
		t.Fatalf("W1 enabled in %d states, want exactly the one tokenless state", count)
	}
	if len(w1.InitStates()) != 0 {
		t.Fatal("wrapper declared initial states")
	}
}

func TestW2DeletesOpposingPairs(t *testing.T) {
	b := NewBTR(2)
	w2 := b.W2()
	v := make(system.Vals, b.Space.NumVars())
	next := make(system.Vals, b.Space.NumVars())
	for s := 0; s < w2.NumStates(); s++ {
		for _, succ := range w2.Succ(s) {
			v = b.Space.Decode(s, v)
			next = b.Space.Decode(succ, next)
			if got := b.TokenCount(v) - b.TokenCount(next); got != 2 {
				t.Fatalf("W2 deleted %d tokens on %s → %s", got,
					w2.StateString(s), w2.StateString(succ))
			}
		}
	}
	if w2.NumTransitions() == 0 {
		t.Fatal("W2 has no transitions at all")
	}
}

// TestTheorem5GrayboxOnRing replays the graybox wrapping theorem on the
// ring itself, all over BTR's state space: W = W1 (token creation), and
// W1 is its own convergence refinement, so (BTR [] W1) <] W2 stabilizing
// plus [C ⪯ BTR] for C = BTR yields the boxed conclusion. The deeper
// instantiations (W′ = W1″ on the 3-state side) are exercised in
// btr3_test.go.
func TestTheorem5GrayboxOnRing(t *testing.T) {
	b := NewBTR(2)
	btr := b.System()
	conv := core.ConvergenceRefinement(btr, btr, nil)
	if !conv.Holds {
		t.Fatalf("[BTR ⪯ BTR]: %s", conv.Verdict)
	}
	wrapped := core.Stabilizing(b.Wrapped(), btr, nil)
	if !wrapped.Holds {
		t.Fatalf("wrapped: %s", wrapped.Verdict)
	}
}

func TestNewBTRRejectsTinyRings(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBTR(1)
}
