package ring

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestConvergenceRefinementSoundnessOnRuns validates the checker's
// soundness claim on concrete executions: for random finite runs of C1,
// stitching the covering paths reported by ConvergenceRefinement yields a
// BTR path of which the destuttered α-image of the run is a convergence
// isomorphism — the literal Section 2 definition, checked sequence by
// sequence with internal/trace.
func TestConvergenceRefinementSoundnessOnRuns(t *testing.T) {
	const n = 3
	b := NewBTR(n)
	f := NewFourState(n)
	alpha, err := f.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	btr := b.System()
	c1 := f.C1()
	rep := core.ConvergenceRefinement(c1, btr, alpha)
	if !rep.Holds {
		t.Fatalf("Lemma 7: %s", rep.Verdict)
	}
	covers := make(map[[2]int][]int, len(rep.Compressions))
	for _, cp := range rep.Compressions {
		covers[[2]int{cp.From, cp.To}] = cp.Cover
	}

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		// Random concrete walk.
		s := rng.Intn(c1.NumStates())
		concrete := []int{s}
		for len(concrete) < 40 {
			succ := c1.Succ(s)
			if len(succ) == 0 {
				break
			}
			s = succ[rng.Intn(len(succ))]
			concrete = append(concrete, s)
		}

		// Stitch the abstract computation promised by the report.
		abstract := []int{alpha.Of(concrete[0])}
		for i := 0; i+1 < len(concrete); i++ {
			from, to := concrete[i], concrete[i+1]
			af, at := alpha.Of(from), alpha.Of(to)
			switch {
			case af == at:
				// stutter: contributes nothing
			case btr.HasTransition(af, at):
				abstract = append(abstract, at)
			default:
				cover, found := covers[[2]int{from, to}]
				if !found {
					t.Fatalf("trial %d: step %s → %s neither exact, stutter, nor covered",
						trial, c1.StateString(from), c1.StateString(to))
				}
				abstract = append(abstract, cover[1:]...)
			}
		}

		if !trace.IsPathOf(btr, abstract) {
			t.Fatalf("trial %d: stitched abstract sequence is not a BTR path", trial)
		}
		image := trace.Destutter(alpha.MapSeq(concrete))
		if !trace.ConvergenceIsomorphic(image, abstract) {
			t.Fatalf("trial %d: image %v is not a convergence isomorphism of %v", trial, image, abstract)
		}
		if om, convOK := trace.Omissions(image, abstract); !convOK || om != len(abstract)-len(image) {
			t.Fatalf("trial %d: omission accounting wrong", trial)
		}
	}
}

// TestStabilizationSoundnessOnRuns validates the stabilization verdict on
// concrete executions: every sufficiently long run of Dijkstra-3 enters
// the reported legitimate region and stays there, and its suffix's
// α-image from that point is a BTR path through BTR-reachable states.
func TestStabilizationSoundnessOnRuns(t *testing.T) {
	const n = 3
	b := NewBTR(n)
	f := NewThreeState(n)
	alpha, err := f.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	btr := b.System()
	d3 := f.Dijkstra3()
	rep := core.Stabilizing(d3, btr, alpha)
	if !rep.Holds {
		t.Fatalf("%s", rep.Verdict)
	}
	legit := make(map[int]bool, len(rep.Legitimate))
	for _, s := range rep.Legitimate {
		legit[s] = true
	}

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		s := rng.Intn(d3.NumStates())
		run := []int{s}
		for len(run) < 200 {
			succ := d3.Succ(s)
			s = succ[rng.Intn(len(succ))]
			run = append(run, s)
		}
		// Find the entry into the legitimate region.
		entry := -1
		for i, st := range run {
			if legit[st] {
				entry = i
				break
			}
		}
		if entry < 0 {
			t.Fatalf("trial %d: 200-step run never entered the legitimate region", trial)
		}
		// Closure: once in, never out.
		for i := entry; i < len(run); i++ {
			if !legit[run[i]] {
				t.Fatalf("trial %d: left the legitimate region at step %d", trial, i)
			}
		}
		// The suffix tracks BTR exactly.
		suffix := alpha.MapSeq(run[entry:])
		if !trace.IsPathOf(btr, suffix) {
			t.Fatalf("trial %d: legitimate suffix is not a BTR path", trial)
		}
	}
}
