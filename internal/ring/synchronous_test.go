package ring

import (
	"testing"

	"repro/internal/core"
	"repro/internal/system"
)

// TestDijkstra3SynchronousStabilizes: the 3-state system remains
// self-stabilizing when every privileged process fires simultaneously.
func TestDijkstra3SynchronousStabilizes(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		sync := NewThreeState(n).Dijkstra3Synchronous()
		rep := core.SelfStabilizing(sync)
		if !rep.Holds {
			t.Fatalf("N=%d: %s", n, rep.Verdict)
		}
	}
}

// TestKStateSynchronousThreshold: under the synchronous daemon the
// K-state system needs one more state — K = N fails, K = N + 1 works.
func TestKStateSynchronousThreshold(t *testing.T) {
	cases := []struct {
		n, k int
		want bool
	}{
		{2, 2, false}, {2, 3, true},
		{3, 3, false}, {3, 4, true},
		{4, 4, false}, {4, 5, true},
	}
	for _, tc := range cases {
		sync := NewKState(tc.n, tc.k).KStateSynchronous()
		rep := core.SelfStabilizing(sync)
		if rep.Holds != tc.want {
			t.Errorf("N=%d K=%d: synchronous self-stabilizing = %v, want %v (%s)",
				tc.n, tc.k, rep.Holds, tc.want, rep.Reason)
		}
	}
}

// TestSynchronousLegitimateBehaviorIsSerial: from a unique-token state
// only the privileged process is enabled, so the synchronous and serial
// automata agree on the legitimate region.
func TestSynchronousLegitimateBehaviorIsSerial(t *testing.T) {
	f := NewThreeState(3)
	serial := f.Dijkstra3()
	sync := f.Dijkstra3Synchronous()
	rep := core.SelfStabilizing(serial)
	if !rep.Holds {
		t.Fatal(rep.Verdict)
	}
	for _, s := range rep.Legitimate {
		ss, st := serial.Succ(s), sync.Succ(s)
		if len(ss) != len(st) {
			t.Fatalf("state %s: serial %v vs sync %v", serial.StateString(s), ss, st)
		}
		for i := range ss {
			if ss[i] != st[i] {
				t.Fatalf("state %s: serial %v vs sync %v", serial.StateString(s), ss, st)
			}
		}
	}
}

// TestSynchronousFiresAllPrivileged: in a two-token state, one
// synchronous step moves both tokens.
func TestSynchronousFiresAllPrivileged(t *testing.T) {
	f := NewThreeState(3)
	sync := f.Dijkstra3Synchronous()
	// c = (1,0,0,0): bottom has ↓t.0 (c1 == c0⊕1? 0 == 2 no)… construct
	// explicitly: tokens at two middles. c = (0,2,0,1):
	//   up1: c0 == c1⊕1 → 0 == 0 ✓ (token at 1)
	//   dn2: c3 == c2⊕1 → 1 == 1 ✓ (token at 2)
	v := system.Vals{0, 2, 0, 1}
	s := f.Space.Encode(v)
	next := sync.Succ(s)
	if len(next) == 0 {
		t.Fatal("no synchronous step")
	}
	// Every successor must change both registers (each enabled process
	// fired) — c1 := c0 = 0 and c2 := c3 = 1 in the unique combination.
	want := f.Space.Encode(system.Vals{0, 0, 1, 1})
	found := false
	for _, t2 := range next {
		if t2 == want {
			found = true
		}
	}
	if !found {
		got := make([]string, len(next))
		for i, t2 := range next {
			got[i] = f.Space.StateString(t2)
		}
		t.Fatalf("simultaneous move missing; successors: %v", got)
	}
}

// TestSynchronousChoiceCombinations: a middle process holding both
// tokens contributes one transition per alternative.
func TestSynchronousChoiceCombinations(t *testing.T) {
	f := NewThreeState(2)
	sync := f.Dijkstra3Synchronous()
	// Collision at process 1: c = (0,2,0): up1 (c0 == c1⊕1 ✓) and
	// dn1 (c2 == c1⊕1 ✓) both enabled.
	s := f.Space.Encode(system.Vals{0, 2, 0})
	// Alternatives: c1 := c0 = 0 or c1 := c2 = 0 — they coincide here, so
	// exactly one successor.
	if got := len(sync.Succ(s)); got != 1 {
		t.Fatalf("successors = %d", got)
	}
	// Distinguishable alternatives: c = (0,2,0) with c2 ≠ c0 … need
	// HasUpToken: c0 == c1⊕1 and HasDownToken: c2 == c1⊕1 → c0 == c2.
	// With K = 3 the two alternatives always coincide at a collision;
	// that is exactly why W2′ embedding is for free in the 3-state
	// encoding.
}
