package ring

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gcl"
	"repro/internal/system"
)

// TestDijkstra3GCLMatchesProgrammatic cross-validates three independent
// constructions of the same system: the programmatic builder, the GCL
// text pipeline (lexer → parser → checker → enumerator), and — via the
// sim tests — the local-rule simulator. Transition relations must agree
// exactly.
func TestDijkstra3GCLMatchesProgrammatic(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		src := Dijkstra3GCL(n)
		compiled, err := gcl.Compile(fmt.Sprintf("d3-gcl-N%d", n), src)
		if err != nil {
			t.Fatalf("N=%d: %v\n%s", n, err, src)
		}
		model := NewThreeState(n).Dijkstra3()
		if !system.TransitionsEqual(compiled.System, model) {
			d1 := system.DiffTransitions(compiled.System, model, 3)
			d2 := system.DiffTransitions(model, compiled.System, 3)
			t.Fatalf("N=%d: GCL vs programmatic differ: gcl-only %v, model-only %v", n, d1, d2)
		}
		// And the compiled text is self-stabilizing.
		if rep := core.SelfStabilizing(compiled.System); !rep.Holds {
			t.Fatalf("N=%d: %s", n, rep.Verdict)
		}
	}
}

func TestKStateGCLMatchesProgrammatic(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{2, 3}, {3, 3}, {3, 4}} {
		src := KStateGCL(tc.n, tc.k)
		compiled, err := gcl.Compile(fmt.Sprintf("k-gcl-N%dK%d", tc.n, tc.k), src)
		if err != nil {
			t.Fatalf("N=%d K=%d: %v\n%s", tc.n, tc.k, err, src)
		}
		model := NewKState(tc.n, tc.k).System()
		if !system.TransitionsEqual(compiled.System, model) {
			t.Fatalf("N=%d K=%d: GCL vs programmatic differ", tc.n, tc.k)
		}
	}
}

// TestAggressiveThreeGCLEqualsDijkstra3 transliterates the final
// Section 6 listing (with its if-then-else cascades as ternaries) and
// checks — through the full text pipeline — the paper's closing claim:
// the system "can be rewritten as Dijkstra's 3-state system".
func TestAggressiveThreeGCLEqualsDijkstra3(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		src := AggressiveThreeGCL(n)
		compiled, err := gcl.Compile(fmt.Sprintf("agg-N%d", n), src)
		if err != nil {
			t.Fatalf("N=%d: %v\n%s", n, err, src)
		}
		d3 := NewThreeState(n).Dijkstra3()
		if !system.TransitionsEqual(compiled.System, d3) {
			d1 := system.DiffTransitions(compiled.System, d3, 3)
			d2 := system.DiffTransitions(d3, compiled.System, 3)
			t.Fatalf("N=%d: aggressive GCL vs Dijkstra3 differ: gcl-only %v, d3-only %v\n%s",
				n, d1, d2, src)
		}
	}
}

func TestGCLGenValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Dijkstra3GCL(1) },
		func() { KStateGCL(1, 3) },
		func() { KStateGCL(3, 1) },
		func() { AggressiveThreeGCL(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestGCLInitIsLegitimate: the canonical all-zero initial configuration
// emitted by the generator is inside the legitimate region the checker
// computes.
func TestGCLInitIsLegitimate(t *testing.T) {
	compiled, err := gcl.Compile("d3", Dijkstra3GCL(3))
	if err != nil {
		t.Fatal(err)
	}
	rep := core.SelfStabilizing(compiled.System)
	if !rep.Holds {
		t.Fatal(rep.Verdict)
	}
	legit := make(map[int]bool, len(rep.Legitimate))
	for _, s := range rep.Legitimate {
		legit[s] = true
	}
	for _, s := range compiled.System.InitStates() {
		if !legit[s] {
			t.Fatalf("initial state %s outside legitimate region", compiled.System.StateString(s))
		}
	}
}
