package ring

import (
	"testing"

	"repro/internal/core"
	"repro/internal/system"
)

func TestThreeStateTokenlessStatesExist(t *testing.T) {
	// Unlike the 4-state encoding, the mod-3 encoding has tokenless
	// configurations (all counters equal) — which is why W1″ is needed.
	f := NewThreeState(3)
	v := make(system.Vals, f.Space.NumVars())
	found := 0
	for s := 0; s < f.Space.Size(); s++ {
		v = f.Space.Decode(s, v)
		if f.TokenCount(v) == 0 {
			found++
			for j := 1; j <= f.N; j++ {
				if v[j] != v[0] {
					t.Fatalf("tokenless but not all-equal: %s", f.Space.StateString(s))
				}
			}
		}
	}
	if found != 3 {
		t.Fatalf("tokenless configurations = %d, want the 3 all-equal ones", found)
	}
}

// TestLemma9 is the Section 5.1 result: (BTR3 [] W1″) <] W2′ is
// stabilizing to BTR, with W2′ preempting as in Theorem 6. It verifies
// for N = 2, 3; see TestLemma9BoundaryAtN4 for the N = 4 finding.
func TestLemma9(t *testing.T) {
	for _, n := range []int{2, 3} {
		b := NewBTR(n)
		f := NewThreeState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			t.Fatal(err)
		}
		rep := core.Stabilizing(f.Lemma9System(), b.System(), ab)
		if !rep.Holds {
			t.Fatalf("N=%d: Lemma 9: %s", n, rep.Verdict)
		}
	}
}

// TestLemma9BoundaryAtN4 records a finding of the mechanized
// reproduction: under a fully adversarial (unfair) daemon, the abstract
// composition (BTR3 [] W1″) <] W2′ is NOT stabilizing for N = 4 — with
// three same-direction tokens stacked as a counter staircase, the daemon
// sustains a loop that never brings opposing tokens together. Dijkstra's
// 3-state system itself remains stabilizing at every tested N
// (TestTheorem11): its merged top guard (c.(N−1) = c.0) throttles the top
// process in exactly these configurations. The Section 5.2 guard merge is
// therefore load-bearing, not merely cosmetic.
func TestLemma9BoundaryAtN4(t *testing.T) {
	b := NewBTR(4)
	f := NewThreeState(4)
	ab, err := f.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	rep := core.Stabilizing(f.Lemma9System(), b.System(), ab)
	if rep.Holds {
		t.Fatalf("Lemma 9 unexpectedly holds at N=4 — finding no longer reproduces: %s", rep.Verdict)
	}
	if len(rep.WitnessLoop) == 0 {
		t.Fatal("expected a loop witness")
	}
	// The same phenomenon affects the boxed concrete composition.
	rep = core.Stabilizing(f.ComposedC2(), b.System(), ab)
	if rep.Holds {
		t.Fatalf("boxed C2 composition unexpectedly holds at N=4: %s", rep.Verdict)
	}
}

// TestLemma9HoldsUnderWeakFairness resolves the N = 4 finding: the
// staircase schedule that defeats the unfair daemon perpetually starves a
// continuously enabled action, so under weak fairness Lemma 9 holds at
// every tested N — the paper's claim is correct for any daemon that does
// not starve enabled guards forever.
func TestLemma9HoldsUnderWeakFairness(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		b := NewBTR(n)
		f := NewThreeState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			t.Fatal(err)
		}
		lab := f.Lemma9Labeled()
		// The labeled composition's base must agree with the unlabeled
		// construction.
		if !system.TransitionsEqual(lab.Base(), f.Lemma9System()) {
			t.Fatalf("N=%d: labeled and unlabeled compositions differ", n)
		}
		rep := core.FairStabilizing(lab, b.System(), ab)
		if !rep.Holds {
			t.Fatalf("N=%d: fair Lemma 9: %s", n, rep.Verdict)
		}
	}
}

// TestW1DoublePrimeNotEverywhereRefinement verifies the Section 5.1
// observation that motivates convergence refinement: the local W1″ is
// enabled in states where the global W1′ is not, so W1″ is not an
// everywhere refinement of W1′.
func TestW1DoublePrimeNotEverywhereRefinement(t *testing.T) {
	f := NewThreeState(3)
	v := core.EverywhereRefinement(f.W1DoublePrime(), f.W1PrimeGlobal(), nil)
	if v.Holds {
		t.Fatalf("[W1'' ⊑ W1'] unexpectedly holds: %s", v)
	}
	// Concretely: a state where c.(N−1) = c.0 but middle counters differ.
	w := f.W1DoublePrime()
	g := f.W1PrimeGlobal()
	s := f.Space.Encode(system.Vals{0, 1, 0, 2}) // c0=0 c1=1 c2=0 c3=2
	if len(w.Succ(s)) == 0 {
		t.Fatal("W1'' should be enabled here")
	}
	if len(g.Succ(s)) != 0 {
		t.Fatal("W1' should be disabled here")
	}
}

// TestLemma10 records the mechanized verdict on Section 5.2's Lemma 10,
// [(C2 [] W1″ [] W2′) ⪯ (BTR3 [] W1″ [] W2′)]: it holds at N = 2 but
// FAILS for N ≥ 3 — with three stacked same-direction tokens, one C2 move
// deletes a token and flips another's direction in a single step, and the
// abstract composition has no covering path. The derivation's conclusion
// (Theorem 11) is nevertheless true; TestTheorem11 establishes it
// directly.
func TestLemma10(t *testing.T) {
	f2 := NewThreeState(2)
	rep := core.ConvergenceRefinement(f2.ComposedC2(), f2.Lemma9System(), nil)
	if !rep.Holds {
		t.Fatalf("N=2: Lemma 10: %s", rep.Verdict)
	}
	if len(rep.Compressions) == 0 {
		t.Fatal("N=2: expected compressions")
	}

	f3 := NewThreeState(3)
	rep3 := core.ConvergenceRefinement(f3.ComposedC2(), f3.Lemma9System(), nil)
	if rep3.Holds {
		t.Fatalf("N=3: Lemma 10 unexpectedly holds — finding no longer reproduces: %s", rep3.Verdict)
	}
}

// TestTheorem11 is the Section 5.2 conclusion: the composed 3-state system
// and Dijkstra's 3-state system are stabilizing to BTR.
func TestTheorem11(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		b := NewBTR(n)
		f := NewThreeState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			t.Fatal(err)
		}
		// The boxed composition verifies for N ≤ 3 (see
		// TestLemma9BoundaryAtN4 for why not beyond); Dijkstra's merged
		// system verifies everywhere.
		if n <= 3 {
			if rep := core.Stabilizing(f.ComposedC2(), b.System(), ab); !rep.Holds {
				t.Fatalf("N=%d: composed C2: %s", n, rep.Verdict)
			}
		}
		d3 := f.Dijkstra3()
		if rep := core.Stabilizing(d3, b.System(), ab); !rep.Holds {
			t.Fatalf("N=%d: Dijkstra3: %s", n, rep.Verdict)
		}
		if rep := core.SelfStabilizing(d3); !rep.Holds {
			t.Fatalf("N=%d: Dijkstra3 self-stabilization: %s", n, rep.Verdict)
		}
	}
}

// TestLemma12Finding records the mechanized verdict on Section 6's
// Lemma 12, [C3 ⪯ BTR]: the claim that C3 "does not perform any
// compression" (only τ steps) overlooks opposing-token collision states,
// where C3's own-write move relocates BOTH tokens in one step — a
// compression that moreover lies on a cycle of C3, so the literal relation
// fails. Away from collision states the claim is right: every compression
// the checker finds originates in a collision state.
func TestLemma12Finding(t *testing.T) {
	b := NewBTR(2)
	f := NewThreeState(2)
	ab, err := f.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	c3 := f.C3().StripSelfLoops()
	rep := core.ConvergenceRefinement(c3, b.System(), ab)
	if rep.Holds {
		t.Fatalf("[C3 ⪯ BTR] unexpectedly holds — finding no longer reproduces: %s", rep.Verdict)
	}

	// Every non-exact, non-stutter C3 step originates at a collision
	// state (some process holds both ↑t.j and ↓t.j).
	v := make(system.Vals, f.Space.NumVars())
	nv := make(system.Vals, f.Space.NumVars())
	btr := b.System()
	collision := func(v system.Vals) bool {
		for j := 1; j < f.N; j++ {
			if f.HasUpToken(v, j) && f.HasDownToken(v, j) {
				return true
			}
		}
		return false
	}
	for s := 0; s < c3.NumStates(); s++ {
		v = f.Space.Decode(s, v)
		for _, succ := range c3.Succ(s) {
			as, at := ab.Of(s), ab.Of(succ)
			if as == at || btr.HasTransition(as, at) {
				continue
			}
			nv = f.Space.Decode(succ, nv)
			if !collision(v) {
				t.Fatalf("non-collision compression %s → %s",
					f.Space.StateString(s), f.Space.StateString(succ))
			}
		}
	}
}

// TestC3Stutters verifies the Section 6 τ-step claim on its own terms: C3
// has genuine self-loop transitions (the paper's figure example), which
// BTR3 and C2 do not.
func TestC3Stutters(t *testing.T) {
	f := NewThreeState(2)
	c3 := f.C3()
	if got := c3.NumTransitions() - c3.StripSelfLoops().NumTransitions(); got == 0 {
		t.Fatal("C3 has no τ steps")
	}
	// The paper's example: c = (0, 2, 1) up to renaming — process 1's move
	// leaves the state unchanged.
	s := f.Space.Encode(system.Vals{0, 2, 1})
	if !c3.HasTransition(s, s) {
		t.Fatalf("expected τ self-loop at %s", f.Space.StateString(s))
	}
	for _, sys := range []*system.System{f.BTR3(), f.C2()} {
		if sys.NumTransitions() != sys.StripSelfLoops().NumTransitions() {
			t.Fatalf("%s unexpectedly stutters", sys.Name())
		}
	}
}

// TestTheorem13 is the Section 6 result: the new 3-state system
// (C3 [] W1″) <] W2′ is stabilizing to BTR.
func TestTheorem13(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		b := NewBTR(n)
		f := NewThreeState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			t.Fatal(err)
		}
		nt := f.NewThree()
		if rep := core.Stabilizing(nt, b.System(), ab); !rep.Holds {
			t.Fatalf("N=%d: Theorem 13: %s", n, rep.Verdict)
		}
		if rep := core.SelfStabilizing(nt); !rep.Holds {
			t.Fatalf("N=%d: NewThree self-stabilization: %s", n, rep.Verdict)
		}
	}
}

// TestAggressiveEqualsDijkstra3 is the final Section 6 claim: with the
// aggressive W2′ embedded, the system "can be rewritten as Dijkstra's
// 3-state system" — here checked as automaton equality, branch collapse
// and all (the K = 3 argument).
func TestAggressiveEqualsDijkstra3(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		f := NewThreeState(n)
		agg, d3 := f.AggressiveThree(), f.Dijkstra3()
		if !system.TransitionsEqual(agg, d3) {
			diff := system.DiffTransitions(agg, d3, 3)
			t.Fatalf("N=%d: aggressive system differs from Dijkstra3, e.g. %v", n, diff)
		}
	}
}

// TestDijkstra3NeverDeadlocks: at least one action is enabled in every
// configuration of Dijkstra's 3-state system.
func TestDijkstra3NeverDeadlocks(t *testing.T) {
	f := NewThreeState(3)
	d3 := f.Dijkstra3()
	for s := 0; s < d3.NumStates(); s++ {
		if d3.Terminal(s) {
			t.Fatalf("deadlock at %s", d3.StateString(s))
		}
	}
}

// TestGrayboxReuseOfWrappers is Section 6's headline payoff: the SAME
// wrappers W1″ and W2′ developed for C2 in Section 5.1 stabilize the
// independently-refined C3 "without any modification".
func TestGrayboxReuseOfWrappers(t *testing.T) {
	b := NewBTR(3)
	f := NewThreeState(3)
	ab, err := f.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	// Same wrapper instances, two different concrete systems.
	for _, sys := range []*system.System{f.ComposedC2(), f.NewThree()} {
		if rep := core.Stabilizing(sys, b.System(), ab); !rep.Holds {
			t.Fatalf("%s: %s", sys.Name(), rep.Verdict)
		}
	}
	// And neither C2 nor C3 stabilizes without the wrappers.
	for _, sys := range []*system.System{f.C2(), f.C3().StripSelfLoops()} {
		if rep := core.Stabilizing(sys, b.System(), ab); rep.Holds {
			t.Fatalf("%s stabilizes without wrappers: %s", sys.Name(), rep.Verdict)
		}
	}
}
