package ring

import (
	"fmt"

	"repro/internal/system"
)

// ThreeState models the Section 5/6 encoding: every process j carries a
// 3-valued counter c.j, and the BTR token variables are simulated by
//
//	↑t.j ≡ c.(j−1) = c.j ⊕ 1     (j in 1..N; ⊕ is addition mod 3)
//	↓t.j ≡ c.(j+1) = c.j ⊕ 1     (j in 0..N−1)
type ThreeState struct {
	// N is the top process index.
	N int
	// Space holds c0..cN, each over 0..2.
	Space *system.Space
}

// NewThreeState builds the 3-state space for top index n (n ≥ 2).
func NewThreeState(n int) *ThreeState {
	if n < 2 {
		panic(fmt.Sprintf("ring: ThreeState needs N ≥ 2, got %d", n))
	}
	vars := make([]system.Var, 0, n+1)
	for j := 0; j <= n; j++ {
		vars = append(vars, system.Int(fmt.Sprintf("c%d", j), 3))
	}
	return &ThreeState{N: n, Space: system.NewSpace(vars...)}
}

// inc3 is ⊕1 and dec3 is ⊖1, both modulo 3.
func inc3(x int) int { return (x + 1) % 3 }
func dec3(x int) int { return (x + 2) % 3 }

// HasUpToken evaluates the mapped ↑t.j (j in 1..N).
func (t *ThreeState) HasUpToken(v system.Vals, j int) bool {
	return v[j-1] == inc3(v[j])
}

// HasDownToken evaluates the mapped ↓t.j (j in 0..N−1).
func (t *ThreeState) HasDownToken(v system.Vals, j int) bool {
	return v[j+1] == inc3(v[j])
}

// TokenCount counts mapped tokens.
func (t *ThreeState) TokenCount(v system.Vals) int {
	c := 0
	for j := 1; j <= t.N; j++ {
		if t.HasUpToken(v, j) {
			c++
		}
	}
	for j := 0; j < t.N; j++ {
		if t.HasDownToken(v, j) {
			c++
		}
	}
	return c
}

// Abstraction builds the mapping from the 3-state space onto (a subset of)
// BTR's space.
func (t *ThreeState) Abstraction(b *BTR) (*system.Abstraction, error) {
	if b.N != t.N {
		return nil, fmt.Errorf("ring: abstraction between N=%d and N=%d", t.N, b.N)
	}
	return system.MapSpaces(t.Space, b.Space, func(c system.Vals, a system.Vals) {
		for j := 1; j <= t.N; j++ {
			a[b.UpIdx(j)] = boolToInt(t.HasUpToken(c, j))
		}
		for j := 0; j < t.N; j++ {
			a[b.DownIdx(j)] = boolToInt(t.HasDownToken(c, j))
		}
	})
}

func (t *ThreeState) uniqueTokenInit(v system.Vals) bool { return t.TokenCount(v) == 1 }

// BTR3 is the abstract-model transliteration of BTR into the 3-state
// encoding (Section 5's first listing). The middle actions write one
// neighbor — permitted in the abstract model — so that the passed token
// materializes at the neighbor:
//
//	c.(N−1) = c.N⊕1 → c.N := c.(N−1)⊕1                       (top)
//	c.1 = c.0⊕1     → c.0 := c.1⊕1                           (bottom)
//	c.(j−1) = c.j⊕1 → c.j := c.(j−1); c.(j+1) := c.j ⊖ 1     (middle, pass up)
//	c.(j+1) = c.j⊕1 → c.j := c.(j+1); c.(j−1) := c.j ⊖ 1     (middle, pass down)
//
// The neighbor write uses the updated c.j (sequential reading), so after
// passing up, ↑t.(j+1) ≡ c.j = c.(j+1)⊕1 holds by construction.
func (t *ThreeState) BTR3() *system.System {
	return system.Enumerate(fmt.Sprintf("BTR3(N=%d)", t.N), t.Space, t.btr3Actions(), t.uniqueTokenInit)
}

// btr3Actions returns BTR3's guarded commands.
func (t *ThreeState) btr3Actions() []system.Action {
	acts := t.endpointActions()
	for j := 1; j < t.N; j++ {
		j := j
		acts = append(acts,
			system.Action{
				Name:  fmt.Sprintf("up%d", j),
				Guard: func(v system.Vals) bool { return t.HasUpToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = v[j-1]
					v[j+1] = dec3(v[j])
				},
			},
			system.Action{
				Name:  fmt.Sprintf("down%d", j),
				Guard: func(v system.Vals) bool { return t.HasDownToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = v[j+1]
					v[j-1] = dec3(v[j])
				},
			},
		)
	}
	return acts
}

// endpointActions are the top and bottom actions shared by BTR3, C2 and C3
// (they already write only their own state).
func (t *ThreeState) endpointActions() []system.Action {
	return []system.Action{
		{
			Name:  "top",
			Guard: func(v system.Vals) bool { return t.HasUpToken(v, t.N) },
			Effect: func(v system.Vals) {
				v[t.N] = inc3(v[t.N-1])
			},
		},
		{
			Name:  "bottom",
			Guard: func(v system.Vals) bool { return t.HasDownToken(v, 0) },
			Effect: func(v system.Vals) {
				v[0] = inc3(v[1])
			},
		},
	}
}

// C2 is the Section 5.2 concrete refinement of BTR3: the neighbor writes
// are commented out; a middle process copies the counter the token came
// from.
func (t *ThreeState) C2() *system.System {
	acts := t.endpointActions()
	for j := 1; j < t.N; j++ {
		j := j
		acts = append(acts,
			system.Action{
				Name:  fmt.Sprintf("up%d", j),
				Guard: func(v system.Vals) bool { return t.HasUpToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = v[j-1]
				},
			},
			system.Action{
				Name:  fmt.Sprintf("down%d", j),
				Guard: func(v system.Vals) bool { return t.HasDownToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = v[j+1]
				},
			},
		)
	}
	return system.Enumerate(fmt.Sprintf("C2(N=%d)", t.N), t.Space, acts, t.uniqueTokenInit)
}

// C3 is the Section 6 alternative refinement: a middle process implements
// token passing by writing only its own counter as a function of the
// destination neighbor; in illegitimate states it may take τ (stuttering)
// steps instead of compressing:
//
//	c.(j−1) = c.j⊕1 → c.j := c.(j+1)⊕1    (pass up: creates ↑t.(j+1) directly)
//	c.(j+1) = c.j⊕1 → c.j := c.(j−1)⊕1    (pass down: creates ↓t.(j−1) directly)
func (t *ThreeState) C3() *system.System {
	acts := t.endpointActions()
	for j := 1; j < t.N; j++ {
		j := j
		acts = append(acts,
			system.Action{
				Name:  fmt.Sprintf("up%d", j),
				Guard: func(v system.Vals) bool { return t.HasUpToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = inc3(v[j+1])
				},
			},
			system.Action{
				Name:  fmt.Sprintf("down%d", j),
				Guard: func(v system.Vals) bool { return t.HasDownToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = inc3(v[j-1])
				},
			},
		)
	}
	return system.Enumerate(fmt.Sprintf("C3(N=%d)", t.N), t.Space, acts, t.uniqueTokenInit)
}

// W1DoublePrime is the local wrapper W1″ of Section 5.1, the implementable
// approximation of the global W1′ at process N:
//
//	c.(N−1) = c.0 ∧ c.N ≠ c.(N−1)⊕1 → c.N := c.(N−1)⊕1
func (t *ThreeState) W1DoublePrime() *system.System {
	return enumerateWrapper(fmt.Sprintf("W1''(N=%d)", t.N), t.Space, t.w1DoublePrimeActions())
}

// w1DoublePrimeActions returns W1″'s single guarded command.
func (t *ThreeState) w1DoublePrimeActions() []system.Action {
	return []system.Action{{
		Name: "W1''",
		Guard: func(v system.Vals) bool {
			return v[t.N-1] == v[0] && v[t.N] != inc3(v[t.N-1])
		},
		Effect: func(v system.Vals) {
			v[t.N] = inc3(v[t.N-1])
		},
	}}
}

// W1PrimeGlobal is the global wrapper W1′ of Section 5.1, the direct image
// of W1 under the mapping:
//
//	(∀j,k : j,k ≠ N : c.j = c.k) ∧ c.N ≠ c.(N−1)⊕1 → c.N := c.(N−1)⊕1
func (t *ThreeState) W1PrimeGlobal() *system.System {
	acts := []system.Action{{
		Name: "W1'",
		Guard: func(v system.Vals) bool {
			for j := 1; j < t.N; j++ {
				if v[j] != v[0] {
					return false
				}
			}
			return v[t.N] != inc3(v[t.N-1])
		},
		Effect: func(v system.Vals) {
			v[t.N] = inc3(v[t.N-1])
		},
	}}
	return enumerateWrapper(fmt.Sprintf("W1'(N=%d)", t.N), t.Space, acts)
}

// W2Prime is the Section 5.1 refinement of W2: a middle process holding
// both tokens (c.(j−1) = c.j⊕1 ∧ c.(j+1) = c.j⊕1) deletes both by copying
// c.(j−1).
func (t *ThreeState) W2Prime() *system.System {
	return enumerateWrapper(fmt.Sprintf("W2'(N=%d)", t.N), t.Space, t.w2PrimeActions())
}

// w2PrimeActions returns W2′'s per-middle deletion commands.
func (t *ThreeState) w2PrimeActions() []system.Action {
	var acts []system.Action
	for j := 1; j < t.N; j++ {
		j := j
		acts = append(acts, system.Action{
			Name: fmt.Sprintf("W2'_%d", j),
			Guard: func(v system.Vals) bool {
				return t.HasUpToken(v, j) && t.HasDownToken(v, j)
			},
			Effect: func(v system.Vals) {
				v[j] = v[j-1]
			},
		})
	}
	return acts
}

// Lemma9Labeled is the Lemma 9 composition with action identity
// preserved, for fairness-aware analysis: (BTR3 [] W1″) <] W2′ where each
// guarded command is a distinct schedulable action.
func (t *ThreeState) Lemma9Labeled() *system.LabeledSystem {
	btr3 := system.EnumerateLabeled(fmt.Sprintf("BTR3(N=%d)", t.N), t.Space, t.btr3Actions(), t.uniqueTokenInit)
	w1 := system.EnumerateLabeled(fmt.Sprintf("W1''(N=%d)", t.N), t.Space, t.w1DoublePrimeActions(), neverInit)
	w2 := system.EnumerateLabeled(fmt.Sprintf("W2'(N=%d)", t.N), t.Space, t.w2PrimeActions(), neverInit)
	return system.PriorityBoxLabeled(system.BoxLabeled(btr3, w1), w2)
}

// neverInit marks no state initial (the wrapper convention for labeled
// enumeration).
func neverInit(system.Vals) bool { return false }

// Dijkstra3 is Dijkstra's 3-state stabilizing token-ring system as listed
// at the end of Section 5.2:
//
//	c.(N−1) = c.0 ∧ c.(N−1)⊕1 ≠ c.N → c.N := c.(N−1)⊕1   (top)
//	c.1 = c.0⊕1                      → c.0 := c.1⊕1       (bottom)
//	c.(j−1) = c.j⊕1                  → c.j := c.(j−1)     (middle)
//	c.(j+1) = c.j⊕1                  → c.j := c.(j+1)     (middle)
func (t *ThreeState) Dijkstra3() *system.System {
	acts := []system.Action{
		{
			Name: "top",
			Guard: func(v system.Vals) bool {
				return v[t.N-1] == v[0] && inc3(v[t.N-1]) != v[t.N]
			},
			Effect: func(v system.Vals) {
				v[t.N] = inc3(v[t.N-1])
			},
		},
		{
			Name:  "bottom",
			Guard: func(v system.Vals) bool { return t.HasDownToken(v, 0) },
			Effect: func(v system.Vals) {
				v[0] = inc3(v[1])
			},
		},
	}
	for j := 1; j < t.N; j++ {
		j := j
		acts = append(acts,
			system.Action{
				Name:  fmt.Sprintf("up%d", j),
				Guard: func(v system.Vals) bool { return t.HasUpToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = v[j-1]
				},
			},
			system.Action{
				Name:  fmt.Sprintf("down%d", j),
				Guard: func(v system.Vals) bool { return t.HasDownToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = v[j+1]
				},
			},
		)
	}
	return system.Enumerate(fmt.Sprintf("Dijkstra3(N=%d)", t.N), t.Space, acts, t.uniqueTokenInit)
}

// Lemma9System is the stabilized abstract composition of Lemma 9,
// (BTR3 [] W1″) <] W2′. As with Theorem 6, the deletion wrapper must
// preempt the ring's moves: under the plain union, an opposing-token
// collision pair can be carried around the ring forever by the processes'
// own actions without W2′ ever firing (the experiments exhibit the
// two-state loop at N = 3).
func (t *ThreeState) Lemma9System() *system.System {
	return system.PriorityBox(system.Box(t.BTR3(), t.W1DoublePrime()), t.W2Prime())
}

// ComposedC2 is the Section 5.2 composition (C2 [] W1″) <] W2′, again with
// the deletion wrapper preempting.
func (t *ThreeState) ComposedC2() *system.System {
	return system.PriorityBox(system.Box(t.C2(), t.W1DoublePrime()), t.W2Prime())
}

// NewThree is the Section 6 "new 3-state stabilizing token-ring":
// (C3 [] W1″) <] W2′, with C3's τ self-loops stripped (a daemon spinning
// forever on a no-op is indistinguishable from not scheduling it; the
// state sequence is unchanged).
func (t *ThreeState) NewThree() *system.System {
	composed := system.PriorityBox(system.Box(t.C3(), t.W1DoublePrime()), t.W2Prime())
	return composed.StripSelfLoops().Rename(fmt.Sprintf("NewThree(N=%d)", t.N))
}

// AggressiveThree is the final Section 6 system: C3 refined further with a
// more aggressive W2′ that deletes ↑t.j when ↑t.(j+1) also holds (and
// symmetrically for ↓), written with the paper's if-then-else cascade.
// Because K = 3, every branch of the middle actions collapses to
// Dijkstra's assignments; VerifyAggressiveEqualsDijkstra3 machine-checks
// that the automaton equals Dijkstra3's.
func (t *ThreeState) AggressiveThree() *system.System {
	acts := []system.Action{
		{
			Name: "top",
			Guard: func(v system.Vals) bool {
				return v[t.N-1] == v[0] && inc3(v[t.N-1]) != v[t.N]
			},
			Effect: func(v system.Vals) {
				v[t.N] = inc3(v[t.N-1])
			},
		},
		{
			Name:  "bottom",
			Guard: func(v system.Vals) bool { return t.HasDownToken(v, 0) },
			Effect: func(v system.Vals) {
				v[0] = inc3(v[1])
			},
		},
	}
	for j := 1; j < t.N; j++ {
		j := j
		acts = append(acts,
			system.Action{
				Name:  fmt.Sprintf("up%d", j),
				Guard: func(v system.Vals) bool { return t.HasUpToken(v, j) },
				Effect: func(v system.Vals) {
					switch {
					case v[j-1] == v[j+1]:
						v[j] = v[j-1] // both tokens at j: delete both
					case v[j] == inc3(v[j+1]):
						v[j] = v[j-1] // ↑t.(j+1) would duplicate: absorb
					default:
						v[j] = inc3(v[j+1]) // C3's own-write pass
					}
				},
			},
			system.Action{
				Name:  fmt.Sprintf("down%d", j),
				Guard: func(v system.Vals) bool { return t.HasDownToken(v, j) },
				Effect: func(v system.Vals) {
					switch {
					case v[j-1] == v[j+1]:
						v[j] = v[j+1]
					case v[j] == inc3(v[j-1]):
						v[j] = v[j+1]
					default:
						v[j] = inc3(v[j-1])
					}
				},
			},
		)
	}
	return system.Enumerate(fmt.Sprintf("AggressiveThree(N=%d)", t.N), t.Space, acts, t.uniqueTokenInit)
}
