package ring

import (
	"fmt"

	"repro/internal/system"
)

// Synchronous builds the synchronous-daemon semantics of a guarded-command
// system over processes: in one step, EVERY process with an enabled action
// fires simultaneously (processes with several enabled actions contribute
// one transition per choice combination). Dijkstra's token rings are
// famously sensitive to this daemon — the classical two-process ping-pong
// oscillations — which the checker exhibits; see the synchronous tests.
//
// perProcess groups the actions by owning process: each inner slice holds
// the alternatives of one process, of which at most one fires per step.
// Effects are applied to a copy of the pre-state (all reads are
// pre-state), matching synchronous semantics.
func Synchronous(name string, sp *system.Space, perProcess [][]system.Action, init func(system.Vals) bool) *system.System {
	b := system.NewSpaceBuilder(name, sp)
	cur := make(system.Vals, sp.NumVars())
	next := make(system.Vals, sp.NumVars())
	for s := 0; s < sp.Size(); s++ {
		cur = sp.Decode(s, cur)
		// Collect each process's enabled alternatives.
		var enabled [][]system.Action
		for _, alts := range perProcess {
			var on []system.Action
			for _, a := range alts {
				if a.Guard(cur) {
					on = append(on, a)
				}
			}
			if len(on) > 0 {
				enabled = append(enabled, on)
			}
		}
		if len(enabled) == 0 {
			if init == nil || init(cur) {
				b.AddInit(s)
			}
			continue
		}
		// Enumerate one choice per enabled process; apply all effects to
		// the pre-state copy. Effects of distinct processes write disjoint
		// variables in the concrete systems, so application order within a
		// step is immaterial — each effect reads only `cur`.
		choice := make([]int, len(enabled))
		for {
			copy(next, cur)
			for pi, ci := range choice {
				// Re-evaluate the effect against the pre-state: effects
				// must not observe each other's writes. Apply to a scratch
				// initialized from cur, then merge changed variables.
				scratch := make(system.Vals, len(cur))
				copy(scratch, cur)
				enabled[pi][ci].Effect(scratch)
				for vi := range scratch {
					if scratch[vi] != cur[vi] {
						next[vi] = scratch[vi]
					}
				}
			}
			b.AddTransition(s, sp.Encode(next))
			// Advance the mixed-radix choice vector.
			k := 0
			for k < len(choice) {
				choice[k]++
				if choice[k] < len(enabled[k]) {
					break
				}
				choice[k] = 0
				k++
			}
			if k == len(choice) {
				break
			}
		}
		if init == nil || init(cur) {
			b.AddInit(s)
		}
	}
	return b.Build()
}

// Dijkstra3Synchronous enumerates Dijkstra's 3-state system under the
// synchronous daemon.
func (t *ThreeState) Dijkstra3Synchronous() *system.System {
	perProcess := make([][]system.Action, 0, t.N+1)
	// Bottom.
	perProcess = append(perProcess, []system.Action{{
		Name:  "bottom",
		Guard: func(v system.Vals) bool { return t.HasDownToken(v, 0) },
		Effect: func(v system.Vals) {
			v[0] = inc3(v[1])
		},
	}})
	// Middles: up and down are alternatives of the same process.
	for j := 1; j < t.N; j++ {
		j := j
		perProcess = append(perProcess, []system.Action{
			{
				Name:  fmt.Sprintf("up%d", j),
				Guard: func(v system.Vals) bool { return t.HasUpToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = v[j-1]
				},
			},
			{
				Name:  fmt.Sprintf("down%d", j),
				Guard: func(v system.Vals) bool { return t.HasDownToken(v, j) },
				Effect: func(v system.Vals) {
					v[j] = v[j+1]
				},
			},
		})
	}
	// Top.
	perProcess = append(perProcess, []system.Action{{
		Name: "top",
		Guard: func(v system.Vals) bool {
			return v[t.N-1] == v[0] && inc3(v[t.N-1]) != v[t.N]
		},
		Effect: func(v system.Vals) {
			v[t.N] = inc3(v[t.N-1])
		},
	}})
	return Synchronous(fmt.Sprintf("Dijkstra3-sync(N=%d)", t.N), t.Space, perProcess, t.uniqueTokenInit)
}

// KStateSynchronous enumerates Dijkstra's K-state system under the
// synchronous daemon.
func (ks *KState) KStateSynchronous() *system.System {
	perProcess := make([][]system.Action, 0, ks.N+1)
	perProcess = append(perProcess, []system.Action{{
		Name:  "bottom",
		Guard: func(v system.Vals) bool { return v[0] == v[ks.N] },
		Effect: func(v system.Vals) {
			v[0] = (v[0] + 1) % ks.K
		},
	}})
	for j := 1; j <= ks.N; j++ {
		j := j
		perProcess = append(perProcess, []system.Action{{
			Name:  fmt.Sprintf("copy%d", j),
			Guard: func(v system.Vals) bool { return v[j] != v[j-1] },
			Effect: func(v system.Vals) {
				v[j] = v[j-1]
			},
		}})
	}
	return Synchronous(fmt.Sprintf("KState-sync(N=%d,K=%d)", ks.N, ks.K), ks.Space, perProcess,
		func(v system.Vals) bool { return ks.TokenCount(v) == 1 })
}
