// Package ring implements every token-ring system of the paper: the
// abstract bidirectional ring BTR with its stabilization wrappers W1 and
// W2 (Section 3), the 4-state encoding BTR4 with C1 and Dijkstra's 4-state
// system (Section 4), the 3-state encoding with C2 and Dijkstra's 3-state
// system (Section 5), the new 3-state system C3 (Section 6), and the
// unidirectional ring UTR with Dijkstra's K-state system (the technical-
// report derivation), together with the Section 2.3 abstraction functions
// relating the encodings to BTR.
//
// Processes are indexed 0..N as in the paper (N+1 processes; 0 is the
// bottom, N the top). All builders take N and require N ≥ 2 so that at
// least one middle process exists.
package ring

import (
	"fmt"

	"repro/internal/system"
)

// BTR models the abstract bidirectional token ring of Section 3.1. Its
// state space has one boolean per defined token variable: ↑t.j ("process j
// received the token from j−1") for j = 1..N, and ↓t.j ("process j
// received the token from j+1") for j = 0..N−1. ↑t.0 and ↓t.N are
// undefined.
type BTR struct {
	// N is the top process index; the ring has N+1 processes.
	N int
	// Space holds variables ut1..utN, dt0..dt(N−1), in that order.
	Space *system.Space
}

// NewBTR builds the BTR state space for top index n.
func NewBTR(n int) *BTR {
	if n < 2 {
		panic(fmt.Sprintf("ring: BTR needs N ≥ 2, got %d", n))
	}
	vars := make([]system.Var, 0, 2*n)
	for j := 1; j <= n; j++ {
		vars = append(vars, system.Bool(fmt.Sprintf("ut%d", j)))
	}
	for j := 0; j < n; j++ {
		vars = append(vars, system.Bool(fmt.Sprintf("dt%d", j)))
	}
	return &BTR{N: n, Space: system.NewSpace(vars...)}
}

// UpIdx returns the variable index of ↑t.j (j in 1..N).
func (b *BTR) UpIdx(j int) int {
	if j < 1 || j > b.N {
		panic(fmt.Sprintf("ring: ↑t.%d undefined for N=%d", j, b.N))
	}
	return j - 1
}

// DownIdx returns the variable index of ↓t.j (j in 0..N−1).
func (b *BTR) DownIdx(j int) int {
	if j < 0 || j >= b.N {
		panic(fmt.Sprintf("ring: ↓t.%d undefined for N=%d", j, b.N))
	}
	return b.N + j
}

// TokenCount returns the number of token variables set in the state.
func (b *BTR) TokenCount(v system.Vals) int {
	c := 0
	for _, x := range v {
		c += x
	}
	return c
}

// UniqueToken is the invariant I1 ∧ I2 ∧ I3: exactly one token exists.
func (b *BTR) UniqueToken(v system.Vals) bool { return b.TokenCount(v) == 1 }

// Actions returns BTR's guarded commands, transliterated from Section 3.1:
//
//	↑t.N → ↑t.N := false; ↓t.(N−1) := true     (top)
//	↓t.0 → ↓t.0 := false; ↑t.1 := true         (bottom)
//	↑t.j → ↑t.j := false; ↑t.(j+1) := true     (middle, 0 < j < N)
//	↓t.j → ↓t.j := false; ↓t.(j−1) := true     (middle, 0 < j < N)
//
// In the abstract model a process may write its neighbors' state; here
// that simply means effects touch both token variables.
func (b *BTR) Actions() []system.Action {
	acts := []system.Action{
		{
			Name:  "top",
			Guard: func(v system.Vals) bool { return v[b.UpIdx(b.N)] == 1 },
			Effect: func(v system.Vals) {
				v[b.UpIdx(b.N)] = 0
				v[b.DownIdx(b.N-1)] = 1
			},
		},
		{
			Name:  "bottom",
			Guard: func(v system.Vals) bool { return v[b.DownIdx(0)] == 1 },
			Effect: func(v system.Vals) {
				v[b.DownIdx(0)] = 0
				v[b.UpIdx(1)] = 1
			},
		},
	}
	for j := 1; j < b.N; j++ {
		j := j
		acts = append(acts,
			system.Action{
				Name:  fmt.Sprintf("up%d", j),
				Guard: func(v system.Vals) bool { return v[b.UpIdx(j)] == 1 },
				Effect: func(v system.Vals) {
					v[b.UpIdx(j)] = 0
					v[b.UpIdx(j+1)] = 1
				},
			},
			system.Action{
				Name:  fmt.Sprintf("down%d", j),
				Guard: func(v system.Vals) bool { return v[b.DownIdx(j)] == 1 },
				Effect: func(v system.Vals) {
					v[b.DownIdx(j)] = 0
					v[b.DownIdx(j-1)] = 1
				},
			},
		)
	}
	return acts
}

// System enumerates BTR with the unique-token states initial ("initially,
// there is a unique token in the system").
func (b *BTR) System() *system.System {
	return system.Enumerate(fmt.Sprintf("BTR(N=%d)", b.N), b.Space, b.Actions(), b.UniqueToken)
}

// W1 is the Section 3.2 wrapper ensuring I1, "there exists at least one
// token": when no token exists, ↑t.N is created.
//
// The paper's guard quantifies over j ≠ N and so does not mention ↑t.N;
// read literally it also fires (as a no-op) when ↑t.N is the only token,
// which under maximal-computation semantics would let a daemon stutter
// forever. We include the ¬↑t.N conjunct, exactly as the paper's own
// refinements do (W1′ and W1″ both carry the corresponding conjunct
// c.N ≠ c.(N−1)⊕1).
func (b *BTR) W1() *system.System {
	acts := []system.Action{{
		Name:   "W1",
		Guard:  func(v system.Vals) bool { return b.TokenCount(v) == 0 },
		Effect: func(v system.Vals) { v[b.UpIdx(b.N)] = 1 },
	}}
	return enumerateWrapper(fmt.Sprintf("W1(N=%d)", b.N), b.Space, acts)
}

// W2 is the Section 3.2 wrapper ensuring eventually I2 ∧ I3: a process
// holding both ↑t.j and ↓t.j deletes both, so opposing tokens cancel.
func (b *BTR) W2() *system.System {
	var acts []system.Action
	for j := 1; j < b.N; j++ {
		j := j
		acts = append(acts, system.Action{
			Name:  fmt.Sprintf("W2_%d", j),
			Guard: func(v system.Vals) bool { return v[b.UpIdx(j)] == 1 && v[b.DownIdx(j)] == 1 },
			Effect: func(v system.Vals) {
				v[b.UpIdx(j)] = 0
				v[b.DownIdx(j)] = 0
			},
		})
	}
	return enumerateWrapper(fmt.Sprintf("W2(N=%d)", b.N), b.Space, acts)
}

// Wrapped returns the stabilized composition of Theorem 6. W2 preempts the
// ring's own moves (system.PriorityBox): without that convention, a daemon
// may move opposing tokens through each other forever; WrappedPlain
// exhibits exactly that failure.
func (b *BTR) Wrapped() *system.System {
	return system.PriorityBox(system.Box(b.System(), b.W1()), b.W2())
}

// WrappedPlain is the literal union (BTR [] W1 [] W2) with no priority.
// It is NOT stabilizing to BTR — the experiments surface the token-
// crossing counterexample — and exists to document why PriorityBox is the
// right reading of Section 3.2's W2.
func (b *BTR) WrappedPlain() *system.System {
	return system.BoxAll(b.System(), b.W1(), b.W2())
}

// enumerateWrapper enumerates wrapper actions over a space with no initial
// states (the wrapper convention: boxing adds no initial states).
func enumerateWrapper(name string, sp *system.Space, acts []system.Action) *system.System {
	sys := system.Enumerate(name, sp, acts, nil)
	return sys.WithInit(nil)
}
