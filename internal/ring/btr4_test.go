package ring

import (
	"testing"

	"repro/internal/core"
	"repro/internal/system"
)

func TestFourStateEveryConfigurationHoldsAToken(t *testing.T) {
	// The basis of W1′'s vacuity (Section 4.1): no c/up configuration maps
	// to a tokenless abstract state.
	for _, n := range []int{2, 3, 4} {
		f := NewFourState(n)
		v := make(system.Vals, f.Space.NumVars())
		for s := 0; s < f.Space.Size(); s++ {
			v = f.Space.Decode(s, v)
			if f.TokenCount(v) == 0 {
				t.Fatalf("N=%d: tokenless configuration %s", n, f.Space.StateString(s))
			}
		}
	}
}

func TestW1PrimeVacuous(t *testing.T) {
	// W1′'s guard already implies ↑t.N, so its effect is the identity:
	// every transition is a self-loop ("vacuously implemented").
	f := NewFourState(3)
	w := f.W1Prime()
	if w.NumTransitions() == 0 {
		t.Fatal("W1' guard never enabled; expected enabled-but-vacuous")
	}
	for s := 0; s < w.NumStates(); s++ {
		for _, succ := range w.Succ(s) {
			if succ != s {
				t.Fatalf("W1' changed state: %s → %s", w.StateString(s), w.StateString(succ))
			}
		}
	}
}

func TestW2PrimeUnsatisfiable(t *testing.T) {
	// Under the 4-state mapping, ↑t.j ∧ ↓t.j ≡ false: W2′ has no enabled
	// transition anywhere.
	f := NewFourState(3)
	if got := f.W2Prime().NumTransitions(); got != 0 {
		t.Fatalf("W2' has %d transitions, want 0", got)
	}
}

func TestLegitStatesCoherent(t *testing.T) {
	for _, n := range []int{2, 3} {
		f := NewFourState(n)
		legit := f.LegitStates()
		// The coherent encodings number 4N: 2N token positions × 2 global
		// colorings.
		if got := len(legit); got != 4*n {
			t.Fatalf("N=%d: legit = %d, want %d", n, got, 4*n)
		}
		v := make(system.Vals, f.Space.NumVars())
		for _, s := range legit {
			v = f.Space.Decode(s, v)
			if f.TokenCount(v) != 1 {
				t.Fatalf("legit state %s has %d tokens", f.Space.StateString(s), f.TokenCount(v))
			}
		}
	}
}

func TestAbstractionShape(t *testing.T) {
	b := NewBTR(2)
	f := NewFourState(2)
	ab, err := f.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately not onto: collision states have no preimage.
	if ab.Onto() {
		t.Fatal("4-state mapping should not be onto BTR's space")
	}
	// Mismatched sizes rejected.
	if _, err := f.Abstraction(NewBTR(3)); err == nil {
		t.Fatal("mismatched N accepted")
	}
}

// TestBTR4TracksBTRExactly: BTR4, with its abstract-model neighbor writes,
// is a convergence refinement of BTR; from the initial states it tracks
// BTR exactly.
func TestBTR4TracksBTRExactly(t *testing.T) {
	for _, n := range []int{2, 3} {
		b := NewBTR(n)
		f := NewFourState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			t.Fatal(err)
		}
		rep := core.ConvergenceRefinement(f.BTR4(), b.System(), ab)
		if !rep.Holds {
			t.Fatalf("N=%d: [BTR4 ⪯ BTR]: %s", n, rep.Verdict)
		}
		if !rep.RefinementInit.Holds {
			t.Fatalf("N=%d: init refinement: %s", n, rep.RefinementInit)
		}
	}
}

// TestLemma7 is the Section 4.2 result: [C1 ⪯ BTR]. C1's steps either
// track BTR exactly or compress multi-step BTR recovery (losing tokens);
// compressions never lie on cycles.
func TestLemma7(t *testing.T) {
	for _, n := range []int{2, 3} {
		b := NewBTR(n)
		f := NewFourState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			t.Fatal(err)
		}
		rep := core.ConvergenceRefinement(f.C1(), b.System(), ab)
		if !rep.Holds {
			t.Fatalf("N=%d: Lemma 7 [C1 ⪯ BTR]: %s", n, rep.Verdict)
		}
		if len(rep.Compressions) == 0 {
			t.Fatalf("N=%d: C1 should compress outside the legitimate region", n)
		}
		// The paper's compression analysis: compressions never create
		// tokens. (They usually lose one; a compression may also convert
		// a token's direction in place, preserving the count — the cover
		// is then the token's full bounce off an end of the ring.)
		pre := make(system.Vals, f.Space.NumVars())
		post := make(system.Vals, f.Space.NumVars())
		for _, cp := range rep.Compressions {
			pre = f.Space.Decode(cp.From, pre)
			post = f.Space.Decode(cp.To, post)
			if f.TokenCount(post) > f.TokenCount(pre) {
				t.Fatalf("N=%d: compression %s → %s creates a token",
					n, f.Space.StateString(cp.From), f.Space.StateString(cp.To))
			}
		}
	}
}

// TestTheorem8 is the Section 4.2 conclusion: with W1′ and W2′ vacuous,
// (C1 [] W1′ [] W2′) = C1 is stabilizing to BTR.
func TestTheorem8(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		b := NewBTR(n)
		f := NewFourState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			t.Fatal(err)
		}
		rep := core.Stabilizing(f.C1(), b.System(), ab)
		if !rep.Holds {
			t.Fatalf("N=%d: Theorem 8: %s", n, rep.Verdict)
		}
	}
}

// TestDijkstra4Stabilizing: the guard-relaxed optimization of C1 —
// Dijkstra's 4-state system — is stabilizing to BTR and self-stabilizing.
func TestDijkstra4Stabilizing(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		b := NewBTR(n)
		f := NewFourState(n)
		ab, err := f.Abstraction(b)
		if err != nil {
			t.Fatal(err)
		}
		d4 := f.Dijkstra4()
		if rep := core.Stabilizing(d4, b.System(), ab); !rep.Holds {
			t.Fatalf("N=%d: D4 stabilizing to BTR: %s", n, rep.Verdict)
		}
		if rep := core.SelfStabilizing(d4); !rep.Holds {
			t.Fatalf("N=%d: D4 self-stabilizing: %s", n, rep.Verdict)
		}
	}
}

// TestDijkstra4GuardRelaxationLeavesRefinementFramework documents a
// finding of the mechanized reproduction: the final "optimization" step of
// Section 4.2 (dropping the up conjuncts from the guards) is NOT a
// convergence refinement of BTR for N ≥ 3 — a relaxed move can create a
// second token from a single-token fault state, which no BTR path covers.
// The paper justifies the optimization outside the refinement framework;
// its stabilization is established directly (TestDijkstra4Stabilizing).
func TestDijkstra4GuardRelaxationLeavesRefinementFramework(t *testing.T) {
	b := NewBTR(3)
	f := NewFourState(3)
	ab, err := f.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	rep := core.ConvergenceRefinement(f.Dijkstra4(), b.System(), ab)
	if rep.Holds {
		t.Fatalf("[D4 ⪯ BTR] unexpectedly holds at N=3 — finding no longer reproduces: %s", rep.Verdict)
	}
}

// TestDijkstra4MutualExclusionClosed: within the legitimate region, D4
// maintains exactly one token.
func TestDijkstra4MutualExclusionClosed(t *testing.T) {
	f := NewFourState(3)
	d4 := f.Dijkstra4()
	v := make(system.Vals, f.Space.NumVars())
	legit := make(map[int]bool)
	for _, s := range f.LegitStates() {
		legit[s] = true
	}
	for _, s := range f.LegitStates() {
		for _, succ := range d4.Succ(s) {
			if !legit[succ] {
				t.Fatalf("legit %s steps outside the legitimate region", d4.StateString(s))
			}
			v = f.Space.Decode(succ, v)
			if f.TokenCount(v) != 1 {
				t.Fatalf("mutual exclusion violated at %s", d4.StateString(succ))
			}
		}
		if len(d4.Succ(s)) == 0 {
			t.Fatalf("legit state %s is terminal", d4.StateString(s))
		}
	}
}
