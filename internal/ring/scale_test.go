package ring

import (
	"testing"

	"repro/internal/core"
)

// TestDijkstra3ScalesToLargerRings pushes the checker to ring sizes the
// derivation experiments do not cover (3^9..3^11 states). Skipped with
// -short.
func TestDijkstra3ScalesToLargerRings(t *testing.T) {
	if testing.Short() {
		t.Skip("large state spaces")
	}
	for _, n := range []int{6, 8, 10} {
		f := NewThreeState(n)
		d3 := f.Dijkstra3()
		rep := core.SelfStabilizing(d3)
		if !rep.Holds {
			t.Fatalf("N=%d: %s", n, rep.Verdict)
		}
		// Legit count grows linearly: 6N states (2N token positions × 3
		// colorings).
		if got := len(rep.Legitimate); got != 6*n {
			t.Fatalf("N=%d: legitimate = %d, want %d", n, got, 6*n)
		}
	}
}

// TestDijkstra4ScalesToLargerRings does the same for the 4-state system
// (2^2N states).
func TestDijkstra4ScalesToLargerRings(t *testing.T) {
	if testing.Short() {
		t.Skip("large state spaces")
	}
	for _, n := range []int{6, 8} {
		f := NewFourState(n)
		d4 := f.Dijkstra4()
		rep := core.SelfStabilizing(d4)
		if !rep.Holds {
			t.Fatalf("N=%d: %s", n, rep.Verdict)
		}
		if got := len(rep.Legitimate); got != 4*n {
			t.Fatalf("N=%d: legitimate = %d, want %d", n, got, 4*n)
		}
	}
}

// TestStabilizationToBTRAtScale checks the cross-space relation at the
// largest size that stays comfortable (BTR at N=7 has 2^14 states; the
// 3-state encoding 3^8).
func TestStabilizationToBTRAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large state spaces")
	}
	const n = 7
	b := NewBTR(n)
	f := NewThreeState(n)
	ab, err := f.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	rep := core.Stabilizing(f.Dijkstra3(), b.System(), ab)
	if !rep.Holds {
		t.Fatalf("N=%d: %s", n, rep.Verdict)
	}
}

// TestKStateScale checks a 16k-state K-state instance.
func TestKStateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large state spaces")
	}
	ks := NewKState(6, 6) // 6^7 ≈ 280k states
	rep := core.SelfStabilizing(ks.System())
	if !rep.Holds {
		t.Fatalf("%s", rep.Verdict)
	}
}
