package ring

import (
	"testing"

	"repro/internal/core"
	"repro/internal/system"
)

func TestUTRShape(t *testing.T) {
	u := NewUTR(3)
	sys := u.System()
	if sys.NumStates() != 16 {
		t.Fatalf("states = %d", sys.NumStates())
	}
	if got := len(sys.InitStates()); got != 4 {
		t.Fatalf("inits = %d, want 4", got)
	}
	if rep := core.SelfStabilizing(sys); rep.Holds {
		t.Fatal("bare UTR must not be stabilizing (tokenless deadlock)")
	}
}

func TestUTRWrappedStabilizing(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		u := NewUTR(n)
		rep := core.Stabilizing(u.Wrapped(), u.System(), nil)
		if !rep.Holds {
			t.Fatalf("N=%d: %s", n, rep.Verdict)
		}
		if got := len(rep.Legitimate); got != n+1 {
			t.Fatalf("N=%d: legitimate = %d, want %d", n, got, n+1)
		}
	}
}

func TestUTRPlainUnionFails(t *testing.T) {
	// Two tokens chasing each other at a fixed distance never meet the
	// deletion wrapper under the plain union.
	u := NewUTR(3)
	plain := system.BoxAll(u.System(), u.WU1(), u.WU2())
	rep := core.Stabilizing(plain, u.System(), nil)
	if rep.Holds {
		t.Fatalf("plain union unexpectedly stabilizing: %s", rep.Verdict)
	}
	if len(rep.WitnessLoop) == 0 {
		t.Fatal("expected a chasing-loop witness")
	}
}

func TestUTRTokenMerging(t *testing.T) {
	u := NewUTR(2)
	sys := u.System()
	// t0 ∧ t1: moving t0 onto t1 merges.
	from := u.Space.Encode(system.Vals{1, 1, 0})
	to := u.Space.Encode(system.Vals{0, 1, 0})
	if !sys.HasTransition(from, to) {
		t.Fatal("merge transition missing")
	}
}

// TestKStateStabilizationThreshold reproduces the classical K-vs-N
// tradeoff on Dijkstra's K-state system: with N+1 processes, K = N
// suffices, and K = N − 1 fails (for N ≥ 3 the checker produces the
// non-converging loop).
func TestKStateStabilizationThreshold(t *testing.T) {
	cases := []struct {
		n, k int
		want bool
	}{
		{2, 2, true},
		{2, 3, true},
		{3, 2, false},
		{3, 3, true},
		{3, 4, true},
		{4, 3, false},
		{4, 4, true},
		{4, 5, true},
	}
	for _, tc := range cases {
		ks := NewKState(tc.n, tc.k)
		rep := core.SelfStabilizing(ks.System())
		if rep.Holds != tc.want {
			t.Errorf("N=%d K=%d: self-stabilizing = %v, want %v (%s)",
				tc.n, tc.k, rep.Holds, tc.want, rep.Reason)
		}
	}
}

// TestKStateStabilizesToUTR relates the K-state system to the abstract
// unidirectional ring through the privilege abstraction.
func TestKStateStabilizesToUTR(t *testing.T) {
	for _, n := range []int{2, 3} {
		u := NewUTR(n)
		ks := NewKState(n, n+1)
		ab, err := ks.Abstraction(u)
		if err != nil {
			t.Fatal(err)
		}
		rep := core.Stabilizing(ks.System(), u.System(), ab)
		if !rep.Holds {
			t.Fatalf("N=%d K=%d: %s", n, n+1, rep.Verdict)
		}
	}
}

func TestKStateAlwaysPrivileged(t *testing.T) {
	// Dijkstra's classical observation: at least one process is always
	// privileged, for any K.
	for _, k := range []int{2, 3, 4} {
		ks := NewKState(3, k)
		v := make(system.Vals, ks.Space.NumVars())
		for s := 0; s < ks.Space.Size(); s++ {
			v = ks.Space.Decode(s, v)
			if ks.TokenCount(v) == 0 {
				t.Fatalf("K=%d: unprivileged configuration %s", k, ks.Space.StateString(s))
			}
		}
	}
}

func TestKStateLegitExactlyOnePrivilege(t *testing.T) {
	ks := NewKState(3, 4)
	sys := ks.System()
	rep := core.SelfStabilizing(sys)
	if !rep.Holds {
		t.Fatalf("%s", rep.Verdict)
	}
	v := make(system.Vals, ks.Space.NumVars())
	for _, s := range rep.Legitimate {
		v = ks.Space.Decode(s, v)
		if ks.TokenCount(v) != 1 {
			t.Fatalf("legit state %s has %d privileges", sys.StateString(s), ks.TokenCount(v))
		}
	}
	// Legit count: K all-equal configurations (bottom privileged) plus
	// N boundary positions × K·(K−1) value pairs.
	if got, want := len(rep.Legitimate), 4+3*4*3; got != want {
		t.Fatalf("legitimate = %d, want %d", got, want)
	}
}

func TestNewKStateValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewKState(1, 3) },
		func() { NewKState(3, 1) },
		func() { NewUTR(1) },
		func() { NewThreeState(1) },
		func() { NewFourState(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
