package ring

import (
	"fmt"

	"repro/internal/mc"
	"repro/internal/system"
)

// FourState models the Section 4 encoding: every process j carries a
// boolean c.j, and every middle process a boolean up.j; up.0 ≡ true and
// up.N ≡ false are constants, not variables. The token variables of BTR
// are simulated by the Section 4 mapping:
//
//	↑t.N ≡ c.N ≠ c.(N−1) ∧ up.(N−1)
//	↓t.0 ≡ c.0 = c.1 ∧ ¬up.1
//	↑t.j ≡ c.j ≠ c.(j−1) ∧ up.(j−1) ∧ ¬up.j     (0 < j < N)
//	↓t.j ≡ c.j = c.(j+1) ∧ ¬up.(j+1) ∧ up.j     (0 < j < N)
type FourState struct {
	// N is the top process index.
	N int
	// Space holds c0..cN then up1..up(N−1).
	Space *system.Space

	legit []int // cached LegitStates
}

// NewFourState builds the 4-state space for top index n (n ≥ 2).
func NewFourState(n int) *FourState {
	if n < 2 {
		panic(fmt.Sprintf("ring: FourState needs N ≥ 2, got %d", n))
	}
	vars := make([]system.Var, 0, 2*n)
	for j := 0; j <= n; j++ {
		vars = append(vars, system.Bool(fmt.Sprintf("c%d", j)))
	}
	for j := 1; j < n; j++ {
		vars = append(vars, system.Bool(fmt.Sprintf("up%d", j)))
	}
	return &FourState{N: n, Space: system.NewSpace(vars...)}
}

// CIdx returns the variable index of c.j.
func (f *FourState) CIdx(j int) int {
	if j < 0 || j > f.N {
		panic(fmt.Sprintf("ring: c.%d undefined for N=%d", j, f.N))
	}
	return j
}

// Up reads the (possibly constant) up.j value from a state: up.0 ≡ true,
// up.N ≡ false.
func (f *FourState) Up(v system.Vals, j int) bool {
	switch {
	case j == 0:
		return true
	case j == f.N:
		return false
	case j > 0 && j < f.N:
		return v[f.N+j] == 1
	default:
		panic(fmt.Sprintf("ring: up.%d undefined for N=%d", j, f.N))
	}
}

// setUp writes up.j for a middle process.
func (f *FourState) setUp(v system.Vals, j int, val bool) {
	if j <= 0 || j >= f.N {
		panic(fmt.Sprintf("ring: up.%d is constant for N=%d", j, f.N))
	}
	if val {
		v[f.N+j] = 1
	} else {
		v[f.N+j] = 0
	}
}

// HasUpToken evaluates the mapped ↑t.j (j in 1..N).
func (f *FourState) HasUpToken(v system.Vals, j int) bool {
	return v[f.CIdx(j)] != v[f.CIdx(j-1)] && f.Up(v, j-1) && !f.Up(v, j)
}

// HasDownToken evaluates the mapped ↓t.j (j in 0..N−1).
func (f *FourState) HasDownToken(v system.Vals, j int) bool {
	return v[f.CIdx(j)] == v[f.CIdx(j+1)] && !f.Up(v, j+1) && f.Up(v, j)
}

// TokenCount counts mapped tokens.
func (f *FourState) TokenCount(v system.Vals) int {
	c := 0
	for j := 1; j <= f.N; j++ {
		if f.HasUpToken(v, j) {
			c++
		}
	}
	for j := 0; j < f.N; j++ {
		if f.HasDownToken(v, j) {
			c++
		}
	}
	return c
}

// Abstraction builds the Section 2.3 mapping from the 4-state space onto
// (a subset of) BTR's space. It is deliberately not onto: no 4-state
// configuration maps to an abstract state holding both ↑t.j and ↓t.j.
func (f *FourState) Abstraction(b *BTR) (*system.Abstraction, error) {
	if b.N != f.N {
		return nil, fmt.Errorf("ring: abstraction between N=%d and N=%d", f.N, b.N)
	}
	return system.MapSpaces(f.Space, b.Space, func(c system.Vals, a system.Vals) {
		for j := 1; j <= f.N; j++ {
			a[b.UpIdx(j)] = boolToInt(f.HasUpToken(c, j))
		}
		for j := 0; j < f.N; j++ {
			a[b.DownIdx(j)] = boolToInt(f.HasDownToken(c, j))
		}
	})
}

// LegitStates returns the coherent encodings of the unique-token abstract
// states: the configurations reachable from the canonical all-false state
// (whose unique token is ↓t.0) under the encoding's own moves. These are
// the initial states of BTR4, C1 and Dijkstra4 — "the initial states of
// BTR4 follow from those of BTR using the mapping" selects, per abstract
// initial state, the encodings that simulate BTR exactly. Unique-token
// encodings outside this set are coherent in token count but would need a
// neighbor repair on the very next step; they are fault states, not
// initial states.
func (f *FourState) LegitStates() []int {
	if f.legit == nil {
		canonical := f.Space.Encode(make(system.Vals, f.Space.NumVars()))
		sys := system.Enumerate("btr4-legit-probe", f.Space, f.btr4Actions(true),
			nil).WithInit([]int{canonical})
		f.legit = mc.ReachFromInit(sys).Members()
	}
	return f.legit
}

// BTR4 is the abstract-model transliteration of BTR into the 4-state
// encoding: each action updates its own process and additionally writes
// neighbor state where needed so that exactly the intended token movement
// happens (the abstract system model permits writing neighbors). C1 is the
// same system with those neighbor writes commented out.
func (f *FourState) BTR4() *system.System {
	return system.Enumerate(fmt.Sprintf("BTR4(N=%d)", f.N), f.Space, f.btr4Actions(true), nil).
		WithInit(f.LegitStates())
}

// C1 is the Section 4.2 concrete refinement of BTR4: the neighbor-writing
// clauses are dropped because the concrete model only writes own state.
func (f *FourState) C1() *system.System {
	return system.Enumerate(fmt.Sprintf("C1(N=%d)", f.N), f.Space, f.btr4Actions(false), nil).
		WithInit(f.LegitStates())
}

func (f *FourState) btr4Actions(neighborWrites bool) []system.Action {
	acts := []system.Action{
		{
			// ↑t.N → pass down: c.N := c.(N−1). ↓t.(N−1) becomes true by
			// the mapping; no neighbor writes needed.
			Name:  "top",
			Guard: func(v system.Vals) bool { return f.HasUpToken(v, f.N) },
			Effect: func(v system.Vals) {
				v[f.CIdx(f.N)] = v[f.CIdx(f.N-1)]
			},
		},
		{
			// ↓t.0 → pass up: c.0 := ¬c.0 creates ↑t.1.
			Name:  "bottom",
			Guard: func(v system.Vals) bool { return f.HasDownToken(v, 0) },
			Effect: func(v system.Vals) {
				v[f.CIdx(0)] = 1 - v[f.CIdx(0)]
			},
		},
	}
	for j := 1; j < f.N; j++ {
		j := j
		acts = append(acts,
			system.Action{
				// ↑t.j → ↑t.(j+1): own writes c.j := c.(j−1), up.j := true.
				// BTR4 additionally enforces ↑t.(j+1)'s remaining conjuncts
				// on the (j+1)-neighbor — the clauses C1 comments out.
				Name:  fmt.Sprintf("up%d", j),
				Guard: func(v system.Vals) bool { return f.HasUpToken(v, j) },
				Effect: func(v system.Vals) {
					v[f.CIdx(j)] = v[f.CIdx(j-1)]
					f.setUp(v, j, true)
					if neighborWrites {
						if v[f.CIdx(j+1)] == v[f.CIdx(j)] {
							v[f.CIdx(j+1)] = 1 - v[f.CIdx(j)]
						}
						if j+1 < f.N {
							f.setUp(v, j+1, false)
						}
					}
				},
			},
			system.Action{
				// ↓t.j → ↓t.(j−1): own write up.j := false. BTR4 enforces
				// ↓t.(j−1)'s remaining conjuncts on the (j−1)-neighbor.
				Name:  fmt.Sprintf("down%d", j),
				Guard: func(v system.Vals) bool { return f.HasDownToken(v, j) },
				Effect: func(v system.Vals) {
					f.setUp(v, j, false)
					if neighborWrites {
						v[f.CIdx(j-1)] = v[f.CIdx(j)]
						if j-1 > 0 {
							f.setUp(v, j-1, true)
						}
					}
				},
			},
		)
	}
	return acts
}

// Dijkstra4 is Dijkstra's 4-state stabilizing token-ring system, obtained
// in Section 4.2 by relaxing the guards of (C1 [] W1′ [] W2′):
//
//	c.(N−1) ≠ c.N                      → c.N := c.(N−1)
//	c.1 = c.0 ∧ ¬up.1                  → c.0 := ¬c.0
//	c.(j−1) ≠ c.j                      → c.j := c.(j−1); up.j := true
//	c.(j+1) = c.j ∧ ¬up.(j+1) ∧ up.j   → up.j := false
func (f *FourState) Dijkstra4() *system.System {
	acts := []system.Action{
		{
			Name:  "top",
			Guard: func(v system.Vals) bool { return v[f.CIdx(f.N-1)] != v[f.CIdx(f.N)] },
			Effect: func(v system.Vals) {
				v[f.CIdx(f.N)] = v[f.CIdx(f.N-1)]
			},
		},
		{
			Name: "bottom",
			Guard: func(v system.Vals) bool {
				return v[f.CIdx(1)] == v[f.CIdx(0)] && !f.Up(v, 1)
			},
			Effect: func(v system.Vals) {
				v[f.CIdx(0)] = 1 - v[f.CIdx(0)]
			},
		},
	}
	for j := 1; j < f.N; j++ {
		j := j
		acts = append(acts,
			system.Action{
				Name:  fmt.Sprintf("up%d", j),
				Guard: func(v system.Vals) bool { return v[f.CIdx(j-1)] != v[f.CIdx(j)] },
				Effect: func(v system.Vals) {
					v[f.CIdx(j)] = v[f.CIdx(j-1)]
					f.setUp(v, j, true)
				},
			},
			system.Action{
				Name: fmt.Sprintf("down%d", j),
				Guard: func(v system.Vals) bool {
					return v[f.CIdx(j+1)] == v[f.CIdx(j)] && !f.Up(v, j+1) && f.Up(v, j)
				},
				Effect: func(v system.Vals) {
					f.setUp(v, j, false)
				},
			},
		)
	}
	return system.Enumerate(fmt.Sprintf("Dijkstra4(N=%d)", f.N), f.Space, acts, nil).
		WithInit(f.LegitStates())
}

// W1Prime is the mapped wrapper W1′ of Section 4.1. Its guard already
// implies ↑t.N, so its effect never changes the state: the paper calls it
// "vacuously implemented". The returned system consequently contains only
// self-loops; VerifyW1PrimeVacuous checks that claim, and the composed
// systems omit W1′ just as the paper does.
func (f *FourState) W1Prime() *system.System {
	acts := []system.Action{{
		Name: "W1'",
		Guard: func(v system.Vals) bool {
			for j := 1; j < f.N; j++ {
				if !f.Up(v, j) {
					return false
				}
			}
			return v[f.CIdx(f.N-1)] != v[f.CIdx(f.N)]
		},
		Effect: func(v system.Vals) {
			// Make ↑t.N true: c.N ≠ c.(N−1) and up.(N−1) = true. Both
			// already hold whenever the guard does.
			v[f.CIdx(f.N)] = 1 - v[f.CIdx(f.N-1)]
			if f.N-1 > 0 && f.N-1 < f.N {
				f.setUp(v, f.N-1, true)
			}
		},
	}}
	return enumerateWrapper(fmt.Sprintf("W1'(N=%d)", f.N), f.Space, acts)
}

// W2Prime is the mapped wrapper W2′ of Section 4.1: under the mapping,
// ↑t.j ∧ ↓t.j ≡ false, so the wrapper has no enabled transition anywhere.
func (f *FourState) W2Prime() *system.System {
	var acts []system.Action
	for j := 1; j < f.N; j++ {
		j := j
		acts = append(acts, system.Action{
			Name: fmt.Sprintf("W2'_%d", j),
			Guard: func(v system.Vals) bool {
				return f.HasUpToken(v, j) && f.HasDownToken(v, j)
			},
			Effect: func(v system.Vals) {
				// Would delete both tokens; never enabled.
				v[f.CIdx(j)] = v[f.CIdx(j-1)]
			},
		})
	}
	return enumerateWrapper(fmt.Sprintf("W2'(N=%d)", f.N), f.Space, acts)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
