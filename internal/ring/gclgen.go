package ring

import (
	"fmt"
	"strings"
)

// Dijkstra3GCL emits Dijkstra's 3-state system for top index n as
// guarded-command source in the paper's notation, compilable by
// internal/gcl. The generated automaton is transition-for-transition
// equal to ThreeState.Dijkstra3 modulo the initial state (the source
// pins one canonical initial configuration, since the GCL init predicate
// has no token-counting quantifier); see the cross-validation test.
func Dijkstra3GCL(n int) string {
	if n < 2 {
		panic(fmt.Sprintf("ring: Dijkstra3GCL needs N ≥ 2, got %d", n))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Dijkstra's 3-state token ring, N = %d (%d processes).\n", n, n+1)
	for j := 0; j <= n; j++ {
		fmt.Fprintf(&b, "var c%d : 0..2;\n", j)
	}
	// Canonical initial state: all equal — the top holds the privilege.
	b.WriteString("\ninit ")
	for j := 0; j <= n; j++ {
		if j > 0 {
			b.WriteString(" && ")
		}
		fmt.Fprintf(&b, "c%d == 0", j)
	}
	b.WriteString(";\n\n")
	fmt.Fprintf(&b, "action bottom: c1 == (c0 + 1) %% 3 -> c0 := (c1 + 1) %% 3;\n")
	for j := 1; j < n; j++ {
		fmt.Fprintf(&b, "action up%d: c%d == (c%d + 1) %% 3 -> c%d := c%d;\n", j, j-1, j, j, j-1)
		fmt.Fprintf(&b, "action dn%d: c%d == (c%d + 1) %% 3 -> c%d := c%d;\n", j, j+1, j, j, j+1)
	}
	fmt.Fprintf(&b, "action top: c%d == c0 && (c%d + 1) %% 3 != c%d -> c%d := (c%d + 1) %% 3;\n",
		n-1, n-1, n, n, n-1)
	return b.String()
}

// AggressiveThreeGCL emits the final Section 6 system — C3 with the
// aggressive W2′ embedded — as guarded-command source, using ternary
// conditionals for the paper's if-then-else cascades. By the K = 3
// argument it compiles to the same automaton as Dijkstra3; the
// cross-validation test checks exactly that.
func AggressiveThreeGCL(n int) string {
	if n < 2 {
		panic(fmt.Sprintf("ring: AggressiveThreeGCL needs N ≥ 2, got %d", n))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Section 6's aggressive 3-state system, N = %d.\n", n)
	for j := 0; j <= n; j++ {
		fmt.Fprintf(&b, "var c%d : 0..2;\n", j)
	}
	b.WriteString("\ninit ")
	for j := 0; j <= n; j++ {
		if j > 0 {
			b.WriteString(" && ")
		}
		fmt.Fprintf(&b, "c%d == 0", j)
	}
	b.WriteString(";\n\n")
	fmt.Fprintf(&b, "action bottom: c1 == (c0 + 1) %% 3 -> c0 := (c1 + 1) %% 3;\n")
	for j := 1; j < n; j++ {
		lm, c, rp := j-1, j, j+1
		fmt.Fprintf(&b,
			"action up%d: c%d == (c%d + 1) %% 3 -> c%d := (c%d == c%d) ? c%d : ((c%d == (c%d + 1) %% 3) ? c%d : (c%d + 1) %% 3);\n",
			j, lm, c, c, lm, rp, lm, c, rp, lm, rp)
		fmt.Fprintf(&b,
			"action dn%d: c%d == (c%d + 1) %% 3 -> c%d := (c%d == c%d) ? c%d : ((c%d == (c%d + 1) %% 3) ? c%d : (c%d + 1) %% 3);\n",
			j, rp, c, c, lm, rp, rp, c, lm, rp, lm)
	}
	fmt.Fprintf(&b, "action top: c%d == c0 && (c%d + 1) %% 3 != c%d -> c%d := (c%d + 1) %% 3;\n",
		n-1, n-1, n, n, n-1)
	return b.String()
}

// KStateGCL emits Dijkstra's K-state system for top index n and modulus k
// as guarded-command source.
func KStateGCL(n, k int) string {
	if n < 2 || k < 2 {
		panic(fmt.Sprintf("ring: KStateGCL needs N ≥ 2 and K ≥ 2, got N=%d K=%d", n, k))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Dijkstra's K-state token ring, N = %d, K = %d.\n", n, k)
	for j := 0; j <= n; j++ {
		fmt.Fprintf(&b, "var x%d : 0..%d;\n", j, k-1)
	}
	b.WriteString("\ninit ")
	for j := 0; j <= n; j++ {
		if j > 0 {
			b.WriteString(" && ")
		}
		fmt.Fprintf(&b, "x%d == 0", j)
	}
	b.WriteString(";\n\n")
	fmt.Fprintf(&b, "action bottom: x0 == x%d -> x0 := (x0 + 1) %% %d;\n", n, k)
	for j := 1; j <= n; j++ {
		fmt.Fprintf(&b, "action copy%d: x%d != x%d -> x%d := x%d;\n", j, j, j-1, j, j-1)
	}
	return b.String()
}
